/**
 * Ablation (DESIGN.md): Trans-FW decomposed into its two mechanisms.
 * Speedup over the baseline with only the GMMU short circuit (PRT),
 * only the host MMU remote forwarding (FT), and both — quantifying
 * what each contributes to the Fig. 11 result.
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    bench::header("Ablation: short circuit vs remote forwarding",
                  sys::transFwConfig());

    cfg::SystemConfig prt_only = sys::transFwConfig();
    prt_only.transFw.enableForwarding = false;
    cfg::SystemConfig ft_only = sys::transFwConfig();
    ft_only.transFw.enableShortCircuit = false;
    cfg::SystemConfig full = sys::transFwConfig();

    bench::columns("app", {"prt-only", "ft-only", "full"});
    std::vector<double> prt_s, ft_s, full_s;
    for (const auto &app : bench::allApps()) {
        sys::SimResults base = sys::runApp(app, baseline);
        double s1 = sys::speedup(base, sys::runApp(app, prt_only));
        double s2 = sys::speedup(base, sys::runApp(app, ft_only));
        double s3 = sys::speedup(base, sys::runApp(app, full));
        prt_s.push_back(s1);
        ft_s.push_back(s2);
        full_s.push_back(s3);
        bench::row(app, {s1, s2, s3});
    }
    bench::row("geomean", {bench::geomean(prt_s), bench::geomean(ft_s),
                           bench::geomean(full_s)});
    return 0;
}
