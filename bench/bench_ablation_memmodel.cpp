/**
 * Model ablation: is the headline Fig. 11 conclusion robust to the
 * data-side memory model? Trans-FW speedups under the flat Table II
 * data latency (the calibrated default) versus the detailed per-CU
 * L1 / shared L2 / banked-DRAM hierarchy.
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    bench::header("Model ablation: simple vs detailed data memory",
                  sys::baselineConfig());

    bench::columns("app", {"fw.simple", "fw.hier"});
    std::vector<double> simple_s, hier_s;
    for (const auto &app : bench::allApps()) {
        cfg::SystemConfig base_simple = sys::baselineConfig();
        cfg::SystemConfig fw_simple = sys::transFwConfig();
        double s1 = sys::speedup(sys::runApp(app, base_simple),
                                 sys::runApp(app, fw_simple));

        cfg::SystemConfig base_hier = sys::baselineConfig();
        base_hier.memModel = cfg::MemModel::Hierarchy;
        cfg::SystemConfig fw_hier = sys::transFwConfig();
        fw_hier.memModel = cfg::MemModel::Hierarchy;
        double s2 = sys::speedup(sys::runApp(app, base_hier),
                                 sys::runApp(app, fw_hier));

        simple_s.push_back(s1);
        hier_s.push_back(s2);
        bench::row(app, {s1, s2});
    }
    bench::row("geomean",
               {bench::geomean(simple_s), bench::geomean(hier_s)});
    return 0;
}
