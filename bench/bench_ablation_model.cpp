/**
 * Model ablations for the design decisions DESIGN.md calls out:
 *
 *  (a) steady-state pre-placement vs. cold UVM placement (how much of
 *      the measurement the cold-touch storm would otherwise dominate);
 *  (b) VA-spread (large-footprint PW-cache pressure emulation) — how
 *      PW-cache hit depth and Trans-FW's benefit change when the
 *      footprint is laid out contiguously instead.
 *
 * Run on a representative high-sharing subset.
 */
#include <cstdio>

#include "bench_util.hpp"

using namespace transfw;

namespace {

sys::SimResults
runSpread(const std::string &app, const cfg::SystemConfig &config,
          std::uint64_t spread)
{
    wl::SyntheticSpec spec = wl::appSpec(app, sys::effectiveScale(0.0));
    spec.vaSpread = spread;
    wl::SyntheticWorkload workload(spec);
    return sys::runWorkload(workload, config);
}

} // namespace

int
main()
{
    const std::vector<std::string> subset = {"KM", "PR", "MT", "SC"};
    cfg::SystemConfig baseline = sys::baselineConfig();

    bench::header("Model ablation (a): pre-placement vs cold start",
                  baseline);
    bench::columns("app", {"warmPFPKI", "coldPFPKI", "cold/warm"});
    for (const auto &app : subset) {
        sys::SimResults warm = sys::runApp(app, baseline);
        cfg::SystemConfig cold_cfg = baseline;
        cold_cfg.prewarmPlacement = false;
        sys::SimResults cold = sys::runApp(app, cold_cfg);
        bench::row(app, {warm.pfpki(), cold.pfpki(),
                         static_cast<double>(cold.execTime) /
                             static_cast<double>(warm.execTime)});
    }

    std::printf("\n");
    bench::header("Model ablation (b): VA spread (PW-cache pressure)",
                  baseline);
    bench::columns("app", {"s1.walkAcc", "s512.walkAcc", "fw.s1",
                           "fw.s512"});
    for (const auto &app : subset) {
        cfg::SystemConfig fw = sys::transFwConfig();
        // With a contiguous layout one fingerprint covers 8 live
        // pages, as in the paper's own masking arithmetic.
        cfg::SystemConfig fw_contig = fw;
        fw_contig.transFw.vpnMaskBits = 3;

        sys::SimResults contig = runSpread(app, baseline, 1);
        sys::SimResults spread = runSpread(app, baseline, 512);
        double s_fw_contig = sys::speedup(
            contig, runSpread(app, fw_contig, 1));
        double s_fw_spread =
            sys::speedup(spread, runSpread(app, fw, 512));

        auto walk_acc = [](const sys::SimResults &r) {
            return r.hostWalks
                       ? static_cast<double>(r.hostWalkMemAccesses) /
                             static_cast<double>(r.hostWalks)
                       : 0.0;
        };
        bench::row(app, {walk_acc(contig), walk_acc(spread), s_fw_contig,
                         s_fw_spread});
    }
    std::printf("\nContiguous layouts let one PW-cache entry cover the "
                "whole working set\n(walks ~1 access), hiding the "
                "pressure real GB-scale footprints create;\nthe VA "
                "spread restores it.\n");
    return 0;
}
