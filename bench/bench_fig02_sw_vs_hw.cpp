/**
 * Fig. 2: software (UVM driver) versus hardware (host MMU) far-fault
 * handling.
 *  (a) Scalability: execution time when the GPU count grows from 4 to
 *      32 with a fixed input size, normalized to hardware at 4 GPUs
 *      (averaged over a representative high-sharing subset).
 *  (b) Hardware speedup over software per application at 4 GPUs.
 *
 * The synthetic applications compress time versus the paper's real
 * kernels; the driver's software costs in cfg::SystemConfig are scaled
 * down proportionally so the software-vs-hardware ratio stays in the
 * paper's regime (see DESIGN.md).
 */
#include <cstdio>

#include "bench_util.hpp"

using namespace transfw;

namespace {

constexpr std::uint32_t kComputePad = 1;

sys::SimResults
runPadded(const std::string &app, const cfg::SystemConfig &config)
{
    wl::SyntheticSpec spec = wl::appSpec(app, sys::effectiveScale(0.0));
    spec.computePerOp *= kComputePad;
    wl::SyntheticWorkload workload(spec);
    return sys::runWorkload(workload, config);
}

} // namespace

int
main()
{
    cfg::SystemConfig hw = sys::baselineConfig();
    bench::header("Fig. 2a: SW vs HW far-fault handling, GPU scaling", hw);

    const std::vector<std::string> subset = {"KM", "PR", "MT", "SC"};
    const std::vector<int> gpu_counts = {4, 8, 16, 32};

    std::vector<double> hw_avg, sw_avg;
    for (int gpus : gpu_counts) {
        double hw_sum = 0, sw_sum = 0;
        for (const auto &app : subset) {
            cfg::SystemConfig hw_cfg = sys::baselineConfig();
            hw_cfg.numGpus = gpus;
            cfg::SystemConfig sw_cfg = hw_cfg;
            sw_cfg.faultMode = cfg::FaultMode::UvmDriver;
            hw_sum += static_cast<double>(runPadded(app, hw_cfg).execTime);
            sw_sum += static_cast<double>(runPadded(app, sw_cfg).execTime);
        }
        hw_avg.push_back(hw_sum / subset.size());
        sw_avg.push_back(sw_sum / subset.size());
    }
    bench::columns("gpus", {"hardware", "software", "sw/hw"});
    for (std::size_t i = 0; i < gpu_counts.size(); ++i) {
        bench::row(std::to_string(gpu_counts[i]),
                   {hw_avg[i] / hw_avg[0], sw_avg[i] / hw_avg[0],
                    sw_avg[i] / hw_avg[i]});
    }

    std::printf("\n");
    bench::header("Fig. 2b: HW speedup over SW per app, 4 GPUs", hw);
    bench::columns("app", {"hw/sw"});
    std::vector<double> speedups;
    for (const auto &app : bench::allApps()) {
        cfg::SystemConfig sw = sys::baselineConfig();
        sw.faultMode = cfg::FaultMode::UvmDriver;
        // speedup(sw, hw) = exec_sw / exec_hw: hardware's gain over
        // software.
        double s = sys::speedup(runPadded(app, sw), runPadded(app, hw));
        speedups.push_back(s);
        bench::row(app, {s});
    }
    bench::row("geomean", {bench::geomean(speedups)});
    return 0;
}
