/**
 * Fig. 3: breakdown of GPU L2 TLB miss latency on the baseline into
 * GMMU PW-queue wait, GMMU walk memory, host PW-queue wait, host walk
 * memory, page migration, interconnect+replay, and other (fixed
 * lookups, fault bookkeeping). Printed as percent of total.
 */
#include <cstdio>

#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    bench::header("Fig. 3: L2 TLB miss latency breakdown (%)", baseline);

    bench::columns("app", {"gmmuQ", "gmmuMem", "hostQ", "hostMem", "migr",
                           "net", "other", "avgLat", "p50", "p99"});
    std::vector<sys::SimResults> runs;
    for (const auto &app : bench::allApps()) {
        sys::SimResults r = sys::runApp(app, baseline);
        double total = r.xlat.total();
        if (total <= 0)
            total = 1;
        bench::row(app,
                   {100.0 * r.xlat.gmmuQueue / total,
                    100.0 * r.xlat.gmmuMem / total,
                    100.0 * r.xlat.hostQueue / total,
                    100.0 * r.xlat.hostMem / total,
                    100.0 * r.xlat.migration / total,
                    100.0 * r.xlat.network / total,
                    100.0 * r.xlat.other / total, r.avgXlatLatency,
                    r.xlatLatencyHist.quantile(0.50),
                    r.xlatLatencyHist.quantile(0.99)},
                   1);
        runs.push_back(std::move(r));
    }
    std::printf("\n");
    for (std::size_t i = 0; i < runs.size(); ++i)
        bench::latencyPercentiles(runs[i].app, runs[i]);
    return 0;
}
