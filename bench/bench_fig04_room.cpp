/**
 * Fig. 4: room-for-improvement study. Per application, the speedup of
 * four impractical oracles over the baseline: infinite PW-caches,
 * infinite PT-walk threads, free page-data migration, and the complete
 * elimination of GPU local page faults.
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    bench::header("Fig. 4: oracle speedups over baseline", baseline);

    bench::columns("app", {"infPWC", "infWalk", "freeMig", "noFault"});
    std::vector<double> pwc_s, walk_s, mig_s, fault_s;
    for (const auto &app : bench::allApps()) {
        sys::SimResults base = sys::runApp(app, baseline);

        cfg::SystemConfig inf_pwc = baseline;
        inf_pwc.oracle.infinitePwc = true;
        cfg::SystemConfig inf_walk = baseline;
        inf_walk.oracle.infiniteWalkers = true;
        cfg::SystemConfig free_mig = baseline;
        free_mig.oracle.zeroMigrationCost = true;
        cfg::SystemConfig no_fault = baseline;
        no_fault.oracle.noLocalFaults = true;

        double s1 = sys::speedup(base, sys::runApp(app, inf_pwc));
        double s2 = sys::speedup(base, sys::runApp(app, inf_walk));
        double s3 = sys::speedup(base, sys::runApp(app, free_mig));
        double s4 = sys::speedup(base, sys::runApp(app, no_fault));
        pwc_s.push_back(s1);
        walk_s.push_back(s2);
        mig_s.push_back(s3);
        fault_s.push_back(s4);
        bench::row(app, {s1, s2, s3, s4});
    }
    bench::row("geomean", {bench::geomean(pwc_s), bench::geomean(walk_s),
                           bench::geomean(mig_s),
                           bench::geomean(fault_s)});
    return 0;
}
