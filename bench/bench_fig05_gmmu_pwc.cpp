/**
 * Fig. 5: GMMU PW-cache hit level distribution on the baseline. A hit
 * at entry level Lk leaves (k-1) memory accesses; "miss" walks all
 * five levels.
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    bench::header("Fig. 5: GMMU PW-cache hit levels (%)", baseline);

    bench::columns("app", {"L2", "L3", "L4", "L5", "miss"});
    for (const auto &app : bench::allApps()) {
        sys::SimResults r = sys::runApp(app, baseline);
        const stats::BucketHistogram &hist = r.gmmuPwcLevels;
        bench::row(app, {100.0 * hist.fraction(2), 100.0 * hist.fraction(3),
                         100.0 * hist.fraction(4), 100.0 * hist.fraction(5),
                         100.0 * hist.fraction(0)},
                   1);
    }
    return 0;
}
