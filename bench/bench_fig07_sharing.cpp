/**
 * Fig. 7: page-sharing characterization. Percentage of page accesses
 * going to pages touched by exactly 1/2/3/4 GPUs during execution.
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    bench::header("Fig. 7: page sharing (% of accesses by sharer count)",
                  baseline);

    bench::columns("app", {"1gpu", "2gpus", "3gpus", "4gpus"});
    for (const auto &app : bench::allApps()) {
        sys::SimResults r = sys::runApp(app, baseline);
        bench::row(app, {100.0 * r.sharingAccesses.fraction(1),
                         100.0 * r.sharingAccesses.fraction(2),
                         100.0 * r.sharingAccesses.fraction(3),
                         100.0 * r.sharingAccesses.fraction(4)},
                   1);
    }
    return 0;
}
