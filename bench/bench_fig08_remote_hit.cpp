/**
 * Fig. 8: remote PW-cache hit characterization. For every local page
 * fault on the baseline, the owner GPU's PW-cache is probed: which
 * prefix level could the remote GPU have supplied?
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    bench::header("Fig. 8: remote PW-cache hit levels on faults (%)",
                  baseline);

    bench::columns("app", {"L2", "L3", "L4", "L5", "miss", "hitAll"});
    for (const auto &app : bench::allApps()) {
        sys::SimResults r = sys::runApp(app, baseline);
        const stats::BucketHistogram &hist = r.remoteProbeLevels;
        double hit = 100.0 * (1.0 - hist.fraction(0));
        if (hist.total() == 0)
            hit = 0.0;
        bench::row(app, {100.0 * hist.fraction(2), 100.0 * hist.fraction(3),
                         100.0 * hist.fraction(4), 100.0 * hist.fraction(5),
                         100.0 * hist.fraction(0), hit},
                   1);
    }
    return 0;
}
