/**
 * Fig. 11: overall performance of Trans-FW normalized to the baseline
 * (paper: 53.8% average improvement, MT the largest, AES/FIR marginal).
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    cfg::SystemConfig fw = sys::transFwConfig();
    bench::header("Fig. 11: Trans-FW speedup over baseline", fw);
    bench::speedupSeries(baseline, fw);
    return 0;
}
