/**
 * Fig. 12: percentage reduction of each L2-TLB-miss latency component
 * under Trans-FW (paper: GMMU PW-queue wait -95.8%, host PW-queue wait
 * -79.8%, fault translation parts -43.4% on average).
 */
#include "bench_util.hpp"

using namespace transfw;

namespace {

double
reduction(double before, double after)
{
    return before > 0 ? 100.0 * (before - after) / before : 0.0;
}

} // namespace

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    cfg::SystemConfig fw = sys::transFwConfig();
    bench::header("Fig. 12: latency component reduction (%)", fw);

    bench::columns("app", {"gmmuQ", "gmmuMem", "hostQ", "hostMem",
                           "xlatPart", "total"});
    std::vector<double> gq, gm, hq, hm, xp, tot;
    for (const auto &app : bench::allApps()) {
        sys::SimResults a = sys::runApp(app, baseline);
        sys::SimResults b = sys::runApp(app, fw);
        // Normalize sums per L2 miss so request-count changes between
        // the runs do not distort the comparison.
        double na = static_cast<double>(std::max<std::uint64_t>(
            1, a.l2TlbMisses));
        double nb = static_cast<double>(std::max<std::uint64_t>(
            1, b.l2TlbMisses));
        auto cmp = [&](double x, double y) {
            return reduction(x / na, y / nb);
        };
        double xlat_a = (a.xlat.gmmuQueue + a.xlat.gmmuMem +
                         a.xlat.hostQueue + a.xlat.hostMem +
                         a.xlat.network + a.xlat.other) /
                        na;
        double xlat_b = (b.xlat.gmmuQueue + b.xlat.gmmuMem +
                         b.xlat.hostQueue + b.xlat.hostMem +
                         b.xlat.network + b.xlat.other) /
                        nb;
        double r1 = cmp(a.xlat.gmmuQueue, b.xlat.gmmuQueue);
        double r2 = cmp(a.xlat.gmmuMem, b.xlat.gmmuMem);
        double r3 = cmp(a.xlat.hostQueue, b.xlat.hostQueue);
        double r4 = cmp(a.xlat.hostMem, b.xlat.hostMem);
        double r5 = reduction(xlat_a, xlat_b);
        double r6 = reduction(a.avgXlatLatency, b.avgXlatLatency);
        gq.push_back(r1);
        gm.push_back(r2);
        hq.push_back(r3);
        hm.push_back(r4);
        xp.push_back(r5);
        tot.push_back(r6);
        bench::row(app, {r1, r2, r3, r4, r5, r6}, 1);
    }
    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (double x : v)
            s += x;
        return s / static_cast<double>(v.size());
    };
    bench::row("mean", {mean(gq), mean(gm), mean(hq), mean(hm), mean(xp),
                        mean(tot)},
               1);
    return 0;
}
