/**
 * Fig. 13: low-level (L2+L3) PW-cache hit rates under Trans-FW versus
 * the baseline, for both the GMMU and the host MMU PW-caches. The host
 * numbers include the remote hits Trans-FW enables.
 */
#include "bench_util.hpp"

using namespace transfw;

namespace {

double
lowLevelHits(const stats::BucketHistogram &hist)
{
    return 100.0 * (hist.fraction(2) + hist.fraction(3));
}

} // namespace

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    cfg::SystemConfig fw = sys::transFwConfig();
    bench::header("Fig. 13: L2+L3 PW-cache hit rates (%), baseline vs "
                  "Trans-FW",
                  fw);

    bench::columns("app", {"gmmu.base", "gmmu.fw", "host.base", "host.fw"});
    for (const auto &app : bench::allApps()) {
        sys::SimResults a = sys::runApp(app, baseline);
        sys::SimResults b = sys::runApp(app, fw);
        bench::row(app, {lowLevelHits(a.gmmuPwcLevels),
                         lowLevelHits(b.gmmuPwcLevels),
                         lowLevelHits(a.hostPwcLevels),
                         lowLevelHits(b.hostPwcLevels)},
                   1);
    }
    return 0;
}
