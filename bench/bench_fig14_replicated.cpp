/**
 * Fig. 14: replicated PT-walks introduced by host-side forwarding —
 * host walks that completed after the remote GPU had already supplied
 * the translation — as a percentage of all host MMU walks, plus the
 * walk-memory-access balance in the GMMUs (extra remote-lookup
 * accesses vs accesses saved by short-circuiting).
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    cfg::SystemConfig fw = sys::transFwConfig();
    bench::header("Fig. 14: replicated walks and GMMU access balance", fw);

    bench::columns("app", {"dup%", "cancel%", "remoteAcc%", "gmmuSave%"});
    for (const auto &app : bench::allApps()) {
        sys::SimResults base = sys::runApp(app, baseline);
        sys::SimResults r = sys::runApp(app, fw);
        double walks = static_cast<double>(
            std::max<std::uint64_t>(1, r.hostWalks));
        double dup = 100.0 * static_cast<double>(r.duplicateWalks) / walks;
        double cancel = 100.0 *
                        static_cast<double>(r.removedFromQueue) /
                        std::max<double>(1.0, static_cast<double>(
                                                  r.forwards));
        // Extra GMMU memory accesses serving remote lookups, and the
        // accesses saved versus the baseline's local walks.
        double extra =
            100.0 * static_cast<double>(r.gmmuRemoteMemAccesses) /
            std::max<double>(1.0, static_cast<double>(
                                      r.gmmuWalkMemAccesses +
                                      r.gmmuRemoteMemAccesses));
        double save =
            100.0 *
            (static_cast<double>(base.gmmuWalkMemAccesses) -
             static_cast<double>(r.gmmuWalkMemAccesses +
                                 r.gmmuRemoteMemAccesses)) /
            std::max<double>(1.0, static_cast<double>(
                                      base.gmmuWalkMemAccesses));
        bench::row(app, {dup, cancel, extra, save}, 1);
    }
    return 0;
}
