/**
 * Fig. 15: sensitivity to the forwarding threshold. Trans-FW speedup
 * over the baseline with the threshold at 0, 0.5 (default), 1 and 2
 * times the host PT-walk thread count.
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    bench::header("Fig. 15: forwarding threshold sensitivity", baseline);

    const std::vector<double> thresholds = {0.0, 0.5, 1.0, 2.0};
    bench::columns("app", {"t=0", "t=0.5", "t=1", "t=2"});

    std::vector<std::vector<double>> per_threshold(thresholds.size());
    std::vector<sys::SimResults> bases;
    for (const auto &app : bench::allApps())
        bases.push_back(sys::runApp(app, baseline));

    std::size_t app_idx = 0;
    for (const auto &app : bench::allApps()) {
        std::vector<double> row_vals;
        for (std::size_t t = 0; t < thresholds.size(); ++t) {
            cfg::SystemConfig fw = sys::transFwConfig();
            fw.transFw.forwardThreshold = thresholds[t];
            double s = sys::speedup(bases[app_idx], sys::runApp(app, fw));
            per_threshold[t].push_back(s);
            row_vals.push_back(s);
        }
        bench::row(app, row_vals);
        ++app_idx;
    }
    std::vector<double> means;
    for (const auto &series : per_threshold)
        means.push_back(bench::geomean(series));
    bench::row("geomean", means);
    return 0;
}
