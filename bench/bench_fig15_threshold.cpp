/**
 * Fig. 15: sensitivity to the forwarding threshold. Trans-FW speedup
 * over the baseline with the threshold at 0, 0.5 (default), 1 and 2
 * times the host PT-walk thread count.
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    bench::header("Fig. 15: forwarding threshold sensitivity", baseline);

    const std::vector<double> thresholds = {0.0, 0.5, 1.0, 2.0};
    bench::columns("app", {"t=0", "t=0.5", "t=1", "t=2"});

    // One sweep batch: per app a baseline point plus one point per
    // threshold, all run concurrently by the shared SweepRunner.
    const std::vector<std::string> apps = bench::allApps();
    std::vector<sys::RunSpec> specs;
    for (const auto &app : apps) {
        specs.push_back({app, baseline, 0.0});
        for (double t : thresholds) {
            cfg::SystemConfig fw = sys::transFwConfig();
            fw.transFw.forwardThreshold = t;
            specs.push_back({app, fw, 0.0});
        }
    }
    std::vector<sys::SimResults> results =
        sys::SweepRunner::shared().run(specs);

    std::vector<std::vector<double>> per_threshold(thresholds.size());
    const std::size_t stride = 1 + thresholds.size();
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const sys::SimResults &base = results[a * stride];
        std::vector<double> row_vals;
        for (std::size_t t = 0; t < thresholds.size(); ++t) {
            double s = sys::speedup(base, results[a * stride + 1 + t]);
            per_threshold[t].push_back(s);
            row_vals.push_back(s);
        }
        bench::row(apps[a], row_vals);
    }
    std::vector<double> means;
    for (const auto &series : per_threshold)
        means.push_back(bench::geomean(series));
    bench::row("geomean", means);
    return 0;
}
