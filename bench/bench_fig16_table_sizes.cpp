/**
 * Fig. 16: sensitivity to PRT/FT sizes. Trans-FW speedup with
 * (250, 1000), (500, 2000) [default] and (1000, 4000) fingerprints.
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    bench::header("Fig. 16: PRT/FT size sensitivity", baseline);

    struct Sizing
    {
        const char *label;
        std::size_t prt_buckets; // x4 slots = fingerprints
        std::size_t ft_buckets;  // x2 slots = fingerprints
    };
    const std::vector<Sizing> sizings = {
        {"(250,1k)", 63, 500},
        {"(500,2k)", 125, 1000},
        {"(1k,4k)", 250, 2000},
    };

    bench::columns("app", {"(250,1k)", "(500,2k)", "(1k,4k)"});
    std::vector<std::vector<double>> series(sizings.size());
    for (const auto &app : bench::allApps()) {
        sys::SimResults base = sys::runApp(app, baseline);
        std::vector<double> vals;
        for (std::size_t i = 0; i < sizings.size(); ++i) {
            cfg::SystemConfig fw = sys::transFwConfig();
            fw.transFw.prtBuckets = sizings[i].prt_buckets;
            fw.transFw.ftBuckets = sizings[i].ft_buckets;
            double s = sys::speedup(base, sys::runApp(app, fw));
            series[i].push_back(s);
            vals.push_back(s);
        }
        bench::row(app, vals);
    }
    std::vector<double> means;
    for (const auto &s : series)
        means.push_back(bench::geomean(s));
    bench::row("geomean", means);
    return 0;
}
