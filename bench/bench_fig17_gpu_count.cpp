/**
 * Fig. 17: Trans-FW with 8 and 16 GPUs, each normalized to the
 * baseline with the same GPU count (input size held fixed).
 */
#include <cstdio>

#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    for (int gpus : {8, 16}) {
        cfg::SystemConfig baseline = sys::baselineConfig();
        baseline.numGpus = gpus;
        cfg::SystemConfig fw = sys::transFwConfig();
        fw.numGpus = gpus;
        bench::header(sim::strfmt("Fig. 17: Trans-FW speedup, %d GPUs",
                                  gpus),
                      fw);
        bench::speedupSeries(baseline, fw);
        std::printf("\n");
    }
    return 0;
}
