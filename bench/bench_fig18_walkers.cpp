/**
 * Fig. 18: sensitivity to the number of PT-walk threads. Baseline and
 * Trans-FW with (GMMU, host) walker counts of (4,8), (8,16), (16,32)
 * and (64,128), all normalized to the baseline with (4,8).
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    bench::header("Fig. 18: PT-walk thread sensitivity "
                  "(normalized to baseline (4,8))",
                  sys::baselineConfig());

    const std::vector<std::pair<int, int>> pools = {
        {4, 8}, {8, 16}, {16, 32}, {64, 128}};

    bench::columns("app", {"b(4,8)", "fw(4,8)", "b(8,16)", "fw(8,16)",
                           "b(16,32)", "fw(16,32)", "b(64,128)",
                           "fw(64,128)"});
    // One sweep batch per the whole figure: the (4,8) baseline point
    // doubles as the reference, which the SweepRunner memo dedupes.
    const std::vector<std::string> apps = bench::allApps();
    std::vector<sys::RunSpec> specs;
    for (const auto &app : apps) {
        for (std::size_t p = 0; p < pools.size(); ++p) {
            cfg::SystemConfig base = sys::baselineConfig();
            base.gmmuWalkers = pools[p].first;
            base.hostWalkers = pools[p].second;
            cfg::SystemConfig fw = sys::transFwConfig();
            fw.gmmuWalkers = pools[p].first;
            fw.hostWalkers = pools[p].second;
            specs.push_back({app, base, 0.0});
            specs.push_back({app, fw, 0.0});
        }
    }
    std::vector<sys::SimResults> results =
        sys::SweepRunner::shared().run(specs);

    std::vector<std::vector<double>> series(pools.size() * 2);
    const std::size_t stride = pools.size() * 2;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        // pools[0] == (4,8): the baseline at index a*stride is the
        // normalization reference for this app.
        const sys::SimResults &reference = results[a * stride];
        std::vector<double> vals;
        for (std::size_t p = 0; p < pools.size(); ++p) {
            double sb = sys::speedup(reference,
                                     results[a * stride + 2 * p]);
            double sf = sys::speedup(reference,
                                     results[a * stride + 2 * p + 1]);
            series[2 * p].push_back(sb);
            series[2 * p + 1].push_back(sf);
            vals.push_back(sb);
            vals.push_back(sf);
        }
        bench::row(apps[a], vals, 2);
    }
    std::vector<double> means;
    for (const auto &s : series)
        means.push_back(bench::geomean(s));
    bench::row("geomean", means, 2);
    return 0;
}
