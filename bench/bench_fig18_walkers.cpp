/**
 * Fig. 18: sensitivity to the number of PT-walk threads. Baseline and
 * Trans-FW with (GMMU, host) walker counts of (4,8), (8,16), (16,32)
 * and (64,128), all normalized to the baseline with (4,8).
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    bench::header("Fig. 18: PT-walk thread sensitivity "
                  "(normalized to baseline (4,8))",
                  sys::baselineConfig());

    const std::vector<std::pair<int, int>> pools = {
        {4, 8}, {8, 16}, {16, 32}, {64, 128}};

    bench::columns("app", {"b(4,8)", "fw(4,8)", "b(8,16)", "fw(8,16)",
                           "b(16,32)", "fw(16,32)", "b(64,128)",
                           "fw(64,128)"});
    std::vector<std::vector<double>> series(pools.size() * 2);
    for (const auto &app : bench::allApps()) {
        cfg::SystemConfig ref = sys::baselineConfig();
        ref.gmmuWalkers = 4;
        ref.hostWalkers = 8;
        sys::SimResults reference = sys::runApp(app, ref);

        std::vector<double> vals;
        for (std::size_t p = 0; p < pools.size(); ++p) {
            cfg::SystemConfig base = sys::baselineConfig();
            base.gmmuWalkers = pools[p].first;
            base.hostWalkers = pools[p].second;
            cfg::SystemConfig fw = sys::transFwConfig();
            fw.gmmuWalkers = pools[p].first;
            fw.hostWalkers = pools[p].second;
            double sb = sys::speedup(reference, sys::runApp(app, base));
            double sf = sys::speedup(reference, sys::runApp(app, fw));
            series[2 * p].push_back(sb);
            series[2 * p + 1].push_back(sf);
            vals.push_back(sb);
            vals.push_back(sf);
        }
        bench::row(app, vals, 2);
    }
    std::vector<double> means;
    for (const auto &s : series)
        means.push_back(bench::geomean(s));
    bench::row("geomean", means, 2);
    return 0;
}
