/**
 * Fig. 19: Trans-FW with a 4-level page table, normalized to the
 * 4-level baseline.
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    baseline.pageTableLevels = 4;
    cfg::SystemConfig fw = sys::transFwConfig();
    fw.pageTableLevels = 4;
    bench::header("Fig. 19: Trans-FW speedup, 4-level page table", fw);
    bench::speedupSeries(baseline, fw);
    return 0;
}
