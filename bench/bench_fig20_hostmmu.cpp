/**
 * Fig. 20: host MMU configuration sensitivity.
 *  (a) 4096-entry host MMU TLB (64-way, 64 sets)
 *  (b) 256-entry host PW-cache
 *  (c) 512-entry host PW-cache
 * Each Trans-FW run is normalized to the baseline with the same
 * configuration.
 */
#include <cstdio>

#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    {
        cfg::SystemConfig baseline = sys::baselineConfig();
        baseline.hostTlb.entries = 4096;
        cfg::SystemConfig fw = sys::transFwConfig();
        fw.hostTlb.entries = 4096;
        bench::header("Fig. 20a: 4096-entry host MMU TLB", fw);
        bench::speedupSeries(baseline, fw);
        std::printf("\n");
    }
    for (std::size_t pwc : {256u, 512u}) {
        cfg::SystemConfig baseline = sys::baselineConfig();
        baseline.pwcEntries = pwc;
        cfg::SystemConfig fw = sys::transFwConfig();
        fw.pwcEntries = pwc;
        bench::header(sim::strfmt("Fig. 20b/c: %zu-entry host PW-cache",
                                  pwc),
                      fw);
        bench::speedupSeries(baseline, fw);
        std::printf("\n");
    }
    return 0;
}
