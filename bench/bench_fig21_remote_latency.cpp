/**
 * Fig. 21: remote-access latency sensitivity. Trans-FW speedup over
 * the default baseline while the GPU-GPU link latency sweeps from 1x
 * to 16x the local memory latency. The paper observes the remote
 * lookup stops paying off around 8x.
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    bench::header("Fig. 21: remote latency sweep (peer latency = k x "
                  "mem latency)",
                  baseline);

    const std::vector<int> multipliers = {1, 2, 4, 8, 16};
    bench::columns("app", {"1x", "2x", "4x", "8x", "16x"});

    std::vector<std::vector<double>> series(multipliers.size());
    for (const auto &app : bench::allApps()) {
        sys::SimResults base = sys::runApp(app, baseline);
        std::vector<double> vals;
        for (std::size_t m = 0; m < multipliers.size(); ++m) {
            cfg::SystemConfig fw = sys::transFwConfig();
            fw.peerLink.latency =
                fw.memLatency * static_cast<sim::Tick>(multipliers[m]);
            double s = sys::speedup(base, sys::runApp(app, fw));
            series[m].push_back(s);
            vals.push_back(s);
        }
        bench::row(app, vals);
    }
    std::vector<double> means;
    for (const auto &s : series)
        means.push_back(bench::geomean(s));
    bench::row("geomean", means);
    return 0;
}
