/**
 * Fig. 22: Trans-FW with the Split Translation Cache organization,
 * normalized to the STC baseline.
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    baseline.pwcKind = pwc::PwcKind::Stc;
    cfg::SystemConfig fw = sys::transFwConfig();
    fw.pwcKind = pwc::PwcKind::Stc;
    bench::header("Fig. 22: Trans-FW speedup with STC PW-caches", fw);
    bench::speedupSeries(baseline, fw);
    return 0;
}
