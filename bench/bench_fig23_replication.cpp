/**
 * Fig. 23: Trans-FW under UVM read-replication (ESI coherence),
 * normalized to the read-replication baseline. Gains shrink versus
 * Fig. 11 because replication removes many read faults, but
 * write-intensive sharers (MT, Conv2d, Im2col) still benefit.
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    baseline.migrationPolicy = cfg::MigrationPolicy::ReadReplicate;
    cfg::SystemConfig fw = sys::transFwConfig();
    fw.migrationPolicy = cfg::MigrationPolicy::ReadReplicate;
    bench::header("Fig. 23: Trans-FW speedup with read replication", fw);
    bench::speedupSeries(baseline, fw);
    return 0;
}
