/**
 * Fig. 24: reads versus writes to pages shared across GPUs on the
 * baseline (the reason read-replication cannot help the
 * write-intensive applications).
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    bench::header("Fig. 24: read/write mix on shared pages (%)", baseline);

    bench::columns("app", {"reads", "writes"});
    for (const auto &app : bench::allApps()) {
        sys::SimResults r = sys::runApp(app, baseline);
        double total = static_cast<double>(r.sharedPageReads +
                                           r.sharedPageWrites);
        if (total == 0)
            total = 1;
        bench::row(app, {100.0 * r.sharedPageReads / total,
                         100.0 * r.sharedPageWrites / total},
                   1);
    }
    return 0;
}
