/**
 * Fig. 25: Trans-FW under the remote-mapping page placement scheme
 * (access-counter promotion, as in recent NVIDIA GPUs), normalized to
 * the remote-mapping baseline.
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    baseline.migrationPolicy = cfg::MigrationPolicy::RemoteMap;
    cfg::SystemConfig fw = sys::transFwConfig();
    fw.migrationPolicy = cfg::MigrationPolicy::RemoteMap;
    bench::header("Fig. 25: Trans-FW speedup with remote mapping", fw);
    bench::speedupSeries(baseline, fw);
    return 0;
}
