/**
 * Fig. 26: Trans-FW on UVM-driver (software) handled far faults, with
 * the Forwarding Table kept in CPU memory and consulted by the driver,
 * normalized to the software baseline.
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    baseline.faultMode = cfg::FaultMode::UvmDriver;
    cfg::SystemConfig fw = sys::transFwConfig();
    fw.faultMode = cfg::FaultMode::UvmDriver;
    bench::header("Fig. 26: Trans-FW speedup on UVM-driver faults", fw);
    bench::speedupSeries(baseline, fw);
    return 0;
}
