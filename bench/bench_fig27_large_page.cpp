/**
 * Fig. 27: Trans-FW with 2 MB pages, normalized to the 2 MB baseline.
 * Large pages raise TLB reach (helping the baseline) but migrate at
 * 2 MB granularity with false sharing, so Trans-FW still helps.
 *
 * Layout note: the default VA spread (512) would place exactly one
 * application page in each 2 MB frame, which nullifies the large-page
 * experiment. Here regions use a spread of 16 with 8x the pages, so a
 * 2 MB frame holds 32 application pages — restoring both the TLB-reach
 * benefit and the false sharing the paper discusses. The PRT/FT
 * fingerprint mask drops to 0 bits because the translation unit is
 * already a 2 MB page.
 */
#include "bench_util.hpp"

using namespace transfw;

namespace {

sys::SimResults
runLarge(const std::string &app, const cfg::SystemConfig &config)
{
    wl::SyntheticSpec spec = wl::appSpec(app, sys::effectiveScale(0.0));
    spec.vaSpread = 16;
    for (auto &region : spec.regions)
        region.pages *= 8;
    wl::SyntheticWorkload workload(spec);
    return sys::runWorkload(workload, config);
}

} // namespace

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    baseline.pageShift = mem::kLargePageShift;
    cfg::SystemConfig fw = sys::transFwConfig();
    fw.pageShift = mem::kLargePageShift;
    fw.transFw.vpnMaskBits = 0;
    bench::header("Fig. 27: Trans-FW speedup with 2MB pages", fw);

    bench::columns("app", {"speedup", "b.pfpki"});
    std::vector<double> speedups;
    for (const auto &app : bench::allApps()) {
        sys::SimResults base = runLarge(app, baseline);
        sys::SimResults trans = runLarge(app, fw);
        double s = sys::speedup(base, trans);
        speedups.push_back(s);
        bench::row(app, {s, base.pfpki()});
    }
    bench::row("geomean", {bench::geomean(speedups), 0.0});
    return 0;
}
