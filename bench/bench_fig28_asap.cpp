/**
 * Fig. 28: comparison with ASAP-style PW-cache prefetching. Both
 * Trans-FW alone and Trans-FW+ASAP are normalized to the ASAP
 * baseline (ASAP enabled in the GMMUs and the host MMU).
 */
#include <cstdio>

#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig asap = sys::baselineConfig();
    asap.asap.enabled = true;

    cfg::SystemConfig fw = sys::transFwConfig();

    cfg::SystemConfig fw_asap = sys::transFwConfig();
    fw_asap.asap.enabled = true;

    bench::header("Fig. 28: Trans-FW vs ASAP prefetching", asap);
    std::printf("-- Trans-FW normalized to ASAP --\n");
    bench::speedupSeries(asap, fw, "fw/asap");
    std::printf("\n-- Trans-FW+ASAP normalized to ASAP --\n");
    bench::speedupSeries(asap, fw_asap, "fw+asap");
    return 0;
}
