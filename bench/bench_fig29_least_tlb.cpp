/**
 * Fig. 29: combining Trans-FW with a Least-TLB-style multi-GPU TLB
 * optimization; Trans-FW + Least-TLB normalized to Least-TLB alone.
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig least = sys::baselineConfig();
    least.leastTlb.enabled = true;

    cfg::SystemConfig combined = sys::transFwConfig();
    combined.leastTlb.enabled = true;

    bench::header("Fig. 29: Trans-FW + Least-TLB vs Least-TLB", combined);
    bench::speedupSeries(least, combined, "fw+least");
    return 0;
}
