/**
 * Fig. 30: data-parallel ML training (VGG16 and ResNet18 layer
 * traces): Trans-FW speedup over the baseline.
 */
#include <cstdio>

#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    cfg::SystemConfig fw = sys::transFwConfig();
    bench::header("Fig. 30: ML training workloads", fw);

    bench::columns("model", {"speedup", "pfpki"});
    for (const char *model : {"VGG16", "ResNet18"}) {
        auto workload = wl::makeMlModel(model);
        sys::SimResults base = sys::runWorkload(*workload, baseline);
        sys::SimResults trans = sys::runWorkload(*workload, fw);
        bench::row(model, {sys::speedup(base, trans), base.pfpki()});
    }
    return 0;
}
