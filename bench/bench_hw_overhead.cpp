/**
 * Section IV-E: hardware overhead of the PRT and FT. The paper sizes
 * the tables at 0.79 KB (PRT) and 2.68 KB (FT) and reports 1.01% /
 * 1.95% of the GPU L2 TLB / host MMU TLB areas via CACTI. We report
 * the bit-level storage and the capacity ratios (area modeling is the
 * one piece we substitute with analytic accounting; see DESIGN.md).
 */
#include <cstdio>

#include "bench_util.hpp"

using namespace transfw;

namespace {

/** Approximate TLB storage: tag (VPN 36b) + PPN (28b) + flags (4b). */
double
tlbKb(std::size_t entries)
{
    return entries * (36.0 + 28.0 + 4.0) / 8.0 / 1024.0;
}

} // namespace

int
main()
{
    cfg::SystemConfig fw = sys::transFwConfig();
    bench::header("Section IV-E: PRT/FT hardware overhead", fw);

    core::PendingRequestTable prt(fw.transFw, 0);
    core::ForwardingTable ft(fw.transFw);

    double prt_kb = prt.bits() / 8.0 / 1024.0;
    double ft_kb = ft.bits() / 8.0 / 1024.0;
    double l2_kb = tlbKb(fw.l2Tlb.entries);
    double host_kb = tlbKb(fw.hostTlb.entries);

    std::printf("PRT: %zu buckets x %u slots, %u-bit fingerprints "
                "= %.2f KB (paper: 0.79 KB)\n",
                fw.transFw.prtBuckets, fw.transFw.prtSlotsPerBucket,
                fw.transFw.prtFingerprintBits, prt_kb);
    std::printf("FT:  %zu buckets x %u slots, %u-bit fingerprints "
                "= %.2f KB (paper: 2.68 KB)\n",
                fw.transFw.ftBuckets, fw.transFw.ftSlotsPerBucket,
                fw.transFw.ftFingerprintBits, ft_kb);
    std::printf("GPU L2 TLB storage:   %.2f KB -> PRT is %.1f%% of it\n",
                l2_kb, 100.0 * prt_kb / l2_kb);
    std::printf("host MMU TLB storage: %.2f KB -> FT is %.1f%% of it\n",
                host_kb, 100.0 * ft_kb / host_kb);
    return 0;
}
