/**
 * Microbenchmarks (google-benchmark) for the hot data structures: the
 * MetroHash-style hash, Cuckoo filter operations, UTC lookups,
 * set-associative arrays, radix page-table walks, and the event queue.
 */
#include <benchmark/benchmark.h>

#include "cache/set_assoc.hpp"
#include "filter/cuckoo_filter.hpp"
#include "filter/metrohash.hpp"
#include "mem/page_table.hpp"
#include "pwc/utc.hpp"
#include "sim/event_queue.hpp"

using namespace transfw;

static void
BM_MetroHash64(benchmark::State &state)
{
    std::uint64_t key = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(filter::metroHash64(++key, 1));
}
BENCHMARK(BM_MetroHash64);

static void
BM_CuckooInsertEraseCycle(benchmark::State &state)
{
    filter::CuckooFilter filter(
        {.numBuckets = 1000, .slotsPerBucket = 2, .fingerprintBits = 11});
    std::uint64_t key = 0;
    for (auto _ : state) {
        filter.insert(key);
        filter.erase(key);
        ++key;
    }
}
BENCHMARK(BM_CuckooInsertEraseCycle);

static void
BM_CuckooLookup(benchmark::State &state)
{
    filter::CuckooFilter filter(
        {.numBuckets = 1000, .slotsPerBucket = 2, .fingerprintBits = 11});
    for (std::uint64_t key = 0; key < 1500; ++key)
        filter.insert(key);
    std::uint64_t key = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(filter.contains(key++ % 3000));
}
BENCHMARK(BM_CuckooLookup);

static void
BM_UtcLookup(benchmark::State &state)
{
    mem::PagingGeometry geo{5, mem::kSmallPageShift};
    pwc::UnifiedTranslationCache utc(128, geo);
    for (mem::Vpn vpn = 0; vpn < 64; ++vpn)
        utc.fill(vpn << 14, 3);
    mem::Vpn vpn = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(utc.lookup((vpn++ % 128) << 14));
}
BENCHMARK(BM_UtcLookup);

static void
BM_SetAssocLookup(benchmark::State &state)
{
    cache::SetAssoc<std::uint64_t> tlb(512, 16);
    for (std::uint64_t key = 0; key < 512; ++key)
        tlb.insert(key, key);
    std::uint64_t key = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.lookup(key++ % 1024));
}
BENCHMARK(BM_SetAssocLookup);

static void
BM_PageTableWalk(benchmark::State &state)
{
    mem::PageTable pt(mem::PagingGeometry{5, mem::kSmallPageShift});
    for (mem::Vpn vpn = 0; vpn < 4096; ++vpn)
        pt.map(vpn << 9, mem::PageInfo{vpn, 0, 1, true, false});
    mem::Vpn vpn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pt.walk((vpn % 4096) << 9));
        ++vpn;
    }
}
BENCHMARK(BM_PageTableWalk);

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int fired = 0;
        for (int i = 0; i < 64; ++i)
            eq.schedule(static_cast<sim::Tick>(i % 7), [&] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

BENCHMARK_MAIN();
