/**
 * Microbenchmarks (google-benchmark) for the hot data structures: the
 * MetroHash-style hash, Cuckoo filter operations, UTC lookups,
 * set-associative arrays, radix page-table walks, and the event queue
 * (current kernel and the pre-optimization legacy kernel, kept here
 * verbatim as the before/after reference).
 *
 * Beyond the google-benchmark registry, this binary is the producer of
 * the machine-readable core-performance trajectory:
 *
 *   bench_micro_structures --json BENCH_core.json [--smoke]
 *
 * writes events/sec for the legacy and current event kernels, request
 * allocation throughput (shared_ptr vs pool), a serial-vs-parallel
 * mini sweep, and peak RSS. --smoke shrinks every measurement to CI
 * size (scripts/check.sh runs it on every build). Both flags are
 * stripped before google-benchmark sees argv, so the normal benchmark
 * CLI keeps working.
 */
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "cache/set_assoc.hpp"
#include "filter/cuckoo_filter.hpp"
#include "filter/metrohash.hpp"
#include "mem/page_table.hpp"
#include "mmu/request.hpp"
#include "pwc/utc.hpp"
#include "sim/event_queue.hpp"
#include "sim/task_pool.hpp"
#include "transfw/transfw.hpp"

using namespace transfw;

namespace {

/**
 * The event kernel this repo shipped before the two-level bucket queue
 * and EventFn: a std::priority_queue of std::function entries. Frozen
 * here (weak events dropped — the harness only schedules strong ones)
 * so the BENCH_core.json speedup always compares against the same
 * baseline, not against whatever the library currently is.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    sim::Tick now() const { return now_; }

    void
    schedule(sim::Tick delay, Callback cb)
    {
        heap_.push(Entry{now_ + delay, next_seq_++, std::move(cb)});
    }

    std::uint64_t
    run()
    {
        std::uint64_t executed = 0;
        while (!heap_.empty()) {
            Entry e = std::move(const_cast<Entry &>(heap_.top()));
            heap_.pop();
            now_ = e.when;
            e.cb();
            ++executed;
        }
        return executed;
    }

  private:
    struct Entry
    {
        sim::Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    sim::Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

/**
 * Self-rescheduling event chain, the simulator's dominant pattern
 * (every fired event schedules its successor). The payload ballast
 * makes the callable 48 bytes — larger than std::function's inline
 * buffer (heap allocation per event on the legacy kernel) but within
 * EventFn's 64-byte buffer (allocation-free on the current one),
 * matching real callbacks that capture a component pointer plus a
 * pooled request handle. Delays are a deterministic pseudo-random mix:
 * mostly short (bucket window), every 16th event +1500 ticks to force
 * the far/heap path.
 */
template <class Queue>
struct Chain
{
    Queue *q;
    std::uint64_t *fired;
    std::uint32_t remaining;
    std::uint32_t id;
    std::uint64_t pad[3] = {0, 0, 0};

    void
    operator()()
    {
        ++*fired;
        if (remaining == 0)
            return;
        sim::Tick delay = 1 + ((id * 2654435761u + remaining) % 97);
        if (remaining % 16 == 0)
            delay += 1500;
        q->schedule(delay, Chain{q, fired, remaining - 1, id});
    }
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Events/sec driving @p chains self-rescheduling chains to the end. */
template <class Queue>
double
eventKernelThroughput(int chains, std::uint32_t perChain, int reps)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        Queue q;
        std::uint64_t fired = 0;
        auto start = std::chrono::steady_clock::now();
        for (int c = 0; c < chains; ++c)
            q.schedule(static_cast<sim::Tick>(c % 13),
                       Chain<Queue>{&q, &fired,
                                    perChain - 1,
                                    static_cast<std::uint32_t>(c)});
        q.run();
        double secs = secondsSince(start);
        if (secs > 0.0)
            best = std::max(best, static_cast<double>(fired) / secs);
    }
    return best;
}

double
sharedPtrRequestThroughput(std::uint64_t ops, int reps)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        auto start = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < ops; ++i) {
            auto req = std::make_shared<mmu::XlatRequest>();
            req->vpn = i;
            benchmark::DoNotOptimize(req);
        }
        double secs = secondsSince(start);
        if (secs > 0.0)
            best = std::max(best, static_cast<double>(ops) / secs);
    }
    return best;
}

double
pooledRequestThroughput(std::uint64_t ops, int reps)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        auto start = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < ops; ++i) {
            mmu::XlatPtr req = mmu::makeRequest();
            req->vpn = i;
            benchmark::DoNotOptimize(req);
        }
        double secs = secondsSince(start);
        if (secs > 0.0)
            best = std::max(best, static_cast<double>(ops) / secs);
    }
    return best;
}

struct SweepMeasurement
{
    std::size_t points = 0;
    double scale = 0.0;
    double serialSeconds = 0.0;
    double parallelSeconds = 0.0;
    int parallelJobs = 0;
    bool identical = false;
};

SweepMeasurement
miniSweep(double scale)
{
    const std::vector<std::string> apps = {"AES", "FIR", "KM"};
    std::vector<sys::RunSpec> specs;
    for (const auto &app : apps) {
        specs.push_back({app, sys::baselineConfig(), scale});
        specs.push_back({app, sys::transFwConfig(), scale});
    }

    SweepMeasurement m;
    m.points = specs.size();
    m.scale = scale;

    sys::SweepRunner serial(1);
    auto start = std::chrono::steady_clock::now();
    std::vector<sys::SimResults> serialResults = serial.run(specs);
    m.serialSeconds = secondsSince(start);

    sys::SweepRunner parallel(
        static_cast<int>(sim::TaskPool::defaultThreads()));
    m.parallelJobs = parallel.jobs();
    start = std::chrono::steady_clock::now();
    std::vector<sys::SimResults> parallelResults = parallel.run(specs);
    m.parallelSeconds = secondsSince(start);

    m.identical = serialResults.size() == parallelResults.size();
    for (std::size_t i = 0; m.identical && i < serialResults.size(); ++i)
        m.identical = serialResults[i].execTime ==
                          parallelResults[i].execTime &&
                      serialResults[i].xlatLatencyHist.count() ==
                          parallelResults[i].xlatLatencyHist.count();
    return m;
}

std::uint64_t
peakRssBytes()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // Linux reports ru_maxrss in kilobytes.
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

double
ratio(double num, double den)
{
    return den > 0.0 ? num / den : 0.0;
}

int
writeCoreJson(const std::string &path, bool smoke)
{
    const int chains = 64;
    const std::uint32_t perChain = smoke ? 500u : 20000u;
    const std::uint64_t poolOps = smoke ? 200000ull : 4000000ull;
    const int reps = smoke ? 2 : 3;
    const double sweepScale = smoke ? 0.05 : 0.25;

    std::fprintf(stderr, "event kernel: %d chains x %u events...\n",
                 chains, perChain);
    double legacy =
        eventKernelThroughput<LegacyEventQueue>(chains, perChain, reps);
    double fast =
        eventKernelThroughput<sim::EventQueue>(chains, perChain, reps);

    std::fprintf(stderr, "request pool: %llu ops...\n",
                 static_cast<unsigned long long>(poolOps));
    double sharedPtr = sharedPtrRequestThroughput(poolOps, reps);
    double pooled = pooledRequestThroughput(poolOps, reps);

    std::fprintf(stderr, "mini sweep: scale %.2f...\n", sweepScale);
    SweepMeasurement sweep = miniSweep(sweepScale);

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"transfw-bench-core-v1\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"event_kernel\": {\n");
    std::fprintf(f, "    \"chains\": %d,\n", chains);
    std::fprintf(f, "    \"events_per_chain\": %u,\n", perChain);
    std::fprintf(f, "    \"legacy_events_per_sec\": %.0f,\n", legacy);
    std::fprintf(f, "    \"fast_events_per_sec\": %.0f,\n", fast);
    std::fprintf(f, "    \"speedup\": %.3f\n", ratio(fast, legacy));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"request_pool\": {\n");
    std::fprintf(f, "    \"ops\": %llu,\n",
                 static_cast<unsigned long long>(poolOps));
    std::fprintf(f, "    \"shared_ptr_ops_per_sec\": %.0f,\n", sharedPtr);
    std::fprintf(f, "    \"pooled_ops_per_sec\": %.0f,\n", pooled);
    std::fprintf(f, "    \"speedup\": %.3f\n", ratio(pooled, sharedPtr));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"sweep\": {\n");
    std::fprintf(f, "    \"points\": %zu,\n", sweep.points);
    std::fprintf(f, "    \"scale\": %.3f,\n", sweep.scale);
    std::fprintf(f, "    \"serial_seconds\": %.3f,\n", sweep.serialSeconds);
    std::fprintf(f, "    \"parallel_seconds\": %.3f,\n",
                 sweep.parallelSeconds);
    std::fprintf(f, "    \"parallel_jobs\": %d,\n", sweep.parallelJobs);
    std::fprintf(f, "    \"speedup\": %.3f,\n",
                 ratio(sweep.serialSeconds, sweep.parallelSeconds));
    std::fprintf(f, "    \"identical_results\": %s\n",
                 sweep.identical ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"peak_rss_bytes\": %llu\n",
                 static_cast<unsigned long long>(peakRssBytes()));
    std::fprintf(f, "}\n");
    std::fclose(f);

    std::fprintf(stderr,
                 "event kernel %.2fx, request pool %.2fx, sweep "
                 "%.2fx on %d jobs (identical=%s) -> %s\n",
                 ratio(fast, legacy), ratio(pooled, sharedPtr),
                 ratio(sweep.serialSeconds, sweep.parallelSeconds),
                 sweep.parallelJobs, sweep.identical ? "yes" : "no",
                 path.c_str());
    return sweep.identical ? 0 : 1;
}

} // namespace

static void
BM_MetroHash64(benchmark::State &state)
{
    std::uint64_t key = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(filter::metroHash64(++key, 1));
}
BENCHMARK(BM_MetroHash64);

static void
BM_CuckooInsertEraseCycle(benchmark::State &state)
{
    filter::CuckooFilter filter(
        {.numBuckets = 1000, .slotsPerBucket = 2, .fingerprintBits = 11});
    std::uint64_t key = 0;
    for (auto _ : state) {
        filter.insert(key);
        filter.erase(key);
        ++key;
    }
}
BENCHMARK(BM_CuckooInsertEraseCycle);

static void
BM_CuckooLookup(benchmark::State &state)
{
    filter::CuckooFilter filter(
        {.numBuckets = 1000, .slotsPerBucket = 2, .fingerprintBits = 11});
    for (std::uint64_t key = 0; key < 1500; ++key)
        filter.insert(key);
    std::uint64_t key = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(filter.contains(key++ % 3000));
}
BENCHMARK(BM_CuckooLookup);

static void
BM_UtcLookup(benchmark::State &state)
{
    mem::PagingGeometry geo{5, mem::kSmallPageShift};
    pwc::UnifiedTranslationCache utc(128, geo);
    for (mem::Vpn vpn = 0; vpn < 64; ++vpn)
        utc.fill(vpn << 14, 3);
    mem::Vpn vpn = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(utc.lookup((vpn++ % 128) << 14));
}
BENCHMARK(BM_UtcLookup);

static void
BM_SetAssocLookup(benchmark::State &state)
{
    cache::SetAssoc<std::uint64_t> tlb(512, 16);
    for (std::uint64_t key = 0; key < 512; ++key)
        tlb.insert(key, key);
    std::uint64_t key = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.lookup(key++ % 1024));
}
BENCHMARK(BM_SetAssocLookup);

static void
BM_PageTableWalk(benchmark::State &state)
{
    mem::PageTable pt(mem::PagingGeometry{5, mem::kSmallPageShift});
    for (mem::Vpn vpn = 0; vpn < 4096; ++vpn)
        pt.map(vpn << 9, mem::PageInfo{vpn, 0, 1, true, false});
    mem::Vpn vpn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pt.walk((vpn % 4096) << 9));
        ++vpn;
    }
}
BENCHMARK(BM_PageTableWalk);

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int fired = 0;
        for (int i = 0; i < 64; ++i)
            eq.schedule(static_cast<sim::Tick>(i % 7), [&] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_EventKernelChains(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(
            eventKernelThroughput<sim::EventQueue>(16, 500, 1));
}
BENCHMARK(BM_EventKernelChains);

static void
BM_EventKernelChainsLegacy(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(
            eventKernelThroughput<LegacyEventQueue>(16, 500, 1));
}
BENCHMARK(BM_EventKernelChainsLegacy);

static void
BM_RequestPoolCycle(benchmark::State &state)
{
    for (auto _ : state) {
        mmu::XlatPtr req = mmu::makeRequest();
        benchmark::DoNotOptimize(req);
    }
}
BENCHMARK(BM_RequestPoolCycle);

static void
BM_RequestSharedPtrCycle(benchmark::State &state)
{
    for (auto _ : state) {
        auto req = std::make_shared<mmu::XlatRequest>();
        benchmark::DoNotOptimize(req);
    }
}
BENCHMARK(BM_RequestSharedPtrCycle);

int
main(int argc, char **argv)
{
    std::string jsonPath;
    bool smoke = false;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            rest.push_back(argv[i]);
    }

    if (!jsonPath.empty())
        return writeCoreJson(jsonPath, smoke);

    int restArgc = static_cast<int>(rest.size());
    benchmark::Initialize(&restArgc, rest.data());
    if (benchmark::ReportUnrecognizedArguments(restArgc, rest.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
