/**
 * Microbenchmarks (google-benchmark) for the hot data structures: the
 * MetroHash-style hash, Cuckoo filter operations, UTC lookups,
 * set-associative arrays, radix page-table walks, and the event queue
 * (current kernel and the pre-optimization legacy kernel, kept here
 * verbatim as the before/after reference).
 *
 * Beyond the google-benchmark registry, this binary is the producer of
 * the machine-readable core-performance trajectory:
 *
 *   bench_micro_structures --json BENCH_core.json [--smoke]
 *
 * writes events/sec for the legacy and current event kernels, request
 * allocation throughput (shared_ptr vs pool), a serial-vs-parallel
 * mini sweep, and peak RSS. Schema v2 adds the translation-path memory
 * layout sections: page-table walks (node-map vs flat radix nodes),
 * MSHR cycles (unordered_map vs FlatMap + inline waiter lists),
 * FlatMap vs std::unordered_map, Cuckoo probes (three-hash scalar vs
 * single-pass packed-bucket), and a whole-simulation sim_end_to_end
 * run. Every "legacy" structure is kept here verbatim so the JSON
 * speedups always compare against the same frozen baseline. --smoke
 * shrinks every measurement to CI size (scripts/check.sh runs it on
 * every build). Both flags are stripped before google-benchmark sees
 * argv, so the normal benchmark CLI keeps working.
 */
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/mshr.hpp"
#include "cache/set_assoc.hpp"
#include "filter/cuckoo_filter.hpp"
#include "filter/metrohash.hpp"
#include "mem/page_table.hpp"
#include "mmu/request.hpp"
#include "pwc/utc.hpp"
#include "sim/event_queue.hpp"
#include "sim/flat_map.hpp"
#include "sim/random.hpp"
#include "sim/task_pool.hpp"
#include "transfw/transfw.hpp"

using namespace transfw;

namespace {

/**
 * The event kernel this repo shipped before the two-level bucket queue
 * and EventFn: a std::priority_queue of std::function entries. Frozen
 * here (weak events dropped — the harness only schedules strong ones)
 * so the BENCH_core.json speedup always compares against the same
 * baseline, not against whatever the library currently is.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    sim::Tick now() const { return now_; }

    void
    schedule(sim::Tick delay, Callback cb)
    {
        heap_.push(Entry{now_ + delay, next_seq_++, std::move(cb)});
    }

    std::uint64_t
    run()
    {
        std::uint64_t executed = 0;
        while (!heap_.empty()) {
            Entry e = std::move(const_cast<Entry &>(heap_.top()));
            heap_.pop();
            now_ = e.when;
            e.cb();
            ++executed;
        }
        return executed;
    }

  private:
    struct Entry
    {
        sim::Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    sim::Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

/**
 * The radix page table this repo shipped before the flat-node layout:
 * per-node std::unordered_map children/leaves behind unique_ptr.
 * Frozen verbatim (walk/map only — all the harness exercises) as the
 * page_table section's before/after reference.
 */
class LegacyPageTable
{
  public:
    explicit LegacyPageTable(mem::PagingGeometry geo) : geo_(geo) {}

    void
    map(mem::Vpn vpn, const mem::PageInfo &info)
    {
        Node *node = &root_;
        for (int level = geo_.levels; level > geo_.leafLevel(); --level) {
            unsigned idx = geo_.index(vpn, level);
            auto &child = node->children[idx];
            if (!child)
                child = std::make_unique<Node>();
            node = child.get();
        }
        node->leaves.insert_or_assign(geo_.index(vpn, geo_.leafLevel()),
                                      info);
    }

    mem::WalkResult
    walk(mem::Vpn vpn, int pwc_hit_level = 0) const
    {
        mem::WalkResult res;
        int start_level = pwc_hit_level ? pwc_hit_level - 1 : geo_.levels;
        const Node *node = &root_;
        for (int l = geo_.levels; l > start_level; --l) {
            auto it = node->children.find(geo_.index(vpn, l));
            if (it == node->children.end())
                return res;
            node = it->second.get();
        }
        res.deepestFilled = pwc_hit_level;
        for (int level = start_level; level >= geo_.leafLevel(); --level) {
            ++res.accesses;
            if (level == geo_.leafLevel()) {
                auto it = node->leaves.find(geo_.index(vpn, level));
                if (it == node->leaves.end())
                    return res;
                res.present = true;
                res.info = it->second;
                return res;
            }
            auto it = node->children.find(geo_.index(vpn, level));
            if (it == node->children.end())
                return res;
            res.deepestFilled = level;
            node = it->second.get();
        }
        return res;
    }

  private:
    struct Node
    {
        std::unordered_map<unsigned, std::unique_ptr<Node>> children;
        std::unordered_map<unsigned, mem::PageInfo> leaves;
    };

    mem::PagingGeometry geo_;
    Node root_;
};

/**
 * The MSHR file before FlatMap + inline waiter lists: hash-map entries
 * each owning a heap-allocated std::vector of waiters. Frozen as the
 * mshr section's baseline.
 */
template <typename Waiter>
class LegacyMshr
{
  public:
    bool
    allocate(std::uint64_t key, Waiter waiter)
    {
        auto [it, inserted] = entries_.try_emplace(key);
        it->second.push_back(std::move(waiter));
        return inserted;
    }

    bool outstanding(std::uint64_t key) const
    {
        return entries_.count(key) != 0;
    }

    std::vector<Waiter>
    release(std::uint64_t key)
    {
        auto it = entries_.find(key);
        if (it == entries_.end())
            return {};
        std::vector<Waiter> waiters = std::move(it->second);
        entries_.erase(it);
        return waiters;
    }

  private:
    std::unordered_map<std::uint64_t, std::vector<Waiter>> entries_;
};

/**
 * The Cuckoo filter before the single-pass probe: three full
 * MetroHash buffer-path computations per operation (fingerprint,
 * primary bucket, and the fingerprint's alt-bucket hash) plus scalar
 * slot-by-slot bucket scans. Frozen verbatim — identical insert/kick
 * sequences to the library filter — as the cuckoo_probe baseline.
 */
class LegacyCuckooFilter
{
  public:
    using Fingerprint = std::uint16_t;

    explicit LegacyCuckooFilter(const filter::CuckooParams &params)
        : params_(params),
          table_(params.numBuckets * params.slotsPerBucket, 0),
          rng_(params.seed)
    {}

    bool
    insert(std::uint64_t key)
    {
        Fingerprint fp = fingerprintOf(key);
        std::size_t b1 = primaryBucket(key);
        std::size_t b2 = altBucket(b1, fp);
        if (tryPlace(b1, fp) || tryPlace(b2, fp))
            return true;
        std::size_t bucket = rng_.chance(0.5) ? b1 : b2;
        for (unsigned kick = 0; kick < params_.maxKicks; ++kick) {
            unsigned victim =
                static_cast<unsigned>(rng_.range(params_.slotsPerBucket));
            std::swap(fp, slot(bucket, victim));
            bucket = altBucket(bucket, fp);
            if (tryPlace(bucket, fp))
                return true;
        }
        return false;
    }

    bool
    contains(std::uint64_t key) const
    {
        Fingerprint fp = fingerprintOf(key);
        std::size_t b1 = primaryBucket(key);
        if (bucketContains(b1, fp))
            return true;
        return bucketContains(altBucket(b1, fp), fp);
    }

  private:
    Fingerprint
    fingerprintOf(std::uint64_t key) const
    {
        const std::uint64_t mask = (1ULL << params_.fingerprintBits) - 1;
        // The pre-refactor uint64 overload routed through the generic
        // buffer path; call it directly to keep that cost in the
        // baseline.
        std::uint64_t h = filter::metroHash64(
            &key, sizeof key, params_.seed ^ 0xF1F1F1F1ULL);
        auto fp = static_cast<Fingerprint>(h & mask);
        if (fp == 0)
            fp = static_cast<Fingerprint>(
                     (h >> params_.fingerprintBits) & mask) |
                 1;
        return fp;
    }

    std::size_t
    primaryBucket(std::uint64_t key) const
    {
        return filter::metroHash64(&key, sizeof key, params_.seed) %
               params_.numBuckets;
    }

    std::size_t
    altBucket(std::size_t bucket, Fingerprint fp) const
    {
        std::uint64_t f = fp;
        std::size_t h =
            filter::metroHash64(&f, sizeof f, // old overload widened
                                params_.seed ^ 0xA5A5A5A5ULL) %
            params_.numBuckets;
        return (h + params_.numBuckets - bucket % params_.numBuckets) %
               params_.numBuckets;
    }

    Fingerprint &slot(std::size_t bucket, unsigned s)
    {
        return table_[bucket * params_.slotsPerBucket + s];
    }
    const Fingerprint &slot(std::size_t bucket, unsigned s) const
    {
        return table_[bucket * params_.slotsPerBucket + s];
    }

    bool
    tryPlace(std::size_t bucket, Fingerprint fp)
    {
        for (unsigned s = 0; s < params_.slotsPerBucket; ++s) {
            if (slot(bucket, s) == 0) {
                slot(bucket, s) = fp;
                return true;
            }
        }
        return false;
    }

    bool
    bucketContains(std::size_t bucket, Fingerprint fp) const
    {
        for (unsigned s = 0; s < params_.slotsPerBucket; ++s)
            if (slot(bucket, s) == fp)
                return true;
        return false;
    }

    filter::CuckooParams params_;
    std::vector<Fingerprint> table_;
    mutable sim::Rng rng_;
};

/**
 * Self-rescheduling event chain, the simulator's dominant pattern
 * (every fired event schedules its successor). The payload ballast
 * makes the callable 48 bytes — larger than std::function's inline
 * buffer (heap allocation per event on the legacy kernel) but within
 * EventFn's 64-byte buffer (allocation-free on the current one),
 * matching real callbacks that capture a component pointer plus a
 * pooled request handle. Delays are a deterministic pseudo-random mix:
 * mostly short (bucket window), every 16th event +1500 ticks to force
 * the far/heap path.
 */
template <class Queue>
struct Chain
{
    Queue *q;
    std::uint64_t *fired;
    std::uint32_t remaining;
    std::uint32_t id;
    std::uint64_t pad[3] = {0, 0, 0};

    void
    operator()()
    {
        ++*fired;
        if (remaining == 0)
            return;
        sim::Tick delay = 1 + ((id * 2654435761u + remaining) % 97);
        if (remaining % 16 == 0)
            delay += 1500;
        q->schedule(delay, Chain{q, fired, remaining - 1, id});
    }
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Events/sec driving @p chains self-rescheduling chains to the end. */
template <class Queue>
double
eventKernelThroughput(int chains, std::uint32_t perChain, int reps)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        Queue q;
        std::uint64_t fired = 0;
        auto start = std::chrono::steady_clock::now();
        for (int c = 0; c < chains; ++c)
            q.schedule(static_cast<sim::Tick>(c % 13),
                       Chain<Queue>{&q, &fired,
                                    perChain - 1,
                                    static_cast<std::uint32_t>(c)});
        q.run();
        double secs = secondsSince(start);
        if (secs > 0.0)
            best = std::max(best, static_cast<double>(fired) / secs);
    }
    return best;
}

double
sharedPtrRequestThroughput(std::uint64_t ops, int reps)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        auto start = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < ops; ++i) {
            auto req = std::make_shared<mmu::XlatRequest>();
            req->vpn = i;
            benchmark::DoNotOptimize(req);
        }
        double secs = secondsSince(start);
        if (secs > 0.0)
            best = std::max(best, static_cast<double>(ops) / secs);
    }
    return best;
}

double
pooledRequestThroughput(std::uint64_t ops, int reps)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        auto start = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < ops; ++i) {
            mmu::XlatPtr req = mmu::makeRequest();
            req->vpn = i;
            benchmark::DoNotOptimize(req);
        }
        double secs = secondsSince(start);
        if (secs > 0.0)
            best = std::max(best, static_cast<double>(ops) / secs);
    }
    return best;
}

/** Deterministic key stream spreading keys over a large VPN range. */
inline std::uint64_t
benchKey(std::uint64_t i)
{
    return (i * 0x9E3779B97F4A7C15ULL) >> 24;
}

/**
 * VPN stream for the page-table section: 512-page contiguous clusters
 * (one leaf node's span) at scattered bases, like the apps' large
 * contiguous buffers spread across the address space.
 */
inline std::uint64_t
pageKey(std::uint64_t i)
{
    return (benchKey(i >> 9) << 9) | (i & 511);
}

/** Walks/sec over @p pages mapped pages (hits and misses mixed). */
template <class Table>
double
pageTableWalkThroughput(std::size_t pages, std::uint64_t walks, int reps)
{
    mem::PagingGeometry geo{5, mem::kSmallPageShift};
    Table pt(geo);
    for (std::size_t i = 0; i < pages; ++i)
        pt.map(pageKey(i), mem::PageInfo{static_cast<mem::Ppn>(i), 0, 1,
                                         true, false});
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        auto start = std::chrono::steady_clock::now();
        int acc = 0;
        for (std::uint64_t w = 0; w < walks; ++w) {
            // ~3/4 hits, 1/4 faulting walks, like a warm translation
            // path that still takes far faults.
            std::uint64_t i = (w * 48271) % (pages + pages / 3);
            acc += pt.walk(pageKey(i)).accesses;
        }
        benchmark::DoNotOptimize(acc);
        double secs = secondsSince(start);
        if (secs > 0.0)
            best = std::max(best, static_cast<double>(walks) / secs);
    }
    return best;
}

/** MSHR allocate/merge/release cycles per second. */
template <class M>
double
mshrThroughput(std::uint64_t cycles, int reps)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        M mshr;
        auto start = std::chrono::steady_clock::now();
        std::uint64_t woken = 0;
        for (std::uint64_t i = 0; i < cycles; ++i) {
            std::uint64_t key = benchKey(i % 64);
            mshr.allocate(key, static_cast<int>(i));       // primary
            mshr.allocate(key, static_cast<int>(i) + 1);   // merge
            if (i % 2 == 0)
                mshr.allocate(key, static_cast<int>(i) + 2);
            for (int w : mshr.release(key))
                woken += static_cast<std::uint64_t>(w) & 1;
        }
        benchmark::DoNotOptimize(woken);
        double secs = secondsSince(start);
        if (secs > 0.0)
            best = std::max(best, static_cast<double>(cycles) / secs);
    }
    return best;
}

/**
 * Mixed map workload (insert, hit/miss lookups, erase half, re-insert)
 * shared by the FlatMap and std::unordered_map measurements.
 */
template <class Map>
double
mapMixedThroughput(std::size_t keys, int rounds, int reps)
{
    double best = 0.0;
    // One op = one insert/find/erase; count them for the rate.
    const std::uint64_t ops =
        static_cast<std::uint64_t>(rounds) * keys * 4;
    for (int r = 0; r < reps; ++r) {
        Map map;
        auto start = std::chrono::steady_clock::now();
        std::uint64_t sum = 0;
        for (int round = 0; round < rounds; ++round) {
            for (std::size_t i = 0; i < keys; ++i)
                map[benchKey(i)] = i;
            for (std::size_t i = 0; i < keys; ++i) {
                auto it = map.find(benchKey(i));
                sum += it == map.end() ? 0 : it->second;
            }
            for (std::size_t i = 0; i < keys; ++i)
                sum += map.find(benchKey(i + keys)) == map.end();
            for (std::size_t i = 0; i < keys; i += 2)
                map.erase(benchKey(i));
        }
        benchmark::DoNotOptimize(sum);
        double secs = secondsSince(start);
        if (secs > 0.0)
            best = std::max(best, static_cast<double>(ops) / secs);
    }
    return best;
}

/** Cuckoo probes/sec over a filter populated like the FT (load ~0.9). */
template <class Filter>
double
cuckooProbeThroughput(std::uint64_t probes, int reps)
{
    filter::CuckooParams params{.numBuckets = 1000,
                                .slotsPerBucket = 2,
                                .fingerprintBits = 11};
    Filter filter(params);
    for (std::uint64_t key = 0; key < 1800; ++key)
        filter.insert(benchKey(key));
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        auto start = std::chrono::steady_clock::now();
        std::uint64_t hits = 0;
        for (std::uint64_t p = 0; p < probes; ++p)
            hits += filter.contains(benchKey(p % 3600)) ? 1 : 0;
        benchmark::DoNotOptimize(hits);
        double secs = secondsSince(start);
        if (secs > 0.0)
            best = std::max(best, static_cast<double>(probes) / secs);
    }
    return best;
}

struct EndToEndMeasurement
{
    double rateScale = 0.0;
    double rateWallSeconds = 0.0;
    std::uint64_t events = 0;
    double eventsPerSec = 0.0;
    double fullScale = 0.0;
    double fullWallSeconds = 0.0; ///< 0 in smoke mode
};

/**
 * Whole-simulation runs (MT under the Trans-FW config). The rate run
 * uses the same scale in smoke and full mode so scripts/check.sh can
 * gate events/sec against the committed full-mode JSON; the full mode
 * additionally times the scale-4 run whose pre-refactor wall clock is
 * frozen in kPreRefactorWallSeconds.
 */
EndToEndMeasurement
simEndToEnd(bool smoke)
{
    EndToEndMeasurement m;
    m.rateScale = 0.5;
    sys::runApp("MT", sys::transFwConfig(), m.rateScale); // warm-up
    double bestWall = 1e30;
    // Best-of-N: wall-clock noise on shared hosts is one-sided (other
    // tenants only ever slow a run down), so the minimum is the
    // cleanest estimator of the true runtime.
    for (int r = 0; r < (smoke ? 2 : 5); ++r) {
        auto start = std::chrono::steady_clock::now();
        sys::SimResults res =
            sys::runApp("MT", sys::transFwConfig(), m.rateScale);
        double secs = secondsSince(start);
        if (secs < bestWall) {
            bestWall = secs;
            m.events = res.eventsExecuted;
        }
    }
    m.rateWallSeconds = bestWall;
    if (bestWall > 0.0)
        m.eventsPerSec = static_cast<double>(m.events) / bestWall;

    if (!smoke) {
        m.fullScale = 4.0;
        m.fullWallSeconds = 1e30;
        for (int r = 0; r < 5; ++r) {
            auto start = std::chrono::steady_clock::now();
            sys::runApp("MT", sys::transFwConfig(), m.fullScale);
            m.fullWallSeconds =
                std::min(m.fullWallSeconds, secondsSince(start));
        }
    }
    return m;
}

/**
 * Frozen reference: wall seconds for runApp("MT", transFwConfig, 4.0)
 * built from the pre-refactor tree (node-hash-map page table, std
 * hash maps across the translation path, three-hash Cuckoo probes),
 * best of 22 runs interleaved with the current build on the same
 * machine — the minimum over many interleaved runs, because tenant
 * noise on a shared host only ever slows a run down. The
 * sim_end_to_end.speedup_vs_pre_refactor field compares the current
 * build's best-of-5 against this reference, so the committed value is
 * only meaningful when regenerated on an otherwise idle machine.
 */
constexpr double kPreRefactorWallSeconds = 0.5505;

/**
 * Frozen reference: the same A/B measured as strictly interleaved
 * pre/post run pairs (22 runs of each, alternating, same machine,
 * minima compared). Interleaving cancels the slow drift in host
 * tenancy that the live speedup_vs_pre_refactor ratio is exposed to,
 * so this is the controlled measurement of the refactor's whole-run
 * effect: 0.5505 s -> 0.4064 s.
 */
constexpr double kInterleavedAbSpeedup = 1.355;

struct SweepMeasurement
{
    std::size_t points = 0;
    double scale = 0.0;
    double serialSeconds = 0.0;
    double parallelSeconds = 0.0;
    int parallelJobs = 0;
    bool identical = false;
};

SweepMeasurement
miniSweep(double scale)
{
    const std::vector<std::string> apps = {"AES", "FIR", "KM"};
    std::vector<sys::RunSpec> specs;
    for (const auto &app : apps) {
        specs.push_back({app, sys::baselineConfig(), scale});
        specs.push_back({app, sys::transFwConfig(), scale});
    }

    SweepMeasurement m;
    m.points = specs.size();
    m.scale = scale;

    sys::SweepRunner serial(1);
    auto start = std::chrono::steady_clock::now();
    std::vector<sys::SimResults> serialResults = serial.run(specs);
    m.serialSeconds = secondsSince(start);

    sys::SweepRunner parallel(
        static_cast<int>(sim::TaskPool::defaultThreads()));
    m.parallelJobs = parallel.jobs();
    if (m.parallelJobs <= 1)
        std::fprintf(stderr,
                     "warning: 1 hardware thread — sweep parallelism "
                     "cannot be measured here; recording degraded "
                     "speedup\n");
    start = std::chrono::steady_clock::now();
    std::vector<sys::SimResults> parallelResults = parallel.run(specs);
    m.parallelSeconds = secondsSince(start);

    m.identical = serialResults.size() == parallelResults.size();
    for (std::size_t i = 0; m.identical && i < serialResults.size(); ++i)
        m.identical = serialResults[i].execTime ==
                          parallelResults[i].execTime &&
                      serialResults[i].xlatLatencyHist.count() ==
                          parallelResults[i].xlatLatencyHist.count();
    return m;
}

/** One point of the lane-count scaling curve. */
struct LanePoint
{
    int lanes = 0;
    double wallSeconds = 0.0;
    double eventsPerSec = 0.0;
    double speedup = 0.0; ///< vs the serial (lanes = 0) kernel
    bool identical = false;
};

struct ParallelKernelMeasurement
{
    double scale = 0.0;
    unsigned hardwareThreads = 0;
    bool degraded = false; ///< single hardware thread: no real scaling
    std::uint64_t events = 0;
    double serialSeconds = 0.0;
    double serialEventsPerSec = 0.0;
    std::vector<LanePoint> sweep;
    // Scalar summary of the widest point, kept alongside the curve so
    // existing consumers (scripts/check.sh schema gate, cross-run
    // diffs) keep one stable anchor. identical ANDs the whole curve.
    int lanes = 0;
    double parallelSeconds = 0.0;
    double parallelEventsPerSec = 0.0;
    bool identical = false;
};

/**
 * Intra-run lane kernel scaling curve: the same MT run under the
 * Trans-FW config with the serial kernel (lanes = 0) and with per-GPU
 * event lanes at 1, 2, 4, and hardware-concurrency workers (deduped;
 * TRANSFW_JOBS overrides the top point). A 1-core box cannot measure
 * scaling, so it records the curve it sees plus degraded = true
 * instead of a fiction; the identical_results flag — every point must
 * reproduce the serial run bit-for-bit — is the part scripts/check.sh
 * always gates on.
 */
ParallelKernelMeasurement
parallelKernel(bool smoke)
{
    ParallelKernelMeasurement m;
    m.scale = smoke ? 0.25 : 1.0;
    m.hardwareThreads = sim::TaskPool::defaultThreads();
    int top = static_cast<int>(m.hardwareThreads);
    if (const char *env = std::getenv("TRANSFW_JOBS")) {
        int jobs = std::atoi(env);
        if (jobs > 0)
            top = jobs;
    }
    m.degraded = m.hardwareThreads <= 1;
    if (m.degraded)
        std::fprintf(stderr,
                     "warning: 1 hardware thread — lane scaling cannot "
                     "be measured here; recording degraded curve\n");

    std::vector<int> counts = {1, 2, 4, top};
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()),
                 counts.end());

    cfg::SystemConfig config = sys::transFwConfig();
    config.sim.lanes = 0;
    sys::SimResults serialRes = sys::runApp("MT", config, m.scale);

    const int rounds = smoke ? 2 : 5;
    double serialBest = 1e30;
    for (int r = 0; r < rounds; ++r) {
        auto start = std::chrono::steady_clock::now();
        serialRes = sys::runApp("MT", config, m.scale);
        serialBest = std::min(serialBest, secondsSince(start));
    }
    m.events = serialRes.eventsExecuted;
    m.serialSeconds = serialBest;
    if (serialBest > 0.0)
        m.serialEventsPerSec =
            static_cast<double>(serialRes.eventsExecuted) / serialBest;

    m.identical = true;
    for (int lanes : counts) {
        std::fprintf(stderr, "  lanes=%d...\n", lanes);
        config.sim.lanes = lanes;
        sys::SimResults laneRes = sys::runApp("MT", config, m.scale);
        double laneBest = 1e30;
        for (int r = 0; r < rounds; ++r) {
            auto start = std::chrono::steady_clock::now();
            laneRes = sys::runApp("MT", config, m.scale);
            laneBest = std::min(laneBest, secondsSince(start));
        }

        LanePoint p;
        p.lanes = lanes;
        p.wallSeconds = laneBest;
        if (laneBest > 0.0)
            p.eventsPerSec =
                static_cast<double>(laneRes.eventsExecuted) / laneBest;
        p.speedup = m.serialEventsPerSec > 0.0
                        ? p.eventsPerSec / m.serialEventsPerSec
                        : 0.0;
        p.identical =
            serialRes.execTime == laneRes.execTime &&
            serialRes.eventsExecuted == laneRes.eventsExecuted &&
            serialRes.farFaults == laneRes.farFaults &&
            serialRes.xlatLatencyHist.count() ==
                laneRes.xlatLatencyHist.count();
        m.identical = m.identical && p.identical;
        m.sweep.push_back(p);

        m.lanes = p.lanes;
        m.parallelSeconds = p.wallSeconds;
        m.parallelEventsPerSec = p.eventsPerSec;
    }
    return m;
}

/** One point of the pod-scaling surface. */
struct PodPoint
{
    const char *topology = "";
    int gpus = 0;
    double wallSeconds = 0.0;
    double eventsPerSec = 0.0;
    double xlatP99 = 0.0;
    std::uint64_t events = 0;
};

struct PodScalingMeasurement
{
    double scale = 0.0;
    int shards = 0;
    unsigned hardwareThreads = 0;
    bool degraded = false; ///< single hardware thread (wall noise only)
    std::vector<PodPoint> points;
};

/**
 * Pod-scaling surface: simulator throughput (events/sec) and modeled
 * p99 translation latency as the pod grows across fabric topologies,
 * under the Trans-FW config with a 4-way sharded host MMU. The
 * events/sec column is wall-clock (hardware_threads / degraded say
 * how much to trust it on this box); the p99 column is deterministic
 * modeled latency and diffs cleanly across runs. Smoke stops at 16
 * GPUs; the full run walks 4..64.
 */
PodScalingMeasurement
podScaling(bool smoke)
{
    PodScalingMeasurement m;
    m.scale = smoke ? 0.02 : 0.05;
    m.shards = 4;
    m.hardwareThreads = sim::TaskPool::defaultThreads();
    m.degraded = m.hardwareThreads <= 1;

    const std::pair<ic::Topology, const char *> topos[] = {
        {ic::Topology::AllToAll, "a2a"},
        {ic::Topology::Ring, "ring"},
        {ic::Topology::Mesh2D, "mesh"},
        {ic::Topology::Switch, "switch"},
    };
    std::vector<int> gpuCounts = {4, 8, 16};
    if (!smoke) {
        gpuCounts.push_back(32);
        gpuCounts.push_back(64);
    }

    for (const auto &[topo, name] : topos) {
        for (int gpus : gpuCounts) {
            cfg::SystemConfig config = sys::transFwConfig();
            config.numGpus = gpus;
            config.cusPerGpu = 4;
            config.peerTopology = topo;
            config.hostShards = m.shards;

            auto start = std::chrono::steady_clock::now();
            sys::SimResults r = sys::runApp("MT", config, m.scale);
            double wall = secondsSince(start);

            PodPoint p;
            p.topology = name;
            p.gpus = gpus;
            p.wallSeconds = wall;
            p.events = r.eventsExecuted;
            p.eventsPerSec =
                wall > 0.0
                    ? static_cast<double>(r.eventsExecuted) / wall
                    : 0.0;
            p.xlatP99 = r.xlatLatencyHist.quantile(0.99);
            m.points.push_back(p);
        }
    }
    return m;
}

std::uint64_t
peakRssBytes()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // Linux reports ru_maxrss in kilobytes.
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

double
ratio(double num, double den)
{
    return den > 0.0 ? num / den : 0.0;
}

int
writeCoreJson(const std::string &path, bool smoke)
{
    const int chains = 64;
    const std::uint32_t perChain = smoke ? 500u : 20000u;
    const std::uint64_t poolOps = smoke ? 200000ull : 4000000ull;
    const int reps = smoke ? 2 : 3;
    const double sweepScale = smoke ? 0.05 : 0.25;
    const std::size_t ptPages = smoke ? 20000 : 200000;
    const std::uint64_t ptWalks = smoke ? 200000ull : 2000000ull;
    const std::uint64_t mshrCycles = smoke ? 200000ull : 2000000ull;
    // Keys sized like the erase-churn maps the simulator actually has
    // (MSHRs, PRT/FT counters, UVM pending tables run tens to a few
    // thousand entries; the larger lineCursor_ map is append-only).
    const std::size_t mapKeys = 4096;
    const int mapRounds = smoke ? 4 : 32;
    const std::uint64_t cuckooProbes = smoke ? 1000000ull : 10000000ull;

    // Measure the whole-simulation section first, before the
    // microbench sections grow and fragment the process heap: the
    // wall-clock numbers are meant to reflect a normal simulator
    // process, and the smoke run (scripts/check.sh gate) measures in
    // the same position so the comparison stays like-for-like.
    std::fprintf(stderr, "sim end-to-end (MT, Trans-FW config)...\n");
    EndToEndMeasurement e2e = simEndToEnd(smoke);

    std::fprintf(stderr, "event kernel: %d chains x %u events...\n",
                 chains, perChain);
    double legacy =
        eventKernelThroughput<LegacyEventQueue>(chains, perChain, reps);
    double fast =
        eventKernelThroughput<sim::EventQueue>(chains, perChain, reps);

    std::fprintf(stderr, "request pool: %llu ops...\n",
                 static_cast<unsigned long long>(poolOps));
    double sharedPtr = sharedPtrRequestThroughput(poolOps, reps);
    double pooled = pooledRequestThroughput(poolOps, reps);

    std::fprintf(stderr, "page table: %zu pages x %llu walks...\n",
                 ptPages, static_cast<unsigned long long>(ptWalks));
    double ptLegacy =
        pageTableWalkThroughput<LegacyPageTable>(ptPages, ptWalks, reps);
    double ptFlat =
        pageTableWalkThroughput<mem::PageTable>(ptPages, ptWalks, reps);

    std::fprintf(stderr, "mshr: %llu cycles...\n",
                 static_cast<unsigned long long>(mshrCycles));
    double mshrLegacy = mshrThroughput<LegacyMshr<int>>(mshrCycles, reps);
    double mshrFlat = mshrThroughput<cache::Mshr<int>>(mshrCycles, reps);

    std::fprintf(stderr, "flat map: %zu keys x %d rounds...\n", mapKeys,
                 mapRounds);
    // Interleave the A/B reps (std, flat, std, flat, ...): the two
    // sides see the same tenancy drift, so a noise burst shifts both
    // rates instead of skewing the ratio. Same protocol as the
    // interleaved end-to-end A/B.
    double mapStd = 0.0, mapFlat = 0.0;
    for (int r = 0; r < reps; ++r) {
        mapStd = std::max(
            mapStd,
            mapMixedThroughput<
                std::unordered_map<std::uint64_t, std::size_t>>(
                mapKeys, mapRounds, 1));
        mapFlat = std::max(
            mapFlat,
            mapMixedThroughput<sim::FlatMap<std::uint64_t, std::size_t>>(
                mapKeys, mapRounds, 1));
    }

    std::fprintf(stderr, "cuckoo probes: %llu...\n",
                 static_cast<unsigned long long>(cuckooProbes));
    double cuckooLegacy =
        cuckooProbeThroughput<LegacyCuckooFilter>(cuckooProbes, reps);
    double cuckooPacked =
        cuckooProbeThroughput<filter::CuckooFilter>(cuckooProbes, reps);

    std::fprintf(stderr, "mini sweep: scale %.2f...\n", sweepScale);
    SweepMeasurement sweep = miniSweep(sweepScale);

    std::fprintf(stderr, "parallel kernel: lane A/B...\n");
    ParallelKernelMeasurement lanes = parallelKernel(smoke);

    std::fprintf(stderr, "pod scaling: gpus x topology...\n");
    PodScalingMeasurement pod = podScaling(smoke);

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"transfw-bench-core-v3\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"hardware_threads\": %u,\n",
                 sim::TaskPool::defaultThreads());
    std::fprintf(f, "  \"event_kernel\": {\n");
    std::fprintf(f, "    \"chains\": %d,\n", chains);
    std::fprintf(f, "    \"events_per_chain\": %u,\n", perChain);
    std::fprintf(f, "    \"legacy_events_per_sec\": %.0f,\n", legacy);
    std::fprintf(f, "    \"fast_events_per_sec\": %.0f,\n", fast);
    std::fprintf(f, "    \"speedup\": %.3f\n", ratio(fast, legacy));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"request_pool\": {\n");
    std::fprintf(f, "    \"ops\": %llu,\n",
                 static_cast<unsigned long long>(poolOps));
    std::fprintf(f, "    \"shared_ptr_ops_per_sec\": %.0f,\n", sharedPtr);
    std::fprintf(f, "    \"pooled_ops_per_sec\": %.0f,\n", pooled);
    std::fprintf(f, "    \"speedup\": %.3f\n", ratio(pooled, sharedPtr));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"page_table\": {\n");
    std::fprintf(f, "    \"pages\": %zu,\n", ptPages);
    std::fprintf(f, "    \"walks\": %llu,\n",
                 static_cast<unsigned long long>(ptWalks));
    std::fprintf(f, "    \"node_map_walks_per_sec\": %.0f,\n", ptLegacy);
    std::fprintf(f, "    \"flat_node_walks_per_sec\": %.0f,\n", ptFlat);
    std::fprintf(f, "    \"speedup\": %.3f\n", ratio(ptFlat, ptLegacy));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"mshr\": {\n");
    std::fprintf(f, "    \"cycles\": %llu,\n",
                 static_cast<unsigned long long>(mshrCycles));
    std::fprintf(f, "    \"unordered_map_cycles_per_sec\": %.0f,\n",
                 mshrLegacy);
    std::fprintf(f, "    \"flat_map_cycles_per_sec\": %.0f,\n", mshrFlat);
    std::fprintf(f, "    \"speedup\": %.3f\n",
                 ratio(mshrFlat, mshrLegacy));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"flat_map\": {\n");
    std::fprintf(f, "    \"keys\": %zu,\n", mapKeys);
    std::fprintf(f, "    \"rounds\": %d,\n", mapRounds);
    std::fprintf(f, "    \"unordered_map_ops_per_sec\": %.0f,\n", mapStd);
    std::fprintf(f, "    \"flat_map_ops_per_sec\": %.0f,\n", mapFlat);
    std::fprintf(f, "    \"speedup\": %.3f\n", ratio(mapFlat, mapStd));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"cuckoo_probe\": {\n");
    std::fprintf(f, "    \"probes\": %llu,\n",
                 static_cast<unsigned long long>(cuckooProbes));
    std::fprintf(f, "    \"three_hash_probes_per_sec\": %.0f,\n",
                 cuckooLegacy);
    std::fprintf(f, "    \"single_pass_probes_per_sec\": %.0f,\n",
                 cuckooPacked);
    std::fprintf(f, "    \"speedup\": %.3f\n",
                 ratio(cuckooPacked, cuckooLegacy));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"sweep\": {\n");
    std::fprintf(f, "    \"points\": %zu,\n", sweep.points);
    std::fprintf(f, "    \"scale\": %.3f,\n", sweep.scale);
    std::fprintf(f, "    \"serial_seconds\": %.3f,\n", sweep.serialSeconds);
    std::fprintf(f, "    \"parallel_seconds\": %.3f,\n",
                 sweep.parallelSeconds);
    std::fprintf(f, "    \"parallel_jobs\": %d,\n", sweep.parallelJobs);
    std::fprintf(f, "    \"speedup\": %.3f,\n",
                 ratio(sweep.serialSeconds, sweep.parallelSeconds));
    std::fprintf(f, "    \"degraded\": %s,\n",
                 sweep.parallelJobs <= 1 ? "true" : "false");
    std::fprintf(f, "    \"identical_results\": %s\n",
                 sweep.identical ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"parallel_kernel\": {\n");
    std::fprintf(f, "    \"app\": \"MT\",\n");
    std::fprintf(f, "    \"config\": \"transfw\",\n");
    std::fprintf(f, "    \"scale\": %.2f,\n", lanes.scale);
    std::fprintf(f, "    \"hardware_threads\": %u,\n",
                 lanes.hardwareThreads);
    std::fprintf(f, "    \"degraded\": %s,\n",
                 lanes.degraded ? "true" : "false");
    std::fprintf(f, "    \"lanes\": %d,\n", lanes.lanes);
    std::fprintf(f, "    \"events_executed\": %llu,\n",
                 static_cast<unsigned long long>(lanes.events));
    std::fprintf(f, "    \"serial_wall_seconds\": %.4f,\n",
                 lanes.serialSeconds);
    std::fprintf(f, "    \"lane_wall_seconds\": %.4f,\n",
                 lanes.parallelSeconds);
    std::fprintf(f, "    \"serial_events_per_sec\": %.0f,\n",
                 lanes.serialEventsPerSec);
    std::fprintf(f, "    \"lane_events_per_sec\": %.0f,\n",
                 lanes.parallelEventsPerSec);
    std::fprintf(f, "    \"speedup\": %.3f,\n",
                 ratio(lanes.parallelEventsPerSec,
                       lanes.serialEventsPerSec));
    std::fprintf(f, "    \"sweep\": [\n");
    for (std::size_t i = 0; i < lanes.sweep.size(); ++i) {
        const LanePoint &p = lanes.sweep[i];
        std::fprintf(f,
                     "      {\"lanes\": %d, \"wall_seconds\": %.4f, "
                     "\"events_per_sec\": %.0f, \"speedup\": %.3f, "
                     "\"identical\": %s}%s\n",
                     p.lanes, p.wallSeconds, p.eventsPerSec, p.speedup,
                     p.identical ? "true" : "false",
                     i + 1 < lanes.sweep.size() ? "," : "");
    }
    std::fprintf(f, "    ],\n");
    std::fprintf(f, "    \"identical_results\": %s\n",
                 lanes.identical ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"pod_scaling\": {\n");
    std::fprintf(f, "    \"app\": \"MT\",\n");
    std::fprintf(f, "    \"config\": \"transfw\",\n");
    std::fprintf(f, "    \"scale\": %.3f,\n", pod.scale);
    std::fprintf(f, "    \"host_shards\": %d,\n", pod.shards);
    std::fprintf(f, "    \"hardware_threads\": %u,\n",
                 pod.hardwareThreads);
    std::fprintf(f, "    \"degraded\": %s,\n",
                 pod.degraded ? "true" : "false");
    std::fprintf(f, "    \"points\": [\n");
    for (std::size_t i = 0; i < pod.points.size(); ++i) {
        const PodPoint &p = pod.points[i];
        std::fprintf(f,
                     "      {\"topology\": \"%s\", \"gpus\": %d, "
                     "\"wall_seconds\": %.4f, \"events_per_sec\": "
                     "%.0f, \"xlat_p99\": %.1f}%s\n",
                     p.topology, p.gpus, p.wallSeconds, p.eventsPerSec,
                     p.xlatP99,
                     i + 1 < pod.points.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"sim_end_to_end\": {\n");
    std::fprintf(f, "    \"app\": \"MT\",\n");
    std::fprintf(f, "    \"config\": \"transfw\",\n");
    std::fprintf(f, "    \"rate_scale\": %.2f,\n", e2e.rateScale);
    std::fprintf(f, "    \"rate_wall_seconds\": %.4f,\n",
                 e2e.rateWallSeconds);
    std::fprintf(f, "    \"events_executed\": %llu,\n",
                 static_cast<unsigned long long>(e2e.events));
    std::fprintf(f, "    \"events_per_sec\": %.0f,\n", e2e.eventsPerSec);
    if (!smoke) {
        std::fprintf(f, "    \"full_scale\": %.2f,\n", e2e.fullScale);
        std::fprintf(f, "    \"full_wall_seconds\": %.4f,\n",
                     e2e.fullWallSeconds);
        std::fprintf(f, "    \"pre_refactor_wall_seconds\": %.4f,\n",
                     kPreRefactorWallSeconds);
        std::fprintf(f, "    \"speedup_vs_pre_refactor\": %.3f,\n",
                     ratio(kPreRefactorWallSeconds, e2e.fullWallSeconds));
        std::fprintf(f, "    \"interleaved_ab_speedup\": %.3f\n",
                     kInterleavedAbSpeedup);
    } else {
        std::fprintf(f, "    \"full_scale\": 0.0\n");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"peak_rss_bytes\": %llu\n",
                 static_cast<unsigned long long>(peakRssBytes()));
    std::fprintf(f, "}\n");
    std::fclose(f);

    std::fprintf(stderr,
                 "event kernel %.2fx, request pool %.2fx, page table "
                 "%.2fx, mshr %.2fx, flat map %.2fx, cuckoo %.2fx, "
                 "sweep %.2fx on %d jobs (identical=%s), e2e %.2fx -> "
                 "%s\n",
                 ratio(fast, legacy), ratio(pooled, sharedPtr),
                 ratio(ptFlat, ptLegacy), ratio(mshrFlat, mshrLegacy),
                 ratio(mapFlat, mapStd), ratio(cuckooPacked, cuckooLegacy),
                 ratio(sweep.serialSeconds, sweep.parallelSeconds),
                 sweep.parallelJobs, sweep.identical ? "yes" : "no",
                 smoke ? 0.0
                       : ratio(kPreRefactorWallSeconds,
                               e2e.fullWallSeconds),
                 path.c_str());
    std::fprintf(stderr,
                 "parallel kernel %.2fx on %d lanes (identical=%s)\n",
                 ratio(lanes.parallelEventsPerSec,
                       lanes.serialEventsPerSec),
                 lanes.lanes, lanes.identical ? "yes" : "no");
    return sweep.identical && lanes.identical ? 0 : 1;
}

} // namespace

static void
BM_MetroHash64(benchmark::State &state)
{
    std::uint64_t key = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(filter::metroHash64(++key, 1));
}
BENCHMARK(BM_MetroHash64);

static void
BM_CuckooInsertEraseCycle(benchmark::State &state)
{
    filter::CuckooFilter filter(
        {.numBuckets = 1000, .slotsPerBucket = 2, .fingerprintBits = 11});
    std::uint64_t key = 0;
    for (auto _ : state) {
        filter.insert(key);
        filter.erase(key);
        ++key;
    }
}
BENCHMARK(BM_CuckooInsertEraseCycle);

static void
BM_CuckooLookup(benchmark::State &state)
{
    filter::CuckooFilter filter(
        {.numBuckets = 1000, .slotsPerBucket = 2, .fingerprintBits = 11});
    for (std::uint64_t key = 0; key < 1500; ++key)
        filter.insert(key);
    std::uint64_t key = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(filter.contains(key++ % 3000));
}
BENCHMARK(BM_CuckooLookup);

static void
BM_UtcLookup(benchmark::State &state)
{
    mem::PagingGeometry geo{5, mem::kSmallPageShift};
    pwc::UnifiedTranslationCache utc(128, geo);
    for (mem::Vpn vpn = 0; vpn < 64; ++vpn)
        utc.fill(vpn << 14, 3);
    mem::Vpn vpn = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(utc.lookup((vpn++ % 128) << 14));
}
BENCHMARK(BM_UtcLookup);

static void
BM_SetAssocLookup(benchmark::State &state)
{
    cache::SetAssoc<std::uint64_t> tlb(512, 16);
    for (std::uint64_t key = 0; key < 512; ++key)
        tlb.insert(key, key);
    std::uint64_t key = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.lookup(key++ % 1024));
}
BENCHMARK(BM_SetAssocLookup);

static void
BM_PageTableWalk(benchmark::State &state)
{
    mem::PageTable pt(mem::PagingGeometry{5, mem::kSmallPageShift});
    for (mem::Vpn vpn = 0; vpn < 4096; ++vpn)
        pt.map(vpn << 9, mem::PageInfo{vpn, 0, 1, true, false});
    mem::Vpn vpn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pt.walk((vpn % 4096) << 9));
        ++vpn;
    }
}
BENCHMARK(BM_PageTableWalk);

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int fired = 0;
        for (int i = 0; i < 64; ++i)
            eq.schedule(static_cast<sim::Tick>(i % 7), [&] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_EventKernelChains(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(
            eventKernelThroughput<sim::EventQueue>(16, 500, 1));
}
BENCHMARK(BM_EventKernelChains);

static void
BM_EventKernelChainsLegacy(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(
            eventKernelThroughput<LegacyEventQueue>(16, 500, 1));
}
BENCHMARK(BM_EventKernelChainsLegacy);

static void
BM_FlatMapFind(benchmark::State &state)
{
    sim::FlatMap<std::uint64_t, std::uint64_t> map;
    for (std::uint64_t i = 0; i < 4096; ++i)
        map[benchKey(i)] = i;
    std::uint64_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(map.find(benchKey(i++ % 8192)));
}
BENCHMARK(BM_FlatMapFind);

static void
BM_UnorderedMapFind(benchmark::State &state)
{
    std::unordered_map<std::uint64_t, std::uint64_t> map;
    for (std::uint64_t i = 0; i < 4096; ++i)
        map[benchKey(i)] = i;
    std::uint64_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(map.find(benchKey(i++ % 8192)));
}
BENCHMARK(BM_UnorderedMapFind);

static void
BM_MshrCycle(benchmark::State &state)
{
    cache::Mshr<int> mshr;
    std::uint64_t i = 0;
    for (auto _ : state) {
        std::uint64_t key = benchKey(i % 64);
        mshr.allocate(key, static_cast<int>(i));
        mshr.allocate(key, static_cast<int>(i) + 1);
        benchmark::DoNotOptimize(mshr.release(key));
        ++i;
    }
}
BENCHMARK(BM_MshrCycle);

static void
BM_CuckooLookupLegacy(benchmark::State &state)
{
    LegacyCuckooFilter filter(
        {.numBuckets = 1000, .slotsPerBucket = 2, .fingerprintBits = 11});
    for (std::uint64_t key = 0; key < 1500; ++key)
        filter.insert(key);
    std::uint64_t key = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(filter.contains(key++ % 3000));
}
BENCHMARK(BM_CuckooLookupLegacy);

static void
BM_PageTableWalkLegacy(benchmark::State &state)
{
    LegacyPageTable pt(mem::PagingGeometry{5, mem::kSmallPageShift});
    for (mem::Vpn vpn = 0; vpn < 4096; ++vpn)
        pt.map(vpn << 9, mem::PageInfo{vpn, 0, 1, true, false});
    mem::Vpn vpn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pt.walk((vpn % 4096) << 9));
        ++vpn;
    }
}
BENCHMARK(BM_PageTableWalkLegacy);

static void
BM_RequestPoolCycle(benchmark::State &state)
{
    for (auto _ : state) {
        mmu::XlatPtr req = mmu::makeRequest();
        benchmark::DoNotOptimize(req);
    }
}
BENCHMARK(BM_RequestPoolCycle);

static void
BM_RequestSharedPtrCycle(benchmark::State &state)
{
    for (auto _ : state) {
        auto req = std::make_shared<mmu::XlatRequest>();
        benchmark::DoNotOptimize(req);
    }
}
BENCHMARK(BM_RequestSharedPtrCycle);

int
main(int argc, char **argv)
{
    std::string jsonPath;
    bool smoke = false;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            rest.push_back(argv[i]);
    }

    if (!jsonPath.empty())
        return writeCoreJson(jsonPath, smoke);

    int restArgc = static_cast<int>(rest.size());
    benchmark::Initialize(&restArgc, rest.data());
    if (benchmark::ReportUnrecognizedArguments(restArgc, rest.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
