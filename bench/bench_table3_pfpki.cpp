/**
 * Table III: the ten applications with their access-pattern class and
 * measured page-faults-per-kilo-instruction (PFPKI) on the baseline
 * 4-GPU configuration, alongside the paper's reported PFPKI.
 */
#include <cstdio>

#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    bench::header("Table III: applications and PFPKI", baseline);

    std::printf("%-8s %-22s %-15s %-15s %10s %10s\n", "Abbr", "Application",
                "Suite", "Pattern", "PFPKI", "paper");
    for (const auto &info : wl::appTable()) {
        sys::SimResults r = sys::runApp(info.abbr, baseline);
        std::printf("%-8s %-22s %-15s %-15s %10.3f %10.3f\n",
                    info.abbr.c_str(), info.fullName.c_str(),
                    info.suite.c_str(), info.patternClass.c_str(),
                    r.pfpki(), info.paperPfpki);
        std::fflush(stdout);
    }
    return 0;
}
