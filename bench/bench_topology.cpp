/**
 * Interconnect-topology study (beyond the paper, which assumes direct
 * GPU-GPU links): Trans-FW speedup when the peer fabric is an
 * all-to-all mesh versus a ring (each normalized to the baseline with
 * the same topology). Multi-hop forwarding and migration make remote
 * lookups dearer on a ring — the same effect as Fig. 21's latency
 * sweep, arising from topology instead of link speed.
 */
#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    bench::header("Topology: Trans-FW on mesh vs ring",
                  sys::baselineConfig());

    bench::columns("app", {"mesh", "ring"});
    std::vector<double> mesh_s, ring_s;
    for (const auto &app : bench::allApps()) {
        cfg::SystemConfig mesh_base = sys::baselineConfig();
        cfg::SystemConfig mesh_fw = sys::transFwConfig();
        double s1 = sys::speedup(sys::runApp(app, mesh_base),
                                 sys::runApp(app, mesh_fw));

        cfg::SystemConfig ring_base = sys::baselineConfig();
        ring_base.peerTopology = ic::Topology::Ring;
        cfg::SystemConfig ring_fw = sys::transFwConfig();
        ring_fw.peerTopology = ic::Topology::Ring;
        double s2 = sys::speedup(sys::runApp(app, ring_base),
                                 sys::runApp(app, ring_fw));

        mesh_s.push_back(s1);
        ring_s.push_back(s2);
        bench::row(app, {s1, s2});
    }
    bench::row("geomean",
               {bench::geomean(mesh_s), bench::geomean(ring_s)});
    return 0;
}
