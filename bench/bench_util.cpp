#include "bench_util.hpp"

#include <cmath>
#include <cstdio>

namespace transfw::bench {

void
header(const std::string &experiment, const cfg::SystemConfig &config)
{
    std::printf("== %s ==\n", experiment.c_str());
    std::printf("config: %s\n", config.summary().c_str());
}

std::vector<std::string>
allApps()
{
    std::vector<std::string> apps;
    for (const auto &info : wl::appTable())
        apps.push_back(info.abbr);
    return apps;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

void
latencyPercentiles(const std::string &label, const sys::SimResults &r)
{
    const obs::LogHistogram &h = r.xlatLatencyHist;
    std::printf("%-10s xlat p50/p90/p95/p99/p99.9 = "
                "%.0f/%.0f/%.0f/%.0f/%.0f cycles (mean %.1f, n=%llu)\n",
                label.c_str(), h.quantile(0.50), h.quantile(0.90),
                h.quantile(0.95), h.quantile(0.99), h.quantile(0.999),
                h.mean(),
                static_cast<unsigned long long>(h.count()));
    std::fflush(stdout);
}

void
row(const std::string &label, const std::vector<double> &values,
    int precision)
{
    std::printf("%-10s", label.c_str());
    for (double v : values)
        std::printf(" %10.*f", precision, v);
    std::printf("\n");
    std::fflush(stdout);
}

void
columns(const std::string &label, const std::vector<std::string> &names)
{
    std::printf("%-10s", label.c_str());
    for (const auto &name : names)
        std::printf(" %10s", name.c_str());
    std::printf("\n");
}

std::vector<double>
speedupSeries(const cfg::SystemConfig &baseline,
              const cfg::SystemConfig &variant,
              const std::string &series_name)
{
    columns("app", {series_name});
    // All 2×apps runs go through the shared SweepRunner: independent
    // points execute concurrently and a baseline an earlier series in
    // the same binary already ran is served from the memo.
    std::vector<sys::RunSpec> specs;
    for (const auto &app : allApps()) {
        specs.push_back({app, baseline, 0.0});
        specs.push_back({app, variant, 0.0});
    }
    std::vector<sys::SimResults> results =
        sys::SweepRunner::shared().run(specs);
    std::vector<double> speedups;
    for (std::size_t i = 0; i < results.size(); i += 2) {
        double s = sys::speedup(results[i], results[i + 1]);
        speedups.push_back(s);
        row(specs[i].app, {s});
    }
    row("geomean", {geomean(speedups)});
    return speedups;
}

} // namespace transfw::bench
