#ifndef TRANSFW_BENCH_BENCH_UTIL_HPP
#define TRANSFW_BENCH_BENCH_UTIL_HPP

#include <string>
#include <vector>

#include "transfw/transfw.hpp"

namespace transfw::bench {

/** Print the standard bench header (experiment id + config summary). */
void header(const std::string &experiment, const cfg::SystemConfig &config);

/** The ten Table III application abbreviations, in paper order. */
std::vector<std::string> allApps();

/** Geometric mean of a vector of ratios. */
double geomean(const std::vector<double> &values);

/**
 * Print the translation-latency percentile line for one run:
 * "xlat p50/p90/p95/p99/p99.9 = ... (mean ..., n=...)". The percentile
 * spread is the number the mean hides — a forwarding win shows up at
 * p99 long before it moves the average.
 */
void latencyPercentiles(const std::string &label,
                        const sys::SimResults &results);

/** Print one row: label then columns with a fixed width. */
void row(const std::string &label, const std::vector<double> &values,
         int precision = 3);

/** Print the column header line. */
void columns(const std::string &label,
             const std::vector<std::string> &names);

/**
 * For every app, run @p variant and @p baseline and print the speedup
 * (baseline exec / variant exec), ending with the geometric mean.
 * @return the per-app speedups.
 */
std::vector<double> speedupSeries(const cfg::SystemConfig &baseline,
                                  const cfg::SystemConfig &variant,
                                  const std::string &series_name = "speedup");

} // namespace transfw::bench

#endif // TRANSFW_BENCH_BENCH_UTIL_HPP
