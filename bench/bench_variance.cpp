/**
 * Seed-sensitivity study: the Fig. 11 headline with error bars. Each
 * app's Trans-FW speedup is measured across 5 seeds (both
 * configurations share the seed), reporting mean ± stddev and the
 * min/max range — quantifying how much the synthetic workloads' random
 * draws move the headline result.
 */
#include <cstdio>

#include "bench_util.hpp"

using namespace transfw;

int
main()
{
    constexpr int kSeeds = 5;
    cfg::SystemConfig baseline = sys::baselineConfig();
    cfg::SystemConfig fw = sys::transFwConfig();
    bench::header("Fig. 11 with seed error bars", fw);

    std::printf("%-10s %10s %10s %10s %10s\n", "app", "mean", "stddev",
                "min", "max");
    std::vector<double> means;
    for (const auto &app : bench::allApps()) {
        sys::SeedStats stats =
            sys::speedupAcrossSeeds(app, baseline, fw, kSeeds);
        means.push_back(stats.mean);
        std::printf("%-10s %10.3f %10.3f %10.3f %10.3f\n", app.c_str(),
                    stats.mean, stats.stddev, stats.min, stats.max);
        std::fflush(stdout);
    }
    std::printf("%-10s %10.3f\n", "mean", [&] {
        double sum = 0;
        for (double m : means)
            sum += m;
        return sum / static_cast<double>(means.size());
    }());
    return 0;
}
