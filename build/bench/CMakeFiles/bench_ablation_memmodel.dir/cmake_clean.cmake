file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_memmodel.dir/bench_ablation_memmodel.cpp.o"
  "CMakeFiles/bench_ablation_memmodel.dir/bench_ablation_memmodel.cpp.o.d"
  "bench_ablation_memmodel"
  "bench_ablation_memmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_memmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
