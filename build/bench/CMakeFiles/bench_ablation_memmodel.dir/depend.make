# Empty dependencies file for bench_ablation_memmodel.
# This may be replaced when dependencies are built.
