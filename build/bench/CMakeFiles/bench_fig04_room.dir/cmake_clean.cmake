file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_room.dir/bench_fig04_room.cpp.o"
  "CMakeFiles/bench_fig04_room.dir/bench_fig04_room.cpp.o.d"
  "bench_fig04_room"
  "bench_fig04_room.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_room.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
