# Empty compiler generated dependencies file for bench_fig04_room.
# This may be replaced when dependencies are built.
