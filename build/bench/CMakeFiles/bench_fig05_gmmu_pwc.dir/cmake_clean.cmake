file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_gmmu_pwc.dir/bench_fig05_gmmu_pwc.cpp.o"
  "CMakeFiles/bench_fig05_gmmu_pwc.dir/bench_fig05_gmmu_pwc.cpp.o.d"
  "bench_fig05_gmmu_pwc"
  "bench_fig05_gmmu_pwc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_gmmu_pwc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
