# Empty compiler generated dependencies file for bench_fig05_gmmu_pwc.
# This may be replaced when dependencies are built.
