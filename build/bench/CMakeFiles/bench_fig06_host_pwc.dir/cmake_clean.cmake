file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_host_pwc.dir/bench_fig06_host_pwc.cpp.o"
  "CMakeFiles/bench_fig06_host_pwc.dir/bench_fig06_host_pwc.cpp.o.d"
  "bench_fig06_host_pwc"
  "bench_fig06_host_pwc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_host_pwc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
