# Empty dependencies file for bench_fig06_host_pwc.
# This may be replaced when dependencies are built.
