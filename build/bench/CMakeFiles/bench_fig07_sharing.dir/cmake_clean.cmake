file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_sharing.dir/bench_fig07_sharing.cpp.o"
  "CMakeFiles/bench_fig07_sharing.dir/bench_fig07_sharing.cpp.o.d"
  "bench_fig07_sharing"
  "bench_fig07_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
