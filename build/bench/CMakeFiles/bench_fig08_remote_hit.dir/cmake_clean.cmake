file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_remote_hit.dir/bench_fig08_remote_hit.cpp.o"
  "CMakeFiles/bench_fig08_remote_hit.dir/bench_fig08_remote_hit.cpp.o.d"
  "bench_fig08_remote_hit"
  "bench_fig08_remote_hit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_remote_hit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
