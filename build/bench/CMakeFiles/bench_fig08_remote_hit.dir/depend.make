# Empty dependencies file for bench_fig08_remote_hit.
# This may be replaced when dependencies are built.
