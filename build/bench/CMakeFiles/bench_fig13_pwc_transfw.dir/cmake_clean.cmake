file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_pwc_transfw.dir/bench_fig13_pwc_transfw.cpp.o"
  "CMakeFiles/bench_fig13_pwc_transfw.dir/bench_fig13_pwc_transfw.cpp.o.d"
  "bench_fig13_pwc_transfw"
  "bench_fig13_pwc_transfw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_pwc_transfw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
