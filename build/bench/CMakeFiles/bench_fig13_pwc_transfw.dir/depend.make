# Empty dependencies file for bench_fig13_pwc_transfw.
# This may be replaced when dependencies are built.
