file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_replicated.dir/bench_fig14_replicated.cpp.o"
  "CMakeFiles/bench_fig14_replicated.dir/bench_fig14_replicated.cpp.o.d"
  "bench_fig14_replicated"
  "bench_fig14_replicated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_replicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
