# Empty dependencies file for bench_fig14_replicated.
# This may be replaced when dependencies are built.
