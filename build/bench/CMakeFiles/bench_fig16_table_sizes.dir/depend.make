# Empty dependencies file for bench_fig16_table_sizes.
# This may be replaced when dependencies are built.
