# Empty dependencies file for bench_fig17_gpu_count.
# This may be replaced when dependencies are built.
