file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_walkers.dir/bench_fig18_walkers.cpp.o"
  "CMakeFiles/bench_fig18_walkers.dir/bench_fig18_walkers.cpp.o.d"
  "bench_fig18_walkers"
  "bench_fig18_walkers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_walkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
