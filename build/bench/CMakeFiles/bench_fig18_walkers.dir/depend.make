# Empty dependencies file for bench_fig18_walkers.
# This may be replaced when dependencies are built.
