file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_4level.dir/bench_fig19_4level.cpp.o"
  "CMakeFiles/bench_fig19_4level.dir/bench_fig19_4level.cpp.o.d"
  "bench_fig19_4level"
  "bench_fig19_4level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_4level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
