# Empty compiler generated dependencies file for bench_fig19_4level.
# This may be replaced when dependencies are built.
