file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_hostmmu.dir/bench_fig20_hostmmu.cpp.o"
  "CMakeFiles/bench_fig20_hostmmu.dir/bench_fig20_hostmmu.cpp.o.d"
  "bench_fig20_hostmmu"
  "bench_fig20_hostmmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_hostmmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
