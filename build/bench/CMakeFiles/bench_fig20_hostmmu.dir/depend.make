# Empty dependencies file for bench_fig20_hostmmu.
# This may be replaced when dependencies are built.
