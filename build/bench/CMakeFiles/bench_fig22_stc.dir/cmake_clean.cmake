file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_stc.dir/bench_fig22_stc.cpp.o"
  "CMakeFiles/bench_fig22_stc.dir/bench_fig22_stc.cpp.o.d"
  "bench_fig22_stc"
  "bench_fig22_stc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_stc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
