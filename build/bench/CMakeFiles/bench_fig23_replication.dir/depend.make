# Empty dependencies file for bench_fig23_replication.
# This may be replaced when dependencies are built.
