file(REMOVE_RECURSE
  "CMakeFiles/bench_fig24_rw_shared.dir/bench_fig24_rw_shared.cpp.o"
  "CMakeFiles/bench_fig24_rw_shared.dir/bench_fig24_rw_shared.cpp.o.d"
  "bench_fig24_rw_shared"
  "bench_fig24_rw_shared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_rw_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
