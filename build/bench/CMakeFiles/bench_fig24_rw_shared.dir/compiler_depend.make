# Empty compiler generated dependencies file for bench_fig24_rw_shared.
# This may be replaced when dependencies are built.
