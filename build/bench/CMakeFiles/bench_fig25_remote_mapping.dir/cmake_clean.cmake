file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_remote_mapping.dir/bench_fig25_remote_mapping.cpp.o"
  "CMakeFiles/bench_fig25_remote_mapping.dir/bench_fig25_remote_mapping.cpp.o.d"
  "bench_fig25_remote_mapping"
  "bench_fig25_remote_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_remote_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
