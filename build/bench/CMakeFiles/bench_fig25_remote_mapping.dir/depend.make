# Empty dependencies file for bench_fig25_remote_mapping.
# This may be replaced when dependencies are built.
