file(REMOVE_RECURSE
  "CMakeFiles/bench_fig26_uvm_driver.dir/bench_fig26_uvm_driver.cpp.o"
  "CMakeFiles/bench_fig26_uvm_driver.dir/bench_fig26_uvm_driver.cpp.o.d"
  "bench_fig26_uvm_driver"
  "bench_fig26_uvm_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig26_uvm_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
