# Empty compiler generated dependencies file for bench_fig26_uvm_driver.
# This may be replaced when dependencies are built.
