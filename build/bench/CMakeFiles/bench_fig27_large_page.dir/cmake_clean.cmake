file(REMOVE_RECURSE
  "CMakeFiles/bench_fig27_large_page.dir/bench_fig27_large_page.cpp.o"
  "CMakeFiles/bench_fig27_large_page.dir/bench_fig27_large_page.cpp.o.d"
  "bench_fig27_large_page"
  "bench_fig27_large_page.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig27_large_page.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
