# Empty dependencies file for bench_fig27_large_page.
# This may be replaced when dependencies are built.
