file(REMOVE_RECURSE
  "CMakeFiles/bench_fig28_asap.dir/bench_fig28_asap.cpp.o"
  "CMakeFiles/bench_fig28_asap.dir/bench_fig28_asap.cpp.o.d"
  "bench_fig28_asap"
  "bench_fig28_asap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig28_asap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
