# Empty dependencies file for bench_fig28_asap.
# This may be replaced when dependencies are built.
