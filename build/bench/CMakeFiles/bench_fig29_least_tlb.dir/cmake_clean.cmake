file(REMOVE_RECURSE
  "CMakeFiles/bench_fig29_least_tlb.dir/bench_fig29_least_tlb.cpp.o"
  "CMakeFiles/bench_fig29_least_tlb.dir/bench_fig29_least_tlb.cpp.o.d"
  "bench_fig29_least_tlb"
  "bench_fig29_least_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig29_least_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
