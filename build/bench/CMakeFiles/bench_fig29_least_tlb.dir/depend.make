# Empty dependencies file for bench_fig29_least_tlb.
# This may be replaced when dependencies are built.
