file(REMOVE_RECURSE
  "CMakeFiles/bench_fig30_ml.dir/bench_fig30_ml.cpp.o"
  "CMakeFiles/bench_fig30_ml.dir/bench_fig30_ml.cpp.o.d"
  "bench_fig30_ml"
  "bench_fig30_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig30_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
