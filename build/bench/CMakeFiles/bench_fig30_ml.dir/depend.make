# Empty dependencies file for bench_fig30_ml.
# This may be replaced when dependencies are built.
