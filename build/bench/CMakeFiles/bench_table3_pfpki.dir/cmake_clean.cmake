file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_pfpki.dir/bench_table3_pfpki.cpp.o"
  "CMakeFiles/bench_table3_pfpki.dir/bench_table3_pfpki.cpp.o.d"
  "bench_table3_pfpki"
  "bench_table3_pfpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_pfpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
