# Empty dependencies file for bench_table3_pfpki.
# This may be replaced when dependencies are built.
