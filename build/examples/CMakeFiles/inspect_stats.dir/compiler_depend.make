# Empty compiler generated dependencies file for inspect_stats.
# This may be replaced when dependencies are built.
