
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/config.cpp" "src/CMakeFiles/transfw.dir/config/config.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/config/config.cpp.o.d"
  "/root/repo/src/filter/cuckoo_filter.cpp" "src/CMakeFiles/transfw.dir/filter/cuckoo_filter.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/filter/cuckoo_filter.cpp.o.d"
  "/root/repo/src/filter/metrohash.cpp" "src/CMakeFiles/transfw.dir/filter/metrohash.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/filter/metrohash.cpp.o.d"
  "/root/repo/src/gpu/compute_unit.cpp" "src/CMakeFiles/transfw.dir/gpu/compute_unit.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/gpu/compute_unit.cpp.o.d"
  "/root/repo/src/gpu/gpu.cpp" "src/CMakeFiles/transfw.dir/gpu/gpu.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/gpu/gpu.cpp.o.d"
  "/root/repo/src/mem/data_cache.cpp" "src/CMakeFiles/transfw.dir/mem/data_cache.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/mem/data_cache.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/CMakeFiles/transfw.dir/mem/dram.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/mem/dram.cpp.o.d"
  "/root/repo/src/mem/frame_allocator.cpp" "src/CMakeFiles/transfw.dir/mem/frame_allocator.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/mem/frame_allocator.cpp.o.d"
  "/root/repo/src/mem/mem_hierarchy.cpp" "src/CMakeFiles/transfw.dir/mem/mem_hierarchy.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/mem/mem_hierarchy.cpp.o.d"
  "/root/repo/src/mem/page_table.cpp" "src/CMakeFiles/transfw.dir/mem/page_table.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/mem/page_table.cpp.o.d"
  "/root/repo/src/mmu/gmmu.cpp" "src/CMakeFiles/transfw.dir/mmu/gmmu.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/mmu/gmmu.cpp.o.d"
  "/root/repo/src/mmu/host_mmu.cpp" "src/CMakeFiles/transfw.dir/mmu/host_mmu.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/mmu/host_mmu.cpp.o.d"
  "/root/repo/src/pwc/pwc.cpp" "src/CMakeFiles/transfw.dir/pwc/pwc.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/pwc/pwc.cpp.o.d"
  "/root/repo/src/pwc/stc.cpp" "src/CMakeFiles/transfw.dir/pwc/stc.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/pwc/stc.cpp.o.d"
  "/root/repo/src/pwc/utc.cpp" "src/CMakeFiles/transfw.dir/pwc/utc.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/pwc/utc.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/transfw.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/logging.cpp" "src/CMakeFiles/transfw.dir/sim/logging.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/sim/logging.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/CMakeFiles/transfw.dir/sim/random.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/sim/random.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/transfw.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/sim/trace.cpp.o.d"
  "/root/repo/src/stats/stats.cpp" "src/CMakeFiles/transfw.dir/stats/stats.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/stats/stats.cpp.o.d"
  "/root/repo/src/system/experiment.cpp" "src/CMakeFiles/transfw.dir/system/experiment.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/system/experiment.cpp.o.d"
  "/root/repo/src/system/report.cpp" "src/CMakeFiles/transfw.dir/system/report.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/system/report.cpp.o.d"
  "/root/repo/src/system/system.cpp" "src/CMakeFiles/transfw.dir/system/system.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/system/system.cpp.o.d"
  "/root/repo/src/transfw/forwarding_table.cpp" "src/CMakeFiles/transfw.dir/transfw/forwarding_table.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/transfw/forwarding_table.cpp.o.d"
  "/root/repo/src/transfw/prt.cpp" "src/CMakeFiles/transfw.dir/transfw/prt.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/transfw/prt.cpp.o.d"
  "/root/repo/src/uvm/migration.cpp" "src/CMakeFiles/transfw.dir/uvm/migration.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/uvm/migration.cpp.o.d"
  "/root/repo/src/uvm/uvm_driver.cpp" "src/CMakeFiles/transfw.dir/uvm/uvm_driver.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/uvm/uvm_driver.cpp.o.d"
  "/root/repo/src/workload/apps.cpp" "src/CMakeFiles/transfw.dir/workload/apps.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/workload/apps.cpp.o.d"
  "/root/repo/src/workload/ml_models.cpp" "src/CMakeFiles/transfw.dir/workload/ml_models.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/workload/ml_models.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/CMakeFiles/transfw.dir/workload/synthetic.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/workload/synthetic.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/transfw.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/transfw.dir/workload/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
