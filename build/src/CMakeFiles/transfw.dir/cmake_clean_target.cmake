file(REMOVE_RECURSE
  "libtransfw.a"
)
