# Empty dependencies file for transfw.
# This may be replaced when dependencies are built.
