
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_address.cpp" "tests/CMakeFiles/transfw_tests.dir/test_address.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_address.cpp.o.d"
  "/root/repo/tests/test_apps_properties.cpp" "tests/CMakeFiles/transfw_tests.dir/test_apps_properties.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_apps_properties.cpp.o.d"
  "/root/repo/tests/test_calibration.cpp" "tests/CMakeFiles/transfw_tests.dir/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_calibration.cpp.o.d"
  "/root/repo/tests/test_compute_unit.cpp" "tests/CMakeFiles/transfw_tests.dir/test_compute_unit.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_compute_unit.cpp.o.d"
  "/root/repo/tests/test_config_matrix.cpp" "tests/CMakeFiles/transfw_tests.dir/test_config_matrix.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_config_matrix.cpp.o.d"
  "/root/repo/tests/test_cuckoo_filter.cpp" "tests/CMakeFiles/transfw_tests.dir/test_cuckoo_filter.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_cuckoo_filter.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/transfw_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_event_queue.cpp" "tests/CMakeFiles/transfw_tests.dir/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_event_queue.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/transfw_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_gmmu.cpp" "tests/CMakeFiles/transfw_tests.dir/test_gmmu.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_gmmu.cpp.o.d"
  "/root/repo/tests/test_gpu_unit.cpp" "tests/CMakeFiles/transfw_tests.dir/test_gpu_unit.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_gpu_unit.cpp.o.d"
  "/root/repo/tests/test_host_mmu.cpp" "tests/CMakeFiles/transfw_tests.dir/test_host_mmu.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_host_mmu.cpp.o.d"
  "/root/repo/tests/test_invariants.cpp" "tests/CMakeFiles/transfw_tests.dir/test_invariants.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_invariants.cpp.o.d"
  "/root/repo/tests/test_link.cpp" "tests/CMakeFiles/transfw_tests.dir/test_link.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_link.cpp.o.d"
  "/root/repo/tests/test_mem_hierarchy.cpp" "tests/CMakeFiles/transfw_tests.dir/test_mem_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_mem_hierarchy.cpp.o.d"
  "/root/repo/tests/test_metrohash.cpp" "tests/CMakeFiles/transfw_tests.dir/test_metrohash.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_metrohash.cpp.o.d"
  "/root/repo/tests/test_migration.cpp" "tests/CMakeFiles/transfw_tests.dir/test_migration.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_migration.cpp.o.d"
  "/root/repo/tests/test_misc.cpp" "tests/CMakeFiles/transfw_tests.dir/test_misc.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_misc.cpp.o.d"
  "/root/repo/tests/test_mshr.cpp" "tests/CMakeFiles/transfw_tests.dir/test_mshr.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_mshr.cpp.o.d"
  "/root/repo/tests/test_page_table.cpp" "tests/CMakeFiles/transfw_tests.dir/test_page_table.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_page_table.cpp.o.d"
  "/root/repo/tests/test_prt_ft.cpp" "tests/CMakeFiles/transfw_tests.dir/test_prt_ft.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_prt_ft.cpp.o.d"
  "/root/repo/tests/test_pwc.cpp" "tests/CMakeFiles/transfw_tests.dir/test_pwc.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_pwc.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/transfw_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_set_assoc.cpp" "tests/CMakeFiles/transfw_tests.dir/test_set_assoc.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_set_assoc.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/transfw_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/transfw_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_system.cpp" "tests/CMakeFiles/transfw_tests.dir/test_system.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_system.cpp.o.d"
  "/root/repo/tests/test_tlb.cpp" "tests/CMakeFiles/transfw_tests.dir/test_tlb.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_tlb.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/transfw_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/transfw_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_trace_facility.cpp" "tests/CMakeFiles/transfw_tests.dir/test_trace_facility.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_trace_facility.cpp.o.d"
  "/root/repo/tests/test_uvm_driver.cpp" "tests/CMakeFiles/transfw_tests.dir/test_uvm_driver.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_uvm_driver.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/transfw_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/transfw_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/transfw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
