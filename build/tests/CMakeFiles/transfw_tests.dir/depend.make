# Empty dependencies file for transfw_tests.
# This may be replaced when dependencies are built.
