/**
 * compare_runs: noise-aware regression diff over two run-ledger files.
 * Records pair up on (app, scale, config key); deterministic metrics
 * must match exactly, wall-clock fields only warn when they move more
 * than the tolerance. Exit status 0 = clean, 1 = deterministic drift
 * (or unmatched/malformed records), 2 = usage/IO error — so the diff
 * drops straight into CI gates:
 *
 *   TRANSFW_LEDGER=new.jsonl simulate --app MT --transfw
 *   compare_runs golden.jsonl new.jsonl || echo "regressed!"
 *
 * Usage: compare_runs [options] A.jsonl B.jsonl
 *   --json          machine-readable report instead of markdown
 *   --wall-tol F    relative tolerance for wall fields (default 0.5)
 *   --by-index      pair records line-by-line instead of by match key
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/ledger.hpp"

using namespace transfw;

int
main(int argc, char **argv)
{
    bool json = false;
    obs::LedgerDiffOptions opts;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--wall-tol" && i + 1 < argc) {
            opts.wallRelTol = std::atof(argv[++i]);
        } else if (arg == "--by-index") {
            opts.matchOnKey = false;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "usage: %s [--json] [--wall-tol F] [--by-index] "
                         "A.jsonl B.jsonl\n",
                         argv[0]);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2) {
        std::fprintf(stderr, "usage: %s [options] A.jsonl B.jsonl\n",
                     argv[0]);
        return 2;
    }

    std::vector<std::string> errorsA, errorsB;
    std::vector<obs::LedgerRecord> a =
        obs::RunLedger::load(paths[0], &errorsA);
    std::vector<obs::LedgerRecord> b =
        obs::RunLedger::load(paths[1], &errorsB);
    for (const std::string &e : errorsA)
        std::fprintf(stderr, "warn: %s: %s\n", paths[0].c_str(), e.c_str());
    for (const std::string &e : errorsB)
        std::fprintf(stderr, "warn: %s: %s\n", paths[1].c_str(), e.c_str());
    if (a.empty() || b.empty()) {
        std::fprintf(stderr, "%s: no usable records in %s\n", argv[0],
                     (a.empty() ? paths[0] : paths[1]).c_str());
        return 2;
    }

    obs::LedgerDiff diff = obs::diffLedgers(a, b, opts);
    std::printf("%s", (json ? diff.toJson() : diff.toMarkdown()).c_str());
    return diff.clean() ? 0 : 1;
}
