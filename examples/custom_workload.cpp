/**
 * custom_workload: build your own multi-GPU application model from
 * region specs and see how Trans-FW treats it.
 *
 * This example models a 2D halo-exchange solver: a partitioned grid
 * with boundary rows shared between neighbouring GPUs, plus a small
 * all-shared reduction buffer written every iteration — then sweeps
 * the sharing intensity to show when remote forwarding starts paying.
 */
#include <cstdio>

#include "transfw/transfw.hpp"

using namespace transfw;

namespace {

wl::SyntheticSpec
solverSpec(double halo_prob)
{
    wl::SyntheticSpec spec;
    spec.name = sim::strfmt("solver(halo=%.2f)", halo_prob);
    spec.suite = "custom";
    spec.patternClass = "Adjacent";
    spec.numCtas = 1024;
    spec.memOpsPerCta = 100;
    spec.computePerOp = 4;
    spec.phases = 4;
    spec.regions = {
        {.name = "grid",
         .pages = 1024,
         .weight = 0.8,
         .writeFrac = 0.5,
         .reuse = 3,
         .haloProb = halo_prob,
         .haloPages = 32},
        {.name = "residual",
         .pages = 16,
         .pattern = wl::Pattern::Random,
         .shareDegree = 64,
         .weight = 0.2,
         .writeFrac = 0.5,
         .reuse = 4},
    };
    return spec;
}

} // namespace

int
main()
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    cfg::SystemConfig fw = sys::transFwConfig();

    std::printf("custom halo-exchange solver: Trans-FW vs baseline\n");
    std::printf("%-20s %10s %10s %10s %10s\n", "workload", "pfpki",
                "base.exec", "fw.exec", "speedup");
    for (double halo : {0.0, 0.05, 0.10, 0.20}) {
        wl::SyntheticWorkload workload(solverSpec(halo));
        sys::SimResults base = sys::runWorkload(workload, baseline);
        sys::SimResults trans = sys::runWorkload(workload, fw);
        std::printf("%-20s %10.3f %10llu %10llu %9.3fx\n",
                    workload.name().c_str(), base.pfpki(),
                    static_cast<unsigned long long>(base.execTime),
                    static_cast<unsigned long long>(trans.execTime),
                    sys::speedup(base, trans));
    }
    std::printf("\nMore boundary sharing -> more far faults -> more for "
                "Trans-FW to short-circuit.\n");
    return 0;
}
