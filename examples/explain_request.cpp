/**
 * explain_request: run one application with per-request timelines
 * retained and dump one translation's causal latency story — every
 * charge (bucket, cycles, tick), the reply-race transitions, and the
 * final per-bucket decomposition.
 *
 * Usage: explain_request [APP] [baseline|transfw|sw|sw-transfw] [GPU:ID]
 *
 * Without GPU:ID the slowest finished translation of the run is
 * explained — usually the most interesting one.
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "transfw/transfw.hpp"

using namespace transfw;

#if TRANSFW_OBS

namespace {

const char *
kindName(obs::AttribEvent::Kind kind)
{
    using Kind = obs::AttribEvent::Kind;
    switch (kind) {
      case Kind::Charge:
        return "charge";
      case Kind::ShortCircuit:
        return "prt short-circuit";
      case Kind::ForwardLaunched:
        return "forward launched";
      case Kind::ForwardFailed:
        return "forward failed";
      case Kind::RemoteWon:
        return "remote reply won";
      case Kind::HostWon:
        return "host walk won";
      case Kind::HostWalkCancelled:
        return "host walk cancelled";
      case Kind::DuplicateHostWalk:
        return "duplicate host walk";
      case Kind::Finish:
        return "finish";
      case Kind::NetworkHop:
        return "network hop";
    }
    return "?";
}

/** Human name of an attribution-hop node id (see obs::AttribHop). */
std::string
nodeName(int node, int num_gpus)
{
    char buf[32];
    if (node < 0)
        return "host";
    if (node < num_gpus) {
        std::snprintf(buf, sizeof buf, "gpu%d", node);
        return buf;
    }
    std::snprintf(buf, sizeof buf, "sw%d", node - num_gpus);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::string app = args.size() > 0 ? args[0] : "MT";
    std::string mode = args.size() > 1 ? args[1] : "transfw";

    cfg::SystemConfig config = (mode == "transfw" || mode == "sw-transfw")
                                   ? sys::transFwConfig()
                                   : sys::baselineConfig();
    if (mode == "sw" || mode == "sw-transfw")
        config.faultMode = cfg::FaultMode::UvmDriver;

    wl::SyntheticWorkload workload(
        wl::appSpec(app, sys::effectiveScale(0.0)));
    sys::MultiGpuSystem system(config, workload);
    // Timelines must be armed before the run; records are otherwise
    // released as soon as their race closes.
    system.obs().attribution.setKeepTimelines(true);
    sys::SimResults r = system.run();

    int gpu = -1;
    std::uint64_t id = 0;
    if (args.size() > 2) {
        if (std::sscanf(args[2].c_str(), "%d:%llu", &gpu,
                        reinterpret_cast<unsigned long long *>(&id)) != 2) {
            std::fprintf(stderr, "bad request selector '%s' (want GPU:ID)\n",
                         args[2].c_str());
            return 1;
        }
    } else {
        auto slowest = system.obs().attribution.slowestRequest();
        gpu = slowest.first;
        id = slowest.second;
    }
    if (gpu < 0) {
        std::fprintf(stderr, "no finished translations recorded\n");
        return 1;
    }

    const obs::AttributionEngine::Timeline *tl =
        system.obs().attribution.timeline(gpu, id);
    if (!tl) {
        std::fprintf(stderr, "request gpu%d:%llu unknown\n", gpu,
                     static_cast<unsigned long long>(id));
        return 1;
    }

    std::printf("== %s (%s): translation gpu%d:%llu ==\n", app.c_str(),
                mode.c_str(), gpu, static_cast<unsigned long long>(id));
    std::printf("vpn 0x%llx  issued @%llu  finished @%llu  wall %llu  "
                "charged %.0f cycles\n\n",
                static_cast<unsigned long long>(tl->vpn),
                static_cast<unsigned long long>(tl->tIssue),
                static_cast<unsigned long long>(tl->tFinish),
                static_cast<unsigned long long>(tl->tFinish - tl->tIssue),
                tl->total);

    std::printf("[buckets]\n");
    for (std::size_t b = 0; b < obs::kNumAttribBuckets; ++b) {
        if (tl->bucket[b] == 0)
            continue;
        std::printf("  %-16s %10.0f  (%5.1f%%)\n",
                    obs::bucketName(static_cast<obs::AttribBucket>(b)),
                    tl->bucket[b],
                    tl->total ? 100.0 * tl->bucket[b] / tl->total : 0.0);
    }

    // The actual route this request's messages took, edge by edge,
    // with each hop's queue-wait / serialization / propagation split —
    // per-hop attribution is what turns "Network: N cycles" into
    // "N cycles, and here is the congested edge".
    bool any_hop = false;
    for (const obs::AttribEvent &ev : tl->events)
        any_hop |= ev.kind == obs::AttribEvent::Kind::NetworkHop;
    if (any_hop) {
        std::printf("\n[route]\n");
        for (const obs::AttribEvent &ev : tl->events) {
            if (ev.kind != obs::AttribEvent::Kind::NetworkHop)
                continue;
            std::printf("  @%-10llu %-6s -> %-6s %-10s wait %7.0f  "
                        "ser %5.0f  prop %6.0f\n",
                        static_cast<unsigned long long>(ev.tick),
                        nodeName(ev.hopFrom, config.numGpus).c_str(),
                        nodeName(ev.hopTo, config.numGpus).c_str(),
                        obs::bucketName(ev.bucket),
                        static_cast<double>(ev.hopWait),
                        static_cast<double>(ev.hopSer),
                        static_cast<double>(ev.hopProp));
        }
    }

    std::printf("\n[timeline]\n");
    for (const obs::AttribEvent &ev : tl->events) {
        if (ev.kind == obs::AttribEvent::Kind::Charge)
            std::printf("  @%-10llu charge %-16s %10.0f\n",
                        static_cast<unsigned long long>(ev.tick),
                        obs::bucketName(ev.bucket), ev.cycles);
        else
            std::printf("  @%-10llu %-23s %10.0f\n",
                        static_cast<unsigned long long>(ev.tick),
                        kindName(ev.kind), ev.cycles);
    }

    std::printf("\nrun context: %llu translations, %llu forwards "
                "(%llu remote wins), %llu short circuits, "
                "%llu watchdog violations\n",
                static_cast<unsigned long long>(r.attribution.requests),
                static_cast<unsigned long long>(r.attribution.forwards),
                static_cast<unsigned long long>(r.attribution.remoteWins),
                static_cast<unsigned long long>(r.attribution.shortCircuits),
                static_cast<unsigned long long>(r.obsCheckViolations));
    return 0;
}

#else // !TRANSFW_OBS

int
main()
{
    std::fprintf(stderr, "explain_request requires a TRANSFW_OBS=ON "
                         "build; this binary was compiled without "
                         "observability.\n");
    return 1;
}

#endif // TRANSFW_OBS
