/**
 * inspect_stats: run one application and dump every counter the
 * simulator collects — TLBs, PW-caches, queues, faults, migrations,
 * Trans-FW tables — for debugging and model exploration.
 *
 * Usage: inspect_stats [--shards N] [APP] [baseline|transfw|sw|sw-transfw] [PAD]
 *        inspect_stats --json [APP] [mode] [PAD]
 *        inspect_stats --ledger FILE
 *
 * With --json the unified metrics registry (every component's live
 * gauges, hierarchical "gpu0.gmmu.*" keys) is dumped as one JSON
 * object instead of the human-readable report.
 *
 * With --ledger the newest transfw-ledger-v1 record in FILE is pretty-
 * printed instead of running a simulation: identity, every deterministic
 * metric, and a [host profile] section from the wall-clock fields.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/ledger.hpp"
#include "transfw/transfw.hpp"

using namespace transfw;

namespace {

void
dump(const char *name, double v)
{
    std::printf("  %-32s %14.3f\n", name, v);
}

void
dump(const char *name, std::uint64_t v)
{
    std::printf("  %-32s %14llu\n", name, static_cast<unsigned long long>(v));
}

int
inspectLedger(const std::string &path)
{
    std::vector<std::string> errors;
    std::vector<obs::LedgerRecord> records =
        obs::RunLedger::load(path, &errors);
    for (const std::string &e : errors)
        std::fprintf(stderr, "warn: %s: %s\n", path.c_str(), e.c_str());
    if (records.empty()) {
        std::fprintf(stderr, "no ledger records in %s\n", path.c_str());
        return 1;
    }
    const obs::LedgerRecord &r = records.back();

    std::printf("== ledger record %zu/%zu of %s ==\n", records.size(),
                records.size(), path.c_str());
    std::printf("  %-32s %s\n", "app", r.app.c_str());
    std::printf("  %-32s %.17g\n", "scale", r.scale);
    std::printf("  %-32s %s\n", "source", r.source.c_str());
    std::printf("  %-32s %s\n", "recorded (UTC)",
                r.wallTimestamp.c_str());
    std::printf("  %-32s %s\n", "config", r.configSummary.c_str());

    std::printf("\n[deterministic metrics]\n");
    for (const auto &[key, value] : r.metrics)
        dump(key.c_str(), value);

    std::printf("\n[host profile]\n");
    for (const auto &[key, value] : r.wall)
        dump(key.c_str(), value);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (!args.empty() && args[0] == "--ledger") {
        if (args.size() < 2) {
            std::fprintf(stderr, "usage: %s --ledger FILE\n", argv[0]);
            return 2;
        }
        return inspectLedger(args[1]);
    }
    bool json = !args.empty() && args[0] == "--json";
    if (json)
        args.erase(args.begin());

    // Shard override so the [shard skew] section is reachable without
    // editing a preset (UvmDriver modes reject shards > 1 downstream).
    int shards = 0;
    for (std::size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == "--shards") {
            shards = std::atoi(args[i + 1].c_str());
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                       args.begin() + static_cast<std::ptrdiff_t>(i + 2));
            break;
        }
    }

    std::string app = args.size() > 0 ? args[0] : "MT";
    std::string mode = args.size() > 1 ? args[1] : "baseline";

    cfg::SystemConfig config = (mode == "transfw" || mode == "sw-transfw")
                                   ? sys::transFwConfig()
                                   : sys::baselineConfig();
    if (mode == "sw" || mode == "sw-transfw")
        config.faultMode = cfg::FaultMode::UvmDriver;
    if (shards > 0)
        config.hostShards = shards;
    // Optional third argument: multiply per-op compute (density knob).
    std::uint32_t pad =
        args.size() > 2
            ? static_cast<std::uint32_t>(std::atoi(args[2].c_str()))
            : 1;
    wl::SyntheticSpec spec = wl::appSpec(app, sys::effectiveScale(0.0));
    spec.computePerOp *= std::max(1u, pad);
    wl::SyntheticWorkload workload_obj(spec);
    const wl::Workload *workload = &workload_obj;

    sys::MultiGpuSystem system(config, *workload);
    sys::SimResults r = system.run();

    if (json) {
        std::printf("%s", system.obs().metrics.toJson().c_str());
        return 0;
    }

    std::printf("== %s (%s) ==\n", app.c_str(), mode.c_str());
    std::printf("%s\n\n", r.configSummary.c_str());

    std::printf("[execution]\n");
    dump("exec time (cycles)", static_cast<std::uint64_t>(r.execTime));
    dump("instructions", r.instructions);
    dump("mem ops", r.memOps);
    dump("page accesses", r.pageAccesses);
    dump("L2 TLB misses", r.l2TlbMisses);
    dump("far faults", r.farFaults);
    dump("PFPKI", r.pfpki());

    std::printf("[latency breakdown, cycles per L2 miss]\n");
    double n = r.l2TlbMisses ? static_cast<double>(r.l2TlbMisses) : 1.0;
    dump("gmmu queue", r.xlat.gmmuQueue / n);
    dump("gmmu walk mem", r.xlat.gmmuMem / n);
    dump("host queue", r.xlat.hostQueue / n);
    dump("host walk mem", r.xlat.hostMem / n);
    dump("migration (incl. parking)", r.xlat.migration / n);
    dump("network", r.xlat.network / n);
    dump("other", r.xlat.other / n);
    dump("total (avg measured)", r.avgXlatLatency);
    dump("p50", r.xlatLatencyHist.quantile(0.50));
    dump("p90", r.xlatLatencyHist.quantile(0.90));
    dump("p95", r.xlatLatencyHist.quantile(0.95));
    dump("p99", r.xlatLatencyHist.quantile(0.99));
    dump("p99.9", r.xlatLatencyHist.quantile(0.999));

#if TRANSFW_OBS
    if (r.attribution.requests) {
        std::printf("[attribution, cycles per finished translation]\n");
        for (std::size_t b = 0; b < obs::kNumAttribBuckets; ++b) {
            double cycles = r.attribution.bucket[b];
            if (cycles == 0)
                continue;
            dump(obs::bucketName(static_cast<obs::AttribBucket>(b)),
                 cycles / static_cast<double>(r.attribution.requests));
        }
        std::printf("[reply races]\n");
        dump("forwards", r.attribution.forwards);
        dump("remote wins", r.attribution.remoteWins);
        dump("host wins", r.attribution.hostWins);
        dump("failed forwards", r.attribution.failedForwards);
        dump("cancelled host walks", r.attribution.cancelledHostWalks);
        dump("duplicate host walks", r.attribution.duplicateHostWalks);
        dump("unresolved races", r.attribution.unresolvedRaces);
        dump("saved cycles (measured)", r.attribution.forwardSavedCycles);
        dump("saved cycles (estimated)",
             r.attribution.forwardSavedEstCycles);
        dump("wasted cycles", r.attribution.forwardWastedCycles);
        dump("short-circuit est saving",
             r.attribution.shortCircuitSavedEstCycles);
        dump("late charges (off-path)", r.attribution.lateCharges);
    }
    std::printf("[observability health]\n");
    dump("watchdog checked requests", r.obsCheckedRequests);
    dump("watchdog violations", r.obsCheckViolations);
    dump("dropped spans", r.droppedSpans);

    // Per-link congestion: where on the fabric routed traffic queued.
    {
        std::size_t fabric_edges = 0;
        for (const auto &fl : r.fabricLinks)
            if (fl.fabric)
                ++fabric_edges;
        std::printf("[fabric]\n");
        dump("fabric edges", static_cast<std::uint64_t>(fabric_edges));
        if (!r.fabricWorstLink.empty()) {
            std::printf("  %-32s %s\n", "worst edge (p99 queue wait)",
                        r.fabricWorstLink.c_str());
            dump("worst edge p99 wait", r.fabricWorstQueueWaitP99);
            dump("mean fabric utilization", r.fabricMeanUtilization);
        }
        for (const auto &hd : r.fabricHopDist)
            std::printf("  %2d-hop routes %12llu msgs %12llu bytes "
                        "%10.2f wait/msg\n",
                        hd.hops,
                        static_cast<unsigned long long>(hd.messages),
                        static_cast<unsigned long long>(hd.bytes),
                        hd.waitPerMsg);
        // Busiest edges by moved bytes — the heatmap's top rows.
        std::vector<const sys::SimResults::FabricLinkStats *> busy;
        for (const auto &fl : r.fabricLinks)
            if (fl.fabric && fl.messages)
                busy.push_back(&fl);
        std::stable_sort(busy.begin(), busy.end(),
                         [](const auto *a, const auto *b) {
                             return a->bytes > b->bytes;
                         });
        if (busy.size() > 8)
            busy.resize(8);
        for (const auto *fl : busy)
            std::printf("  %-28s %10llu msgs  wait p99 %8.1f  util "
                        "%5.3f  peakQ %llu\n",
                        fl->name.c_str(),
                        static_cast<unsigned long long>(fl->messages),
                        fl->queueWaitP99, fl->utilization,
                        static_cast<unsigned long long>(
                            fl->peakQueueDepth));
    }

    if (r.hostProfile.stride != 0) {
        std::printf("[host profile, wall seconds]\n");
        for (std::size_t b = 0; b < obs::kNumProfBuckets; ++b) {
            if (r.hostProfile.seconds[b] == 0.0)
                continue;
            dump(obs::profBucketName(static_cast<obs::ProfBucket>(b)),
                 r.hostProfile.seconds[b]);
        }
        dump("total (sampled dispatch)", r.hostProfile.totalSeconds);
        dump("host wall seconds", r.hostWallSeconds);
        dump("events per second", r.hostEventsPerSec);
        dump("peak event backlog", r.peakEventBacklog);
    }
#endif

    std::printf("[TLBs]\n");
    dump("L1 hit rate", r.l1HitRate);
    dump("L2 hit rate", r.l2HitRate);
    dump("host TLB hit rate", r.hostTlbHitRate);

    std::printf("[walk machinery]\n");
    dump("gmmu queue wait mean", r.gmmuQueueWaitMean);
    dump("host queue wait mean", r.hostQueueWaitMean);
    dump("host walks", r.hostWalks);
    dump("host walk mem accesses", r.hostWalkMemAccesses);
    dump("gmmu walk mem accesses", r.gmmuWalkMemAccesses);
    dump("gmmu remote mem accesses", r.gmmuRemoteMemAccesses);

    if (r.driverBatches) {
        std::printf("[uvm driver]\n");
        dump("batches", r.driverBatches);
        dump("avg batch size", r.driverAvgBatchSize);
    }

    if (!r.hostShardWalks.empty()) {
        std::printf("[shard skew]\n");
        dump("shards", static_cast<std::uint64_t>(
                           r.hostShardWalks.size()));
        dump("routed faults", r.hostRoutedFaults);
        dump("wait ratio (worst/mean)", r.shardSkewWaitRatio);
        dump("load share (hottest)", r.shardSkewLoadShareMax);
        dump("load cv", r.shardSkewLoadCv);
        for (std::size_t s = 0; s < r.hostShardWalks.size(); ++s)
            std::printf("  shard %-2zu %12llu walks  wait mean %10.2f  "
                        "peakQ %llu\n",
                        s,
                        static_cast<unsigned long long>(
                            r.hostShardWalks[s]),
                        r.hostShardQueueWaitMean[s],
                        static_cast<unsigned long long>(
                            r.hostShardMaxQueueDepth[s]));
#if TRANSFW_OBS
        for (const auto &hg : r.hotVpnGroups)
            std::printf("  hot group %#14llx -> shard %-2d %10llu "
                        "lookups (err %llu, %5.1f%%)\n",
                        static_cast<unsigned long long>(hg.group),
                        hg.shard,
                        static_cast<unsigned long long>(hg.count),
                        static_cast<unsigned long long>(hg.error),
                        100.0 * hg.share);
#endif
    }

    std::printf("[page movement]\n");
    dump("migrations", r.migrations);
    dump("replications", r.replications);
    dump("write invalidations", r.writeInvalidations);
    dump("remote mappings", r.remoteMappings);
    dump("counter migrations", r.counterMigrations);
    dump("bytes moved", r.bytesMoved);

    if (config.transFw.enabled) {
        std::printf("[trans-fw]\n");
        dump("short circuits", r.shortCircuits);
        dump("prt lookups", r.prtLookups);
        dump("prt hits", r.prtHits);
        dump("ft lookups", r.ftLookups);
        dump("ft hits", r.ftHits);
        dump("forwards", r.forwards);
        dump("forward success", r.forwardSuccess);
        dump("forward fail", r.forwardFail);
        dump("duplicate walks", r.duplicateWalks);
        dump("removed from queue", r.removedFromQueue);
#if TRANSFW_OBS
        if (!r.hotVpnGroups.empty()) {
            double top8 = 0;
            for (const auto &hg : r.hotVpnGroups)
                top8 += hg.share;
            dump("hot-group top-8 share", top8 > 1.0 ? 1.0 : top8);
        }
#endif
    }

    std::printf("[pw-cache hit levels, %% of lookups]\n");
    for (std::size_t level = 0; level <= 5; ++level) {
        std::printf("  gmmu L%zu %6.2f%%   host L%zu %6.2f%%\n", level,
                    100.0 * r.gmmuPwcLevels.fraction(level), level,
                    100.0 * r.hostPwcLevels.fraction(level));
    }
    return 0;
}
