/**
 * ml_training: simulate data-parallel training of VGG16 or ResNet18
 * across 4 GPUs (Section V-J) and report the translation behaviour per
 * configuration.
 *
 * Usage: ml_training [VGG16|ResNet18] [iterations]
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "transfw/transfw.hpp"

using namespace transfw;

int
main(int argc, char **argv)
{
    std::string model = argc > 1 ? argv[1] : "ResNet18";
    int iterations = argc > 2 ? std::atoi(argv[2]) : 2;

    auto workload = wl::makeMlModel(model, 1.0 / 64, iterations);
    std::printf("model: %s, %d iterations, footprint %llu pages\n",
                model.c_str(), iterations,
                static_cast<unsigned long long>(
                    workload->footprintPages()));

    cfg::SystemConfig baseline = sys::baselineConfig();
    cfg::SystemConfig fw = sys::transFwConfig();

    sys::SimResults base = sys::runWorkload(*workload, baseline);
    sys::SimResults trans = sys::runWorkload(*workload, fw);

    std::printf("\n%-28s %14s %14s\n", "", "baseline", "trans-fw");
    std::printf("%-28s %14llu %14llu\n", "execution time (cycles)",
                static_cast<unsigned long long>(base.execTime),
                static_cast<unsigned long long>(trans.execTime));
    std::printf("%-28s %14.3f %14.3f\n", "PFPKI", base.pfpki(),
                trans.pfpki());
    std::printf("%-28s %14llu %14llu\n", "page migrations",
                static_cast<unsigned long long>(base.migrations),
                static_cast<unsigned long long>(trans.migrations));
    std::printf("%-28s %14.2f %14.2f\n", "MB moved",
                base.bytesMoved / 1048576.0,
                trans.bytesMoved / 1048576.0);
    std::printf("\nspeedup: %.3fx\n", sys::speedup(base, trans));
    std::printf("(weight broadcast + gradient allreduce pages are the "
                "shared-hot set\n the forwarding tables exploit)\n");
    return 0;
}
