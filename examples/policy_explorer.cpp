/**
 * policy_explorer: compare every page-placement policy (on-touch
 * migration, read replication, remote mapping), with and without
 * Trans-FW, on one application — the design-space tour of Sections
 * V-D and V-E.
 *
 * Usage: policy_explorer [APP] [--ledger PATH]   (APP defaults to KM)
 *
 * Every run appends a transfw-ledger-v1 record to --ledger (or
 * $TRANSFW_LEDGER when set).
 */
#include <cstdio>
#include <string>

#include "system/report.hpp"
#include "transfw/transfw.hpp"

using namespace transfw;

namespace {

const char *
policyName(cfg::MigrationPolicy policy)
{
    switch (policy) {
      case cfg::MigrationPolicy::OnTouch:
        return "on-touch";
      case cfg::MigrationPolicy::ReadReplicate:
        return "replicate";
      case cfg::MigrationPolicy::RemoteMap:
        return "remote-map";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app = "KM";
    std::string ledger = obs::RunLedger::envPath();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--ledger" && i + 1 < argc)
            ledger = argv[++i];
        else
            app = arg;
    }
    std::printf("placement policy exploration: %s\n\n", app.c_str());
    std::printf("%-12s %-9s %12s %10s %10s %12s\n", "policy", "trans-fw",
                "exec", "faults", "pfpki", "bytesMoved");

    for (auto policy : {cfg::MigrationPolicy::OnTouch,
                        cfg::MigrationPolicy::ReadReplicate,
                        cfg::MigrationPolicy::RemoteMap}) {
        for (bool transfw : {false, true}) {
            cfg::SystemConfig config =
                transfw ? sys::transFwConfig() : sys::baselineConfig();
            config.migrationPolicy = policy;
            sys::SimResults r = sys::runApp(app, config);
            if (!ledger.empty())
                obs::RunLedger::append(
                    ledger,
                    sys::toLedgerRecord(r, config,
                                        sys::effectiveScale(0.0),
                                        "policy_explorer"));
            std::printf("%-12s %-9s %12llu %10llu %10.3f %12llu\n",
                        policyName(policy), transfw ? "yes" : "no",
                        static_cast<unsigned long long>(r.execTime),
                        static_cast<unsigned long long>(r.farFaults),
                        r.pfpki(),
                        static_cast<unsigned long long>(r.bytesMoved));
        }
    }
    std::printf("\nNotes: replication helps read-shared data but not "
                "write-shared pages;\nremote mapping trades migration "
                "traffic for slower remote accesses;\nTrans-FW composes "
                "with all three.\n");
    return 0;
}
