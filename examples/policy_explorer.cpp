/**
 * policy_explorer: compare every page-placement policy (on-touch
 * migration, read replication, remote mapping), with and without
 * Trans-FW, on one application — the design-space tour of Sections
 * V-D and V-E.
 *
 * Usage: policy_explorer [APP] [--ledger PATH]
 *            [--topology ring|mesh|switch|a2a] [--mesh-cols N]
 *            [--switch-radix N] [--shards K] [--ft-mode repl|part]
 *        (APP defaults to KM)
 *
 * The fabric/shard flags mirror simulate's, so the policy tour can run
 * on the same pod-scale machine shapes the scaling study uses.
 *
 * Every run appends a transfw-ledger-v1 record to --ledger (or
 * $TRANSFW_LEDGER when set).
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "system/report.hpp"
#include "transfw/transfw.hpp"

using namespace transfw;

namespace {

const char *
policyName(cfg::MigrationPolicy policy)
{
    switch (policy) {
      case cfg::MigrationPolicy::OnTouch:
        return "on-touch";
      case cfg::MigrationPolicy::ReadReplicate:
        return "replicate";
      case cfg::MigrationPolicy::RemoteMap:
        return "remote-map";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app = "KM";
    std::string ledger = obs::RunLedger::envPath();
    // Machine-shape overrides, applied to every grid point (-1 / unset:
    // keep the preset's value).
    bool topologySet = false;
    ic::Topology topology = ic::Topology::AllToAll;
    int meshCols = 0;
    int switchRadix = 0;
    int shards = 0;
    int ftReplicated = -1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--ledger" && i + 1 < argc) {
            ledger = argv[++i];
        } else if (arg == "--topology" && i + 1 < argc) {
            std::string t = argv[++i];
            topologySet = true;
            if (t == "ring")
                topology = ic::Topology::Ring;
            else if (t == "mesh")
                topology = ic::Topology::Mesh2D;
            else if (t == "switch")
                topology = ic::Topology::Switch;
            else if (t == "a2a" || t == "all-to-all")
                topology = ic::Topology::AllToAll;
            else {
                std::fprintf(stderr,
                             "unknown topology '%s' (want ring|mesh|"
                             "switch|a2a)\n",
                             t.c_str());
                return 2;
            }
        } else if (arg == "--mesh-cols" && i + 1 < argc) {
            meshCols = std::atoi(argv[++i]);
        } else if (arg == "--switch-radix" && i + 1 < argc) {
            switchRadix = std::atoi(argv[++i]);
        } else if (arg == "--shards" && i + 1 < argc) {
            shards = std::atoi(argv[++i]);
        } else if (arg == "--ft-mode" && i + 1 < argc) {
            std::string m = argv[++i];
            if (m == "repl" || m == "replicated")
                ftReplicated = 1;
            else if (m == "part" || m == "partitioned")
                ftReplicated = 0;
            else {
                std::fprintf(stderr,
                             "unknown ft mode '%s' (want repl|part)\n",
                             m.c_str());
                return 2;
            }
        } else {
            app = arg;
        }
    }
    std::printf("placement policy exploration: %s\n\n", app.c_str());
    std::printf("%-12s %-9s %12s %10s %10s %12s\n", "policy", "trans-fw",
                "exec", "faults", "pfpki", "bytesMoved");

    for (auto policy : {cfg::MigrationPolicy::OnTouch,
                        cfg::MigrationPolicy::ReadReplicate,
                        cfg::MigrationPolicy::RemoteMap}) {
        for (bool transfw : {false, true}) {
            cfg::SystemConfig config =
                transfw ? sys::transFwConfig() : sys::baselineConfig();
            config.migrationPolicy = policy;
            if (topologySet)
                config.peerTopology = topology;
            if (meshCols > 0)
                config.meshCols = meshCols;
            if (switchRadix > 0)
                config.switchRadix = switchRadix;
            if (shards > 0)
                config.hostShards = shards;
            if (ftReplicated >= 0)
                config.transFw.ftReplicated = ftReplicated == 1;
            sys::SimResults r = sys::runApp(app, config);
            if (!ledger.empty())
                obs::RunLedger::append(
                    ledger,
                    sys::toLedgerRecord(r, config,
                                        sys::effectiveScale(0.0),
                                        "policy_explorer"));
            std::printf("%-12s %-9s %12llu %10llu %10.3f %12llu\n",
                        policyName(policy), transfw ? "yes" : "no",
                        static_cast<unsigned long long>(r.execTime),
                        static_cast<unsigned long long>(r.farFaults),
                        r.pfpki(),
                        static_cast<unsigned long long>(r.bytesMoved));
        }
    }
    std::printf("\nNotes: replication helps read-shared data but not "
                "write-shared pages;\nremote mapping trades migration "
                "traffic for slower remote accesses;\nTrans-FW composes "
                "with all three.\n");
    return 0;
}
