/**
 * Quickstart: simulate one application on the Table II baseline and on
 * Trans-FW, and print the headline numbers.
 *
 * Usage: quickstart [APP]   (APP defaults to MT; see Table III abbrs)
 */
#include <cstdio>
#include <string>

#include "transfw/transfw.hpp"

using namespace transfw;

int
main(int argc, char **argv)
{
    std::string app = argc > 1 ? argv[1] : "MT";

    cfg::SystemConfig baseline = sys::baselineConfig();
    cfg::SystemConfig fw = sys::transFwConfig();

    std::printf("app: %s\n", app.c_str());
    std::printf("baseline config: %s\n", baseline.summary().c_str());

    sys::SimResults base = sys::runApp(app, baseline);
    sys::SimResults trans = sys::runApp(app, fw);

    std::printf("\n%-28s %14s %14s\n", "", "baseline", "trans-fw");
    std::printf("%-28s %14llu %14llu\n", "execution time (cycles)",
                static_cast<unsigned long long>(base.execTime),
                static_cast<unsigned long long>(trans.execTime));
    std::printf("%-28s %14.3f %14.3f\n", "PFPKI", base.pfpki(),
                trans.pfpki());
    std::printf("%-28s %14llu %14llu\n", "far faults",
                static_cast<unsigned long long>(base.farFaults),
                static_cast<unsigned long long>(trans.farFaults));
    std::printf("%-28s %14.1f %14.1f\n", "avg L2-miss latency",
                base.avgXlatLatency, trans.avgXlatLatency);
    std::printf("%-28s %14s %14llu\n", "PRT short circuits", "-",
                static_cast<unsigned long long>(trans.shortCircuits));
    std::printf("%-28s %14s %14llu\n", "FT forwards", "-",
                static_cast<unsigned long long>(trans.forwards));
    std::printf("\nspeedup: %.3fx\n", sys::speedup(base, trans));
    return 0;
}
