/**
 * simulate: the command-line front end to the simulator. Choose a
 * workload (Table III app, ML model, or trace file), flip any of the
 * paper's configuration knobs, and get a full report or a CSV row.
 *
 * Examples:
 *   simulate --app MT --transfw
 *   simulate --app PR --transfw --threshold 1.0 --gpus 8
 *   simulate --model VGG16 --policy replicate --report
 *   simulate --trace /tmp/foo.trace --fault-mode sw --csv
 *   simulate --app KM --transfw --no-forwarding   # PRT-only ablation
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "system/report.hpp"
#include "transfw/transfw.hpp"
#include "workload/trace.hpp"

using namespace transfw;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [workload] [config] [output]\n"
        "workload (one of):\n"
        "  --app ABBR          Table III app (AES FIR KM PR MM MT SC ST\n"
        "                      Conv2d Im2col), default MT\n"
        "  --model NAME        VGG16 or ResNet18 training trace\n"
        "  --trace PATH        replay a trace-v1 file\n"
        "  --scale F           scale per-CTA work (default 1.0)\n"
        "config:\n"
        "  --transfw           enable Trans-FW (PRT + FT)\n"
        "  --no-short-circuit  ablation: disable the PRT short circuit\n"
        "  --no-forwarding     ablation: disable FT remote forwarding\n"
        "  --threshold F       forwarding threshold (default 0.5)\n"
        "  --gpus N --cus N --slots N\n"
        "  --walkers G,H       GMMU,host PT-walk threads (default 8,16)\n"
        "  --levels N          page-table levels, 4 or 5\n"
        "  --page-size 4k|2m\n"
        "  --pwc utc|stc|inf   PW-cache organization\n"
        "  --pwc-entries N\n"
        "  --fault-mode hw|sw  host MMU or UVM driver\n"
        "  --mem-model simple|hier  data-side memory model\n"
        "  --topology a2a|ring|mesh|switch  GPU-GPU fabric\n"
        "  --mesh-cols N       mesh columns (0 = near-square auto)\n"
        "  --switch-radix N    GPUs per leaf switch (default 8)\n"
        "  --shards K          host-MMU/IOMMU shards (default 1)\n"
        "  --ft-mode part|repl FT placement across shards\n"
        "  --policy on-touch|replicate|remote-map\n"
        "  --asap --least-tlb  comparator techniques\n"
        "  --cold              disable first-touch pre-placement\n"
        "  --seed N\n"
        "  --lanes N           per-GPU event lanes (0 = serial kernel,\n"
        "                      execution detail: results are identical)\n"
        "output:\n"
        "  --report            full named-scalar report (default: summary)\n"
        "  --csv               one CSV row (+ header)\n"
        "  --ledger PATH       append a transfw-ledger-v1 JSONL record\n"
        "                      (defaults to $TRANSFW_LEDGER when set)\n",
        argv0);
    std::exit(2);
}

const char *
nextArg(int argc, char **argv, int &i, const char *argv0)
{
    if (++i >= argc)
        usage(argv0);
    return argv[i];
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app = "MT", model, trace;
    std::string ledger = obs::RunLedger::envPath();
    double scale = 0.0;
    bool report = false, csv = false;
    cfg::SystemConfig config = sys::baselineConfig();

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() { return nextArg(argc, argv, i, argv[0]); };
        if (arg == "--app") {
            app = next();
        } else if (arg == "--model") {
            model = next();
        } else if (arg == "--trace") {
            trace = next();
        } else if (arg == "--scale") {
            scale = std::atof(next());
        } else if (arg == "--transfw") {
            config.transFw.enabled = true;
        } else if (arg == "--no-short-circuit") {
            config.transFw.enableShortCircuit = false;
        } else if (arg == "--no-forwarding") {
            config.transFw.enableForwarding = false;
        } else if (arg == "--threshold") {
            config.transFw.forwardThreshold = std::atof(next());
        } else if (arg == "--gpus") {
            config.numGpus = std::atoi(next());
        } else if (arg == "--cus") {
            config.cusPerGpu = std::atoi(next());
        } else if (arg == "--slots") {
            config.wavefrontSlotsPerCu = std::atoi(next());
        } else if (arg == "--lanes") {
            config.sim.lanes = std::atoi(next());
        } else if (arg == "--walkers") {
            const char *value = next();
            if (std::sscanf(value, "%d,%d", &config.gmmuWalkers,
                            &config.hostWalkers) != 2)
                usage(argv[0]);
        } else if (arg == "--levels") {
            config.pageTableLevels = std::atoi(next());
        } else if (arg == "--page-size") {
            std::string v = next();
            config.pageShift = v == "2m" ? mem::kLargePageShift
                                         : mem::kSmallPageShift;
        } else if (arg == "--pwc") {
            std::string v = next();
            config.pwcKind = v == "stc"   ? pwc::PwcKind::Stc
                             : v == "inf" ? pwc::PwcKind::Infinite
                                          : pwc::PwcKind::Utc;
        } else if (arg == "--pwc-entries") {
            config.pwcEntries =
                static_cast<std::size_t>(std::atoi(next()));
        } else if (arg == "--topology") {
            std::string v = next();
            if (v == "ring")
                config.peerTopology = ic::Topology::Ring;
            else if (v == "mesh")
                config.peerTopology = ic::Topology::Mesh2D;
            else if (v == "switch")
                config.peerTopology = ic::Topology::Switch;
            else if (v == "a2a" || v == "all-to-all")
                config.peerTopology = ic::Topology::AllToAll;
            else
                usage(argv[0]);
        } else if (arg == "--mesh-cols") {
            config.meshCols = std::atoi(next());
        } else if (arg == "--switch-radix") {
            config.switchRadix = std::atoi(next());
        } else if (arg == "--shards") {
            config.hostShards = std::atoi(next());
        } else if (arg == "--ft-mode") {
            std::string v = next();
            if (v == "repl" || v == "replicated")
                config.transFw.ftReplicated = true;
            else if (v == "part" || v == "partitioned")
                config.transFw.ftReplicated = false;
            else
                usage(argv[0]);
        } else if (arg == "--mem-model") {
            std::string v = next();
            config.memModel = v == "hier" ? cfg::MemModel::Hierarchy
                                          : cfg::MemModel::Simple;
        } else if (arg == "--fault-mode") {
            std::string v = next();
            config.faultMode = v == "sw" ? cfg::FaultMode::UvmDriver
                                         : cfg::FaultMode::HostMmu;
        } else if (arg == "--policy") {
            std::string v = next();
            config.migrationPolicy =
                v == "replicate"    ? cfg::MigrationPolicy::ReadReplicate
                : v == "remote-map" ? cfg::MigrationPolicy::RemoteMap
                                    : cfg::MigrationPolicy::OnTouch;
        } else if (arg == "--asap") {
            config.asap.enabled = true;
        } else if (arg == "--least-tlb") {
            config.leastTlb.enabled = true;
        } else if (arg == "--cold") {
            config.prewarmPlacement = false;
        } else if (arg == "--seed") {
            config.seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (arg == "--report") {
            report = true;
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--ledger") {
            ledger = next();
        } else {
            usage(argv[0]);
        }
    }

    std::unique_ptr<wl::Workload> workload;
    if (!trace.empty())
        workload = std::make_unique<wl::TraceWorkload>(trace);
    else if (!model.empty())
        workload = wl::makeMlModel(model);
    else
        workload = wl::makeApp(app, sys::effectiveScale(scale));

    sys::SimResults r = sys::runWorkload(*workload, config);

    if (!ledger.empty())
        obs::RunLedger::append(
            ledger, sys::toLedgerRecord(r, config,
                                        sys::effectiveScale(scale),
                                        "simulate"));

    if (csv) {
        std::printf("%s\n%s\n", sys::csvHeader().c_str(),
                    sys::csvRow(r).c_str());
    } else if (report) {
        std::printf("%s", sys::formatReport(r).c_str());
    } else {
        std::printf("%s on %s\n", r.app.c_str(),
                    r.configSummary.c_str());
        std::printf("exec %llu cycles, %llu faults (PFPKI %.3f), "
                    "avg L2-miss latency %.1f\n",
                    static_cast<unsigned long long>(r.execTime),
                    static_cast<unsigned long long>(r.farFaults),
                    r.pfpki(), r.avgXlatLatency);
    }
    return 0;
}
