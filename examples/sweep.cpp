/**
 * sweep: cross-product experiment runner. Sweeps one or two config
 * dimensions over a workload and emits CSV (one row per point) for
 * plotting — the tool behind "how does the gain scale with X?"
 * questions.
 *
 * Usage:
 *   sweep --app MT --dim walkers --dim threshold > mt.csv
 *
 * Supported dimensions: gpus, cus, walkers, threshold, pwc, peerlat,
 * slots.
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "system/report.hpp"
#include "transfw/transfw.hpp"

using namespace transfw;

namespace {

struct Dimension
{
    std::string name;
    std::vector<double> values;
};

Dimension
makeDimension(const std::string &name)
{
    if (name == "gpus")
        return {name, {2, 4, 8, 16}};
    if (name == "cus")
        return {name, {16, 32, 64}};
    if (name == "walkers")
        return {name, {4, 8, 16, 32}};
    if (name == "threshold")
        return {name, {0.0, 0.5, 1.0, 2.0}};
    if (name == "pwc")
        return {name, {64, 128, 256, 512}};
    if (name == "peerlat")
        return {name, {100, 200, 400, 800}};
    if (name == "slots")
        return {name, {2, 4, 6, 8}};
    sim::fatal("unknown sweep dimension: " + name);
}

void
apply(cfg::SystemConfig &config, const std::string &dim, double value)
{
    if (dim == "gpus")
        config.numGpus = static_cast<int>(value);
    else if (dim == "cus")
        config.cusPerGpu = static_cast<int>(value);
    else if (dim == "walkers") {
        config.gmmuWalkers = static_cast<int>(value);
        config.hostWalkers = 2 * static_cast<int>(value);
    } else if (dim == "threshold")
        config.transFw.forwardThreshold = value;
    else if (dim == "pwc")
        config.pwcEntries = static_cast<std::size_t>(value);
    else if (dim == "peerlat")
        config.peerLink.latency = static_cast<sim::Tick>(value);
    else if (dim == "slots")
        config.wavefrontSlotsPerCu = static_cast<int>(value);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app = "MT";
    std::vector<Dimension> dims;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--app" && i + 1 < argc) {
            app = argv[++i];
        } else if (arg == "--dim" && i + 1 < argc) {
            dims.push_back(makeDimension(argv[++i]));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--app ABBR] --dim NAME [--dim NAME]\n",
                         argv[0]);
            return 2;
        }
    }
    if (dims.empty())
        dims.push_back(makeDimension("walkers"));
    if (dims.size() > 2)
        sim::fatal("at most two sweep dimensions");
    if (dims.size() == 1)
        dims.push_back(Dimension{"", {0}});

    std::printf("%s,%s,speedup,%s\n", dims[0].name.c_str(),
                dims[1].name.c_str(), sys::csvHeader().c_str());
    for (double v0 : dims[0].values) {
        for (double v1 : dims[1].values) {
            cfg::SystemConfig baseline = sys::baselineConfig();
            apply(baseline, dims[0].name, v0);
            apply(baseline, dims[1].name, v1);
            cfg::SystemConfig fw = baseline;
            fw.transFw.enabled = true;

            sys::SimResults base = sys::runApp(app, baseline);
            sys::SimResults trans = sys::runApp(app, fw);
            std::printf("%g,%g,%.4f,%s\n", v0, v1,
                        sys::speedup(base, trans),
                        sys::csvRow(trans).c_str());
            std::fflush(stdout);
        }
    }
    return 0;
}
