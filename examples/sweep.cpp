/**
 * sweep: cross-product experiment runner. Sweeps one or two config
 * dimensions over a workload and emits CSV (one row per point) for
 * plotting — the tool behind "how does the gain scale with X?"
 * questions.
 *
 * Usage:
 *   sweep --app MT --dim walkers --dim threshold [-j N] > mt.csv
 *
 * Supported dimensions: gpus, cus, walkers, threshold, pwc, peerlat,
 * slots, shards, topology. -j N runs the independent grid points on N
 * worker threads (default: TRANSFW_JOBS or the hardware thread count);
 * the CSV rows and their values are identical to a serial run.
 *
 * --pod-study runs the fixed pod-scaling grid instead (GPU count x
 * fabric topology x host-MMU shard count, Trans-FW on) and emits one
 * CSV row per point with the host-walk-queue pressure signals — the
 * "where does forwarding break down as the pod grows?" study.
 *
 * --ledger PATH appends one transfw-ledger-v1 record per executed
 * point (defaults to $TRANSFW_LEDGER when set).
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "system/report.hpp"
#include "transfw/transfw.hpp"

using namespace transfw;

namespace {

struct Dimension
{
    std::string name;
    std::vector<double> values;
};

Dimension
makeDimension(const std::string &name)
{
    if (name == "gpus")
        return {name, {2, 4, 8, 16}};
    if (name == "cus")
        return {name, {16, 32, 64}};
    if (name == "walkers")
        return {name, {4, 8, 16, 32}};
    if (name == "threshold")
        return {name, {0.0, 0.5, 1.0, 2.0}};
    if (name == "pwc")
        return {name, {64, 128, 256, 512}};
    if (name == "peerlat")
        return {name, {100, 200, 400, 800}};
    if (name == "slots")
        return {name, {2, 4, 6, 8}};
    if (name == "shards")
        return {name, {1, 2, 4, 8}};
    if (name == "topology") // Topology enum order: a2a ring mesh switch
        return {name, {0, 1, 2, 3}};
    sim::fatal("unknown sweep dimension: " + name);
}

void
apply(cfg::SystemConfig &config, const std::string &dim, double value)
{
    if (dim == "gpus")
        config.numGpus = static_cast<int>(value);
    else if (dim == "cus")
        config.cusPerGpu = static_cast<int>(value);
    else if (dim == "walkers") {
        config.gmmuWalkers = static_cast<int>(value);
        config.hostWalkers = 2 * static_cast<int>(value);
    } else if (dim == "threshold")
        config.transFw.forwardThreshold = value;
    else if (dim == "pwc")
        config.pwcEntries = static_cast<std::size_t>(value);
    else if (dim == "peerlat")
        config.peerLink.latency = static_cast<sim::Tick>(value);
    else if (dim == "slots")
        config.wavefrontSlotsPerCu = static_cast<int>(value);
    else if (dim == "shards")
        config.hostShards = static_cast<int>(value);
    else if (dim == "topology")
        config.peerTopology =
            static_cast<ic::Topology>(static_cast<int>(value));
}

/**
 * The pod-scaling study: one Trans-FW run per (topology, GPU count,
 * shard count) point, scaled down so the whole grid fits in minutes.
 * Columns expose the serialization point the sharding removes: the
 * host PW-queue wait (aggregate and the worst single shard) and how
 * forwarding holds up as hops stretch the fabric.
 */
int
podStudy(const std::string &app, int jobs, bool ledger_set,
         const std::string &ledger, const std::string &heatmap_path)
{
    const std::pair<ic::Topology, const char *> kTopos[] = {
        {ic::Topology::AllToAll, "a2a"},
        {ic::Topology::Ring, "ring"},
        {ic::Topology::Mesh2D, "mesh"},
        {ic::Topology::Switch, "switch"},
    };
    const int kGpus[] = {8, 16, 32, 64};
    const int kShards[] = {1, 2, 4, 8};
    const double kScale = 0.05;

    std::vector<sys::RunSpec> specs;
    for (const auto &[topo, name] : kTopos) {
        for (int gpus : kGpus) {
            for (int shards : kShards) {
                cfg::SystemConfig config = sys::transFwConfig();
                config.numGpus = gpus;
                config.cusPerGpu = 4;
                config.peerTopology = topo;
                config.hostShards = shards;
                specs.push_back({app, config, kScale});
            }
        }
    }
    sys::SweepRunner runner(jobs);
    if (ledger_set)
        runner.setLedgerPath(ledger);
    std::vector<sys::SimResults> results = runner.run(specs);

    // Optional per-link heatmap: one row per (grid point, link with
    // traffic) — the fabric congestion picture behind the headline
    // columns. Zero-traffic links are skipped (a 64-GPU all-to-all has
    // 4k+ of them, all silent).
    std::FILE *heat = nullptr;
    if (!heatmap_path.empty()) {
        heat = std::fopen(heatmap_path.c_str(), "w");
        if (!heat)
            sim::fatal("cannot open heatmap file: " + heatmap_path);
        std::fprintf(heat,
                     "topology,gpus,shards,link,fabric,bytes,messages,"
                     "ctrlMessages,queueWaitMean,queueWaitP99,"
                     "peakQueueDepth,utilization\n");
    }

    std::printf("topology,gpus,shards,exec.cycles,xlat.avgLatency,"
                "xlat.p99,fault.count,walk.host,transfw.forwards,"
                "transfw.forwardSuccess,queue.hostWaitMean,"
                "shard.maxQueueWaitMean,shard.routedFaults,"
                "attrib.hostQueue,attrib.hostRoute,"
                "fabric.worstLinkP99,fabric.meanUtilization,"
                "shard.skew.waitRatio,shard.skew.loadShareMax,"
                "obs.checkViolations"
                "\n");
    std::size_t idx = 0;
    for (const auto &[topo, name] : kTopos) {
        for (int gpus : kGpus) {
            for (int shards : kShards) {
                const sys::SimResults &r = results[idx++];
                double worst_wait = r.hostQueueWaitMean;
                for (double w : r.hostShardQueueWaitMean)
                    worst_wait = std::max(worst_wait, w);
                const auto &attr = r.attribution.bucket;
                std::printf(
                    "%s,%d,%d,%llu,%.1f,%.1f,%llu,%llu,%llu,%llu,"
                    "%.2f,%.2f,%llu,%.0f,%.0f,%.1f,%.4f,%.3f,%.3f,"
                    "%llu\n",
                    name, gpus, shards,
                    static_cast<unsigned long long>(r.execTime),
                    r.avgXlatLatency, r.xlatLatencyHist.quantile(0.99),
                    static_cast<unsigned long long>(r.farFaults),
                    static_cast<unsigned long long>(r.hostWalks),
                    static_cast<unsigned long long>(r.forwards),
                    static_cast<unsigned long long>(r.forwardSuccess),
                    r.hostQueueWaitMean, worst_wait,
                    static_cast<unsigned long long>(r.hostRoutedFaults),
                    attr[static_cast<std::size_t>(
                        obs::AttribBucket::HostQueue)],
                    attr[static_cast<std::size_t>(
                        obs::AttribBucket::HostRoute)],
                    r.fabricWorstQueueWaitP99, r.fabricMeanUtilization,
                    r.shardSkewWaitRatio, r.shardSkewLoadShareMax,
                    static_cast<unsigned long long>(
                        r.obsCheckViolations));
                std::fflush(stdout);
                if (heat) {
                    for (const auto &fl : r.fabricLinks) {
                        if (!fl.messages)
                            continue;
                        std::fprintf(
                            heat,
                            "%s,%d,%d,%s,%d,%llu,%llu,%llu,%.2f,%.1f,"
                            "%llu,%.4f\n",
                            name, gpus, shards, fl.name.c_str(),
                            fl.fabric ? 1 : 0,
                            static_cast<unsigned long long>(fl.bytes),
                            static_cast<unsigned long long>(
                                fl.messages),
                            static_cast<unsigned long long>(
                                fl.ctrlMessages),
                            fl.queueWaitMean, fl.queueWaitP99,
                            static_cast<unsigned long long>(
                                fl.peakQueueDepth),
                            fl.utilization);
                    }
                }
            }
        }
    }
    if (heat)
        std::fclose(heat);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app = "MT";
    std::string ledger; // empty: SweepRunner's $TRANSFW_LEDGER default
    bool ledgerSet = false;
    std::vector<Dimension> dims;
    int jobs = 0; // 0: SweepRunner default (TRANSFW_JOBS / hardware)
    bool pod_study = false;
    std::string heatmap; // --pod-study only: per-link CSV path
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--app" && i + 1 < argc) {
            app = argv[++i];
        } else if (arg == "--dim" && i + 1 < argc) {
            dims.push_back(makeDimension(argv[++i]));
        } else if (arg == "--pod-study") {
            pod_study = true;
        } else if (arg == "--heatmap" && i + 1 < argc) {
            heatmap = argv[++i];
        } else if (arg == "--ledger" && i + 1 < argc) {
            ledger = argv[++i];
            ledgerSet = true;
        } else if (arg == "-j" && i + 1 < argc) {
            jobs = std::atoi(argv[++i]);
            if (jobs < 1) {
                std::fprintf(stderr, "-j expects a positive count\n");
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--app ABBR] --dim NAME [--dim NAME] "
                         "[--pod-study [--heatmap PATH]] [-j N] "
                         "[--ledger PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (pod_study)
        return podStudy(app, jobs, ledgerSet, ledger, heatmap);
    if (dims.empty())
        dims.push_back(makeDimension("walkers"));
    if (dims.size() > 2)
        sim::fatal("at most two sweep dimensions");
    if (dims.size() == 1)
        dims.push_back(Dimension{"", {0}});

    // Build the whole grid (baseline + Trans-FW per point), run it on
    // the SweepRunner, then print rows in grid order — byte-identical
    // CSV to the old serial loop regardless of -j.
    std::vector<sys::RunSpec> specs;
    for (double v0 : dims[0].values) {
        for (double v1 : dims[1].values) {
            cfg::SystemConfig baseline = sys::baselineConfig();
            apply(baseline, dims[0].name, v0);
            apply(baseline, dims[1].name, v1);
            cfg::SystemConfig fw = baseline;
            fw.transFw.enabled = true;
            specs.push_back({app, baseline, 0.0});
            specs.push_back({app, fw, 0.0});
        }
    }
    sys::SweepRunner runner(jobs);
    if (ledgerSet)
        runner.setLedgerPath(ledger);
    std::vector<sys::SimResults> results = runner.run(specs);
    std::fprintf(stderr, "sweep: %llu points executed on %llu job(s)\n",
                 static_cast<unsigned long long>(runner.stats().executed),
                 static_cast<unsigned long long>(
                     runner.stats().effectiveJobs));

    std::printf("%s,%s,speedup,%s\n", dims[0].name.c_str(),
                dims[1].name.c_str(), sys::csvHeader().c_str());
    std::size_t idx = 0;
    for (double v0 : dims[0].values) {
        for (double v1 : dims[1].values) {
            const sys::SimResults &base = results[idx++];
            const sys::SimResults &trans = results[idx++];
            std::printf("%g,%g,%.4f,%s\n", v0, v1,
                        sys::speedup(base, trans),
                        sys::csvRow(trans).c_str());
            std::fflush(stdout);
        }
    }
    return 0;
}
