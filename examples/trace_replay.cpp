/**
 * trace_replay: freeze a workload into a portable trace file, replay
 * it, and confirm the replay reproduces the original execution — the
 * workflow for driving the simulator with externally captured access
 * streams.
 *
 * Usage: trace_replay [APP] [trace-path]
 */
#include <cstdio>
#include <string>

#include "transfw/transfw.hpp"
#include "workload/trace.hpp"

using namespace transfw;

int
main(int argc, char **argv)
{
    std::string app = argc > 1 ? argv[1] : "KM";
    std::string path = argc > 2 ? argv[2] : "/tmp/transfw_demo.trace";

    cfg::SystemConfig config = sys::baselineConfig();

    // 1. Record the synthetic workload into a trace file.
    auto original = wl::makeApp(app, 0.5);
    wl::recordTrace(*original, config.numGpus, config.seed, path);
    std::printf("recorded %s to %s\n", app.c_str(), path.c_str());

    // 2. Replay it.
    wl::TraceWorkload replay(path);
    std::printf("trace: %d CTAs, %llu ops, %llu pages\n",
                replay.numCtas(),
                static_cast<unsigned long long>(replay.totalOps()),
                static_cast<unsigned long long>(replay.footprintPages()));

    sys::SimResults from_spec = sys::runWorkload(*original, config);
    sys::SimResults from_trace = sys::runWorkload(replay, config);

    std::printf("\n%-24s %14s %14s\n", "", "synthetic", "trace replay");
    std::printf("%-24s %14llu %14llu\n", "exec time",
                static_cast<unsigned long long>(from_spec.execTime),
                static_cast<unsigned long long>(from_trace.execTime));
    std::printf("%-24s %14llu %14llu\n", "far faults",
                static_cast<unsigned long long>(from_spec.farFaults),
                static_cast<unsigned long long>(from_trace.farFaults));
    std::printf("%-24s %14llu %14llu\n", "mem ops",
                static_cast<unsigned long long>(from_spec.memOps),
                static_cast<unsigned long long>(from_trace.memOps));

    bool match = from_spec.memOps == from_trace.memOps;
    std::printf("\nreplay %s the recorded access stream.\n",
                match ? "reproduces" : "DIVERGES FROM");
    return match ? 0 : 1;
}
