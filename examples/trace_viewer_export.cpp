/**
 * trace_viewer_export: run one application with full observability on
 * and export everything the obs subsystem produces:
 *
 *   <out>/trace.json       Chrome trace-event JSON — open directly in
 *                          ui.perfetto.dev (or chrome://tracing). One
 *                          Perfetto "process" per GPU (plus one for the
 *                          host driver), one "thread" lane per
 *                          translation request, nested phase spans
 *                          (gmmu.queue, gmmu.walk, host.queue, ...),
 *                          plus a "metrics" process whose counter
 *                          tracks plot the interval-sampler series
 *                          (queue depths, event backlog, hit rates)
 *                          under the spans.
 *   <out>/metrics.json     The unified metrics registry: every
 *                          component's gauges under hierarchical keys
 *                          ("gpu0.gmmu.pwc.hitRate", "host.mmu.queueDepth")
 *                          plus latency percentiles.
 *   <out>/timeseries.csv   Interval samples of queue depths, filter
 *   <out>/timeseries.json  load factors and TLB/PWC hit rates.
 *
 * Usage: trace_viewer_export [APP] [baseline|transfw|sw|sw-transfw]
 *                            [OUTDIR] [SAMPLE_INTERVAL]
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>

#include "transfw/transfw.hpp"

using namespace transfw;

namespace {

void
writeFile(const std::string &path, const std::function<void(std::ostream &)> &fn)
{
    std::ofstream os(path);
    if (!os)
        sim::fatal("cannot open " + path + " for writing");
    fn(os);
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app = argc > 1 ? argv[1] : "MT";
    std::string mode = argc > 2 ? argv[2] : "baseline";
    std::string out = argc > 3 ? argv[3] : ".";
    sim::Tick interval = argc > 4
                             ? static_cast<sim::Tick>(std::atoll(argv[4]))
                             : 5000;

    cfg::SystemConfig config = (mode == "transfw" || mode == "sw-transfw")
                                   ? sys::transFwConfig()
                                   : sys::baselineConfig();
    if (mode == "sw" || mode == "sw-transfw")
        config.faultMode = cfg::FaultMode::UvmDriver;
    config.obs.spans = true;
    config.obs.sampleInterval = interval;

    wl::SyntheticSpec spec = wl::appSpec(app, sys::effectiveScale(0.0));
    wl::SyntheticWorkload workload(spec);

    sys::MultiGpuSystem system(config, workload);
    sys::SimResults r = system.run();

    obs::Observability &obs = system.obs();
    std::printf("== %s (%s): %llu cycles, %zu spans, %zu samples ==\n",
                app.c_str(), mode.c_str(),
                static_cast<unsigned long long>(r.execTime),
                obs.spans.spans().size(), obs.sampler.rows());
    if (obs.spans.dropped())
        std::printf("note: %llu spans dropped (raise obs.maxSpans)\n",
                    static_cast<unsigned long long>(obs.spans.dropped()));

    writeFile(out + "/trace.json", [&](std::ostream &os) {
        obs.spans.writeChromeTrace(os, &obs.sampler);
    });
    writeFile(out + "/metrics.json",
              [&](std::ostream &os) { obs.metrics.writeJson(os); });
    writeFile(out + "/timeseries.csv",
              [&](std::ostream &os) { obs.sampler.writeCsv(os); });
    writeFile(out + "/timeseries.json",
              [&](std::ostream &os) { obs.sampler.writeJson(os); });

    std::printf("open trace.json at https://ui.perfetto.dev\n");
    return 0;
}
