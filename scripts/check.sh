#!/usr/bin/env bash
# Tier-1 check: build and run the full test suite, then rebuild with
# AddressSanitizer + UBSan and run it again. Usage:
#
#   scripts/check.sh            # plain + sanitizer pass
#   scripts/check.sh --fast     # plain pass only
#
# Exit code is non-zero when any build or test fails.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== microbench smoke (BENCH_core.json schema) =="
SMOKE_JSON=$(mktemp /tmp/bench_core_smoke.XXXXXX.json)
./build/bench/bench_micro_structures --json "$SMOKE_JSON" --smoke
if command -v python3 >/dev/null 2>&1; then
    python3 - "$SMOKE_JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "transfw-bench-core-v1", doc.get("schema")
for section, fields in {
    "event_kernel": ["legacy_events_per_sec", "fast_events_per_sec",
                     "speedup"],
    "request_pool": ["shared_ptr_ops_per_sec", "pooled_ops_per_sec",
                     "speedup"],
    "sweep": ["serial_seconds", "parallel_seconds", "parallel_jobs",
              "identical_results"],
}.items():
    for f in fields:
        assert f in doc[section], f"{section}.{f} missing"
assert doc["sweep"]["identical_results"] is True
assert doc["peak_rss_bytes"] > 0
print("BENCH_core.json schema OK")
EOF
else
    grep -q '"schema": "transfw-bench-core-v1"' "$SMOKE_JSON"
    grep -q '"identical_results": true' "$SMOKE_JSON"
    echo "BENCH_core.json schema OK (grep fallback)"
fi
rm -f "$SMOKE_JSON"

if [[ "${1:-}" == "--fast" ]]; then
    exit 0
fi

echo "== sanitizer build (address,undefined) =="
cmake -B build-asan -S . -DTRANSFW_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"
