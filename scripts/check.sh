#!/usr/bin/env bash
# Tier-1 check: build and run the full test suite, validate the
# microbench JSON schema, gate end-to-end simulator throughput against
# the committed BENCH_core.json, then rebuild twice more: once with
# -DTRANSFW_OBS=OFF (observability compiled out entirely) and once with
# AddressSanitizer + UBSan, where the obs::Checks invariant watchdog is
# promoted to a hard abort (TRANSFW_OBS_STRICT) — a single attribution
# or span-nesting violation anywhere in the suite fails the gate — and
# finally with ThreadSanitizer, which races the per-GPU lane kernel's
# parallel-vs-serial bit-identity tests under every lane count.
# In between, the run-ledger gate replays a small config matrix through
# ./build/examples/simulate into a fresh transfw-ledger-v1 JSONL file,
# validates the schema, and diffs it against the committed
# LEDGER_golden.jsonl with compare_runs — any deterministic metric that
# moved fails the gate; wall-clock fields only warn.
# Usage:
#
#   scripts/check.sh                  # plain + no-obs + sanitizer pass
#   scripts/check.sh --fast           # plain pass only
#   scripts/check.sh --refresh-ledger # also regenerate LEDGER_golden.jsonl
#
# Environment:
#   TRANSFW_SKIP_PERF_GATE=1    # skip the events/sec regression gate
#                               # (shared/loaded machines)
#   TRANSFW_SKIP_LEDGER_GATE=1  # skip the run-ledger regression gate
#   TRANSFW_SKIP_TSAN=1         # skip the ThreadSanitizer build+test pass
#   TRANSFW_JOBS=N              # lane/worker count for the parallel bits
#
# Exit code is non-zero when any build, test, schema check or gate
# fails.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
REFRESH_LEDGER=0
for arg in "$@"; do
    case "$arg" in
        --fast) FAST=1 ;;
        --refresh-ledger) REFRESH_LEDGER=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== microbench smoke (BENCH_core.json schema v3) =="
SMOKE_JSON=$(mktemp /tmp/bench_core_smoke.XXXXXX.json)
./build/bench/bench_micro_structures --json "$SMOKE_JSON" --smoke
if command -v python3 >/dev/null 2>&1; then
    python3 - "$SMOKE_JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "transfw-bench-core-v3", doc.get("schema")
for section, fields in {
    "event_kernel": ["legacy_events_per_sec", "fast_events_per_sec",
                     "speedup"],
    "request_pool": ["shared_ptr_ops_per_sec", "pooled_ops_per_sec",
                     "speedup"],
    "page_table": ["node_map_walks_per_sec", "flat_node_walks_per_sec",
                   "speedup"],
    "mshr": ["unordered_map_cycles_per_sec", "flat_map_cycles_per_sec",
             "speedup"],
    "flat_map": ["unordered_map_ops_per_sec", "flat_map_ops_per_sec",
                 "speedup"],
    "cuckoo_probe": ["three_hash_probes_per_sec",
                     "single_pass_probes_per_sec", "speedup"],
    "sweep": ["serial_seconds", "parallel_seconds", "parallel_jobs",
              "degraded", "identical_results"],
    "parallel_kernel": ["hardware_threads", "degraded", "lanes",
                        "serial_events_per_sec", "lane_events_per_sec",
                        "speedup", "sweep", "identical_results"],
    "pod_scaling": ["app", "config", "scale", "host_shards",
                    "hardware_threads", "degraded", "points"],
    "sim_end_to_end": ["rate_scale", "rate_wall_seconds",
                       "events_executed", "events_per_sec"],
}.items():
    for f in fields:
        assert f in doc[section], f"{section}.{f} missing"
assert doc["sweep"]["identical_results"] is True
assert doc["parallel_kernel"]["identical_results"] is True
assert doc["parallel_kernel"]["lanes"] >= 1
curve = doc["parallel_kernel"]["sweep"]
assert isinstance(curve, list) and curve, "empty lanes sweep"
for point in curve:
    for f in ("lanes", "wall_seconds", "events_per_sec", "speedup",
              "identical"):
        assert f in point, f"parallel_kernel.sweep[].{f} missing"
    assert point["identical"] is True, \
        f"lane count {point['lanes']} diverged from serial"
pod = doc["pod_scaling"]["points"]
assert isinstance(pod, list) and pod, "empty pod_scaling points"
topos = set()
for point in pod:
    for f in ("topology", "gpus", "wall_seconds", "events_per_sec",
              "xlat_p99"):
        assert f in point, f"pod_scaling.points[].{f} missing"
    assert point["gpus"] >= 4 and point["events_per_sec"] > 0
    topos.add(point["topology"])
assert topos == {"a2a", "ring", "mesh", "switch"}, topos
assert doc["sim_end_to_end"]["events_executed"] > 0
assert doc["peak_rss_bytes"] > 0
print("BENCH_core.json schema OK")
EOF
else
    grep -q '"schema": "transfw-bench-core-v3"' "$SMOKE_JSON"
    grep -q '"pod_scaling"' "$SMOKE_JSON"
    grep -q '"identical_results": true' "$SMOKE_JSON"
    grep -q '"sim_end_to_end"' "$SMOKE_JSON"
    echo "BENCH_core.json schema OK (grep fallback)"
fi

echo "== perf gate (sim_end_to_end.events_per_sec) =="
if [[ "${TRANSFW_SKIP_PERF_GATE:-0}" == "1" ]]; then
    echo "skipped (TRANSFW_SKIP_PERF_GATE=1)"
elif [[ ! -f BENCH_core.json ]]; then
    echo "skipped (no committed BENCH_core.json)"
elif command -v python3 >/dev/null 2>&1; then
    # The committed full run and the smoke run measure the rate at the
    # same scale, so the comparison is like-for-like: fail when this
    # build drains events >20% slower than the committed trajectory.
    python3 - "$SMOKE_JSON" BENCH_core.json <<'EOF'
import json, sys
smoke = json.load(open(sys.argv[1]))["sim_end_to_end"]
committed = json.load(open(sys.argv[2]))["sim_end_to_end"]
assert smoke["rate_scale"] == committed["rate_scale"], \
    "rate scales differ; regenerate BENCH_core.json"
now, ref = smoke["events_per_sec"], committed["events_per_sec"]
floor = 0.8 * ref
print(f"events/sec now {now:.0f} vs committed {ref:.0f} "
      f"(floor {floor:.0f})")
if now < floor:
    sys.exit("perf gate FAILED: >20% below the committed rate "
             "(set TRANSFW_SKIP_PERF_GATE=1 on shared machines)")
# The lane kernel must keep producing results bit-identical to the
# serial kernel; that part is machine-independent and always gated.
lanes = json.load(open(sys.argv[1]))["parallel_kernel"]
if not lanes["identical_results"]:
    sys.exit("perf gate FAILED: lane kernel diverged from serial")
print(f"parallel kernel {lanes['speedup']:.2f}x on {lanes['lanes']} "
      f"lanes, identical to serial")
# Lane-scaling gate: with real cores available, running 4+ lanes must
# never be slower than the serial kernel — a losing parallel kernel
# is a regression, not a shrug. A 1-core box records degraded: true
# and skips this (it cannot measure scaling at all).
if lanes.get("degraded") or lanes["hardware_threads"] < 4:
    print(f"lane scaling gate skipped "
          f"(hardware_threads={lanes['hardware_threads']})")
else:
    for point in lanes["sweep"]:
        if point["lanes"] >= 4 and point["speedup"] < 1.0:
            sys.exit(f"perf gate FAILED: {point['lanes']} lanes ran "
                     f"{point['speedup']:.2f}x vs serial — the lane "
                     f"kernel is losing on a multi-core box")
    print("lane scaling gate OK")
print("perf gate OK")
EOF
else
    echo "skipped (python3 unavailable)"
fi
rm -f "$SMOKE_JSON"

echo "== run-ledger regression gate (LEDGER_golden.jsonl) =="
if [[ "${TRANSFW_SKIP_LEDGER_GATE:-0}" == "1" ]]; then
    echo "skipped (TRANSFW_SKIP_LEDGER_GATE=1)"
else
    LEDGER_NEW=$(mktemp /tmp/transfw_ledger.XXXXXX.jsonl)
    rm -f "$LEDGER_NEW" # simulate appends; start from an empty ledger
    # Small deterministic config matrix: both fault modes, with and
    # without Trans-FW. Must match the matrix the committed golden was
    # generated from (regenerate with --refresh-ledger).
    LEDGER_MATRIX=(
        "--app MT"
        "--app MT --transfw"
        "--app KM --fault-mode sw"
        "--app KM --fault-mode sw --transfw"
    )
    for args in "${LEDGER_MATRIX[@]}"; do
        # shellcheck disable=SC2086
        ./build/examples/simulate $args --scale 0.25 \
            --ledger "$LEDGER_NEW" >/dev/null
    done
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$LEDGER_NEW" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert len(lines) == 4, f"expected 4 records, got {len(lines)}"
for n, line in enumerate(lines, 1):
    rec = json.loads(line)
    assert rec["schema"] == "transfw-ledger-v1", f"line {n}: schema"
    for field in ("app", "scale", "configKey", "configSummary",
                  "source", "metrics", "wall"):
        assert field in rec, f"line {n}: {field} missing"
    assert rec["source"] == "simulate", f"line {n}: source"
    assert isinstance(rec["metrics"], dict) and rec["metrics"], \
        f"line {n}: empty metrics"
    assert "timestamp" in rec["wall"], f"line {n}: wall.timestamp"
    for key in ("exec.cycles", "exec.events", "exec.peakEventBacklog"):
        assert key in rec["metrics"], f"line {n}: metrics[{key}]"
print("transfw-ledger-v1 schema OK (4 records)")
EOF
    else
        grep -q '"schema":"transfw-ledger-v1"' "$LEDGER_NEW"
        [[ "$(wc -l < "$LEDGER_NEW")" == "4" ]]
        echo "transfw-ledger-v1 schema OK (grep fallback)"
    fi
    if [[ "$REFRESH_LEDGER" == "1" || ! -f LEDGER_golden.jsonl ]]; then
        cp "$LEDGER_NEW" LEDGER_golden.jsonl
        echo "LEDGER_golden.jsonl refreshed — review and commit it"
    else
        ./build/examples/compare_runs LEDGER_golden.jsonl "$LEDGER_NEW"
        echo "ledger gate OK"
    fi
    rm -f "$LEDGER_NEW"
fi

echo "== fabric invariant gate (per-hop sums == buckets) =="
# Per-hop attribution must balance: every request's hop charges sum to
# its Network + HostRoute buckets, watchdog-verified per request inside
# obs::Checks. Any imbalance anywhere in these runs shows up as
# obs.checkViolations != 0 in the ledger record. The matrix crosses
# every fabric topology with sharded and unsharded host MMUs plus the
# software-fault path.
FABRIC_LEDGER=$(mktemp /tmp/transfw_fabric.XXXXXX.jsonl)
rm -f "$FABRIC_LEDGER"
FABRIC_MATRIX=(
    "--app MT --transfw --topology ring --gpus 16 --shards 4 --cus 4"
    "--app MT --transfw --topology mesh --gpus 8 --shards 2 --cus 4"
    "--app MT --transfw --topology switch --gpus 16 --shards 2 --cus 4"
    "--app MT --transfw --topology a2a --gpus 8 --cus 4"
    "--app KM --fault-mode sw --transfw --cus 4"
)
for args in "${FABRIC_MATRIX[@]}"; do
    # shellcheck disable=SC2086
    ./build/examples/simulate $args --scale 0.05 \
        --ledger "$FABRIC_LEDGER" >/dev/null
done
if command -v python3 >/dev/null 2>&1; then
    python3 - "$FABRIC_LEDGER" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert len(lines) == 5, f"expected 5 records, got {len(lines)}"
fabric_records = 0
for n, line in enumerate(lines, 1):
    m = json.loads(line)["metrics"]
    assert m.get("obs.checkedRequests", 0) > 0, \
        f"record {n}: watchdog checked nothing"
    assert m.get("obs.checkViolations", 1) == 0, \
        f"record {n}: {m['obs.checkViolations']} per-hop imbalances"
    if "fabric.links" in m:
        fabric_records += 1
        assert m["fabric.links"] > 0, f"record {n}: no fabric links"
        assert m.get("fabric.maxRouteHops", 0) >= 1, \
            f"record {n}: no routed traffic"
assert fabric_records >= 3, \
    f"only {fabric_records} records carry fabric.* keys"
print(f"fabric invariant gate OK (5 records, "
      f"{fabric_records} with fabric telemetry)")
EOF
else
    [[ "$(wc -l < "$FABRIC_LEDGER")" == "5" ]]
    if grep -q '"obs.checkViolations": *[1-9]' "$FABRIC_LEDGER"; then
        echo "fabric invariant gate FAILED (violations in ledger)" >&2
        exit 1
    fi
    echo "fabric invariant gate OK (grep fallback)"
fi
rm -f "$FABRIC_LEDGER"

if [[ "$FAST" == "1" ]]; then
    exit 0
fi

echo "== no-obs build (-DTRANSFW_OBS=OFF) =="
# Proves every span/attribution call site compiles out and the
# simulator is bit-identical without the instrumentation.
cmake -B build-noobs -S . -DTRANSFW_OBS=OFF >/dev/null
cmake --build build-noobs -j "$JOBS"
ctest --test-dir build-noobs --output-on-failure -j "$JOBS"

echo "== sanitizer build (address,undefined + strict obs watchdog) =="
cmake -B build-asan -S . -DTRANSFW_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"
# Pod smoke under asan: a 16-GPU ring with the host MMU sharded 4
# ways exercises the topology router and the shard crossbar with the
# strict obs watchdog armed.
./build-asan/examples/simulate --app MT --transfw --topology ring \
    --gpus 16 --shards 4 --cus 4 --scale 0.05 >/dev/null
echo "asan pod smoke OK (16-GPU ring, 4 shards)"

echo "== thread sanitizer build (lane kernel data races) =="
# TSan is the gate for the per-GPU lane kernel: the parallel-vs-serial
# bit-identity tests run every lane count under it, so any unsynchron-
# ized cross-lane access surfaces as a hard failure here.
if [[ "${TRANSFW_SKIP_TSAN:-0}" == "1" ]]; then
    echo "skipped (TRANSFW_SKIP_TSAN=1)"
else
    cmake -B build-tsan -S . -DTRANSFW_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$JOBS"
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
    # Long-run lane soak: many more randomized (link latency, lane
    # count) rounds than the plain suite runs, to give TSan real
    # scheduling diversity over the worker pool, mailbox batches, and
    # shared-pool handoffs.
    echo "== thread sanitizer lane soak (TRANSFW_STRESS_ROUNDS=24) =="
    TRANSFW_STRESS_ROUNDS=24 ctest --test-dir build-tsan \
        --output-on-failure -R "ParallelKernel.RandomizedLatencyLaneStress"
    # Pod smoke under tsan: the same 16-GPU ring x 4-shard config with
    # the lane kernel on, racing the shard crossbar against the per-GPU
    # lane workers.
    TRANSFW_JOBS="${TRANSFW_JOBS:-4}" ./build-tsan/examples/simulate \
        --app MT --transfw --topology ring --gpus 16 --shards 4 \
        --cus 4 --lanes 4 --scale 0.05 >/dev/null
    echo "tsan pod smoke OK (16-GPU ring, 4 shards, 4 lanes)"
fi
