#!/usr/bin/env bash
# Tier-1 check: build and run the full test suite, then rebuild with
# AddressSanitizer + UBSan and run it again. Usage:
#
#   scripts/check.sh            # plain + sanitizer pass
#   scripts/check.sh --fast     # plain pass only
#
# Exit code is non-zero when any build or test fails.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${1:-}" == "--fast" ]]; then
    exit 0
fi

echo "== sanitizer build (address,undefined) =="
cmake -B build-asan -S . -DTRANSFW_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"
