#ifndef TRANSFW_CACHE_MSHR_HPP
#define TRANSFW_CACHE_MSHR_HPP

#include <cstdint>

#include "sim/flat_map.hpp"

namespace transfw::cache {

/**
 * Miss Status Holding Register file. Coalesces outstanding requests to
 * the same key (VPN): the first requester allocates an entry and
 * proceeds down the miss path; later requesters are parked on the entry
 * and woken together when the response arrives. This is the structure
 * that lets many pending requests collapse onto one page fault
 * (the Conv2d behaviour discussed in Section III-B).
 *
 * Looked up on every L1/L2 TLB miss, so entries live in an
 * open-addressing sim::FlatMap and the parked waiters in a
 * small-inline-buffer vector: the common case (a handful of in-flight
 * keys, one or two waiters each) allocates nothing and probes a single
 * cache line.
 *
 * @tparam Waiter per-requester continuation stored with the entry.
 */
template <typename Waiter>
class Mshr
{
  public:
    /** Inline waiter capacity per entry before spilling to the heap. */
    static constexpr std::size_t kInlineWaiters = 4;

    using WaiterList = sim::InlineVec<Waiter, kInlineWaiters>;

    /**
     * Record a miss for @p key. @return true when this is the primary
     * miss (caller must launch the fill); false when it merged into an
     * existing entry.
     */
    bool
    allocate(std::uint64_t key, Waiter waiter)
    {
        auto [it, inserted] = entries_.try_emplace(key);
        it->second.push_back(std::move(waiter));
        if (inserted)
            ++allocations_;
        else
            ++merges_;
        return inserted;
    }

    /** True when @p key already has an outstanding entry. */
    bool outstanding(std::uint64_t key) const
    {
        return entries_.find(key) != entries_.end();
    }

    /**
     * Complete the miss for @p key, returning all parked waiters
     * (including the primary requester's).
     */
    WaiterList
    release(std::uint64_t key)
    {
        auto it = entries_.find(key);
        if (it == entries_.end())
            return {};
        WaiterList waiters = std::move(it->second);
        entries_.erase(it);
        return waiters;
    }

    std::size_t inflight() const { return entries_.size(); }
    std::uint64_t allocations() const { return allocations_; }
    std::uint64_t merges() const { return merges_; }

  private:
    sim::FlatMap<std::uint64_t, WaiterList> entries_;
    std::uint64_t allocations_ = 0;
    std::uint64_t merges_ = 0;
};

} // namespace transfw::cache

#endif // TRANSFW_CACHE_MSHR_HPP
