#ifndef TRANSFW_CACHE_MSHR_HPP
#define TRANSFW_CACHE_MSHR_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace transfw::cache {

/**
 * Miss Status Holding Register file. Coalesces outstanding requests to
 * the same key (VPN): the first requester allocates an entry and
 * proceeds down the miss path; later requesters are parked on the entry
 * and woken together when the response arrives. This is the structure
 * that lets many pending requests collapse onto one page fault
 * (the Conv2d behaviour discussed in Section III-B).
 *
 * @tparam Waiter per-requester continuation stored with the entry.
 */
template <typename Waiter>
class Mshr
{
  public:
    /**
     * Record a miss for @p key. @return true when this is the primary
     * miss (caller must launch the fill); false when it merged into an
     * existing entry.
     */
    bool
    allocate(std::uint64_t key, Waiter waiter)
    {
        auto [it, inserted] = entries_.try_emplace(key);
        it->second.push_back(std::move(waiter));
        if (inserted)
            ++allocations_;
        else
            ++merges_;
        return inserted;
    }

    /** True when @p key already has an outstanding entry. */
    bool outstanding(std::uint64_t key) const
    {
        return entries_.count(key) > 0;
    }

    /**
     * Complete the miss for @p key, returning all parked waiters
     * (including the primary requester's).
     */
    std::vector<Waiter>
    release(std::uint64_t key)
    {
        auto it = entries_.find(key);
        if (it == entries_.end())
            return {};
        std::vector<Waiter> waiters = std::move(it->second);
        entries_.erase(it);
        return waiters;
    }

    std::size_t inflight() const { return entries_.size(); }
    std::uint64_t allocations() const { return allocations_; }
    std::uint64_t merges() const { return merges_; }

  private:
    std::unordered_map<std::uint64_t, std::vector<Waiter>> entries_;
    std::uint64_t allocations_ = 0;
    std::uint64_t merges_ = 0;
};

} // namespace transfw::cache

#endif // TRANSFW_CACHE_MSHR_HPP
