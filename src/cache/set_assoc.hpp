#ifndef TRANSFW_CACHE_SET_ASSOC_HPP
#define TRANSFW_CACHE_SET_ASSOC_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/logging.hpp"

namespace transfw::cache {

/**
 * Generic set-associative array with true-LRU replacement, used by the
 * TLBs and the PW-caches. Keys are 64-bit tags; the set index is a
 * mixed hash of the key so non-power-of-two strides in VPN space do not
 * alias pathologically.
 *
 * @tparam Value payload stored with each tag.
 */
template <typename Value>
class SetAssoc
{
  public:
    /**
     * @param entries total capacity
     * @param ways    associativity (entries % ways must be 0; when
     *                ways == entries the structure is fully associative)
     */
    SetAssoc(std::size_t entries, std::size_t ways)
        : ways_(ways), sets_(entries / ways),
          setMask_((sets_ & (sets_ - 1)) == 0 ? sets_ - 1 : 0),
          lines_(entries)
    {
        if (entries == 0 || ways == 0 || entries % ways != 0)
            sim::fatal("SetAssoc: entries must be a nonzero multiple of "
                       "ways");
    }

    std::size_t entries() const { return lines_.size(); }
    std::size_t ways() const { return ways_; }
    std::size_t sets() const { return sets_; }

    /** Look up @p key; updates LRU on hit. @return payload or nullptr. */
    Value *
    lookup(std::uint64_t key)
    {
        std::size_t base = setBase(key);
        for (std::size_t w = 0; w < ways_; ++w) {
            Line &line = lines_[base + w];
            if (line.valid && line.key == key) {
                line.lru = ++clock_;
                return &line.value;
            }
        }
        return nullptr;
    }

    /** Look up without touching LRU state (for stats-only probes). */
    const Value *
    probe(std::uint64_t key) const
    {
        std::size_t base = setBase(key);
        for (std::size_t w = 0; w < ways_; ++w) {
            const Line &line = lines_[base + w];
            if (line.valid && line.key == key)
                return &line.value;
        }
        return nullptr;
    }

    /**
     * Insert @p key → @p value, replacing the LRU way of its set.
     * @return the evicted (key, value) pair when a valid line was
     * displaced.
     */
    std::optional<std::pair<std::uint64_t, Value>>
    insert(std::uint64_t key, Value value)
    {
        std::size_t base = setBase(key);
        std::size_t victim = base;
        for (std::size_t w = 0; w < ways_; ++w) {
            Line &line = lines_[base + w];
            if (line.valid && line.key == key) { // refresh in place
                line.value = std::move(value);
                line.lru = ++clock_;
                return std::nullopt;
            }
            if (!line.valid) {
                victim = base + w;
            } else if (lines_[victim].valid &&
                       line.lru < lines_[victim].lru) {
                victim = base + w;
            }
        }
        Line &line = lines_[victim];
        std::optional<std::pair<std::uint64_t, Value>> evicted;
        if (line.valid)
            evicted = {line.key, std::move(line.value)};
        else
            ++valid_;
        line.valid = true;
        line.key = key;
        line.value = std::move(value);
        line.lru = ++clock_;
        return evicted;
    }

    /** Invalidate @p key. @return true if it was present. */
    bool
    invalidate(std::uint64_t key)
    {
        std::size_t base = setBase(key);
        for (std::size_t w = 0; w < ways_; ++w) {
            Line &line = lines_[base + w];
            if (line.valid && line.key == key) {
                line.valid = false;
                --valid_;
                return true;
            }
        }
        return false;
    }

    /** Invalidate every line (e.g., full TLB shootdown). */
    void
    invalidateAll()
    {
        for (Line &line : lines_)
            line.valid = false;
        valid_ = 0;
    }

    /** Call @p fn(key, value) for every valid line. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Line &line : lines_)
            if (line.valid)
                fn(line.key, line.value);
    }

    /** Valid-line count, O(1): sampled every observability interval
     *  for every TLB and PW-cache, so it must not scan the array. */
    std::size_t occupancy() const { return valid_; }

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t key = 0;
        std::uint64_t lru = 0;
        Value value{};
    };

    static std::uint64_t
    mix(std::uint64_t x)
    {
        x ^= x >> 33;
        x *= 0xFF51AFD7ED558CCDULL;
        x ^= x >> 33;
        return x;
    }

    std::size_t
    setBase(std::uint64_t key) const
    {
        if (sets_ == 1)
            return 0;
        // Typical shapes have power-of-two set counts: mask instead of
        // the integer division (same value), probed on every access.
        std::size_t set = setMask_ ? (mix(key) & setMask_)
                                   : mix(key) % sets_;
        return set * ways_;
    }

    std::size_t ways_;
    std::size_t sets_;
    std::size_t setMask_; ///< sets_-1 when sets_ is a power of two
    std::uint64_t clock_ = 0;
    std::size_t valid_ = 0; ///< valid lines (kept in sync by
                            ///  insert/invalidate/invalidateAll)
    std::vector<Line> lines_;
};

} // namespace transfw::cache

#endif // TRANSFW_CACHE_SET_ASSOC_HPP
