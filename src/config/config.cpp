#include "config/config.hpp"

#include "sim/logging.hpp"

namespace transfw::cfg {

std::string
SystemConfig::summary() const
{
    return sim::strfmt(
        "%d GPUs x %d CUs, %d-level PT, %u KB pages, "
        "PW-cache %zu (%s), walkers %d/%d, %s faults%s",
        numGpus, cusPerGpu, pageTableLevels,
        static_cast<unsigned>((1u << pageShift) >> 10),
        pwcEntries,
        pwcKind == pwc::PwcKind::Utc   ? "UTC"
        : pwcKind == pwc::PwcKind::Stc ? "STC"
                                       : "infinite",
        gmmuWalkers, hostWalkers,
        faultMode == FaultMode::HostMmu ? "host-MMU" : "UVM-driver",
        transFw.enabled ? ", Trans-FW" : "");
}

void
SystemConfig::validate() const
{
    if (numGpus < 1 || numGpus > 64)
        sim::fatal("numGpus must be in [1, 64]");
    if (cusPerGpu < 1)
        sim::fatal("cusPerGpu must be positive");
    if (pageTableLevels != 4 && pageTableLevels != 5)
        sim::fatal("pageTableLevels must be 4 or 5");
    if (pageShift != mem::kSmallPageShift &&
        pageShift != mem::kLargePageShift)
        sim::fatal("pageShift must select 4 KB or 2 MB pages");
    if (gmmuWalkers < 1 || hostWalkers < 1)
        sim::fatal("walker counts must be positive");
    if (transFw.enabled && transFw.forwardThreshold < 0)
        sim::fatal("forwardThreshold must be non-negative");
    if (numGpus > 32 && faultMode == FaultMode::UvmDriver)
        sim::warn("UVM driver beyond 32 GPUs is far outside the "
                  "calibrated range");
}

} // namespace transfw::cfg
