#include "config/config.hpp"

#include "sim/logging.hpp"

namespace transfw::cfg {

std::string
SystemConfig::summary() const
{
    std::string s = sim::strfmt(
        "%d GPUs x %d CUs, %d-level PT, %u KB pages, "
        "PW-cache %zu (%s), walkers %d/%d, %s faults%s",
        numGpus, cusPerGpu, pageTableLevels,
        static_cast<unsigned>((1u << pageShift) >> 10),
        pwcEntries,
        pwcKind == pwc::PwcKind::Utc   ? "UTC"
        : pwcKind == pwc::PwcKind::Stc ? "STC"
                                       : "infinite",
        gmmuWalkers, hostWalkers,
        faultMode == FaultMode::HostMmu ? "host-MMU" : "UVM-driver",
        transFw.enabled ? ", Trans-FW" : "");
    if (peerTopology != ic::Topology::AllToAll)
        s += sim::strfmt(", %s fabric", ic::topologyName(peerTopology));
    if (hostShards > 1)
        s += sim::strfmt(", %d host shards%s", hostShards,
                         transFw.ftReplicated ? " (replicated FT)" : "");
    return s;
}

std::string
SystemConfig::key() const
{
    std::string k;
    k.reserve(512);
    auto u = [&k](std::uint64_t v) {
        k += sim::strfmt("%llu;", static_cast<unsigned long long>(v));
    };
    auto d = [&k](double v) { k += sim::strfmt("%.17g;", v); };

    u(static_cast<std::uint64_t>(numGpus));
    u(static_cast<std::uint64_t>(cusPerGpu));
    u(static_cast<std::uint64_t>(wavefrontSlotsPerCu));
    u(gpuMemBytes);
    u(static_cast<std::uint64_t>(pageTableLevels));
    u(pageShift);
    u(memLatency);
    u(static_cast<std::uint64_t>(memModel));
    for (const mem::DataCacheConfig *c :
         {&memHierarchy.l1Vector, &memHierarchy.l2}) {
        u(c->sizeBytes);
        u(c->ways);
        u(c->lineBytes);
        u(c->hitLatency);
    }
    u(static_cast<std::uint64_t>(memHierarchy.dram.banks));
    u(memHierarchy.dram.rowHitLatency);
    u(memHierarchy.dram.rowMissLatency);
    u(memHierarchy.dram.dataBeat);
    u(memHierarchy.dram.rowShift);
    for (const tlb::TlbConfig *t : {&l1Tlb, &l2Tlb, &hostTlb}) {
        u(t->entries);
        u(t->ways);
        u(t->lookupLatency);
    }
    u(static_cast<std::uint64_t>(gmmuWalkers));
    u(static_cast<std::uint64_t>(hostWalkers));
    u(gmmuPwQueue);
    u(hostPwQueue);
    u(pwcEntries);
    u(static_cast<std::uint64_t>(pwcKind));
    for (const ic::LinkConfig *l : {&hostLink, &peerLink}) {
        u(l->latency);
        d(l->bytesPerCycle);
    }
    u(static_cast<std::uint64_t>(peerTopology));
    u(static_cast<std::uint64_t>(meshCols));
    u(static_cast<std::uint64_t>(switchRadix));
    u(static_cast<std::uint64_t>(hostShards));
    u(prewarmPlacement);
    u(static_cast<std::uint64_t>(faultMode));
    u(static_cast<std::uint64_t>(migrationPolicy));
    u(remoteMapMigrateThreshold);
    u(faultFixedCost);
    u(shootdownCost);
    u(replayCost);
    u(driverBatchSize);
    u(driverBatchWindow);
    u(driverBatchFixedCost);
    u(driverPerFaultCost);
    u(static_cast<std::uint64_t>(driverWalkThreads));
    u(transFw.enabled);
    u(transFw.enableShortCircuit);
    u(transFw.enableForwarding);
    d(transFw.forwardThreshold);
    u(transFw.prtBuckets);
    u(transFw.prtSlotsPerBucket);
    u(transFw.prtFingerprintBits);
    u(transFw.ftBuckets);
    u(transFw.ftSlotsPerBucket);
    u(transFw.ftFingerprintBits);
    u(transFw.vpnMaskBits);
    u(transFw.ftReplicated);
    u(asap.enabled);
    d(asap.accuracy);
    u(leastTlb.enabled);
    u(leastTlb.remoteProbeLatency);
    u(oracle.infinitePwc);
    u(oracle.infiniteWalkers);
    u(oracle.zeroMigrationCost);
    u(oracle.noLocalFaults);
    u(obs.spans);
    u(obs.sampleInterval);
    u(obs.maxSpans);
    u(obs.attribution);
    u(obs.selfProfile);
    u(obs.profileStride);
    u(seed);
    // sim.lanes is intentionally absent: the lane count is a host-side
    // execution strategy, and every lane count yields bit-identical
    // simulation results (test_parallel_kernel pins this), so it must
    // not fragment the sweep memo.
    return k;
}

void
SystemConfig::validate() const
{
    if (numGpus < 1 || numGpus > 64)
        sim::fatal("numGpus must be in [1, 64]");
    if (cusPerGpu < 1)
        sim::fatal("cusPerGpu must be positive");
    if (pageTableLevels != 4 && pageTableLevels != 5)
        sim::fatal("pageTableLevels must be 4 or 5");
    if (pageShift != mem::kSmallPageShift &&
        pageShift != mem::kLargePageShift)
        sim::fatal("pageShift must select 4 KB or 2 MB pages");
    if (gmmuWalkers < 1 || hostWalkers < 1)
        sim::fatal("walker counts must be positive");
    if (transFw.enabled && transFw.forwardThreshold < 0)
        sim::fatal("forwardThreshold must be non-negative");
    if (sim.lanes < 0)
        sim::fatal("sim.lanes must be non-negative (0 = serial)");
    if (hostShards < 1 || hostShards > 64)
        sim::fatal("hostShards must be in [1, 64]");
    if (hostShards > 1 && faultMode == FaultMode::UvmDriver)
        sim::fatal("hostShards > 1 models sharded IOMMU hardware; the "
                   "software UVM driver path is unsharded");
    if (meshCols < 0)
        sim::fatal("meshCols must be non-negative (0 = auto)");
    if (peerTopology == ic::Topology::Mesh2D && meshCols > 0 &&
        meshCols > numGpus)
        sim::fatal("meshCols exceeds numGpus");
    if (switchRadix < 1)
        sim::fatal("switchRadix must be positive");
    if (transFw.ftReplicated && hostShards == 1)
        sim::warn("ftReplicated has no effect with a single host shard");
    if (numGpus > 32 && faultMode == FaultMode::UvmDriver)
        sim::warn("UVM driver beyond 32 GPUs is far outside the "
                  "calibrated range");
}

} // namespace transfw::cfg
