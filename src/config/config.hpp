#ifndef TRANSFW_CONFIG_CONFIG_HPP
#define TRANSFW_CONFIG_CONFIG_HPP

#include <cstdint>
#include <string>

#include "interconnect/link.hpp"
#include "interconnect/network.hpp"
#include "mem/address.hpp"
#include "mem/mem_hierarchy.hpp"
#include "pwc/pwc.hpp"
#include "sim/ticks.hpp"
#include "tlb/tlb.hpp"

namespace transfw::cfg {

/** Data-side memory model. */
enum class MemModel
{
    Simple,    ///< flat Table II latency per data access (default; the
               ///  translation-path calibration assumes this)
    Hierarchy, ///< per-CU L1 vector caches + shared L2 + banked DRAM
};

/** How far faults are resolved (Section II-B). */
enum class FaultMode
{
    HostMmu,   ///< hardware: host MMU/IOMMU walks the central table
               ///  (the paper's baseline)
    UvmDriver, ///< software: UVM driver processes faults in batches
};

/** Page placement/migration policy (Sections V-D, V-E). */
enum class MigrationPolicy
{
    OnTouch,       ///< default: migrate the page to the faulting GPU
    ReadReplicate, ///< read replication with ESI coherence
    RemoteMap,     ///< map remote memory; migrate past an access counter
};

/** Trans-FW feature knobs (Section IV). */
struct TransFwConfig
{
    bool enabled = false;

    /**
     * Ablation switches: Trans-FW is two mechanisms — the GMMU short
     * circuit (PRT) and the host MMU remote forwarding (FT). Disabling
     * one isolates the other's contribution (bench_ablation).
     */
    bool enableShortCircuit = true;
    bool enableForwarding = true;

    /**
     * Host MMU forwarding threshold as a fraction of PT-walk threads:
     * forward to the owner GPU when queued requests exceed
     * threshold × walkers (default 0.5 per Section IV-C).
     */
    double forwardThreshold = 0.5;

    // Pending Request Table (per GMMU): 500 fingerprints = 125 buckets
    // of 4 slots, 13-bit fingerprints (ε ≈ 0.1%), 8 pages/fingerprint.
    std::size_t prtBuckets = 125;
    unsigned prtSlotsPerBucket = 4;
    unsigned prtFingerprintBits = 13;

    // Forwarding Table (host MMU): 2000 fingerprints = 1000 buckets of
    // 2 slots, 11-bit fingerprints (ε ≈ 0.2%), 8 pages/fingerprint.
    std::size_t ftBuckets = 1000;
    unsigned ftSlotsPerBucket = 2;
    unsigned ftFingerprintBits = 11;

    /**
     * Low VPN bits masked per fingerprint (the paper masks 3 bits = 8
     * contiguous pages; its workloads are VA-sparse at that grain, so
     * a fingerprint effectively covers one live page). The synthetic
     * workloads spread consecutive application pages vaSpread = 512
     * VPNs apart to reproduce large-footprint PW-cache pressure, so
     * masking log2(512) = 9 bits again covers exactly one live page
     * per fingerprint — the same effective coverage as the paper.
     */
    unsigned vpnMaskBits = 9;

    /**
     * FT placement across host-MMU shards (hostShards > 1). Default
     * (false): partitioned — each shard owns the FT slice for its VPN
     * range (ftBuckets split evenly), no cross-shard coherence needed,
     * but a fault can only consult the home shard's slice. true:
     * every shard keeps a full FT replica and faults round-robin
     * across shards for load balance; keeping replicas coherent costs
     * an explicit update/invalidation broadcast per page-residency
     * change (counted in ft.replicaUpdates / ft.replicaInvalidations).
     */
    bool ftReplicated = false;
};

/** ASAP-style PW-cache prefetching (Section V-H comparison). */
struct AsapConfig
{
    bool enabled = false;
    /**
     * Probability that the flattened-offset prediction of the lowest
     * two levels is correct, overlapping their accesses with the upper
     * walk instead of serializing.
     */
    double accuracy = 0.85;
};

/** Least-TLB-style multi-GPU TLB optimization (Section V-I). */
struct LeastTlbConfig
{
    bool enabled = false;
    sim::Tick remoteProbeLatency = 40; ///< probing a peer GPU's L2 TLB
};

/**
 * Observability knobs (src/obs/): request-span recording for Perfetto
 * export and the interval time-series sampler. Both default off —
 * disabled they cost one predictable branch per instrumentation site
 * (and nothing at all when compiled with TRANSFW_OBS=0).
 */
struct ObsConfig
{
    bool spans = false;            ///< record per-request lifecycle spans
    sim::Tick sampleInterval = 0;  ///< time-series period (0 = off)
    std::size_t maxSpans = std::size_t{1} << 22; ///< span buffer cap
    /**
     * Per-request latency attribution + invariant watchdog (cheap: a
     * few flat-map updates per L2 miss, never a scheduled event). On
     * by default so every run carries its penalty decomposition and
     * the config-matrix invariant gate actually exercises all paths.
     */
    bool attribution = true;
    /**
     * Host-side self-profiler: attribute event-dispatch wall clock to
     * component buckets by sampling one dispatch in profileStride. On
     * by default — sampled, it costs well under the 5% events/sec
     * budget and every ledger record carries a host profile. No effect
     * (and zero cost) when compiled with TRANSFW_OBS=0.
     */
    bool selfProfile = true;
    std::uint32_t profileStride = 16; ///< sample 1 dispatch in N
};

/**
 * Event-kernel execution knobs. Purely a host-side execution strategy:
 * every lane count produces bit-identical simulation results (the
 * parallel kernel is deterministic by construction — see DESIGN.md's
 * lane/lookahead section), so these fields deliberately do NOT enter
 * SystemConfig::key().
 */
struct SimConfig
{
    /**
     * Worker threads for the per-GPU event lanes: 0 runs every lane on
     * the calling thread (the serial fallback), N > 0 runs the GPU
     * lanes on min(N, numGpus) workers. The host-MMU lane always
     * executes on the calling thread. Lanes advance under adaptive
     * per-lane lookahead windows derived from each lane's uplink
     * latency; lanes with no work before the window bound skip the
     * window entirely, so over-provisioning lanes on quiet
     * configurations costs only the idle workers.
     */
    int lanes = 0;
};

/** Oracle switches for the Section III-B room-for-improvement study. */
struct OracleConfig
{
    bool infinitePwc = false;      ///< unbounded GMMU + host PW-caches
    bool infiniteWalkers = false;  ///< no PW-queue waiting anywhere
    bool zeroMigrationCost = false;///< free page data transfer
    bool noLocalFaults = false;    ///< every page pre-mapped everywhere
};

/**
 * Full system configuration. Defaults reproduce Table II: 4 GPUs with
 * 64 CUs each, two-level GPU TLBs, a 2048-entry host MMU TLB, 8 GMMU /
 * 16 host PT-walk threads at 100 cycles per level, 128-entry PW-caches,
 * 64-entry PW-queues, and a 150-cycle PCIe-class interconnect, over a
 * five-level page table with 4 KB pages.
 */
struct SystemConfig
{
    int numGpus = 4;
    int cusPerGpu = 64;
    int wavefrontSlotsPerCu = 6; ///< concurrent wavefronts per CU (the
                                 ///  latency-hiding context-switch pool)

    // --- memory & paging -------------------------------------------------
    std::uint64_t gpuMemBytes = 4ULL << 30; // 4 GB per GPU
    int pageTableLevels = 5;
    unsigned pageShift = mem::kSmallPageShift;
    sim::Tick memLatency = 100; ///< device memory access (one PT level)
    MemModel memModel = MemModel::Simple;
    mem::MemHierarchyConfig memHierarchy; ///< used under Hierarchy

    // --- TLBs -------------------------------------------------------------
    tlb::TlbConfig l1Tlb{32, 32, 1};
    tlb::TlbConfig l2Tlb{512, 16, 10};
    tlb::TlbConfig hostTlb{2048, 64, 5};

    // --- PT-walk machinery ------------------------------------------------
    int gmmuWalkers = 8;
    int hostWalkers = 16;
    std::size_t gmmuPwQueue = 64;
    std::size_t hostPwQueue = 64;
    std::size_t pwcEntries = 128;
    pwc::PwcKind pwcKind = pwc::PwcKind::Utc;

    // --- interconnect ------------------------------------------------------
    ic::LinkConfig hostLink{150, 256.0};  ///< PCIe-class CPU-GPU star
    ic::LinkConfig peerLink{150, 256.0};  ///< NVLink-class GPU-GPU links
    ic::Topology peerTopology = ic::Topology::AllToAll;
    int meshCols = 0;    ///< Mesh2D grid width (0 = near-square auto)
    int switchRadix = 8; ///< GPUs per leaf switch (Switch topology)

    /**
     * Host MMU/IOMMU shards: the paper's single IOMMU serializes every
     * far fault behind one walk queue; pods shard it. Each shard is a
     * full host-MMU instance (own TLB, PW-cache, walk queue, walker
     * pool) owning a slice of the VPN space by hash — with the FT
     * partitioned the same way, or replicated per shard (see
     * transFw.ftReplicated). 1 = the paper's single-IOMMU baseline,
     * event-for-event identical to the pre-shard implementation.
     */
    int hostShards = 1;

    // --- fault handling / migration ---------------------------------------
    /**
     * Pre-place pages on their expected first-touch device so the
     * measurement window captures steady-state sharing migration
     * rather than the one-time cold-touch storm (the paper's kernels
     * run long enough to amortize cold faults). Disable to model cold
     * UVM placement (everything starts on the CPU).
     */
    bool prewarmPlacement = true;
    FaultMode faultMode = FaultMode::HostMmu;
    MigrationPolicy migrationPolicy = MigrationPolicy::OnTouch;
    std::uint32_t remoteMapMigrateThreshold = 8; ///< access-counter limit
    sim::Tick faultFixedCost = 100;  ///< hardware fault bookkeeping
    sim::Tick shootdownCost = 150;   ///< invalidating stale TLB entries
    sim::Tick replayCost = 20;       ///< re-issuing the faulted access

    // --- software (UVM driver) fault handling -----------------------------
    /**
     * Software-path costs. The synthetic workloads compress compute
     * time ~50x versus the paper's real kernels (same faults, far
     * fewer instructions between them); the driver's software
     * overheads are scaled down accordingly so the software-vs-
     * hardware *ratio* stays in the paper's regime (see DESIGN.md and
     * EXPERIMENTS.md). The batch size is the real driver's 256.
     */
    std::size_t driverBatchSize = 256;  ///< faults per batch [53]
    sim::Tick driverBatchWindow = 60;   ///< max wait to fill a batch
    sim::Tick driverBatchFixedCost = 60; ///< per-batch software overhead
    sim::Tick driverPerFaultCost = 80;  ///< per-fault software handling
    int driverWalkThreads = 16;

    // --- features ----------------------------------------------------------
    TransFwConfig transFw;
    AsapConfig asap;
    LeastTlbConfig leastTlb;
    OracleConfig oracle;
    ObsConfig obs;
    SimConfig sim;

    std::uint64_t seed = 1;

    mem::PagingGeometry
    geometry() const
    {
        mem::PagingGeometry geo;
        geo.levels = pageTableLevels;
        geo.pageShift = pageShift;
        return geo;
    }

    /** Host MMU forwarding trigger in absolute queued requests. */
    std::size_t
    forwardQueueTrigger() const
    {
        return static_cast<std::size_t>(transFw.forwardThreshold *
                                        hostWalkers);
    }

    /** One-line summary for bench headers. */
    std::string summary() const;

    /**
     * Canonical serialization of EVERY field, used as the memoisation
     * key for sweep runs: two configs with equal key() produce
     * bit-identical simulations. When adding a config field, add it
     * here too (test_sweep's KeyCoversConfigFields guards the obvious
     * ones).
     */
    std::string key() const;

    /** Sanity-check invariants; fatal on nonsense combinations. */
    void validate() const;
};

} // namespace transfw::cfg

#endif // TRANSFW_CONFIG_CONFIG_HPP
