#include "filter/cuckoo_filter.hpp"

#include "filter/metrohash.hpp"
#include "sim/logging.hpp"

namespace transfw::filter {

CuckooFilter::CuckooFilter(const CuckooParams &params)
    : params_(params),
      table_(params.numBuckets * params.slotsPerBucket, 0),
      rng_(params.seed)
{
    if (params_.numBuckets == 0 || params_.slotsPerBucket == 0)
        sim::fatal("CuckooFilter: zero-sized table");
    if (params_.fingerprintBits == 0 || params_.fingerprintBits > 16)
        sim::fatal("CuckooFilter: fingerprint must be 1..16 bits");
}

CuckooFilter::Fingerprint
CuckooFilter::fingerprintOf(std::uint64_t key) const
{
    const std::uint64_t mask = (1ULL << params_.fingerprintBits) - 1;
    std::uint64_t h = metroHash64(key, params_.seed ^ 0xF1F1F1F1ULL);
    // Fingerprint 0 marks an empty slot; fold into [1, 2^bits - 1].
    Fingerprint fp = static_cast<Fingerprint>(h & mask);
    if (fp == 0)
        fp = static_cast<Fingerprint>((h >> params_.fingerprintBits) & mask) | 1;
    return fp;
}

std::size_t
CuckooFilter::primaryBucket(std::uint64_t key) const
{
    return metroHash64(key, params_.seed) % params_.numBuckets;
}

std::size_t
CuckooFilter::altBucket(std::size_t bucket, Fingerprint fp) const
{
    std::size_t h = metroHash64(fp, params_.seed ^ 0xA5A5A5A5ULL) %
                    params_.numBuckets;
    return (h + params_.numBuckets - bucket % params_.numBuckets) %
           params_.numBuckets;
}

bool
CuckooFilter::tryPlace(std::size_t bucket, Fingerprint fp)
{
    for (unsigned s = 0; s < params_.slotsPerBucket; ++s) {
        if (slot(bucket, s) == 0) {
            slot(bucket, s) = fp;
            ++stored_;
            return true;
        }
    }
    return false;
}

bool
CuckooFilter::bucketContains(std::size_t bucket, Fingerprint fp) const
{
    for (unsigned s = 0; s < params_.slotsPerBucket; ++s)
        if (slot(bucket, s) == fp)
            return true;
    return false;
}

bool
CuckooFilter::bucketErase(std::size_t bucket, Fingerprint fp)
{
    for (unsigned s = 0; s < params_.slotsPerBucket; ++s) {
        if (slot(bucket, s) == fp) {
            slot(bucket, s) = 0;
            --stored_;
            return true;
        }
    }
    return false;
}

bool
CuckooFilter::insert(std::uint64_t key)
{
    Fingerprint fp = fingerprintOf(key);
    std::size_t b1 = primaryBucket(key);
    std::size_t b2 = altBucket(b1, fp);

    if (tryPlace(b1, fp) || tryPlace(b2, fp))
        return true;

    // Both buckets full: relocate existing fingerprints.
    std::size_t bucket = rng_.chance(0.5) ? b1 : b2;
    for (unsigned kick = 0; kick < params_.maxKicks; ++kick) {
        unsigned victim_slot =
            static_cast<unsigned>(rng_.range(params_.slotsPerBucket));
        std::swap(fp, slot(bucket, victim_slot));
        bucket = altBucket(bucket, fp);
        if (tryPlace(bucket, fp))
            return true;
    }
    // Filter is full: drop the final homeless fingerprint. Its key now
    // has a false negative, which PRT/FT handle gracefully.
    ++overflowEvictions_;
    return false;
}

bool
CuckooFilter::contains(std::uint64_t key) const
{
    Fingerprint fp = fingerprintOf(key);
    std::size_t b1 = primaryBucket(key);
    if (bucketContains(b1, fp))
        return true;
    return bucketContains(altBucket(b1, fp), fp);
}

bool
CuckooFilter::erase(std::uint64_t key)
{
    Fingerprint fp = fingerprintOf(key);
    std::size_t b1 = primaryBucket(key);
    if (bucketErase(b1, fp))
        return true;
    return bucketErase(altBucket(b1, fp), fp);
}

} // namespace transfw::filter
