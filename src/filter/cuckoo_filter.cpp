#include "filter/cuckoo_filter.hpp"

#include <bit>
#include <cstring>

#include "filter/metrohash.hpp"
#include "sim/logging.hpp"

namespace transfw::filter {

namespace {

/** Lane-equality mask for four 16-bit lanes: bit s set ⇔ lane s == fp. */
inline unsigned
lanesEq4x16(std::uint64_t word, std::uint16_t fp)
{
    constexpr std::uint64_t kLow = 0x0001'0001'0001'0001ULL;
    constexpr std::uint64_t kHigh = 0x8000'8000'8000'8000ULL;
    std::uint64_t x = word ^ (kLow * fp);
    std::uint64_t zero = (x - kLow) & ~x & kHigh; // MSB set ⇔ lane == 0
    return static_cast<unsigned>(((zero >> 15) & 1) | ((zero >> 30) & 2) |
                                 ((zero >> 45) & 4) | ((zero >> 60) & 8));
}

/** Lane-equality mask for two 16-bit lanes. */
inline unsigned
lanesEq2x16(std::uint32_t word, std::uint16_t fp)
{
    constexpr std::uint32_t kLow = 0x0001'0001u;
    constexpr std::uint32_t kHigh = 0x8000'8000u;
    std::uint32_t x = word ^ (kLow * fp);
    std::uint32_t zero = (x - kLow) & ~x & kHigh;
    return ((zero >> 15) & 1) | ((zero >> 30) & 2);
}

} // namespace

CuckooFilter::CuckooFilter(const CuckooParams &params)
    : params_(params),
      table_(params.numBuckets * params.slotsPerBucket, 0),
      rng_(params.seed)
{
    if (params_.numBuckets == 0 || params_.slotsPerBucket == 0)
        sim::fatal("CuckooFilter: zero-sized table");
    if (params_.fingerprintBits == 0 || params_.fingerprintBits > 16)
        sim::fatal("CuckooFilter: fingerprint must be 1..16 bits");

    // The fingerprint domain is at most 2^16 values: precompute the
    // H(f) half of the alt-bucket derivation once so neither lookups
    // nor the kick loop ever hash a fingerprint again. Values are
    // exactly metroHash64(f, seed ^ 0xA5A5A5A5) % numBuckets, the same
    // stream the three-hash reference implementation used.
    altIndex_.resize(std::size_t{1} << params_.fingerprintBits);
    for (std::size_t f = 0; f < altIndex_.size(); ++f)
        altIndex_[f] = static_cast<std::uint32_t>(
            metroHash64(static_cast<std::uint64_t>(f),
                        params_.seed ^ 0xA5A5A5A5ULL) %
            params_.numBuckets);
}

CuckooFilter::Probe
CuckooFilter::probeOf(std::uint64_t key) const
{
    // One metrohash per stream: h1 positions the primary bucket, h2
    // supplies the fingerprint; the alternate bucket comes from the
    // precomputed per-fingerprint table.
    const std::uint64_t mask = (1ULL << params_.fingerprintBits) - 1;
    std::uint64_t h2 = metroHash64(key, params_.seed ^ 0xF1F1F1F1ULL);
    // Fingerprint 0 marks an empty slot; fold into [1, 2^bits - 1].
    Fingerprint fp = static_cast<Fingerprint>(h2 & mask);
    if (fp == 0)
        fp = static_cast<Fingerprint>((h2 >> params_.fingerprintBits) & mask) | 1;
    std::size_t b1 = metroHash64(key, params_.seed) % params_.numBuckets;
    return {fp, b1, altBucket(b1, fp)};
}

std::size_t
CuckooFilter::altBucket(std::size_t bucket, Fingerprint fp) const
{
    // @p bucket is an in-range bucket index (< numBuckets) at every
    // call site, so the reference expression's two reductions collapse
    // to one conditional subtract with the identical value.
    std::size_t sum = altIndex_[fp] + params_.numBuckets - bucket;
    return sum >= params_.numBuckets ? sum - params_.numBuckets : sum;
}

unsigned
CuckooFilter::matchMask(std::size_t bucket, Fingerprint fp) const
{
    const Fingerprint *base = &table_[bucket * params_.slotsPerBucket];
    if constexpr (std::endian::native == std::endian::little) {
        if (params_.slotsPerBucket == 4) {
            std::uint64_t word;
            std::memcpy(&word, base, sizeof word);
            return lanesEq4x16(word, fp);
        }
        if (params_.slotsPerBucket == 2) {
            std::uint32_t word;
            std::memcpy(&word, base, sizeof word);
            return lanesEq2x16(word, fp);
        }
    }
    unsigned mask = 0;
    for (unsigned s = 0; s < params_.slotsPerBucket; ++s)
        mask |= (base[s] == fp ? 1u : 0u) << s;
    return mask;
}

bool
CuckooFilter::tryPlace(std::size_t bucket, Fingerprint fp)
{
    unsigned empties = matchMask(bucket, 0);
    if (empties == 0)
        return false;
    // Lowest set bit = lowest-numbered free slot, matching the
    // ascending scan of the reference implementation.
    slot(bucket, static_cast<unsigned>(std::countr_zero(empties))) = fp;
    ++stored_;
    return true;
}

bool
CuckooFilter::bucketContains(std::size_t bucket, Fingerprint fp) const
{
    return matchMask(bucket, fp) != 0;
}

bool
CuckooFilter::bucketErase(std::size_t bucket, Fingerprint fp)
{
    unsigned matches = matchMask(bucket, fp);
    if (matches == 0)
        return false;
    slot(bucket, static_cast<unsigned>(std::countr_zero(matches))) = 0;
    --stored_;
    return true;
}

bool
CuckooFilter::insert(std::uint64_t key)
{
    Probe p = probeOf(key);
    Fingerprint fp = p.fp;

    if (tryPlace(p.b1, fp) || tryPlace(p.b2, fp))
        return true;

    // Both buckets full: relocate existing fingerprints.
    std::size_t bucket = rng_.chance(0.5) ? p.b1 : p.b2;
    for (unsigned kick = 0; kick < params_.maxKicks; ++kick) {
        ++kicks_;
        unsigned victim_slot =
            static_cast<unsigned>(rng_.range(params_.slotsPerBucket));
        std::swap(fp, slot(bucket, victim_slot));
        bucket = altBucket(bucket, fp);
        if (tryPlace(bucket, fp))
            return true;
    }
    // Filter is full: drop the final homeless fingerprint. Its key now
    // has a false negative, which PRT/FT handle gracefully.
    ++overflowEvictions_;
    return false;
}

bool
CuckooFilter::contains(std::uint64_t key) const
{
    Probe p = probeOf(key);
    if (bucketContains(p.b1, p.fp))
        return true;
    return bucketContains(p.b2, p.fp);
}

bool
CuckooFilter::erase(std::uint64_t key)
{
    Probe p = probeOf(key);
    if (bucketErase(p.b1, p.fp))
        return true;
    return bucketErase(p.b2, p.fp);
}

} // namespace transfw::filter
