#ifndef TRANSFW_FILTER_CUCKOO_FILTER_HPP
#define TRANSFW_FILTER_CUCKOO_FILTER_HPP

#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace transfw::filter {

/** Sizing/behaviour parameters of a Cuckoo filter (Fan et al., CoNEXT'14). */
struct CuckooParams
{
    std::size_t numBuckets = 125;   ///< PRT default: 125 buckets
    unsigned slotsPerBucket = 4;    ///< PRT: 4, FT: 2
    unsigned fingerprintBits = 13;  ///< PRT: 13 (ε≈0.1%), FT: 11 (ε≈0.2%)
    unsigned maxKicks = 500;        ///< relocation bound before overflow
    std::uint64_t seed = 0x7261'6E73'2D46'57ULL;
};

/**
 * Cuckoo filter supporting insertion, deletion and membership tests
 * with a bounded false-positive rate and no false negatives (while no
 * overflow evictions have occurred). Each item is reduced to a
 * fingerprint stored in one of two candidate buckets; the alternate
 * bucket is derived involutively from (bucket, fingerprint) so kicked
 * fingerprints can always be relocated without the original key:
 *
 *   alt(i, f) = (H(f) - i) mod numBuckets
 *
 * which satisfies alt(alt(i, f), f) == i for any bucket count, allowing
 * the paper's non-power-of-two tables (125 and 1000 buckets).
 *
 * Hot-path layout: every public operation derives its fingerprint and
 * both candidate buckets up front from one probe computation — the key
 * is metro-hashed once per hash stream and H(f) is served from a
 * per-fingerprint table precomputed at construction (the fingerprint
 * domain is tiny), so the kick loop and the second-bucket check never
 * re-hash. Each bucket's four (or two) 16-bit fingerprint slots sit in
 * one machine word, and membership compares all slots at once with a
 * branch-light SWAR lane compare. All of this is value-preserving:
 * fingerprints, bucket choices and kick sequences are bit-identical to
 * the reference three-hash implementation (pinned by
 * test_cuckoo_filter's sequence-of-record tests).
 */
class CuckooFilter
{
  public:
    explicit CuckooFilter(const CuckooParams &params);

    /**
     * Insert the fingerprint of @p key. When both candidate buckets are
     * full, relocates existing fingerprints (up to maxKicks); if the
     * filter is genuinely full, a victim fingerprint is dropped and
     * counted in overflowEvictions() — introducing a false negative for
     * the victim's key, which callers must tolerate.
     * @return false only on an overflow eviction.
     */
    bool insert(std::uint64_t key);

    /** Membership test (may return false positives, never false
     *  negatives barring overflow evictions). */
    bool contains(std::uint64_t key) const;

    /** Remove one stored copy of @p key's fingerprint.
     *  @return true if a copy was found and removed. */
    bool erase(std::uint64_t key);

    std::size_t size() const { return stored_; }
    std::size_t capacity() const
    {
        return params_.numBuckets * params_.slotsPerBucket;
    }
    double loadFactor() const
    {
        return static_cast<double>(stored_) / capacity();
    }
    std::uint64_t overflowEvictions() const { return overflowEvictions_; }

    /** Total relocations performed by insert(); a rising kick rate is
     *  the leading indicator of the filter approaching overflow. */
    std::uint64_t kicks() const { return kicks_; }

    /** Storage cost in bits (fingerprint array only, as in §IV-E). */
    std::uint64_t
    bits() const
    {
        return static_cast<std::uint64_t>(capacity()) *
               params_.fingerprintBits;
    }

  private:
    using Fingerprint = std::uint16_t; // up to 16 fingerprint bits

    /** Per-operation probe state: fingerprint + both candidate buckets,
     *  derived once from the key's hashes. */
    struct Probe
    {
        Fingerprint fp;
        std::size_t b1;
        std::size_t b2;
    };

    Probe probeOf(std::uint64_t key) const;
    std::size_t altBucket(std::size_t bucket, Fingerprint fp) const;

    Fingerprint &slot(std::size_t bucket, unsigned s)
    {
        return table_[bucket * params_.slotsPerBucket + s];
    }
    const Fingerprint &slot(std::size_t bucket, unsigned s) const
    {
        return table_[bucket * params_.slotsPerBucket + s];
    }

    /** Bit s set ⇔ slot s of @p bucket holds @p fp (fp = 0 finds the
     *  empty slots). Single word-compare for 2/4-slot buckets. */
    unsigned matchMask(std::size_t bucket, Fingerprint fp) const;

    bool tryPlace(std::size_t bucket, Fingerprint fp);
    bool bucketContains(std::size_t bucket, Fingerprint fp) const;
    bool bucketErase(std::size_t bucket, Fingerprint fp);

    CuckooParams params_;
    std::vector<Fingerprint> table_; // 0 = empty slot
    /** H(f) mod numBuckets for every fingerprint value: the alternate
     *  bucket map, precomputed so kicks never hash. */
    std::vector<std::uint32_t> altIndex_;
    std::size_t stored_ = 0;
    std::uint64_t overflowEvictions_ = 0;
    std::uint64_t kicks_ = 0;
    mutable sim::Rng rng_;
};

} // namespace transfw::filter

#endif // TRANSFW_FILTER_CUCKOO_FILTER_HPP
