#include "filter/metrohash.hpp"

#include <cstring>

namespace transfw::filter {

namespace {

constexpr std::uint64_t k0 = 0xD6D018F5ULL;
constexpr std::uint64_t k1 = 0xA2AA033BULL;
constexpr std::uint64_t k2 = 0x62992FC1ULL;
constexpr std::uint64_t k3 = 0x30BC5B29ULL;

inline std::uint64_t
rotr(std::uint64_t x, int r)
{
    return (x >> r) | (x << (64 - r));
}

inline std::uint64_t
read64(const unsigned char *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline std::uint64_t
read32(const unsigned char *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

} // namespace

std::uint64_t
metroHash64(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *ptr = static_cast<const unsigned char *>(data);
    const unsigned char *end = ptr + len;

    std::uint64_t h = (seed + k2) * k0;

    if (len >= 32) {
        std::uint64_t v0 = h, v1 = h, v2 = h, v3 = h;
        do {
            v0 += read64(ptr) * k0;
            v0 = rotr(v0, 29) + v2;
            v1 += read64(ptr + 8) * k1;
            v1 = rotr(v1, 29) + v3;
            v2 += read64(ptr + 16) * k2;
            v2 = rotr(v2, 29) + v0;
            v3 += read64(ptr + 24) * k3;
            v3 = rotr(v3, 29) + v1;
            ptr += 32;
        } while (ptr <= end - 32);

        v2 ^= rotr(((v0 + v3) * k0) + v1, 37) * k1;
        v3 ^= rotr(((v1 + v2) * k1) + v0, 37) * k0;
        v0 ^= rotr(((v0 + v2) * k0) + v3, 37) * k1;
        v1 ^= rotr(((v1 + v3) * k1) + v2, 37) * k0;
        h += v0 ^ v1;
    }

    if (end - ptr >= 16) {
        std::uint64_t v0 = h + read64(ptr) * k2;
        v0 = rotr(v0, 29) * k3;
        std::uint64_t v1 = h + read64(ptr + 8) * k2;
        v1 = rotr(v1, 29) * k3;
        v0 ^= rotr(v0 * k0, 21) + v1;
        v1 ^= rotr(v1 * k3, 21) + v0;
        h += v1;
        ptr += 16;
    }

    if (end - ptr >= 8) {
        h += read64(ptr) * k3;
        h ^= rotr(h, 55) * k1;
        ptr += 8;
    }

    if (end - ptr >= 4) {
        h += read32(ptr) * k3;
        h ^= rotr(h, 26) * k1;
        ptr += 4;
    }

    while (ptr < end) {
        h += static_cast<std::uint64_t>(*ptr++) * k3;
        h ^= rotr(h, 48) * k1;
    }

    h ^= rotr(h, 28);
    h *= k0;
    h ^= rotr(h, 29);
    return h;
}

} // namespace transfw::filter
