#ifndef TRANSFW_FILTER_METROHASH_HPP
#define TRANSFW_FILTER_METROHASH_HPP

#include <cstddef>
#include <cstdint>

namespace transfw::filter {

/**
 * MetroHash-style 64-bit hash (Section IV-B uses MetroHash for the
 * Cuckoo-filter hash functions h1/h2). This is a from-scratch
 * implementation of the same construction — four 64-bit lanes mixed
 * with the MetroHash multiply/rotate constants over 32-byte blocks —
 * rather than a byte-exact port; only the distribution quality matters
 * for filter behaviour, and the unit tests check uniformity and
 * avalanche directly.
 */
std::uint64_t metroHash64(const void *data, std::size_t len,
                          std::uint64_t seed);

namespace detail {

constexpr std::uint64_t kMetroK0 = 0xD6D018F5ULL;
constexpr std::uint64_t kMetroK1 = 0xA2AA033BULL;
constexpr std::uint64_t kMetroK2 = 0x62992FC1ULL;
constexpr std::uint64_t kMetroK3 = 0x30BC5B29ULL;

constexpr std::uint64_t
metroRotr(std::uint64_t x, int r)
{
    return (x >> r) | (x << (64 - r));
}

} // namespace detail

/**
 * Convenience overload hashing a single 64-bit key: the len == 8
 * specialization of the buffer path above, unrolled and inline so the
 * Cuckoo filter's per-operation probe derivation compiles to a handful
 * of arithmetic ops (test_metrohash pins it equal to the buffer path).
 */
constexpr std::uint64_t
metroHash64(std::uint64_t key, std::uint64_t seed)
{
    using namespace detail;
    std::uint64_t h = (seed + kMetroK2) * kMetroK0;
    h += key * kMetroK3;
    h ^= metroRotr(h, 55) * kMetroK1;
    h ^= metroRotr(h, 28);
    h *= kMetroK0;
    h ^= metroRotr(h, 29);
    return h;
}

} // namespace transfw::filter

#endif // TRANSFW_FILTER_METROHASH_HPP
