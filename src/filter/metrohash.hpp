#ifndef TRANSFW_FILTER_METROHASH_HPP
#define TRANSFW_FILTER_METROHASH_HPP

#include <cstddef>
#include <cstdint>

namespace transfw::filter {

/**
 * MetroHash-style 64-bit hash (Section IV-B uses MetroHash for the
 * Cuckoo-filter hash functions h1/h2). This is a from-scratch
 * implementation of the same construction — four 64-bit lanes mixed
 * with the MetroHash multiply/rotate constants over 32-byte blocks —
 * rather than a byte-exact port; only the distribution quality matters
 * for filter behaviour, and the unit tests check uniformity and
 * avalanche directly.
 */
std::uint64_t metroHash64(const void *data, std::size_t len,
                          std::uint64_t seed);

/** Convenience overload hashing a single 64-bit key. */
std::uint64_t metroHash64(std::uint64_t key, std::uint64_t seed);

} // namespace transfw::filter

#endif // TRANSFW_FILTER_METROHASH_HPP
