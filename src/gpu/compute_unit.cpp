#include "gpu/compute_unit.hpp"

#include "sim/logging.hpp"

namespace transfw::gpu {

ComputeUnit::ComputeUnit(sim::EventQueue &eq,
                         const cfg::SystemConfig &config, Gpu &gpu,
                         int cu_id, const wl::Workload &workload,
                         CtaScheduler &scheduler, std::uint64_t seed)
    : SimObject(eq, sim::strfmt("gpu%d.cu%d", gpu.id(), cu_id)),
      cfg_(config), gpu_(gpu), cuId_(cu_id), workload_(workload),
      scheduler_(scheduler), seed_(seed),
      slots_(static_cast<std::size_t>(config.wavefrontSlotsPerCu))
{}

void
ComputeUnit::start()
{
    for (std::size_t s = 0; s < slots_.size(); ++s)
        acquireCta(s);
}

void
ComputeUnit::acquireCta(std::size_t slot)
{
    std::optional<int> cta = scheduler_.nextCta(gpu_.id());
    if (!cta) {
        slots_[slot].stream.reset();
        return; // slot retires; CU is done when all slots retire
    }
    if (!slots_[slot].stream)
        ++activeSlots_;
    ++ctas_;
    slots_[slot].stream =
        workload_.makeStream(*cta, cfg_.numGpus, seed_);
    step(slot);
}

void
ComputeUnit::step(std::size_t slot)
{
    obs::ProfScope prof(profiler_, obs::ProfBucket::ComputeUnit);
    Slot &s = slots_[slot];
    if (!s.stream->next(s.op)) {
        // CTA finished: retire the stream and pull the next CTA.
        s.stream.reset();
        --activeSlots_;
        acquireCta(slot);
        return;
    }
    if (s.op.computeGap > 0) {
        schedule(s.op.computeGap, [this, slot]() { issue(slot); });
    } else {
        issue(slot);
    }
}

void
ComputeUnit::issue(std::size_t slot)
{
    obs::ProfScope prof(profiler_, obs::ProfBucket::ComputeUnit);
    Slot &s = slots_[slot];
    s.pendingPages = s.op.numPages;
    if (s.pendingPages == 0)
        sim::panic("memory instruction with no pages");
    for (int i = 0; i < s.op.numPages; ++i) {
        const wl::PageAccess &access =
            s.op.pages[static_cast<std::size_t>(i)];
        gpu_.access(cuId_, access.vpn, access.write, [this, slot]() {
            Slot &sl = slots_[slot];
            if (--sl.pendingPages == 0) {
                instructions_ += sl.op.instructions;
                ++memOps_;
                step(slot);
            }
        });
    }
}

} // namespace transfw::gpu
