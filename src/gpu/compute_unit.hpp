#ifndef TRANSFW_GPU_COMPUTE_UNIT_HPP
#define TRANSFW_GPU_COMPUTE_UNIT_HPP

#include <memory>
#include <vector>

#include "config/config.hpp"
#include "gpu/cta_scheduler.hpp"
#include "gpu/gpu.hpp"
#include "sim/sim_object.hpp"
#include "workload/workload.hpp"

namespace transfw::gpu {

/**
 * One Compute Unit: a set of wavefront slots that interleave compute
 * and coalesced memory instructions. When one slot blocks on a memory
 * access the others keep issuing — the lightweight context switching
 * that lets compute-heavy applications (AES, FIR) hide translation
 * latency. Each slot executes whole CTAs pulled from the scheduler.
 */
class ComputeUnit : public sim::SimObject
{
  public:
    ComputeUnit(sim::EventQueue &eq, const cfg::SystemConfig &config,
                Gpu &gpu, int cu_id, const wl::Workload &workload,
                CtaScheduler &scheduler, std::uint64_t seed);

    /** Begin execution: every slot pulls its first CTA. */
    void start();

    /** Observability: charge host time to profiler buckets (nullable). */
    void attachProfiler(obs::SelfProfiler *profiler)
    {
        profiler_ = profiler;
    }

    std::uint64_t instructions() const { return instructions_; }
    std::uint64_t memOps() const { return memOps_; }
    std::uint64_t ctasExecuted() const { return ctas_; }
    bool done() const { return activeSlots_ == 0; }

  private:
    struct Slot
    {
        std::unique_ptr<wl::CtaStream> stream;
        wl::MemOp op;
        int pendingPages = 0;
    };

    void acquireCta(std::size_t slot);
    void step(std::size_t slot);
    void issue(std::size_t slot);

    const cfg::SystemConfig &cfg_;
    Gpu &gpu_;
    int cuId_;
    const wl::Workload &workload_;
    CtaScheduler &scheduler_;
    std::uint64_t seed_;

    std::vector<Slot> slots_;
    obs::SelfProfiler *profiler_ = nullptr;
    int activeSlots_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t memOps_ = 0;
    std::uint64_t ctas_ = 0;
};

} // namespace transfw::gpu

#endif // TRANSFW_GPU_COMPUTE_UNIT_HPP
