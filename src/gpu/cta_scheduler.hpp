#ifndef TRANSFW_GPU_CTA_SCHEDULER_HPP
#define TRANSFW_GPU_CTA_SCHEDULER_HPP

#include <deque>
#include <optional>
#include <vector>

#include "workload/workload.hpp"

namespace transfw::gpu {

/**
 * CTA scheduler (Section III-A): CTAs are placed greedily — round-robin
 * across the CUs of one GPU, moving to the next GPU only when the
 * current one has no free resources — which assigns each GPU a
 * contiguous block of CTA ids. We realize the same placement with one
 * ready queue per home GPU; a freed wavefront slot pulls the next CTA
 * of its own GPU, preserving the inter-CTA locality the paper's policy
 * is designed for.
 */
class CtaScheduler
{
  public:
    CtaScheduler(const wl::Workload &workload, int num_gpus)
        : queues_(static_cast<std::size_t>(num_gpus))
    {
        for (int cta = 0; cta < workload.numCtas(); ++cta) {
            int home = wl::homeGpu(cta, workload.numCtas(), num_gpus);
            queues_[static_cast<std::size_t>(home)].push_back(cta);
        }
    }

    /** Next CTA for a free slot on GPU @p gpu (nullopt = GPU drained). */
    std::optional<int>
    nextCta(int gpu)
    {
        auto &queue = queues_[static_cast<std::size_t>(gpu)];
        if (queue.empty())
            return std::nullopt;
        int cta = queue.front();
        queue.pop_front();
        return cta;
    }

    std::size_t
    remaining() const
    {
        std::size_t n = 0;
        for (const auto &queue : queues_)
            n += queue.size();
        return n;
    }

  private:
    std::vector<std::deque<int>> queues_;
};

} // namespace transfw::gpu

#endif // TRANSFW_GPU_CTA_SCHEDULER_HPP
