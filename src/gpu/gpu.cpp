#include "gpu/gpu.hpp"

#include <algorithm>
#include <bit>

#include "sim/logging.hpp"

namespace transfw::gpu {

Gpu::Gpu(sim::EventQueue &eq, const cfg::SystemConfig &config, int gpu_id,
         sim::Rng &rng)
    : SimObject(eq, sim::strfmt("gpu%d", gpu_id)), cfg_(config),
      id_(gpu_id), vpnShift_(config.pageShift - mem::kSmallPageShift),
      rng_(rng), pt_(config.geometry()),
      frames_(config.gpuMemBytes, config.pageShift),
      l2tlb_(sim::strfmt("gpu%d.l2tlb", gpu_id), config.l2Tlb),
      l1Mshrs_(static_cast<std::size_t>(config.cusPerGpu)),
      gmmu_(eq, sim::strfmt("gpu%d.gmmu", gpu_id), config, gpu_id, pt_,
            rng)
{
    for (int cu = 0; cu < config.cusPerGpu; ++cu) {
        l1tlbs_.push_back(std::make_unique<tlb::Tlb>(
            sim::strfmt("gpu%d.cu%d.l1tlb", gpu_id, cu), config.l1Tlb));
    }
    if (config.memModel == cfg::MemModel::Hierarchy) {
        memHierarchy_ = std::make_unique<mem::GpuMemoryHierarchy>(
            eq, sim::strfmt("gpu%d.mem", gpu_id), config.memHierarchy,
            config.cusPerGpu);
    }
    if (config.transFw.enabled) {
        prt_ = std::make_unique<core::PendingRequestTable>(config.transFw,
                                                           gpu_id);
    }
    // One cursor per resident page at most; pre-size to the frame pool
    // so the map never rehashes mid-run (capped for huge-memory cfgs).
    lineCursor_.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(frames_.capacity(), 1u << 16)));
    trackL1Residency_ = config.cusPerGpu <= 64;

    gmmu_.onComplete = [this](mmu::XlatPtr req) { finishTranslation(req); };
    gmmu_.onFault = [this](mmu::XlatPtr req) { hooks.sendFault(req); };
}

void
Gpu::access(int cu, mem::Vpn vpn4k, bool write, std::function<void()> done)
{
    mem::Vpn vpn = vpn4k >> vpnShift_;
    ++stats_.accesses;
    if (hooks.onPageAccess)
        hooks.onPageAccess(vpn, id_, write);

    schedule(cfg_.l1Tlb.lookupLatency, [this, cu, vpn, write,
                                        done = std::move(done)]() mutable {
        tlb::Tlb &l1 = *l1tlbs_[static_cast<std::size_t>(cu)];
        const tlb::TlbEntry *entry = l1.lookup(vpn);
        if (entry) {
            if (write && !entry->writable) {
                // Stale read-only entry under a write: drop it and take
                // the miss path, which raises the protection fault.
                if (l1.invalidate(vpn))
                    noteL1Erased(cu, vpn);
            } else {
                dataAccess(cu, vpn, *entry, write, std::move(done));
                return;
            }
        }
        bool primary = l1Mshrs_[static_cast<std::size_t>(cu)].allocate(
            vpn, L1Waiter{write, std::move(done)});
        if (primary)
            lookupL2(cu, vpn, write);
    });
}

void
Gpu::lookupL2(int cu, mem::Vpn vpn, bool write)
{
    schedule(cfg_.l2Tlb.lookupLatency, [this, cu, vpn, write]() {
        const tlb::TlbEntry *entry = l2tlb_.lookup(vpn);
        if (entry) {
            if (write && !entry->writable) {
                l2tlb_.invalidate(vpn);
            } else {
                deliverToL1(cu, vpn, *entry);
                return;
            }
        }
        bool primary = l2Mshr_.allocate(vpn, cu);
        if (primary)
            startTranslation(cu, vpn, write);
    });
}

void
Gpu::startTranslation(int cu, mem::Vpn vpn, bool write)
{
    ++stats_.l2Misses;
    mmu::XlatPtr req = mmu::makeRequest();
    req->id = nextReqId_++;
    req->vpn = vpn;
    req->gpu = id_;
    req->cu = cu;
    req->isWrite = write;
    req->tIssue = curTick();
#if TRANSFW_OBS
    if (attrib_)
        attrib_->begin(id_, req->id, req->vpn, curTick());
#endif

    if (prt_ && cfg_.transFw.enableShortCircuit) {
        // Trans-FW short circuit (Section IV-B): a PRT miss means the
        // page is definitely not local, so skip the GMMU walk entirely.
        mmu::charge(*req, attrib_, obs::AttribBucket::PrtLookup, 1.0,
                    curTick()); // PRT lookup cycle
        schedule(1, [this, req]() {
            if (prt_->mayBeLocal(req->vpn)) {
                gmmu_.translate(req);
            } else {
                ++stats_.shortCircuits;
                req->shortCircuited = true;
                req->faulted = true;
#if TRANSFW_OBS
                if (attrib_) {
                    // The skipped work: a full local walk plus the
                    // fault bookkeeping before it left the GPU anyway.
                    double est = static_cast<double>(
                        cfg_.pageTableLevels * cfg_.memLatency +
                        cfg_.faultFixedCost);
                    attrib_->shortCircuited(id_, req->id, est, curTick());
                }
#endif
                hooks.sendFault(req);
            }
        });
        return;
    }

    if (cfg_.leastTlb.enabled && hooks.probeSiblingL2) {
        // Least-TLB-style sharing-aware lookup: consult sibling GPUs'
        // L2 TLBs before burning a local walker.
        schedule(cfg_.leastTlb.remoteProbeLatency, [this, req]() {
            mmu::charge(
                *req, attrib_, obs::AttribBucket::LeastTlbProbe,
                static_cast<double>(cfg_.leastTlb.remoteProbeLatency),
                curTick());
            const tlb::TlbEntry *entry =
                hooks.probeSiblingL2(req->vpn, id_);
            if (entry && !entry->remote && (!req->isWrite ||
                                            entry->writable)) {
                ++stats_.leastTlbRemoteHits;
                // A sibling translates this page, but the data still
                // lives where the entry says; treat a non-local owner
                // as a fault like any walk would.
                if (entry->owner == id_) {
                    req->result = *entry;
                    finishTranslation(req);
                    return;
                }
            }
            gmmu_.translate(req);
        });
        return;
    }

    gmmu_.translate(req);
}

void
Gpu::translationReturned(mmu::XlatPtr req)
{
    // Far-fault replay (the request re-executes after resolution).
    mmu::charge(*req, attrib_, obs::AttribBucket::Replay,
                static_cast<double>(cfg_.replayCost), curTick());
    schedule(cfg_.replayCost,
             [this, req]() { finishTranslation(req); });
}

void
Gpu::finishTranslation(const mmu::XlatPtr &req)
{
    double wall = static_cast<double>(curTick() - req->tIssue);
    stats_.xlatLatency.record(wall);
    stats_.xlatHist.record(wall);
    recordBreakdown(*req);
    if (spans_)
        spans_->record("xlat", static_cast<std::uint32_t>(id_), req->id,
                       req->tIssue, curTick(), req->vpn,
                       req->lat.total());
#if TRANSFW_OBS
    if (attrib_)
        attrib_->finish(id_, req->id, req->lat, req->shortCircuited,
                        curTick());
#endif

    l2tlb_.fill(req->vpn, req->result);
    for (int cu : l2Mshr_.release(req->vpn))
        deliverToL1(cu, req->vpn, req->result);
}

void
Gpu::deliverToL1(int cu, mem::Vpn vpn, const tlb::TlbEntry &entry)
{
    tlb::Tlb &l1 = *l1tlbs_[static_cast<std::size_t>(cu)];
    if (trackL1Residency_) {
        bool refresh = l1.probe(vpn) != nullptr; // stats/LRU-neutral
        auto evicted = l1.fill(vpn, entry);
        if (evicted)
            noteL1Erased(cu, evicted->first);
        if (!refresh)
            l1Resident_[vpn] |= std::uint64_t{1} << cu;
    } else {
        l1.fill(vpn, entry);
    }
    auto waiters =
        l1Mshrs_[static_cast<std::size_t>(cu)].release(vpn);
    for (auto &waiter : waiters) {
        if (waiter.write && !entry.writable) {
            // The fill cannot satisfy a write to a read-only replica:
            // retry, which raises the protection-fault path.
            access(cu, vpn << vpnShift_, true, std::move(waiter.done));
        } else {
            dataAccess(cu, vpn, entry, waiter.write,
                       std::move(waiter.done));
        }
    }
}

void
Gpu::dataAccess(int cu, mem::Vpn vpn, const tlb::TlbEntry &entry,
                bool write, std::function<void()> done)
{
    if (entry.remote && hooks.remoteAccessLatency) {
        ++stats_.remoteDataAccesses;
        schedule(hooks.remoteAccessLatency(vpn, entry, id_),
                 std::move(done));
        return;
    }
    if (!memHierarchy_) {
        schedule(cfg_.memLatency, std::move(done));
        return;
    }
    // Detailed model: successive touches of a page sweep its cache
    // lines (coalesced wavefront accesses are line-granular), so page
    // re-visits find their lines in the data caches.
    std::uint64_t page_bytes = cfg_.geometry().pageBytes();
    std::uint32_t lines = static_cast<std::uint32_t>(page_bytes / 64);
    std::uint32_t line = lineCursor_[vpn]++ % lines;
    mem::PhysAddr addr =
        entry.ppn * page_bytes + static_cast<mem::PhysAddr>(line) * 64;
    memHierarchy_->access(cu, addr, write, std::move(done));
}

void
Gpu::noteL1Erased(int cu, mem::Vpn vpn)
{
    if (!trackL1Residency_)
        return;
    auto it = l1Resident_.find(vpn);
    if (it == l1Resident_.end())
        sim::panic("L1 residency mask out of sync");
    it->second &= ~(std::uint64_t{1} << cu);
    if (it->second == 0)
        l1Resident_.erase(it);
}

void
Gpu::invalidateTlbs(mem::Vpn vpn)
{
    l2tlb_.invalidate(vpn);
    if (!trackL1Residency_) {
        for (auto &l1 : l1tlbs_)
            l1->invalidate(vpn);
        return;
    }
    // The residency mask is exact, so probing only the CUs it names
    // changes nothing: every skipped L1 would find no line, bump no
    // stat, and touch no LRU state. Most shootdowns (ping-ponging
    // pages another GPU pulled away) find no holders at all.
    auto it = l1Resident_.find(vpn);
    if (it == l1Resident_.end())
        return;
    std::uint64_t mask = it->second;
    l1Resident_.erase(it);
    for (; mask; mask &= mask - 1) {
        auto cu = static_cast<std::size_t>(std::countr_zero(mask));
        if (!l1tlbs_[cu]->invalidate(vpn))
            sim::panic("L1 residency mask out of sync");
    }
}

void
Gpu::registerMetrics(obs::MetricRegistry &reg,
                     const std::string &prefix) const
{
    reg.registerGauge(prefix + ".accesses", [this] {
        return static_cast<double>(stats_.accesses);
    });
    reg.registerGauge(prefix + ".l2Misses", [this] {
        return static_cast<double>(stats_.l2Misses);
    });
    reg.registerGauge(prefix + ".shortCircuits", [this] {
        return static_cast<double>(stats_.shortCircuits);
    });
    reg.registerGauge(prefix + ".remoteDataAccesses", [this] {
        return static_cast<double>(stats_.remoteDataAccesses);
    });
    reg.registerHistogram(prefix + ".xlat", &stats_.xlatHist);
    l2tlb_.registerMetrics(reg, prefix + ".l2tlb");
    gmmu_.registerMetrics(reg, prefix + ".gmmu");
    if (prt_)
        prt_->registerMetrics(reg, prefix + ".prt");
}

} // namespace transfw::gpu
