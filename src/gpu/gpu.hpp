#ifndef TRANSFW_GPU_GPU_HPP
#define TRANSFW_GPU_GPU_HPP

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "config/config.hpp"
#include "cache/mshr.hpp"
#include "sim/flat_map.hpp"
#include "mem/frame_allocator.hpp"
#include "mem/mem_hierarchy.hpp"
#include "mem/page_table.hpp"
#include "mmu/gmmu.hpp"
#include "mmu/gpu_iface.hpp"
#include "mmu/request.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/self_profiler.hpp"
#include "obs/span.hpp"
#include "sim/random.hpp"
#include "sim/sim_object.hpp"
#include "tlb/tlb.hpp"
#include "transfw/prt.hpp"

namespace transfw::gpu {

/**
 * Hooks the GPU uses to reach the rest of the system (host MMU / UVM
 * driver, peer GPUs, trackers). Wired by sys::MultiGpuSystem.
 */
struct GpuHooks
{
    /** Ship a far fault (or short-circuited request) to the host. */
    std::function<void(mmu::XlatPtr)> sendFault;

    /** Least-TLB: probe sibling GPUs' L2 TLBs (nullptr on miss). */
    std::function<const tlb::TlbEntry *(mem::Vpn, int requester)>
        probeSiblingL2;

    /**
     * Latency of a data access that leaves the GPU (remote-mapped
     * pages); also drives the remote-mapping access counters.
     */
    std::function<sim::Tick(mem::Vpn, const tlb::TlbEntry &, int gpu)>
        remoteAccessLatency;

    /** Sharing tracker tap: every coalesced page access lands here. */
    std::function<void(mem::Vpn, int gpu, bool write)> onPageAccess;
};

/**
 * One GPU: 64 CUs' worth of L1 TLBs, the shared L2 TLB, both MSHR
 * levels, the GMMU, local page table, frame allocator and (under
 * Trans-FW) the PRT. The compute side lives in gpu::ComputeUnit; this
 * class owns the translation state machine from coalesced access to
 * completed data access.
 */
class Gpu : public sim::SimObject, public mmu::GpuIface
{
  public:
    struct Stats
    {
        std::uint64_t accesses = 0;
        std::uint64_t l2Misses = 0;       ///< XlatRequests created
        std::uint64_t shortCircuits = 0;  ///< PRT misses sent straight out
        std::uint64_t leastTlbRemoteHits = 0;
        std::uint64_t remoteDataAccesses = 0;
        stats::Distribution xlatLatency;  ///< L2-miss to completion
        /** Same samples, log-bucketed for p50/p90/p95/p99/p99.9. */
        obs::LogHistogram xlatHist;
    };

    Gpu(sim::EventQueue &eq, const cfg::SystemConfig &config, int gpu_id,
        sim::Rng &rng);

    int id() const { return id_; }

    /**
     * Coalesced page access from CU @p cu (VPN in 4 KB units; converted
     * to the system page size internally). @p done fires when both
     * translation and the data access have completed.
     */
    void access(int cu, mem::Vpn vpn4k, bool write,
                std::function<void()> done);

    /** Far-fault reply delivered by the host-side machinery. */
    void translationReturned(mmu::XlatPtr req);

    /** Trans-FW remote lookup forwarded by the host MMU. */
    void remoteLookupRequest(mmu::RemoteLookupPtr rl)
    {
        gmmu_.remoteLookup(std::move(rl));
    }

    // --- GpuIface ----------------------------------------------------------
    mem::PageTable &localPageTable() override { return pt_; }
    mem::FrameAllocator &frames() override { return frames_; }
    void invalidateTlbs(mem::Vpn vpn) override;
    core::PendingRequestTable *prt() override { return prt_.get(); }
    const pwc::PageWalkCache &gmmuPwc() const override
    {
        return gmmu_.pwc();
    }

    // --- wiring / inspection -----------------------------------------------
    GpuHooks hooks;
    mmu::Gmmu &gmmu() { return gmmu_; }
    const mmu::Gmmu &gmmu() const { return gmmu_; }
    /** Detailed data-memory model (nullptr under MemModel::Simple). */
    const mem::GpuMemoryHierarchy *memHierarchy() const
    {
        return memHierarchy_.get();
    }
    tlb::Tlb &l2Tlb() { return l2tlb_; }
    const tlb::Tlb &l2Tlb() const { return l2tlb_; }
    const tlb::Tlb &l1Tlb(int cu) const { return *l1tlbs_[cu]; }
    const Stats &stats() const { return stats_; }
    const stats::LatencyBreakdown &xlatBreakdown() const
    {
        return breakdown_;
    }

    /** Accumulate a finished request's component latencies. */
    void recordBreakdown(const mmu::XlatRequest &req)
    {
        breakdown_ += req.lat;
    }

    /** Observability: record lifecycle spans (propagates to the GMMU). */
    void
    attachSpans(obs::SpanRecorder *spans)
    {
        spans_ = spans;
        gmmu_.attachSpans(spans);
    }
    /** Observability: mirror latency charges per request (propagates
     *  to the GMMU). */
    void
    attachAttribution(obs::AttribSink *attrib)
    {
        attrib_ = attrib;
        gmmu_.attachAttribution(attrib);
    }
    /** Observability: host-time profiler (propagates to the GMMU). */
    void attachProfiler(obs::SelfProfiler *profiler)
    {
        gmmu_.attachProfiler(profiler);
    }
    /** Register live gauges under "<prefix>." (e.g. "gpu0"). */
    void registerMetrics(obs::MetricRegistry &reg,
                         const std::string &prefix) const;

  private:
    struct L1Waiter
    {
        bool write;
        std::function<void()> done;
    };

    void lookupL2(int cu, mem::Vpn vpn, bool write);
    void startTranslation(int cu, mem::Vpn vpn, bool write);
    void finishTranslation(const mmu::XlatPtr &req);
    void deliverToL1(int cu, mem::Vpn vpn, const tlb::TlbEntry &entry);
    void dataAccess(int cu, mem::Vpn vpn, const tlb::TlbEntry &entry,
                    bool write, std::function<void()> done);

    /** CU @p cu's L1 copy of @p vpn disappeared (eviction or
     *  shootdown). */
    void noteL1Erased(int cu, mem::Vpn vpn);

    const cfg::SystemConfig &cfg_;
    int id_;
    unsigned vpnShift_; ///< 4 KB VPN -> system VPN shift
    sim::Rng &rng_;

    mem::PageTable pt_;
    mem::FrameAllocator frames_;
    std::vector<std::unique_ptr<tlb::Tlb>> l1tlbs_;
    /** Exact bitmask of CUs whose L1 holds each VPN, so shootdowns
     *  probe only the holders instead of scanning every CU's set —
     *  absent key means no L1 copy anywhere, the common case when
     *  pages ping-pong between GPUs. Tracking needs one mask bit per
     *  CU: with more than 64 CUs (no shipped config) it is disabled
     *  and shootdowns scan every CU as before. */
    sim::FlatMap<mem::Vpn, std::uint64_t> l1Resident_;
    bool trackL1Residency_ = true;
    tlb::Tlb l2tlb_;
    std::vector<cache::Mshr<L1Waiter>> l1Mshrs_; ///< per CU, keyed by VPN
    cache::Mshr<int> l2Mshr_;                    ///< waiters are CU ids
    mmu::Gmmu gmmu_;
    std::unique_ptr<mem::GpuMemoryHierarchy> memHierarchy_;
    /** Per-page line cursors: successive touches of a page sweep its
     *  cache lines, so re-visits hit the data caches. */
    std::unordered_map<mem::Vpn, std::uint32_t> lineCursor_;
    std::unique_ptr<core::PendingRequestTable> prt_;
    std::uint64_t nextReqId_ = 1;
    Stats stats_;
    stats::LatencyBreakdown breakdown_;
    obs::SpanRecorder *spans_ = nullptr;
    obs::AttribSink *attrib_ = nullptr;
};

} // namespace transfw::gpu

#endif // TRANSFW_GPU_GPU_HPP
