#ifndef TRANSFW_INTERCONNECT_LINK_HPP
#define TRANSFW_INTERCONNECT_LINK_HPP

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/mailbox.hpp"
#include "sim/sim_object.hpp"

namespace transfw::ic {

/** Latency/bandwidth parameters of one unidirectional link. */
struct LinkConfig
{
    sim::Tick latency = 150;     ///< propagation latency (Table II: PCIe 150)
    double bytesPerCycle = 32.0; ///< bulk serialization bandwidth
};

/**
 * Send-side decomposition of one link traversal. Every message spends
 * its time in exactly three places: waiting behind earlier traffic for
 * the wire (queue wait), occupying the wire (serialization), and in
 * flight (propagation). The split is what per-hop attribution and the
 * fabric heatmaps consume; wait + ser + prop always equals
 * arrive - send tick by construction.
 */
struct HopTiming
{
    sim::Tick wait = 0; ///< cycles queued behind earlier traffic
    sim::Tick ser = 0;  ///< cycles serializing onto the wire
    sim::Tick prop = 0; ///< propagation latency
    sim::Tick arrive = 0;

    sim::Tick total() const { return wait + ser + prop; }
};

/**
 * A unidirectional point-to-point link with two virtual channels, as in
 * PCIe/NVLink: small control messages (fault alerts, translation
 * replies, forwards) ride a priority channel that only pays propagation
 * latency plus a token of serialization, while bulk page-migration
 * payloads serialize against each other on the data channel. Without
 * the split, every translation reply would queue behind 4 KB page
 * bodies and the interconnect — not the translation machinery — would
 * dominate, which matches neither real hardware nor the paper.
 */
class Link : public sim::SimObject
{
  public:
    /**
     * How a channel hands a fully-arrived message to the receiver:
     * called with the arrival tick and the delivery callback. Defaults
     * to scheduleAt on the link's own event queue; the parallel lane
     * kernel overrides it per channel to cross lane boundaries (e.g.
     * GPU uplink control messages land in a barrier-drained mailbox
     * instead of a queue another thread is concurrently executing).
     */
    using Deliver =
        std::function<void(sim::Tick, sim::EventQueue::Callback)>;

    Link(sim::EventQueue &eq, std::string name, const LinkConfig &config)
        : SimObject(eq, std::move(name)), config_(config)
    {}

    /** Override delivery of bulk data-channel messages. */
    void setDataDelivery(Deliver deliver)
    {
        dataDeliver_ = std::move(deliver);
    }
    /** Override delivery of priority control-channel messages. */
    void setCtrlDelivery(Deliver deliver)
    {
        ctrlDeliver_ = std::move(deliver);
    }

    /**
     * Batch-forwarding fast path for lane-crossing control traffic:
     * every control message is parked in @p mailbox instead of being
     * handed through the type-erased Deliver hop. The lane kernel
     * drains the batch once per lookahead window, so the per-message
     * cost on the forwarding/fault/reply uplink path collapses to an
     * InlineVec append on the sending lane's own cache lines.
     * Takes precedence over setCtrlDelivery; pass nullptr to clear.
     */
    void setCtrlMailbox(sim::Mailbox *mailbox) { ctrlMailbox_ = mailbox; }

    /**
     * Direct-schedule fast path for control messages that may land
     * straight in another lane's (parked) event queue — host→GPU
     * replies and forwards, which the lookahead protocol guarantees
     * arrive beyond every tick the receiving lane has executed. Skips
     * the Deliver hop entirely. Takes precedence over setCtrlDelivery;
     * pass nullptr to clear.
     */
    void setCtrlTarget(sim::EventQueue *target) { ctrlTarget_ = target; }

    /**
     * Send @p bytes on the bulk data channel; @p deliver fires at the
     * receiver when the whole payload has arrived. @return that tick.
     * When @p timing is non-null it receives the queue-wait /
     * serialization / propagation split of this traversal.
     */
    sim::Tick
    send(std::uint64_t bytes, sim::EventQueue::Callback deliver,
         HopTiming *timing = nullptr)
    {
        sim::Tick now = curTick();
        sim::Tick depart = std::max(now, busyUntil_);
        sim::Tick ser = static_cast<sim::Tick>(
            static_cast<double>(bytes) / config_.bytesPerCycle);
        ser = std::max<sim::Tick>(ser, 1);
        busyUntil_ = depart + ser;
        sim::Tick arrive = busyUntil_ + config_.latency;
        if (dataDeliver_)
            dataDeliver_(arrive, std::move(deliver));
        else
            eventq().scheduleAt(arrive, std::move(deliver));
        bytesSent_ += bytes;
        ++messages_;
#if TRANSFW_OBS
        noteData(now, depart - now, ser);
#endif
        if (timing)
            *timing = HopTiming{depart - now, ser, config_.latency, arrive};
        return arrive;
    }

    /**
     * Send a control message on the priority channel: propagation
     * latency plus a fixed 2-cycle serialization token, independent of
     * in-flight bulk transfers. The priority channel never queues, so
     * a control traversal's timing split is always {0, 2, latency}.
     */
    sim::Tick
    sendCtrl(std::uint64_t bytes, sim::EventQueue::Callback deliver,
             HopTiming *timing = nullptr)
    {
        sim::Tick arrive = curTick() + 2 + config_.latency;
        if (ctrlMailbox_)
            ctrlMailbox_->post(arrive, std::move(deliver));
        else if (ctrlTarget_)
            ctrlTarget_->scheduleAt(arrive, std::move(deliver));
        else if (ctrlDeliver_)
            ctrlDeliver_(arrive, std::move(deliver));
        else
            eventq().scheduleAt(arrive, std::move(deliver));
        bytesSent_ += bytes;
        ++messages_;
#if TRANSFW_OBS
        ++ctrlMessages_;
#endif
        if (timing)
            *timing = HopTiming{0, 2, config_.latency, arrive};
        return arrive;
    }

    sim::Tick latency() const { return config_.latency; }
    std::uint64_t bytesSent() const { return bytesSent_; }
    std::uint64_t messages() const { return messages_; }

#if TRANSFW_OBS
    /** Control-channel share of messages() (never queues). */
    std::uint64_t ctrlMessages() const { return ctrlMessages_; }
    /** Cumulative data-channel serialization cycles (wire occupancy). */
    std::uint64_t busyCycles() const { return busyCycles_; }
    /** High-water mark of the data-channel send queue. */
    std::uint64_t peakQueueDepth() const { return peakQueueDepth_; }

    /** Data-channel messages queued or serializing right now. */
    std::size_t
    queueDepth() const
    {
        // Departure ticks are monotonic, so one binary search finds
        // the still-pending suffix without mutating any state (the
        // gauge may be probed from the sampler at a lane barrier).
        sim::Tick now = curTick();
        auto it =
            std::upper_bound(inflight_.begin(), inflight_.end(), now);
        return static_cast<std::size_t>(inflight_.end() - it);
    }

    /** Fraction of elapsed cycles the data wire was occupied. */
    double
    utilization() const
    {
        sim::Tick now = curTick();
        return now ? std::min(1.0, static_cast<double>(busyCycles_) /
                                       static_cast<double>(now))
                   : 0.0;
    }

    double
    queueWaitMean() const
    {
        return waitHist_ ? waitHist_->mean() : 0.0;
    }

    /**
     * Queue-wait histogram of the data channel. Zero-traffic links
     * never allocate one (the full grid at 64 GPUs all-to-all is 4k+
     * links × ~16 KB); they share a static empty instance so callers
     * always get a valid, zero-count histogram.
     */
    const obs::LogHistogram &
    queueWaitHistogram() const
    {
        static const obs::LogHistogram kEmpty;
        return waitHist_ ? *waitHist_ : kEmpty;
    }
#endif

    /**
     * Register "<link name>.bytes"/".messages" gauges, plus — in
     * observability builds — ".queueWaitMean", ".peakQueueDepth",
     * ".queueDepth" and ".utilization".
     */
    void
    registerMetrics(obs::MetricRegistry &reg) const
    {
        reg.registerGauge(name() + ".bytes", [this] {
            return static_cast<double>(bytesSent_);
        });
        reg.registerGauge(name() + ".messages", [this] {
            return static_cast<double>(messages_);
        });
#if TRANSFW_OBS
        reg.registerGauge(name() + ".queueWaitMean",
                          [this] { return queueWaitMean(); });
        reg.registerGauge(name() + ".peakQueueDepth", [this] {
            return static_cast<double>(peakQueueDepth_);
        });
        reg.registerGauge(name() + ".queueDepth", [this] {
            return static_cast<double>(queueDepth());
        });
        reg.registerGauge(name() + ".utilization",
                          [this] { return utilization(); });
#endif
    }

  private:
#if TRANSFW_OBS
    void
    noteData(sim::Tick now, sim::Tick wait, sim::Tick ser)
    {
        busyCycles_ += ser;
        if (!waitHist_)
            waitHist_ = std::make_unique<obs::LogHistogram>();
        waitHist_->record(static_cast<double>(wait));
        while (!inflight_.empty() && inflight_.front() <= now)
            inflight_.pop_front();
        inflight_.push_back(busyUntil_);
        peakQueueDepth_ =
            std::max<std::uint64_t>(peakQueueDepth_, inflight_.size());
    }
#endif

    LinkConfig config_;
    sim::Tick busyUntil_ = 0;
    std::uint64_t bytesSent_ = 0;
    std::uint64_t messages_ = 0;
#if TRANSFW_OBS
    std::uint64_t ctrlMessages_ = 0;
    std::uint64_t busyCycles_ = 0;
    std::uint64_t peakQueueDepth_ = 0;
    std::deque<sim::Tick> inflight_; ///< departure ticks of queued sends
    std::unique_ptr<obs::LogHistogram> waitHist_; ///< lazy, data channel
#endif
    Deliver dataDeliver_;
    Deliver ctrlDeliver_;
    sim::Mailbox *ctrlMailbox_ = nullptr;
    sim::EventQueue *ctrlTarget_ = nullptr;
};

} // namespace transfw::ic

#endif // TRANSFW_INTERCONNECT_LINK_HPP
