#ifndef TRANSFW_INTERCONNECT_LINK_HPP
#define TRANSFW_INTERCONNECT_LINK_HPP

#include <cstdint>
#include <functional>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/mailbox.hpp"
#include "sim/sim_object.hpp"

namespace transfw::ic {

/** Latency/bandwidth parameters of one unidirectional link. */
struct LinkConfig
{
    sim::Tick latency = 150;     ///< propagation latency (Table II: PCIe 150)
    double bytesPerCycle = 32.0; ///< bulk serialization bandwidth
};

/**
 * A unidirectional point-to-point link with two virtual channels, as in
 * PCIe/NVLink: small control messages (fault alerts, translation
 * replies, forwards) ride a priority channel that only pays propagation
 * latency plus a token of serialization, while bulk page-migration
 * payloads serialize against each other on the data channel. Without
 * the split, every translation reply would queue behind 4 KB page
 * bodies and the interconnect — not the translation machinery — would
 * dominate, which matches neither real hardware nor the paper.
 */
class Link : public sim::SimObject
{
  public:
    /**
     * How a channel hands a fully-arrived message to the receiver:
     * called with the arrival tick and the delivery callback. Defaults
     * to scheduleAt on the link's own event queue; the parallel lane
     * kernel overrides it per channel to cross lane boundaries (e.g.
     * GPU uplink control messages land in a barrier-drained mailbox
     * instead of a queue another thread is concurrently executing).
     */
    using Deliver =
        std::function<void(sim::Tick, sim::EventQueue::Callback)>;

    Link(sim::EventQueue &eq, std::string name, const LinkConfig &config)
        : SimObject(eq, std::move(name)), config_(config)
    {}

    /** Override delivery of bulk data-channel messages. */
    void setDataDelivery(Deliver deliver)
    {
        dataDeliver_ = std::move(deliver);
    }
    /** Override delivery of priority control-channel messages. */
    void setCtrlDelivery(Deliver deliver)
    {
        ctrlDeliver_ = std::move(deliver);
    }

    /**
     * Batch-forwarding fast path for lane-crossing control traffic:
     * every control message is parked in @p mailbox instead of being
     * handed through the type-erased Deliver hop. The lane kernel
     * drains the batch once per lookahead window, so the per-message
     * cost on the forwarding/fault/reply uplink path collapses to an
     * InlineVec append on the sending lane's own cache lines.
     * Takes precedence over setCtrlDelivery; pass nullptr to clear.
     */
    void setCtrlMailbox(sim::Mailbox *mailbox) { ctrlMailbox_ = mailbox; }

    /**
     * Direct-schedule fast path for control messages that may land
     * straight in another lane's (parked) event queue — host→GPU
     * replies and forwards, which the lookahead protocol guarantees
     * arrive beyond every tick the receiving lane has executed. Skips
     * the Deliver hop entirely. Takes precedence over setCtrlDelivery;
     * pass nullptr to clear.
     */
    void setCtrlTarget(sim::EventQueue *target) { ctrlTarget_ = target; }

    /**
     * Send @p bytes on the bulk data channel; @p deliver fires at the
     * receiver when the whole payload has arrived. @return that tick.
     */
    sim::Tick
    send(std::uint64_t bytes, sim::EventQueue::Callback deliver)
    {
        sim::Tick depart = std::max(curTick(), busyUntil_);
        sim::Tick ser = static_cast<sim::Tick>(
            static_cast<double>(bytes) / config_.bytesPerCycle);
        busyUntil_ = depart + std::max<sim::Tick>(ser, 1);
        sim::Tick arrive = busyUntil_ + config_.latency;
        if (dataDeliver_)
            dataDeliver_(arrive, std::move(deliver));
        else
            eventq().scheduleAt(arrive, std::move(deliver));
        bytesSent_ += bytes;
        ++messages_;
        return arrive;
    }

    /**
     * Send a control message on the priority channel: propagation
     * latency plus a fixed 2-cycle serialization token, independent of
     * in-flight bulk transfers.
     */
    sim::Tick
    sendCtrl(std::uint64_t bytes, sim::EventQueue::Callback deliver)
    {
        sim::Tick arrive = curTick() + 2 + config_.latency;
        if (ctrlMailbox_)
            ctrlMailbox_->post(arrive, std::move(deliver));
        else if (ctrlTarget_)
            ctrlTarget_->scheduleAt(arrive, std::move(deliver));
        else if (ctrlDeliver_)
            ctrlDeliver_(arrive, std::move(deliver));
        else
            eventq().scheduleAt(arrive, std::move(deliver));
        bytesSent_ += bytes;
        ++messages_;
        return arrive;
    }

    sim::Tick latency() const { return config_.latency; }
    std::uint64_t bytesSent() const { return bytesSent_; }
    std::uint64_t messages() const { return messages_; }

    /** Register "<link name>.bytes"/".messages" gauges. */
    void
    registerMetrics(obs::MetricRegistry &reg) const
    {
        reg.registerGauge(name() + ".bytes", [this] {
            return static_cast<double>(bytesSent_);
        });
        reg.registerGauge(name() + ".messages", [this] {
            return static_cast<double>(messages_);
        });
    }

  private:
    LinkConfig config_;
    sim::Tick busyUntil_ = 0;
    std::uint64_t bytesSent_ = 0;
    std::uint64_t messages_ = 0;
    Deliver dataDeliver_;
    Deliver ctrlDeliver_;
    sim::Mailbox *ctrlMailbox_ = nullptr;
    sim::EventQueue *ctrlTarget_ = nullptr;
};

} // namespace transfw::ic

#endif // TRANSFW_INTERCONNECT_LINK_HPP
