#ifndef TRANSFW_INTERCONNECT_LINK_HPP
#define TRANSFW_INTERCONNECT_LINK_HPP

#include <cstdint>

#include "obs/metrics.hpp"
#include "sim/sim_object.hpp"

namespace transfw::ic {

/** Latency/bandwidth parameters of one unidirectional link. */
struct LinkConfig
{
    sim::Tick latency = 150;     ///< propagation latency (Table II: PCIe 150)
    double bytesPerCycle = 32.0; ///< bulk serialization bandwidth
};

/**
 * A unidirectional point-to-point link with two virtual channels, as in
 * PCIe/NVLink: small control messages (fault alerts, translation
 * replies, forwards) ride a priority channel that only pays propagation
 * latency plus a token of serialization, while bulk page-migration
 * payloads serialize against each other on the data channel. Without
 * the split, every translation reply would queue behind 4 KB page
 * bodies and the interconnect — not the translation machinery — would
 * dominate, which matches neither real hardware nor the paper.
 */
class Link : public sim::SimObject
{
  public:
    Link(sim::EventQueue &eq, std::string name, const LinkConfig &config)
        : SimObject(eq, std::move(name)), config_(config)
    {}

    /**
     * Send @p bytes on the bulk data channel; @p deliver fires at the
     * receiver when the whole payload has arrived. @return that tick.
     */
    sim::Tick
    send(std::uint64_t bytes, sim::EventQueue::Callback deliver)
    {
        sim::Tick depart = std::max(curTick(), busyUntil_);
        sim::Tick ser = static_cast<sim::Tick>(
            static_cast<double>(bytes) / config_.bytesPerCycle);
        busyUntil_ = depart + std::max<sim::Tick>(ser, 1);
        sim::Tick arrive = busyUntil_ + config_.latency;
        eventq().scheduleAt(arrive, std::move(deliver));
        bytesSent_ += bytes;
        ++messages_;
        return arrive;
    }

    /**
     * Send a control message on the priority channel: propagation
     * latency plus a fixed 2-cycle serialization token, independent of
     * in-flight bulk transfers.
     */
    sim::Tick
    sendCtrl(std::uint64_t bytes, sim::EventQueue::Callback deliver)
    {
        sim::Tick arrive = curTick() + 2 + config_.latency;
        eventq().scheduleAt(arrive, std::move(deliver));
        bytesSent_ += bytes;
        ++messages_;
        return arrive;
    }

    sim::Tick latency() const { return config_.latency; }
    std::uint64_t bytesSent() const { return bytesSent_; }
    std::uint64_t messages() const { return messages_; }

    /** Register "<link name>.bytes"/".messages" gauges. */
    void
    registerMetrics(obs::MetricRegistry &reg) const
    {
        reg.registerGauge(name() + ".bytes", [this] {
            return static_cast<double>(bytesSent_);
        });
        reg.registerGauge(name() + ".messages", [this] {
            return static_cast<double>(messages_);
        });
    }

  private:
    LinkConfig config_;
    sim::Tick busyUntil_ = 0;
    std::uint64_t bytesSent_ = 0;
    std::uint64_t messages_ = 0;
};

} // namespace transfw::ic

#endif // TRANSFW_INTERCONNECT_LINK_HPP
