#ifndef TRANSFW_INTERCONNECT_NETWORK_HPP
#define TRANSFW_INTERCONNECT_NETWORK_HPP

#include <memory>
#include <vector>

#include "interconnect/link.hpp"
#include "sim/logging.hpp"

namespace transfw::ic {

/** GPU-GPU interconnect topology. */
enum class Topology
{
    AllToAll, ///< a direct link between every ordered GPU pair
    Ring,     ///< neighbour links only; traffic hops the shorter arc
};

/**
 * The system interconnect: a PCIe-class star between the host and every
 * GPU (one uplink + one downlink per GPU, so fault traffic from
 * different GPUs does not serialize on one shared pipe) plus GPU-GPU
 * peer links (NVLink-class) in either an all-to-all mesh or a ring.
 * Page migration and Trans-FW's remote forwarding use the routed
 * sendPeer* API, which traverses every hop of a ring path.
 */
class Network
{
  public:
    Network(sim::EventQueue &eq, int num_gpus, const LinkConfig &host,
            const LinkConfig &peer, Topology topology = Topology::AllToAll)
        : eq_(eq), numGpus_(num_gpus), topology_(topology),
          peerConfig_(peer)
    {
        for (int g = 0; g < num_gpus; ++g) {
            up_.push_back(std::make_unique<Link>(
                eq, sim::strfmt("net.gpu%d.to_host", g), host));
            down_.push_back(std::make_unique<Link>(
                eq, sim::strfmt("net.host.to_gpu%d", g), host));
        }
        peers_.resize(static_cast<std::size_t>(num_gpus) * num_gpus);
        for (int a = 0; a < num_gpus; ++a) {
            for (int b = 0; b < num_gpus; ++b) {
                if (a == b || !directLink(a, b))
                    continue;
                peers_[peerIdx(a, b)] = std::make_unique<Link>(
                    eq, sim::strfmt("net.gpu%d.to_gpu%d", a, b), peer);
            }
        }
    }

    /** GPU @p gpu → host link. */
    Link &toHost(int gpu) { return *up_.at(static_cast<std::size_t>(gpu)); }
    /** Host → GPU @p gpu link. */
    Link &fromHost(int gpu)
    {
        return *down_.at(static_cast<std::size_t>(gpu));
    }

    /**
     * Parallel lane kernel wiring: re-home every link onto the event
     * queue of the lane that drives it. A link's queue supplies its
     * clock (curTick / busyUntil accounting) and its default delivery
     * target, so it must belong to the one lane that calls its send
     * methods: GPU @p g's uplink is driven by lane g (far faults,
     * remote-lookup notifications), while downlinks and every peer
     * link are driven by the host lane (replies, forwards, page
     * transfers, migration routing). Call once, before any traffic.
     */
    void
    bindLaneQueues(const std::vector<sim::EventQueue *> &gpu_lanes,
                   sim::EventQueue &host_lane)
    {
        for (int g = 0; g < numGpus_; ++g) {
            up_[static_cast<std::size_t>(g)]->rebindEventQueue(
                *gpu_lanes.at(static_cast<std::size_t>(g)));
            down_[static_cast<std::size_t>(g)]->rebindEventQueue(
                host_lane);
        }
        for (auto &link : peers_)
            if (link)
                link->rebindEventQueue(host_lane);
    }

    /**
     * Routed bulk transfer GPU @p from → GPU @p to; on a ring the
     * payload traverses (and occupies) every hop of the shorter arc.
     * @p done fires at final delivery.
     */
    void
    sendPeer(int from, int to, std::uint64_t bytes,
             sim::EventQueue::Callback done)
    {
        routePeer(from, to, bytes, /*ctrl=*/false, std::move(done));
    }

    /** Routed control message GPU @p from → GPU @p to. */
    void
    sendPeerCtrl(int from, int to, std::uint64_t bytes,
                 sim::EventQueue::Callback done)
    {
        routePeer(from, to, bytes, /*ctrl=*/true, std::move(done));
    }

    /** Hop count of the peer route (1 on all-to-all). */
    int
    peerHops(int from, int to) const
    {
        if (from == to)
            return 0;
        if (topology_ == Topology::AllToAll)
            return 1;
        int d = std::abs(from - to);
        return std::min(d, numGpus_ - d);
    }

    /** End-to-end propagation latency of the peer route. */
    sim::Tick
    peerLatency(int from, int to) const
    {
        return static_cast<sim::Tick>(peerHops(from, to)) *
               peerConfig_.latency;
    }

    int numGpus() const { return numGpus_; }
    Topology topology() const { return topology_; }

    /**
     * Topology-aware GPU ordering for lane-group assignment: GPUs
     * adjacent in the returned sequence are the tightest-latency
     * neighbours the interconnect has, so a contiguous block of the
     * sequence is the right set to co-schedule on one worker (their
     * mutual traffic has the smallest lower-bound latencies, and
     * block-partitioning keeps each worker walking a compact slice of
     * per-GPU state). On a ring this is the ring walk itself; on
     * all-to-all every pair is equidistant and index order is already
     * optimal. Future hierarchical topologies (mesh, switch trees)
     * supply their own traversal here without the scheduler changing.
     */
    std::vector<int>
    laneAffinityOrder() const
    {
        std::vector<int> order(static_cast<std::size_t>(numGpus_));
        for (int g = 0; g < numGpus_; ++g)
            order[static_cast<std::size_t>(g)] = g;
        // Ring: identity *is* the adjacency walk (g and g+1 share a
        // link). All-to-all: any order is an adjacency walk.
        return order;
    }

    /** Direct link accessor (tests; neighbours only on a ring). */
    Link &
    peer(int from, int to)
    {
        if (from == to)
            sim::panic("peer link to self");
        Link *link = peers_[peerIdx(from, to)].get();
        if (!link)
            sim::panic("no direct link between these GPUs (ring)");
        return *link;
    }

    /** Register per-link traffic gauges (keys are the link names). */
    void
    registerMetrics(obs::MetricRegistry &reg) const
    {
        for (const auto &l : up_)
            l->registerMetrics(reg);
        for (const auto &l : down_)
            l->registerMetrics(reg);
        for (const auto &l : peers_)
            if (l)
                l->registerMetrics(reg);
    }

    /** Total bytes moved over every link (for traffic accounting). */
    std::uint64_t
    totalBytes() const
    {
        std::uint64_t total = 0;
        for (const auto &l : up_)
            total += l->bytesSent();
        for (const auto &l : down_)
            total += l->bytesSent();
        for (const auto &l : peers_)
            total += l ? l->bytesSent() : 0;
        return total;
    }

  private:
    bool
    directLink(int a, int b) const
    {
        if (topology_ == Topology::AllToAll)
            return true;
        int d = std::abs(a - b);
        return d == 1 || d == numGpus_ - 1;
    }

    /** Next GPU on the shorter ring arc from @p from toward @p to. */
    int
    nextHop(int from, int to) const
    {
        int forward = (to - from + numGpus_) % numGpus_;
        int backward = (from - to + numGpus_) % numGpus_;
        return forward <= backward ? (from + 1) % numGpus_
                                   : (from - 1 + numGpus_) % numGpus_;
    }

    void
    routePeer(int from, int to, std::uint64_t bytes, bool ctrl,
              sim::EventQueue::Callback done)
    {
        if (from == to)
            sim::panic("peer route to self");
        int hop = topology_ == Topology::AllToAll ? to
                                                  : nextHop(from, to);
        Link &link = *peers_[peerIdx(from, hop)];
        auto forward_rest = [this, hop, to, bytes, ctrl,
                             done = std::move(done)]() mutable {
            if (hop == to) {
                done();
            } else {
                routePeer(hop, to, bytes, ctrl, std::move(done));
            }
        };
        if (ctrl)
            link.sendCtrl(bytes, std::move(forward_rest));
        else
            link.send(bytes, std::move(forward_rest));
    }

    std::size_t
    peerIdx(int from, int to) const
    {
        return static_cast<std::size_t>(from) * numGpus_ +
               static_cast<std::size_t>(to);
    }

    sim::EventQueue &eq_;
    int numGpus_;
    Topology topology_;
    LinkConfig peerConfig_;
    std::vector<std::unique_ptr<Link>> up_;
    std::vector<std::unique_ptr<Link>> down_;
    std::vector<std::unique_ptr<Link>> peers_;
};

} // namespace transfw::ic

#endif // TRANSFW_INTERCONNECT_NETWORK_HPP
