#ifndef TRANSFW_INTERCONNECT_NETWORK_HPP
#define TRANSFW_INTERCONNECT_NETWORK_HPP

#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "interconnect/link.hpp"
#include "sim/logging.hpp"

namespace transfw::ic {

/** GPU-GPU interconnect topology. */
enum class Topology
{
    AllToAll, ///< a direct link between every ordered GPU pair
    Ring,     ///< neighbour links only; traffic hops the shorter arc
    Mesh2D,   ///< near-square grid; dimension-order (X-then-Y) routing
    Switch,   ///< two-level switch tree: GPU → leaf → root → leaf → GPU
};

/** Short lowercase name for config keys and CLI parsing. */
inline const char *
topologyName(Topology t)
{
    switch (t) {
    case Topology::AllToAll: return "a2a";
    case Topology::Ring: return "ring";
    case Topology::Mesh2D: return "mesh";
    case Topology::Switch: return "switch";
    }
    return "?";
}

/**
 * The system interconnect: a PCIe-class star between the host and every
 * GPU (one uplink + one downlink per GPU, so fault traffic from
 * different GPUs does not serialize on one shared pipe) plus a
 * topology-parameterized GPU-GPU fabric (NVLink-class): all-to-all,
 * ring, 2D mesh, or a two-level switch hierarchy. Page migration and
 * Trans-FW's remote forwarding use the routed sendPeer* API, which
 * traverses — and occupies — every hop of the topology path, so
 * per-hop propagation latency and per-link bandwidth contention are
 * both modeled.
 *
 * Links are allocated per topology edge only: a 64-GPU ring owns 128
 * directed peer links, not 64² slots. Node ids 0..numGpus-1 are GPUs;
 * the Switch topology appends leaf-switch nodes and one root node
 * after them (internal to routing — the public API still speaks GPU
 * indices).
 */
class Network
{
  public:
    Network(sim::EventQueue &eq, int num_gpus, const LinkConfig &host,
            const LinkConfig &peer, Topology topology = Topology::AllToAll,
            int mesh_cols = 0, int switch_radix = 8)
        : eq_(eq), numGpus_(num_gpus), topology_(topology),
          peerConfig_(peer), switchRadix_(switch_radix)
    {
        for (int g = 0; g < num_gpus; ++g) {
            up_.push_back(std::make_unique<Link>(
                eq, sim::strfmt("net.gpu%d.to_host", g), host));
            down_.push_back(std::make_unique<Link>(
                eq, sim::strfmt("net.host.to_gpu%d", g), host));
        }
        buildFabric(mesh_cols);
    }

    /** GPU @p gpu → host link. */
    Link &toHost(int gpu) { return *up_.at(static_cast<std::size_t>(gpu)); }
    /** Host → GPU @p gpu link. */
    Link &fromHost(int gpu)
    {
        return *down_.at(static_cast<std::size_t>(gpu));
    }

    /**
     * Parallel lane kernel wiring: re-home every link onto the event
     * queue of the lane that drives it. A link's queue supplies its
     * clock (curTick / busyUntil accounting) and its default delivery
     * target, so it must belong to the one lane that calls its send
     * methods: GPU @p g's uplink is driven by lane g (far faults,
     * remote-lookup notifications), while downlinks and every fabric
     * link are driven by the host lane (replies, forwards, page
     * transfers, migration routing). Call once, before any traffic.
     */
    void
    bindLaneQueues(const std::vector<sim::EventQueue *> &gpu_lanes,
                   sim::EventQueue &host_lane)
    {
        for (int g = 0; g < numGpus_; ++g) {
            up_[static_cast<std::size_t>(g)]->rebindEventQueue(
                *gpu_lanes.at(static_cast<std::size_t>(g)));
            down_[static_cast<std::size_t>(g)]->rebindEventQueue(
                host_lane);
        }
        for (auto &node : adj_)
            for (auto &edge : node)
                edge.link->rebindEventQueue(host_lane);
    }

    /**
     * Per-hop observer for traced routes: called at send time of every
     * edge on the path with the node pair and that hop's queue-wait /
     * serialization / propagation split. Node ids < numGpus are GPUs;
     * larger ids are internal switch nodes.
     */
    using HopHook = std::function<void(int from, int to, const HopTiming &)>;

    /**
     * Routed bulk transfer GPU @p from → GPU @p to; the payload
     * traverses (and occupies) every hop of the topology path.
     * @p done fires at final delivery.
     */
    void
    sendPeer(int from, int to, std::uint64_t bytes,
             sim::EventQueue::Callback done)
    {
        routePeer(from, to, bytes, /*ctrl=*/false, std::move(done),
                  HopHook{});
    }

    /** Routed control message GPU @p from → GPU @p to. */
    void
    sendPeerCtrl(int from, int to, std::uint64_t bytes,
                 sim::EventQueue::Callback done)
    {
        routePeer(from, to, bytes, /*ctrl=*/true, std::move(done),
                  HopHook{});
    }

    /**
     * Like sendPeer, but @p hook observes every traversed edge — this
     * is how a routed message that carries a request gets its per-hop
     * timing onto the request's attribution timeline.
     */
    void
    sendPeerTraced(int from, int to, std::uint64_t bytes, HopHook hook,
                   sim::EventQueue::Callback done)
    {
        routePeer(from, to, bytes, /*ctrl=*/false, std::move(done),
                  std::move(hook));
    }

    /** Hop count of the peer route (1 on all-to-all). */
    int
    peerHops(int from, int to) const
    {
        if (from == to)
            return 0;
        int hops = 0;
        int node = from;
        while (node != to) {
            node = nextNode(node, to);
            ++hops;
        }
        return hops;
    }

    /** End-to-end propagation latency of the peer route. */
    sim::Tick
    peerLatency(int from, int to) const
    {
        return static_cast<sim::Tick>(peerHops(from, to)) *
               peerConfig_.latency;
    }

    int numGpus() const { return numGpus_; }
    Topology topology() const { return topology_; }
    int meshCols() const { return meshCols_; }
    int switchRadix() const { return switchRadix_; }

    /** Directed fabric links actually allocated (per-edge, not N²). */
    std::size_t
    fabricLinkCount() const
    {
        std::size_t n = 0;
        for (const auto &node : adj_)
            n += node.size();
        return n;
    }

    /**
     * Topology-aware GPU ordering for lane-group assignment: GPUs
     * adjacent in the returned sequence are the tightest-latency
     * neighbours the interconnect has, so a contiguous block of the
     * sequence is the right set to co-schedule on one worker (their
     * mutual traffic has the smallest lower-bound latencies, and
     * block-partitioning keeps each worker walking a compact slice of
     * per-GPU state). Ring: identity is the adjacency walk. Mesh: the
     * boustrophedon (snake) walk — consecutive entries are always grid
     * neighbours. Switch: identity keeps each leaf's GPU group
     * index-contiguous. All-to-all: every pair is equidistant, index
     * order is already optimal.
     */
    std::vector<int>
    laneAffinityOrder() const
    {
        std::vector<int> order;
        order.reserve(static_cast<std::size_t>(numGpus_));
        if (topology_ == Topology::Mesh2D) {
            int rows = (numGpus_ + meshCols_ - 1) / meshCols_;
            for (int r = 0; r < rows; ++r) {
                for (int i = 0; i < meshCols_; ++i) {
                    int c = (r % 2 == 0) ? i : meshCols_ - 1 - i;
                    int g = r * meshCols_ + c;
                    if (g < numGpus_)
                        order.push_back(g);
                }
            }
        } else {
            for (int g = 0; g < numGpus_; ++g)
                order.push_back(g);
        }
        return order;
    }

    /** Direct link accessor (tests; only actual topology edges). */
    Link &
    peer(int from, int to)
    {
        if (from == to)
            sim::panic("peer link to self");
        Link *link = findEdge(from, to);
        if (!link)
            sim::panic("no direct link between these GPUs "
                       "(ring/mesh/switch topologies route hop-by-hop)");
        return *link;
    }

    /** Register per-link traffic gauges (keys are the link names). */
    void
    registerMetrics(obs::MetricRegistry &reg) const
    {
        forEachLink(
            [&reg](const Link &link, bool) { link.registerMetrics(reg); });
    }

    /**
     * Visit every link as fn(link, is_fabric): the host star first
     * (uplinks then downlinks, is_fabric=false), then every fabric
     * edge in adjacency order — a stable ordering the fabric report
     * and heatmap rely on.
     */
    template <typename Fn>
    void
    forEachLink(Fn &&fn) const
    {
        for (const auto &l : up_)
            fn(*l, false);
        for (const auto &l : down_)
            fn(*l, false);
        for (const auto &node : adj_)
            for (const auto &edge : node)
                fn(*edge.link, true);
    }

#if TRANSFW_OBS
    /**
     * Aggregate traffic by route length: element h describes every
     * routed sendPeer* message whose path was h hops long. waitSum is
     * the total queue-wait accumulated across all hops of those
     * routes, so waitSum / (messages * h) is the mean wait per edge at
     * that distance. Element 0 is always empty (routes are >= 1 hop).
     */
    struct HopDistAgg
    {
        std::uint64_t messages = 0;
        std::uint64_t bytes = 0;
        double waitSum = 0.0;
    };

    const std::vector<HopDistAgg> &hopDistances() const
    {
        return hopDist_;
    }
#endif

    /** Total bytes moved over every link (for traffic accounting). */
    std::uint64_t
    totalBytes() const
    {
        std::uint64_t total = 0;
        for (const auto &l : up_)
            total += l->bytesSent();
        for (const auto &l : down_)
            total += l->bytesSent();
        for (const auto &node : adj_)
            for (const auto &edge : node)
                total += edge.link->bytesSent();
        return total;
    }

  private:
    struct Edge
    {
        int to;
        std::unique_ptr<Link> link;
    };

    /** Leaf-switch node id serving GPU @p gpu (Switch topology). */
    int leafNode(int gpu) const { return numGpus_ + gpu / switchRadix_; }
    int rootNode() const { return numGpus_ + numLeaves_; }

    void
    buildFabric(int mesh_cols)
    {
        int num_nodes = numGpus_;
        if (topology_ == Topology::Mesh2D) {
            meshCols_ = mesh_cols > 0
                            ? mesh_cols
                            : static_cast<int>(std::ceil(
                                  std::sqrt(static_cast<double>(numGpus_))));
            if (meshCols_ < 1)
                meshCols_ = 1;
        }
        if (topology_ == Topology::Switch) {
            if (switchRadix_ < 1)
                sim::panic("switch radix must be >= 1");
            numLeaves_ = (numGpus_ + switchRadix_ - 1) / switchRadix_;
            num_nodes = numGpus_ + numLeaves_ +
                        (numLeaves_ > 1 ? 1 : 0); // + root
        }
        adj_.resize(static_cast<std::size_t>(num_nodes));

        auto add = [this](int a, int b, std::string name) {
            adj_[static_cast<std::size_t>(a)].push_back(Edge{
                b, std::make_unique<Link>(eq_, std::move(name),
                                          peerConfig_)});
        };
        auto addGpuPair = [&](int a, int b) {
            add(a, b, sim::strfmt("net.gpu%d.to_gpu%d", a, b));
        };

        switch (topology_) {
        case Topology::AllToAll:
            for (int a = 0; a < numGpus_; ++a)
                for (int b = 0; b < numGpus_; ++b)
                    if (a != b)
                        addGpuPair(a, b);
            break;
        case Topology::Ring:
            for (int a = 0; a < numGpus_; ++a)
                for (int b = 0; b < numGpus_; ++b) {
                    int d = std::abs(a - b);
                    if (a != b && (d == 1 || d == numGpus_ - 1))
                        addGpuPair(a, b);
                }
            break;
        case Topology::Mesh2D:
            for (int g = 0; g < numGpus_; ++g) {
                int r = g / meshCols_;
                int c = g % meshCols_;
                if (c + 1 < meshCols_ && g + 1 < numGpus_)
                    addGpuPair(g, g + 1);
                if (c > 0)
                    addGpuPair(g, g - 1);
                if (g + meshCols_ < numGpus_)
                    addGpuPair(g, g + meshCols_);
                if (r > 0)
                    addGpuPair(g, g - meshCols_);
            }
            break;
        case Topology::Switch:
            for (int g = 0; g < numGpus_; ++g) {
                int leaf = g / switchRadix_;
                add(g, leafNode(g),
                    sim::strfmt("net.gpu%d.to_sw%d", g, leaf));
                add(leafNode(g), g,
                    sim::strfmt("net.sw%d.to_gpu%d", leaf, g));
            }
            for (int l = 0; l < numLeaves_ && numLeaves_ > 1; ++l) {
                add(numGpus_ + l, rootNode(),
                    sim::strfmt("net.sw%d.to_root", l));
                add(rootNode(), numGpus_ + l,
                    sim::strfmt("net.root.to_sw%d", l));
            }
            break;
        }
    }

    Link *
    findEdge(int from, int to) const
    {
        for (const auto &edge : adj_.at(static_cast<std::size_t>(from)))
            if (edge.to == to)
                return edge.link.get();
        return nullptr;
    }

    /**
     * Next node on the route toward GPU @p to. @p from may be an
     * internal switch node mid-route; @p to is always a GPU.
     */
    int
    nextNode(int from, int to) const
    {
        switch (topology_) {
        case Topology::AllToAll:
            return to;
        case Topology::Ring: {
            int forward = (to - from + numGpus_) % numGpus_;
            int backward = (from - to + numGpus_) % numGpus_;
            return forward <= backward ? (from + 1) % numGpus_
                                       : (from - 1 + numGpus_) % numGpus_;
        }
        case Topology::Mesh2D: {
            int r1 = from / meshCols_, c1 = from % meshCols_;
            int r2 = to / meshCols_, c2 = to % meshCols_;
            if (c1 != c2) {
                // X first; fall through to Y only when the X step would
                // leave the populated grid (ragged last row).
                int cand = r1 * meshCols_ + c1 + (c2 > c1 ? 1 : -1);
                if (cand < numGpus_)
                    return cand;
            }
            return (r1 + (r2 > r1 ? 1 : -1)) * meshCols_ + c1;
        }
        case Topology::Switch: {
            if (from < numGpus_)
                return leafNode(from); // GPU → its leaf switch
            if (from == rootNode() && numLeaves_ > 1)
                return leafNode(to); // root → destination leaf
            // Leaf switch: down to the GPU if local, else up to root.
            return leafNode(to) == from ? to : rootNode();
        }
        }
        sim::panic("unknown topology");
        return to;
    }

    void
    routePeer(int from, int to, std::uint64_t bytes, bool ctrl,
              sim::EventQueue::Callback done, HopHook hook,
              int route_hops = -1)
    {
        if (from == to)
            sim::panic("peer route to self");
#if TRANSFW_OBS
        if (route_hops < 0) {
            route_hops = peerHops(from, to);
            HopDistAgg &agg = hopDistFor(route_hops);
            ++agg.messages;
            agg.bytes += bytes;
        }
#endif
        int hop = nextNode(from, to);
        Link *link = findEdge(from, hop);
        if (!link)
            sim::panic("missing fabric link on route");
        // The hook is copied (not moved) into the continuation: it
        // observes this hop after the send and rides along for the
        // remaining ones.
        auto forward_rest = [this, hop, to, bytes, ctrl, route_hops,
                             hook, done = std::move(done)]() mutable {
            if (hop == to) {
                done();
            } else {
                routePeer(hop, to, bytes, ctrl, std::move(done),
                          std::move(hook), route_hops);
            }
        };
        HopTiming timing;
        if (ctrl)
            link->sendCtrl(bytes, std::move(forward_rest), &timing);
        else
            link->send(bytes, std::move(forward_rest), &timing);
#if TRANSFW_OBS
        hopDistFor(route_hops).waitSum +=
            static_cast<double>(timing.wait);
#endif
        if (hook)
            hook(from, hop, timing);
    }

#if TRANSFW_OBS
    HopDistAgg &
    hopDistFor(int hops)
    {
        if (hopDist_.size() <= static_cast<std::size_t>(hops))
            hopDist_.resize(static_cast<std::size_t>(hops) + 1);
        return hopDist_[static_cast<std::size_t>(hops)];
    }
#endif

    sim::EventQueue &eq_;
    int numGpus_;
    Topology topology_;
    LinkConfig peerConfig_;
    int meshCols_ = 0;    ///< resolved grid width (Mesh2D only)
    int switchRadix_ = 8; ///< GPUs per leaf switch (Switch only)
    int numLeaves_ = 0;   ///< leaf-switch count (Switch only)
    std::vector<std::unique_ptr<Link>> up_;
    std::vector<std::unique_ptr<Link>> down_;
    /** Adjacency lists over node ids; owns every fabric link. */
    std::vector<std::vector<Edge>> adj_;
#if TRANSFW_OBS
    std::vector<HopDistAgg> hopDist_; ///< indexed by route hop count
#endif
};

} // namespace transfw::ic

#endif // TRANSFW_INTERCONNECT_NETWORK_HPP
