#ifndef TRANSFW_MEM_ADDRESS_HPP
#define TRANSFW_MEM_ADDRESS_HPP

#include <cstdint>

namespace transfw::mem {

/** Virtual byte address in the unified virtual address space. */
using VirtAddr = std::uint64_t;
/** Physical byte address within some device's memory. */
using PhysAddr = std::uint64_t;
/** Virtual page number (VA >> page shift of the active geometry). */
using Vpn = std::uint64_t;
/** Physical frame number. */
using Ppn = std::uint64_t;

/** Device identifier: GPUs are numbered 0..N-1. */
using DeviceId = int;
/** The host CPU as a page location (UVM pages start here). */
constexpr DeviceId kCpuDevice = -1;

constexpr unsigned kSmallPageShift = 12; ///< 4 KB base pages
constexpr unsigned kLargePageShift = 21; ///< 2 MB large pages
constexpr unsigned kIndexBits = 9;       ///< radix-512 page table nodes
constexpr unsigned kIndexMask = (1u << kIndexBits) - 1;

/**
 * Geometry of the radix page table: number of levels and the leaf page
 * size. The paper's default is a five-level table with 4 KB pages
 * (leaf PTEs live in level-1 nodes); Section V-B also evaluates a
 * four-level table, and Section V-G evaluates 2 MB pages (the leaf entry
 * then lives in the level-2 node, so one fewer level is walked).
 *
 * All VPNs handled by a system are in units of the geometry's page size.
 */
struct PagingGeometry
{
    int levels = 5;                       ///< topmost node level
    unsigned pageShift = kSmallPageShift; ///< log2(page size)

    /** Node level whose entries are leaf PTEs. */
    int leafLevel() const { return pageShift == kSmallPageShift ? 1 : 2; }

    /** Memory accesses for a full walk with no PW-cache help. */
    int walkAccesses() const { return levels - leafLevel() + 1; }

    /** Page size in bytes. */
    std::uint64_t pageBytes() const { return 1ULL << pageShift; }

    /** Radix index of @p vpn within the level-@p level node. */
    unsigned
    index(Vpn vpn, int level) const
    {
        return static_cast<unsigned>(
                   vpn >> (kIndexBits * (level - leafLevel()))) &
               kIndexMask;
    }

    /**
     * The VA prefix that tags a PW-cache entry at level @p level: all
     * radix indices from the top level down to @p level inclusive.
     */
    Vpn
    prefix(Vpn vpn, int level) const
    {
        return vpn >> (kIndexBits * (level - leafLevel()));
    }

    /** Lowest level cacheable by the PW-cache (leaf PTEs go to TLBs). */
    int lowestCachedLevel() const { return leafLevel() + 1; }

    Vpn vpnOf(VirtAddr va) const { return va >> pageShift; }
};

} // namespace transfw::mem

#endif // TRANSFW_MEM_ADDRESS_HPP
