#include "mem/data_cache.hpp"

namespace transfw::mem {

DataCache::DataCache(sim::EventQueue &eq, std::string name,
                     const DataCacheConfig &config, FetchFn fetch_below)
    : SimObject(eq, std::move(name)), config_(config),
      fetchBelow_(std::move(fetch_below)),
      tags_(config.sizeBytes / config.lineBytes, config.ways)
{}

void
DataCache::access(PhysAddr addr, bool write, Callback done)
{
    ++accesses_;
    PhysAddr line = lineOf(addr);

    schedule(config_.hitLatency, [this, line, write,
                                  done = std::move(done)]() mutable {
        if (Line *hit = tags_.lookup(line)) {
            ++hits_;
            hit->dirty |= write;
            done();
            return;
        }
        // Miss: coalesce with any outstanding fetch of this line.
        bool primary = mshr_.allocate(
            line, std::make_pair(write, std::move(done)));
        if (!primary)
            return;
        fetchBelow_(line * config_.lineBytes, [this, line]() {
            auto evicted = tags_.insert(line, Line{});
            if (evicted && evicted->second.dirty) {
                // Dirty victim: write it back below (fire and forget —
                // the requester does not wait on the writeback).
                ++writebacks_;
                fetchBelow_(evicted->first * config_.lineBytes, [] {});
            }
            Line *installed = tags_.lookup(line);
            for (auto &waiter : mshr_.release(line)) {
                if (installed)
                    installed->dirty |= waiter.first;
                waiter.second();
            }
        });
    });
}

} // namespace transfw::mem
