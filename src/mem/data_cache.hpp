#ifndef TRANSFW_MEM_DATA_CACHE_HPP
#define TRANSFW_MEM_DATA_CACHE_HPP

#include <functional>
#include <string>

#include "cache/mshr.hpp"
#include "cache/set_assoc.hpp"
#include "mem/address.hpp"
#include "sim/sim_object.hpp"

namespace transfw::mem {

/** Geometry/latency of one data cache level (Table II rows). */
struct DataCacheConfig
{
    std::size_t sizeBytes = 16 << 10; ///< L1 vector: 16 KB
    std::size_t ways = 4;
    std::size_t lineBytes = 64;
    sim::Tick hitLatency = 1;
};

/**
 * A non-blocking, write-back, write-allocate data cache. Misses
 * coalesce in an MSHR and fetch the line from the level below via the
 * @ref fetchBelow callback; dirty victims add a write-back access to
 * the level below (timing only — the simulator does not track data
 * contents). Used for the per-CU L1 vector caches and the per-GPU
 * shared L2 of the detailed memory model.
 */
class DataCache : public sim::SimObject
{
  public:
    using Callback = std::function<void()>;
    /** Fetch @p line_addr from the level below; cb on completion. */
    using FetchFn = std::function<void(PhysAddr, Callback)>;

    DataCache(sim::EventQueue &eq, std::string name,
              const DataCacheConfig &config, FetchFn fetch_below);

    /** Access @p addr; @p done fires when the data is available. */
    void access(PhysAddr addr, bool write, Callback done);

    /** Drop every line (e.g., after a page migrates away). */
    void invalidateAll() { tags_.invalidateAll(); }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t writebacks() const { return writebacks_; }
    double
    hitRate() const
    {
        return accesses_ ? static_cast<double>(hits_) / accesses_ : 0.0;
    }

  private:
    struct Line
    {
        bool dirty = false;
    };

    PhysAddr lineOf(PhysAddr addr) const
    {
        return addr / config_.lineBytes;
    }

    DataCacheConfig config_;
    FetchFn fetchBelow_;
    cache::SetAssoc<Line> tags_;
    cache::Mshr<std::pair<bool, Callback>> mshr_;
    std::uint64_t accesses_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace transfw::mem

#endif // TRANSFW_MEM_DATA_CACHE_HPP
