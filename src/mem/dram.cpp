#include "mem/dram.hpp"

namespace transfw::mem {

Dram::Dram(sim::EventQueue &eq, std::string name,
           const DramConfig &config)
    : SimObject(eq, std::move(name)), config_(config),
      banks_(static_cast<std::size_t>(config.banks))
{}

void
Dram::access(PhysAddr addr, sim::EventQueue::Callback done)
{
    ++accesses_;
    std::uint64_t row = addr >> config_.rowShift;
    Bank &bank = banks_[row % banks_.size()];

    sim::Tick start = std::max(curTick(), bank.busyUntil);
    sim::Tick latency;
    sim::Tick occupancy;
    if (bank.openRow == row) {
        ++rowHits_;
        latency = config_.rowHitLatency;
        // Row hits pipeline: the bank is only held for the data burst.
        occupancy = config_.dataBeat;
    } else {
        latency = config_.rowMissLatency;
        // Precharge + activate block the bank until the burst completes.
        occupancy = config_.rowMissLatency + config_.dataBeat;
        bank.openRow = row;
    }
    bank.busyUntil = start + occupancy;
    eventq().scheduleAt(start + latency + config_.dataBeat,
                        std::move(done));
}

} // namespace transfw::mem
