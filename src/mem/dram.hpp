#ifndef TRANSFW_MEM_DRAM_HPP
#define TRANSFW_MEM_DRAM_HPP

#include <cstdint>
#include <vector>

#include "mem/address.hpp"
#include "sim/sim_object.hpp"
#include "stats/stats.hpp"

namespace transfw::mem {

/** Timing parameters of one device DRAM (GDDR-class, simplified). */
struct DramConfig
{
    /** Total banks across all channels (GDDR/HBM-class GPU memory has
     *  8-32 channels x 8-16 banks; the bank count is what bounds
     *  row-conflict throughput here). */
    int banks = 256;
    sim::Tick rowHitLatency = 40;   ///< CAS only
    sim::Tick rowMissLatency = 100; ///< precharge + activate + CAS
    sim::Tick dataBeat = 4;         ///< per-access bank occupancy
    unsigned rowShift = 11;         ///< 2 KB rows
};

/**
 * Banked DRAM with open-row policy: each bank remembers its open row;
 * an access to the same row pays the CAS-only latency, a different row
 * pays precharge+activate+CAS, and accesses to a busy bank queue
 * behind it. This is the device-memory model behind the detailed
 * memory hierarchy (cfg::MemModel::Hierarchy); the default Simple
 * model charges the flat Table II 100-cycle latency instead.
 */
class Dram : public sim::SimObject
{
  public:
    Dram(sim::EventQueue &eq, std::string name, const DramConfig &config);

    /** Issue an access; @p done fires when the data is returned. */
    void access(PhysAddr addr, sim::EventQueue::Callback done);

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t rowHits() const { return rowHits_; }
    double
    rowHitRate() const
    {
        return accesses_ ? static_cast<double>(rowHits_) / accesses_
                         : 0.0;
    }

  private:
    struct Bank
    {
        std::uint64_t openRow = ~0ULL;
        sim::Tick busyUntil = 0;
    };

    DramConfig config_;
    std::vector<Bank> banks_;
    std::uint64_t accesses_ = 0;
    std::uint64_t rowHits_ = 0;
};

} // namespace transfw::mem

#endif // TRANSFW_MEM_DRAM_HPP
