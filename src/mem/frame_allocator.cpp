#include "mem/frame_allocator.hpp"

#include "sim/logging.hpp"

namespace transfw::mem {

Ppn
FrameAllocator::allocate()
{
    ++allocated_;
    if (!freeList_.empty()) {
        Ppn p = freeList_.back();
        freeList_.pop_back();
        return p;
    }
    if (next_ >= capacity_)
        sim::fatal("device memory exhausted: workload footprint exceeds "
                   "device capacity (oversubscription is not modeled)");
    return next_++;
}

void
FrameAllocator::free(Ppn ppn)
{
    --allocated_;
    freeList_.push_back(ppn);
}

} // namespace transfw::mem
