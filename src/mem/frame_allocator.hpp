#ifndef TRANSFW_MEM_FRAME_ALLOCATOR_HPP
#define TRANSFW_MEM_FRAME_ALLOCATOR_HPP

#include <cstdint>
#include <vector>

#include "mem/address.hpp"

namespace transfw::mem {

/**
 * Physical frame allocator for one device's memory (Table II: 4 GB of
 * DRAM per GPU). Frames freed by page migration are recycled LIFO.
 * Exhausting physical memory (UVM oversubscription) is outside the
 * paper's evaluation and is treated as a fatal configuration error.
 */
class FrameAllocator
{
  public:
    FrameAllocator(std::uint64_t mem_bytes, unsigned page_shift)
        : capacity_(mem_bytes >> page_shift)
    {}

    /** Allocate one frame; fatal on exhaustion. */
    Ppn allocate();

    /** Return a frame to the free pool. */
    void free(Ppn ppn);

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t allocated() const { return allocated_; }

  private:
    std::uint64_t capacity_;
    std::uint64_t next_ = 0;
    std::uint64_t allocated_ = 0;
    std::vector<Ppn> freeList_;
};

} // namespace transfw::mem

#endif // TRANSFW_MEM_FRAME_ALLOCATOR_HPP
