#include "mem/mem_hierarchy.hpp"

#include "sim/logging.hpp"

namespace transfw::mem {

GpuMemoryHierarchy::GpuMemoryHierarchy(sim::EventQueue &eq,
                                       const std::string &name,
                                       const MemHierarchyConfig &config,
                                       int num_cus)
    : dram_(eq, name + ".dram", config.dram),
      l2_(eq, name + ".l2", config.l2,
          [this](PhysAddr addr, DataCache::Callback cb) {
              dram_.access(addr, std::move(cb));
          })
{
    for (int cu = 0; cu < num_cus; ++cu) {
        l1s_.push_back(std::make_unique<DataCache>(
            eq, sim::strfmt("%s.cu%d.l1v", name.c_str(), cu),
            config.l1Vector,
            [this](PhysAddr addr, DataCache::Callback cb) {
                // L1 refills (and writebacks) are reads/writes at L2.
                l2_.access(addr, false, std::move(cb));
            }));
    }
}

void
GpuMemoryHierarchy::access(int cu, PhysAddr addr, bool write,
                           DataCache::Callback done)
{
    l1s_[static_cast<std::size_t>(cu)]->access(addr, write,
                                               std::move(done));
}

double
GpuMemoryHierarchy::l1HitRate() const
{
    std::uint64_t accesses = 0, hits = 0;
    for (const auto &l1 : l1s_) {
        accesses += l1->accesses();
        hits += l1->hits();
    }
    return accesses ? static_cast<double>(hits) / accesses : 0.0;
}

} // namespace transfw::mem
