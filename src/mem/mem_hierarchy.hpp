#ifndef TRANSFW_MEM_MEM_HIERARCHY_HPP
#define TRANSFW_MEM_MEM_HIERARCHY_HPP

#include <memory>
#include <vector>

#include "mem/data_cache.hpp"
#include "mem/dram.hpp"

namespace transfw::mem {

/** The detailed per-GPU data-memory model (Table II cache rows). */
struct MemHierarchyConfig
{
    DataCacheConfig l1Vector{16 << 10, 4, 64, 1};  ///< 16 KB, 4-way
    DataCacheConfig l2{256 << 10, 16, 64, 10};     ///< 256 KB, 16-way
    DramConfig dram{};
};

/**
 * One GPU's data-side memory system: per-CU L1 vector caches in front
 * of a shared L2 in front of banked DRAM. Only data accesses travel
 * through it (PT-walk accesses keep the flat Table II 100-cycle cost
 * so the translation-path calibration is independent of the data-side
 * model); enable via cfg::MemModel::Hierarchy.
 */
class GpuMemoryHierarchy
{
  public:
    GpuMemoryHierarchy(sim::EventQueue &eq, const std::string &name,
                       const MemHierarchyConfig &config, int num_cus);

    /** Data access from CU @p cu; @p done fires at data return. */
    void access(int cu, PhysAddr addr, bool write,
                DataCache::Callback done);

    const DataCache &l1(int cu) const
    {
        return *l1s_[static_cast<std::size_t>(cu)];
    }
    const DataCache &l2() const { return l2_; }
    const Dram &dram() const { return dram_; }

    /** Aggregate L1 hit rate across CUs. */
    double l1HitRate() const;

  private:
    Dram dram_;
    DataCache l2_;
    std::vector<std::unique_ptr<DataCache>> l1s_;
};

} // namespace transfw::mem

#endif // TRANSFW_MEM_MEM_HIERARCHY_HPP
