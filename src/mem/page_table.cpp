#include "mem/page_table.hpp"

#include "sim/logging.hpp"

namespace transfw::mem {

void
PageTable::map(Vpn vpn, const PageInfo &info)
{
    Node *node = &root_;
    for (int level = geo_.levels; level > geo_.leafLevel(); --level) {
        unsigned idx = geo_.index(vpn, level);
        auto &child = node->children[idx];
        if (!child)
            child = std::make_unique<Node>();
        node = child.get();
    }
    unsigned leaf_idx = geo_.index(vpn, geo_.leafLevel());
    auto [it, inserted] = node->leaves.insert_or_assign(leaf_idx, info);
    (void)it;
    if (inserted)
        ++mapped_;
}

bool
PageTable::unmap(Vpn vpn)
{
    Node *node = &root_;
    for (int level = geo_.levels; level > geo_.leafLevel(); --level) {
        auto it = node->children.find(geo_.index(vpn, level));
        if (it == node->children.end())
            return false;
        node = it->second.get();
    }
    bool erased = node->leaves.erase(geo_.index(vpn, geo_.leafLevel())) > 0;
    if (erased)
        --mapped_;
    return erased;
}

const PageInfo *
PageTable::lookup(Vpn vpn) const
{
    const Node *node = &root_;
    for (int level = geo_.levels; level > geo_.leafLevel(); --level) {
        auto it = node->children.find(geo_.index(vpn, level));
        if (it == node->children.end())
            return nullptr;
        node = it->second.get();
    }
    auto it = node->leaves.find(geo_.index(vpn, geo_.leafLevel()));
    return it == node->leaves.end() ? nullptr : &it->second;
}

PageInfo *
PageTable::lookup(Vpn vpn)
{
    return const_cast<PageInfo *>(
        static_cast<const PageTable *>(this)->lookup(vpn));
}

const PageTable::Node *
PageTable::nodeAt(Vpn vpn, int level) const
{
    const Node *node = &root_;
    for (int l = geo_.levels; l > level; --l) {
        auto it = node->children.find(geo_.index(vpn, l));
        if (it == node->children.end())
            return nullptr;
        node = it->second.get();
    }
    return node;
}

void
PageTable::forEachMapped(
    const std::function<void(Vpn, const PageInfo &)> &fn) const
{
    // Recursive descent accumulating the VPN from per-level indices.
    std::function<void(const Node &, int, Vpn)> visit =
        [&](const Node &node, int level, Vpn prefix) {
            if (level == geo_.leafLevel()) {
                for (const auto &[idx, info] : node.leaves)
                    fn((prefix << kIndexBits) | idx, info);
                return;
            }
            for (const auto &[idx, child] : node.children)
                visit(*child, level - 1, (prefix << kIndexBits) | idx);
        };
    visit(root_, geo_.levels, 0);
}

WalkResult
PageTable::walk(Vpn vpn, int pwc_hit_level) const
{
    WalkResult res;
    int start_level =
        pwc_hit_level ? pwc_hit_level - 1 : geo_.levels;
    if (pwc_hit_level && (pwc_hit_level > geo_.levels ||
                          pwc_hit_level < geo_.lowestCachedLevel()))
        sim::panic("walk started from an invalid PW-cache level");

    const Node *node = nodeAt(vpn, start_level);
    if (!node) {
        // The PW-cache claimed a prefix whose subtree does not exist;
        // intermediate nodes are never freed, so this is a simulator bug.
        sim::panic("stale PW-cache prefix: intermediate node missing");
    }

    res.deepestFilled = pwc_hit_level;
    for (int level = start_level; level >= geo_.leafLevel(); --level) {
        ++res.accesses; // read the entry in the level-`level` node
        if (level == geo_.leafLevel()) {
            auto it = node->leaves.find(geo_.index(vpn, level));
            if (it == node->leaves.end())
                return res; // leaf PTE not present: page fault
            res.present = true;
            res.info = it->second;
            return res;
        }
        auto it = node->children.find(geo_.index(vpn, level));
        if (it == node->children.end())
            return res; // intermediate entry not present: early fault
        res.deepestFilled = level;
        node = it->second.get();
    }
    return res;
}

} // namespace transfw::mem
