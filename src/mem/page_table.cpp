#include "mem/page_table.hpp"

#include "sim/logging.hpp"

namespace transfw::mem {

PageTable::PageTable(PagingGeometry geo) : geo_(geo)
{
    // The root node: an inner node for the normal multi-level
    // geometries, or directly the leaf node for a degenerate
    // single-level table (levels == leafLevel()).
    if (geo_.levels > geo_.leafLevel())
        inner_.emplace_back();
    else
        leaves_.emplace_back();
}

std::uint32_t
PageTable::newInner()
{
    inner_.emplace_back();
    return static_cast<std::uint32_t>(inner_.size() - 1);
}

std::uint32_t
PageTable::newLeaf()
{
    leaves_.emplace_back();
    return static_cast<std::uint32_t>(leaves_.size()); // index + 1
}

PageTable::LeafNode *
PageTable::leafNodeFor(Vpn vpn)
{
    if (geo_.levels <= geo_.leafLevel())
        return &leaves_[0];
    InnerNode *node = &inner_[0];
    int leaf_parent = geo_.leafLevel() + 1;
    for (int level = geo_.levels; level > leaf_parent; --level) {
        std::uint32_t &c = node->child[geo_.index(vpn, level)];
        if (c == 0)
            c = newInner();
        node = &inner_[c];
    }
    std::uint32_t &c = node->child[geo_.index(vpn, leaf_parent)];
    if (c == 0)
        c = newLeaf();
    return &leaves_[c - 1];
}

const PageTable::LeafNode *
PageTable::leafNodeOf(Vpn vpn) const
{
    if (geo_.levels <= geo_.leafLevel())
        return &leaves_[0];
    const InnerNode *node = &inner_[0];
    int leaf_parent = geo_.leafLevel() + 1;
    for (int level = geo_.levels; level > leaf_parent; --level) {
        std::uint32_t c = node->child[geo_.index(vpn, level)];
        if (c == 0)
            return nullptr;
        node = &inner_[c];
    }
    std::uint32_t c = node->child[geo_.index(vpn, leaf_parent)];
    return c == 0 ? nullptr : &leaves_[c - 1];
}

void
PageTable::map(Vpn vpn, const PageInfo &info)
{
    LeafNode *leaf = leafNodeFor(vpn);
    unsigned leaf_idx = geo_.index(vpn, geo_.leafLevel());
    if (!leaf->present(leaf_idx)) {
        leaf->setPresent(leaf_idx);
        ++mapped_;
    }
    leaf->info[leaf_idx] = info;
}

bool
PageTable::unmap(Vpn vpn)
{
    const LeafNode *cleaf = leafNodeOf(vpn);
    if (!cleaf)
        return false;
    LeafNode *leaf = const_cast<LeafNode *>(cleaf);
    unsigned leaf_idx = geo_.index(vpn, geo_.leafLevel());
    if (!leaf->present(leaf_idx))
        return false;
    leaf->clearPresent(leaf_idx);
    leaf->info[leaf_idx] = PageInfo{};
    --mapped_;
    return true;
}

const PageInfo *
PageTable::lookup(Vpn vpn) const
{
    const LeafNode *leaf = leafNodeOf(vpn);
    if (!leaf)
        return nullptr;
    unsigned leaf_idx = geo_.index(vpn, geo_.leafLevel());
    return leaf->present(leaf_idx) ? &leaf->info[leaf_idx] : nullptr;
}

PageInfo *
PageTable::lookup(Vpn vpn)
{
    return const_cast<PageInfo *>(
        static_cast<const PageTable *>(this)->lookup(vpn));
}

void
PageTable::forEachMapped(
    const std::function<void(Vpn, const PageInfo &)> &fn) const
{
    // Recursive descent accumulating the VPN from per-level indices.
    int leaf_level = geo_.leafLevel();
    std::function<void(const LeafNode &, Vpn)> visitLeaf =
        [&](const LeafNode &leaf, Vpn prefix) {
            for (unsigned idx = 0; idx < kFanout; ++idx)
                if (leaf.present(idx))
                    fn((prefix << kIndexBits) | idx, leaf.info[idx]);
        };
    if (geo_.levels <= leaf_level) {
        // Degenerate single-level table: the root holds the leaves and
        // contributes no prefix bits.
        for (unsigned idx = 0; idx < kFanout; ++idx)
            if (leaves_[0].present(idx))
                fn(idx, leaves_[0].info[idx]);
        return;
    }
    std::function<void(const InnerNode &, int, Vpn)> visit =
        [&](const InnerNode &node, int level, Vpn prefix) {
            for (unsigned idx = 0; idx < kFanout; ++idx) {
                std::uint32_t c = node.child[idx];
                if (c == 0)
                    continue;
                Vpn next = (prefix << kIndexBits) | idx;
                if (level - 1 == leaf_level)
                    visitLeaf(leaves_[c - 1], next);
                else
                    visit(inner_[c], level - 1, next);
            }
        };
    visit(inner_[0], geo_.levels, 0);
}

WalkResult
PageTable::walk(Vpn vpn, int pwc_hit_level) const
{
    WalkResult res;
    int start_level =
        pwc_hit_level ? pwc_hit_level - 1 : geo_.levels;
    if (pwc_hit_level && (pwc_hit_level > geo_.levels ||
                          pwc_hit_level < geo_.lowestCachedLevel()))
        sim::panic("walk started from an invalid PW-cache level");

    const int leaf_level = geo_.leafLevel();

    // Functional descent (no access accounting) to the start node; the
    // PW-cache only certifies prefixes whose subtree exists, and
    // intermediate nodes are never freed, so a missing node here is a
    // simulator bug.
    const InnerNode *node = inner_.empty() ? nullptr : &inner_[0];
    const LeafNode *leaf =
        geo_.levels <= leaf_level ? &leaves_[0] : nullptr;
    for (int level = geo_.levels; level > start_level; --level) {
        std::uint32_t c = node->child[geo_.index(vpn, level)];
        if (c == 0)
            sim::panic("stale PW-cache prefix: intermediate node missing");
        if (level - 1 == leaf_level)
            leaf = &leaves_[c - 1];
        else
            node = &inner_[c];
    }

    res.deepestFilled = pwc_hit_level;
    for (int level = start_level; level >= leaf_level; --level) {
        ++res.accesses; // read the entry in the level-`level` node
        if (level == leaf_level) {
            unsigned idx = geo_.index(vpn, level);
            if (!leaf->present(idx))
                return res; // leaf PTE not present: page fault
            res.present = true;
            res.info = leaf->info[idx];
            return res;
        }
        std::uint32_t c = node->child[geo_.index(vpn, level)];
        if (c == 0)
            return res; // intermediate entry not present: early fault
        res.deepestFilled = level;
        if (level - 1 == leaf_level)
            leaf = &leaves_[c - 1];
        else
            node = &inner_[c];
    }
    return res;
}

} // namespace transfw::mem
