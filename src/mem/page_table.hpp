#ifndef TRANSFW_MEM_PAGE_TABLE_HPP
#define TRANSFW_MEM_PAGE_TABLE_HPP

#include <array>
#include <cstdint>
#include <deque>
#include <functional>

#include "mem/address.hpp"

namespace transfw::mem {

/**
 * Leaf page table entry contents. The same structure serves both the
 * per-GPU local page tables and the UVM centralized page table in host
 * memory: the central table's @ref owner / @ref replicaMask record which
 * device(s) hold the valid physical copy (Section II-A), while a local
 * table's entry describes the page as mapped by that GPU.
 */
struct PageInfo
{
    Ppn ppn = 0;               ///< frame number on the owning device
    DeviceId owner = kCpuDevice; ///< device whose memory backs the page
    std::uint64_t replicaMask = 0; ///< GPUs holding read replicas (bit per GPU)
    bool writable = true;
    bool remote = false;       ///< local PTE maps a peer GPU's memory
                               ///  (remote-mapping mode, Section V-E)
};

/**
 * Outcome of a (functional) radix walk used for timing: how many node
 * accesses the walk performed and whether it reached a present leaf.
 * A walk terminates early at the first non-present intermediate entry,
 * so an unmapped region faults after fewer memory accesses than a full
 * walk.
 */
struct WalkResult
{
    bool present = false;    ///< leaf PTE found and valid
    PageInfo info;           ///< valid when @ref present
    int accesses = 0;        ///< page-table memory accesses performed
    int deepestFilled = 0;   ///< deepest entry level traversed with a
                             ///  present entry (for PW-cache fills);
                             ///  0 when no level was present
};

/**
 * A radix page table (4 or 5 levels, 4 KB or 2 MB leaves). Intermediate
 * nodes are created on first map and never deallocated (matching real
 * page tables, where node reclamation is rare), which keeps PW-cache
 * entries for intermediate levels valid across page migrations — only
 * the leaf PTE changes.
 *
 * Storage mirrors a hardware radix table: every node is a flat array
 * sized by the radix fanout (512 entries), so walk()/lookup() is a
 * contiguous pointer-chase — one indexed load per level — instead of a
 * hash-map probe per level. Inner nodes hold 32-bit child references
 * into per-kind pools (0 = absent); leaf nodes hold a present bitmap
 * plus the PageInfo array. Nodes are pool-allocated and never freed
 * (unmap only clears the present bit), so no tombstone or reclamation
 * logic exists and PageInfo pointers handed out by lookup() stay
 * stable across later map()/unmap() calls, exactly as with the former
 * node-hash-map representation.
 */
class PageTable
{
  public:
    explicit PageTable(PagingGeometry geo);

    const PagingGeometry &geometry() const { return geo_; }

    /** Install (or overwrite) the leaf PTE for @p vpn. */
    void map(Vpn vpn, const PageInfo &info);

    /** Clear the leaf PTE for @p vpn. @return true if it was present. */
    bool unmap(Vpn vpn);

    /** Functional lookup with no walk-cost accounting. */
    const PageInfo *lookup(Vpn vpn) const;
    PageInfo *lookup(Vpn vpn);

    /**
     * Timed walk. @p pwc_hit_level is the level of the longest-matching
     * PW-cache entry (0 = no PW-cache hit, so the walk starts at the
     * root). An entry at level k points at the level k-1 node, so the
     * first node accessed is level k-1 (or the top level with no hit).
     */
    WalkResult walk(Vpn vpn, int pwc_hit_level = 0) const;

    /** Number of mapped leaf pages. */
    std::uint64_t mappedPages() const { return mapped_; }

    /** Nodes allocated (root included) — sizing/inspection aid. */
    std::size_t nodeCount() const { return inner_.size() + leaves_.size(); }

    /**
     * Visit every mapped leaf as (vpn, info). Used by consistency
     * validators (e.g., checking the PRT against the table) and
     * inspection tooling; order is unspecified.
     */
    void forEachMapped(
        const std::function<void(Vpn, const PageInfo &)> &fn) const;

  private:
    static constexpr std::size_t kFanout = std::size_t{1} << kIndexBits;

    /** Radix node above the leaf level: child references, 0 = absent.
     *  A child at level leafLevel()+1 indexes leaves_ (offset by one);
     *  any other child indexes inner_. */
    struct InnerNode
    {
        std::array<std::uint32_t, kFanout> child{};
    };

    /** Leaf-holding node: present bitmap + flat PTE array. */
    struct LeafNode
    {
        std::array<std::uint64_t, kFanout / 64> presentBits{};
        std::array<PageInfo, kFanout> info{};

        bool
        present(unsigned idx) const
        {
            return (presentBits[idx >> 6] >> (idx & 63)) & 1;
        }
        void setPresent(unsigned idx)
        {
            presentBits[idx >> 6] |= std::uint64_t{1} << (idx & 63);
        }
        void clearPresent(unsigned idx)
        {
            presentBits[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
        }
    };

    /** Descend to the leaf node covering @p vpn (nullptr if absent). */
    const LeafNode *leafNodeOf(Vpn vpn) const;
    /** As above, creating missing nodes along the way. */
    LeafNode *leafNodeFor(Vpn vpn);

    std::uint32_t newInner();
    std::uint32_t newLeaf();

    PagingGeometry geo_;
    /** inner_[0] is the root (when the geometry has inner levels). */
    std::deque<InnerNode> inner_;
    /** Leaf pool; child references store index + 1. */
    std::deque<LeafNode> leaves_;
    std::uint64_t mapped_ = 0;
};

} // namespace transfw::mem

#endif // TRANSFW_MEM_PAGE_TABLE_HPP
