#include "mmu/gmmu.hpp"

#include "mmu/walk_timing.hpp"
#include "sim/logging.hpp"
#include "sim/trace.hpp"

namespace transfw::mmu {

Gmmu::Gmmu(sim::EventQueue &eq, std::string name,
           const cfg::SystemConfig &config, int gpu_id,
           mem::PageTable &pt, sim::Rng &rng)
    : SimObject(eq, std::move(name)), cfg_(config), gpuId_(gpu_id),
      pt_(pt), rng_(rng),
      pwc_(pwc::makePwc(config.oracle.infinitePwc ? pwc::PwcKind::Infinite
                                                  : config.pwcKind,
                        config.pwcEntries, config.geometry()))
{}

void
Gmmu::translate(XlatPtr req)
{
    ++stats_.localWalks;
    enqueue(Job{std::move(req), nullptr, curTick()});
}

void
Gmmu::remoteLookup(RemoteLookupPtr rl)
{
    ++stats_.remoteLookups;
    enqueue(Job{nullptr, std::move(rl), curTick()});
}

void
Gmmu::enqueue(Job job)
{
    if (cfg_.oracle.infiniteWalkers) {
        startWalk(std::move(job));
        return;
    }
    job.overflowed = queue_.size() >= cfg_.gmmuPwQueue;
    queue_.push_back(std::move(job));
    stats_.maxQueueDepth = std::max(stats_.maxQueueDepth, queue_.size());
    if (queue_.size() > cfg_.gmmuPwQueue)
        ++stats_.queueOverflows;
    tryDispatch();
}

void
Gmmu::tryDispatch()
{
    while (busyWalkers_ < cfg_.gmmuWalkers && !queue_.empty()) {
        Job job = std::move(queue_.front());
        queue_.pop_front();
        startWalk(std::move(job));
    }
}

void
Gmmu::startWalk(Job job)
{
    obs::ProfScope prof(profiler_, obs::ProfBucket::Gmmu);
    sim::Tick wait = curTick() - job.enqueued;
    stats_.queueWait.record(static_cast<double>(wait));
    if (job.local) {
        charge(*job.local, attrib_,
               job.overflowed ? obs::AttribBucket::L2TlbQueue
                              : obs::AttribBucket::GmmuQueue,
               static_cast<double>(wait), curTick());
        if (spans_)
            spans_->record("gmmu.queue", job.local->gpu, job.local->id,
                           job.enqueued, curTick(), job.local->vpn);
    } else {
        // Remote GMMU contention is part of the fault-handling path but
        // not a host PW-queue wait; Fig. 3 buckets it as "other".
        charge(*job.remote->req, attrib_, obs::AttribBucket::RemoteWalk,
               static_cast<double>(wait), curTick());
        if (spans_)
            spans_->record("gmmu.remote.queue", job.remote->req->gpu,
                           job.remote->req->id, job.enqueued, curTick(),
                           job.remote->req->vpn);
    }

    ++busyWalkers_;
    mem::Vpn vpn = job.local ? job.local->vpn : job.remote->req->vpn;
    int hit_level;
    {
        obs::ProfScope pwcProf(profiler_, obs::ProfBucket::TlbPwc);
        hit_level = pwc_->lookup(vpn);
    }
    mem::WalkResult walk;
    {
        obs::ProfScope walkProf(profiler_, obs::ProfBucket::PageWalk);
        walk = pt_.walk(vpn, hit_level);
    }
    WalkTiming timing = walkTiming(walk.accesses, cfg_.asap, rng_);

    if (job.local) {
        stats_.memAccesses +=
            static_cast<std::uint64_t>(timing.countedAccesses);
        charge(*job.local, attrib_, obs::AttribBucket::GmmuWalkMem,
               static_cast<double>(timing.serialAccesses *
                                   cfg_.memLatency),
               curTick());
    } else {
        stats_.remoteMemAccesses +=
            static_cast<std::uint64_t>(timing.countedAccesses);
        charge(*job.remote->req, attrib_, obs::AttribBucket::RemoteWalk,
               static_cast<double>(timing.serialAccesses *
                                   cfg_.memLatency),
               curTick());
    }

    sim::Tick walk_latency =
        static_cast<sim::Tick>(timing.serialAccesses) * cfg_.memLatency;
    if (spans_) {
        const XlatPtr &req = job.local ? job.local : job.remote->req;
        spans_->record(job.local ? "gmmu.walk" : "gmmu.remote.walk",
                       req->gpu, req->id, curTick(),
                       curTick() + walk_latency, req->vpn);
    }
    // Moving the job into the lambda keeps the request alive even if
    // the caller drops its reference.
    schedule(walk_latency,
             [this, job = std::move(job), walk, hit_level]() mutable {
                 finishWalk(std::move(job), walk, hit_level);
             });
}

void
Gmmu::finishWalk(Job job, const mem::WalkResult &walk, int hit_level)
{
    obs::ProfScope prof(profiler_, obs::ProfBucket::Gmmu);
    // Fill the PW-cache with every intermediate entry this walk read
    // with a present entry (levels between the PW-cache hit point and
    // the deepest present level).
    int start_node = hit_level ? hit_level - 1
                               : pt_.geometry().levels;
    if (walk.deepestFilled >= pt_.geometry().lowestCachedLevel()) {
        obs::ProfScope pwcProf(profiler_, obs::ProfBucket::TlbPwc);
        int top = std::min(start_node, pt_.geometry().levels);
        for (int level = walk.deepestFilled; level <= top; ++level) {
            if (level >= pt_.geometry().lowestCachedLevel())
                pwc_->fill(job.local ? job.local->vpn
                                     : job.remote->req->vpn,
                           level);
        }
    }

    --busyWalkers_;
    tryDispatch();

    if (job.local) {
        XlatPtr req = std::move(job.local);
        if (walk.present && !walk.info.remote &&
            walk.info.owner != gpuId_) {
            sim::panic("local page table maps a non-local page without "
                       "the remote bit");
        }
        TFW_TRACE(eventq(), "gmmu",
                  "%s walk vpn=%llx present=%d accesses=%d",
                  name().c_str(),
                  static_cast<unsigned long long>(req->vpn),
                  walk.present ? 1 : 0, walk.accesses);
        if (walk.present) {
            req->result = tlb::TlbEntry{walk.info.ppn, walk.info.owner,
                                        walk.info.writable,
                                        walk.info.remote};
            if (req->isWrite && !walk.info.writable) {
                // Write hit on a read-only replica: protection fault.
                req->protectionFault = true;
                ++stats_.localFaults;
                req->faulted = true;
                onFault(req);
                return;
            }
            onComplete(req);
        } else {
            ++stats_.localFaults;
            req->faulted = true;
            charge(*req, attrib_, obs::AttribBucket::FaultFixed,
                   static_cast<double>(cfg_.faultFixedCost), curTick());
            schedule(cfg_.faultFixedCost,
                     [this, req]() { onFault(req); });
        }
        return;
    }

    RemoteLookupPtr rl = std::move(job.remote);
    rl->success = walk.present && !walk.info.remote;
    if (rl->success) {
        ++stats_.remoteHits;
        rl->result = tlb::TlbEntry{walk.info.ppn, walk.info.owner,
                                   walk.info.writable, false};
    }
    onRemoteDone(rl);
}

void
Gmmu::registerMetrics(obs::MetricRegistry &reg,
                      const std::string &prefix) const
{
    reg.registerGauge(prefix + ".localWalks", [this] {
        return static_cast<double>(stats_.localWalks);
    });
    reg.registerGauge(prefix + ".localFaults", [this] {
        return static_cast<double>(stats_.localFaults);
    });
    reg.registerGauge(prefix + ".remoteLookups", [this] {
        return static_cast<double>(stats_.remoteLookups);
    });
    reg.registerGauge(prefix + ".remoteHits", [this] {
        return static_cast<double>(stats_.remoteHits);
    });
    reg.registerGauge(prefix + ".memAccesses", [this] {
        return static_cast<double>(stats_.memAccesses);
    });
    reg.registerGauge(prefix + ".queueDepth", [this] {
        return static_cast<double>(queue_.size());
    });
    reg.registerGauge(prefix + ".queueOverflows", [this] {
        return static_cast<double>(stats_.queueOverflows);
    });
    reg.registerGauge(prefix + ".queueWaitMean",
                      [this] { return stats_.queueWait.mean(); });
    pwc_->registerMetrics(reg, prefix + ".pwc");
}

} // namespace transfw::mmu
