#ifndef TRANSFW_MMU_GMMU_HPP
#define TRANSFW_MMU_GMMU_HPP

#include <deque>
#include <functional>
#include <memory>

#include "config/config.hpp"
#include "mem/page_table.hpp"
#include "mmu/request.hpp"
#include "obs/metrics.hpp"
#include "obs/self_profiler.hpp"
#include "obs/span.hpp"
#include "pwc/pwc.hpp"
#include "sim/random.hpp"
#include "sim/sim_object.hpp"

namespace transfw::mmu {

/**
 * GPU Memory Management Unit (Section II-A): a PW-queue buffering
 * translation requests, a pool of PT-walk threads, and a PW-cache,
 * walking this GPU's local page table. Requests whose page is not
 * locally valid become far faults. Under Trans-FW the same machinery
 * additionally serves remote lookups forwarded by the host MMU, whose
 * fills share (and slightly thrash) the local PW-cache — the effect
 * the paper measures in Fig. 13.
 */
class Gmmu : public sim::SimObject
{
  public:
    struct Stats
    {
        std::uint64_t localWalks = 0;
        std::uint64_t localFaults = 0;
        std::uint64_t remoteLookups = 0;
        std::uint64_t remoteHits = 0;
        std::uint64_t memAccesses = 0;       ///< for local translations
        std::uint64_t remoteMemAccesses = 0; ///< for remote lookups
        stats::Distribution queueWait;
        std::size_t maxQueueDepth = 0;
        /** Enqueues beyond the Table II PW-queue capacity (64): in
         *  hardware these wait in the L2 MSHRs for admission; the
         *  timing is identical to one deep FIFO, so we track the
         *  overflow instead of modeling a second buffer. */
        std::uint64_t queueOverflows = 0;
    };

    Gmmu(sim::EventQueue &eq, std::string name,
         const cfg::SystemConfig &config, int gpu_id, mem::PageTable &pt,
         sim::Rng &rng);

    /** Local translation request (from an L2 TLB miss / PRT hit). */
    void translate(XlatPtr req);

    /** Trans-FW: remote lookup borrowed by the host MMU. */
    void remoteLookup(RemoteLookupPtr rl);

    /** Local walk found a valid leaf; result is filled in. */
    std::function<void(XlatPtr)> onComplete;
    /** Local walk ended in a page fault. */
    std::function<void(XlatPtr)> onFault;
    /** Remote lookup finished (success flag + result set). */
    std::function<void(RemoteLookupPtr)> onRemoteDone;

    std::size_t queueDepth() const { return queue_.size(); }
    pwc::PageWalkCache &pwc() { return *pwc_; }
    const pwc::PageWalkCache &pwc() const { return *pwc_; }
    const Stats &stats() const { return stats_; }

    /** Observability: record lifecycle spans into @p spans (nullable). */
    void attachSpans(obs::SpanRecorder *spans) { spans_ = spans; }
    /** Observability: mirror latency charges per request (nullable). */
    void attachAttribution(obs::AttribSink *attrib)
    {
        attrib_ = attrib;
    }
    /** Observability: charge host time to profiler buckets (nullable). */
    void attachProfiler(obs::SelfProfiler *profiler)
    {
        profiler_ = profiler;
    }
    /** Register live gauges under "<prefix>." (e.g. "gpu0.gmmu"). */
    void registerMetrics(obs::MetricRegistry &reg,
                         const std::string &prefix) const;

  private:
    struct Job
    {
        XlatPtr local;          ///< set for local translations
        RemoteLookupPtr remote; ///< set for remote lookups
        sim::Tick enqueued = 0;
        /** Enqueued past the PW-queue capacity: its wait is the L2-MSHR
         *  admission stall, attributed separately from in-capacity
         *  walker contention (same breakdown field, finer bucket). */
        bool overflowed = false;
    };

    void enqueue(Job job);
    void tryDispatch();
    void startWalk(Job job);
    void finishWalk(Job job, const mem::WalkResult &walk, int hit_level);

    const cfg::SystemConfig &cfg_;
    int gpuId_;
    mem::PageTable &pt_;
    sim::Rng &rng_;
    std::unique_ptr<pwc::PageWalkCache> pwc_;
    std::deque<Job> queue_;
    int busyWalkers_ = 0;
    Stats stats_;
    obs::SpanRecorder *spans_ = nullptr;
    obs::AttribSink *attrib_ = nullptr;
    obs::SelfProfiler *profiler_ = nullptr;
};

} // namespace transfw::mmu

#endif // TRANSFW_MMU_GMMU_HPP
