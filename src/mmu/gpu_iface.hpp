#ifndef TRANSFW_MMU_GPU_IFACE_HPP
#define TRANSFW_MMU_GPU_IFACE_HPP

#include "mem/address.hpp"
#include "mem/frame_allocator.hpp"
#include "mem/page_table.hpp"

namespace transfw::core {
class PendingRequestTable;
} // namespace transfw::core

namespace transfw::pwc {
class PageWalkCache;
} // namespace transfw::pwc

namespace transfw::mmu {

/**
 * The per-GPU state the UVM machinery (host MMU, migration engine,
 * UVM driver) manipulates when pages move: local page table, frame
 * allocator, TLB shootdown, PRT maintenance, and the GMMU PW-cache for
 * the remote-hit characterization probe. Implemented by gpu::Gpu;
 * declared here to break the gpu <-> uvm dependency cycle.
 */
class GpuIface
{
  public:
    virtual ~GpuIface() = default;

    virtual mem::PageTable &localPageTable() = 0;
    virtual mem::FrameAllocator &frames() = 0;

    /** Invalidate @p vpn in this GPU's L1 and L2 TLBs (shootdown). */
    virtual void invalidateTlbs(mem::Vpn vpn) = 0;

    /** The GPU's PRT (nullptr when Trans-FW is disabled). */
    virtual core::PendingRequestTable *prt() = 0;

    /** The GMMU PW-cache (for stats-only remote probes). */
    virtual const pwc::PageWalkCache &gmmuPwc() const = 0;
};

} // namespace transfw::mmu

#endif // TRANSFW_MMU_GPU_IFACE_HPP
