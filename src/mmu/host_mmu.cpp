#include "mmu/host_mmu.hpp"

#include "mmu/walk_timing.hpp"
#include "sim/logging.hpp"
#include "sim/trace.hpp"

namespace transfw::mmu {

HostMmu::HostMmu(sim::EventQueue &eq, const cfg::SystemConfig &config,
                 mem::PageTable &central, uvm::MigrationEngine &engine,
                 core::ForwardingTable *ft, std::vector<GpuIface *> gpus,
                 sim::Rng &rng, int shard, int num_shards)
    : SimObject(eq, num_shards > 1 ? sim::strfmt("host_mmu.s%d", shard)
                                   : "host_mmu"),
      cfg_(config), central_(central), engine_(engine), ft_(ft),
      gpus_(std::move(gpus)), rng_(rng),
      tlb_(num_shards > 1 ? sim::strfmt("host_mmu.s%d.tlb", shard)
                          : "host_mmu.tlb",
           config.hostTlb),
      pwc_(pwc::makePwc(config.oracle.infinitePwc ? pwc::PwcKind::Infinite
                                                  : config.pwcKind,
                        config.pwcEntries, config.geometry()))
{
    // Single-IOMMU mode wires the shootdown directly; a cluster routes
    // owner-change shootdowns to the responsible shard(s) itself.
    if (num_shards == 1)
        engine_.onOwnerChanged = [this](mem::Vpn vpn) {
            tlb_.invalidate(vpn);
        };
}

void
HostMmu::handleFault(XlatPtr req)
{
    // Every arriving fault is looked up and walked independently (the
    // IOMMU has no cross-GPU fault coalescing); only the *placement*
    // stage serializes per page, inside the MigrationEngine. Concurrent
    // faults on one hot page therefore contend for walkers — the host
    // PW-queue pressure Trans-FW's forwarding relieves.
    ++stats_.faults;
    TFW_TRACE(eventq(), "host", "fault vpn=%llx gpu=%d%s",
              static_cast<unsigned long long>(req->vpn), req->gpu,
              req->shortCircuited ? " (short-circuited)" : "");
    admit(std::move(req));
}

void
HostMmu::admit(XlatPtr req)
{
    charge(*req, attrib_, obs::AttribBucket::HostTlb,
           static_cast<double>(tlb_.lookupLatency()), curTick());
    sim::Tick t_admit = curTick();
    schedule(tlb_.lookupLatency(), [this, req = std::move(req),
                                    t_admit]() mutable {
        obs::ProfScope prof(profiler_, obs::ProfBucket::HostMmu);
        if (spans_)
            spans_->record("host.tlb", req->gpu, req->id, t_admit,
                           curTick(), req->vpn);
        // Fig. 8 characterization: could the owner GPU's PW-cache have
        // served (a prefix of) this translation?
        if (const mem::PageInfo *pi = central_.lookup(req->vpn)) {
            if (pi->owner != mem::kCpuDevice && pi->owner != req->gpu) {
                int level =
                    gpus_[static_cast<std::size_t>(pi->owner)]
                        ->gmmuPwc()
                        .probe(req->vpn);
                stats_.remoteProbeLevels.record(
                    static_cast<std::size_t>(level));
            }
        }

        const tlb::TlbEntry *hit = tlb_.lookup(req->vpn);
        if (hit) {
            ++stats_.tlbHits;
            translationKnown(std::move(req), *hit);
            return;
        }

        // Trans-FW: FT probed in parallel with the TLB; forward when
        // the PW-queue is congested past the threshold.
        bool no_free_walker =
            busyWalkers_ >= cfg_.hostWalkers && !cfg_.oracle.infiniteWalkers;
        if (ft_ && forwardToGpu && cfg_.transFw.enableForwarding &&
            no_free_walker &&
            queue_.size() >= cfg_.forwardQueueTrigger()) {
            obs::ProfScope fwdProf(profiler_,
                                   obs::ProfBucket::Forwarding);
            if (auto owner =
                    ft_->findOwner(req->vpn, static_cast<int>(gpus_.size()),
                                   req->gpu)) {
                ++stats_.forwards;
                req->remoteForwarded = true;
                TFW_TRACE(eventq(), "host",
                          "forward vpn=%llx -> gpu%d (queue=%zu)",
                          static_cast<unsigned long long>(req->vpn),
                          *owner, queue_.size());
                RemoteLookupPtr rl = makeRemoteLookup();
                rl->req = req;
                rl->targetGpu = *owner;
                rl->tForwarded = curTick();
#if TRANSFW_OBS
                if (attrib_)
                    attrib_->forwardLaunched(req->gpu, req->id, curTick());
#endif
                forwardToGpu(std::move(rl));
            }
        }

        if (cfg_.oracle.infiniteWalkers) {
            startWalk(std::move(req));
            return;
        }
        queue_.push_back(QueueEntry{std::move(req), curTick()});
        stats_.maxQueueDepth =
            std::max(stats_.maxQueueDepth, queue_.size());
        if (queue_.size() > cfg_.hostPwQueue)
            ++stats_.queueOverflows;
        tryDispatch();
    });
}

void
HostMmu::tryDispatch()
{
    while (busyWalkers_ < cfg_.hostWalkers && !queue_.empty()) {
        QueueEntry entry = std::move(queue_.front());
        queue_.pop_front();
        if (entry.req->hostWalkCancelled || entry.req->translationResolved) {
            // Pulled out by a successful remote lookup (Section IV-C).
            ++stats_.removedFromQueue;
#if TRANSFW_OBS
            if (attrib_ && entry.req->hostWalkCancelled) {
                // The loser never started; estimate the walk it skipped.
                attrib_->hostWalkCancelled(
                    entry.req->gpu, entry.req->id,
                    static_cast<double>(cfg_.pageTableLevels *
                                        cfg_.memLatency),
                    curTick());
            }
#endif
            continue;
        }
        sim::Tick wait = curTick() - entry.enqueued;
        stats_.queueWait.record(static_cast<double>(wait));
        charge(*entry.req, attrib_, obs::AttribBucket::HostQueue,
               static_cast<double>(wait), curTick());
        if (spans_)
            spans_->record("host.queue", entry.req->gpu, entry.req->id,
                           entry.enqueued, curTick(), entry.req->vpn);
        startWalk(std::move(entry.req));
    }
}

void
HostMmu::startWalk(XlatPtr req)
{
    obs::ProfScope prof(profiler_, obs::ProfBucket::HostMmu);
    ++busyWalkers_;
    ++stats_.walks;
    int hit_level;
    {
        obs::ProfScope pwcProf(profiler_, obs::ProfBucket::TlbPwc);
        hit_level = pwc_->lookup(req->vpn);
    }
    mem::WalkResult walk;
    {
        obs::ProfScope walkProf(profiler_, obs::ProfBucket::PageWalk);
        walk = central_.walk(req->vpn, hit_level);
    }
    if (!walk.present)
        sim::panic("central page table is missing a UVM page");
    WalkTiming timing = walkTiming(walk.accesses, cfg_.asap, rng_);
    stats_.memAccesses +=
        static_cast<std::uint64_t>(timing.countedAccesses);
    charge(*req, attrib_, obs::AttribBucket::HostWalkMem,
           static_cast<double>(timing.serialAccesses * cfg_.memLatency),
           curTick());

    sim::Tick latency =
        static_cast<sim::Tick>(timing.serialAccesses) * cfg_.memLatency;
    if (spans_)
        spans_->record("host.walk", req->gpu, req->id, curTick(),
                       curTick() + latency, req->vpn);
    schedule(latency, [this, req = std::move(req), walk,
                       hit_level]() mutable {
        obs::ProfScope prof(profiler_, obs::ProfBucket::HostMmu);
        {
            obs::ProfScope pwcProf(profiler_, obs::ProfBucket::TlbPwc);
            int start_node =
                hit_level ? hit_level - 1 : central_.geometry().levels;
            for (int level = walk.deepestFilled; level <= start_node;
                 ++level) {
                if (level >= central_.geometry().lowestCachedLevel())
                    pwc_->fill(req->vpn, level);
            }
        }
        --busyWalkers_;
        tryDispatch();

        tlb::TlbEntry entry{walk.info.ppn, walk.info.owner,
                            walk.info.writable, false};
        tlb_.fill(req->vpn, entry);

        if (req->translationResolved) {
            // A remote lookup won the race; this walk was the
            // replicated work Fig. 14 quantifies.
            ++stats_.duplicateWalks;
#if TRANSFW_OBS
            if (attrib_)
                attrib_->hostWalkDone(req->gpu, req->id, true, curTick());
#endif
            return;
        }
        translationKnown(std::move(req), entry);
    });
}

void
HostMmu::remoteLookupDone(RemoteLookupPtr rl)
{
    obs::ProfScope prof(profiler_, obs::ProfBucket::Forwarding);
    XlatPtr req = rl->req;
    if (spans_)
        spans_->record(rl->success ? "host.forward" : "host.forward.fail",
                       req->gpu, req->id, rl->tForwarded, curTick(),
                       req->vpn);
    if (!rl->success) {
        ++stats_.forwardFail;
#if TRANSFW_OBS
        if (attrib_)
            attrib_->forwardOutcome(req->gpu, req->id, false, false, 0,
                                    curTick());
#endif
        return; // the host walk proceeds as queued
    }
    ++stats_.forwardSuccess;
    if (req->translationResolved) {
#if TRANSFW_OBS
        if (attrib_)
            attrib_->forwardOutcome(req->gpu, req->id, true, false, 0,
                                    curTick());
#endif
        return; // host walk already finished first
    }
#if TRANSFW_OBS
    if (attrib_)
        attrib_->forwardOutcome(req->gpu, req->id, true, true, 0,
                                curTick());
#endif
    req->hostWalkCancelled = true;
    req->resolvedByRemote = true;
    // The remote GPU supplied (ppn, owner) from its own table.
    translationKnown(std::move(req), rl->result);
}

void
HostMmu::translationKnown(XlatPtr req, const tlb::TlbEntry &entry)
{
    req->translationResolved = true;
    (void)entry; // placement decisions read the central entry directly
    sim::Tick t_resolve = curTick();
    engine_.resolve(req, [this, req,
                          t_resolve](const tlb::TlbEntry &final_entry) {
        if (spans_)
            spans_->record("host.resolve", req->gpu, req->id, t_resolve,
                           curTick(), req->vpn);
        finishFault(req, final_entry);
    });
}

void
HostMmu::finishFault(XlatPtr req, const tlb::TlbEntry &entry)
{
    req->result = entry;
    onResolved(std::move(req));
}

void
HostMmu::registerMetrics(obs::MetricRegistry &reg,
                         const std::string &prefix) const
{
    reg.registerGauge(prefix + ".faults", [this] {
        return static_cast<double>(stats_.faults);
    });
    reg.registerGauge(prefix + ".tlbHits", [this] {
        return static_cast<double>(stats_.tlbHits);
    });
    reg.registerGauge(prefix + ".walks", [this] {
        return static_cast<double>(stats_.walks);
    });
    reg.registerGauge(prefix + ".memAccesses", [this] {
        return static_cast<double>(stats_.memAccesses);
    });
    reg.registerGauge(prefix + ".forwards", [this] {
        return static_cast<double>(stats_.forwards);
    });
    reg.registerGauge(prefix + ".forwardSuccess", [this] {
        return static_cast<double>(stats_.forwardSuccess);
    });
    reg.registerGauge(prefix + ".forwardFail", [this] {
        return static_cast<double>(stats_.forwardFail);
    });
    reg.registerGauge(prefix + ".duplicateWalks", [this] {
        return static_cast<double>(stats_.duplicateWalks);
    });
    reg.registerGauge(prefix + ".removedFromQueue", [this] {
        return static_cast<double>(stats_.removedFromQueue);
    });
    reg.registerGauge(prefix + ".queueDepth", [this] {
        return static_cast<double>(queue_.size());
    });
    reg.registerGauge(prefix + ".queueOverflows", [this] {
        return static_cast<double>(stats_.queueOverflows);
    });
    reg.registerGauge(prefix + ".queueWaitMean",
                      [this] { return stats_.queueWait.mean(); });
    // Forwarding-threshold crossing indicator: 1 while the PW-queue sits
    // at or past the Section IV-C forwarding trigger — sampled over time
    // this shows *when* the congestion that drives forwarding occurs.
    reg.registerGauge(prefix + ".queueAboveTrigger", [this] {
        return queue_.size() >= cfg_.forwardQueueTrigger() ? 1.0 : 0.0;
    });
    tlb_.registerMetrics(reg, prefix + ".tlb");
    pwc_->registerMetrics(reg, prefix + ".pwc");
}

} // namespace transfw::mmu
