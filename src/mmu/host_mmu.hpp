#ifndef TRANSFW_MMU_HOST_MMU_HPP
#define TRANSFW_MMU_HOST_MMU_HPP

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "config/config.hpp"
#include "mem/page_table.hpp"
#include "mmu/gpu_iface.hpp"
#include "mmu/request.hpp"
#include "obs/metrics.hpp"
#include "obs/self_profiler.hpp"
#include "obs/span.hpp"
#include "pwc/pwc.hpp"
#include "sim/random.hpp"
#include "sim/sim_object.hpp"
#include "tlb/tlb.hpp"
#include "transfw/forwarding_table.hpp"
#include "uvm/migration.hpp"

namespace transfw::mmu {

/**
 * Host MMU / IOMMU: the hardware far-fault handler the paper adopts as
 * its baseline (Section II-B). Far faults from every GPU are coalesced
 * per page, looked up in the host TLB, and otherwise walked against
 * the centralized UVM page table by a shared pool of PT-walk threads
 * behind a PW-queue and PW-cache. Resolution hands the request to the
 * MigrationEngine, then replies to the requesting GPU.
 *
 * Under Trans-FW (Section IV-C) the Forwarding Table is probed in
 * parallel with the host TLB; when the PW-queue is congested past the
 * forwarding threshold, the walk is also forwarded to the owner GPU,
 * the first responder wins, and a request whose remote lookup succeeds
 * is pulled back out of the PW-queue.
 */
class HostMmu : public sim::SimObject
{
  public:
    struct Stats
    {
        std::uint64_t faults = 0;          ///< requests arriving here
        std::uint64_t coalesced = 0;       ///< merged onto in-flight pages
        std::uint64_t tlbHits = 0;
        std::uint64_t walks = 0;           ///< walks actually performed
        std::uint64_t memAccesses = 0;
        std::uint64_t forwards = 0;        ///< remote lookups launched
        std::uint64_t forwardSuccess = 0;
        std::uint64_t forwardFail = 0;     ///< FT false positives
        std::uint64_t duplicateWalks = 0;  ///< walk finished after remote won
        std::uint64_t removedFromQueue = 0;///< cancelled before walking
        stats::Distribution queueWait;
        std::size_t maxQueueDepth = 0;
        std::uint64_t queueOverflows = 0; ///< beyond the 64-entry queue
        /** Fig. 8: PW-cache level the owner GPU could have served. */
        stats::BucketHistogram remoteProbeLevels{8};
    };

    /**
     * @p shard / @p num_shards: position within a sharded IOMMU (see
     * HostMmuCluster). The defaults build the paper's single IOMMU:
     * the historical "host_mmu" name and the owner-change → host-TLB
     * shootdown wired directly to the engine. With num_shards > 1 the
     * cluster owns that wiring (it must fan the shootdown out to the
     * right shard TLBs) and shards get distinct names.
     */
    HostMmu(sim::EventQueue &eq, const cfg::SystemConfig &config,
            mem::PageTable &central, uvm::MigrationEngine &engine,
            core::ForwardingTable *ft, std::vector<GpuIface *> gpus,
            sim::Rng &rng, int shard = 0, int num_shards = 1);

    /** A far fault arrived over the CPU-GPU interconnect. */
    void handleFault(XlatPtr req);

    /** Notification from a remote GPU that its lookup finished. */
    void remoteLookupDone(RemoteLookupPtr rl);

    /** Reply channel back to the requesting GPU (set by the system). */
    std::function<void(XlatPtr)> onResolved;
    /** Forward channel host → remote GPU (set by the system). */
    std::function<void(RemoteLookupPtr)> forwardToGpu;

    tlb::Tlb &tlb() { return tlb_; }
    pwc::PageWalkCache &pwc() { return *pwc_; }
    std::size_t queueDepth() const { return queue_.size(); }
    const Stats &stats() const { return stats_; }

    /** Observability: record lifecycle spans into @p spans (nullable). */
    void attachSpans(obs::SpanRecorder *spans) { spans_ = spans; }
    /** Observability: mirror latency charges per request (nullable). */
    void attachAttribution(obs::AttribSink *attrib)
    {
        attrib_ = attrib;
    }
    /** Observability: charge host time to profiler buckets (nullable). */
    void attachProfiler(obs::SelfProfiler *profiler)
    {
        profiler_ = profiler;
    }
    /** Register live gauges under "<prefix>." (e.g. "host.mmu"). */
    void registerMetrics(obs::MetricRegistry &reg,
                         const std::string &prefix) const;

  private:
    void admit(XlatPtr req);
    void tryDispatch();
    void startWalk(XlatPtr req);
    void translationKnown(XlatPtr req, const tlb::TlbEntry &entry);
    void finishFault(XlatPtr req, const tlb::TlbEntry &entry);

    const cfg::SystemConfig &cfg_;
    mem::PageTable &central_;
    uvm::MigrationEngine &engine_;
    core::ForwardingTable *ft_;
    std::vector<GpuIface *> gpus_;
    sim::Rng &rng_;

    tlb::Tlb tlb_;
    std::unique_ptr<pwc::PageWalkCache> pwc_;
    struct QueueEntry
    {
        XlatPtr req;
        sim::Tick enqueued;
    };
    std::deque<QueueEntry> queue_;
    int busyWalkers_ = 0;

    Stats stats_;
    obs::SpanRecorder *spans_ = nullptr;
    obs::AttribSink *attrib_ = nullptr;
    obs::SelfProfiler *profiler_ = nullptr;
};

} // namespace transfw::mmu

#endif // TRANSFW_MMU_HOST_MMU_HPP
