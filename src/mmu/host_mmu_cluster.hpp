#ifndef TRANSFW_MMU_HOST_MMU_CLUSTER_HPP
#define TRANSFW_MMU_HOST_MMU_CLUSTER_HPP

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "mmu/host_mmu.hpp"
#include "transfw/ft_cluster.hpp"

namespace transfw::mmu {

/**
 * K host-MMU/IOMMU shards behind one fault-steering front end — the
 * scale-out answer to the paper's single-IOMMU serialization point.
 * Each shard is a complete HostMmu instance (its own host TLB,
 * PW-cache, PW-queue, and walker pool — the scale-out replica model a
 * multi-IOMMU pod actually builds) plus the matching slice/replica of
 * the Forwarding Table (core::FtCluster).
 *
 * Routing: faults are steered by VPN-group hash (the same hash that
 * partitions the FT, so a fault's home shard always holds the FT slice
 * that could forward it). In replicated-FT mode every shard can serve
 * any fault, so the steering becomes deterministic round-robin load
 * balancing — that routing freedom is exactly what the replication's
 * invalidation-broadcast cost buys. The steering crossbar itself costs
 * kRouteCycles per fault, charged to the HostRoute attribution bucket
 * (the charge() funnel keeps bucket-sum == breakdown total).
 *
 * With hostShards == 1 every call is a direct pass-through to one
 * HostMmu constructed exactly as the pre-shard system built it —
 * event-for-event identical, same metric names, no routing event and
 * no HostRoute charge.
 *
 * Everything here runs on the host lane, so sharding is invisible to
 * the lane kernel: lane bit-identity holds at any shard count.
 */
class HostMmuCluster
{
  public:
    /** Shard-steering crossbar traversal (hostShards > 1 only). */
    static constexpr sim::Tick kRouteCycles = 1;

    HostMmuCluster(sim::EventQueue &eq, const cfg::SystemConfig &config,
                   mem::PageTable &central, uvm::MigrationEngine &engine,
                   core::FtCluster *ft, std::vector<GpuIface *> gpus,
                   sim::Rng &rng)
        : eq_(eq), cfg_(config),
          roundRobin_(config.transFw.ftReplicated &&
                      config.hostShards > 1)
    {
        const int k = config.hostShards;
        for (int s = 0; s < k; ++s)
            shards_.push_back(std::make_unique<HostMmu>(
                eq, config, central, engine,
                ft ? &ft->table(s) : nullptr, gpus, rng, s, k));
        for (auto &shard : shards_) {
            shard->onResolved = [this](XlatPtr req) {
                onResolved(std::move(req));
            };
            shard->forwardToGpu = [this](RemoteLookupPtr rl) {
                forwardToGpu(std::move(rl));
            };
        }
        if (k > 1) {
            // Owner changes shoot down the host TLB(s) that may cache
            // the stale translation: the home shard under hash
            // steering, every shard under round-robin (any shard may
            // have served — and cached — any page).
            engine.onOwnerChanged = [this](mem::Vpn vpn) {
                if (roundRobin_) {
                    for (auto &shard : shards_)
                        shard->tlb().invalidate(vpn);
                } else {
                    shards_[static_cast<std::size_t>(hashShard(vpn))]
                        ->tlb()
                        .invalidate(vpn);
                }
            };
        }
    }

    int shards() const { return static_cast<int>(shards_.size()); }
    HostMmu &shard(int s)
    {
        return *shards_.at(static_cast<std::size_t>(s));
    }
    const HostMmu &shard(int s) const
    {
        return *shards_.at(static_cast<std::size_t>(s));
    }

    /** A far fault arrived over the CPU-GPU interconnect. */
    void
    handleFault(XlatPtr req)
    {
        if (shards_.size() == 1) {
            shards_[0]->handleFault(std::move(req));
            return;
        }
        const int s = routeShard(req->vpn);
        req->hostShard = s;
        ++routedFaults_;
        // The crossbar traversal is one edge of the request's route:
        // host front end (-1) → shard s, pure serialization. Tagging
        // it (instead of a plain charge) is what lets the watchdog
        // prove HostRoute == sum of traversed crossbar edges.
        obs::AttribHop hop;
        hop.from = -1;
        hop.to = static_cast<std::int16_t>(s);
        hop.ser = static_cast<double>(kRouteCycles);
        chargeHop(*req, attrib_, obs::AttribBucket::HostRoute, hop,
                  eq_.now());
        eq_.scheduleAt(eq_.now() + kRouteCycles,
                       [this, s, req = std::move(req)]() mutable {
                           shards_[static_cast<std::size_t>(s)]
                               ->handleFault(std::move(req));
                       });
    }

    /** Remote-lookup completion, routed back to the launching shard. */
    void
    remoteLookupDone(RemoteLookupPtr rl)
    {
        shards_.at(static_cast<std::size_t>(rl->req->hostShard))
            ->remoteLookupDone(std::move(rl));
    }

    /** Reply channel back to the requesting GPU (set by the system). */
    std::function<void(XlatPtr)> onResolved;
    /** Forward channel host → remote GPU (set by the system). */
    std::function<void(RemoteLookupPtr)> forwardToGpu;

    /** Faults that crossed the steering crossbar (0 when K == 1). */
    std::uint64_t routedFaults() const { return routedFaults_; }

    // --- shard-skew metrics (gauges, collect(), pod study) ------------------

    /** Largest single shard's share of all host walks (1/K = even). */
    double
    shardLoadShareMax() const
    {
        std::uint64_t total = 0, worst = 0;
        for (const auto &s : shards_) {
            total += s->stats().walks;
            worst = std::max(worst, s->stats().walks);
        }
        return total ? static_cast<double>(worst) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /** Coefficient of variation of per-shard walk counts (0 = even). */
    double
    shardLoadCv() const
    {
        const std::size_t k = shards_.size();
        if (k <= 1)
            return 0.0;
        double mean = 0;
        for (const auto &s : shards_)
            mean += static_cast<double>(s->stats().walks);
        mean /= static_cast<double>(k);
        if (mean <= 0)
            return 0.0;
        double var = 0;
        for (const auto &s : shards_) {
            double d = static_cast<double>(s->stats().walks) - mean;
            var += d * d;
        }
        return std::sqrt(var / static_cast<double>(k)) / mean;
    }

    /** Worst shard's mean queue wait over the mean of per-shard means
     *  — the "worst shard is 3-4x the mean" pod-study headline. */
    double
    shardWaitRatio() const
    {
        if (shards_.size() <= 1)
            return shards_.empty() ? 0.0 : 1.0;
        double worst = 0, sum = 0;
        for (const auto &s : shards_) {
            const auto &w = s->stats().queueWait;
            double m = w.count() ? w.sum() / static_cast<double>(
                                                 w.count())
                                 : 0.0;
            worst = std::max(worst, m);
            sum += m;
        }
        double mean = sum / static_cast<double>(shards_.size());
        return mean > 0 ? worst / mean : 0.0;
    }

    // --- aggregated views (collect(), report) ------------------------------
    double
    tlbHitRate() const
    {
        std::uint64_t lookups = 0, hits = 0;
        for (const auto &s : shards_) {
            lookups += s->tlb().lookups();
            hits += s->tlb().hits();
        }
        return lookups ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
    }

    // --- observability ------------------------------------------------------
    void
    attachSpans(obs::SpanRecorder *spans)
    {
        for (auto &s : shards_)
            s->attachSpans(spans);
    }
    void
    attachAttribution(obs::AttribSink *attrib)
    {
        attrib_ = attrib;
        for (auto &s : shards_)
            s->attachAttribution(attrib);
    }
    void
    attachProfiler(obs::SelfProfiler *profiler)
    {
        for (auto &s : shards_)
            s->attachProfiler(profiler);
    }

    /**
     * Register gauges under "<prefix>.". K = 1 delegates to the single
     * shard — the exact pre-shard names and values. K > 1 registers
     * cluster aggregates under the same names (the sampler columns
     * keep resolving) plus one subtree per shard, whose queueDepth /
     * queueWaitMean gauges are the per-shard walk-queue occupancy the
     * pod scaling study plots.
     */
    void
    registerMetrics(obs::MetricRegistry &reg,
                    const std::string &prefix) const
    {
        if (shards_.size() == 1) {
            shards_[0]->registerMetrics(reg, prefix);
            return;
        }
        auto sum = [this](std::uint64_t HostMmu::Stats::*field) {
            std::uint64_t n = 0;
            for (const auto &s : shards_)
                n += s->stats().*field;
            return static_cast<double>(n);
        };
        reg.registerGauge(prefix + ".faults", [sum] {
            return sum(&HostMmu::Stats::faults);
        });
        reg.registerGauge(prefix + ".tlbHits", [sum] {
            return sum(&HostMmu::Stats::tlbHits);
        });
        reg.registerGauge(prefix + ".walks", [sum] {
            return sum(&HostMmu::Stats::walks);
        });
        reg.registerGauge(prefix + ".memAccesses", [sum] {
            return sum(&HostMmu::Stats::memAccesses);
        });
        reg.registerGauge(prefix + ".forwards", [sum] {
            return sum(&HostMmu::Stats::forwards);
        });
        reg.registerGauge(prefix + ".forwardSuccess", [sum] {
            return sum(&HostMmu::Stats::forwardSuccess);
        });
        reg.registerGauge(prefix + ".forwardFail", [sum] {
            return sum(&HostMmu::Stats::forwardFail);
        });
        reg.registerGauge(prefix + ".duplicateWalks", [sum] {
            return sum(&HostMmu::Stats::duplicateWalks);
        });
        reg.registerGauge(prefix + ".removedFromQueue", [sum] {
            return sum(&HostMmu::Stats::removedFromQueue);
        });
        reg.registerGauge(prefix + ".queueOverflows", [sum] {
            return sum(&HostMmu::Stats::queueOverflows);
        });
        reg.registerGauge(prefix + ".queueDepth", [this] {
            double n = 0;
            for (const auto &s : shards_)
                n += static_cast<double>(s->queueDepth());
            return n;
        });
        reg.registerGauge(prefix + ".queueWaitMean", [this] {
            double sum_w = 0;
            std::uint64_t n = 0;
            for (const auto &s : shards_) {
                sum_w += s->stats().queueWait.sum();
                n += s->stats().queueWait.count();
            }
            return n ? sum_w / static_cast<double>(n) : 0.0;
        });
        // Shards at/past the Section IV-C trigger right now (0..K).
        reg.registerGauge(prefix + ".queueAboveTrigger", [this] {
            double n = 0;
            for (const auto &s : shards_)
                if (s->queueDepth() >= cfg_.forwardQueueTrigger())
                    n += 1.0;
            return n;
        });
        reg.registerGauge(prefix + ".routedFaults", [this] {
            return static_cast<double>(routedFaults_);
        });
        // The steering crossbar as its own component: traffic, the
        // cycles it charged to HostRoute, and how evenly its hash is
        // spreading the load — without these a sharded run's host
        // section reported nothing about the crossbar at all.
        reg.registerGauge(prefix + ".crossbar.routedFaults", [this] {
            return static_cast<double>(routedFaults_);
        });
        reg.registerGauge(prefix + ".crossbar.routeCycles", [this] {
            return static_cast<double>(routedFaults_) *
                   static_cast<double>(kRouteCycles);
        });
        reg.registerGauge(prefix + ".crossbar.loadShareMax",
                          [this] { return shardLoadShareMax(); });
        reg.registerGauge(prefix + ".crossbar.loadCv",
                          [this] { return shardLoadCv(); });
        reg.registerGauge(prefix + ".crossbar.waitRatio",
                          [this] { return shardWaitRatio(); });
        reg.registerGauge(prefix + ".tlb.hitRate",
                          [this] { return tlbHitRate(); });
        reg.registerGauge(prefix + ".pwc.hitRate", [this] {
            std::uint64_t lookups = 0, misses = 0;
            for (const auto &s : shards_) {
                lookups += s->pwc().lookups();
                misses += s->pwc().hitLevels().bucket(0);
            }
            return lookups ? 1.0 - static_cast<double>(misses) /
                                       static_cast<double>(lookups)
                           : 0.0;
        });
        for (int s = 0; s < shards(); ++s)
            shards_[static_cast<std::size_t>(s)]->registerMetrics(
                reg, prefix + sim::strfmt(".shard%d", s));
    }

  private:
    int
    hashShard(mem::Vpn vpn) const
    {
        return core::shardOfVpnGroup(vpn, cfg_.transFw.vpnMaskBits,
                                     static_cast<int>(shards_.size()));
    }

    int
    routeShard(mem::Vpn vpn)
    {
        if (!roundRobin_)
            return hashShard(vpn);
        const int s = rrNext_;
        rrNext_ = (rrNext_ + 1) % static_cast<int>(shards_.size());
        return s;
    }

    sim::EventQueue &eq_;
    const cfg::SystemConfig &cfg_;
    bool roundRobin_;
    std::vector<std::unique_ptr<HostMmu>> shards_;
    obs::AttribSink *attrib_ = nullptr;
    int rrNext_ = 0;
    std::uint64_t routedFaults_ = 0;
};

} // namespace transfw::mmu

#endif // TRANSFW_MMU_HOST_MMU_CLUSTER_HPP
