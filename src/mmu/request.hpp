#ifndef TRANSFW_MMU_REQUEST_HPP
#define TRANSFW_MMU_REQUEST_HPP

#include <cstdint>

#include "mem/address.hpp"
#include "obs/attrib.hpp"
#include "sim/pool.hpp"
#include "sim/ticks.hpp"
#include "stats/stats.hpp"
#include "tlb/tlb.hpp"

namespace transfw::mmu {

/**
 * One outstanding address translation that missed the GPU L2 TLB (the
 * unit of work for the whole GMMU / host MMU machinery). Requests are
 * slab-pooled (sim::ObjectPool) and shared by intrusive refcount
 * between the GMMU, the host MMU's per-page fault lists, and any
 * in-flight remote lookup referencing them — create with makeRequest(),
 * never by hand, so the hot path stays allocation-free.
 */
struct XlatRequest : public sim::Pooled<XlatRequest>
{
    std::uint64_t id = 0;
    mem::Vpn vpn = 0;   ///< in system page units (4 KB or 2 MB)
    int gpu = 0;        ///< requesting GPU
    int cu = 0;         ///< requesting CU (for L1 fill)
    int hostShard = 0;  ///< host-MMU shard handling the far fault
    bool isWrite = false;
    bool protectionFault = false; ///< write hit on a read-only replica

    sim::Tick tIssue = 0;      ///< when the L2 TLB miss entered the GMMU path
    sim::Tick tHostArrive = 0; ///< when the fault reached the host side

    /** Per-component latency, accumulated as the request moves. */
    stats::LatencyBreakdown lat;

    // --- lifecycle flags ---------------------------------------------------
    bool shortCircuited = false;   ///< PRT miss skipped the local walk
    bool faulted = false;          ///< went through the far-fault path
    bool translationResolved = false; ///< owner/PA known (first wins)
    bool hostWalkCancelled = false;   ///< removed from host PW-queue after
                                      ///  a successful remote lookup
    bool remoteForwarded = false;     ///< an FT forward was launched
    bool resolvedByRemote = false;    ///< a remote lookup supplied the
                                      ///  translation: the owner pushes the
                                      ///  page and replies to the requester
                                      ///  directly (Fig. 10, path I)

    /** Final translation delivered back to the requesting GPU. */
    tlb::TlbEntry result;
};

using XlatPtr = sim::PoolRef<XlatRequest>;

/**
 * The one way components charge translation latency: updates the
 * request's LatencyBreakdown field (chosen by the bucket's fieldOf
 * mapping) and mirrors the charge into the attribution engine in the
 * same step. Because both views are fed by this single call, the
 * engine's per-request bucket sums equal the breakdown by construction
 * — which is exactly the invariant obs::Checks enforces at finish.
 *
 * @p attrib may be null (observability detached); under TRANSFW_OBS=0
 * the mirror compiles out and only the breakdown update remains. The
 * sink is the engine itself on the host lane and an AttribRelay on a
 * GPU lane (replayed at the next window barrier).
 */
inline void
charge(XlatRequest &req, obs::AttribSink *attrib,
       obs::AttribBucket bucket, double cycles, sim::Tick now)
{
    switch (obs::fieldOf(bucket)) {
      case obs::LatField::GmmuQueue:
        req.lat.gmmuQueue += cycles;
        break;
      case obs::LatField::GmmuMem:
        req.lat.gmmuMem += cycles;
        break;
      case obs::LatField::HostQueue:
        req.lat.hostQueue += cycles;
        break;
      case obs::LatField::HostMem:
        req.lat.hostMem += cycles;
        break;
      case obs::LatField::Migration:
        req.lat.migration += cycles;
        break;
      case obs::LatField::Network:
        req.lat.network += cycles;
        break;
      default:
        req.lat.other += cycles;
        break;
    }
#if TRANSFW_OBS
    if (attrib)
        attrib->charge(req.gpu, req.id, bucket, cycles, now);
#else
    (void)attrib;
    (void)now;
#endif
}

/**
 * Edge-tagged variant of charge() for interconnect traversals: the
 * breakdown update is identical (the hop's wait + ser + prop total
 * lands in the bucket's field), but the attribution mirror records
 * *which* edge the cycles came from, accumulating per-record hop sums
 * that obs::Checks proves equal the Network/HostRoute buckets. Every
 * Network and HostRoute charge site must use this form — a plain
 * charge() into those buckets alongside tagged hops trips the
 * watchdog's per-hop balance check.
 */
inline void
chargeHop(XlatRequest &req, obs::AttribSink *attrib,
          obs::AttribBucket bucket, const obs::AttribHop &hop,
          sim::Tick now)
{
    double cycles = hop.total();
    switch (obs::fieldOf(bucket)) {
      case obs::LatField::GmmuQueue:
        req.lat.gmmuQueue += cycles;
        break;
      case obs::LatField::GmmuMem:
        req.lat.gmmuMem += cycles;
        break;
      case obs::LatField::HostQueue:
        req.lat.hostQueue += cycles;
        break;
      case obs::LatField::HostMem:
        req.lat.hostMem += cycles;
        break;
      case obs::LatField::Migration:
        req.lat.migration += cycles;
        break;
      case obs::LatField::Network:
        req.lat.network += cycles;
        break;
      default:
        req.lat.other += cycles;
        break;
    }
#if TRANSFW_OBS
    if (attrib)
        attrib->hop(req.gpu, req.id, bucket, hop, /*counted=*/true, now);
#else
    (void)attrib;
    (void)now;
#endif
}

/** Allocate a fresh (default-initialised) request from this thread's pool. */
inline XlatPtr
makeRequest()
{
    return sim::makePooled<XlatRequest>();
}

/**
 * A Trans-FW remote lookup: the host MMU borrowing a peer GPU's
 * PT-walk machinery for a congested fault (Section IV-C).
 */
struct RemoteLookup : public sim::Pooled<RemoteLookup>
{
    XlatPtr req;        ///< the fault being short-circuited
    int targetGpu = 0;  ///< owner candidate from the Forwarding Table
    bool success = false;
    tlb::TlbEntry result;
    sim::Tick tForwarded = 0;
};

using RemoteLookupPtr = sim::PoolRef<RemoteLookup>;

/** Allocate a fresh remote lookup from this thread's pool. */
inline RemoteLookupPtr
makeRemoteLookup()
{
    return sim::makePooled<RemoteLookup>();
}

} // namespace transfw::mmu

#endif // TRANSFW_MMU_REQUEST_HPP
