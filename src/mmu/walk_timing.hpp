#ifndef TRANSFW_MMU_WALK_TIMING_HPP
#define TRANSFW_MMU_WALK_TIMING_HPP

#include "config/config.hpp"
#include "sim/random.hpp"

namespace transfw::mmu {

/** Serialized latency and access accounting for one PT-walk. */
struct WalkTiming
{
    int serialAccesses = 0;  ///< accesses on the latency critical path
    int countedAccesses = 0; ///< total memory accesses issued
};

/**
 * Compute the timing of a walk needing @p accesses page-table memory
 * reads. ASAP-style prefetching (Section V-H) predicts the addresses
 * of the two lowest levels from flattened offsets as soon as the walk
 * starts: when the prediction is right those reads overlap the upper
 * levels (shorter serial chain, same access count); when wrong, the
 * two prefetches are wasted extra accesses.
 */
inline WalkTiming
walkTiming(int accesses, const cfg::AsapConfig &asap, sim::Rng &rng)
{
    WalkTiming t{accesses, accesses};
    if (asap.enabled && accesses >= 3) {
        if (rng.chance(asap.accuracy)) {
            t.serialAccesses = accesses - 2;
        } else {
            t.countedAccesses = accesses + 2;
        }
    }
    return t;
}

} // namespace transfw::mmu

#endif // TRANSFW_MMU_WALK_TIMING_HPP
