#include "obs/attrib.hpp"

#include "obs/checks.hpp"

namespace transfw::obs {

const char *
bucketName(AttribBucket b)
{
    switch (b) {
      case AttribBucket::L2TlbQueue:
        return "l2tlbQueue";
      case AttribBucket::GmmuQueue:
        return "gmmuQueue";
      case AttribBucket::GmmuWalkMem:
        return "gmmuWalkMem";
      case AttribBucket::FaultFixed:
        return "faultFixed";
      case AttribBucket::PrtLookup:
        return "prtLookup";
      case AttribBucket::LeastTlbProbe:
        return "leastTlbProbe";
      case AttribBucket::Network:
        return "network";
      case AttribBucket::HostTlb:
        return "hostTlb";
      case AttribBucket::HostRoute:
        return "hostRoute";
      case AttribBucket::HostQueue:
        return "hostQueue";
      case AttribBucket::HostWalkMem:
        return "hostWalkMem";
      case AttribBucket::FtProbe:
        return "ftProbe";
      case AttribBucket::RemoteWalk:
        return "remoteWalk";
      case AttribBucket::Migration:
        return "migration";
      case AttribBucket::Shootdown:
        return "shootdown";
      case AttribBucket::PteInstall:
        return "pteInstall";
      case AttribBucket::Replay:
        return "replay";
      default:
        return "other";
    }
}

double
AttributionTable::bucketTotal() const
{
    double sum = 0;
    for (double b : bucket)
        sum += b;
    return sum;
}

double
AttributionTable::fieldTotal(LatField field) const
{
    double sum = 0;
    for (std::size_t i = 0; i < kNumAttribBuckets; ++i)
        if (fieldOf(static_cast<AttribBucket>(i)) == field)
            sum += bucket[i];
    return sum;
}

#if TRANSFW_OBS

void
AttributionEngine::setEnabled(bool on)
{
    enabled_ = on;
}

void
AttributionEngine::setKeepTimelines(bool on)
{
    keepTimelines_ = on;
}

AttributionEngine::Record *
AttributionEngine::lookup(int gpu, std::uint64_t id)
{
    auto it = live_.find(key(gpu, id));
    return it == live_.end() ? nullptr : &it->second;
}

void
AttributionEngine::note(Record &rec, sim::Tick tick,
                        AttribEvent::Kind kind, AttribBucket bucket,
                        double cycles)
{
    if (!keepTimelines_)
        return;
    AttribEvent ev;
    ev.tick = tick;
    ev.kind = kind;
    ev.bucket = bucket;
    ev.cycles = cycles;
    rec.tl.events.push_back(ev);
}

void
AttributionEngine::maybeRelease(int gpu, std::uint64_t id, Record &rec)
{
    // A record stays live while it can still receive events: before
    // finish (charges), while a race awaits the remote reply (Open) or
    // the losing host walk's report (RemoteWon).
    if (!rec.finished || rec.race != Record::Race::None || keepTimelines_)
        return;
    live_.erase(key(gpu, id));
}

void
AttributionEngine::begin(int gpu, std::uint64_t id, std::uint64_t vpn,
                         sim::Tick now)
{
    if (!enabled_)
        return;
    Record rec;
    rec.tl.vpn = vpn;
    rec.tl.tIssue = now;
    live_.insert_or_assign(key(gpu, id), std::move(rec));
}

void
AttributionEngine::charge(int gpu, std::uint64_t id, AttribBucket bucket,
                          double cycles, sim::Tick now)
{
    if (!enabled_)
        return;
    Record *rec = lookup(gpu, id);
    if (!rec)
        return;
    if (rec->finished) {
        // Race loser still in flight after first-reply-wins resolved
        // the request: off the critical path, so ledger-only.
        ++table_.lateCharges;
        table_.lateCycles += cycles;
        note(*rec, now, AttribEvent::Kind::Charge, bucket, cycles);
        return;
    }
    rec->tl.bucket[static_cast<std::size_t>(bucket)] += cycles;
    note(*rec, now, AttribEvent::Kind::Charge, bucket, cycles);
}

void
AttributionEngine::noteHop(Record &rec, sim::Tick tick,
                           AttribBucket bucket, const AttribHop &h)
{
    if (!keepTimelines_)
        return;
    AttribEvent ev;
    ev.tick = tick;
    ev.kind = AttribEvent::Kind::NetworkHop;
    ev.bucket = bucket;
    ev.cycles = h.total();
    ev.hopFrom = h.from;
    ev.hopTo = h.to;
    ev.hopWait = static_cast<float>(h.wait);
    ev.hopSer = static_cast<float>(h.ser);
    ev.hopProp = static_cast<float>(h.prop);
    rec.tl.events.push_back(ev);
}

void
AttributionEngine::hop(int gpu, std::uint64_t id, AttribBucket bucket,
                       const AttribHop &h, bool counted, sim::Tick now)
{
    if (!enabled_)
        return;
    Record *rec = lookup(gpu, id);
    if (!rec)
        return;
    double cycles = h.total();
    if (counted) {
        if (rec->finished) {
            // Same quarantine as charge(): race losers still in flight
            // stay off the critical-path buckets (and the hop sums, so
            // the two sides of the invariant move together).
            ++table_.lateCharges;
            table_.lateCycles += cycles;
            noteHop(*rec, now, bucket, h);
            return;
        }
        rec->tl.bucket[static_cast<std::size_t>(bucket)] += cycles;
        rec->tl.sawCountedHop = true;
        if (bucket == AttribBucket::Network)
            rec->tl.netHopCycles += cycles;
        else if (bucket == AttribBucket::HostRoute)
            rec->tl.routeHopCycles += cycles;
    }
    noteHop(*rec, now, bucket, h);
}

void
AttributionEngine::shortCircuited(int gpu, std::uint64_t id,
                                  double est_saved, sim::Tick now)
{
    if (!enabled_)
        return;
    Record *rec = lookup(gpu, id);
    if (!rec)
        return;
    rec->shortCircuit = true;
    ++table_.shortCircuits;
    table_.shortCircuitSavedEstCycles += est_saved;
    note(*rec, now, AttribEvent::Kind::ShortCircuit,
         AttribBucket::PrtLookup, est_saved);
}

void
AttributionEngine::forwardLaunched(int gpu, std::uint64_t id,
                                   sim::Tick now)
{
    if (!enabled_)
        return;
    Record *rec = lookup(gpu, id);
    if (!rec)
        return;
    rec->race = Record::Race::Open;
    rec->tForward = now;
    ++table_.forwards;
    note(*rec, now, AttribEvent::Kind::ForwardLaunched,
         AttribBucket::Other, 0);
}

void
AttributionEngine::forwardOutcome(int gpu, std::uint64_t id, bool success,
                                  bool won, double est_saved,
                                  sim::Tick now)
{
    if (!enabled_)
        return;
    Record *rec = lookup(gpu, id);
    if (!rec || rec->race != Record::Race::Open)
        return;
    double remote_service = static_cast<double>(now - rec->tForward);
    if (!success) {
        ++table_.failedForwards;
        table_.forwardWastedCycles += remote_service;
        rec->race = Record::Race::None;
        note(*rec, now, AttribEvent::Kind::ForwardFailed,
             AttribBucket::Other, remote_service);
    } else if (won) {
        ++table_.remoteWins;
        table_.forwardSavedEstCycles += est_saved;
        rec->tWin = now;
        // Driver forwards have no parallel walk racing them: the win
        // closes the race outright. Hardware forwards stay open until
        // the losing host walk reports back (duplicate or cancelled),
        // which is when the measured saving becomes known.
        rec->race = est_saved > 0 ? Record::Race::None
                                  : Record::Race::RemoteWon;
        note(*rec, now, AttribEvent::Kind::RemoteWon, AttribBucket::Other,
             est_saved);
    } else {
        // The host walk already resolved the request: this forward's
        // remote service bought nothing.
        ++table_.hostWins;
        table_.forwardWastedCycles += remote_service;
        rec->race = Record::Race::None;
        note(*rec, now, AttribEvent::Kind::HostWon, AttribBucket::Other,
             remote_service);
    }
    maybeRelease(gpu, id, *rec);
}

void
AttributionEngine::hostWalkDone(int gpu, std::uint64_t id, bool duplicate,
                                sim::Tick now)
{
    if (!enabled_)
        return;
    Record *rec = lookup(gpu, id);
    if (!rec)
        return;
    if (duplicate && rec->race == Record::Race::RemoteWon) {
        // The loser just crossed the finish line: the forward saved
        // exactly the tail the host walk still needed after the win.
        ++table_.duplicateHostWalks;
        table_.forwardSavedCycles += static_cast<double>(now - rec->tWin);
        rec->race = Record::Race::None;
        note(*rec, now, AttribEvent::Kind::DuplicateHostWalk,
             AttribBucket::Other, static_cast<double>(now - rec->tWin));
        maybeRelease(gpu, id, *rec);
    }
}

void
AttributionEngine::hostWalkCancelled(int gpu, std::uint64_t id,
                                     double est_walk, sim::Tick now)
{
    if (!enabled_)
        return;
    Record *rec = lookup(gpu, id);
    if (!rec)
        return;
    if (rec->race == Record::Race::RemoteWon) {
        // The loser never even started; estimate the walk it skipped.
        ++table_.cancelledHostWalks;
        table_.forwardSavedEstCycles += est_walk;
        rec->race = Record::Race::None;
        note(*rec, now, AttribEvent::Kind::HostWalkCancelled,
             AttribBucket::Other, est_walk);
        maybeRelease(gpu, id, *rec);
    }
}

void
AttributionEngine::finish(int gpu, std::uint64_t id,
                          const stats::LatencyBreakdown &lat,
                          bool short_circuit, sim::Tick now)
{
    if (!enabled_)
        return;
    Record *rec = lookup(gpu, id);
    if (!rec || rec->finished)
        return;
    rec->finished = true;
    rec->tl.tFinish = now;
    rec->tl.total = lat.total();
    rec->shortCircuit = rec->shortCircuit || short_circuit;
    note(*rec, now, AttribEvent::Kind::Finish, AttribBucket::Other,
         lat.total());

    ++table_.requests;
    for (std::size_t i = 0; i < kNumAttribBuckets; ++i)
        table_.bucket[i] += rec->tl.bucket[i];

    if (rec->tl.total > slowestWall_) {
        slowestWall_ = rec->tl.total;
        slowestGpu_ = gpu;
        slowestId_ = id;
    }

    if (checks_)
        checks_->onFinish(gpu, id, rec->tl, rec->shortCircuit, lat);

    maybeRelease(gpu, id, *rec);
}

void
AttributionEngine::finalize()
{
    if (!enabled_)
        return;
    for (const auto &[k, rec] : live_) {
        (void)k;
        if (rec.race == Record::Race::Open ||
            rec.race == Record::Race::RemoteWon)
            ++table_.unresolvedRaces;
    }
}

const AttributionEngine::Timeline *
AttributionEngine::timeline(int gpu, std::uint64_t id) const
{
    const Record *rec =
        const_cast<AttributionEngine *>(this)->lookup(gpu, id);
    return rec ? &rec->tl : nullptr;
}

std::pair<int, std::uint64_t>
AttributionEngine::slowestRequest() const
{
    return {slowestGpu_, slowestId_};
}

#else // !TRANSFW_OBS

void
AttributionEngine::setEnabled(bool)
{
}

void
AttributionEngine::setKeepTimelines(bool)
{
}

void
AttributionEngine::begin(int, std::uint64_t, std::uint64_t, sim::Tick)
{
}

void
AttributionEngine::charge(int, std::uint64_t, AttribBucket, double,
                          sim::Tick)
{
}

void
AttributionEngine::hop(int, std::uint64_t, AttribBucket,
                       const AttribHop &, bool, sim::Tick)
{
}

void
AttributionEngine::shortCircuited(int, std::uint64_t, double, sim::Tick)
{
}

void
AttributionEngine::forwardLaunched(int, std::uint64_t, sim::Tick)
{
}

void
AttributionEngine::forwardOutcome(int, std::uint64_t, bool, bool, double,
                                  sim::Tick)
{
}

void
AttributionEngine::hostWalkDone(int, std::uint64_t, bool, sim::Tick)
{
}

void
AttributionEngine::hostWalkCancelled(int, std::uint64_t, double,
                                     sim::Tick)
{
}

void
AttributionEngine::finish(int, std::uint64_t,
                          const stats::LatencyBreakdown &, bool,
                          sim::Tick)
{
}

void
AttributionEngine::finalize()
{
}

const AttributionEngine::Timeline *
AttributionEngine::timeline(int, std::uint64_t) const
{
    return nullptr;
}

std::pair<int, std::uint64_t>
AttributionEngine::slowestRequest() const
{
    return {-1, 0};
}

AttributionEngine::Record *
AttributionEngine::lookup(int, std::uint64_t)
{
    return nullptr;
}

void
AttributionEngine::note(Record &, sim::Tick, AttribEvent::Kind,
                        AttribBucket, double)
{
}

void
AttributionEngine::noteHop(Record &, sim::Tick, AttribBucket,
                           const AttribHop &)
{
}

void
AttributionEngine::maybeRelease(int, std::uint64_t, Record &)
{
}

#endif // TRANSFW_OBS

} // namespace transfw::obs
