#ifndef TRANSFW_OBS_ATTRIB_HPP
#define TRANSFW_OBS_ATTRIB_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.hpp" // TRANSFW_OBS master switch
#include "sim/flat_map.hpp"
#include "sim/ticks.hpp"
#include "stats/stats.hpp"

namespace transfw::obs {

class Checks;

/**
 * Exhaustive, mutually-exclusive latency buckets for one translation.
 * Every cycle a request accumulates in its stats::LatencyBreakdown is
 * charged to exactly one bucket; the buckets refine the seven coarse
 * breakdown fields (Fig. 3) down to the individual mechanism, so the
 * report can show *which* penalty each Trans-FW path removes.
 *
 * The bucket -> field mapping (fieldOf) is the contract the invariant
 * watchdog enforces: summing an engine record's buckets grouped by
 * field must reproduce the request's LatencyBreakdown exactly.
 */
enum class AttribBucket : std::uint8_t
{
    L2TlbQueue,    ///< PW-queue overflow wait (parked in the L2 MSHRs)
    GmmuQueue,     ///< in-capacity wait for a local PT-walk thread
    GmmuWalkMem,   ///< local walk memory accesses (PW-cache misses)
    FaultFixed,    ///< hardware fault bookkeeping before leaving the GPU
    PrtLookup,     ///< Trans-FW PRT probe on the L2-miss path
    LeastTlbProbe, ///< sibling-L2 probe (Least-TLB comparison mode)
    Network,       ///< CPU-GPU / GPU-GPU interconnect hops
    HostTlb,       ///< host MMU TLB lookup on fault admission
    HostRoute,     ///< IOMMU shard-steering crossbar (hostShards > 1)
    HostQueue,     ///< host PW-queue / driver walk-queue wait
    HostWalkMem,   ///< host walk memory accesses (hardware or software)
    FtProbe,       ///< driver-side Forwarding Table probe (CPU memory)
    RemoteWalk,    ///< borrowed remote GMMU service (queue + walk)
    Migration,     ///< far-fault data transfer + per-page serialization
    Shootdown,     ///< stale-copy invalidation on the critical path
    PteInstall,    ///< remote-map PTE install
    Replay,        ///< faulted access replay after resolution
    Other,         ///< escape hatch; no shipped call site charges it
    kCount
};

constexpr std::size_t kNumAttribBuckets =
    static_cast<std::size_t>(AttribBucket::kCount);

/** Which LatencyBreakdown field a bucket refines. */
enum class LatField : std::uint8_t
{
    GmmuQueue,
    GmmuMem,
    HostQueue,
    HostMem,
    Migration,
    Network,
    Other,
    kCount
};

constexpr LatField
fieldOf(AttribBucket b)
{
    switch (b) {
      case AttribBucket::L2TlbQueue:
      case AttribBucket::GmmuQueue:
        return LatField::GmmuQueue;
      case AttribBucket::GmmuWalkMem:
        return LatField::GmmuMem;
      case AttribBucket::HostRoute:
      case AttribBucket::HostQueue:
        return LatField::HostQueue;
      case AttribBucket::HostWalkMem:
        return LatField::HostMem;
      case AttribBucket::Migration:
        return LatField::Migration;
      case AttribBucket::Network:
        return LatField::Network;
      default:
        return LatField::Other;
    }
}

/** Stable dotted-key suffix for reports ("gmmuQueue", "remoteWalk"...). */
const char *bucketName(AttribBucket b);

/**
 * Aggregated attribution over one run: per-bucket cycle totals plus
 * the reply-race ledger. Lives in SimResults, so sweeps and the report
 * carry the full penalty decomposition per app/config.
 *
 * Race semantics (first-reply-wins, Section IV-C): a forward opens a
 * race between the host walk and the remote lookup. Cycles *saved* by
 * a winning forward are measured directly when the losing host walk
 * later finishes (loser-finish minus win time); when the losing walk
 * was cancelled before it started, or on the driver path (where the
 * forward replaces the walk outright), the avoided walk is estimated
 * and booked separately. Cycles *wasted* are the remote service time
 * of forwards that lost or failed.
 */
struct AttributionTable
{
    double bucket[kNumAttribBuckets] = {};
    std::uint64_t requests = 0; ///< finished translations folded in

    // --- reply-race ledger -------------------------------------------------
    std::uint64_t forwards = 0;
    std::uint64_t remoteWins = 0;        ///< forward replied first
    std::uint64_t hostWins = 0;          ///< host walk replied first
    std::uint64_t failedForwards = 0;    ///< FT false positives
    std::uint64_t cancelledHostWalks = 0;///< loser never left the queue
    std::uint64_t duplicateHostWalks = 0;///< loser walk ran to completion
    std::uint64_t unresolvedRaces = 0;   ///< still open at end of run
    double forwardSavedCycles = 0;    ///< measured: loser finish - win
    double forwardSavedEstCycles = 0; ///< estimated avoided walks
    double forwardWastedCycles = 0;   ///< remote service on lost forwards

    // --- PRT short circuits ------------------------------------------------
    std::uint64_t shortCircuits = 0;
    /** Estimated: the skipped local walk + fault bookkeeping. The
     *  avoided walk never executes, so it cannot be measured. */
    double shortCircuitSavedEstCycles = 0;

    // --- bookkeeping -------------------------------------------------------
    /** Charges arriving after a request finished (race losers still in
     *  flight). Off the critical path, so excluded from bucket[]. */
    std::uint64_t lateCharges = 0;
    double lateCycles = 0;

    double bucketTotal() const;
    /** Sum of the buckets mapping onto @p field. */
    double fieldTotal(LatField field) const;
};

/**
 * One traversed edge of a routed message, as reported to the
 * attribution engine: the node pair plus the queue-wait /
 * serialization / propagation split of that hop. Node id -1 is the
 * host; ids >= numGpus are internal switch nodes.
 */
struct AttribHop
{
    std::int16_t from = -1;
    std::int16_t to = -1;
    double wait = 0;
    double ser = 0;
    double prop = 0;

    double total() const { return wait + ser + prop; }
};

/** One step of a request's causal timeline (kept on demand). */
struct AttribEvent
{
    sim::Tick tick = 0;
    AttribBucket bucket = AttribBucket::Other; ///< for Charge events
    enum class Kind : std::uint8_t
    {
        Charge,
        ShortCircuit,
        ForwardLaunched,
        ForwardFailed,
        RemoteWon,
        HostWon,
        HostWalkCancelled,
        DuplicateHostWalk,
        Finish,
        NetworkHop, ///< one traversed edge (hop fields below are valid)
    } kind = Kind::Charge;
    double cycles = 0;
    // --- NetworkHop only ---------------------------------------------------
    std::int16_t hopFrom = 0;
    std::int16_t hopTo = 0;
    float hopWait = 0;
    float hopSer = 0;
    float hopProp = 0;
};

/**
 * Where components deliver attribution lifecycle reports. Two
 * implementations: the AttributionEngine itself (host-lane components
 * and the serial kernel write straight through), and AttribRelay (GPU
 * lanes buffer their reports and the window barrier replays them into
 * the engine in deterministic lane order). The interface is exactly
 * the engine's lifecycle surface, so a component neither knows nor
 * cares which side of a lane boundary it runs on.
 */
class AttribSink
{
  public:
    virtual ~AttribSink() = default;

    virtual void begin(int gpu, std::uint64_t id, std::uint64_t vpn,
                       sim::Tick now) = 0;
    virtual void charge(int gpu, std::uint64_t id, AttribBucket bucket,
                        double cycles, sim::Tick now) = 0;
    /**
     * One traversed edge of a routed message carrying this request.
     * When @p counted is true this *is* the charge — the hop's total
     * lands in @p bucket exactly like charge(), and additionally
     * accumulates into the record's per-hop sum so the watchdog can
     * prove sum-of-edges == bucket. When false the hop is
     * timeline-only (e.g. migration payload hops, which stay charged
     * as one Migration lump).
     */
    virtual void hop(int gpu, std::uint64_t id, AttribBucket bucket,
                     const AttribHop &h, bool counted, sim::Tick now) = 0;
    virtual void shortCircuited(int gpu, std::uint64_t id,
                                double est_saved, sim::Tick now) = 0;
    virtual void forwardLaunched(int gpu, std::uint64_t id,
                                 sim::Tick now) = 0;
    virtual void forwardOutcome(int gpu, std::uint64_t id, bool success,
                                bool won, double est_saved,
                                sim::Tick now) = 0;
    virtual void hostWalkDone(int gpu, std::uint64_t id, bool duplicate,
                              sim::Tick now) = 0;
    virtual void hostWalkCancelled(int gpu, std::uint64_t id,
                                   double est_walk, sim::Tick now) = 0;
    virtual void finish(int gpu, std::uint64_t id,
                        const stats::LatencyBreakdown &lat,
                        bool short_circuit, sim::Tick now) = 0;
};

/**
 * Per-request latency-attribution engine. Components report every
 * LatencyBreakdown charge through mmu::charge(), which updates the
 * request's breakdown and this engine's per-request record in one
 * step — the bucket sums therefore equal the breakdown by
 * construction, and obs::Checks verifies that at finish time.
 *
 * Purely observational: the engine never schedules events or touches
 * request state, so simulated timing is identical with it on or off.
 * Compiled out entirely under TRANSFW_OBS=0, like SpanRecorder.
 */
class AttributionEngine : public AttribSink
{
  public:
    bool enabled() const { return enabled_; }
    void setEnabled(bool on);

    /** Retain per-request timelines (explain_request). Off by default:
     *  records are released as soon as their race closes. */
    void setKeepTimelines(bool on);
    bool keepTimelines() const { return keepTimelines_; }

    /** Watchdog consulted at finish() (nullable). */
    void attachChecks(Checks *checks) { checks_ = checks; }

    // --- lifecycle (called from the components) ---------------------------
    void begin(int gpu, std::uint64_t id, std::uint64_t vpn,
               sim::Tick now) override;
    void charge(int gpu, std::uint64_t id, AttribBucket bucket,
                double cycles, sim::Tick now) override;
    void hop(int gpu, std::uint64_t id, AttribBucket bucket,
             const AttribHop &h, bool counted, sim::Tick now) override;
    void shortCircuited(int gpu, std::uint64_t id, double est_saved,
                        sim::Tick now) override;
    void forwardLaunched(int gpu, std::uint64_t id,
                         sim::Tick now) override;
    /** Remote reply arrived. @p won: it beat the host walk. @p est_saved
     *  is the avoided-walk estimate for paths with no measurable loser
     *  (driver forwards); 0 on the hardware path. */
    void forwardOutcome(int gpu, std::uint64_t id, bool success,
                        bool won, double est_saved,
                        sim::Tick now) override;
    /** Host walk completed. @p duplicate: the remote reply had already
     *  resolved the request (this walk was the race loser). */
    void hostWalkDone(int gpu, std::uint64_t id, bool duplicate,
                      sim::Tick now) override;
    /** The losing host walk was pulled from the PW-queue before it
     *  started; @p est_walk estimates the walk it avoided. */
    void hostWalkCancelled(int gpu, std::uint64_t id, double est_walk,
                           sim::Tick now) override;
    void finish(int gpu, std::uint64_t id,
                const stats::LatencyBreakdown &lat, bool short_circuit,
                sim::Tick now) override;

    /** Count still-open races; call once after the event queue drains. */
    void finalize();

    const AttributionTable &table() const { return table_; }

    /** Requests currently tracked (unfinished or open-race). */
    std::size_t liveRequests() const { return live_.size(); }

    // --- timeline access (keepTimelines mode) ------------------------------
    struct Timeline
    {
        std::uint64_t vpn = 0;
        sim::Tick tIssue = 0;
        sim::Tick tFinish = 0;
        double total = 0; ///< LatencyBreakdown::total() at finish
        double bucket[kNumAttribBuckets] = {};
        /** Cycles that arrived via counted hops, split by bucket — the
         *  watchdog proves these equal the buckets themselves. */
        double netHopCycles = 0;
        double routeHopCycles = 0;
        bool sawCountedHop = false;
        std::vector<AttribEvent> events;
    };

    /** Timeline of one request, or nullptr (unknown / not kept). */
    const Timeline *timeline(int gpu, std::uint64_t id) const;
    /** (gpu, id) of the slowest finished request; gpu < 0 when none. */
    std::pair<int, std::uint64_t> slowestRequest() const;

  private:
    struct Record
    {
        Timeline tl;
        enum class Race : std::uint8_t
        {
            None,
            Open,
            RemoteWon,
        } race = Race::None;
        sim::Tick tForward = 0;
        sim::Tick tWin = 0;
        bool finished = false;
        bool shortCircuit = false;
    };

    static std::uint64_t
    key(int gpu, std::uint64_t id)
    {
        return (static_cast<std::uint64_t>(gpu + 1) << 48) | id;
    }

    Record *lookup(int gpu, std::uint64_t id);
    void note(Record &rec, sim::Tick tick, AttribEvent::Kind kind,
              AttribBucket bucket, double cycles);
    void noteHop(Record &rec, sim::Tick tick, AttribBucket bucket,
                 const AttribHop &h);
    /** Drop the record once it can no longer receive events. */
    void maybeRelease(int gpu, std::uint64_t id, Record &rec);

    bool enabled_ = false;
    bool keepTimelines_ = false;
    Checks *checks_ = nullptr;
    AttributionTable table_;
    sim::FlatMap<std::uint64_t, Record> live_;
    double slowestWall_ = -1.0;
    int slowestGpu_ = -1;
    std::uint64_t slowestId_ = 0;
};

/**
 * Lane-local attribution buffer. GPU lanes execute concurrently, so
 * they cannot write into the shared AttributionEngine; instead each
 * lane's components report into its relay, and the window barrier
 * replays every relay into the engine in lane-index order (while all
 * lanes are quiescent). Replay order is deterministic — a fixed
 * traversal of per-lane FIFOs — so the engine's floating-point sums
 * and reply-race ledger come out byte-identical on every lane count.
 *
 * Same-request causality holds without sorting: a request's lifecycle
 * alternates between its GPU lane and the host lane only via link
 * messages at least one lookahead window apart, so two ops on the
 * same request never land in the same window on different lanes.
 */
class AttribRelay : public AttribSink
{
  public:
    void begin(int gpu, std::uint64_t id, std::uint64_t vpn,
               sim::Tick now) override
    {
        Op &op = push(Op::Kind::Begin, gpu, id, now);
        op.a = vpn;
    }

    void charge(int gpu, std::uint64_t id, AttribBucket bucket,
                double cycles, sim::Tick now) override
    {
        Op &op = push(Op::Kind::Charge, gpu, id, now);
        op.bucket = bucket;
        op.cycles = cycles;
    }

    void hop(int gpu, std::uint64_t id, AttribBucket bucket,
             const AttribHop &h, bool counted, sim::Tick now) override
    {
        Op &op = push(Op::Kind::Hop, gpu, id, now);
        op.bucket = bucket;
        op.hop = h;
        op.flag1 = counted;
    }

    void shortCircuited(int gpu, std::uint64_t id, double est_saved,
                        sim::Tick now) override
    {
        Op &op = push(Op::Kind::ShortCircuit, gpu, id, now);
        op.cycles = est_saved;
    }

    void forwardLaunched(int gpu, std::uint64_t id,
                         sim::Tick now) override
    {
        push(Op::Kind::ForwardLaunched, gpu, id, now);
    }

    void forwardOutcome(int gpu, std::uint64_t id, bool success,
                        bool won, double est_saved,
                        sim::Tick now) override
    {
        Op &op = push(Op::Kind::ForwardOutcome, gpu, id, now);
        op.flag1 = success;
        op.flag2 = won;
        op.cycles = est_saved;
    }

    void hostWalkDone(int gpu, std::uint64_t id, bool duplicate,
                      sim::Tick now) override
    {
        Op &op = push(Op::Kind::HostWalkDone, gpu, id, now);
        op.flag1 = duplicate;
    }

    void hostWalkCancelled(int gpu, std::uint64_t id, double est_walk,
                           sim::Tick now) override
    {
        Op &op = push(Op::Kind::HostWalkCancelled, gpu, id, now);
        op.cycles = est_walk;
    }

    void finish(int gpu, std::uint64_t id,
                const stats::LatencyBreakdown &lat, bool short_circuit,
                sim::Tick now) override
    {
        Op &op = push(Op::Kind::Finish, gpu, id, now);
        op.lat = lat;
        op.flag1 = short_circuit;
    }

    /** Replay the buffered ops into @p sink in FIFO order and clear. */
    void
    drainTo(AttribSink &sink)
    {
        for (const Op &op : ops_) {
            switch (op.kind) {
              case Op::Kind::Begin:
                sink.begin(op.gpu, op.id, op.a, op.now);
                break;
              case Op::Kind::Charge:
                sink.charge(op.gpu, op.id, op.bucket, op.cycles, op.now);
                break;
              case Op::Kind::Hop:
                sink.hop(op.gpu, op.id, op.bucket, op.hop, op.flag1,
                         op.now);
                break;
              case Op::Kind::ShortCircuit:
                sink.shortCircuited(op.gpu, op.id, op.cycles, op.now);
                break;
              case Op::Kind::ForwardLaunched:
                sink.forwardLaunched(op.gpu, op.id, op.now);
                break;
              case Op::Kind::ForwardOutcome:
                sink.forwardOutcome(op.gpu, op.id, op.flag1, op.flag2,
                                    op.cycles, op.now);
                break;
              case Op::Kind::HostWalkDone:
                sink.hostWalkDone(op.gpu, op.id, op.flag1, op.now);
                break;
              case Op::Kind::HostWalkCancelled:
                sink.hostWalkCancelled(op.gpu, op.id, op.cycles, op.now);
                break;
              case Op::Kind::Finish:
                sink.finish(op.gpu, op.id, op.lat, op.flag1, op.now);
                break;
            }
        }
        ops_.clear();
    }

    bool empty() const { return ops_.empty(); }

  private:
    struct Op
    {
        enum class Kind : std::uint8_t
        {
            Begin,
            Charge,
            Hop,
            ShortCircuit,
            ForwardLaunched,
            ForwardOutcome,
            HostWalkDone,
            HostWalkCancelled,
            Finish,
        };

        Kind kind = Kind::Charge;
        AttribBucket bucket = AttribBucket::Other;
        bool flag1 = false;
        bool flag2 = false;
        int gpu = 0;
        std::uint64_t id = 0;
        std::uint64_t a = 0; ///< vpn for Begin
        double cycles = 0;
        sim::Tick now = 0;
        AttribHop hop;               ///< Hop only
        stats::LatencyBreakdown lat; ///< Finish only
    };

    Op &
    push(typename Op::Kind kind, int gpu, std::uint64_t id,
         sim::Tick now)
    {
        Op &op = ops_.emplace_back();
        op.kind = kind;
        op.gpu = gpu;
        op.id = id;
        op.now = now;
        return op;
    }

    std::vector<Op> ops_;
};

} // namespace transfw::obs

#endif // TRANSFW_OBS_ATTRIB_HPP
