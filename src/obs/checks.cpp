#include "obs/checks.hpp"

#include <cmath>
#include <cstring>
#include <string_view>

#include "sim/flat_map.hpp"
#include "sim/logging.hpp"

namespace transfw::obs {

namespace {

/** Spans allowed to overhang their lane's "xlat" root: race losers and
 *  remote service that legitimately outlive the request they belong to
 *  under first-reply-wins, plus borrowed-GMMU lanes where a remote
 *  request's spans share a (pid, tid) lane with a local request. */
bool
mayOverhang(std::string_view name)
{
    return name == "host.forward" || name == "host.forward.fail" ||
           name == "driver.forward" || name == "driver.forward.fail" ||
           name == "gmmu.remote.queue" || name == "gmmu.remote.walk" ||
           name == "host.walk" || name == "host.queue";
}

} // namespace

void
Checks::violation(const std::string &msg)
{
    ++violations_;
    if (messages_.size() < kMaxMessages)
        messages_.push_back(msg);
#if TRANSFW_OBS_STRICT
    sim::panic("obs::Checks: " + msg);
#endif
}

void
Checks::onFinish(int gpu, std::uint64_t id,
                 const AttributionEngine::Timeline &tl, bool short_circuit,
                 const stats::LatencyBreakdown &lat)
{
    if (sampleMask_ != 0 && (id & sampleMask_) != 0)
        return;
    ++checked_;

    // Exhaustive + mutually exclusive: the buckets partition the
    // breakdown, so their sum must reproduce total() within one tick.
    constexpr double kTol = 1.0;
    double bucket_sum = 0;
    for (double b : tl.bucket)
        bucket_sum += b;
    if (std::abs(bucket_sum - lat.total()) > kTol) {
        violation(sim::strfmt(
            "gpu%d req %llu vpn 0x%llx: bucket sum %.1f != breakdown "
            "total %.1f",
            gpu, static_cast<unsigned long long>(id),
            static_cast<unsigned long long>(tl.vpn), bucket_sum,
            lat.total()));
        return;
    }

    // Classification: each bucket family must sum to its breakdown
    // field, not merely balance in aggregate.
    const struct
    {
        LatField field;
        double expect;
        const char *name;
    } fields[] = {
        {LatField::GmmuQueue, lat.gmmuQueue, "gmmuQueue"},
        {LatField::GmmuMem, lat.gmmuMem, "gmmuMem"},
        {LatField::HostQueue, lat.hostQueue, "hostQueue"},
        {LatField::HostMem, lat.hostMem, "hostMem"},
        {LatField::Migration, lat.migration, "migration"},
        {LatField::Network, lat.network, "network"},
        {LatField::Other, lat.other, "other"},
    };
    for (const auto &f : fields) {
        double got = 0;
        for (std::size_t i = 0; i < kNumAttribBuckets; ++i)
            if (fieldOf(static_cast<AttribBucket>(i)) == f.field)
                got += tl.bucket[i];
        if (std::abs(got - f.expect) > kTol) {
            violation(sim::strfmt(
                "gpu%d req %llu: %s buckets %.1f != breakdown field %.1f",
                gpu, static_cast<unsigned long long>(id), f.name, got,
                f.expect));
            return;
        }
    }

    // Per-hop attribution: once any counted hop touched this record,
    // every Network/HostRoute cycle must have arrived edge-tagged, so
    // the buckets equal their per-edge sums — sum-of-edges == bucket
    // by construction, and a call site that slips a plain charge into
    // either bucket breaks the balance and fires here.
    if (tl.sawCountedHop) {
        double net =
            tl.bucket[static_cast<std::size_t>(AttribBucket::Network)];
        double route =
            tl.bucket[static_cast<std::size_t>(AttribBucket::HostRoute)];
        if (std::abs(net - tl.netHopCycles) > kTol) {
            violation(sim::strfmt(
                "gpu%d req %llu: network bucket %.1f != per-hop sum %.1f",
                gpu, static_cast<unsigned long long>(id), net,
                tl.netHopCycles));
            return;
        }
        if (std::abs(route - tl.routeHopCycles) > kTol) {
            violation(sim::strfmt(
                "gpu%d req %llu: hostRoute bucket %.1f != per-hop sum "
                "%.1f",
                gpu, static_cast<unsigned long long>(id), route,
                tl.routeHopCycles));
            return;
        }
    }

    // PRT-negative short circuit skips the local walk entirely, so no
    // local-queue or local-walk cycles may have been charged.
    if (short_circuit) {
        double local =
            tl.bucket[static_cast<std::size_t>(AttribBucket::L2TlbQueue)] +
            tl.bucket[static_cast<std::size_t>(AttribBucket::GmmuQueue)] +
            tl.bucket[static_cast<std::size_t>(AttribBucket::GmmuWalkMem)];
        if (local > 0) {
            violation(sim::strfmt(
                "gpu%d req %llu: PRT short circuit but %.1f local-walk "
                "cycles charged",
                gpu, static_cast<unsigned long long>(id), local));
        }
    }
}

std::uint64_t
Checks::verifySpanNesting(const SpanRecorder &spans)
{
#if TRANSFW_OBS
    if (spans.dropped() > 0)
        return 0; // truncated lanes would alias as nesting breaks
    struct Lane
    {
        const Span *root = nullptr;
        std::vector<const Span *> children;
    };
    sim::FlatMap<std::uint64_t, Lane> lanes;
    for (const Span &s : spans.spans()) {
        if (s.pid >= SpanRecorder::kHostPid)
            continue; // host/obs lanes interleave requests; no root
        std::uint64_t lane_key =
            (static_cast<std::uint64_t>(s.pid) << 48) | s.tid;
        Lane &lane = lanes[lane_key];
        if (std::string_view(s.name) == "xlat")
            lane.root = &s;
        else
            lane.children.push_back(&s);
    }

    std::uint64_t before = violations_;
    for (const auto &kv : lanes) {
        const Lane &lane = kv.second;
        if (!lane.root)
            continue; // request never finished (or non-request lane)
        for (const Span *c : lane.children) {
            bool nests = c->start >= lane.root->start &&
                         c->end <= lane.root->end;
            if (!nests && !mayOverhang(c->name)) {
                violation(sim::strfmt(
                    "span '%s' [%llu, %llu] escapes its xlat root "
                    "[%llu, %llu] (pid %u tid %llu)",
                    c->name,
                    static_cast<unsigned long long>(c->start),
                    static_cast<unsigned long long>(c->end),
                    static_cast<unsigned long long>(lane.root->start),
                    static_cast<unsigned long long>(lane.root->end),
                    c->pid, static_cast<unsigned long long>(c->tid)));
            }
        }
    }
    return violations_ - before;
#else
    (void)spans;
    return 0;
#endif
}

} // namespace transfw::obs
