#ifndef TRANSFW_OBS_CHECKS_HPP
#define TRANSFW_OBS_CHECKS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "obs/attrib.hpp"
#include "obs/span.hpp"
#include "stats/stats.hpp"

#ifndef TRANSFW_OBS_STRICT
#define TRANSFW_OBS_STRICT 0
#endif

namespace transfw::obs {

/**
 * Invariant watchdog over the attribution instrumentation. The
 * attribution engine mirrors every LatencyBreakdown charge, which
 * makes the mirror itself a correctness oracle: if a component ever
 * charges a request without going through mmu::charge() (or charges
 * the wrong bucket family), the per-request cross-check below fires.
 *
 * Checked per finished request (subject to sampleMask):
 *   1. bucket sums == LatencyBreakdown::total() within one tick;
 *   2. per-field grouped sums match each breakdown field (so buckets
 *      are not just exhaustive but correctly classified);
 *   3. per-hop balance: when the request's interconnect cycles arrived
 *      via edge-tagged hops, the Network and HostRoute buckets must
 *      equal the sums of their traversed edges (sum-of-edges ==
 *      bucket — a plain charge sneaking into either bucket fires);
 *   4. PRT-negative short circuit => no local walk or local-queue
 *      cycles were charged (the walk really was skipped).
 *
 * Plus a post-run structural pass, verifySpanNesting(): within each
 * (pid, tid) lane the "xlat" root span must enclose every child span
 * except the known race/forward overhangs that legitimately outlive
 * their request under first-reply-wins.
 *
 * Under TRANSFW_OBS_STRICT (sanitizer builds) a violation panics at
 * the faulting request; otherwise it is counted, the first few
 * messages are retained, and the count flows into SimResults where
 * the config-matrix tests assert it is zero.
 */
class Checks
{
  public:
    /** Check requests whose id survives `id & mask == 0`; 0 = all.
     *  Mask must be a power of two minus one. */
    void setSampleMask(std::uint64_t mask) { sampleMask_ = mask; }
    std::uint64_t sampleMask() const { return sampleMask_; }

    void
    clear()
    {
        violations_ = 0;
        checked_ = 0;
        messages_.clear();
    }

    std::uint64_t violations() const { return violations_; }
    std::uint64_t checkedRequests() const { return checked_; }
    /** First few violation messages (capped; for reports and tests). */
    const std::vector<std::string> &messages() const { return messages_; }

    /** Per-request invariants; called by AttributionEngine::finish. */
    void onFinish(int gpu, std::uint64_t id,
                  const AttributionEngine::Timeline &tl,
                  bool short_circuit, const stats::LatencyBreakdown &lat);

    /**
     * Post-run structural pass over the recorded spans: every span in
     * a (pid, tid) lane must nest inside that lane's enclosing "xlat"
     * root. Skipped when the recorder dropped spans (truncated lanes
     * would produce false positives). @return violations found.
     */
    std::uint64_t verifySpanNesting(const SpanRecorder &spans);

  private:
    void violation(const std::string &msg);

    std::uint64_t sampleMask_ = 0;
    std::uint64_t violations_ = 0;
    std::uint64_t checked_ = 0;
    std::vector<std::string> messages_;
    static constexpr std::size_t kMaxMessages = 8;
};

} // namespace transfw::obs

#endif // TRANSFW_OBS_CHECKS_HPP
