#include "obs/histogram.hpp"

#include <cmath>

#include "sim/logging.hpp"

namespace transfw::obs {

void
LogHistogram::merge(const LogHistogram &other)
{
    if (other.counts_.size() != counts_.size())
        sim::panic("merging LogHistograms of different geometry");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = other.min_ < min_ ? other.min_ : min_;
    max_ = other.max_ > max_ ? other.max_ : max_;
}

double
LogHistogram::quantile(double q) const
{
    if (!count_)
        return 0.0;
    q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (target == 0)
        target = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= target)
            return static_cast<double>(bucketLow(i));
    }
    return static_cast<double>(max_);
}

void
LogHistogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<std::uint64_t>::max();
    max_ = 0;
}

std::uint64_t
LogHistogram::bucketLow(std::size_t i)
{
    if (i < kSubBuckets)
        return i;
    std::size_t k = i - kSubBuckets;
    unsigned octave = kSubBits + static_cast<unsigned>(k / kSubBuckets);
    std::uint64_t sub = k % kSubBuckets;
    return (kSubBuckets + sub) << (octave - kSubBits);
}

std::uint64_t
LogHistogram::bucketHigh(std::size_t i)
{
    if (i < kSubBuckets)
        return i + 1;
    std::size_t k = i - kSubBuckets;
    unsigned octave = kSubBits + static_cast<unsigned>(k / kSubBuckets);
    return bucketLow(i) + (std::uint64_t{1} << (octave - kSubBits));
}

} // namespace transfw::obs
