#ifndef TRANSFW_OBS_HISTOGRAM_HPP
#define TRANSFW_OBS_HISTOGRAM_HPP

#include <cstdint>
#include <limits>
#include <vector>

namespace transfw::obs {

/**
 * Log-bucketed latency histogram (HDR-histogram style): values are
 * binned by power-of-two octave, each octave split into kSubBuckets
 * linear sub-buckets, bounding the relative quantile error at
 * 1/kSubBuckets (~3%) over the full 64-bit tick range with a fixed
 * ~16 KB footprint. record() is a handful of integer ops — cheap
 * enough to stay on the translation hot path unconditionally —
 * unlike stats::Distribution this answers p50/p90/p95/p99/p99.9, not
 * just the mean.
 */
class LogHistogram
{
  public:
    static constexpr unsigned kSubBits = 5; ///< 32 sub-buckets/octave
    static constexpr unsigned kSubBuckets = 1u << kSubBits;

    LogHistogram() : counts_(kBuckets, 0) {}

    /** Record one sample (negative values clamp to 0). */
    void
    record(double value)
    {
        std::uint64_t v =
            value > 0 ? static_cast<std::uint64_t>(value) : 0;
        ++counts_[bucketOf(v)];
        ++count_;
        sum_ += value > 0 ? value : 0.0;
        min_ = v < min_ ? v : min_;
        max_ = v > max_ ? v : max_;
    }

    /** Merge another histogram into this one (same geometry). */
    void merge(const LogHistogram &other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t minimum() const { return count_ ? min_ : 0; }
    std::uint64_t maximum() const { return count_ ? max_ : 0; }

    /**
     * Inverse CDF at @p q in [0, 1]: the representative value of the
     * first bucket whose cumulative count reaches ceil(q * count).
     * Matches a sorted-vector oracle to within one bucket width
     * (relative error <= 1/kSubBuckets). Returns 0 when empty.
     */
    double quantile(double q) const;

    void reset();

    /** Bucket accessors for exporters/tests. */
    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    /** Inclusive lower bound of the values mapping to bucket @p i. */
    static std::uint64_t bucketLow(std::size_t i);
    /** Exclusive upper bound of bucket @p i. */
    static std::uint64_t bucketHigh(std::size_t i);

  private:
    // Values < kSubBuckets map 1:1 onto the first kSubBuckets buckets;
    // beyond that, each octave e contributes kSubBuckets buckets.
    static constexpr std::size_t kOctaves = 64 - kSubBits;
    static constexpr std::size_t kBuckets =
        kSubBuckets + kOctaves * kSubBuckets;

    static std::size_t
    bucketOf(std::uint64_t v)
    {
        if (v < kSubBuckets)
            return static_cast<std::size_t>(v);
        unsigned octave = 63u - static_cast<unsigned>(__builtin_clzll(v));
        unsigned sub =
            static_cast<unsigned>(v >> (octave - kSubBits)) & (kSubBuckets - 1);
        return kSubBuckets +
               static_cast<std::size_t>(octave - kSubBits) * kSubBuckets +
               sub;
    }

    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
};

} // namespace transfw::obs

#endif // TRANSFW_OBS_HISTOGRAM_HPP
