#ifndef TRANSFW_OBS_JSON_HPP
#define TRANSFW_OBS_JSON_HPP

#include <cmath>
#include <ostream>
#include <string>

namespace transfw::obs {

/**
 * Minimal JSON emission helpers shared by the span, metrics and
 * time-series exporters. Only what the observability dumps need: string
 * escaping and finite-number formatting (NaN/inf become null, which
 * keeps every emitted document strictly parseable).
 */

inline void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

inline void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    // Integral values print without a fraction so counters stay exact.
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        os << static_cast<long long>(v);
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

} // namespace transfw::obs

#endif // TRANSFW_OBS_JSON_HPP
