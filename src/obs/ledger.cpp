#include "obs/ledger.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>

#include "obs/json.hpp"

namespace transfw::obs {

namespace {

// --- minimal JSON reader --------------------------------------------------
//
// The repo emits JSON in several places but until the ledger never had
// to read it back. This is a deliberately small recursive-descent
// parser: just enough for the flat ledger schema (objects, strings,
// numbers, and the null jsonNumber() writes for non-finite values).
// It is private to this translation unit; tools parse ledgers through
// RunLedger::parseLine().

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<std::pair<std::string, JsonValue>> members;
    std::vector<JsonValue> elements;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : members)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    JsonParser(const std::string &text) : text_(text) {}

    bool
    parse(JsonValue &out, std::string *error)
    {
        skipWs();
        if (!parseValue(out)) {
            if (error)
                *error = error_.empty() ? "malformed JSON" : error_;
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            if (error)
                *error = "trailing characters after JSON value";
            return false;
        }
        return true;
    }

  private:
    bool
    fail(const char *why)
    {
        if (error_.empty()) {
            char buf[96];
            std::snprintf(buf, sizeof(buf), "%s at offset %zu", why,
                          pos_);
            error_ = buf;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::string::traits_type::length(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true") || fail("bad literal");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false") || fail("bad literal");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null") || fail("bad literal");
          default: return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return fail("expected object key");
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            skipWs();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.members.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            skipWs();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.elements.push_back(std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("dangling escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("bad \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // Ledger strings are ASCII; jsonEscape only emits \u
                // for control characters, so a raw byte suffices.
                out += static_cast<char>(code & 0xff);
                break;
              }
              default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c)) ||
                c == '.' || c == 'e' || c == 'E' || c == '+' ||
                c == '-') {
                digits = digits ||
                         std::isdigit(static_cast<unsigned char>(c));
                ++pos_;
            } else {
                break;
            }
        }
        if (!digits)
            return fail("expected number");
        out.kind = JsonValue::Kind::Number;
        out.number =
            std::strtod(text_.substr(start, pos_ - start).c_str(),
                        nullptr);
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

void
emitMap(std::ostream &os, const std::map<std::string, double> &map)
{
    os << '{';
    bool first = true;
    for (const auto &[key, value] : map) {
        if (!first)
            os << ',';
        first = false;
        jsonEscape(os, key);
        os << ':';
        jsonNumber(os, value);
    }
    os << '}';
}

bool
readMap(const JsonValue &object, std::map<std::string, double> &out,
        std::string *timestamp)
{
    if (object.kind != JsonValue::Kind::Object)
        return false;
    for (const auto &[key, value] : object.members) {
        if (timestamp && key == "timestamp" &&
            value.kind == JsonValue::Kind::String) {
            *timestamp = value.string;
            continue;
        }
        if (value.kind == JsonValue::Kind::Number)
            out[key] = value.number;
        else if (value.kind == JsonValue::Kind::Null)
            out[key] = std::nan(""); // jsonNumber() writes null for NaN
        else
            return false;
    }
    return true;
}

std::string
formatDouble(double v)
{
    std::ostringstream ss;
    jsonNumber(ss, v);
    return ss.str();
}

} // namespace

// --- LedgerRecord ---------------------------------------------------------

std::string
LedgerRecord::matchKey() const
{
    return app + ";scale=" + formatDouble(scale) + ";" + configKey;
}

std::string
LedgerRecord::toJsonLine() const
{
    std::ostringstream os;
    os << "{\"schema\":";
    jsonEscape(os, schema.empty() ? RunLedger::kSchema : schema);
    os << ",\"app\":";
    jsonEscape(os, app);
    os << ",\"scale\":";
    jsonNumber(os, scale);
    os << ",\"configKey\":";
    jsonEscape(os, configKey);
    os << ",\"configSummary\":";
    jsonEscape(os, configSummary);
    os << ",\"source\":";
    jsonEscape(os, source);
    os << ",\"metrics\":";
    emitMap(os, metrics);
    os << ",\"wall\":{";
    os << "\"timestamp\":";
    jsonEscape(os, wallTimestamp);
    for (const auto &[key, value] : wall) {
        os << ',';
        jsonEscape(os, key);
        os << ':';
        jsonNumber(os, value);
    }
    os << "}}";
    return os.str();
}

// --- RunLedger ------------------------------------------------------------

std::string
RunLedger::envPath()
{
    const char *path = std::getenv("TRANSFW_LEDGER");
    return path ? std::string(path) : std::string();
}

void
RunLedger::stampWall(LedgerRecord &record)
{
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    record.wallTimestamp = buf;
}

bool
RunLedger::append(const std::string &path, const LedgerRecord &record)
{
    if (path.empty())
        return false;
    std::string line = record.toJsonLine();
    line += '\n';
    // One lock around one whole-line write: sweep workers appending
    // concurrently interleave records, never bytes.
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    std::ofstream os(path, std::ios::app);
    if (!os)
        return false;
    os << line;
    return static_cast<bool>(os);
}

bool
RunLedger::parseLine(const std::string &line, LedgerRecord &out,
                     std::string *error)
{
    JsonValue root;
    if (!JsonParser(line).parse(root, error))
        return false;
    if (root.kind != JsonValue::Kind::Object) {
        if (error)
            *error = "record is not a JSON object";
        return false;
    }
    const JsonValue *schema = root.find("schema");
    if (!schema || schema->kind != JsonValue::Kind::String) {
        if (error)
            *error = "missing schema field";
        return false;
    }
    if (schema->string != kSchema) {
        if (error)
            *error = "schema mismatch: expected \"" +
                     std::string(kSchema) + "\", got \"" +
                     schema->string + "\"";
        return false;
    }
    out = LedgerRecord{};
    out.schema = schema->string;
    auto str = [&](const char *key, std::string &dst) {
        const JsonValue *v = root.find(key);
        if (v && v->kind == JsonValue::Kind::String)
            dst = v->string;
    };
    str("app", out.app);
    str("configKey", out.configKey);
    str("configSummary", out.configSummary);
    str("source", out.source);
    if (const JsonValue *v = root.find("scale");
        v && v->kind == JsonValue::Kind::Number)
        out.scale = v->number;
    if (const JsonValue *v = root.find("metrics")) {
        if (!readMap(*v, out.metrics, nullptr)) {
            if (error)
                *error = "bad metrics map";
            return false;
        }
    }
    if (const JsonValue *v = root.find("wall")) {
        if (!readMap(*v, out.wall, &out.wallTimestamp)) {
            if (error)
                *error = "bad wall map";
            return false;
        }
    }
    return true;
}

std::vector<LedgerRecord>
RunLedger::load(const std::string &path,
                std::vector<std::string> *errors)
{
    std::vector<LedgerRecord> records;
    std::ifstream is(path);
    if (!is) {
        if (errors)
            errors->push_back("cannot open " + path);
        return records;
    }
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        LedgerRecord record;
        std::string error;
        if (RunLedger::parseLine(line, record, &error)) {
            records.push_back(std::move(record));
        } else if (errors) {
            errors->push_back("line " + std::to_string(lineNo) + ": " +
                              error);
        }
    }
    return records;
}

// --- diffing --------------------------------------------------------------

namespace {

/**
 * Index records by match key, keeping only the *newest* (last) record
 * per key: a ledger is append-only, so later lines supersede earlier
 * runs of the same configuration.
 */
std::vector<std::pair<std::string, const LedgerRecord *>>
indexByKey(const std::vector<LedgerRecord> &records)
{
    std::map<std::string, const LedgerRecord *> latest;
    for (const LedgerRecord &r : records)
        latest[r.matchKey()] = &r;
    return {latest.begin(), latest.end()};
}

void
diffPair(const LedgerRecord &a, const LedgerRecord &b,
         const LedgerDiffOptions &opts, LedgerDiff &diff)
{
    LedgerDiffEntry entry;
    entry.app = a.app.empty() ? b.app : a.app;
    entry.matchKey = a.matchKey();

    auto ia = a.metrics.begin();
    auto ib = b.metrics.begin();
    while (ia != a.metrics.end() || ib != b.metrics.end()) {
        if (ib == b.metrics.end() ||
            (ia != a.metrics.end() && ia->first < ib->first)) {
            entry.missingKeys.push_back("-" + ia->first);
            ++ia;
            continue;
        }
        if (ia == a.metrics.end() || ib->first < ia->first) {
            entry.missingKeys.push_back("+" + ib->first);
            ++ib;
            continue;
        }
        ++diff.comparedMetrics;
        bool bothNan =
            std::isnan(ia->second) && std::isnan(ib->second);
        if (ia->second != ib->second && !bothNan) {
            entry.drifted.push_back(ia->first + ": " +
                                    formatDouble(ia->second) + " -> " +
                                    formatDouble(ib->second));
        }
        ++ia;
        ++ib;
    }

    for (const auto &[key, va] : a.wall) {
        auto it = b.wall.find(key);
        if (it == b.wall.end())
            continue;
        double vb = it->second;
        double base = std::max(std::fabs(va), std::fabs(vb));
        if (base == 0.0)
            continue;
        double rel = std::fabs(va - vb) / base;
        if (rel > opts.wallRelTol) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), " (%+.0f%%)",
                          100.0 * (vb - va) /
                              (va != 0.0 ? std::fabs(va) : 1.0));
            entry.wallWarnings.push_back(key + ": " +
                                         formatDouble(va) + " -> " +
                                         formatDouble(vb) + buf);
        }
    }

    diff.driftedMetrics += entry.drifted.size();
    diff.missingKeys += entry.missingKeys.size();
    diff.wallWarningCount += entry.wallWarnings.size();
    if (!entry.drifted.empty() || !entry.missingKeys.empty() ||
        !entry.wallWarnings.empty())
        diff.pairs.push_back(std::move(entry));
}

void
emitStringArray(std::ostream &os, const std::vector<std::string> &v)
{
    os << '[';
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            os << ',';
        jsonEscape(os, v[i]);
    }
    os << ']';
}

} // namespace

LedgerDiff
diffLedgers(const std::vector<LedgerRecord> &a,
            const std::vector<LedgerRecord> &b,
            const LedgerDiffOptions &opts)
{
    LedgerDiff diff;
    for (const std::vector<LedgerRecord> *side : {&a, &b}) {
        for (const LedgerRecord &r : *side) {
            if (r.schema != RunLedger::kSchema)
                diff.errors.push_back("schema mismatch in record for " +
                                      r.app + ": \"" + r.schema +
                                      "\"");
        }
    }
    if (!diff.errors.empty())
        return diff;

    if (!opts.matchOnKey) {
        std::size_t n = std::min(a.size(), b.size());
        for (std::size_t i = 0; i < n; ++i)
            diffPair(a[i], b[i], opts, diff);
        for (std::size_t i = n; i < a.size(); ++i)
            diff.unmatchedA.push_back(a[i].matchKey());
        for (std::size_t i = n; i < b.size(); ++i)
            diff.unmatchedB.push_back(b[i].matchKey());
        return diff;
    }

    auto keyedA = indexByKey(a);
    auto keyedB = indexByKey(b);
    std::map<std::string, const LedgerRecord *> lookupB(keyedB.begin(),
                                                        keyedB.end());
    std::set<std::string> seen;
    for (const auto &[key, ra] : keyedA) {
        auto it = lookupB.find(key);
        if (it == lookupB.end()) {
            diff.unmatchedA.push_back(key);
            continue;
        }
        seen.insert(key);
        diffPair(*ra, *it->second, opts, diff);
    }
    for (const auto &[key, rb] : keyedB) {
        (void)rb;
        if (!seen.count(key))
            diff.unmatchedB.push_back(key);
    }
    return diff;
}

std::string
LedgerDiff::toMarkdown() const
{
    std::ostringstream os;
    os << "# Ledger diff\n\n";
    os << "- status: " << (clean() ? "CLEAN" : "DRIFT") << "\n";
    os << "- deterministic metrics compared: " << comparedMetrics
       << "\n";
    os << "- drifted: " << driftedMetrics
       << ", missing keys: " << missingKeys
       << ", wall warnings: " << wallWarningCount << "\n";
    if (!errors.empty()) {
        os << "\n## Errors\n\n";
        for (const std::string &e : errors)
            os << "- " << e << "\n";
    }
    if (!unmatchedA.empty() || !unmatchedB.empty()) {
        os << "\n## Unmatched records\n\n";
        for (const std::string &k : unmatchedA)
            os << "- only in A: `" << k << "`\n";
        for (const std::string &k : unmatchedB)
            os << "- only in B: `" << k << "`\n";
    }
    for (const LedgerDiffEntry &entry : pairs) {
        os << "\n## " << entry.app << "\n\n";
        os << "`" << entry.matchKey << "`\n\n";
        for (const std::string &d : entry.drifted)
            os << "- DRIFT " << d << "\n";
        for (const std::string &m : entry.missingKeys)
            os << "- MISSING " << m << "\n";
        for (const std::string &w : entry.wallWarnings)
            os << "- wall " << w << "\n";
    }
    return os.str();
}

std::string
LedgerDiff::toJson() const
{
    std::ostringstream os;
    os << "{\"clean\":" << (clean() ? "true" : "false")
       << ",\"comparedMetrics\":" << comparedMetrics
       << ",\"driftedMetrics\":" << driftedMetrics
       << ",\"missingKeys\":" << missingKeys
       << ",\"wallWarnings\":" << wallWarningCount << ",\"errors\":";
    emitStringArray(os, errors);
    os << ",\"unmatchedA\":";
    emitStringArray(os, unmatchedA);
    os << ",\"unmatchedB\":";
    emitStringArray(os, unmatchedB);
    os << ",\"pairs\":[";
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const LedgerDiffEntry &entry = pairs[i];
        if (i)
            os << ',';
        os << "{\"app\":";
        jsonEscape(os, entry.app);
        os << ",\"matchKey\":";
        jsonEscape(os, entry.matchKey);
        os << ",\"drifted\":";
        emitStringArray(os, entry.drifted);
        os << ",\"missingKeys\":";
        emitStringArray(os, entry.missingKeys);
        os << ",\"wallWarnings\":";
        emitStringArray(os, entry.wallWarnings);
        os << '}';
    }
    os << "]}";
    return os.str();
}

} // namespace transfw::obs
