#ifndef TRANSFW_OBS_LEDGER_HPP
#define TRANSFW_OBS_LEDGER_HPP

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace transfw::obs {

/**
 * One run's durable record: everything a later session needs to decide
 * "did my change regress anything?" without re-running the original.
 *
 * The record splits into a *deterministic* part (app identity, config
 * key, and the full metrics map — pure simulation outputs that must be
 * bit-identical across reruns of the same binary+config) and an
 * explicitly-stamped *wall* part (timestamp, host wall time, events/sec,
 * job counts, profiler buckets) that is expected to vary run-to-run.
 * diffLedgers() holds the first part to exact equality and the second
 * to a relative tolerance, so regression gates stay noise-free.
 *
 * Serialized as one JSON object per line ("transfw-ledger-v1" JSONL):
 * doubles round-trip via %.17g, map keys emit in sorted order, so the
 * deterministic portion of a line is itself byte-stable.
 */
struct LedgerRecord
{
    std::string schema;        ///< "transfw-ledger-v1"
    std::string app;           ///< workload identity (e.g. "MT", "KM")
    double scale = 1.0;        ///< workload scale factor
    std::string configKey;     ///< cfg::SystemConfig::key()
    std::string configSummary; ///< human-readable config line
    std::string source;        ///< producing tool ("simulate", "sweep", ...)

    /** Deterministic simulation metrics (sys::toRegistry keys). */
    std::map<std::string, double> metrics;

    /** Noisy host-side measurements (wall seconds, events/sec, ...). */
    std::map<std::string, double> wall;
    std::string wallTimestamp; ///< ISO-8601 UTC stamp, noisy by design

    /** Pairing identity for diffs: app + scale + configKey. */
    std::string matchKey() const;

    /** One newline-free JSON object (append '\n' for JSONL). */
    std::string toJsonLine() const;
};

/**
 * Append-only JSONL ledger. All writers funnel through append(), which
 * serialises the whole line first and holds a process-wide mutex across
 * the single write, so parallel sweep workers interleave records, never
 * bytes. Readers tolerate (and report) trailing garbage lines.
 */
class RunLedger
{
  public:
    static constexpr const char *kSchema = "transfw-ledger-v1";

    /** Path from $TRANSFW_LEDGER, or "" when unset (ledger disabled). */
    static std::string envPath();

    /** Stamp record.wallTimestamp with the current UTC time. */
    static void stampWall(LedgerRecord &record);

    /** Append one record to @p path; false on open/write failure. */
    static bool append(const std::string &path,
                       const LedgerRecord &record);

    /**
     * Parse one JSONL line. Returns false (with *error set) on malformed
     * JSON or a schema other than kSchema.
     */
    static bool parseLine(const std::string &line, LedgerRecord &out,
                          std::string *error = nullptr);

    /**
     * Load every record in @p path. Malformed lines are skipped and
     * reported through @p errors ("line N: why"); missing file is an
     * error with zero records.
     */
    static std::vector<LedgerRecord>
    load(const std::string &path,
         std::vector<std::string> *errors = nullptr);
};

// --- noise-aware regression diffing --------------------------------------

struct LedgerDiffOptions
{
    /** Relative tolerance for wall-section fields (0.5 = ±50%). */
    double wallRelTol = 0.5;
    /** Pair records by matchKey(); false pairs line-by-line instead. */
    bool matchOnKey = true;
};

/** One matched pair of records and everything that differs between them. */
struct LedgerDiffEntry
{
    std::string app;
    std::string matchKey;
    /** Deterministic metrics whose values differ ("key: a -> b"). */
    std::vector<std::string> drifted;
    /** Metric keys present on only one side ("-key" / "+key"). */
    std::vector<std::string> missingKeys;
    /** Wall fields outside tolerance — reported, never failing. */
    std::vector<std::string> wallWarnings;
};

struct LedgerDiff
{
    /** Matched pairs with at least one difference; clean pairs are
     *  counted (comparedMetrics) but not stored. */
    std::vector<LedgerDiffEntry> pairs;
    std::vector<std::string> unmatchedA; ///< match keys only in A
    std::vector<std::string> unmatchedB; ///< match keys only in B
    std::vector<std::string> errors;     ///< schema mismatches etc.

    std::size_t driftedMetrics = 0;
    std::size_t missingKeys = 0;
    std::size_t wallWarningCount = 0;
    std::size_t comparedMetrics = 0;

    /**
     * True when nothing deterministic moved: no drifted metrics, no
     * missing keys, no unmatched records, no errors. Wall warnings do
     * not dirty a diff.
     */
    bool
    clean() const
    {
        return driftedMetrics == 0 && missingKeys == 0 &&
               unmatchedA.empty() && unmatchedB.empty() &&
               errors.empty();
    }

    std::string toMarkdown() const;
    std::string toJson() const;
};

/**
 * Diff two record sets. Deterministic metrics must match exactly;
 * wall fields outside opts.wallRelTol produce warnings. Records whose
 * schema field is not RunLedger::kSchema land in errors.
 */
LedgerDiff diffLedgers(const std::vector<LedgerRecord> &a,
                       const std::vector<LedgerRecord> &b,
                       const LedgerDiffOptions &opts = {});

} // namespace transfw::obs

#endif // TRANSFW_OBS_LEDGER_HPP
