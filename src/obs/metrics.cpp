#include "obs/metrics.hpp"

#include <sstream>

#include "obs/json.hpp"
#include "sim/logging.hpp"

namespace transfw::obs {

void
MetricRegistry::registerGauge(const std::string &name, Probe probe)
{
    gauges_[name] = std::move(probe);
}

void
MetricRegistry::setScalar(const std::string &name, double value)
{
    scalars_[name] = value;
}

void
MetricRegistry::registerHistogram(const std::string &name,
                                  const LogHistogram *hist)
{
    histograms_[name] = hist;
}

bool
MetricRegistry::has(const std::string &name) const
{
    return gauges_.count(name) > 0 || scalars_.count(name) > 0;
}

double
MetricRegistry::value(const std::string &name) const
{
    if (auto it = gauges_.find(name); it != gauges_.end())
        return it->second();
    if (auto it = scalars_.find(name); it != scalars_.end())
        return it->second;
    sim::fatal("unknown metric: " + name);
}

std::vector<std::string>
MetricRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(gauges_.size() + scalars_.size());
    for (const auto &[name, probe] : gauges_)
        out.push_back(name);
    for (const auto &[name, value] : scalars_)
        out.push_back(name);
    std::sort(out.begin(), out.end());
    return out;
}

void
MetricRegistry::writeJson(std::ostream &os) const
{
    // Flatten every metric into (name, value) pairs; std::map keeps the
    // combined emission sorted within each kind, and we merge-sort the
    // three maps by emitting into one ordered map first.
    std::map<std::string, double> flat;
    for (const auto &[name, probe] : gauges_)
        flat[name] = probe();
    for (const auto &[name, value] : scalars_)
        flat[name] = value;
    for (const auto &[name, hist] : histograms_) {
        flat[name + ".count"] = static_cast<double>(hist->count());
        flat[name + ".mean"] = hist->mean();
        flat[name + ".min"] = static_cast<double>(hist->minimum());
        flat[name + ".max"] = static_cast<double>(hist->maximum());
        flat[name + ".p50"] = hist->quantile(0.50);
        flat[name + ".p90"] = hist->quantile(0.90);
        flat[name + ".p95"] = hist->quantile(0.95);
        flat[name + ".p99"] = hist->quantile(0.99);
        flat[name + ".p999"] = hist->quantile(0.999);
    }

    os << "{";
    bool first = true;
    for (const auto &[name, value] : flat) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  ";
        jsonEscape(os, name);
        os << ": ";
        jsonNumber(os, value);
    }
    os << "\n}\n";
}

std::string
MetricRegistry::toJson() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

} // namespace transfw::obs
