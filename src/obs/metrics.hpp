#ifndef TRANSFW_OBS_METRICS_HPP
#define TRANSFW_OBS_METRICS_HPP

#include <functional>
#include <map>
#include <ostream>
#include <string>

#include "obs/histogram.hpp"

namespace transfw::obs {

/**
 * Unified metrics registry: a flat namespace of hierarchical
 * dot-separated keys ("gpu0.gmmu.prt.miss", "host.mmu.queueDepth")
 * that every component registers into at system construction.
 *
 * Three metric kinds:
 *  - gauge: a std::function probe evaluated at read time, so one
 *    registration yields live values for both the end-of-run JSON dump
 *    and the interval sampler (counters are gauges over a component's
 *    internal counter — reads are always current, and registration
 *    costs nothing on the simulation hot path);
 *  - scalar: a one-shot value set after the run (derived results);
 *  - histogram: a borrowed LogHistogram, dumped as count/mean/
 *    percentiles.
 *
 * Probes capture raw component pointers, so the registry must not
 * outlive the components it observes: sys::MultiGpuSystem declares its
 * Observability last, destroying it first.
 */
class MetricRegistry
{
  public:
    using Probe = std::function<double()>;

    /** Register a live-evaluated gauge. Re-registering replaces. */
    void registerGauge(const std::string &name, Probe probe);

    /** Set a one-shot scalar (post-run derived values). */
    void setScalar(const std::string &name, double value);

    /** Register a histogram owned by the caller. */
    void registerHistogram(const std::string &name,
                           const LogHistogram *hist);

    /** True when @p name resolves to a gauge or scalar. */
    bool has(const std::string &name) const;

    /** Evaluate one gauge/scalar by name (fatal when unknown). */
    double value(const std::string &name) const;

    /** Every gauge and scalar name, sorted. */
    std::vector<std::string> names() const;

    /**
     * Dump everything as one JSON object, keys sorted. Histograms
     * expand to "<name>.count/.mean/.min/.max/.p50/.p90/.p95/.p99/
     * .p999" leaves.
     */
    void writeJson(std::ostream &os) const;
    std::string toJson() const;

  private:
    std::map<std::string, Probe> gauges_;
    std::map<std::string, double> scalars_;
    std::map<std::string, const LogHistogram *> histograms_;
};

} // namespace transfw::obs

#endif // TRANSFW_OBS_METRICS_HPP
