#ifndef TRANSFW_OBS_OBS_HPP
#define TRANSFW_OBS_OBS_HPP

#include "obs/attrib.hpp"
#include "obs/checks.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/self_profiler.hpp"
#include "obs/span.hpp"

namespace transfw::obs {

/**
 * The per-system observability bundle: request-span recorder, unified
 * metrics registry, interval sampler, latency-attribution engine and
 * its invariant watchdog. Owned by sys::MultiGpuSystem (declared after
 * every observed component so it is destroyed first — registry gauges
 * hold raw component pointers) and handed to components as a raw
 * pointer they may ignore.
 */
struct Observability
{
    SpanRecorder spans;
    MetricRegistry metrics;
    IntervalSampler sampler;
    AttributionEngine attribution;
    Checks checks;
    SelfProfiler profiler;
};

} // namespace transfw::obs

#endif // TRANSFW_OBS_OBS_HPP
