#ifndef TRANSFW_OBS_OBS_HPP
#define TRANSFW_OBS_OBS_HPP

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/span.hpp"

namespace transfw::obs {

/**
 * The per-system observability bundle: request-span recorder, unified
 * metrics registry and interval sampler. Owned by sys::MultiGpuSystem
 * (declared after every observed component so it is destroyed first —
 * registry gauges hold raw component pointers) and handed to
 * components as a raw pointer they may ignore.
 */
struct Observability
{
    SpanRecorder spans;
    MetricRegistry metrics;
    IntervalSampler sampler;
};

} // namespace transfw::obs

#endif // TRANSFW_OBS_OBS_HPP
