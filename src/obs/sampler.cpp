#include "obs/sampler.hpp"

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace transfw::obs {

void
IntervalSampler::addColumn(std::string name, Probe probe)
{
    columns_.push_back(Column{std::move(name), std::move(probe)});
}

void
IntervalSampler::addRegistryColumn(const MetricRegistry &registry,
                                   const std::string &name)
{
    addColumn(name, [&registry, name]() { return registry.value(name); });
}

void
IntervalSampler::start(sim::EventQueue &eq, sim::Tick interval)
{
    if (interval == 0 || columns_.empty())
        return;
    sample(eq, interval);
}

void
IntervalSampler::recordRow(sim::Tick tick)
{
    ProfScope prof(profiler_, ProfBucket::Stats);
    ticks_.push_back(tick);
    for (const Column &col : columns_)
        values_.push_back(col.probe());
}

void
IntervalSampler::sample(sim::EventQueue &eq, sim::Tick interval)
{
    ProfScope prof(profiler_, ProfBucket::Stats);
    ticks_.push_back(eq.now());
    for (const Column &col : columns_)
        values_.push_back(col.probe());
    // Weak event: fires in order while real simulation work remains,
    // but never keeps the queue alive or advances the clock past the
    // last strong event — sampling cannot perturb execTime.
    eq.scheduleWeak(interval,
                    [this, &eq, interval]() { sample(eq, interval); });
}

void
IntervalSampler::writeCsv(std::ostream &os) const
{
    os << "tick";
    for (const Column &col : columns_)
        os << ',' << col.name;
    os << '\n';
    for (std::size_t row = 0; row < ticks_.size(); ++row) {
        os << ticks_[row];
        for (std::size_t col = 0; col < columns_.size(); ++col) {
            os << ',';
            jsonNumber(os, cell(row, col));
        }
        os << '\n';
    }
}

void
IntervalSampler::writeJson(std::ostream &os) const
{
    os << "{\"columns\":[\"tick\"";
    for (const Column &col : columns_) {
        os << ',';
        jsonEscape(os, col.name);
    }
    os << "],\"rows\":[";
    for (std::size_t row = 0; row < ticks_.size(); ++row) {
        if (row)
            os << ',';
        os << "\n[" << ticks_[row];
        for (std::size_t col = 0; col < columns_.size(); ++col) {
            os << ',';
            jsonNumber(os, cell(row, col));
        }
        os << ']';
    }
    os << "\n]}\n";
}

void
IntervalSampler::clear()
{
    ticks_.clear();
    values_.clear();
}

} // namespace transfw::obs
