#ifndef TRANSFW_OBS_SAMPLER_HPP
#define TRANSFW_OBS_SAMPLER_HPP

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/self_profiler.hpp"
#include "sim/event_queue.hpp"
#include "sim/ticks.hpp"

namespace transfw::obs {

class MetricRegistry;

/**
 * Interval time-series sampler: rides the simulation event queue and
 * snapshots a set of probes every @p interval ticks — PW-queue depths,
 * forwarding-threshold crossings, Cuckoo-filter load factors, TLB/PWC
 * hit rates — into an in-memory table exported as CSV or JSON.
 *
 * The sampler rides weak events (EventQueue::scheduleWeak), so it
 * never keeps EventQueue::run() from draining and never advances the
 * clock past the last real simulation event: when only the sampler
 * remains, the series simply ends and execTime is unperturbed.
 */
class IntervalSampler
{
  public:
    using Probe = std::function<double()>;

    /** Add a column with an explicit probe. */
    void addColumn(std::string name, Probe probe);

    /** Add a column that reads metric @p name from @p registry. */
    void addRegistryColumn(const MetricRegistry &registry,
                           const std::string &name);

    /** Charge probe time to the profiler's Stats bucket (may be null). */
    void attachProfiler(SelfProfiler *profiler) { profiler_ = profiler; }

    /**
     * Begin sampling @p eq every @p interval ticks, starting with one
     * immediate row at the current tick. No-op when interval == 0 or
     * there are no columns.
     */
    void start(sim::EventQueue &eq, sim::Tick interval);

    /**
     * Append one row stamped @p tick by probing every column now. The
     * windowed lane kernel drives sampling this way — rows are recorded
     * at window barriers, while every lane is quiescent — instead of
     * riding weak events on a single queue (start()); the row schedule
     * then depends only on the deterministic window sequence, never on
     * the number of worker threads.
     */
    void recordRow(sim::Tick tick);

    std::size_t columns() const { return columns_.size(); }
    std::size_t rows() const { return ticks_.size(); }
    sim::Tick rowTick(std::size_t row) const { return ticks_[row]; }
    double cell(std::size_t row, std::size_t col) const
    {
        return values_[row * columns_.size() + col];
    }
    const std::string &columnName(std::size_t col) const
    {
        return columns_[col].name;
    }

    /** "tick,<col>,<col>,..." header plus one line per sample row. */
    void writeCsv(std::ostream &os) const;
    /** {"columns":[...],"rows":[[tick,v,...],...]} */
    void writeJson(std::ostream &os) const;

    void clear();

  private:
    struct Column
    {
        std::string name;
        Probe probe;
    };

    void sample(sim::EventQueue &eq, sim::Tick interval);

    std::vector<Column> columns_;
    std::vector<sim::Tick> ticks_;
    std::vector<double> values_; ///< rows * columns, row-major
    SelfProfiler *profiler_ = nullptr;
};

} // namespace transfw::obs

#endif // TRANSFW_OBS_SAMPLER_HPP
