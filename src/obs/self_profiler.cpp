#include "obs/self_profiler.hpp"

namespace transfw::obs {

const char *
profBucketName(ProfBucket bucket)
{
    switch (bucket) {
      case ProfBucket::Kernel: return "kernel";
      case ProfBucket::ComputeUnit: return "computeUnit";
      case ProfBucket::Gmmu: return "gmmu";
      case ProfBucket::HostMmu: return "hostMmu";
      case ProfBucket::TlbPwc: return "tlbPwc";
      case ProfBucket::PageWalk: return "pageWalk";
      case ProfBucket::Forwarding: return "forwarding";
      case ProfBucket::Interconnect: return "interconnect";
      case ProfBucket::Migration: return "migration";
      case ProfBucket::Stats: return "stats";
      case ProfBucket::LaneSync: return "laneSync";
    }
    return "?";
}

#if TRANSFW_OBS

void
SelfProfiler::configure(bool enabled, std::uint32_t stride)
{
    enabled_ = enabled;
    stride_ = stride ? stride : 1;
    countdown_ = stride_;
    syncCountdown_ = stride_;
    probeTime_ = Clock::now();
    probeDispatches_ = dispatches_;
    probed_ = true;
}

void
SelfProfiler::beginDispatch()
{
    ++dispatches_;
    // Countdown rather than modulo: the unsampled path is two
    // increments and a branch, no 64-bit division.
    if (--countdown_ != 0)
        return;
    countdown_ = stride_;
    ++sampledDispatches_;
    depth_ = 1;
    stack_[0] = ProfBucket::Kernel;
    dispatch0_ = Clock::now();
    mark_ = dispatch0_;
}

void
SelfProfiler::endDispatch()
{
    if (depth_ == 0)
        return;
    Clock::time_point t = Clock::now();
    // Unwind any frames an early-returning scope left open (none in
    // practice, but the accounting must never wedge).
    while (depth_ > 1)
        charge(stack_[--depth_], t);
    charge(stack_[0], t);
    depth_ = 0;
    totalNs_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t -
                                                             dispatch0_)
            .count());
}

void
SelfProfiler::enter(ProfBucket bucket)
{
    if (depth_ == 0 || depth_ >= kMaxDepth)
        return;
    Clock::time_point t = Clock::now();
    charge(stack_[depth_ - 1], t);
    stack_[depth_++] = bucket;
}

void
SelfProfiler::exit()
{
    if (depth_ <= 1)
        return;
    charge(stack_[--depth_], Clock::now());
}

bool
SelfProfiler::syncSampleDue()
{
    if (!enabled_)
        return false;
    if (--syncCountdown_ != 0)
        return false;
    syncCountdown_ = stride_;
    return true;
}

void
SelfProfiler::chargeSync(std::uint64_t ns)
{
    ns_[static_cast<std::size_t>(ProfBucket::LaneSync)] += ns;
    totalNs_ += ns;
}

HostProfile
SelfProfiler::snapshot() const
{
    HostProfile profile;
    if (!enabled_)
        return profile;
    double scale = static_cast<double>(stride_) * 1e-9;
    for (std::size_t b = 0; b < kNumProfBuckets; ++b)
        profile.seconds[b] = static_cast<double>(ns_[b]) * scale;
    profile.totalSeconds = static_cast<double>(totalNs_) * scale;
    profile.dispatches = dispatches_;
    profile.sampledDispatches = sampledDispatches_;
    profile.stride = stride_;
    return profile;
}

double
SelfProfiler::recentEventsPerSec()
{
    Clock::time_point t = Clock::now();
    if (!probed_) {
        probeTime_ = t;
        probeDispatches_ = dispatches_;
        probed_ = true;
        return 0.0;
    }
    double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            t - probeTime_)
            .count();
    double rate = secs > 0.0
                      ? static_cast<double>(dispatches_ -
                                            probeDispatches_) /
                            secs
                      : 0.0;
    probeTime_ = t;
    probeDispatches_ = dispatches_;
    return rate;
}

void
SelfProfiler::reset()
{
    dispatches_ = 0;
    sampledDispatches_ = 0;
    countdown_ = stride_;
    syncCountdown_ = stride_;
    for (std::uint64_t &v : ns_)
        v = 0;
    totalNs_ = 0;
    depth_ = 0;
    probed_ = false;
}

#endif // TRANSFW_OBS

} // namespace transfw::obs
