#ifndef TRANSFW_OBS_SELF_PROFILER_HPP
#define TRANSFW_OBS_SELF_PROFILER_HPP

#include <chrono>
#include <cstdint>

#include "obs/span.hpp" // TRANSFW_OBS master switch
#include "sim/event_queue.hpp"

namespace transfw::obs {

/**
 * Host-time buckets the SelfProfiler attributes event-dispatch wall
 * clock to. Kernel is the residual: dispatch time no component scope
 * claimed (queue bookkeeping, un-instrumented callbacks).
 */
enum class ProfBucket : std::uint8_t
{
    Kernel,       ///< event-kernel dispatch not claimed by any scope
    ComputeUnit,  ///< CU issue loop / workload generation
    Gmmu,         ///< GMMU queueing and walk bookkeeping
    HostMmu,      ///< host MMU / UVM driver fault handling
    TlbPwc,       ///< TLB and PW-cache lookups/fills
    PageWalk,     ///< radix page-table walks (local, host, remote)
    Forwarding,   ///< Trans-FW PRT/FT probes and forwarding decisions
    Interconnect, ///< link delivery callbacks and reply fan-out
    Migration,    ///< page migration/replication engine
    Stats,        ///< interval sampler and metric probes
    LaneSync,     ///< lane-kernel barrier wait + mailbox/relay drains
};
inline constexpr std::size_t kNumProfBuckets = 11;

const char *profBucketName(ProfBucket bucket);

/**
 * One run's host-side profile. Plain data, present (and all-zero) even
 * under TRANSFW_OBS=0 so SimResults keeps a stable shape. Seconds are
 * scaled estimates: the profiler samples one dispatch in `stride`, so
 * every measured interval is multiplied by the stride when snapshotted.
 * By construction sum(seconds[]) equals totalSeconds (both accumulate
 * exactly the same clock intervals), which test_ledger pins.
 */
struct HostProfile
{
    double seconds[kNumProfBuckets] = {};
    double totalSeconds = 0;           ///< measured dispatch wall (scaled)
    std::uint64_t dispatches = 0;      ///< every event fired
    std::uint64_t sampledDispatches = 0;
    std::uint32_t stride = 0;          ///< 0 = profiler was off

    double
    bucketSum() const
    {
        double s = 0;
        for (double v : seconds)
            s += v;
        return s;
    }
};

#if TRANSFW_OBS

/**
 * Wall-clock self-profiler for the simulator itself: attributes host
 * time spent inside event dispatch to component buckets, the ground
 * truth any event-kernel parallelisation will be judged against.
 *
 * Attached to the EventQueue as its DispatchHook, it samples one
 * dispatch in `stride` (default cfg::ObsConfig::profileStride): a
 * sampled dispatch opens a Kernel-bucket frame, and obs::ProfScope
 * RAII timers inside component code carve *self time* out of whatever
 * frame is open — nested scopes never double-count, and the interval
 * sum always equals the measured dispatch window. Unsampled dispatches
 * cost one counter increment and two virtual calls, keeping the
 * enabled-profiler overhead well under the 5% events/sec budget;
 * compiled out (TRANSFW_OBS=0) the hook is never installed and every
 * scope is an empty object.
 */
class SelfProfiler final : public sim::EventQueue::DispatchHook
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Arm the profiler. stride == 0 is clamped to 1 (every event). */
    void configure(bool enabled, std::uint32_t stride);

    bool enabled() const { return enabled_; }

    /** True while inside a sampled dispatch (scopes are live). */
    bool sampling() const { return depth_ > 0; }

    // --- sim::EventQueue::DispatchHook -----------------------------------
    void beginDispatch() override;
    void endDispatch() override;

    // --- component scopes (use obs::ProfScope, not these) -----------------
    void enter(ProfBucket bucket);
    void exit();

    // --- lane-kernel synchronization sampling ------------------------------
    /**
     * Countdown gate for sampling one window barrier in `stride`:
     * true once every stride_ calls while the profiler is enabled.
     * Window barriers happen *between* event dispatches, so their cost
     * is invisible to the dispatch hook; the lane kernel asks here
     * whether to time the next barrier and reports it via
     * chargeSync(). The same 1-in-stride discipline as dispatch
     * sampling keeps the snapshot scaling uniform.
     */
    bool syncSampleDue();

    /**
     * Charge @p ns of measured barrier/mailbox time to the LaneSync
     * bucket. Adds to the bucket and the total alike, so
     * bucketSum() == totalSeconds survives by construction.
     */
    void chargeSync(std::uint64_t ns);

    /** Scaled bucket/total estimate of where host time went. */
    HostProfile snapshot() const;

    /**
     * Dispatches per wall second since the previous call (sampler
     * column probe; the first call measures from configure()).
     */
    double recentEventsPerSec();

    void reset();

  private:
    static constexpr int kMaxDepth = 32;

    /** Close the open interval into @p bucket and restart it at @p t. */
    void
    charge(ProfBucket bucket, Clock::time_point t)
    {
        ns_[static_cast<std::size_t>(bucket)] +=
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    t - mark_)
                    .count());
        mark_ = t;
    }

    bool enabled_ = false;
    std::uint32_t stride_ = 16;
    std::uint32_t countdown_ = 16; ///< dispatches until the next sample
    std::uint32_t syncCountdown_ = 16; ///< barriers until the next sample
    std::uint64_t dispatches_ = 0;
    std::uint64_t sampledDispatches_ = 0;
    std::uint64_t ns_[kNumProfBuckets] = {};
    std::uint64_t totalNs_ = 0;
    int depth_ = 0; ///< 0 = not inside a sampled dispatch
    ProfBucket stack_[kMaxDepth];
    Clock::time_point mark_;      ///< start of the open interval
    Clock::time_point dispatch0_; ///< start of the sampled dispatch
    // recentEventsPerSec() bookkeeping.
    Clock::time_point probeTime_;
    std::uint64_t probeDispatches_ = 0;
    bool probed_ = false;
};

/**
 * RAII self-time timer: carves this scope's own time out of the
 * enclosing bucket while inside a sampled dispatch; free otherwise.
 * @p profiler may be null (component with observability detached).
 */
class ProfScope
{
  public:
    ProfScope(SelfProfiler *profiler, ProfBucket bucket)
        : profiler_(profiler && profiler->sampling() ? profiler : nullptr)
    {
        if (profiler_)
            profiler_->enter(bucket);
    }

    ~ProfScope()
    {
        if (profiler_)
            profiler_->exit();
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    SelfProfiler *profiler_;
};

#else // !TRANSFW_OBS

/** Compiled-out stub: never installable, measures nothing. */
class SelfProfiler
{
  public:
    void configure(bool, std::uint32_t) {}
    bool enabled() const { return false; }
    bool sampling() const { return false; }
    void enter(ProfBucket) {}
    void exit() {}
    bool syncSampleDue() { return false; }
    void chargeSync(std::uint64_t) {}
    HostProfile snapshot() const { return {}; }
    double recentEventsPerSec() { return 0.0; }
    void reset() {}
};

/** Compiled-out scope: an empty object the optimiser erases. */
class ProfScope
{
  public:
    ProfScope(SelfProfiler *, ProfBucket) {}
};

#endif // TRANSFW_OBS

} // namespace transfw::obs

#endif // TRANSFW_OBS_SELF_PROFILER_HPP
