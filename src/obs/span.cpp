#include "obs/span.hpp"

#include <set>

#include "obs/json.hpp"
#include "obs/sampler.hpp"
#include "sim/logging.hpp"

namespace transfw::obs {

void
SpanRecorder::setEnabled(bool on)
{
    enabled_ = on;
    if (on && spans_.capacity() == 0)
        spans_.reserve(4096);
}

void
SpanRecorder::clear()
{
    spans_.clear();
    dropped_ = 0;
    droppedIdx_ = kNoDropped;
}

void
SpanRecorder::noteDropped(sim::Tick start, sim::Tick end)
{
    ++dropped_;
    if (droppedIdx_ == kNoDropped) {
        droppedIdx_ = spans_.size();
        spans_.push_back(
            Span{"obs.dropped", start, end, kObsPid, 0, 0, 1.0});
        return;
    }
    Span &s = spans_[droppedIdx_];
    if (start < s.start)
        s.start = start;
    if (end > s.end)
        s.end = end;
    s.arg = static_cast<double>(dropped_);
}

void
SpanRecorder::writeChromeTrace(std::ostream &os,
                               const IntervalSampler *sampler) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    bool counters = sampler && sampler->rows() && sampler->columns();

    // Process-name metadata first, one entry per distinct pid.
    std::set<std::uint32_t> pids;
    for (const Span &s : spans_)
        pids.insert(s.pid);
    if (counters)
        pids.insert(kMetricsPid);
    for (std::uint32_t pid : pids) {
        sep();
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":";
        jsonEscape(os, pid == kHostPid      ? std::string("host")
                       : pid == kObsPid     ? std::string("obs")
                       : pid == kMetricsPid ? std::string("metrics")
                                            : sim::strfmt("gpu%u", pid));
        os << "}}";
    }

    for (const Span &s : spans_) {
        sep();
        os << "{\"name\":";
        jsonEscape(os, s.name);
        os << ",\"cat\":\"xlat\",\"ph\":\"X\",\"ts\":" << s.start
           << ",\"dur\":" << (s.end >= s.start ? s.end - s.start : 0)
           << ",\"pid\":" << s.pid << ",\"tid\":" << s.tid
           << ",\"args\":{\"vpn\":" << s.vpn;
        if (s.arg >= 0.0) {
            os << ",\"breakdown\":";
            jsonNumber(os, s.arg);
        }
        os << "}}";
    }

    // IntervalSampler series as counter tracks: one "C" event per
    // (row, column); Perfetto keys counter tracks on (pid, name).
    if (counters) {
        for (std::size_t row = 0; row < sampler->rows(); ++row) {
            for (std::size_t col = 0; col < sampler->columns(); ++col) {
                sep();
                os << "{\"name\":";
                jsonEscape(os, sampler->columnName(col));
                os << ",\"cat\":\"metrics\",\"ph\":\"C\",\"ts\":"
                   << sampler->rowTick(row)
                   << ",\"pid\":" << kMetricsPid
                   << ",\"tid\":0,\"args\":{\"value\":";
                jsonNumber(os, sampler->cell(row, col));
                os << "}}";
            }
        }
    }
    os << "\n]}\n";
}

} // namespace transfw::obs
