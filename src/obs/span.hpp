#ifndef TRANSFW_OBS_SPAN_HPP
#define TRANSFW_OBS_SPAN_HPP

#include <cstdint>
#include <ostream>
#include <vector>

#include "sim/ticks.hpp"

// Compile-time master switch for request-span recording. Building with
// -DTRANSFW_OBS=0 (CMake option TRANSFW_OBS=OFF) compiles every
// record() call site down to nothing, proving the instrumentation adds
// zero cost to the translation hot path.
#ifndef TRANSFW_OBS
#define TRANSFW_OBS 1
#endif

namespace transfw::obs {

class IntervalSampler;

/**
 * One closed, timed span of a translation request's lifecycle. POD:
 * @p name must be a string literal (every call site passes one), so
 * recording never allocates per span beyond vector growth — and when
 * the recorder is disabled, recording does nothing at all.
 */
struct Span
{
    const char *name;    ///< phase name, e.g. "gmmu.queue"
    sim::Tick start = 0;
    sim::Tick end = 0;
    std::uint32_t pid = 0;  ///< process track: requesting GPU / kHostPid
    std::uint64_t tid = 0;  ///< thread track: request id within the GPU
    std::uint64_t vpn = 0;  ///< faulting page (0 when not applicable)
    /** Optional numeric arg (< 0 = absent). The "xlat" root span
     *  carries the request's LatencyBreakdown::total() here so traces
     *  are self-checking: dur must equal this within one tick. */
    double arg = -1.0;
};

/**
 * Span recorder: components append closed spans as request phases
 * finish; the whole buffer exports as Chrome trace-event JSON that
 * ui.perfetto.dev (or chrome://tracing) loads directly. One Perfetto
 * "process" per GPU, one "thread" per request id, so the nested phase
 * spans of each translation stack on their own lane.
 *
 * Disabled (the default) it is a single branch per call site and never
 * allocates; enable via cfg::SystemConfig::obs.spans or setEnabled().
 */
class SpanRecorder
{
  public:
    /** pid for host-side tracks with no requesting GPU (driver batches). */
    static constexpr std::uint32_t kHostPid = 1000;
    /** pid for the recorder's own bookkeeping track (obs.dropped). */
    static constexpr std::uint32_t kObsPid = 1001;
    /** pid for IntervalSampler counter tracks (queue depths, rates). */
    static constexpr std::uint32_t kMetricsPid = 1002;

    bool enabled() const { return enabled_; }
    void setEnabled(bool on);

    /** Cap the buffer; spans beyond it are counted, not stored. */
    void setCapacity(std::size_t max_spans) { maxSpans_ = max_spans; }

    void
    record(const char *name, std::uint32_t pid, std::uint64_t tid,
           sim::Tick start, sim::Tick end, std::uint64_t vpn = 0,
           double arg = -1.0)
    {
#if TRANSFW_OBS
        if (!enabled_)
            return;
        if (spans_.size() >= maxSpans_ || droppedIdx_ != kNoDropped) {
            noteDropped(start, end);
            return;
        }
        spans_.push_back(Span{name, start, end, pid, tid, vpn, arg});
#else
        (void)name; (void)pid; (void)tid; (void)start; (void)end;
        (void)vpn; (void)arg;
#endif
    }

    const std::vector<Span> &spans() const { return spans_; }
    std::uint64_t dropped() const { return dropped_; }
    void clear();

    /**
     * Export as Chrome trace-event JSON ("X" complete events plus
     * process-name metadata), loadable in ui.perfetto.dev. Ticks map
     * 1:1 onto trace microseconds. When @p sampler is non-null, its
     * time series also export as Perfetto counter tracks ("C" events
     * on the kMetricsPid process, one track per column) so queue
     * depths and rates plot directly under the request spans.
     */
    void writeChromeTrace(std::ostream &os,
                          const IntervalSampler *sampler = nullptr) const;

  private:
    static constexpr std::size_t kNoDropped = static_cast<std::size_t>(-1);

    /**
     * Capacity overflow: instead of silently truncating the Perfetto
     * export, record one synthetic "obs.dropped" span on the kObsPid
     * track covering the whole dropped window, its arg carrying the
     * running drop count. One extra slot past the cap; later drops
     * extend it in place.
     */
    void noteDropped(sim::Tick start, sim::Tick end);

    bool enabled_ = false;
    std::size_t maxSpans_ = std::size_t{1} << 22; ///< ~4M span cap
    std::uint64_t dropped_ = 0;
    std::size_t droppedIdx_ = kNoDropped;
    std::vector<Span> spans_;
};

} // namespace transfw::obs

#endif // TRANSFW_OBS_SPAN_HPP
