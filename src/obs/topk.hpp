#ifndef TRANSFW_OBS_TOPK_HPP
#define TRANSFW_OBS_TOPK_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/flat_map.hpp"

namespace transfw::obs {

/**
 * Space-saving top-K frequency sketch (Metwally, Agrawal & El Abbadi,
 * "Efficient Computation of Frequent and Top-k Elements in Data
 * Streams"). Tracks at most `capacity` keys in O(capacity) memory no
 * matter how many distinct keys the stream contains: a hit increments
 * the key's counter; an unseen key with the table full evicts the
 * current minimum-count entry and inherits its count (+1), keeping the
 * inherited amount as the entry's error bound.
 *
 * Guarantees of the algorithm: a key's true count never exceeds its
 * estimate, and estimate - error never exceeds the true count — so any
 * key whose true frequency beats the minimum counter is guaranteed to
 * be in the table. That makes it the right tool for "which VPN groups
 * keep the hot shard hot": heavy hitters can't be missed, and the
 * error field says how trustworthy each reported count is.
 *
 * Purely observational and deterministic (no hashing, no randomness):
 * fed from the simulated event stream, it produces identical tables on
 * every run and lane count.
 */
class TopK
{
  public:
    struct Entry
    {
        std::uint64_t key = 0;
        std::uint64_t count = 0; ///< over-estimate of the true count
        std::uint64_t error = 0; ///< count inherited at eviction time
    };

    explicit TopK(std::size_t capacity = 64) : capacity_(capacity) {}

    /** Observe one occurrence of @p key. */
    void
    note(std::uint64_t key)
    {
        ++total_;
        auto it = index_.find(key);
        if (it != index_.end()) {
            ++entries_[it->second].count;
            return;
        }
        if (entries_.size() < capacity_) {
            index_.insert_or_assign(key, entries_.size());
            entries_.push_back(Entry{key, 1, 0});
            return;
        }
        // Table full and the key is unseen: replace the current
        // minimum (linear scan — capacity is small by design) and
        // inherit its count as the new entry's error bound.
        std::size_t victim = 0;
        for (std::size_t i = 1; i < entries_.size(); ++i)
            if (entries_[i].count < entries_[victim].count)
                victim = i;
        index_.erase(entries_[victim].key);
        std::uint64_t inherited = entries_[victim].count;
        entries_[victim] = Entry{key, inherited + 1, inherited};
        index_.insert_or_assign(key, victim);
    }

    /** Total keys noted (exact, not an estimate). */
    std::uint64_t total() const { return total_; }
    /** Distinct keys currently tracked (<= capacity). */
    std::size_t tracked() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

    /**
     * The top @p k entries by estimated count, descending (ties broken
     * by key for a deterministic order). k = 0 returns all tracked.
     */
    std::vector<Entry>
    top(std::size_t k = 0) const
    {
        std::vector<Entry> out = entries_;
        std::sort(out.begin(), out.end(),
                  [](const Entry &a, const Entry &b) {
                      return a.count != b.count ? a.count > b.count
                                                : a.key < b.key;
                  });
        if (k && out.size() > k)
            out.resize(k);
        return out;
    }

    /** Estimated share of the stream held by the top @p k keys. */
    double
    topShare(std::size_t k) const
    {
        if (!total_)
            return 0.0;
        std::uint64_t sum = 0;
        for (const Entry &e : top(k))
            sum += e.count;
        double share =
            static_cast<double>(sum) / static_cast<double>(total_);
        return share > 1.0 ? 1.0 : share;
    }

    void
    clear()
    {
        entries_.clear();
        index_.clear();
        total_ = 0;
    }

  private:
    std::size_t capacity_;
    std::vector<Entry> entries_;
    sim::FlatMap<std::uint64_t, std::size_t> index_;
    std::uint64_t total_ = 0;
};

} // namespace transfw::obs

#endif // TRANSFW_OBS_TOPK_HPP
