#ifndef TRANSFW_PWC_INFINITE_HPP
#define TRANSFW_PWC_INFINITE_HPP

#include "pwc/pwc.hpp"
#include "sim/flat_map.hpp"

namespace transfw::pwc {

/**
 * Oracle PW-cache with unbounded capacity (only cold misses), used for
 * the Section III-B "room for improvement" study (Fig. 4, first bar).
 */
class InfinitePwc : public PageWalkCache
{
  public:
    explicit InfinitePwc(mem::PagingGeometry geo) : PageWalkCache(geo) {}

    int lookup(mem::Vpn vpn) override
    {
        int level = probe(vpn);
        recordLookup(level);
        return level;
    }

    int probe(mem::Vpn vpn) const override
    {
        for (int level = geo_.lowestCachedLevel(); level <= geo_.levels;
             ++level) {
            std::uint64_t tag = (geo_.prefix(vpn, level) << 3) |
                                static_cast<unsigned>(level);
            if (entries_.count(tag))
                return level;
        }
        return 0;
    }

    void fill(mem::Vpn vpn, int level) override
    {
        entries_.insert((geo_.prefix(vpn, level) << 3) |
                        static_cast<unsigned>(level));
    }

    void invalidateAll() override { entries_.clear(); }

  private:
    /** Probed once per cacheable level on every lookup: flat probing
     *  beats the node-based set by a wide margin at these rates. */
    sim::FlatSet<std::uint64_t> entries_;
};

} // namespace transfw::pwc

#endif // TRANSFW_PWC_INFINITE_HPP
