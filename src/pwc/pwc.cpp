#include "pwc/pwc.hpp"

#include "pwc/infinite.hpp"
#include "pwc/stc.hpp"
#include "pwc/utc.hpp"
#include "sim/logging.hpp"

namespace transfw::pwc {

std::unique_ptr<PageWalkCache>
makePwc(PwcKind kind, std::size_t entries, mem::PagingGeometry geo)
{
    switch (kind) {
      case PwcKind::Utc:
        return std::make_unique<UnifiedTranslationCache>(entries, geo);
      case PwcKind::Stc:
        return std::make_unique<SplitTranslationCache>(geo);
      case PwcKind::Infinite:
        return std::make_unique<InfinitePwc>(geo);
    }
    sim::panic("unknown PW-cache kind");
}

} // namespace transfw::pwc
