#include "pwc/pwc.hpp"

#include "obs/metrics.hpp"
#include "pwc/infinite.hpp"
#include "pwc/stc.hpp"
#include "pwc/utc.hpp"
#include "sim/logging.hpp"

namespace transfw::pwc {

void
PageWalkCache::registerMetrics(obs::MetricRegistry &reg,
                               const std::string &prefix) const
{
    reg.registerGauge(prefix + ".lookups", [this] {
        return static_cast<double>(lookups());
    });
    reg.registerGauge(prefix + ".hitRate", [this] { return hitRate(); });
    for (int level = geo_.lowestCachedLevel(); level <= geo_.levels;
         ++level) {
        reg.registerGauge(
            prefix + sim::strfmt(".hitLevel%d", level), [this, level] {
                return hitLevels_.fraction(static_cast<std::size_t>(level));
            });
    }
}

std::unique_ptr<PageWalkCache>
makePwc(PwcKind kind, std::size_t entries, mem::PagingGeometry geo)
{
    switch (kind) {
      case PwcKind::Utc:
        return std::make_unique<UnifiedTranslationCache>(entries, geo);
      case PwcKind::Stc:
        return std::make_unique<SplitTranslationCache>(geo);
      case PwcKind::Infinite:
        return std::make_unique<InfinitePwc>(geo);
    }
    sim::panic("unknown PW-cache kind");
}

} // namespace transfw::pwc
