#ifndef TRANSFW_PWC_PWC_HPP
#define TRANSFW_PWC_PWC_HPP

#include <memory>
#include <string>

#include "mem/address.hpp"
#include "stats/stats.hpp"

namespace transfw::obs {
class MetricRegistry;
}

namespace transfw::pwc {

/**
 * Page walk cache (MMU cache) interface. Entries cache intermediate
 * page-table entries tagged by VA prefix: a level-k entry maps the radix
 * indices from the top level down to level k onto the level k-1 node
 * pointer, so a hit at level k leaves (k - leafLevel) memory accesses to
 * finish the walk. Leaf PTEs are cached in the TLBs, not here.
 */
class PageWalkCache
{
  public:
    explicit PageWalkCache(mem::PagingGeometry geo) : geo_(geo) {}
    virtual ~PageWalkCache() = default;

    /**
     * Find the longest matching prefix for @p vpn, updating recency.
     * @return the entry level of the match (lowestCachedLevel()..levels),
     * or 0 when nothing matches (walk starts at the root).
     */
    virtual int lookup(mem::Vpn vpn) = 0;

    /** Recency-neutral lookup used for remote-hit characterization. */
    virtual int probe(mem::Vpn vpn) const = 0;

    /** Install the level-@p level entry covering @p vpn. */
    virtual void fill(mem::Vpn vpn, int level) = 0;

    /** Drop every entry. */
    virtual void invalidateAll() = 0;

    const mem::PagingGeometry &geometry() const { return geo_; }

    /**
     * Hit-level histogram: bucket i>0 counts lookups whose longest match
     * was entry level i; bucket 0 counts complete misses. Filled by
     * lookup(), not probe().
     */
    const stats::BucketHistogram &hitLevels() const { return hitLevels_; }
    std::uint64_t lookups() const { return lookups_; }

    /** Fraction of lookups matching some entry (bucket 0 = miss). */
    double
    hitRate() const
    {
        return lookups_ ? 1.0 - hitLevels_.fraction(0) : 0.0;
    }

    /** Register "<prefix>.lookups"/".hitRate"/".hitLevelN" gauges. */
    void registerMetrics(obs::MetricRegistry &reg,
                         const std::string &prefix) const;

    /** Record a lookup outcome (shared by implementations). */
    void
    recordLookup(int level)
    {
        ++lookups_;
        hitLevels_.record(static_cast<std::size_t>(level));
    }

  protected:
    mem::PagingGeometry geo_;

  private:
    stats::BucketHistogram hitLevels_{8};
    std::uint64_t lookups_ = 0;
};

/** PW-cache organization selector (Section V-C). */
enum class PwcKind
{
    Utc,      ///< Unified Translation Cache: one array, mixed levels
    Stc,      ///< Split Translation Cache: one array per level
    Infinite, ///< oracle: unbounded, only cold misses (Section III-B)
};

/** Factory: build a PW-cache of @p kind with @p entries total capacity. */
std::unique_ptr<PageWalkCache> makePwc(PwcKind kind, std::size_t entries,
                                       mem::PagingGeometry geo);

} // namespace transfw::pwc

#endif // TRANSFW_PWC_PWC_HPP
