#include "pwc/stc.hpp"

namespace transfw::pwc {

SplitTranslationCache::SplitTranslationCache(mem::PagingGeometry geo)
    : PageWalkCache(geo)
{
    // Paper configuration: L2:64, L3:32, L4:16, L5:16 entries.
    static constexpr std::size_t sizes[] = {64, 32, 16, 16};
    int cached_levels = geo_.levels - geo_.lowestCachedLevel() + 1;
    for (int i = 0; i < cached_levels; ++i) {
        std::size_t entries = sizes[std::min(i, 3)];
        arrays_.emplace_back(entries, std::min<std::size_t>(entries, 4));
    }
}

int
SplitTranslationCache::lookup(mem::Vpn vpn)
{
    for (int level = geo_.lowestCachedLevel(); level <= geo_.levels;
         ++level) {
        std::uint64_t tag = geo_.prefix(vpn, level);
        if (arrayFor(level).lookup(tag)) {
            recordLookup(level);
            return level;
        }
    }
    recordLookup(0);
    return 0;
}

int
SplitTranslationCache::probe(mem::Vpn vpn) const
{
    for (int level = geo_.lowestCachedLevel(); level <= geo_.levels;
         ++level) {
        if (arrayFor(level).probe(geo_.prefix(vpn, level)))
            return level;
    }
    return 0;
}

void
SplitTranslationCache::fill(mem::Vpn vpn, int level)
{
    arrayFor(level).insert(geo_.prefix(vpn, level), {});
}

void
SplitTranslationCache::invalidateAll()
{
    for (auto &array : arrays_)
        array.invalidateAll();
}

} // namespace transfw::pwc
