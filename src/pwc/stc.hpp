#ifndef TRANSFW_PWC_STC_HPP
#define TRANSFW_PWC_STC_HPP

#include <vector>

#include "cache/set_assoc.hpp"
#include "pwc/pwc.hpp"

namespace transfw::pwc {

/**
 * Split Translation Cache (Section V-C): one array per page-table
 * level, so levels do not compete for capacity. The paper's sizing —
 * 16 entries for L5, 16 for L4, 32 for L3, 64 for L2 — is applied from
 * the lowest cached level upward (the largest array serves the longest
 * prefixes); four-level tables drop the topmost array.
 */
class SplitTranslationCache : public PageWalkCache
{
  public:
    explicit SplitTranslationCache(mem::PagingGeometry geo);

    int lookup(mem::Vpn vpn) override;
    int probe(mem::Vpn vpn) const override;
    void fill(mem::Vpn vpn, int level) override;
    void invalidateAll() override;

  private:
    struct Empty
    {};
    /** arrays_[0] serves lowestCachedLevel(), upward from there. */
    std::vector<cache::SetAssoc<Empty>> arrays_;

    cache::SetAssoc<Empty> &arrayFor(int level)
    {
        return arrays_[static_cast<std::size_t>(
            level - geo_.lowestCachedLevel())];
    }
    const cache::SetAssoc<Empty> &arrayFor(int level) const
    {
        return arrays_[static_cast<std::size_t>(
            level - geo_.lowestCachedLevel())];
    }
};

} // namespace transfw::pwc

#endif // TRANSFW_PWC_STC_HPP
