#include "pwc/utc.hpp"

namespace transfw::pwc {

UnifiedTranslationCache::UnifiedTranslationCache(std::size_t entries,
                                                 mem::PagingGeometry geo,
                                                 std::size_t ways)
    : PageWalkCache(geo),
      array_(entries, entries % ways == 0 ? ways : entries)
{}

int
UnifiedTranslationCache::lookup(mem::Vpn vpn)
{
    // Longest prefix = lowest entry level; scan upward and stop at the
    // first match (the UTC does this with a single parallel tag check).
    for (int level = geo_.lowestCachedLevel(); level <= geo_.levels;
         ++level) {
        if (array_.lookup(key(vpn, level))) {
            recordLookup(level);
            return level;
        }
    }
    recordLookup(0);
    return 0;
}

int
UnifiedTranslationCache::probe(mem::Vpn vpn) const
{
    for (int level = geo_.lowestCachedLevel(); level <= geo_.levels;
         ++level) {
        if (array_.probe(key(vpn, level)))
            return level;
    }
    return 0;
}

void
UnifiedTranslationCache::fill(mem::Vpn vpn, int level)
{
    array_.insert(key(vpn, level), {});
}

} // namespace transfw::pwc
