#ifndef TRANSFW_PWC_UTC_HPP
#define TRANSFW_PWC_UTC_HPP

#include "cache/set_assoc.hpp"
#include "pwc/pwc.hpp"

namespace transfw::pwc {

/**
 * Unified Translation Cache (Intel's UTC, adopted by the paper as the
 * default PW-cache): entries from all page-table levels share a single
 * set-associative array. A lookup checks every level's tag for @p vpn
 * and returns the longest matching prefix in one access.
 */
class UnifiedTranslationCache : public PageWalkCache
{
  public:
    UnifiedTranslationCache(std::size_t entries, mem::PagingGeometry geo,
                            std::size_t ways = 4);

    int lookup(mem::Vpn vpn) override;
    int probe(mem::Vpn vpn) const override;
    void fill(mem::Vpn vpn, int level) override;
    void invalidateAll() override { array_.invalidateAll(); }

  private:
    /** Tag: the VA prefix with the entry level in the low bits. */
    std::uint64_t
    key(mem::Vpn vpn, int level) const
    {
        return (geo_.prefix(vpn, level) << 3) | static_cast<unsigned>(level);
    }

    struct Empty
    {};
    cache::SetAssoc<Empty> array_;
};

} // namespace transfw::pwc

#endif // TRANSFW_PWC_UTC_HPP
