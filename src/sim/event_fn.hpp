#ifndef TRANSFW_SIM_EVENT_FN_HPP
#define TRANSFW_SIM_EVENT_FN_HPP

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace transfw::sim {

/**
 * Small-buffer-optimised, move-only callable for event callbacks.
 *
 * The event kernel fires millions of closures per simulated second;
 * std::function's 16-byte inline buffer forces a heap allocation for
 * the typical simulator closure (this-pointer + a couple of scalars +
 * a captured continuation), which dominated the kernel's profile.
 * EventFn stores any callable up to kInlineBytes inline and only falls
 * back to the heap beyond that. Unlike std::function it accepts
 * move-only callables (e.g. lambdas capturing a unique_ptr or another
 * EventFn), so continuation-passing code never needs shared_ptr
 * wrappers just to satisfy copyability.
 */
class EventFn
{
  public:
    /**
     * Sized so the common simulator closure — this + a VPN + a couple
     * of ints + one std::function continuation — stays inline.
     */
    static constexpr std::size_t kInlineBytes = 64;

    EventFn() noexcept = default;
    EventFn(std::nullptr_t) noexcept {}

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                          std::is_invocable_r_v<void, D &>>>
    EventFn(F &&fn)
    {
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void *>(buf_)) D(std::forward<F>(fn));
            ops_ = &InlineImpl<D>::ops;
        } else {
            ::new (static_cast<void *>(buf_))
                D *(new D(std::forward<F>(fn)));
            ops_ = &HeapImpl<D>::ops;
        }
    }

    EventFn(EventFn &&other) noexcept : ops_(other.ops_)
    {
        if (ops_) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    EventFn &
    operator=(EventFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_) {
                ops_->relocate(buf_, other.buf_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    /** Invoke. Undefined on an empty EventFn (like std::function). */
    void operator()() { ops_->invoke(buf_); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** True when the callable lives in the inline buffer (no heap). */
    bool
    isInline() const noexcept
    {
        return ops_ != nullptr && ops_->inlineStored;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
        bool inlineStored;
    };

    template <typename D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= kInlineBytes &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    struct InlineImpl
    {
        static D *
        at(void *p)
        {
            return std::launder(reinterpret_cast<D *>(p));
        }
        static void invoke(void *p) { (*at(p))(); }
        static void
        relocate(void *dst, void *src)
        {
            ::new (dst) D(std::move(*at(src)));
            at(src)->~D();
        }
        static void destroy(void *p) { at(p)->~D(); }
        static constexpr Ops ops{&invoke, &relocate, &destroy, true};
    };

    template <typename D>
    struct HeapImpl
    {
        static D **
        at(void *p)
        {
            return std::launder(reinterpret_cast<D **>(p));
        }
        static void invoke(void *p) { (**at(p))(); }
        static void
        relocate(void *dst, void *src)
        {
            ::new (dst) D *(*at(src));
        }
        static void destroy(void *p) { delete *at(p); }
        static constexpr Ops ops{&invoke, &relocate, &destroy, false};
    };

    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

} // namespace transfw::sim

#endif // TRANSFW_SIM_EVENT_FN_HPP
