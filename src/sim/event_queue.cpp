#include "sim/event_queue.hpp"

#include "sim/logging.hpp"

namespace transfw::sim {

void
EventQueue::scheduleAt(Tick when, Callback cb)
{
    if (when < now_)
        panic(strfmt("event scheduled in the past: %llu < %llu",
                     static_cast<unsigned long long>(when),
                     static_cast<unsigned long long>(now_)));
    heap_.push(Entry{when, next_seq_++, std::move(cb), false});
    ++strong_;
}

void
EventQueue::scheduleWeakAt(Tick when, Callback cb)
{
    if (when < now_)
        panic(strfmt("weak event scheduled in the past: %llu < %llu",
                     static_cast<unsigned long long>(when),
                     static_cast<unsigned long long>(now_)));
    heap_.push(Entry{when, next_seq_++, std::move(cb), true});
}

std::uint64_t
EventQueue::run(Tick until)
{
    std::uint64_t executed = 0;
    while (strong_ > 0 && heap_.top().when <= until) {
        // Move the callback out before popping so re-entrant schedules
        // during the callback see a consistent heap.
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        if (!e.weak)
            --strong_;
        now_ = e.when;
        e.cb();
        ++executed;
    }
    // Once only weak events remain they must neither run nor advance
    // the clock: the simulation ends exactly at its last strong event.
    if (strong_ == 0)
        heap_ = {};
    return executed;
}

bool
EventQueue::runOne()
{
    if (strong_ == 0) {
        heap_ = {};
        return false;
    }
    Entry e = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    if (!e.weak)
        --strong_;
    now_ = e.when;
    e.cb();
    return true;
}

} // namespace transfw::sim
