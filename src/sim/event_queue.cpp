#include "sim/event_queue.hpp"

#include "sim/logging.hpp"

namespace transfw::sim {

void
EventQueue::scheduleAt(Tick when, Callback cb)
{
    if (when < now_)
        panic(strfmt("event scheduled in the past: %llu < %llu",
                     static_cast<unsigned long long>(when),
                     static_cast<unsigned long long>(now_)));
    heap_.push(Entry{when, next_seq_++, std::move(cb)});
}

std::uint64_t
EventQueue::run(Tick until)
{
    std::uint64_t executed = 0;
    while (!heap_.empty() && heap_.top().when <= until) {
        // Move the callback out before popping so re-entrant schedules
        // during the callback see a consistent heap.
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = e.when;
        e.cb();
        ++executed;
    }
    return executed;
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    Entry e = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    now_ = e.when;
    e.cb();
    return true;
}

} // namespace transfw::sim
