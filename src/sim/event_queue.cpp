#include "sim/event_queue.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace transfw::sim {

void
EventQueue::scheduleAt(Tick when, Callback cb)
{
    if (when < now_)
        panic(strfmt("event scheduled in the past: %llu < %llu",
                     static_cast<unsigned long long>(when),
                     static_cast<unsigned long long>(now_)));
    push(when, std::move(cb), false);
    ++strong_;
}

void
EventQueue::scheduleWeakAt(Tick when, Callback cb)
{
    if (when < now_)
        panic(strfmt("weak event scheduled in the past: %llu < %llu",
                     static_cast<unsigned long long>(when),
                     static_cast<unsigned long long>(now_)));
    push(when, std::move(cb), true);
}

void
EventQueue::push(Tick when, Callback cb, bool weak)
{
    ++size_;
    if (size_ > peak_)
        peak_ = size_;
    if (when - now_ < kWindow) {
        std::size_t idx = bucketIndex(when);
        buckets_[idx].entries.push_back(
            Entry{nextSeq_++, std::move(cb), weak});
        liveBits_[idx / 64] |= std::uint64_t{1} << (idx % 64);
        return;
    }
    far_.push_back(FarEntry{when, nextSeq_++, std::move(cb), weak});
    std::push_heap(far_.begin(), far_.end(), FarLater{});
}

namespace {

/**
 * First set bit in @p bits within [lo, hi), or kLimit when none.
 * @p bits spans kLimit bits across 64-bit words.
 */
template <std::size_t kWords>
std::size_t
firstLiveSlot(const std::array<std::uint64_t, kWords> &bits,
              std::size_t lo, std::size_t hi, std::size_t none)
{
    if (lo >= hi)
        return none;
    std::size_t w = lo / 64;
    std::uint64_t word = bits[w] & (~std::uint64_t{0} << (lo % 64));
    while (true) {
        if (word) {
            std::size_t idx =
                w * 64 + static_cast<std::size_t>(__builtin_ctzll(word));
            return idx < hi ? idx : none;
        }
        ++w;
        if (w * 64 >= hi)
            return none;
        word = bits[w];
    }
}

} // namespace

Tick
EventQueue::nextEventTick() const
{
    Tick next = far_.empty() ? kMaxTick : far_.front().when;
    // The ring covers ticks [now_, now_ + kWindow): slot
    // (start + d) % kWindow holds tick now_ + d, so the first live
    // slot in circular order starting at now_'s own slot is the
    // earliest bucketed tick.
    std::size_t start = bucketIndex(now_);
    std::size_t idx = firstLiveSlot(liveBits_, start, kWindow, kWindow);
    std::size_t dist;
    if (idx < kWindow) {
        dist = idx - start;
    } else {
        idx = firstLiveSlot(liveBits_, 0, start, kWindow);
        dist = idx < kWindow ? idx + kWindow - start : kWindow;
    }
    if (dist < kWindow) {
        Tick t = now_ + dist;
        if (t < next)
            next = t;
    }
    return next;
}

std::uint64_t
EventQueue::run(Tick until)
{
    std::uint64_t executed = 0;
    while (strong_ > 0) {
        Tick t = nextEventTick();
        if (t > until)
            break;
        now_ = t;
        executed += drainTick(t);
    }
    // Once only weak events remain they must neither run nor advance
    // the clock: the simulation ends exactly at its last strong event.
    if (strong_ == 0)
        discardAll();
    return executed;
}

std::uint64_t
EventQueue::drainTick(Tick when)
{
    std::uint64_t executed = 0;
    // Far entries for this tick fire first: they were scheduled at
    // least a window earlier, so their sequence numbers precede every
    // bucket entry for the same tick (see the class comment).
    while (strong_ > 0 && !far_.empty() && far_.front().when == when) {
        std::pop_heap(far_.begin(), far_.end(), FarLater{});
        FarEntry e = std::move(far_.back());
        far_.pop_back();
        fire(Entry{e.seq, std::move(e.cb), e.weak});
        ++executed;
    }
    std::size_t idx = bucketIndex(when);
    Bucket &b = buckets_[idx];
    // Callbacks may append same-tick events to this very bucket (a
    // zero-delay reschedule), growing the vector mid-drain: move each
    // entry out before invoking and re-check the bounds every step.
    while (strong_ > 0 && !b.drained()) {
        Entry e = std::move(b.entries[b.head++]);
        fire(std::move(e));
        ++executed;
    }
    if (strong_ > 0)
        resetBucket(idx);
    return executed;
}

std::uint64_t
EventQueue::runWindow(Tick end)
{
    std::uint64_t executed = 0;
    // Guard on strong_: with only weak events left nothing may run
    // (drainTick would execute zero events forever), and the decision
    // to discard them belongs to the caller at global termination.
    while (strong_ > 0) {
        Tick t = nextEventTick();
        if (t >= end)
            break;
        now_ = t;
        executed += drainTick(t);
    }
    return executed;
}

bool
EventQueue::runOne()
{
    if (strong_ == 0) {
        discardAll();
        return false;
    }
    Tick t = nextEventTick();
    now_ = t;
    fireOne(t);
    return true;
}

void
EventQueue::fireOne(Tick when)
{
    if (!far_.empty() && far_.front().when == when) {
        std::pop_heap(far_.begin(), far_.end(), FarLater{});
        FarEntry e = std::move(far_.back());
        far_.pop_back();
        fire(Entry{e.seq, std::move(e.cb), e.weak});
        return;
    }
    std::size_t idx = bucketIndex(when);
    Bucket &b = buckets_[idx];
    Entry e = std::move(b.entries[b.head++]);
    // Recycle the bucket before invoking: the callback may schedule a
    // new event at this same tick, which must land in a fresh bucket,
    // not be wiped by a post-hoc reset.
    if (b.drained())
        resetBucket(idx);
    fire(std::move(e));
}

void
EventQueue::fire(Entry e)
{
    // Counters drop before the callback runs so pending()/strongPending()
    // observed from inside an event exclude the event itself.
    if (!e.weak)
        --strong_;
    --size_;
#if TRANSFW_OBS
    if (hook_) {
        hook_->beginDispatch();
        e.cb();
        hook_->endDispatch();
        return;
    }
#endif
    e.cb();
}

void
EventQueue::resetBucket(std::size_t idx)
{
    Bucket &b = buckets_[idx];
    if (b.head == 0 && b.entries.empty())
        return;
    b.entries.clear(); // keeps capacity for the next tick landing here
    b.head = 0;
    liveBits_[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
}

void
EventQueue::discardAll()
{
    if (size_ == 0)
        return;
    for (std::size_t idx = 0; idx < kWindow; ++idx)
        resetBucket(idx);
    far_.clear();
    size_ = 0;
}

} // namespace transfw::sim
