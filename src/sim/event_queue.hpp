#ifndef TRANSFW_SIM_EVENT_QUEUE_HPP
#define TRANSFW_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/ticks.hpp"

namespace transfw::sim {

/**
 * Discrete-event simulation kernel.
 *
 * Components schedule callbacks at absolute or relative ticks; run()
 * drains events in (tick, insertion-order) order, which makes execution
 * fully deterministic: two events at the same tick fire in the order
 * they were scheduled.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulation time. */
    Tick now() const { return now_; }

    /** Schedule @p cb to fire @p delay ticks from now. */
    void schedule(Tick delay, Callback cb) { scheduleAt(now_ + delay, std::move(cb)); }

    /**
     * Schedule @p cb at absolute tick @p when.
     * Scheduling in the past is an invariant violation (panics).
     */
    void scheduleAt(Tick when, Callback cb);

    /**
     * Schedule @p cb like schedule(), but weakly: weak events never
     * keep the simulation alive. They execute in normal (tick,
     * insertion) order while at least one strong event remains
     * pending; once only weak events are left, they are discarded
     * unrun and now() does not advance to them. Observers (e.g. the
     * interval sampler) use this so instrumentation cannot perturb
     * the measured end of the simulation.
     */
    void scheduleWeak(Tick delay, Callback cb)
    {
        scheduleWeakAt(now_ + delay, std::move(cb));
    }

    /** Absolute-tick variant of scheduleWeak(). */
    void scheduleWeakAt(Tick when, Callback cb);

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events (strong and weak). */
    std::size_t pending() const { return heap_.size(); }

    /** Number of pending strong (simulation-driving) events. */
    std::size_t strongPending() const { return strong_; }

    /**
     * Execute events until the queue drains or the next event lies past
     * @p until. @return the number of events executed.
     */
    std::uint64_t run(Tick until = kMaxTick);

    /** Execute exactly one event if available. @return true if one ran. */
    bool runOne();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
        bool weak = false;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::size_t strong_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

} // namespace transfw::sim

#endif // TRANSFW_SIM_EVENT_QUEUE_HPP
