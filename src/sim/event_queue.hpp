#ifndef TRANSFW_SIM_EVENT_QUEUE_HPP
#define TRANSFW_SIM_EVENT_QUEUE_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/ticks.hpp"

// Observability master switch. Canonically set by the build system
// (TRANSFW_OBS=0 compiles instrumentation out); defaulting it here
// keeps sim/ independent of the obs/ headers that also guard on it.
#ifndef TRANSFW_OBS
#define TRANSFW_OBS 1
#endif

namespace transfw::sim {

/**
 * Discrete-event simulation kernel.
 *
 * Components schedule callbacks at absolute or relative ticks; run()
 * drains events in (tick, insertion-order) order, which makes execution
 * fully deterministic: two events at the same tick fire in the order
 * they were scheduled.
 *
 * Internally the queue is two-level, in the spirit of calendar/ladder
 * queues: events within kWindow ticks of now() land in a ring of
 * per-tick buckets (append = already sorted, since the insertion
 * sequence is monotonic), and only far-future events pay for a binary
 * heap. A bitmap over the ring makes "next non-empty tick" a handful
 * of word scans. Combined with the small-buffer-optimised EventFn
 * callback, the schedule → fire round trip on the common path touches
 * no allocator at steady state (bucket vectors retain their capacity).
 *
 * Ordering across the two levels is safe by construction: an event can
 * only ever sit in the heap if it was scheduled ≥ kWindow ticks ahead,
 * i.e. strictly earlier in simulation time than any bucket insertion
 * for the same tick — so its sequence number is strictly smaller, and
 * draining the heap before the bucket at each tick preserves exact
 * (tick, seq) order.
 */
class EventQueue
{
  public:
    using Callback = EventFn;

    /** Near-future window covered by the bucket ring (power of two). */
    static constexpr std::size_t kWindow = 1024;

#if TRANSFW_OBS
    /**
     * Observer of event-dispatch boundaries (the obs::SelfProfiler).
     * beginDispatch() fires immediately before a callback is invoked
     * and endDispatch() immediately after; both run on the hot path,
     * so implementations must keep the common case to a few
     * instructions. Compiled out entirely under TRANSFW_OBS=0.
     */
    class DispatchHook
    {
      public:
        virtual ~DispatchHook() = default;
        virtual void beginDispatch() = 0;
        virtual void endDispatch() = 0;
    };

    /** Install (or clear, with nullptr) the dispatch observer. */
    void setDispatchHook(DispatchHook *hook) { hook_ = hook; }
#endif

    /**
     * High-water mark of queued events (strong + weak) over the queue's
     * lifetime. A pure function of the event schedule, so deterministic
     * — it lands in the ledger's metrics section, not the wall section.
     */
    std::size_t peakPending() const { return peak_; }

    /** Current simulation time. */
    Tick now() const { return now_; }

    /** Schedule @p cb to fire @p delay ticks from now. */
    void schedule(Tick delay, Callback cb) { scheduleAt(now_ + delay, std::move(cb)); }

    /**
     * Schedule @p cb at absolute tick @p when.
     * Scheduling in the past is an invariant violation (panics).
     */
    void scheduleAt(Tick when, Callback cb);

    /**
     * Schedule @p cb like schedule(), but weakly: weak events never
     * keep the simulation alive. They execute in normal (tick,
     * insertion) order while at least one strong event remains
     * pending; once only weak events are left, they are discarded
     * unrun and now() does not advance to them. Observers (e.g. the
     * interval sampler) use this so instrumentation cannot perturb
     * the measured end of the simulation.
     */
    void scheduleWeak(Tick delay, Callback cb)
    {
        scheduleWeakAt(now_ + delay, std::move(cb));
    }

    /** Absolute-tick variant of scheduleWeak(). */
    void scheduleWeakAt(Tick when, Callback cb);

    /** True when no events remain (strong or weak). */
    bool empty() const { return size_ == 0; }

    /**
     * Number of pending events that can still execute. While strong
     * work remains this counts strong and weak events alike; once only
     * weak events are left they will never run (see scheduleWeak), so
     * pending() reports 0 rather than counting zombies.
     */
    std::size_t pending() const { return strong_ ? size_ : 0; }

    /** Number of pending strong (simulation-driving) events. */
    std::size_t strongPending() const { return strong_; }

    /**
     * Number of weak events currently queued, whether or not they will
     * ever execute (they won't unless strong work precedes them).
     */
    std::size_t weakPending() const { return size_ - strong_; }

    /**
     * Execute events until the queue drains or the next event lies past
     * @p until. @return the number of events executed.
     */
    std::uint64_t run(Tick until = kMaxTick);

    /** Execute exactly one event if available. @return true if one ran. */
    bool runOne();

    /**
     * Earliest pending tick (strong or weak); kMaxTick when nothing is
     * queued. The lane scheduler uses this to skip empty lookahead
     * windows.
     */
    Tick nextTick() const { return nextEventTick(); }

    /**
     * Execute every event with tick < @p end, in exact (tick, seq)
     * order, and stop. Unlike run(), the weak remainder is never
     * discarded and now() stays at the last executed tick — the queue
     * remains open for the next lookahead window. Events a callback
     * schedules inside [now, end) still execute within this call.
     * @return the number of events executed.
     */
    std::uint64_t runWindow(Tick end);

    /**
     * Destroy everything still queued (the trailing weak events of a
     * finished lane). The windowed kernel calls this once per lane
     * after global termination, mirroring run()'s final discard.
     */
    void discardPending() { discardAll(); }

  private:
    /** Near event parked in a bucket: its tick is the bucket's tick. */
    struct Entry
    {
        std::uint64_t seq;
        Callback cb;
        bool weak;
    };

    /** Far event in the fallback heap. */
    struct FarEntry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
        bool weak;
    };

    /**
     * One tick's events. Entries are appended in seq order and
     * consumed front-to-back via @p head (so runOne() can leave a tick
     * half-drained); the vector keeps its capacity across reuse.
     */
    struct Bucket
    {
        std::vector<Entry> entries;
        std::size_t head = 0;

        bool drained() const { return head >= entries.size(); }
    };

    struct FarLater
    {
        bool
        operator()(const FarEntry &a, const FarEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void push(Tick when, Callback cb, bool weak);
    /** Earliest pending tick; kMaxTick when nothing is queued. */
    Tick nextEventTick() const;
    /** Execute all events at tick @p when (== now_) in seq order. */
    std::uint64_t drainTick(Tick when);
    /** Pop + execute one event; @p when must be nextEventTick(). */
    void fireOne(Tick when);
    /** Execute @p e (counters first, mirroring the pop-then-run order). */
    void fire(Entry e);
    /** Destroy everything still queued (trailing weak events). */
    void discardAll();
    void resetBucket(std::size_t idx);

    std::size_t bucketIndex(Tick when) const
    {
        return static_cast<std::size_t>(when % kWindow);
    }

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t strong_ = 0;
    std::size_t size_ = 0; ///< live events, strong + weak
    std::size_t peak_ = 0; ///< lifetime high-water mark of size_
#if TRANSFW_OBS
    DispatchHook *hook_ = nullptr;
#endif
    std::array<Bucket, kWindow> buckets_;
    /** Bit i set ⇔ buckets_[i] has undrained entries. */
    std::array<std::uint64_t, kWindow / 64> liveBits_{};
    std::vector<FarEntry> far_; ///< min-heap via std::push/pop_heap
};

} // namespace transfw::sim

#endif // TRANSFW_SIM_EVENT_QUEUE_HPP
