#ifndef TRANSFW_SIM_FLAT_MAP_HPP
#define TRANSFW_SIM_FLAT_MAP_HPP

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

#include "sim/logging.hpp"

namespace transfw::sim {

/**
 * Bit-mixing hash for integral keys (the finalizer of MurmurHash3 /
 * splitmix64). The simulator's map keys are VPNs, VA prefixes and
 * packed (group, gpu) ids — dense, low-entropy integers that need the
 * avalanche before they index a power-of-two table.
 */
struct FlatHash
{
    std::size_t
    operator()(std::uint64_t x) const noexcept
    {
        x ^= x >> 33;
        x *= 0xFF51AFD7ED558CCDULL;
        x ^= x >> 33;
        x *= 0xC4CEB9FE1A85EC53ULL;
        x ^= x >> 33;
        return static_cast<std::size_t>(x);
    }
};

/**
 * Open-addressing hash map with linear probing, used on the
 * translation hot path in place of std::unordered_map. One contiguous
 * slot array plus a one-byte-per-slot control array: a lookup is a
 * mixed hash and a short linear scan over adjacent cache lines, with
 * none of the per-node allocation or pointer chasing of the node-based
 * standard containers.
 *
 * Deliberately a subset of the std::unordered_map API (find / count /
 * operator[] / try_emplace / emplace / insert_or_assign / erase /
 * range-for); drop-in for the simulator's call sites. Like
 * unordered_map, iterators and references are invalidated by
 * insertion (rehash); erase invalidates only the erased entry.
 *
 * Requirements: Key is an integral-like type hashable by @p Hash and
 * equality-comparable; Key and Value are default-constructible and
 * movable (erased slots are reset to a default-constructed pair so
 * heavy values release their resources immediately).
 */
template <typename Key, typename Value, typename Hash = FlatHash>
class FlatMap
{
  public:
    using value_type = std::pair<Key, Value>;

    FlatMap() = default;

    explicit FlatMap(std::size_t expected) { reserve(expected); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Allocated slots (0 before the first insertion). */
    std::size_t capacity() const { return ctrl_.size(); }

    /** Live entries per slot, in [0, 1); 0 for an empty table. */
    double
    loadFactor() const
    {
        return cap() ? static_cast<double>(size_) / cap() : 0.0;
    }

    /** Tombstoned slots still occupying the probe sequence. */
    std::size_t tombstones() const { return used_ - size_; }

    /** Pre-size so @p expected entries fit without rehashing. */
    void
    reserve(std::size_t expected)
    {
        std::size_t needed = tableFor(expected);
        if (needed > cap())
            rehash(needed);
    }

    void
    clear()
    {
        for (std::size_t i = 0; i < cap(); ++i) {
            if (isFull(ctrl_[i]))
                slots_[i] = value_type();
            ctrl_[i] = kEmpty;
        }
        size_ = 0;
        used_ = 0;
    }

    /** Forward iterator over live entries (unspecified order). */
    class iterator
    {
      public:
        iterator() = default;
        iterator(FlatMap *map, std::size_t idx) : map_(map), idx_(idx)
        {
            skip();
        }

        value_type &operator*() const { return map_->slots_[idx_]; }
        value_type *operator->() const { return &map_->slots_[idx_]; }

        iterator &
        operator++()
        {
            ++idx_;
            skip();
            return *this;
        }

        bool
        operator==(const iterator &o) const
        {
            return idx_ == o.idx_;
        }
        bool operator!=(const iterator &o) const { return !(*this == o); }

      private:
        friend class FlatMap;
        void
        skip()
        {
            while (idx_ < map_->cap() && !isFull(map_->ctrl_[idx_]))
                ++idx_;
        }

        FlatMap *map_ = nullptr;
        std::size_t idx_ = 0;
    };

    class const_iterator
    {
      public:
        const_iterator() = default;
        const_iterator(const FlatMap *map, std::size_t idx)
            : map_(map), idx_(idx)
        {
            skip();
        }
        const_iterator(iterator it) : map_(it.map_), idx_(it.idx_) {}

        const value_type &operator*() const { return map_->slots_[idx_]; }
        const value_type *operator->() const
        {
            return &map_->slots_[idx_];
        }

        const_iterator &
        operator++()
        {
            ++idx_;
            skip();
            return *this;
        }

        bool
        operator==(const const_iterator &o) const
        {
            return idx_ == o.idx_;
        }
        bool
        operator!=(const const_iterator &o) const
        {
            return !(*this == o);
        }

      private:
        friend class FlatMap;
        void
        skip()
        {
            while (idx_ < map_->cap() && !isFull(map_->ctrl_[idx_]))
                ++idx_;
        }

        const FlatMap *map_ = nullptr;
        std::size_t idx_ = 0;
    };

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, cap()); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, cap()); }

    iterator
    find(const Key &key)
    {
        std::size_t idx = findIndex(key);
        return idx == kNpos ? end() : iterator(this, idx);
    }

    const_iterator
    find(const Key &key) const
    {
        std::size_t idx = findIndex(key);
        return idx == kNpos ? end() : const_iterator(this, idx);
    }

    std::size_t count(const Key &key) const
    {
        return findIndex(key) == kNpos ? 0 : 1;
    }
    bool contains(const Key &key) const { return findIndex(key) != kNpos; }

    Value &
    operator[](const Key &key)
    {
        return slots_[insertSlot(key)].second;
    }

    /**
     * Insert (key, Value(args...)) if absent.
     * @return (iterator, true) on insertion, (existing, false) otherwise.
     */
    template <typename... Args>
    std::pair<iterator, bool>
    try_emplace(const Key &key, Args &&...args)
    {
        std::size_t before = size_;
        std::size_t idx = insertSlot(key, std::forward<Args>(args)...);
        return {iterator(this, idx), size_ != before};
    }

    /** unordered_map::emplace for the (key, value) shape used here. */
    template <typename V>
    std::pair<iterator, bool>
    emplace(const Key &key, V &&value)
    {
        return try_emplace(key, std::forward<V>(value));
    }

    template <typename V>
    std::pair<iterator, bool>
    insert_or_assign(const Key &key, V &&value)
    {
        auto [it, inserted] = try_emplace(key, std::forward<V>(value));
        if (!inserted)
            it->second = std::forward<V>(value);
        return {it, inserted};
    }

    /** Erase @p key. @return 1 when it was present, else 0. */
    std::size_t
    erase(const Key &key)
    {
        std::size_t idx = findIndex(key);
        if (idx == kNpos)
            return 0;
        eraseIndex(idx);
        return 1;
    }

    /** Erase the entry @p it points at (must be dereferenceable). */
    void erase(iterator it) { eraseIndex(it.idx_); }

  private:
    // Control bytes, SwissTable-style: a full slot stores a 7-bit
    // fragment of the key's hash (top bits, disjoint from the index
    // bits), so a probe can reject almost every non-matching slot on
    // the byte alone without touching the slot array; the two special
    // states keep the high bit set.
    static constexpr std::uint8_t kEmpty = 0x80;
    static constexpr std::uint8_t kTomb = 0x81;
    static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
    static constexpr std::size_t kMinCap = 16;

    std::size_t cap() const { return ctrl_.size(); }

    static bool isFull(std::uint8_t c) { return (c & 0x80) == 0; }

    /** The 7 hash bits a full slot's control byte carries. */
    static std::uint8_t
    h2(std::size_t hash)
    {
        return static_cast<std::uint8_t>(hash >> 57);
    }

    /** Smallest power-of-two table keeping @p n entries under 7/8 load. */
    static std::size_t
    tableFor(std::size_t n)
    {
        std::size_t c = kMinCap;
        while (n + n / 7 + 1 >= c - c / 8)
            c <<= 1;
        return c;
    }

    std::size_t
    findIndex(const Key &key) const
    {
        if (cap() == 0)
            return kNpos;
        std::size_t mask = cap() - 1;
        std::size_t hash = Hash{}(key);
        std::size_t idx = hash & mask;
        const std::uint8_t frag = h2(hash);
        while (true) {
            // One ctrl byte per probe; the hash fragment rejects
            // nearly every non-matching slot before the key compare.
            std::uint8_t c = ctrl_[idx];
            if (c == frag && slots_[idx].first == key)
                return idx;
            if (c == kEmpty)
                return kNpos;
            idx = (idx + 1) & mask;
        }
    }

    /** Find @p key or claim a slot for it; returns the slot index. */
    template <typename... Args>
    std::size_t
    insertSlot(const Key &key, Args &&...args)
    {
        if (cap() == 0 || used_ + 1 >= cap() - cap() / 8)
            grow();
        std::size_t mask = cap() - 1;
        std::size_t hash = Hash{}(key);
        std::size_t idx = hash & mask;
        const std::uint8_t frag = h2(hash);
        std::size_t tomb = kNpos;
        while (true) {
            std::uint8_t c = ctrl_[idx];
            if (c == kEmpty) {
                std::size_t target = tomb != kNpos ? tomb : idx;
                if (target == idx)
                    ++used_; // a tombstone reuse does not raise load
                ctrl_[target] = frag;
                slots_[target] =
                    value_type(key, Value(std::forward<Args>(args)...));
                ++size_;
                return target;
            }
            if (c == kTomb) {
                if (tomb == kNpos)
                    tomb = idx;
            } else if (c == frag && slots_[idx].first == key) {
                return idx;
            }
            idx = (idx + 1) & mask;
        }
    }

    void
    eraseIndex(std::size_t idx)
    {
        if (idx >= cap() || !isFull(ctrl_[idx]))
            sim::panic("FlatMap: erase of a non-live slot");
        slots_[idx] = value_type(); // release heavy values eagerly
        --size_;
        std::size_t mask = cap() - 1;
        if (ctrl_[(idx + 1) & mask] == kEmpty) {
            // No probe sequence continues past this slot, so it can
            // revert straight to empty — and so can the tombstone run
            // leading up to it. Erase-heavy churn then keeps miss
            // probes short instead of scanning ever-longer dead runs.
            ctrl_[idx] = kEmpty;
            --used_;
            std::size_t prev = (idx + mask) & mask;
            while (ctrl_[prev] == kTomb) {
                ctrl_[prev] = kEmpty;
                --used_;
                prev = (prev + mask) & mask;
            }
        } else {
            ctrl_[idx] = kTomb;
        }
    }

    void
    grow()
    {
        // Grow when genuinely loaded; at high-tombstone ratios rebuild
        // at the same capacity to reclaim the dead slots.
        std::size_t target =
            size_ * 2 >= cap() ? std::max(cap() * 2, kMinCap)
                               : std::max(cap(), kMinCap);
        rehash(target);
    }

    void
    rehash(std::size_t newCap)
    {
        std::vector<value_type> oldSlots = std::move(slots_);
        std::vector<std::uint8_t> oldCtrl = std::move(ctrl_);
        slots_.clear();
        slots_.resize(newCap); // resize, not assign: Value may be move-only
        ctrl_.assign(newCap, kEmpty);
        std::size_t mask = newCap - 1;
        for (std::size_t i = 0; i < oldCtrl.size(); ++i) {
            if (!isFull(oldCtrl[i]))
                continue;
            std::size_t hash = Hash{}(oldSlots[i].first);
            std::size_t idx = hash & mask;
            while (ctrl_[idx] != kEmpty)
                idx = (idx + 1) & mask;
            ctrl_[idx] = h2(hash);
            slots_[idx] = std::move(oldSlots[i]);
        }
        used_ = size_;
    }

    std::vector<value_type> slots_;
    std::vector<std::uint8_t> ctrl_;
    std::size_t size_ = 0; ///< live entries
    std::size_t used_ = 0; ///< live + tombstoned slots (probe load)
};

/** Open-addressing set companion of FlatMap (same probing scheme). */
template <typename Key, typename Hash = FlatHash>
class FlatSet
{
  public:
    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    std::size_t capacity() const { return map_.capacity(); }
    double loadFactor() const { return map_.loadFactor(); }
    std::size_t tombstones() const { return map_.tombstones(); }
    void clear() { map_.clear(); }
    void reserve(std::size_t expected) { map_.reserve(expected); }

    bool
    insert(const Key &key)
    {
        return map_.try_emplace(key).second;
    }

    std::size_t count(const Key &key) const { return map_.count(key); }
    bool contains(const Key &key) const { return map_.contains(key); }
    std::size_t erase(const Key &key) { return map_.erase(key); }

  private:
    struct Unit
    {};
    FlatMap<Key, Unit, Hash> map_;
};

/**
 * Vector with @p N elements of inline storage, for the short waiter
 * lists parked on MSHR entries: the common one-or-two-waiter case
 * never touches the heap, and moving an entry (rehash, release) moves
 * at most N elements instead of re-pointing a heap block — cheap for
 * the small N used here.
 */
template <typename T, std::size_t N>
class InlineVec
{
  public:
    InlineVec() = default;

    InlineVec(InlineVec &&other) noexcept { moveFrom(std::move(other)); }

    InlineVec &
    operator=(InlineVec &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(std::move(other));
        }
        return *this;
    }

    InlineVec(const InlineVec &) = delete;
    InlineVec &operator=(const InlineVec &) = delete;

    ~InlineVec() { destroy(); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T *begin() { return data(); }
    T *end() { return data() + size_; }
    const T *begin() const { return data(); }
    const T *end() const { return data() + size_; }

    T &operator[](std::size_t i) { return data()[i]; }
    const T &operator[](std::size_t i) const { return data()[i]; }

    void
    push_back(T value)
    {
        if (size_ == capacity_)
            growTo(capacity_ * 2);
        ::new (static_cast<void *>(data() + size_)) T(std::move(value));
        ++size_;
    }

    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        if (size_ == capacity_)
            growTo(capacity_ * 2);
        T *slot = ::new (static_cast<void *>(data() + size_))
            T(std::forward<Args>(args)...);
        ++size_;
        return *slot;
    }

    void
    clear()
    {
        for (std::size_t i = 0; i < size_; ++i)
            data()[i].~T();
        size_ = 0;
    }

  private:
    T *
    data()
    {
        return heap_ ? heap_ : reinterpret_cast<T *>(inline_);
    }
    const T *
    data() const
    {
        return heap_ ? heap_ : reinterpret_cast<const T *>(inline_);
    }

    void
    growTo(std::size_t newCap)
    {
        T *mem = static_cast<T *>(
            ::operator new(newCap * sizeof(T), std::align_val_t(alignof(T))));
        for (std::size_t i = 0; i < size_; ++i) {
            ::new (static_cast<void *>(mem + i)) T(std::move(data()[i]));
            data()[i].~T();
        }
        releaseHeap();
        heap_ = mem;
        capacity_ = newCap;
    }

    void
    moveFrom(InlineVec &&other)
    {
        if (other.heap_) { // steal the heap block wholesale
            heap_ = other.heap_;
            size_ = other.size_;
            capacity_ = other.capacity_;
            other.heap_ = nullptr;
        } else {
            heap_ = nullptr;
            size_ = other.size_;
            capacity_ = N;
            for (std::size_t i = 0; i < size_; ++i) {
                ::new (static_cast<void *>(data() + i))
                    T(std::move(other.data()[i]));
                other.data()[i].~T();
            }
        }
        other.size_ = 0;
        other.capacity_ = N;
    }

    void
    destroy()
    {
        clear();
        releaseHeap();
        capacity_ = N;
    }

    void
    releaseHeap()
    {
        if (heap_) {
            ::operator delete(heap_, std::align_val_t(alignof(T)));
            heap_ = nullptr;
        }
    }

    alignas(T) unsigned char inline_[N * sizeof(T)];
    T *heap_ = nullptr;
    std::size_t size_ = 0;
    std::size_t capacity_ = N;
};

} // namespace transfw::sim

#endif // TRANSFW_SIM_FLAT_MAP_HPP
