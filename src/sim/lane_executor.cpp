#include "sim/lane_executor.hpp"

#include <algorithm>
#include <chrono>

#include "sim/pool.hpp"

namespace transfw::sim {

namespace {

/**
 * Marks this thread as a parallel-phase participant for the pools'
 * counter mode (see sim::poolsShared). RAII so an index function that
 * unwinds the stack can never leave the thread stuck in atomic mode.
 */
struct SharedPoolsScope
{
    SharedPoolsScope() { poolsShared = true; }
    ~SharedPoolsScope() { poolsShared = false; }
};

} // namespace

LaneExecutor &
LaneExecutor::instance()
{
    static LaneExecutor executor;
    return executor;
}

LaneExecutor::~LaneExecutor()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
LaneExecutor::forEach(std::size_t count, unsigned threads,
                      const std::function<void(std::size_t)> &fn,
                      std::uint64_t *waitNs)
{
    if (count == 0)
        return;
    // Serial request, a single index, or a phase already live on
    // another thread (sweep jobs running lanes concurrently): run the
    // indices inline. No helper shares these objects, so the thread
    // stays in plain-counter pool mode.
    if (threads <= 1 || count == 1 || !phaseMu_.try_lock()) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    unsigned helpers =
        std::min<std::size_t>(threads, count) - 1;
    ensureWorkers(helpers);
    {
        std::lock_guard<std::mutex> lock(mu_);
        job_ = &fn;
        jobCount_ = count;
        nextIndex_.store(0, std::memory_order_relaxed);
        // Every live helper participates (extras find the index range
        // exhausted and report done immediately); the phase ends when
        // all of them have checked back in.
        pending_ = workers_.size();
        ++epoch_;
    }
    workCv_.notify_all();
    {
        // Pooled objects this thread touches may cross threads only
        // while the phase is live; each participant flips its own
        // pool mode (helpers do the same around their share).
        SharedPoolsScope shared;
        runIndices(fn, count);
        std::chrono::steady_clock::time_point t0;
        if (waitNs)
            t0 = std::chrono::steady_clock::now();
        std::unique_lock<std::mutex> lock(mu_);
        doneCv_.wait(lock, [&] { return pending_ == 0; });
        job_ = nullptr;
        if (waitNs)
            *waitNs += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
    }
    phaseMu_.unlock();
}

void
LaneExecutor::ensureWorkers(unsigned helpers)
{
    std::lock_guard<std::mutex> lock(mu_);
    while (workers_.size() < helpers) {
        // Capture the birth epoch under the lock: a freshly spawned
        // helper must wait for the *next* phase, never race into the
        // published state of one it was not counted in.
        std::uint64_t birth = epoch_;
        workers_.emplace_back(
            [this, birth] { workerLoop(birth); });
    }
}

void
LaneExecutor::workerLoop(std::uint64_t seenEpoch)
{
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
        workCv_.wait(lock,
                     [&] { return stop_ || epoch_ != seenEpoch; });
        if (stop_)
            return;
        seenEpoch = epoch_;
        const std::function<void(std::size_t)> *fn = job_;
        std::size_t count = jobCount_;
        lock.unlock();
        {
            SharedPoolsScope shared;
            runIndices(*fn, count);
        }
        lock.lock();
        if (--pending_ == 0)
            doneCv_.notify_all();
    }
}

void
LaneExecutor::runIndices(const std::function<void(std::size_t)> &fn,
                         std::size_t count)
{
    for (std::size_t i =
             nextIndex_.fetch_add(1, std::memory_order_relaxed);
         i < count;
         i = nextIndex_.fetch_add(1, std::memory_order_relaxed))
        fn(i);
}

} // namespace transfw::sim
