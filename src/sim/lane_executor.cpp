#include "sim/lane_executor.hpp"

#include <algorithm>

#include "sim/pool.hpp"

namespace transfw::sim {

LaneExecutor &
LaneExecutor::instance()
{
    static LaneExecutor executor;
    return executor;
}

LaneExecutor::~LaneExecutor()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
LaneExecutor::forEach(std::size_t count, unsigned threads,
                      const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (threads <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    unsigned helpers =
        std::min<std::size_t>(threads, count) - 1;
    ensureWorkers(helpers);
    // Pooled objects may cross threads only inside this phase; the
    // flag switches the pools' counters to real atomics for its
    // duration (helpers observe it through mu_).
    poolsShared.store(true, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mu_);
        job_ = &fn;
        jobCount_ = count;
        nextIndex_.store(0, std::memory_order_relaxed);
        // Every live helper participates (extras find the index range
        // exhausted and report done immediately); the phase ends when
        // all of them have checked back in.
        pending_ = workers_.size();
        ++epoch_;
    }
    workCv_.notify_all();
    runIndices(fn, count);
    std::unique_lock<std::mutex> lock(mu_);
    doneCv_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
    poolsShared.store(false, std::memory_order_relaxed);
}

void
LaneExecutor::ensureWorkers(unsigned helpers)
{
    std::lock_guard<std::mutex> lock(mu_);
    while (workers_.size() < helpers) {
        // Capture the birth epoch under the lock: a freshly spawned
        // helper must wait for the *next* phase, never race into the
        // published state of one it was not counted in.
        std::uint64_t birth = epoch_;
        workers_.emplace_back(
            [this, birth] { workerLoop(birth); });
    }
}

void
LaneExecutor::workerLoop(std::uint64_t seenEpoch)
{
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
        workCv_.wait(lock,
                     [&] { return stop_ || epoch_ != seenEpoch; });
        if (stop_)
            return;
        seenEpoch = epoch_;
        const std::function<void(std::size_t)> *fn = job_;
        std::size_t count = jobCount_;
        lock.unlock();
        runIndices(*fn, count);
        lock.lock();
        if (--pending_ == 0)
            doneCv_.notify_all();
    }
}

void
LaneExecutor::runIndices(const std::function<void(std::size_t)> &fn,
                         std::size_t count)
{
    for (std::size_t i =
             nextIndex_.fetch_add(1, std::memory_order_relaxed);
         i < count;
         i = nextIndex_.fetch_add(1, std::memory_order_relaxed))
        fn(i);
}

} // namespace transfw::sim
