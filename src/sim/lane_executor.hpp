#ifndef TRANSFW_SIM_LANE_EXECUTOR_HPP
#define TRANSFW_SIM_LANE_EXECUTOR_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace transfw::sim {

/**
 * Process-wide worker pool for the lane-parallel event kernel. One
 * forEach() call is one synchronized phase: fn(i) runs exactly once
 * for every i in [0, count), distributed over the calling thread plus
 * persistent helper threads, and forEach() returns only when every
 * index has completed — the phase barrier of the lookahead window
 * protocol.
 *
 * The pool is distinct from TaskPool on purpose: TaskPool runs
 * coarse independent jobs (whole simulations) through a queue, while
 * lanes need a low-overhead fork/join that fires thousands of times
 * per run. Helpers are spawned on demand, persist for the process
 * lifetime (so their thread_local ObjectPools outlive any one run),
 * and sleep between phases.
 *
 * Happens-before: every phase transition passes through the pool
 * mutex, so lane state written by whichever thread ran lane i in one
 * phase is visible to whichever thread runs lane i in the next.
 */
class LaneExecutor
{
  public:
    /** The process-wide executor (workers join at process exit). */
    static LaneExecutor &instance();

    /**
     * Run fn(i) once for each i in [0, count) on @p threads threads
     * total (the caller counts as one; helpers make up the rest).
     * threads <= 1 executes every index on the caller in ascending
     * order — the deterministic serial schedule. The same inline
     * fallback covers a second simulation entering a phase while one
     * is already running (parallel sweep jobs with lanes enabled):
     * the late arrival simply runs its own indices on its own thread,
     * which is always correct, instead of corrupting the live phase.
     *
     * When @p waitNs is non-null, the nanoseconds the caller spends
     * blocked at the phase barrier after finishing its own share of
     * the indices are added to it — the lane kernel samples this into
     * the profiler's laneSync bucket.
     */
    void forEach(std::size_t count, unsigned threads,
                 const std::function<void(std::size_t)> &fn,
                 std::uint64_t *waitNs = nullptr);

    ~LaneExecutor();
    LaneExecutor(const LaneExecutor &) = delete;
    LaneExecutor &operator=(const LaneExecutor &) = delete;

  private:
    LaneExecutor() = default;

    void ensureWorkers(unsigned helpers);
    void workerLoop(std::uint64_t seenEpoch);
    void runIndices(const std::function<void(std::size_t)> &fn,
                    std::size_t count);

    std::mutex mu_;
    std::mutex phaseMu_; ///< held by the one live phase's caller
    std::condition_variable workCv_; ///< wakes helpers: new phase/stop
    std::condition_variable doneCv_; ///< wakes forEach(): phase done
    std::vector<std::thread> workers_;
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::size_t jobCount_ = 0;
    std::atomic<std::size_t> nextIndex_{0};
    std::size_t pending_ = 0;  ///< helpers yet to finish this phase
    std::uint64_t epoch_ = 0;  ///< bumped once per phase
    bool stop_ = false;
};

} // namespace transfw::sim

#endif // TRANSFW_SIM_LANE_EXECUTOR_HPP
