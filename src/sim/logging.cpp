#include "sim/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace transfw::sim {

namespace {
bool quiet_mode = false;
} // namespace

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return fmt;
    }
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (!quiet_mode)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quiet_mode = quiet;
}

} // namespace transfw::sim
