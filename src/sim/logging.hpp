#ifndef TRANSFW_SIM_LOGGING_HPP
#define TRANSFW_SIM_LOGGING_HPP

#include <cstdarg>
#include <string>

namespace transfw::sim {

/**
 * printf-style formatting into a std::string. Used by the logging
 * helpers below; also handy for building stat labels.
 */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminate the simulation due to a user error (bad configuration,
 * invalid arguments). Mirrors gem5's fatal(): exits with status 1.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Terminate the simulation due to an internal invariant violation
 * (a simulator bug, not a user error). Mirrors gem5's panic(): aborts.
 */
[[noreturn]] void panic(const std::string &msg);

/** Non-fatal warning to stderr. */
void warn(const std::string &msg);

/** Informational message to stderr. Suppressed when quiet mode is set. */
void inform(const std::string &msg);

/** Globally silence inform() output (benches use this). */
void setQuiet(bool quiet);

} // namespace transfw::sim

#endif // TRANSFW_SIM_LOGGING_HPP
