#ifndef TRANSFW_SIM_MAILBOX_HPP
#define TRANSFW_SIM_MAILBOX_HPP

#include <cstddef>
#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/flat_map.hpp" // InlineVec

namespace transfw::sim {

/** Destructive-interference padding unit for per-lane hot state. */
inline constexpr std::size_t kCacheLine = 64;

/** One cross-lane message: a delivery parked until the next barrier. */
struct MailMsg
{
    Tick at = 0;
    EventQueue::Callback cb;
};

/**
 * Single-producer batch mailbox for one (source lane, destination
 * lane) pair of the parallel event kernel. During a lookahead window
 * exactly one worker thread owns the source lane and appends into the
 * batch with no synchronization at all; at the window barrier the
 * scheduler thread drains the whole batch onto the destination queue
 * in post order and resets it. The executor barrier is the only
 * synchronization either side ever pays — there is no per-message
 * atomic, lock, or type-erased delivery hop — and the InlineVec body
 * keeps the common few-messages-per-window case off the heap.
 *
 * The class is cache-line aligned so adjacent lanes' mailboxes never
 * false-share: each batch header lives alone on its line(s).
 */
class alignas(kCacheLine) Mailbox
{
  public:
    /** Park @p cb for delivery at @p at (source-lane worker only). */
    void
    post(Tick at, EventQueue::Callback cb)
    {
        batch_.emplace_back(MailMsg{at, std::move(cb)});
    }

    bool empty() const { return batch_.empty(); }
    std::size_t size() const { return batch_.size(); }

    /**
     * Flush every parked message onto @p eq in post order and reset
     * the batch (barrier/scheduler thread only). The destination
     * queue orders same-tick events by insertion sequence, so draining
     * mailboxes in a fixed lane order realizes the canonical (arrival
     * tick, source lane, post order) merge without a sort.
     * @return the number of messages delivered.
     */
    std::size_t
    drainTo(EventQueue &eq)
    {
        std::size_t delivered = batch_.size();
        for (MailMsg &msg : batch_)
            eq.scheduleAt(msg.at, std::move(msg.cb));
        batch_.clear();
        return delivered;
    }

  private:
    /** Sized for the few control messages a typical window produces. */
    InlineVec<MailMsg, 4> batch_;
};

} // namespace transfw::sim

#endif // TRANSFW_SIM_MAILBOX_HPP
