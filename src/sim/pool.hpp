#ifndef TRANSFW_SIM_POOL_HPP
#define TRANSFW_SIM_POOL_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "sim/logging.hpp"

namespace transfw::sim {

/**
 * Slab allocator for fixed-type simulation objects (translation
 * requests, remote lookups). Objects are placement-constructed in
 * slab-backed slots and recycled through an intrusive freelist, so the
 * request path stops paying a malloc/free (plus a shared_ptr control
 * block) per translation: after warmup, acquire/release never touch
 * the system allocator.
 *
 * Threading contract: a pool — like the simulator instances it feeds —
 * is single-threaded. Each thread gets its own pool via local(), and
 * every object must be acquired and released on the same thread
 * (SweepRunner confines each simulation instance to one worker thread,
 * which guarantees this by construction).
 */
template <typename T>
class ObjectPool
{
  public:
    static constexpr std::size_t kSlabObjects = 256;

    ObjectPool() = default;
    ObjectPool(const ObjectPool &) = delete;
    ObjectPool &operator=(const ObjectPool &) = delete;

    ~ObjectPool()
    {
        // Slabs go away with the pool; anything still live would
        // dangle. The simulator tears every system down before its
        // thread exits, so this indicates a leaked reference.
        if (live_ != 0)
            warn(strfmt("ObjectPool destroyed with %zu live objects",
                        live_));
    }

    /** Construct a T in a recycled (or fresh) slot. */
    template <typename... Args>
    T *
    acquire(Args &&...args)
    {
        if (!free_)
            grow();
        Slot *slot = free_;
        free_ = slot->next;
        T *obj;
        try {
            obj = ::new (static_cast<void *>(slot->storage))
                T(std::forward<Args>(args)...);
        } catch (...) {
            slot->next = free_;
            free_ = slot;
            throw;
        }
        ++live_;
        return obj;
    }

    /** Destroy @p obj and return its slot to the freelist. */
    void
    release(T *obj) noexcept
    {
        obj->~T();
        Slot *slot = reinterpret_cast<Slot *>(obj);
        slot->next = free_;
        free_ = slot;
        --live_;
    }

    std::size_t liveObjects() const { return live_; }
    std::size_t capacity() const { return slabs_.size() * kSlabObjects; }

    /** This thread's pool for T (one simulator instance per thread). */
    static ObjectPool &
    local()
    {
        static thread_local ObjectPool pool;
        return pool;
    }

  private:
    union Slot
    {
        Slot *next;
        alignas(T) unsigned char storage[sizeof(T)];
    };

    void
    grow()
    {
        slabs_.push_back(std::make_unique<Slot[]>(kSlabObjects));
        Slot *slab = slabs_.back().get();
        for (std::size_t i = kSlabObjects; i-- > 0;) {
            slab[i].next = free_;
            free_ = &slab[i];
        }
    }

    Slot *free_ = nullptr;
    std::vector<std::unique_ptr<Slot[]>> slabs_;
    std::size_t live_ = 0;
};

template <typename T>
class PoolRef;

/**
 * CRTP base giving @p Derived an intrusive reference count so PoolRef
 * can manage it without a separate shared_ptr control block.
 */
template <typename Derived>
class Pooled
{
  protected:
    Pooled() = default;
    ~Pooled() = default;

  private:
    friend class PoolRef<Derived>;
    std::uint32_t poolRefs_ = 0;
};

/**
 * shared_ptr-shaped handle to a pool-allocated object. Copies bump the
 * intrusive count; the last reference returns the object to its
 * thread's pool. Single-threaded, like the pool itself.
 */
template <typename T>
class PoolRef
{
  public:
    PoolRef() noexcept = default;
    PoolRef(std::nullptr_t) noexcept {}

    PoolRef(const PoolRef &other) noexcept : p_(other.p_)
    {
        if (p_)
            ++base()->poolRefs_;
    }

    PoolRef(PoolRef &&other) noexcept : p_(other.p_) { other.p_ = nullptr; }

    PoolRef &
    operator=(const PoolRef &other) noexcept
    {
        PoolRef(other).swap(*this);
        return *this;
    }

    PoolRef &
    operator=(PoolRef &&other) noexcept
    {
        PoolRef(std::move(other)).swap(*this);
        return *this;
    }

    ~PoolRef() { unref(); }

    void reset() noexcept { unref(); }

    void
    swap(PoolRef &other) noexcept
    {
        std::swap(p_, other.p_);
    }

    T *get() const noexcept { return p_; }
    T &operator*() const noexcept { return *p_; }
    T *operator->() const noexcept { return p_; }
    explicit operator bool() const noexcept { return p_ != nullptr; }

    std::uint32_t
    useCount() const noexcept
    {
        return p_ ? base()->poolRefs_ : 0;
    }

    friend bool
    operator==(const PoolRef &a, const PoolRef &b) noexcept
    {
        return a.p_ == b.p_;
    }
    friend bool
    operator!=(const PoolRef &a, const PoolRef &b) noexcept
    {
        return a.p_ != b.p_;
    }
    friend bool
    operator==(const PoolRef &a, std::nullptr_t) noexcept
    {
        return a.p_ == nullptr;
    }
    friend bool
    operator!=(const PoolRef &a, std::nullptr_t) noexcept
    {
        return a.p_ != nullptr;
    }

    /** Take ownership of a freshly acquired object (refcount 0 → 1). */
    static PoolRef
    adopt(T *obj) noexcept
    {
        PoolRef ref;
        ref.p_ = obj;
        if (obj)
            ++ref.base()->poolRefs_;
        return ref;
    }

  private:
    Pooled<T> *base() const noexcept { return p_; }

    void
    unref() noexcept
    {
        if (p_ && --base()->poolRefs_ == 0)
            ObjectPool<T>::local().release(p_);
        p_ = nullptr;
    }

    T *p_ = nullptr;
};

/** Pool-backed make_shared analogue. */
template <typename T, typename... Args>
PoolRef<T>
makePooled(Args &&...args)
{
    return PoolRef<T>::adopt(
        ObjectPool<T>::local().acquire(std::forward<Args>(args)...));
}

} // namespace transfw::sim

#endif // TRANSFW_SIM_POOL_HPP
