#ifndef TRANSFW_SIM_POOL_HPP
#define TRANSFW_SIM_POOL_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "sim/logging.hpp"

namespace transfw::sim {

template <typename Derived>
class Pooled;

/**
 * True on a thread only while it executes lane work inside a
 * LaneExecutor parallel phase — the one regime in which pooled objects
 * this thread touches can be shared with another thread. Every
 * refcount/occupancy update branches on this flag: when clear (serial
 * kernel, host stretches between phases, sweep workers on disjoint
 * simulations) the counters use plain loads and stores, so the common
 * path pays no lock-prefixed instructions.
 *
 * The flag is thread_local on purpose. A process-global flag would
 * put one heavily-read byte on a line every pool op in every thread
 * touches, and — worse — would switch *unrelated* threads (sweep
 * workers running disjoint serial simulations) to atomic counters
 * whenever any one simulation runs a parallel phase. Thread-locality
 * makes the mode a property of the only threads that can actually
 * share objects: the phase caller and its helpers, all of which pass
 * through the executor's mutex at phase entry/exit, which orders the
 * mode transitions against the counter traffic on either side.
 */
inline thread_local bool poolsShared = false;

namespace poolops {

template <typename U>
inline U
inc(std::atomic<U> &c)
{
    if (poolsShared)
        return c.fetch_add(1, std::memory_order_relaxed);
    U v = c.load(std::memory_order_relaxed);
    c.store(v + 1, std::memory_order_relaxed);
    return v;
}

template <typename U>
inline U
dec(std::atomic<U> &c)
{
    if (poolsShared)
        // acq_rel: a final cross-thread decrement must observe every
        // other thread's writes to the object before teardown runs.
        return c.fetch_sub(1, std::memory_order_acq_rel);
    U v = c.load(std::memory_order_relaxed);
    c.store(v - 1, std::memory_order_relaxed);
    return v;
}

} // namespace poolops

/**
 * Slab allocator for fixed-type simulation objects (translation
 * requests, remote lookups). Objects are placement-constructed in
 * slab-backed slots and recycled through an intrusive freelist, so the
 * request path stops paying a malloc/free (plus a shared_ptr control
 * block) per translation: after warmup, acquire/release never touch
 * the system allocator.
 *
 * Threading contract: each thread gets its own pool via local(), and
 * acquire() is only ever called by the owning thread. Releases,
 * however, may come from any thread: the parallel lane kernel hands
 * pooled requests across lanes (forwarded lookups, replies), so the
 * last reference can drop on a thread other than the allocator's.
 * An object released off-thread is destroyed by the releasing thread
 * and its slot is pushed onto a lock-free remote stack that the owner
 * folds back into its freelist (push-only remote, pop-all owner — no
 * ABA window). Everything else — slabs, the local freelist — remains
 * owner-private and unsynchronized.
 */
template <typename T>
class ObjectPool
{
  public:
    static constexpr std::size_t kSlabObjects = 256;

    ObjectPool() = default;
    ObjectPool(const ObjectPool &) = delete;
    ObjectPool &operator=(const ObjectPool &) = delete;

    ~ObjectPool()
    {
        drainRemote();
        // Slabs go away with the pool; anything still live would
        // dangle. The simulator tears every system down before its
        // thread exits, so this indicates a leaked reference.
        std::size_t live = live_.load(std::memory_order_relaxed);
        if (live != 0)
            warn(strfmt("ObjectPool destroyed with %zu live objects",
                        live));
    }

    /** Construct a T in a recycled (or fresh) slot (owner thread only). */
    template <typename... Args>
    T *
    acquire(Args &&...args)
    {
        if (!free_) {
            drainRemote();
            if (!free_)
                grow();
        }
        Slot *slot = free_;
        free_ = slot->next;
        T *obj;
        try {
            obj = ::new (static_cast<void *>(slot->storage))
                T(std::forward<Args>(args)...);
        } catch (...) {
            slot->next = free_;
            free_ = slot;
            throw;
        }
        static_cast<Pooled<T> &>(*obj).homePool_ = this;
        poolops::inc(live_);
        return obj;
    }

    /**
     * Destroy @p obj and return its slot. Callable from any thread:
     * the owner recycles the slot directly; other threads destroy the
     * object in place (nested PoolRefs unref through their own home
     * pools) and park the slot on the remote stack.
     */
    void
    release(T *obj) noexcept
    {
        obj->~T();
        Slot *slot = reinterpret_cast<Slot *>(obj);
        poolops::dec(live_);
        // Outside a parallel phase this thread cannot be racing the
        // pool's owner (any thread that could share this object is
        // either this one or parked behind the executor barrier), so
        // even a foreign pool's freelist is safe to push directly —
        // and the thread_local lookup is skipped entirely.
        if (!poolsShared || this == &local()) {
            slot->next = free_;
            free_ = slot;
            return;
        }
        Slot *head = remoteFree_.load(std::memory_order_relaxed);
        do {
            slot->next = head;
        } while (!remoteFree_.compare_exchange_weak(
            head, slot, std::memory_order_release,
            std::memory_order_relaxed));
    }

    std::size_t
    liveObjects() const
    {
        return live_.load(std::memory_order_relaxed);
    }
    std::size_t capacity() const { return slabs_.size() * kSlabObjects; }

    /** This thread's pool for T. */
    static ObjectPool &
    local()
    {
        static thread_local ObjectPool pool;
        return pool;
    }

  private:
    union Slot
    {
        Slot *next;
        alignas(T) unsigned char storage[sizeof(T)];
    };

    /** Fold remotely released slots back into the freelist (owner). */
    void
    drainRemote()
    {
        Slot *head = remoteFree_.exchange(nullptr,
                                          std::memory_order_acquire);
        while (head) {
            Slot *next = head->next;
            head->next = free_;
            free_ = head;
            head = next;
        }
    }

    void
    grow()
    {
        slabs_.push_back(std::make_unique<Slot[]>(kSlabObjects));
        Slot *slab = slabs_.back().get();
        for (std::size_t i = kSlabObjects; i-- > 0;) {
            slab[i].next = free_;
            free_ = &slab[i];
        }
    }

    Slot *free_ = nullptr;
    std::atomic<Slot *> remoteFree_{nullptr};
    std::vector<std::unique_ptr<Slot[]>> slabs_;
    std::atomic<std::size_t> live_{0};
};

template <typename T>
class PoolRef;

/**
 * CRTP base giving @p Derived an intrusive reference count so PoolRef
 * can manage it without a separate shared_ptr control block. The count
 * is atomic and the object remembers its home pool, so references may
 * be copied and dropped on any thread; the release path routes the
 * slot back to the pool that allocated it.
 */
template <typename Derived>
class Pooled
{
  protected:
    Pooled() = default;
    ~Pooled() = default;

  private:
    friend class PoolRef<Derived>;
    friend class ObjectPool<Derived>;
    std::atomic<std::uint32_t> poolRefs_{0};
    void *homePool_ = nullptr;
};

/**
 * shared_ptr-shaped handle to a pool-allocated object. Copies bump the
 * intrusive count; the last reference returns the object to the pool
 * that allocated it, from whichever thread it drops on.
 */
template <typename T>
class PoolRef
{
  public:
    PoolRef() noexcept = default;
    PoolRef(std::nullptr_t) noexcept {}

    PoolRef(const PoolRef &other) noexcept : p_(other.p_)
    {
        if (p_)
            poolops::inc(base()->poolRefs_);
    }

    PoolRef(PoolRef &&other) noexcept : p_(other.p_) { other.p_ = nullptr; }

    PoolRef &
    operator=(const PoolRef &other) noexcept
    {
        PoolRef(other).swap(*this);
        return *this;
    }

    PoolRef &
    operator=(PoolRef &&other) noexcept
    {
        PoolRef(std::move(other)).swap(*this);
        return *this;
    }

    ~PoolRef() { unref(); }

    void reset() noexcept { unref(); }

    void
    swap(PoolRef &other) noexcept
    {
        std::swap(p_, other.p_);
    }

    T *get() const noexcept { return p_; }
    T &operator*() const noexcept { return *p_; }
    T *operator->() const noexcept { return p_; }
    explicit operator bool() const noexcept { return p_ != nullptr; }

    std::uint32_t
    useCount() const noexcept
    {
        return p_ ? base()->poolRefs_.load(std::memory_order_relaxed) : 0;
    }

    friend bool
    operator==(const PoolRef &a, const PoolRef &b) noexcept
    {
        return a.p_ == b.p_;
    }
    friend bool
    operator!=(const PoolRef &a, const PoolRef &b) noexcept
    {
        return a.p_ != b.p_;
    }
    friend bool
    operator==(const PoolRef &a, std::nullptr_t) noexcept
    {
        return a.p_ == nullptr;
    }
    friend bool
    operator!=(const PoolRef &a, std::nullptr_t) noexcept
    {
        return a.p_ != nullptr;
    }

    /** Take ownership of a freshly acquired object (refcount 0 → 1). */
    static PoolRef
    adopt(T *obj) noexcept
    {
        PoolRef ref;
        ref.p_ = obj;
        if (obj)
            poolops::inc(ref.base()->poolRefs_);
        return ref;
    }

  private:
    Pooled<T> *base() const noexcept { return p_; }

    void
    unref() noexcept
    {
        if (p_ && poolops::dec(base()->poolRefs_) == 1)
            static_cast<ObjectPool<T> *>(base()->homePool_)->release(p_);
        p_ = nullptr;
    }

    T *p_ = nullptr;
};

/** Pool-backed make_shared analogue. */
template <typename T, typename... Args>
PoolRef<T>
makePooled(Args &&...args)
{
    return PoolRef<T>::adopt(
        ObjectPool<T>::local().acquire(std::forward<Args>(args)...));
}

} // namespace transfw::sim

#endif // TRANSFW_SIM_POOL_HPP
