#include "sim/random.hpp"

namespace transfw::sim {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
Rng::splitmix(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &lane : s_)
        lane = splitmix(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::range(std::uint64_t bound)
{
    // Debiased modulo via rejection on the top of the range.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

} // namespace transfw::sim
