#ifndef TRANSFW_SIM_RANDOM_HPP
#define TRANSFW_SIM_RANDOM_HPP

#include <cstdint>

namespace transfw::sim {

/**
 * Deterministic pseudo-random number generator (SplitMix64-seeded
 * xoshiro256**). Every source of randomness in the simulator draws from
 * an instance of this class so that a given (config, seed) pair always
 * produces bit-identical results.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed via SplitMix64. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t range(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /** SplitMix64 step usable as a standalone stateless mixer. */
    static std::uint64_t splitmix(std::uint64_t &state);

  private:
    std::uint64_t s_[4];
};

} // namespace transfw::sim

#endif // TRANSFW_SIM_RANDOM_HPP
