#ifndef TRANSFW_SIM_SIM_OBJECT_HPP
#define TRANSFW_SIM_SIM_OBJECT_HPP

#include <string>
#include <utility>

#include "sim/event_queue.hpp"

namespace transfw::sim {

/**
 * Base class for every timed simulation component. Provides a
 * hierarchical name (for logging/stats) and access to the shared event
 * queue.
 */
class SimObject
{
  public:
    SimObject(EventQueue &eq, std::string name)
        : eq_(&eq), name_(std::move(name))
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    EventQueue &eventq() { return *eq_; }
    Tick curTick() const { return eq_->now(); }

    /**
     * Re-home this object onto another event queue. The parallel lane
     * kernel uses this to hand each interconnect link to the lane that
     * drives it (links are constructed before the lane split is known);
     * only call while no event scheduled by this object is pending.
     */
    void rebindEventQueue(EventQueue &eq) { eq_ = &eq; }

  protected:
    /** Schedule a member callback @p delay ticks in the future. */
    void
    schedule(Tick delay, EventQueue::Callback cb)
    {
        eq_->schedule(delay, std::move(cb));
    }

  private:
    EventQueue *eq_;
    std::string name_;
};

} // namespace transfw::sim

#endif // TRANSFW_SIM_SIM_OBJECT_HPP
