#include "sim/task_pool.hpp"

#include <cstdlib>

#ifdef __unix__
#include <unistd.h>
#endif

namespace transfw::sim {

TaskPool::TaskPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

TaskPool::~TaskPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
TaskPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        jobs_.push_back(std::move(job));
        ++unfinished_;
    }
    workCv_.notify_one();
}

void
TaskPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idleCv_.wait(lock, [this] { return unfinished_ == 0; });
}

void
TaskPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workCv_.wait(lock,
                         [this] { return stop_ || !jobs_.empty(); });
            if (jobs_.empty())
                return; // stop_ set and queue drained
            job = std::move(jobs_.front());
            jobs_.pop_front();
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--unfinished_ == 0)
                idleCv_.notify_all();
        }
    }
}

unsigned
TaskPool::defaultThreads()
{
    if (const char *env = std::getenv("TRANSFW_JOBS")) {
        int v = std::atoi(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
#ifdef __unix__
    // hardware_concurrency() is allowed to return 0, and in some
    // containers/cgroup setups reports 1 on many-core hosts (observed
    // here: BENCH_core.json shipped with hardware_threads=1 and the
    // "parallel" sweep silently ran serial). sysconf sees the CPUs the
    // process can actually schedule on; trust whichever is larger.
    long online = sysconf(_SC_NPROCESSORS_ONLN);
    if (online > 0 && static_cast<unsigned>(online) > hw)
        hw = static_cast<unsigned>(online);
#endif
    return hw ? hw : 1;
}

} // namespace transfw::sim
