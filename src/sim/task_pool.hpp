#ifndef TRANSFW_SIM_TASK_POOL_HPP
#define TRANSFW_SIM_TASK_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace transfw::sim {

/**
 * Fixed-size worker-thread pool for coarse-grained jobs — one job is
 * one complete, independent, single-threaded simulation instance.
 * Simulation code itself stays untouched by threading: determinism
 * lives inside each instance, the pool only decides which core runs
 * which instance (the MGPUSim model of sweep parallelism).
 */
class TaskPool
{
  public:
    /** @p threads is clamped to at least 1. */
    explicit TaskPool(unsigned threads);

    /** Joins the workers after draining remaining jobs. */
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /** Enqueue @p job for execution on some worker. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Parallelism for this machine/process: the TRANSFW_JOBS
     * environment variable when set (positive), else the larger of
     * std::thread::hardware_concurrency() and (on POSIX)
     * sysconf(_SC_NPROCESSORS_ONLN) — hardware_concurrency() may
     * legally return 0, and under some container runtimes reports 1
     * on many-core hosts, silently degrading sweeps to serial.
     */
    static unsigned defaultThreads();

  private:
    void workerLoop();

    std::mutex mu_;
    std::condition_variable workCv_; ///< signals workers: job or stop
    std::condition_variable idleCv_; ///< signals wait(): all done
    std::deque<std::function<void()>> jobs_;
    std::size_t unfinished_ = 0; ///< queued + running jobs
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace transfw::sim

#endif // TRANSFW_SIM_TASK_POOL_HPP
