#ifndef TRANSFW_SIM_TICKS_HPP
#define TRANSFW_SIM_TICKS_HPP

#include <cstdint>
#include <limits>

namespace transfw::sim {

/**
 * Simulation time unit. One tick equals one cycle of the unified 1 GHz
 * clock domain (Table II runs the CUs at 1.0 GHz; all Table II latencies
 * are expressed in these cycles).
 */
using Tick = std::uint64_t;

/** Sentinel for "run forever" / "never scheduled". */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

} // namespace transfw::sim

#endif // TRANSFW_SIM_TICKS_HPP
