#include "sim/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <unordered_set>

#include "sim/logging.hpp"

namespace transfw::sim::trace {

namespace {

struct State
{
    bool any = false;
    bool all = false;
    bool envChecked = false;
    std::unordered_set<std::string> categories;
    std::function<void(const std::string &)> sink;
};

State &
state()
{
    static State s;
    return s;
}

} // namespace

void
enable(const std::string &category)
{
    State &s = state();
    if (category == "all")
        s.all = true;
    else
        s.categories.insert(category);
    s.any = true;
}

void
disableAll()
{
    State &s = state();
    s.any = false;
    s.all = false;
    s.categories.clear();
}

void
initFromEnv()
{
    State &s = state();
    s.envChecked = true;
    const char *env = std::getenv("TRANSFW_TRACE");
    if (!env)
        return;
    std::stringstream ss(env);
    std::string category;
    while (std::getline(ss, category, ','))
        if (!category.empty())
            enable(category);
}

bool
anyEnabled()
{
    State &s = state();
    if (!s.envChecked)
        initFromEnv();
    return s.any;
}

bool
enabled(const std::string &category)
{
    State &s = state();
    if (!s.envChecked)
        initFromEnv();
    return s.all || s.categories.count(category) > 0;
}

void
setSink(std::function<void(const std::string &)> sink)
{
    state().sink = std::move(sink);
}

void
log(Tick tick, const std::string &category, const std::string &message)
{
    std::string line = strfmt("%12llu: %s: %s",
                              static_cast<unsigned long long>(tick),
                              category.c_str(), message.c_str());
    State &s = state();
    if (s.sink)
        s.sink(line);
    else
        std::fprintf(stderr, "%s\n", line.c_str());
}

} // namespace transfw::sim::trace
