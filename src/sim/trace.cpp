#include "sim/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_set>

#include "sim/logging.hpp"

namespace transfw::sim::trace {

namespace {

using Sink = std::function<void(const std::string &)>;

struct State
{
    bool any = false;
    bool all = false;
    std::once_flag envOnce;
    std::unordered_set<std::string> categories;
    /**
     * Held by shared_ptr so log() can pin the sink it is invoking: a
     * sink that calls setSink() (tests swapping capture buffers
     * mid-run) must not destroy the std::function currently executing.
     */
    std::shared_ptr<const Sink> sink;
};

State &
state()
{
    static State s;
    return s;
}

} // namespace

void
enable(const std::string &category)
{
    State &s = state();
    if (category == "all")
        s.all = true;
    else
        s.categories.insert(category);
    s.any = true;
}

void
disableAll()
{
    State &s = state();
    s.any = false;
    s.all = false;
    s.categories.clear();
}

namespace {

void
readEnv()
{
    const char *env = std::getenv("TRANSFW_TRACE");
    if (!env)
        return;
    std::stringstream ss(env);
    std::string category;
    while (std::getline(ss, category, ','))
        if (!category.empty())
            enable(category);
}

} // namespace

void
initFromEnv()
{
    // Consume the once-flag without reading (a lazy caller must not
    // read the environment a second time afterwards), then re-read
    // unconditionally as documented.
    State &s = state();
    std::call_once(s.envOnce, [] {});
    readEnv();
}

bool
anyEnabled()
{
    // call_once so concurrent sweep workers can hit the lazy path
    // simultaneously; everything past init stays single-threaded per
    // the contract above (sweep instances never enable tracing).
    State &s = state();
    std::call_once(s.envOnce, readEnv);
    return s.any;
}

bool
enabled(const std::string &category)
{
    State &s = state();
    std::call_once(s.envOnce, readEnv);
    return s.all || s.categories.count(category) > 0;
}

void
setSink(std::function<void(const std::string &)> sink)
{
    state().sink =
        sink ? std::make_shared<const Sink>(std::move(sink)) : nullptr;
}

void
log(Tick tick, const std::string &category, const std::string &message)
{
    std::string line = strfmt("%12llu: %s: %s",
                              static_cast<unsigned long long>(tick),
                              category.c_str(), message.c_str());
    // Pin the current sink across the call so it stays alive even if it
    // swaps itself out via setSink().
    std::shared_ptr<const Sink> sink = state().sink;
    if (sink)
        (*sink)(line);
    else
        std::fprintf(stderr, "%s\n", line.c_str());
}

} // namespace transfw::sim::trace
