#ifndef TRANSFW_SIM_TRACE_HPP
#define TRANSFW_SIM_TRACE_HPP

#include <functional>
#include <string>

#include "sim/ticks.hpp"

namespace transfw::sim::trace {

/**
 * Category-gated debug tracing, in the spirit of gem5's DPRINTF.
 * Categories are free-form strings ("gmmu", "host", "migration",
 * "driver", "gpu"); enable them programmatically or via the
 * TRANSFW_TRACE environment variable (comma-separated, or "all").
 * Disabled categories cost one hash lookup guarded by a global flag,
 * so instrumented hot paths stay cheap when tracing is off.
 *
 * Output goes to stderr by default; tests install a custom sink.
 *
 * Threading contract: the facility is single-threaded, like the
 * simulator itself — enable/disableAll/setSink and traced simulation
 * code must run on the same thread. Within that contract every
 * operation is safe at any point mid-run, including from inside a sink:
 * log() pins the sink it invokes, so a sink may call setSink() (or
 * disableAll()) without destroying the closure currently executing.
 */

/** Enable one category ("all" enables everything). */
void enable(const std::string &category);

/** Disable everything (also clears a custom sink's backlog source). */
void disableAll();

/** True when @p category (or "all") is enabled. */
bool enabled(const std::string &category);

/** Re-read TRANSFW_TRACE from the environment (called lazily too). */
void initFromEnv();

/** Replace the output sink (nullptr restores stderr). */
void setSink(std::function<void(const std::string &)> sink);

/** Emit one record: "<tick>: <category>: <message>". */
void log(Tick tick, const std::string &category,
         const std::string &message);

/** True when any category is enabled (fast pre-check). */
bool anyEnabled();

} // namespace transfw::sim::trace

/**
 * Trace macro: evaluates its message arguments only when the category
 * is live. @p eq_expr must yield an EventQueue (for the timestamp).
 */
#define TFW_TRACE(eq_expr, category, ...)                                  \
    do {                                                                   \
        if (::transfw::sim::trace::anyEnabled() &&                         \
            ::transfw::sim::trace::enabled(category)) {                    \
            ::transfw::sim::trace::log((eq_expr).now(), category,          \
                                       ::transfw::sim::strfmt(             \
                                           __VA_ARGS__));                  \
        }                                                                  \
    } while (0)

#endif // TRANSFW_SIM_TRACE_HPP
