#include "stats/stats.hpp"

#include <cmath>
#include <sstream>

#include "sim/logging.hpp"

namespace transfw::stats {

void
Distribution::record(double x)
{
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
Distribution::variance() const
{
    if (count_ < 2)
        return 0.0;
    return std::max(0.0, m2_ / static_cast<double>(count_));
}

std::uint64_t
BucketHistogram::total() const
{
    std::uint64_t t = 0;
    for (auto c : counts_)
        t += c;
    return t;
}

double
BucketHistogram::fraction(std::size_t i) const
{
    std::uint64_t t = total();
    return t ? static_cast<double>(bucket(i)) / static_cast<double>(t) : 0.0;
}

LatencyBreakdown &
LatencyBreakdown::operator+=(const LatencyBreakdown &o)
{
    gmmuQueue += o.gmmuQueue;
    gmmuMem += o.gmmuMem;
    hostQueue += o.hostQueue;
    hostMem += o.hostMem;
    migration += o.migration;
    network += o.network;
    other += o.other;
    return *this;
}

double
Registry::get(const std::string &name) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        sim::fatal("unknown stat: " + name);
    return it->second;
}

std::string
Registry::format() const
{
    std::ostringstream os;
    for (const auto &[name, value] : values_)
        os << name << " = " << value << "\n";
    return os.str();
}

} // namespace transfw::stats
