#ifndef TRANSFW_STATS_STATS_HPP
#define TRANSFW_STATS_STATS_HPP

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace transfw::stats {

/** Monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Scalar sample distribution: tracks count / sum / min / max and a
 * running second central moment (Welford's algorithm), enough to report
 * mean and variance without storing samples. The naive sum-of-squares
 * form cancels catastrophically when the mean dwarfs the spread (e.g.
 * tick timestamps near 1e9 with unit variance); Welford's update keeps
 * full precision regardless of the samples' magnitude.
 */
class Distribution
{
  public:
    void record(double x);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double minimum() const { return count_ ? min_ : 0.0; }
    double maximum() const { return count_ ? max_ : 0.0; }
    double variance() const;
    void reset() { *this = Distribution(); }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0; ///< sum of squared deviations from the mean
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bucket histogram over small integer categories (e.g., "PW-cache
 * hit level" or "number of GPUs sharing a page").
 */
class BucketHistogram
{
  public:
    explicit BucketHistogram(std::size_t buckets = 0) : counts_(buckets, 0) {}

    void resize(std::size_t buckets) { counts_.assign(buckets, 0); }

    void
    record(std::size_t bucket, std::uint64_t n = 1)
    {
        if (bucket >= counts_.size())
            counts_.resize(bucket + 1, 0);
        counts_[bucket] += n;
    }

    std::uint64_t bucket(std::size_t i) const
    {
        return i < counts_.size() ? counts_[i] : 0;
    }
    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t total() const;

    /** Fraction of all samples that fell in bucket @p i. */
    double fraction(std::size_t i) const;

    void reset() { std::fill(counts_.begin(), counts_.end(), 0); }

  private:
    std::vector<std::uint64_t> counts_;
};

/**
 * Accumulator for the per-request latency components the paper breaks
 * L2-TLB-miss latency into (Fig. 3 / Fig. 12). Values are summed ticks.
 */
struct LatencyBreakdown
{
    double gmmuQueue = 0;   ///< waiting in the GMMU PW-queue
    double gmmuMem = 0;     ///< GMMU walk memory accesses (PW-cache misses)
    double hostQueue = 0;   ///< waiting in the host MMU PW-queue
    double hostMem = 0;     ///< host MMU walk memory accesses
    double migration = 0;   ///< page data transfer during far faults
    double network = 0;     ///< CPU-GPU / GPU-GPU interconnect + replay
    double other = 0;       ///< fixed lookup latencies, fault bookkeeping

    double total() const
    {
        return gmmuQueue + gmmuMem + hostQueue + hostMem + migration +
               network + other;
    }

    LatencyBreakdown &operator+=(const LatencyBreakdown &o);
};

/**
 * Named scalar export table. Components register their headline numbers
 * here so examples can dump a full stats report; benches read typed
 * fields from SimResults directly instead.
 */
class Registry
{
  public:
    void set(const std::string &name, double value) { values_[name] = value; }
    double get(const std::string &name) const;
    bool has(const std::string &name) const { return values_.count(name) > 0; }

    /** All named scalars, sorted by name (ledger/diff iteration). */
    const std::map<std::string, double> &values() const { return values_; }

    /** Render "name = value" lines sorted by name. */
    std::string format() const;

  private:
    std::map<std::string, double> values_;
};

} // namespace transfw::stats

#endif // TRANSFW_STATS_STATS_HPP
