#include "system/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "workload/apps.hpp"

namespace transfw::sys {

cfg::SystemConfig
baselineConfig()
{
    // Every default in cfg::SystemConfig already matches Table II.
    return cfg::SystemConfig{};
}

cfg::SystemConfig
transFwConfig()
{
    cfg::SystemConfig config = baselineConfig();
    config.transFw.enabled = true;
    return config;
}

double
effectiveScale(double requested)
{
    if (requested > 0.0)
        return requested;
    if (const char *env = std::getenv("TRANSFW_SCALE")) {
        double v = std::atof(env);
        if (v > 0.0)
            return v;
    }
    return 1.0;
}

SimResults
runApp(const std::string &abbr, const cfg::SystemConfig &config,
       double scale)
{
    auto workload = wl::makeApp(abbr, effectiveScale(scale));
    return runWorkload(*workload, config);
}

SimResults
runWorkload(const wl::Workload &workload, const cfg::SystemConfig &config)
{
    MultiGpuSystem system(config, workload);
    return system.run();
}

namespace {

SeedStats
summarize(const std::vector<double> &samples)
{
    SeedStats stats;
    stats.seeds = static_cast<int>(samples.size());
    if (samples.empty())
        return stats;
    double sum = 0, sumsq = 0;
    stats.min = samples[0];
    stats.max = samples[0];
    for (double x : samples) {
        sum += x;
        sumsq += x * x;
        stats.min = std::min(stats.min, x);
        stats.max = std::max(stats.max, x);
    }
    stats.mean = sum / samples.size();
    double var = sumsq / samples.size() - stats.mean * stats.mean;
    stats.stddev = var > 0 ? std::sqrt(var) : 0.0;
    return stats;
}

} // namespace

SeedStats
execTimeAcrossSeeds(const std::string &abbr,
                    const cfg::SystemConfig &config, int n_seeds,
                    double scale)
{
    std::vector<double> samples;
    for (int seed = 1; seed <= n_seeds; ++seed) {
        cfg::SystemConfig c = config;
        c.seed = static_cast<std::uint64_t>(seed);
        samples.push_back(
            static_cast<double>(runApp(abbr, c, scale).execTime));
    }
    return summarize(samples);
}

SeedStats
speedupAcrossSeeds(const std::string &abbr,
                   const cfg::SystemConfig &baseline,
                   const cfg::SystemConfig &variant, int n_seeds,
                   double scale)
{
    std::vector<double> samples;
    for (int seed = 1; seed <= n_seeds; ++seed) {
        cfg::SystemConfig a = baseline;
        cfg::SystemConfig b = variant;
        a.seed = static_cast<std::uint64_t>(seed);
        b.seed = static_cast<std::uint64_t>(seed);
        samples.push_back(
            speedup(runApp(abbr, a, scale), runApp(abbr, b, scale)));
    }
    return summarize(samples);
}

} // namespace transfw::sys
