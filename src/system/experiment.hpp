#ifndef TRANSFW_SYSTEM_EXPERIMENT_HPP
#define TRANSFW_SYSTEM_EXPERIMENT_HPP

#include <string>

#include "config/config.hpp"
#include "system/results.hpp"
#include "system/system.hpp"
#include "workload/workload.hpp"

namespace transfw::sys {

/** The paper's Table II baseline configuration (host-MMU far faults). */
cfg::SystemConfig baselineConfig();

/** Baseline plus Trans-FW with the paper's default PRT/FT/threshold. */
cfg::SystemConfig transFwConfig();

/**
 * Run one application (Table III abbreviation) under @p config.
 * @p scale multiplies per-CTA work; scale <= 0 reads the
 * TRANSFW_SCALE environment variable (default 1.0), letting slow
 * machines shrink every experiment uniformly.
 */
SimResults runApp(const std::string &abbr, const cfg::SystemConfig &config,
                  double scale = 0.0);

/** Run an arbitrary workload under @p config. */
SimResults runWorkload(const wl::Workload &workload,
                       const cfg::SystemConfig &config);

/** Relative speedup of @p candidate over @p baseline (1.0 = equal). */
inline double
speedup(const SimResults &baseline, const SimResults &candidate)
{
    return candidate.execTime
               ? static_cast<double>(baseline.execTime) /
                     static_cast<double>(candidate.execTime)
               : 0.0;
}

/** Effective work scale (TRANSFW_SCALE env var or 1.0). */
double effectiveScale(double requested);

/** Mean / stddev / extrema of a metric across seeds. */
struct SeedStats
{
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    int seeds = 0;
};

/**
 * Run @p abbr under @p config with seeds 1..n_seeds and summarize the
 * execution times (the simulator is deterministic per seed; this
 * quantifies sensitivity to the workload's random draws).
 */
SeedStats execTimeAcrossSeeds(const std::string &abbr,
                              const cfg::SystemConfig &config,
                              int n_seeds, double scale = 0.0);

/**
 * Speedup of @p variant over @p baseline per seed, summarized. Use to
 * attach error bars to any headline number.
 */
SeedStats speedupAcrossSeeds(const std::string &abbr,
                             const cfg::SystemConfig &baseline,
                             const cfg::SystemConfig &variant,
                             int n_seeds, double scale = 0.0);

} // namespace transfw::sys

#endif // TRANSFW_SYSTEM_EXPERIMENT_HPP
