#include "system/report.hpp"

#include <sstream>

#include "sim/logging.hpp"

namespace transfw::sys {

namespace {

/** The scalar fields exported by name, in a fixed order for CSV. */
struct Field
{
    const char *name;
    double (*get)(const SimResults &);
};

const Field kFields[] = {
    {"exec.cycles", [](const SimResults &r) {
         return static_cast<double>(r.execTime);
     }},
    {"exec.instructions", [](const SimResults &r) {
         return static_cast<double>(r.instructions);
     }},
    {"exec.memOps", [](const SimResults &r) {
         return static_cast<double>(r.memOps);
     }},
    {"exec.pageAccesses", [](const SimResults &r) {
         return static_cast<double>(r.pageAccesses);
     }},
    {"xlat.l2Misses", [](const SimResults &r) {
         return static_cast<double>(r.l2TlbMisses);
     }},
    {"fault.count", [](const SimResults &r) {
         return static_cast<double>(r.farFaults);
     }},
    {"fault.pfpki", [](const SimResults &r) { return r.pfpki(); }},
    {"xlat.avgLatency", [](const SimResults &r) {
         return r.avgXlatLatency;
     }},
    {"xlat.p50", [](const SimResults &r) {
         return r.xlatLatencyHist.quantile(0.50);
     }},
    {"xlat.p90", [](const SimResults &r) {
         return r.xlatLatencyHist.quantile(0.90);
     }},
    {"xlat.p95", [](const SimResults &r) {
         return r.xlatLatencyHist.quantile(0.95);
     }},
    {"xlat.p99", [](const SimResults &r) {
         return r.xlatLatencyHist.quantile(0.99);
     }},
    {"xlat.p999", [](const SimResults &r) {
         return r.xlatLatencyHist.quantile(0.999);
     }},
    {"xlat.gmmuQueue", [](const SimResults &r) {
         return r.xlat.gmmuQueue;
     }},
    {"xlat.gmmuMem", [](const SimResults &r) { return r.xlat.gmmuMem; }},
    {"xlat.hostQueue", [](const SimResults &r) {
         return r.xlat.hostQueue;
     }},
    {"xlat.hostMem", [](const SimResults &r) { return r.xlat.hostMem; }},
    {"xlat.migration", [](const SimResults &r) {
         return r.xlat.migration;
     }},
    {"xlat.network", [](const SimResults &r) { return r.xlat.network; }},
    {"xlat.other", [](const SimResults &r) { return r.xlat.other; }},
    {"tlb.l1HitRate", [](const SimResults &r) { return r.l1HitRate; }},
    {"tlb.l2HitRate", [](const SimResults &r) { return r.l2HitRate; }},
    {"tlb.hostHitRate", [](const SimResults &r) {
         return r.hostTlbHitRate;
     }},
    {"queue.gmmuWaitMean", [](const SimResults &r) {
         return r.gmmuQueueWaitMean;
     }},
    {"queue.hostWaitMean", [](const SimResults &r) {
         return r.hostQueueWaitMean;
     }},
    {"walk.host", [](const SimResults &r) {
         return static_cast<double>(r.hostWalks);
     }},
    {"walk.hostMemAccesses", [](const SimResults &r) {
         return static_cast<double>(r.hostWalkMemAccesses);
     }},
    {"walk.gmmuMemAccesses", [](const SimResults &r) {
         return static_cast<double>(r.gmmuWalkMemAccesses);
     }},
    {"walk.gmmuRemoteMemAccesses", [](const SimResults &r) {
         return static_cast<double>(r.gmmuRemoteMemAccesses);
     }},
    {"transfw.shortCircuits", [](const SimResults &r) {
         return static_cast<double>(r.shortCircuits);
     }},
    {"transfw.prtLookups", [](const SimResults &r) {
         return static_cast<double>(r.prtLookups);
     }},
    {"transfw.prtHits", [](const SimResults &r) {
         return static_cast<double>(r.prtHits);
     }},
    {"transfw.ftLookups", [](const SimResults &r) {
         return static_cast<double>(r.ftLookups);
     }},
    {"transfw.ftHits", [](const SimResults &r) {
         return static_cast<double>(r.ftHits);
     }},
    {"transfw.forwards", [](const SimResults &r) {
         return static_cast<double>(r.forwards);
     }},
    {"transfw.forwardSuccess", [](const SimResults &r) {
         return static_cast<double>(r.forwardSuccess);
     }},
    {"transfw.forwardFail", [](const SimResults &r) {
         return static_cast<double>(r.forwardFail);
     }},
    {"transfw.duplicateWalks", [](const SimResults &r) {
         return static_cast<double>(r.duplicateWalks);
     }},
    {"transfw.removedFromQueue", [](const SimResults &r) {
         return static_cast<double>(r.removedFromQueue);
     }},
    {"transfw.prtOverflows", [](const SimResults &r) {
         return static_cast<double>(r.prtOverflows);
     }},
    {"transfw.ftOverflows", [](const SimResults &r) {
         return static_cast<double>(r.ftOverflows);
     }},
    {"queue.gmmuOverflows", [](const SimResults &r) {
         return static_cast<double>(r.gmmuQueueOverflows);
     }},
    {"queue.hostOverflows", [](const SimResults &r) {
         return static_cast<double>(r.hostQueueOverflows);
     }},
    {"migration.count", [](const SimResults &r) {
         return static_cast<double>(r.migrations);
     }},
    {"migration.replications", [](const SimResults &r) {
         return static_cast<double>(r.replications);
     }},
    {"migration.writeInvalidations", [](const SimResults &r) {
         return static_cast<double>(r.writeInvalidations);
     }},
    {"migration.remoteMappings", [](const SimResults &r) {
         return static_cast<double>(r.remoteMappings);
     }},
    {"migration.counterMigrations", [](const SimResults &r) {
         return static_cast<double>(r.counterMigrations);
     }},
    {"migration.bytesMoved", [](const SimResults &r) {
         return static_cast<double>(r.bytesMoved);
     }},
    {"sharing.reads", [](const SimResults &r) {
         return static_cast<double>(r.sharedPageReads);
     }},
    {"sharing.writes", [](const SimResults &r) {
         return static_cast<double>(r.sharedPageWrites);
     }},
    {"driver.batches", [](const SimResults &r) {
         return static_cast<double>(r.driverBatches);
     }},
    {"driver.avgBatchSize", [](const SimResults &r) {
         return r.driverAvgBatchSize;
     }},
};

} // namespace

stats::Registry
toRegistry(const SimResults &results)
{
    stats::Registry registry;
    for (const Field &field : kFields)
        registry.set(field.name, field.get(results));
    for (std::size_t level = 0; level <= 5; ++level) {
        registry.set(sim::strfmt("pwc.gmmu.L%zu", level),
                     results.gmmuPwcLevels.fraction(level));
        registry.set(sim::strfmt("pwc.host.L%zu", level),
                     results.hostPwcLevels.fraction(level));
    }
    for (std::size_t sharers = 1; sharers <= 4; ++sharers)
        registry.set(sim::strfmt("sharing.by%zu", sharers),
                     results.sharingAccesses.fraction(sharers));
    return registry;
}

std::string
formatReport(const SimResults &results)
{
    std::ostringstream os;
    os << "app: " << results.app << "\n"
       << "config: " << results.configSummary << "\n"
       << toRegistry(results).format();
    return os.str();
}

std::string
csvHeader()
{
    std::ostringstream os;
    os << "app";
    for (const Field &field : kFields)
        os << ',' << field.name;
    return os.str();
}

std::string
csvRow(const SimResults &results)
{
    std::ostringstream os;
    os << results.app;
    for (const Field &field : kFields)
        os << ',' << field.get(results);
    return os.str();
}

} // namespace transfw::sys
