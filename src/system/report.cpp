#include "system/report.hpp"

#include <sstream>

#include "sim/logging.hpp"

namespace transfw::sys {

namespace {

/** The scalar fields exported by name, in a fixed order for CSV. */
struct Field
{
    const char *name;
    double (*get)(const SimResults &);
};

const Field kFields[] = {
    {"exec.cycles", [](const SimResults &r) {
         return static_cast<double>(r.execTime);
     }},
    {"exec.instructions", [](const SimResults &r) {
         return static_cast<double>(r.instructions);
     }},
    {"exec.memOps", [](const SimResults &r) {
         return static_cast<double>(r.memOps);
     }},
    {"exec.pageAccesses", [](const SimResults &r) {
         return static_cast<double>(r.pageAccesses);
     }},
    {"exec.events", [](const SimResults &r) {
         return static_cast<double>(r.eventsExecuted);
     }},
    {"exec.peakEventBacklog", [](const SimResults &r) {
         return static_cast<double>(r.peakEventBacklog);
     }},
    {"xlat.l2Misses", [](const SimResults &r) {
         return static_cast<double>(r.l2TlbMisses);
     }},
    {"fault.count", [](const SimResults &r) {
         return static_cast<double>(r.farFaults);
     }},
    {"fault.pfpki", [](const SimResults &r) { return r.pfpki(); }},
    {"xlat.avgLatency", [](const SimResults &r) {
         return r.avgXlatLatency;
     }},
    {"xlat.p50", [](const SimResults &r) {
         return r.xlatLatencyHist.quantile(0.50);
     }},
    {"xlat.p90", [](const SimResults &r) {
         return r.xlatLatencyHist.quantile(0.90);
     }},
    {"xlat.p95", [](const SimResults &r) {
         return r.xlatLatencyHist.quantile(0.95);
     }},
    {"xlat.p99", [](const SimResults &r) {
         return r.xlatLatencyHist.quantile(0.99);
     }},
    {"xlat.p999", [](const SimResults &r) {
         return r.xlatLatencyHist.quantile(0.999);
     }},
    {"xlat.gmmuQueue", [](const SimResults &r) {
         return r.xlat.gmmuQueue;
     }},
    {"xlat.gmmuMem", [](const SimResults &r) { return r.xlat.gmmuMem; }},
    {"xlat.hostQueue", [](const SimResults &r) {
         return r.xlat.hostQueue;
     }},
    {"xlat.hostMem", [](const SimResults &r) { return r.xlat.hostMem; }},
    {"xlat.migration", [](const SimResults &r) {
         return r.xlat.migration;
     }},
    {"xlat.network", [](const SimResults &r) { return r.xlat.network; }},
    {"xlat.other", [](const SimResults &r) { return r.xlat.other; }},
    {"tlb.l1HitRate", [](const SimResults &r) { return r.l1HitRate; }},
    {"tlb.l2HitRate", [](const SimResults &r) { return r.l2HitRate; }},
    {"tlb.hostHitRate", [](const SimResults &r) {
         return r.hostTlbHitRate;
     }},
    {"queue.gmmuWaitMean", [](const SimResults &r) {
         return r.gmmuQueueWaitMean;
     }},
    {"queue.hostWaitMean", [](const SimResults &r) {
         return r.hostQueueWaitMean;
     }},
    {"walk.host", [](const SimResults &r) {
         return static_cast<double>(r.hostWalks);
     }},
    {"walk.hostMemAccesses", [](const SimResults &r) {
         return static_cast<double>(r.hostWalkMemAccesses);
     }},
    {"walk.gmmuMemAccesses", [](const SimResults &r) {
         return static_cast<double>(r.gmmuWalkMemAccesses);
     }},
    {"walk.gmmuRemoteMemAccesses", [](const SimResults &r) {
         return static_cast<double>(r.gmmuRemoteMemAccesses);
     }},
    {"transfw.shortCircuits", [](const SimResults &r) {
         return static_cast<double>(r.shortCircuits);
     }},
    {"transfw.prtLookups", [](const SimResults &r) {
         return static_cast<double>(r.prtLookups);
     }},
    {"transfw.prtHits", [](const SimResults &r) {
         return static_cast<double>(r.prtHits);
     }},
    {"transfw.ftLookups", [](const SimResults &r) {
         return static_cast<double>(r.ftLookups);
     }},
    {"transfw.ftHits", [](const SimResults &r) {
         return static_cast<double>(r.ftHits);
     }},
    {"transfw.forwards", [](const SimResults &r) {
         return static_cast<double>(r.forwards);
     }},
    {"transfw.forwardSuccess", [](const SimResults &r) {
         return static_cast<double>(r.forwardSuccess);
     }},
    {"transfw.forwardFail", [](const SimResults &r) {
         return static_cast<double>(r.forwardFail);
     }},
    {"transfw.duplicateWalks", [](const SimResults &r) {
         return static_cast<double>(r.duplicateWalks);
     }},
    {"transfw.removedFromQueue", [](const SimResults &r) {
         return static_cast<double>(r.removedFromQueue);
     }},
    {"transfw.prtOverflows", [](const SimResults &r) {
         return static_cast<double>(r.prtOverflows);
     }},
    {"transfw.ftOverflows", [](const SimResults &r) {
         return static_cast<double>(r.ftOverflows);
     }},
    {"queue.gmmuOverflows", [](const SimResults &r) {
         return static_cast<double>(r.gmmuQueueOverflows);
     }},
    {"queue.hostOverflows", [](const SimResults &r) {
         return static_cast<double>(r.hostQueueOverflows);
     }},
    {"migration.count", [](const SimResults &r) {
         return static_cast<double>(r.migrations);
     }},
    {"migration.replications", [](const SimResults &r) {
         return static_cast<double>(r.replications);
     }},
    {"migration.writeInvalidations", [](const SimResults &r) {
         return static_cast<double>(r.writeInvalidations);
     }},
    {"migration.remoteMappings", [](const SimResults &r) {
         return static_cast<double>(r.remoteMappings);
     }},
    {"migration.counterMigrations", [](const SimResults &r) {
         return static_cast<double>(r.counterMigrations);
     }},
    {"migration.bytesMoved", [](const SimResults &r) {
         return static_cast<double>(r.bytesMoved);
     }},
    {"sharing.reads", [](const SimResults &r) {
         return static_cast<double>(r.sharedPageReads);
     }},
    {"sharing.writes", [](const SimResults &r) {
         return static_cast<double>(r.sharedPageWrites);
     }},
    {"driver.batches", [](const SimResults &r) {
         return static_cast<double>(r.driverBatches);
     }},
    {"driver.avgBatchSize", [](const SimResults &r) {
         return r.driverAvgBatchSize;
     }},
    // Reply-race ledger (first-reply-wins accounting; attrib.hpp).
    {"race.remoteWins", [](const SimResults &r) {
         return static_cast<double>(r.attribution.remoteWins);
     }},
    {"race.hostWins", [](const SimResults &r) {
         return static_cast<double>(r.attribution.hostWins);
     }},
    {"race.failedForwards", [](const SimResults &r) {
         return static_cast<double>(r.attribution.failedForwards);
     }},
    {"race.cancelledHostWalks", [](const SimResults &r) {
         return static_cast<double>(r.attribution.cancelledHostWalks);
     }},
    {"race.duplicateHostWalks", [](const SimResults &r) {
         return static_cast<double>(r.attribution.duplicateHostWalks);
     }},
    {"race.unresolved", [](const SimResults &r) {
         return static_cast<double>(r.attribution.unresolvedRaces);
     }},
    {"race.savedCycles", [](const SimResults &r) {
         return r.attribution.forwardSavedCycles;
     }},
    {"race.savedEstCycles", [](const SimResults &r) {
         return r.attribution.forwardSavedEstCycles;
     }},
    {"race.wastedCycles", [](const SimResults &r) {
         return r.attribution.forwardWastedCycles;
     }},
    {"race.shortCircuitSavedEstCycles", [](const SimResults &r) {
         return r.attribution.shortCircuitSavedEstCycles;
     }},
    {"obs.checkViolations", [](const SimResults &r) {
         return static_cast<double>(r.obsCheckViolations);
     }},
    {"obs.checkedRequests", [](const SimResults &r) {
         return static_cast<double>(r.obsCheckedRequests);
     }},
    {"obs.droppedSpans", [](const SimResults &r) {
         return static_cast<double>(r.droppedSpans);
     }},
};

} // namespace

stats::Registry
toRegistry(const SimResults &results)
{
    stats::Registry registry;
    for (const Field &field : kFields)
        registry.set(field.name, field.get(results));
    for (std::size_t level = 0; level <= 5; ++level) {
        registry.set(sim::strfmt("pwc.gmmu.L%zu", level),
                     results.gmmuPwcLevels.fraction(level));
        registry.set(sim::strfmt("pwc.host.L%zu", level),
                     results.hostPwcLevels.fraction(level));
    }
    for (std::size_t sharers = 1; sharers <= 4; ++sharers)
        registry.set(sim::strfmt("sharing.by%zu", sharers),
                     results.sharingAccesses.fraction(sharers));
    // Per-mechanism latency attribution: one column per bucket, cycles
    // summed over every finished translation (refines xlat.* exactly).
    for (std::size_t b = 0; b < obs::kNumAttribBuckets; ++b) {
        auto bucket = static_cast<obs::AttribBucket>(b);
        registry.set(std::string("attrib.") + obs::bucketName(bucket),
                     results.attribution.bucket[b]);
    }
    // Host-MMU sharding: these keys exist only when the run actually
    // sharded (hostShards > 1), so single-shard registries — and the
    // golden ledger built from them — keep the pre-shard key set.
    if (!results.hostShardWalks.empty()) {
        registry.set("shard.count",
                     static_cast<double>(results.hostShardWalks.size()));
        registry.set("shard.routedFaults",
                     static_cast<double>(results.hostRoutedFaults));
        registry.set(
            "shard.ftReplicaUpdates",
            static_cast<double>(results.ftReplicaUpdates));
        registry.set(
            "shard.ftReplicaInvalidations",
            static_cast<double>(results.ftReplicaInvalidations));
        for (std::size_t s = 0; s < results.hostShardWalks.size();
             ++s) {
            registry.set(
                sim::strfmt("shard.s%zu.walks", s),
                static_cast<double>(results.hostShardWalks[s]));
            registry.set(sim::strfmt("shard.s%zu.queueWaitMean", s),
                         results.hostShardQueueWaitMean[s]);
            registry.set(
                sim::strfmt("shard.s%zu.maxQueueDepth", s),
                static_cast<double>(results.hostShardMaxQueueDepth[s]));
        }
        // Skew summary of the per-shard series above: who is hottest,
        // by how much, and how lopsided the whole spread is.
        registry.set("shard.skew.waitRatio", results.shardSkewWaitRatio);
        registry.set("shard.skew.loadShareMax",
                     results.shardSkewLoadShareMax);
        registry.set("shard.skew.loadCv", results.shardSkewLoadCv);
    }
    // Fabric telemetry: fabricLinks is populated only in observability
    // builds, so TRANSFW_OBS=0 registries — and ledgers diffed against
    // them — keep their key set, the same gating rule as shard.*.
    if (!results.fabricLinks.empty()) {
        std::size_t fabric_edges = 0;
        for (const auto &fl : results.fabricLinks)
            if (fl.fabric)
                ++fabric_edges;
        registry.set("fabric.links",
                     static_cast<double>(fabric_edges));
        registry.set("fabric.worstQueueWaitP99",
                     results.fabricWorstQueueWaitP99);
        registry.set("fabric.meanUtilization",
                     results.fabricMeanUtilization);
        if (!results.fabricHopDist.empty())
            registry.set(
                "fabric.maxRouteHops",
                static_cast<double>(results.fabricHopDist.back().hops));
    }
    if (!results.hotVpnGroups.empty()) {
        double top8 = 0;
        for (const auto &hg : results.hotVpnGroups)
            top8 += hg.share;
        registry.set("fabric.hotGroups.top8Share",
                     top8 > 1.0 ? 1.0 : top8);
    }
    return registry;
}

std::string
formatReport(const SimResults &results)
{
    std::ostringstream os;
    os << "app: " << results.app << "\n"
       << "config: " << results.configSummary << "\n"
       << toRegistry(results).format();
    return os.str();
}

std::string
csvHeader()
{
    std::ostringstream os;
    os << "app";
    for (const Field &field : kFields)
        os << ',' << field.name;
    return os.str();
}

std::string
csvRow(const SimResults &results)
{
    std::ostringstream os;
    os << results.app;
    for (const Field &field : kFields)
        os << ',' << field.get(results);
    return os.str();
}

obs::LedgerRecord
toLedgerRecord(const SimResults &results,
               const cfg::SystemConfig &config, double scale,
               const std::string &source)
{
    obs::LedgerRecord record;
    record.schema = obs::RunLedger::kSchema;
    record.app = results.app;
    record.scale = scale;
    record.configKey = config.key();
    record.configSummary = results.configSummary;
    record.source = source;
    record.metrics = toRegistry(results).values();

    record.wall["wall_seconds"] = results.hostWallSeconds;
    record.wall["events_per_sec"] = results.hostEventsPerSec;
    const obs::HostProfile &profile = results.hostProfile;
    if (profile.stride != 0) {
        record.wall["profile.total_seconds"] = profile.totalSeconds;
        record.wall["profile.stride"] =
            static_cast<double>(profile.stride);
        record.wall["profile.sampled_dispatches"] =
            static_cast<double>(profile.sampledDispatches);
        for (std::size_t b = 0; b < obs::kNumProfBuckets; ++b)
            record.wall[std::string("profile.") +
                        obs::profBucketName(
                            static_cast<obs::ProfBucket>(b))] =
                profile.seconds[b];
    }
    obs::RunLedger::stampWall(record);
    return record;
}

} // namespace transfw::sys
