#ifndef TRANSFW_SYSTEM_REPORT_HPP
#define TRANSFW_SYSTEM_REPORT_HPP

#include <string>

#include "config/config.hpp"
#include "obs/ledger.hpp"
#include "stats/stats.hpp"
#include "system/results.hpp"

namespace transfw::sys {

/**
 * Export every SimResults field into a named-scalar registry
 * (dot-separated keys, e.g. "xlat.hostQueue", "tlb.l2HitRate"), so
 * tools can diff runs, dump CSV rows, or feed dashboards without
 * knowing the struct layout.
 */
stats::Registry toRegistry(const SimResults &results);

/** Human-readable multi-section report (what inspect_stats prints). */
std::string formatReport(const SimResults &results);

/** One CSV line (with a matching header line) for sweep tooling. */
std::string csvHeader();
std::string csvRow(const SimResults &results);

/**
 * Pack one run into a ledger record: the full toRegistry() metrics map
 * plus host-side wall measurements (wall seconds, events/sec, profiler
 * buckets) in the record's noisy wall section. Stamps the wall
 * timestamp; callers append via obs::RunLedger::append().
 */
obs::LedgerRecord toLedgerRecord(const SimResults &results,
                                 const cfg::SystemConfig &config,
                                 double scale,
                                 const std::string &source);

} // namespace transfw::sys

#endif // TRANSFW_SYSTEM_REPORT_HPP
