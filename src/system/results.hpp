#ifndef TRANSFW_SYSTEM_RESULTS_HPP
#define TRANSFW_SYSTEM_RESULTS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "obs/attrib.hpp"
#include "obs/histogram.hpp"
#include "obs/self_profiler.hpp"
#include "sim/ticks.hpp"
#include "stats/stats.hpp"

namespace transfw::sys {

/**
 * Everything one simulation run measures. Benches read typed fields
 * from here to print the paper's tables and figure series.
 */
struct SimResults
{
    std::string app;
    std::string configSummary;

    // --- headline --------------------------------------------------------
    sim::Tick execTime = 0;       ///< end-to-end execution time (cycles)
    std::uint64_t eventsExecuted = 0; ///< discrete events the run drained
    std::uint64_t instructions = 0;
    std::uint64_t memOps = 0;
    std::uint64_t pageAccesses = 0;
    std::uint64_t l2TlbMisses = 0;
    std::uint64_t farFaults = 0;  ///< GPU local page faults

    double
    pfpki() const
    {
        return instructions
                   ? 1000.0 * static_cast<double>(farFaults) /
                         static_cast<double>(instructions)
                   : 0.0;
    }

    // --- L2-TLB-miss latency decomposition (Fig. 3 / Fig. 12) -------------
    stats::LatencyBreakdown xlat;  ///< summed over all L2 TLB misses
    double avgXlatLatency = 0.0;
    /** Full latency distribution, merged over every GPU: p50/p90/p95/
     *  p99/p99.9 via quantile() — tail behaviour the mean hides. */
    obs::LogHistogram xlatLatencyHist;

    // --- TLBs --------------------------------------------------------------
    double l1HitRate = 0.0;
    double l2HitRate = 0.0;
    double hostTlbHitRate = 0.0;

    // --- PW-caches (Figs. 5, 6, 13): bucket i = hit at entry level i,
    //     bucket 0 = full miss ------------------------------------------------
    stats::BucketHistogram gmmuPwcLevels{8};
    stats::BucketHistogram hostPwcLevels{8};

    // --- queues -------------------------------------------------------------
    double gmmuQueueWaitMean = 0.0;
    double hostQueueWaitMean = 0.0;
    std::uint64_t gmmuQueueOverflows = 0; ///< beyond the 64-entry PW-queue
    std::uint64_t hostQueueOverflows = 0;

    // --- page sharing (Figs. 7, 24): bucket k = accesses to pages
    //     touched by exactly k GPUs ------------------------------------------
    stats::BucketHistogram sharingAccesses{65};
    std::uint64_t sharedPageReads = 0;  ///< reads to >=2-GPU pages
    std::uint64_t sharedPageWrites = 0;

    // --- remote-hit characterization (Fig. 8) -------------------------------
    stats::BucketHistogram remoteProbeLevels{8};

    // --- Trans-FW mechanics (Figs. 14-16) ------------------------------------
    std::uint64_t shortCircuits = 0;
    std::uint64_t prtLookups = 0, prtHits = 0;
    std::uint64_t ftLookups = 0, ftHits = 0;
    std::uint64_t forwards = 0, forwardSuccess = 0, forwardFail = 0;
    std::uint64_t duplicateWalks = 0, removedFromQueue = 0;
    std::uint64_t prtOverflows = 0, ftOverflows = 0; ///< filter evictions

    // --- walk volumes --------------------------------------------------------
    std::uint64_t gmmuWalkMemAccesses = 0;  ///< for local translations
    std::uint64_t gmmuRemoteMemAccesses = 0;///< serving remote lookups
    std::uint64_t hostWalks = 0;
    std::uint64_t hostWalkMemAccesses = 0;

    // --- host-MMU sharding (pod scale-out; empty when hostShards == 1) -------
    /** Faults that crossed the shard-steering crossbar. */
    std::uint64_t hostRoutedFaults = 0;
    /** Per-shard walk counts (size == hostShards when sharded). */
    std::vector<std::uint64_t> hostShardWalks;
    /** Per-shard PW-queue wait means — the study's occupancy signal. */
    std::vector<double> hostShardQueueWaitMean;
    /** Per-shard peak PW-queue depth. */
    std::vector<std::uint64_t> hostShardMaxQueueDepth;
    /** Replicated-FT coherence traffic (0 under partitioning). */
    std::uint64_t ftReplicaUpdates = 0;
    std::uint64_t ftReplicaInvalidations = 0;

    // --- fabric telemetry (per-link; empty under TRANSFW_OBS=0) --------------
    /** One interconnect edge's traffic summary, read off ic::Link. */
    struct FabricLinkStats
    {
        std::string name;            ///< registry prefix ("peer3to4", ...)
        bool fabric = false;         ///< peer/switch edge (vs host star leg)
        std::uint64_t bytes = 0;
        std::uint64_t messages = 0;  ///< data-channel messages
        std::uint64_t ctrlMessages = 0;
        double queueWaitMean = 0.0;  ///< data-channel serialization queue
        double queueWaitP99 = 0.0;
        double queueWaitMax = 0.0;
        std::uint64_t peakQueueDepth = 0;
        double utilization = 0.0;    ///< busy serialization cycles / execTime
    };
    /** Routed peer traffic grouped by route length (hop-distance mix). */
    struct FabricHopDist
    {
        int hops = 0;
        std::uint64_t messages = 0;
        std::uint64_t bytes = 0;
        double waitPerMsg = 0.0;     ///< mean summed queue wait over the route
    };
    /** One heavy-hitter VPN group from the FT skew sketch. */
    struct HotVpnGroup
    {
        std::uint64_t group = 0;     ///< vpn >> vpnMaskBits
        std::uint64_t count = 0;     ///< estimate (over-counts by <= error)
        std::uint64_t error = 0;
        double share = 0.0;          ///< count / total lookups
        int shard = 0;               ///< home shard under the partition hash
    };

    std::vector<FabricLinkStats> fabricLinks; ///< every link, stable order
    std::vector<FabricHopDist> fabricHopDist; ///< index != hops; sparse list
    std::string fabricWorstLink;       ///< fabric edge with the worst p99 wait
    double fabricWorstQueueWaitP99 = 0.0;
    double fabricMeanUtilization = 0.0;///< mean over fabric edges
    std::vector<HotVpnGroup> hotVpnGroups; ///< top-8 by estimated count

    // --- shard skew (always-on; neutral values when hostShards == 1) ---------
    double shardSkewWaitRatio = 0.0;   ///< worst / mean shard queue-wait mean
    double shardSkewLoadShareMax = 0.0;///< hottest shard's walk share
    double shardSkewLoadCv = 0.0;      ///< coefficient of variation of walks

    // --- page movement --------------------------------------------------------
    std::uint64_t migrations = 0;
    std::uint64_t replications = 0;
    std::uint64_t writeInvalidations = 0;
    std::uint64_t remoteMappings = 0;
    std::uint64_t counterMigrations = 0;
    std::uint64_t bytesMoved = 0;

    // --- software driver --------------------------------------------------------
    std::uint64_t driverBatches = 0;
    double driverAvgBatchSize = 0.0;

    // --- latency attribution (per-mechanism refinement of xlat) ---------------
    /** Bucketed cycle totals + the reply-race ledger. Bucket sums match
     *  xlat field-for-field (obs::Checks enforces it per request). */
    obs::AttributionTable attribution;
    std::uint64_t obsCheckViolations = 0;  ///< watchdog trips (expect 0)
    std::uint64_t obsCheckedRequests = 0;  ///< requests the watchdog saw
    std::uint64_t droppedSpans = 0;        ///< spans lost to capacity

    // --- host-side execution (the ledger's wall section, except the
    //     deterministic backlog peak) -----------------------------------
    std::uint64_t peakEventBacklog = 0; ///< EventQueue::peakPending()
    double hostWallSeconds = 0.0;       ///< wall clock inside run()
    double hostEventsPerSec = 0.0;      ///< eventsExecuted / wall
    obs::HostProfile hostProfile;       ///< SelfProfiler bucket snapshot
};

} // namespace transfw::sys

#endif // TRANSFW_SYSTEM_RESULTS_HPP
