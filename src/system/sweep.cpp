#include "system/sweep.hpp"

#include <algorithm>
#include <utility>

#include "sim/logging.hpp"
#include "sim/task_pool.hpp"
#include "sim/trace.hpp"
#include "system/experiment.hpp"

namespace transfw::sys {

std::string
runKey(const RunSpec &spec)
{
    // effectiveScale folds TRANSFW_SCALE in, so two specs that differ
    // only in how they spell the ambient scale share one key.
    return spec.app + ";" +
           sim::strfmt("%.17g;", effectiveScale(spec.scale)) +
           spec.config.key();
}

SweepRunner::SweepRunner(int jobs)
    : jobs_(jobs > 0 ? jobs
                     : static_cast<int>(sim::TaskPool::defaultThreads()))
{
    // Sweeps memoize every (config, app, scale) point; typical matrices
    // are tens of points, so one up-front reserve avoids all rehashing.
    memo_.reserve(64);
}

SimResults
SweepRunner::runOne(const RunSpec &spec)
{
    return run({spec}).front();
}

std::vector<SimResults>
SweepRunner::run(const std::vector<RunSpec> &specs)
{
    // Partition into memo hits and unique pending keys first, so a
    // spec repeated within one batch also executes only once.
    struct Pending
    {
        std::string key;
        const RunSpec *spec;
        SimResults result;
    };
    std::vector<Pending> pending;
    std::vector<std::string> keys(specs.size());
    {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.requested += specs.size();
        for (std::size_t i = 0; i < specs.size(); ++i) {
            keys[i] = runKey(specs[i]);
            if (memo_.count(keys[i]))
                continue;
            bool queued = false;
            for (const Pending &p : pending)
                if (p.key == keys[i]) {
                    queued = true;
                    break;
                }
            if (!queued)
                pending.push_back({keys[i], &specs[i], {}});
        }
        stats_.executed += pending.size();
        stats_.memoHits += specs.size() - pending.size();
    }

    // Force lazy trace-env init on this thread before any worker can
    // race to it (belt and braces on top of trace.cpp's call_once).
    sim::trace::anyEnabled();

    auto execute = [](Pending &p) {
        p.result = runApp(p.spec->app, p.spec->config, p.spec->scale);
    };

    if (jobs_ <= 1 || pending.size() <= 1) {
        for (Pending &p : pending)
            execute(p);
    } else {
        sim::TaskPool pool(static_cast<unsigned>(
            std::min<std::size_t>(pending.size(),
                                  static_cast<std::size_t>(jobs_))));
        for (Pending &p : pending)
            pool.submit([&execute, &p] { execute(p); });
        pool.wait();
    }

    std::vector<SimResults> out;
    out.reserve(specs.size());
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (Pending &p : pending)
            memo_.emplace(p.key, std::move(p.result));
        for (const std::string &k : keys)
            out.push_back(memo_.at(k));
    }
    return out;
}

SweepRunner::Stats
SweepRunner::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
SweepRunner::clearMemo()
{
    std::lock_guard<std::mutex> lock(mu_);
    memo_.clear();
}

SweepRunner &
SweepRunner::shared()
{
    static SweepRunner runner;
    return runner;
}

} // namespace transfw::sys
