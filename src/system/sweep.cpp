#include "system/sweep.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

#include "obs/ledger.hpp"
#include "sim/logging.hpp"
#include "sim/task_pool.hpp"
#include "sim/trace.hpp"
#include "system/experiment.hpp"
#include "system/report.hpp"

namespace transfw::sys {

std::string
runKey(const RunSpec &spec)
{
    // effectiveScale folds TRANSFW_SCALE in, so two specs that differ
    // only in how they spell the ambient scale share one key.
    return spec.app + ";" +
           sim::strfmt("%.17g;", effectiveScale(spec.scale)) +
           spec.config.key();
}

SweepRunner::SweepRunner(int jobs)
    : jobs_(jobs > 0 ? jobs
                     : static_cast<int>(sim::TaskPool::defaultThreads())),
      ledgerPath_(obs::RunLedger::envPath())
{
    // Sweeps memoize every (config, app, scale) point; typical matrices
    // are tens of points, so one up-front reserve avoids all rehashing.
    memo_.reserve(64);
}

void
SweepRunner::setLedgerPath(std::string path)
{
    std::lock_guard<std::mutex> lock(mu_);
    ledgerPath_ = std::move(path);
}

SimResults
SweepRunner::runOne(const RunSpec &spec)
{
    return run({spec}).front();
}

std::vector<SimResults>
SweepRunner::run(const std::vector<RunSpec> &specs)
{
    // Partition into memo hits and unique pending keys first, so a
    // spec repeated within one batch also executes only once.
    struct Pending
    {
        std::string key;
        const RunSpec *spec;
        SimResults result;
    };
    std::vector<Pending> pending;
    std::vector<std::string> keys(specs.size());
    {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.requested += specs.size();
        for (std::size_t i = 0; i < specs.size(); ++i) {
            keys[i] = runKey(specs[i]);
            if (memo_.count(keys[i]))
                continue;
            bool queued = false;
            for (const Pending &p : pending)
                if (p.key == keys[i]) {
                    queued = true;
                    break;
                }
            if (!queued)
                pending.push_back({keys[i], &specs[i], {}});
        }
        stats_.executed += pending.size();
        stats_.memoHits += specs.size() - pending.size();
    }

    // Force lazy trace-env init on this thread before any worker can
    // race to it (belt and braces on top of trace.cpp's call_once).
    sim::trace::anyEnabled();

    auto execute = [](Pending &p) {
        p.result = runApp(p.spec->app, p.spec->config, p.spec->scale);
    };

    // Effective parallelism for this batch — what actually happened,
    // as opposed to what was requested. Recorded in stats() and the
    // ledger so a sweep that silently ran serial is visible after the
    // fact, and warned about up front.
    unsigned effective_jobs = 1;
    if (jobs_ > 1 && pending.size() > 1)
        effective_jobs = static_cast<unsigned>(
            std::min<std::size_t>(pending.size(),
                                  static_cast<std::size_t>(jobs_)));
    if (jobs_ <= 1 && pending.size() > 1) {
        static std::once_flag warned;
        std::call_once(warned, [] {
            sim::warn("sweep: running serial (1 job); thread detection "
                      "may have failed — set TRANSFW_JOBS to override");
        });
    }

    if (effective_jobs <= 1) {
        for (Pending &p : pending)
            execute(p);
    } else {
        sim::TaskPool pool(effective_jobs);
        for (Pending &p : pending)
            pool.submit([&execute, &p] { execute(p); });
        pool.wait();
    }

    // Ledger each executed point (memo hits already have a record from
    // the run that produced them). RunLedger::append serialises writers.
    std::string ledger_path;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ledger_path = ledgerPath_;
    }
    if (!ledger_path.empty()) {
        for (Pending &p : pending) {
            obs::LedgerRecord rec =
                toLedgerRecord(p.result, p.spec->config,
                               effectiveScale(p.spec->scale), "sweep");
            rec.wall["jobs"] = static_cast<double>(effective_jobs);
            obs::RunLedger::append(ledger_path, rec);
        }
    }

    std::vector<SimResults> out;
    out.reserve(specs.size());
    {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.effectiveJobs = effective_jobs;
        for (Pending &p : pending)
            memo_.emplace(p.key, std::move(p.result));
        for (const std::string &k : keys)
            out.push_back(memo_.at(k));
    }
    return out;
}

SweepRunner::Stats
SweepRunner::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
SweepRunner::clearMemo()
{
    std::lock_guard<std::mutex> lock(mu_);
    memo_.clear();
}

SweepRunner &
SweepRunner::shared()
{
    static SweepRunner runner;
    return runner;
}

} // namespace transfw::sys
