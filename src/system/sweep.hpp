#ifndef TRANSFW_SYSTEM_SWEEP_HPP
#define TRANSFW_SYSTEM_SWEEP_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "config/config.hpp"
#include "system/results.hpp"

namespace transfw::sys {

/** One point of a sweep: an application under a configuration. */
struct RunSpec
{
    std::string app;          ///< Table III abbreviation
    cfg::SystemConfig config;
    double scale = 0.0;       ///< see runApp(); 0 reads TRANSFW_SCALE
};

/** Memoisation key: equal keys ⇒ bit-identical simulation results. */
std::string runKey(const RunSpec &spec);

/**
 * Runs batches of independent simulation instances on a worker-thread
 * pool, memoising duplicates. Every figure of the paper is a sweep of
 * full-system runs (apps × configs) that share a baseline; running the
 * points concurrently and deduplicating repeated baselines is where
 * sweep wall-clock goes down, without touching the simulator:
 *
 *  - Each instance remains single-threaded and deterministic, so
 *    results are bitwise identical to a serial run of the same spec
 *    (test_sweep asserts this).
 *  - Duplicate specs — within one run() call or across calls on the
 *    same runner — execute once; later requests are served from the
 *    memo. bench_util routes every figure bench through a shared
 *    runner, so e.g. a threshold sweep re-running the baseline per
 *    point pays for it once.
 *
 * Thread count: explicit > TRANSFW_JOBS env > hardware concurrency.
 * jobs() == 1 runs inline with no threads at all.
 */
class SweepRunner
{
  public:
    struct Stats
    {
        std::uint64_t requested = 0; ///< specs asked for
        std::uint64_t executed = 0;  ///< simulations actually run
        std::uint64_t memoHits = 0;  ///< served from the memo
        /** Workers actually used by the most recent batch (1 = serial). */
        std::uint64_t effectiveJobs = 0;
    };

    /** @p jobs == 0 picks TRANSFW_JOBS / hardware concurrency. */
    explicit SweepRunner(int jobs = 0);

    /**
     * Run every spec (memoised, possibly concurrent) and return
     * results in spec order.
     */
    std::vector<SimResults> run(const std::vector<RunSpec> &specs);

    /** Single-spec convenience (still memoised). */
    SimResults runOne(const RunSpec &spec);

    int jobs() const { return jobs_; }
    Stats stats() const;
    void clearMemo();

    /**
     * JSONL run-ledger destination: every executed (non-memoised)
     * point appends one transfw-ledger-v1 record there. Defaults to
     * $TRANSFW_LEDGER; empty disables.
     */
    void setLedgerPath(std::string path);
    const std::string &ledgerPath() const { return ledgerPath_; }

    /**
     * Process-wide runner the benches share, so baseline runs are
     * memoised across every speedupSeries/figure in one binary.
     */
    static SweepRunner &shared();

  private:
    int jobs_;
    std::string ledgerPath_;
    mutable std::mutex mu_;
    std::unordered_map<std::string, SimResults> memo_;
    Stats stats_;
};

} // namespace transfw::sys

#endif // TRANSFW_SYSTEM_SWEEP_HPP
