#include "system/system.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "sim/logging.hpp"

namespace transfw::sys {

MultiGpuSystem::MultiGpuSystem(const cfg::SystemConfig &config,
                               const wl::Workload &workload)
    : cfg_(config), workload_(workload), rng_(config.seed),
      central_(config.geometry()),
      cpuFrames_(256ULL << 30, config.pageShift),
      net_(eq_, config.numGpus, config.hostLink, config.peerLink,
           config.peerTopology),
      scheduler_(workload, config.numGpus)
{
    cfg_.validate();

    if (cfg_.transFw.enabled)
        ft_ = std::make_unique<core::ForwardingTable>(cfg_.transFw);

    for (int g = 0; g < cfg_.numGpus; ++g)
        gpus_.push_back(std::make_unique<gpu::Gpu>(eq_, cfg_, g, rng_));

    std::vector<mmu::GpuIface *> ifaces;
    for (auto &g : gpus_)
        ifaces.push_back(g.get());

    engine_ = std::make_unique<uvm::MigrationEngine>(
        eq_, cfg_, central_, ifaces, net_, ft_.get());

    if (cfg_.faultMode == cfg::FaultMode::HostMmu) {
        hostMmu_ = std::make_unique<mmu::HostMmu>(
            eq_, cfg_, central_, *engine_, ft_.get(), ifaces, rng_);
        hostMmu_->onResolved = [this](mmu::XlatPtr req) {
            int g = req->gpu;
            if (req->resolvedByRemote) {
                // The owner GPU replied to the requester directly along
                // with the pushed page (Fig. 10, path I); no extra
                // host -> GPU reply hop.
                gpus_[static_cast<std::size_t>(g)]->translationReturned(
                    req);
                return;
            }
            sim::Tick t0 = eq_.now();
            net_.fromHost(g).sendCtrl(kCtrlMsgBytes, [this, req, t0, g]() {
                obs::ProfScope prof(profiler(),
                                    obs::ProfBucket::Interconnect);
                mmu::charge(*req, attribEngine(),
                            obs::AttribBucket::Network,
                            static_cast<double>(eq_.now() - t0), eq_.now());
                gpus_[static_cast<std::size_t>(g)]->translationReturned(
                    req);
            });
        };
        hostMmu_->forwardToGpu = [this](mmu::RemoteLookupPtr rl) {
            sim::Tick t0 = eq_.now();
            int target = rl->targetGpu;
            net_.fromHost(target).sendCtrl(
                kCtrlMsgBytes, [this, rl, t0, target]() {
                    obs::ProfScope prof(profiler(),
                                        obs::ProfBucket::Interconnect);
                    mmu::charge(*rl->req, attribEngine(),
                                obs::AttribBucket::Network,
                                static_cast<double>(eq_.now() - t0),
                                eq_.now());
                    gpus_[static_cast<std::size_t>(target)]
                        ->remoteLookupRequest(rl);
                });
        };
    } else {
        driver_ = std::make_unique<uvm::UvmDriver>(
            eq_, cfg_, central_, *engine_, ft_.get(), rng_);
        driver_->onResolved = [this](mmu::XlatPtr req) {
            int g = req->gpu;
            if (req->resolvedByRemote) {
                // Owner-push: reply arrived with the page (Fig. 10 I).
                gpus_[static_cast<std::size_t>(g)]->translationReturned(
                    req);
                return;
            }
            sim::Tick t0 = eq_.now();
            net_.fromHost(g).sendCtrl(kCtrlMsgBytes, [this, req, t0, g]() {
                obs::ProfScope prof(profiler(),
                                    obs::ProfBucket::Interconnect);
                mmu::charge(*req, attribEngine(),
                            obs::AttribBucket::Network,
                            static_cast<double>(eq_.now() - t0), eq_.now());
                gpus_[static_cast<std::size_t>(g)]->translationReturned(
                    req);
            });
        };
        driver_->forwardToGpu = [this](mmu::RemoteLookupPtr rl) {
            int target = rl->targetGpu;
            net_.fromHost(target).sendCtrl(kCtrlMsgBytes, [this, rl,
                                                       target]() {
                obs::ProfScope prof(profiler(),
                                    obs::ProfBucket::Interconnect);
                gpus_[static_cast<std::size_t>(target)]
                    ->remoteLookupRequest(rl);
            });
        };
    }

    for (int g = 0; g < cfg_.numGpus; ++g)
        wireGpu(g);

    placeInitialPages();

    std::uint64_t cu_seed = cfg_.seed * 0x1234567ULL + 99;
    for (int g = 0; g < cfg_.numGpus; ++g) {
        for (int cu = 0; cu < cfg_.cusPerGpu; ++cu) {
            cus_.push_back(std::make_unique<gpu::ComputeUnit>(
                eq_, cfg_, *gpus_[static_cast<std::size_t>(g)], cu,
                workload_, scheduler_, cu_seed));
        }
    }

    setupObservability();
}

void
MultiGpuSystem::setupObservability()
{
    obs_ = std::make_unique<obs::Observability>();
    obs_->spans.setCapacity(cfg_.obs.maxSpans);
    obs_->spans.setEnabled(cfg_.obs.spans);
    obs_->attribution.setEnabled(cfg_.obs.attribution);
    obs_->attribution.attachChecks(&obs_->checks);

    obs::MetricRegistry &reg = obs_->metrics;
    for (int g = 0; g < cfg_.numGpus; ++g) {
        gpu::Gpu &gpu = *gpus_[static_cast<std::size_t>(g)];
        gpu.attachSpans(&obs_->spans);
        gpu.attachAttribution(&obs_->attribution);
        gpu.attachProfiler(&obs_->profiler);
        gpu.registerMetrics(reg, sim::strfmt("gpu%d", g));
    }
    if (hostMmu_) {
        hostMmu_->attachSpans(&obs_->spans);
        hostMmu_->attachAttribution(&obs_->attribution);
        hostMmu_->attachProfiler(&obs_->profiler);
        hostMmu_->registerMetrics(reg, "host.mmu");
    }
    if (driver_) {
        driver_->attachSpans(&obs_->spans);
        driver_->attachAttribution(&obs_->attribution);
        driver_->attachProfiler(&obs_->profiler);
        driver_->registerMetrics(reg, "host.driver");
    }
    engine_->attachAttribution(&obs_->attribution);
    engine_->attachProfiler(&obs_->profiler);
    engine_->registerMetrics(reg, "host.migration");
    for (auto &cu : cus_)
        cu->attachProfiler(&obs_->profiler);
    if (ft_)
        ft_->registerMetrics(reg, "host.ft");
    net_.registerMetrics(reg);
    reg.registerGauge("sim.farFaults", [this] {
        return static_cast<double>(farFaults_);
    });
    reg.registerGauge("sim.tick",
                      [this] { return static_cast<double>(eq_.now()); });
    reg.registerGauge("sim.eventBacklog", [this] {
        return static_cast<double>(eq_.pending());
    });
    reg.registerGauge("sim.peakEventBacklog", [this] {
        return static_cast<double>(eq_.peakPending());
    });

    // Observability self-health: span loss and watchdog trips must be
    // visible in the same exports they guard.
    reg.registerGauge("obs.droppedSpans", [this] {
        return static_cast<double>(obs_->spans.dropped());
    });
    reg.registerGauge("obs.checks.violations", [this] {
        return static_cast<double>(obs_->checks.violations());
    });
    reg.registerGauge("obs.checks.checkedRequests", [this] {
        return static_cast<double>(obs_->checks.checkedRequests());
    });
    reg.registerGauge("obs.attrib.liveRequests", [this] {
        return static_cast<double>(obs_->attribution.liveRequests());
    });
    reg.registerGauge("obs.attrib.forwardSavedCycles", [this] {
        return obs_->attribution.table().forwardSavedCycles;
    });
    reg.registerGauge("obs.attrib.forwardWastedCycles", [this] {
        return obs_->attribution.table().forwardWastedCycles;
    });

    // Interval time series (Section IV-C dynamics): PW-queue pressure
    // and the forwarding trigger, filter load, translation-cache health.
    obs::IntervalSampler &sampler = obs_->sampler;
    sampler.attachProfiler(&obs_->profiler);
    // Host-side health: event backlog (deterministic) and events per
    // wall second since the previous sample (noisy by nature — it
    // rides the same rows but never feeds the deterministic metrics).
    sampler.addRegistryColumn(reg, "sim.eventBacklog");
    sampler.addColumn("host.eventsPerSec", [this] {
        return obs_->profiler.recentEventsPerSec();
    });
    if (hostMmu_) {
        sampler.addRegistryColumn(reg, "host.mmu.queueDepth");
        sampler.addRegistryColumn(reg, "host.mmu.queueAboveTrigger");
        sampler.addRegistryColumn(reg, "host.mmu.tlb.hitRate");
        sampler.addRegistryColumn(reg, "host.mmu.pwc.hitRate");
    }
    if (driver_) {
        sampler.addRegistryColumn(reg, "host.driver.walkQueueDepth");
        sampler.addRegistryColumn(reg, "host.driver.bufferedFaults");
        sampler.addRegistryColumn(reg, "host.driver.pwc.hitRate");
    }
    if (ft_) {
        sampler.addRegistryColumn(reg, "host.ft.loadFactor");
        sampler.addRegistryColumn(reg, "host.ft.kicks");
        sampler.addRegistryColumn(reg, "host.ft.observedFpRate");
    }
    sampler.addRegistryColumn(reg, "host.migration.busy.loadFactor");
    for (int g = 0; g < cfg_.numGpus; ++g) {
        std::string prefix = sim::strfmt("gpu%d", g);
        sampler.addRegistryColumn(reg, prefix + ".gmmu.queueDepth");
        sampler.addRegistryColumn(reg, prefix + ".l2tlb.hitRate");
        sampler.addRegistryColumn(reg, prefix + ".gmmu.pwc.hitRate");
        if (gpus_[static_cast<std::size_t>(g)]->prt()) {
            sampler.addRegistryColumn(reg, prefix + ".prt.loadFactor");
            sampler.addRegistryColumn(reg, prefix + ".prt.kicks");
            sampler.addRegistryColumn(reg,
                                      prefix + ".prt.observedFpRate");
        }
    }
}

void
MultiGpuSystem::wireGpu(int g)
{
    gpu::Gpu &gpu = *gpus_[static_cast<std::size_t>(g)];

    gpu.hooks.sendFault = [this](mmu::XlatPtr req) {
        sendFaultToHost(std::move(req));
    };

    gpu.hooks.onPageAccess = [this](mem::Vpn vpn, int from, bool write) {
        PageSharing &ps = sharing_[vpn];
        ps.gpuMask |= 1u << from;
        if (write)
            ++ps.writes;
        else
            ++ps.reads;
    };

    gpu.hooks.remoteAccessLatency = [this](mem::Vpn vpn,
                                           const tlb::TlbEntry &entry,
                                           int from) -> sim::Tick {
        engine_->noteRemoteAccess(vpn, from);
        sim::Tick hop = entry.owner == mem::kCpuDevice
                            ? cfg_.hostLink.latency
                            : net_.peerLatency(from, entry.owner);
        return 2 * hop + cfg_.memLatency;
    };

    if (cfg_.leastTlb.enabled) {
        gpu.hooks.probeSiblingL2 =
            [this](mem::Vpn vpn, int requester) -> const tlb::TlbEntry * {
            for (int other = 0; other < cfg_.numGpus; ++other) {
                if (other == requester)
                    continue;
                const tlb::TlbEntry *entry =
                    gpus_[static_cast<std::size_t>(other)]->l2Tlb().probe(
                        vpn);
                if (entry)
                    return entry;
            }
            return nullptr;
        };
    }

    gpu.gmmu().onRemoteDone = [this, g](mmu::RemoteLookupPtr rl) {
        // Notify the host side over this GPU's uplink; the direct
        // remote -> requester reply is folded into the host-side
        // resolution (see DESIGN.md, remote forwarding approximation).
        sim::Tick t0 = eq_.now();
        net_.toHost(g).sendCtrl(kCtrlMsgBytes, [this, rl, t0]() {
            obs::ProfScope prof(profiler(),
                                obs::ProfBucket::Interconnect);
            mmu::charge(*rl->req, attribEngine(),
                        obs::AttribBucket::Network,
                        static_cast<double>(eq_.now() - t0), eq_.now());
            if (hostMmu_)
                hostMmu_->remoteLookupDone(rl);
            else
                driver_->remoteLookupDone(rl);
        });
    };
}

void
MultiGpuSystem::sendFaultToHost(mmu::XlatPtr req)
{
    ++farFaults_;
    req->faulted = true;
    sim::Tick t0 = eq_.now();
    int g = req->gpu;
    net_.toHost(g).sendCtrl(kCtrlMsgBytes, [this, req, t0]() mutable {
        obs::ProfScope prof(profiler(),
                            obs::ProfBucket::Interconnect);
        mmu::charge(*req, attribEngine(), obs::AttribBucket::Network,
                    static_cast<double>(eq_.now() - t0), eq_.now());
        req->tHostArrive = eq_.now();
        if (hostMmu_)
            hostMmu_->handleFault(std::move(req));
        else
            driver_->handleFault(std::move(req));
    });
}

void
MultiGpuSystem::placeInitialPages()
{
    unsigned shift = cfg_.pageShift - mem::kSmallPageShift;

    // Collect the distinct system pages backing the footprint (several
    // 4 KB pages collapse into one 2 MB page under large pages).
    std::vector<mem::Vpn> pages;
    workload_.forEachPage([&](mem::Vpn vpn4k) {
        mem::Vpn vpn = vpn4k >> shift;
        if (pages.empty() || pages.back() != vpn)
            pages.push_back(vpn);
    });
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());

    for (mem::Vpn vpn : pages) {
        if (cfg_.oracle.noLocalFaults) {
            // Oracle: every page pre-mapped in every GPU (Fig. 4).
            central_.map(vpn,
                         mem::PageInfo{cpuFrames_.allocate(),
                                       mem::kCpuDevice, 0, true, false});
            for (auto &g : gpus_) {
                g->localPageTable().map(
                    vpn, mem::PageInfo{g->frames().allocate(), g->id(),
                                       1u << g->id(), true, false});
            }
            continue;
        }

        mem::DeviceId owner = mem::kCpuDevice;
        if (cfg_.prewarmPlacement) {
            owner = workload_.initialOwner(vpn << shift, cfg_.numGpus);
            if (owner >= cfg_.numGpus)
                owner = cfg_.numGpus - 1;
        }
        if (owner == mem::kCpuDevice) {
            central_.map(vpn,
                         mem::PageInfo{cpuFrames_.allocate(),
                                       mem::kCpuDevice, 0, true, false});
            continue;
        }
        gpu::Gpu &g = *gpus_[static_cast<std::size_t>(owner)];
        mem::Ppn ppn = g.frames().allocate();
        g.localPageTable().map(
            vpn, mem::PageInfo{ppn, owner, 1u << owner, true, false});
        central_.map(vpn, mem::PageInfo{ppn, owner, 1u << owner, true,
                                        false});
        if (auto *prt = g.prt())
            prt->pageArrived(vpn);
        if (ft_)
            ft_->pageArrived(vpn, owner);
    }
}

SimResults
MultiGpuSystem::run()
{
    if (ran_)
        sim::fatal("MultiGpuSystem::run() may only be called once");
    ran_ = true;

    obs_->profiler.configure(cfg_.obs.selfProfile,
                             cfg_.obs.profileStride);
#if TRANSFW_OBS
    if (obs_->profiler.enabled())
        eq_.setDispatchHook(&obs_->profiler);
#endif

    for (auto &cu : cus_)
        cu->start();
    obs_->sampler.start(eq_, cfg_.obs.sampleInterval);
    auto wall0 = std::chrono::steady_clock::now();
    std::uint64_t events = eq_.run();
    double wallSeconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - wall0)
            .count();
#if TRANSFW_OBS
    eq_.setDispatchHook(nullptr);
#endif

    if (scheduler_.remaining() != 0)
        sim::panic("simulation drained with unscheduled CTAs");
    SimResults res = collect();
    res.eventsExecuted = events;
    res.hostWallSeconds = wallSeconds;
    res.hostEventsPerSec =
        wallSeconds > 0.0 ? static_cast<double>(events) / wallSeconds
                          : 0.0;
    return res;
}

SimResults
MultiGpuSystem::collect()
{
    SimResults r;
    r.app = workload_.name();
    r.configSummary = cfg_.summary();
    r.execTime = eq_.now();
    r.farFaults = farFaults_;

    for (auto &cu : cus_) {
        r.instructions += cu->instructions();
        r.memOps += cu->memOps();
    }

    std::uint64_t l1_lookups = 0, l1_hits = 0;
    std::uint64_t l2_lookups = 0, l2_hits = 0;
    double queue_wait_sum = 0;
    std::uint64_t queue_wait_n = 0;

    for (auto &g : gpus_) {
        const gpu::Gpu::Stats &gs = g->stats();
        r.pageAccesses += gs.accesses;
        r.l2TlbMisses += gs.l2Misses;
        r.shortCircuits += gs.shortCircuits;
        r.xlat += g->xlatBreakdown();
        // Distributions merge by sum; divided by the miss count below.
        r.avgXlatLatency += gs.xlatLatency.sum();
        r.xlatLatencyHist.merge(gs.xlatHist);

        l2_lookups += g->l2Tlb().lookups();
        l2_hits += g->l2Tlb().hits();
        for (int cu = 0; cu < cfg_.cusPerGpu; ++cu) {
            l1_lookups += g->l1Tlb(cu).lookups();
            l1_hits += g->l1Tlb(cu).hits();
        }

        const mmu::Gmmu::Stats &ms = g->gmmu().stats();
        r.gmmuWalkMemAccesses += ms.memAccesses;
        r.gmmuRemoteMemAccesses += ms.remoteMemAccesses;
        queue_wait_sum += ms.queueWait.sum();
        queue_wait_n += ms.queueWait.count();

        const pwc::PageWalkCache &pwc = g->gmmu().pwc();
        for (std::size_t b = 0; b < pwc.hitLevels().buckets(); ++b)
            r.gmmuPwcLevels.record(b, pwc.hitLevels().bucket(b));

        if (auto *prt = g->prt()) {
            r.prtLookups += prt->lookups();
            r.prtHits += prt->hits();
            r.prtOverflows += prt->overflowEvictions();
        }
        r.gmmuQueueOverflows += ms.queueOverflows;
    }
    std::uint64_t xlat_count = r.l2TlbMisses;
    r.avgXlatLatency =
        xlat_count ? r.avgXlatLatency / static_cast<double>(xlat_count)
                   : 0.0;
    r.l1HitRate = l1_lookups ? static_cast<double>(l1_hits) / l1_lookups
                             : 0.0;
    r.l2HitRate = l2_lookups ? static_cast<double>(l2_hits) / l2_lookups
                             : 0.0;
    r.gmmuQueueWaitMean =
        queue_wait_n ? queue_wait_sum / static_cast<double>(queue_wait_n)
                     : 0.0;

    if (hostMmu_) {
        const mmu::HostMmu::Stats &hs = hostMmu_->stats();
        r.hostTlbHitRate = hostMmu_->tlb().hitRate();
        r.hostWalks = hs.walks;
        r.hostWalkMemAccesses = hs.memAccesses;
        r.forwards = hs.forwards;
        r.forwardSuccess = hs.forwardSuccess;
        r.forwardFail = hs.forwardFail;
        r.duplicateWalks = hs.duplicateWalks;
        r.removedFromQueue = hs.removedFromQueue;
        r.hostQueueWaitMean = hs.queueWait.mean();
        r.hostQueueOverflows = hs.queueOverflows;
        const pwc::PageWalkCache &pwc = hostMmu_->pwc();
        for (std::size_t b = 0; b < pwc.hitLevels().buckets(); ++b)
            r.hostPwcLevels.record(b, pwc.hitLevels().bucket(b));
        for (std::size_t b = 0; b < hs.remoteProbeLevels.buckets(); ++b)
            r.remoteProbeLevels.record(b, hs.remoteProbeLevels.bucket(b));
    }
    if (driver_) {
        const uvm::UvmDriver::Stats &ds = driver_->stats();
        r.driverBatches = ds.batches;
        r.driverAvgBatchSize = ds.batchSize.mean();
        r.hostWalks = ds.walks;
        r.forwards = ds.forwards;
        r.forwardSuccess = ds.forwardSuccess;
        r.forwardFail = ds.forwardFail;
        r.hostQueueWaitMean = 0.0;
    }
    if (ft_) {
        r.ftLookups = ft_->lookups();
        r.ftHits = ft_->hits();
        r.ftOverflows = ft_->overflowEvictions();
    }

    const uvm::MigrationEngine::Stats &es = engine_->stats();
    r.migrations = es.migrations;
    r.replications = es.replications;
    r.writeInvalidations = es.writeInvalidations;
    r.remoteMappings = es.remoteMappings;
    r.counterMigrations = es.counterMigrations;
    r.bytesMoved = es.bytesMoved;

    for (const auto &[vpn, ps] : sharing_) {
        int sharers = std::popcount(ps.gpuMask);
        r.sharingAccesses.record(static_cast<std::size_t>(sharers),
                                 ps.reads + ps.writes);
        if (sharers >= 2) {
            r.sharedPageReads += ps.reads;
            r.sharedPageWrites += ps.writes;
        }
    }

    // Latency attribution + watchdog verdicts. finalize() counts races
    // still open after the queue drained; the span-nesting sweep runs
    // here because it needs the complete trace.
    obs_->attribution.finalize();
    if (cfg_.obs.spans)
        obs_->checks.verifySpanNesting(obs_->spans);
    r.attribution = obs_->attribution.table();
    r.obsCheckViolations = obs_->checks.violations();
    r.obsCheckedRequests = obs_->checks.checkedRequests();
    r.droppedSpans = obs_->spans.dropped();
    r.peakEventBacklog = eq_.peakPending();
    r.hostProfile = obs_->profiler.snapshot();
    return r;
}

} // namespace transfw::sys
