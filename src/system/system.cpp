#include "system/system.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "sim/lane_executor.hpp"
#include "sim/logging.hpp"
#include "sim/trace.hpp"

namespace transfw::sys {

namespace {

/**
 * Decompose a measured host-star control traversal (total = deliver
 * tick - send tick) into the edge-tagged hop chargeHop() wants: the
 * ctrl channel's fixed 2-cycle token, the link's propagation latency,
 * and whatever is left as wait (mailbox/window slack — 0 on the direct
 * paths). Node -1 is the host side of the star.
 */
obs::AttribHop
starHop(int from, int to, sim::Tick latency, double total)
{
    obs::AttribHop hop;
    hop.from = static_cast<std::int16_t>(from);
    hop.to = static_cast<std::int16_t>(to);
    hop.ser = 2.0;
    hop.prop = static_cast<double>(latency);
    hop.wait = total - hop.ser - hop.prop;
    return hop;
}

} // namespace

MultiGpuSystem::MultiGpuSystem(const cfg::SystemConfig &config,
                               const wl::Workload &workload)
    : cfg_(config), workload_(workload), rng_(config.seed),
      central_(config.geometry()),
      cpuFrames_(256ULL << 30, config.pageShift),
      net_(hostEq_, config.numGpus, config.hostLink, config.peerLink,
           config.peerTopology, config.meshCols, config.switchRadix),
      scheduler_(workload, config.numGpus)
{
    cfg_.validate();

    // Per-lane conservative lookahead: the only cross-lane channel a
    // GPU lane *originates* traffic on is its own uplink (far faults,
    // remote-done notifications, access-counter mail) — peer links and
    // downlinks are driven by the host lane, which runs one tick at a
    // time and never inside a GPU window. So lane g's window is its
    // uplink's control-message lower bound: 2 ticks of serialization
    // token plus propagation. A message posted at tick t >= next_g
    // arrives at t + laneWindows_[g] >= the window bound, i.e. beyond
    // every tick any lane executes this window — which is what keeps
    // the interleave exact. Notably the peer-link latency does NOT
    // clamp the window (it did in the first lane kernel), so cheap
    // NVLink-class peers no longer shrink every window to their
    // latency.
    laneWindows_.resize(static_cast<std::size_t>(cfg_.numGpus));
    for (int g = 0; g < cfg_.numGpus; ++g)
        laneWindows_[static_cast<std::size_t>(g)] =
            2 + net_.toHost(g).latency();
    window_ = *std::min_element(laneWindows_.begin(),
                                laneWindows_.end());

    if (cfg_.transFw.enabled)
        ft_ = std::make_unique<core::FtCluster>(cfg_.transFw,
                                                cfg_.hostShards);

    for (int g = 0; g < cfg_.numGpus; ++g) {
        gpuQs_.push_back(std::make_unique<sim::EventQueue>());
        gpuRngs_.push_back(std::make_unique<sim::Rng>(
            cfg_.seed * 0x9E3779B97F4A7C15ULL +
            2ULL * static_cast<std::uint64_t>(g) + 1));
        laneProfilers_.push_back(std::make_unique<obs::SelfProfiler>());
    }
    mail_.resize(static_cast<std::size_t>(cfg_.numGpus));
    relays_.resize(static_cast<std::size_t>(cfg_.numGpus));
    sharingShards_.resize(static_cast<std::size_t>(cfg_.numGpus));
    farFaultShards_.assign(static_cast<std::size_t>(cfg_.numGpus),
                           LaneCounter{});

    for (int g = 0; g < cfg_.numGpus; ++g)
        gpus_.push_back(std::make_unique<gpu::Gpu>(
            *gpuQs_[static_cast<std::size_t>(g)], cfg_, g,
            *gpuRngs_[static_cast<std::size_t>(g)]));

    std::vector<mmu::GpuIface *> ifaces;
    for (auto &g : gpus_)
        ifaces.push_back(g.get());

    engine_ = std::make_unique<uvm::MigrationEngine>(
        hostEq_, cfg_, central_, ifaces, net_, ft_.get());

    if (cfg_.faultMode == cfg::FaultMode::HostMmu) {
        hostMmu_ = std::make_unique<mmu::HostMmuCluster>(
            hostEq_, cfg_, central_, *engine_, ft_.get(), ifaces, rng_);
        hostMmu_->onResolved = [this](mmu::XlatPtr req) {
            int g = req->gpu;
            if (req->resolvedByRemote) {
                // The owner GPU replied to the requester directly along
                // with the pushed page (Fig. 10, path I); no extra
                // host -> GPU reply hop. Hand the completion to lane g
                // at the current tick — its window has not run yet.
                gpuQs_[static_cast<std::size_t>(g)]->scheduleAt(
                    hostEq_.now(), [this, req]() {
                        gpus_[static_cast<std::size_t>(req->gpu)]
                            ->translationReturned(req);
                    });
                return;
            }
            sim::Tick t0 = hostEq_.now();
            net_.fromHost(g).sendCtrl(kCtrlMsgBytes, [this, req, t0, g]() {
                // Delivered on GPU lane g.
                sim::Tick now =
                    gpuQs_[static_cast<std::size_t>(g)]->now();
                obs::ProfScope prof(laneProfiler(g),
                                    obs::ProfBucket::Interconnect);
                mmu::chargeHop(*req, laneAttrib(g),
                               obs::AttribBucket::Network,
                               starHop(-1, g,
                                       net_.fromHost(g).latency(),
                                       static_cast<double>(now - t0)),
                               now);
                gpus_[static_cast<std::size_t>(g)]->translationReturned(
                    req);
            });
        };
        hostMmu_->forwardToGpu = [this](mmu::RemoteLookupPtr rl) {
            sim::Tick t0 = hostEq_.now();
            int target = rl->targetGpu;
            net_.fromHost(target).sendCtrl(
                kCtrlMsgBytes, [this, rl, t0, target]() {
                    // Delivered on GPU lane `target`.
                    sim::Tick now =
                        gpuQs_[static_cast<std::size_t>(target)]->now();
                    obs::ProfScope prof(laneProfiler(target),
                                        obs::ProfBucket::Interconnect);
                    mmu::chargeHop(
                        *rl->req, laneAttrib(target),
                        obs::AttribBucket::Network,
                        starHop(-1, target,
                                net_.fromHost(target).latency(),
                                static_cast<double>(now - t0)),
                        now);
                    gpus_[static_cast<std::size_t>(target)]
                        ->remoteLookupRequest(rl);
                });
        };
    } else {
        driver_ = std::make_unique<uvm::UvmDriver>(
            hostEq_, cfg_, central_, *engine_, ft_.get(), rng_);
        driver_->onResolved = [this](mmu::XlatPtr req) {
            int g = req->gpu;
            if (req->resolvedByRemote) {
                // Owner-push: reply arrived with the page (Fig. 10 I).
                gpuQs_[static_cast<std::size_t>(g)]->scheduleAt(
                    hostEq_.now(), [this, req]() {
                        gpus_[static_cast<std::size_t>(req->gpu)]
                            ->translationReturned(req);
                    });
                return;
            }
            sim::Tick t0 = hostEq_.now();
            net_.fromHost(g).sendCtrl(kCtrlMsgBytes, [this, req, t0, g]() {
                sim::Tick now =
                    gpuQs_[static_cast<std::size_t>(g)]->now();
                obs::ProfScope prof(laneProfiler(g),
                                    obs::ProfBucket::Interconnect);
                mmu::chargeHop(*req, laneAttrib(g),
                               obs::AttribBucket::Network,
                               starHop(-1, g,
                                       net_.fromHost(g).latency(),
                                       static_cast<double>(now - t0)),
                               now);
                gpus_[static_cast<std::size_t>(g)]->translationReturned(
                    req);
            });
        };
        driver_->forwardToGpu = [this](mmu::RemoteLookupPtr rl) {
            int target = rl->targetGpu;
            net_.fromHost(target).sendCtrl(kCtrlMsgBytes, [this, rl,
                                                       target]() {
                obs::ProfScope prof(laneProfiler(target),
                                    obs::ProfBucket::Interconnect);
                gpus_[static_cast<std::size_t>(target)]
                    ->remoteLookupRequest(rl);
            });
        };
    }

    for (int g = 0; g < cfg_.numGpus; ++g)
        wireGpu(g);
    wireLanes();

    placeInitialPages();

    std::uint64_t cu_seed = cfg_.seed * 0x1234567ULL + 99;
    for (int g = 0; g < cfg_.numGpus; ++g) {
        for (int cu = 0; cu < cfg_.cusPerGpu; ++cu) {
            cus_.push_back(std::make_unique<gpu::ComputeUnit>(
                *gpuQs_[static_cast<std::size_t>(g)], cfg_,
                *gpus_[static_cast<std::size_t>(g)], cu, workload_,
                scheduler_, cu_seed));
        }
    }

    setupObservability();
}

void
MultiGpuSystem::wireLanes()
{
    // Each link belongs to the one lane that calls its send methods:
    // uplinks to their GPU's lane, downlinks and peer links to the
    // host lane (replies, forwards, migration traffic).
    std::vector<sim::EventQueue *> lanes;
    for (auto &q : gpuQs_)
        lanes.push_back(q.get());
    net_.bindLaneQueues(lanes, hostEq_);

    for (int g = 0; g < cfg_.numGpus; ++g) {
        // GPU -> host control traffic crosses a lane boundary into a
        // queue another thread may be executing; batch it in this
        // lane's mailbox (an InlineVec append, no type-erased Deliver
        // hop) and flush once at the next window barrier.
        net_.toHost(g).setCtrlMailbox(&mail_[static_cast<std::size_t>(g)]);
        // Host -> GPU control traffic is sent while the host phase runs
        // alone and always arrives beyond every tick the receiving
        // (parked) lane has executed, so it lands directly in that
        // lane's queue.
        net_.fromHost(g).setCtrlTarget(
            gpuQs_[static_cast<std::size_t>(g)].get());
    }
}

void
MultiGpuSystem::setupObservability()
{
    obs_ = std::make_unique<obs::Observability>();
    obs_->spans.setCapacity(cfg_.obs.maxSpans);
    obs_->spans.setEnabled(cfg_.obs.spans);
    obs_->attribution.setEnabled(cfg_.obs.attribution);
    obs_->attribution.attachChecks(&obs_->checks);

    obs::MetricRegistry &reg = obs_->metrics;
    for (int g = 0; g < cfg_.numGpus; ++g) {
        gpu::Gpu &gpu = *gpus_[static_cast<std::size_t>(g)];
        gpu.attachSpans(&obs_->spans);
        // GPU-lane components report attribution into their lane's
        // relay and host time into their lane's profiler; the barrier
        // and collect() merge both deterministically.
        gpu.attachAttribution(laneAttrib(g));
        gpu.attachProfiler(laneProfiler(g));
        gpu.registerMetrics(reg, sim::strfmt("gpu%d", g));
    }
    if (hostMmu_) {
        hostMmu_->attachSpans(&obs_->spans);
        hostMmu_->attachAttribution(&obs_->attribution);
        hostMmu_->attachProfiler(&obs_->profiler);
        hostMmu_->registerMetrics(reg, "host.mmu");
    }
    if (driver_) {
        driver_->attachSpans(&obs_->spans);
        driver_->attachAttribution(&obs_->attribution);
        driver_->attachProfiler(&obs_->profiler);
        driver_->registerMetrics(reg, "host.driver");
    }
    engine_->attachAttribution(&obs_->attribution);
    engine_->attachProfiler(&obs_->profiler);
    engine_->registerMetrics(reg, "host.migration");
    for (std::size_t i = 0; i < cus_.size(); ++i) {
        int g = static_cast<int>(i) / cfg_.cusPerGpu;
        cus_[i]->attachProfiler(laneProfiler(g));
    }
    if (ft_)
        ft_->registerMetrics(reg, "host.ft");
    net_.registerMetrics(reg);
    reg.registerGauge("sim.farFaults", [this] {
        std::uint64_t total = 0;
        for (const LaneCounter &shard : farFaultShards_)
            total += shard.value;
        return static_cast<double>(total);
    });
    reg.registerGauge("sim.tick", [this] {
        sim::Tick t = hostEq_.now();
        for (auto &q : gpuQs_)
            t = std::max(t, q->now());
        return static_cast<double>(t);
    });
    reg.registerGauge("sim.eventBacklog", [this] {
        std::size_t pending = hostEq_.pending();
        for (auto &q : gpuQs_)
            pending += q->pending();
        return static_cast<double>(pending);
    });
    reg.registerGauge("sim.peakEventBacklog", [this] {
        std::size_t peak = hostEq_.peakPending();
        for (auto &q : gpuQs_)
            peak += q->peakPending();
        return static_cast<double>(peak);
    });

    // Observability self-health: span loss and watchdog trips must be
    // visible in the same exports they guard.
    reg.registerGauge("obs.droppedSpans", [this] {
        return static_cast<double>(obs_->spans.dropped());
    });
    reg.registerGauge("obs.checks.violations", [this] {
        return static_cast<double>(obs_->checks.violations());
    });
    reg.registerGauge("obs.checks.checkedRequests", [this] {
        return static_cast<double>(obs_->checks.checkedRequests());
    });
    reg.registerGauge("obs.attrib.liveRequests", [this] {
        return static_cast<double>(obs_->attribution.liveRequests());
    });
    reg.registerGauge("obs.attrib.forwardSavedCycles", [this] {
        return obs_->attribution.table().forwardSavedCycles;
    });
    reg.registerGauge("obs.attrib.forwardWastedCycles", [this] {
        return obs_->attribution.table().forwardWastedCycles;
    });

    // Interval time series (Section IV-C dynamics): PW-queue pressure
    // and the forwarding trigger, filter load, translation-cache health.
    obs::IntervalSampler &sampler = obs_->sampler;
    sampler.attachProfiler(&obs_->profiler);
    // Host-side health: event backlog (deterministic) and events per
    // wall second since the previous sample (noisy by nature — it
    // rides the same rows but never feeds the deterministic metrics).
    sampler.addRegistryColumn(reg, "sim.eventBacklog");
    sampler.addColumn("host.eventsPerSec", [this] {
        return obs_->profiler.recentEventsPerSec();
    });
    if (hostMmu_) {
        sampler.addRegistryColumn(reg, "host.mmu.queueDepth");
        sampler.addRegistryColumn(reg, "host.mmu.queueAboveTrigger");
        sampler.addRegistryColumn(reg, "host.mmu.tlb.hitRate");
        sampler.addRegistryColumn(reg, "host.mmu.pwc.hitRate");
    }
    if (driver_) {
        sampler.addRegistryColumn(reg, "host.driver.walkQueueDepth");
        sampler.addRegistryColumn(reg, "host.driver.bufferedFaults");
        sampler.addRegistryColumn(reg, "host.driver.pwc.hitRate");
    }
    if (ft_) {
        sampler.addRegistryColumn(reg, "host.ft.loadFactor");
        sampler.addRegistryColumn(reg, "host.ft.kicks");
        sampler.addRegistryColumn(reg, "host.ft.observedFpRate");
    }
    sampler.addRegistryColumn(reg, "host.migration.busy.loadFactor");
    for (int g = 0; g < cfg_.numGpus; ++g) {
        std::string prefix = sim::strfmt("gpu%d", g);
        sampler.addRegistryColumn(reg, prefix + ".gmmu.queueDepth");
        sampler.addRegistryColumn(reg, prefix + ".l2tlb.hitRate");
        sampler.addRegistryColumn(reg, prefix + ".gmmu.pwc.hitRate");
        if (gpus_[static_cast<std::size_t>(g)]->prt()) {
            sampler.addRegistryColumn(reg, prefix + ".prt.loadFactor");
            sampler.addRegistryColumn(reg, prefix + ".prt.kicks");
            sampler.addRegistryColumn(reg,
                                      prefix + ".prt.observedFpRate");
        }
    }
#if TRANSFW_OBS
    // Fabric heat as counter tracks: every fabric edge's instantaneous
    // queue depth and utilization ride the same deterministic sample
    // grid as the columns above (the trace viewer renders each as its
    // own counter track). The host-star legs are skipped — their
    // pressure already shows up in host.mmu.queueDepth, and a 64-GPU
    // pod has 128 of them.
    net_.forEachLink([&](const ic::Link &link, bool is_fabric) {
        if (!is_fabric)
            return;
        sampler.addRegistryColumn(reg, link.name() + ".queueDepth");
        sampler.addRegistryColumn(reg, link.name() + ".utilization");
    });
#endif
}

void
MultiGpuSystem::wireGpu(int g)
{
    gpu::Gpu &gpu = *gpus_[static_cast<std::size_t>(g)];

    gpu.hooks.sendFault = [this](mmu::XlatPtr req) {
        sendFaultToHost(std::move(req));
    };

    gpu.hooks.onPageAccess = [this, g](mem::Vpn vpn, int from,
                                       bool write) {
        // Runs on GPU lane g: update this lane's shard only.
        PageSharing &ps =
            sharingShards_[static_cast<std::size_t>(g)].map[vpn];
        ps.gpuMask |= std::uint64_t{1} << from;
        if (write)
            ++ps.writes;
        else
            ++ps.reads;
    };

    gpu.hooks.remoteAccessLatency = [this, g](mem::Vpn vpn,
                                              const tlb::TlbEntry &entry,
                                              int from) -> sim::Tick {
        // The access-counter bump mutates host-lane state (the
        // migration engine); ship it through the mailbox with the
        // same GPU -> host control latency every other uplink message
        // pays (exactly laneWindows_[g], so it always lands beyond
        // the window that posted it).
        mail_[static_cast<std::size_t>(g)].post(
            gpuQs_[static_cast<std::size_t>(g)]->now() +
                laneWindows_[static_cast<std::size_t>(g)],
            [this, vpn, from]() {
                engine_->noteRemoteAccess(vpn, from);
            });
        sim::Tick hop = entry.owner == mem::kCpuDevice
                            ? cfg_.hostLink.latency
                            : net_.peerLatency(from, entry.owner);
        return 2 * hop + cfg_.memLatency;
    };

    if (cfg_.leastTlb.enabled) {
        gpu.hooks.probeSiblingL2 =
            [this](mem::Vpn vpn, int requester) -> const tlb::TlbEntry * {
            for (int other = 0; other < cfg_.numGpus; ++other) {
                if (other == requester)
                    continue;
                const tlb::TlbEntry *entry =
                    gpus_[static_cast<std::size_t>(other)]->l2Tlb().probe(
                        vpn);
                if (entry)
                    return entry;
            }
            return nullptr;
        };
    }

    gpu.gmmu().onRemoteDone = [this, g](mmu::RemoteLookupPtr rl) {
        // Notify the host side over this GPU's uplink; the direct
        // remote -> requester reply is folded into the host-side
        // resolution (see DESIGN.md, remote forwarding approximation).
        sim::Tick t0 = gpuQs_[static_cast<std::size_t>(g)]->now();
        net_.toHost(g).sendCtrl(kCtrlMsgBytes, [this, rl, t0, g]() {
            // Delivered on the host lane after the mailbox drain.
            obs::ProfScope prof(profiler(),
                                obs::ProfBucket::Interconnect);
            mmu::chargeHop(
                *rl->req, attribEngine(), obs::AttribBucket::Network,
                starHop(g, -1, net_.toHost(g).latency(),
                        static_cast<double>(hostEq_.now() - t0)),
                hostEq_.now());
            if (hostMmu_)
                hostMmu_->remoteLookupDone(rl);
            else
                driver_->remoteLookupDone(rl);
        });
    };
}

void
MultiGpuSystem::sendFaultToHost(mmu::XlatPtr req)
{
    int g = req->gpu;
    ++farFaultShards_[static_cast<std::size_t>(g)].value;
    req->faulted = true;
    sim::Tick t0 = gpuQs_[static_cast<std::size_t>(g)]->now();
    net_.toHost(g).sendCtrl(kCtrlMsgBytes, [this, req, t0]() mutable {
        // Delivered on the host lane after the mailbox drain.
        obs::ProfScope prof(profiler(),
                            obs::ProfBucket::Interconnect);
        mmu::chargeHop(
            *req, attribEngine(), obs::AttribBucket::Network,
            starHop(req->gpu, -1, net_.toHost(req->gpu).latency(),
                    static_cast<double>(hostEq_.now() - t0)),
            hostEq_.now());
        req->tHostArrive = hostEq_.now();
        if (hostMmu_)
            hostMmu_->handleFault(std::move(req));
        else
            driver_->handleFault(std::move(req));
    });
}

void
MultiGpuSystem::placeInitialPages()
{
    unsigned shift = cfg_.pageShift - mem::kSmallPageShift;

    // Collect the distinct system pages backing the footprint (several
    // 4 KB pages collapse into one 2 MB page under large pages).
    std::vector<mem::Vpn> pages;
    workload_.forEachPage([&](mem::Vpn vpn4k) {
        mem::Vpn vpn = vpn4k >> shift;
        if (pages.empty() || pages.back() != vpn)
            pages.push_back(vpn);
    });
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());

    for (mem::Vpn vpn : pages) {
        if (cfg_.oracle.noLocalFaults) {
            // Oracle: every page pre-mapped in every GPU (Fig. 4).
            central_.map(vpn,
                         mem::PageInfo{cpuFrames_.allocate(),
                                       mem::kCpuDevice, 0, true, false});
            for (auto &g : gpus_) {
                g->localPageTable().map(
                    vpn, mem::PageInfo{g->frames().allocate(), g->id(),
                                       std::uint64_t{1} << g->id(), true, false});
            }
            continue;
        }

        mem::DeviceId owner = mem::kCpuDevice;
        if (cfg_.prewarmPlacement) {
            owner = workload_.initialOwner(vpn << shift, cfg_.numGpus);
            if (owner >= cfg_.numGpus)
                owner = cfg_.numGpus - 1;
        }
        if (owner == mem::kCpuDevice) {
            central_.map(vpn,
                         mem::PageInfo{cpuFrames_.allocate(),
                                       mem::kCpuDevice, 0, true, false});
            continue;
        }
        gpu::Gpu &g = *gpus_[static_cast<std::size_t>(owner)];
        mem::Ppn ppn = g.frames().allocate();
        g.localPageTable().map(
            vpn, mem::PageInfo{ppn, owner, std::uint64_t{1} << owner, true, false});
        central_.map(vpn, mem::PageInfo{ppn, owner, std::uint64_t{1} << owner, true,
                                        false});
        if (auto *prt = g.prt())
            prt->pageArrived(vpn);
        if (ft_)
            ft_->pageArrived(vpn, owner);
    }
}

unsigned
MultiGpuSystem::laneWorkers() const
{
    unsigned workers = 1;
    if (cfg_.sim.lanes > 0)
        workers = static_cast<unsigned>(
            std::min(cfg_.sim.lanes, cfg_.numGpus));
    // These features reach across lane boundaries from GPU lanes
    // (sibling-L2 probes, the shared span recorder, the trace sink), so
    // their windows must run on one thread — still in deterministic
    // lane-index order, so the results do not change, only the speedup.
    if (cfg_.leastTlb.enabled || cfg_.obs.spans ||
        sim::trace::anyEnabled())
        workers = 1;
    return workers;
}

void
MultiGpuSystem::drainMail()
{
    // Box-by-box in lane order: the host queue orders same-tick events
    // by insertion sequence, so this realizes the canonical (arrival
    // tick, source lane, post order) merge without an explicit sort.
    // Skipping empty boxes changes nothing in that order and keeps a
    // quiet lane's barrier cost at one branch.
    for (sim::Mailbox &box : mail_) {
        if (!box.empty())
            box.drainTo(hostEq_);
    }
}

std::vector<std::vector<int>>
MultiGpuSystem::buildLaneGroups(unsigned workers) const
{
    // One static group per worker, built once per run: contiguous
    // blocks of the interconnect's affinity order, balanced to within
    // one GPU. Static assignment keeps each worker walking the same
    // compact slice of per-GPU state every window (warm caches), and
    // determinism is trivial — group contents depend only on the
    // config, and lanes within a window are independent.
    const std::vector<int> order = net_.laneAffinityOrder();
    const std::size_t count = std::max<std::size_t>(
        1, std::min<std::size_t>(workers, order.size()));
    std::vector<std::vector<int>> groups(count);
    for (std::size_t i = 0; i < order.size(); ++i)
        groups[i * count / order.size()].push_back(order[i]);
    return groups;
}

std::uint64_t
MultiGpuSystem::runLanes()
{
    const std::size_t n = static_cast<std::size_t>(cfg_.numGpus);
    const unsigned workers = laneWorkers();
    const std::vector<std::vector<int>> groups =
        buildLaneGroups(workers);

    // Per-lane hot scheduling state, one cache line per lane: during a
    // window each worker reads and writes only its own lanes' entries,
    // so the scheduler itself generates zero coherence traffic.
    struct alignas(sim::kCacheLine) LaneState
    {
        sim::Tick next = sim::kMaxTick; ///< earliest runnable tick
        std::size_t seen = 0;    ///< strongPending at the last refresh
        std::uint64_t events = 0; ///< events executed on this lane
    };
    std::vector<LaneState> lanes(n);

    std::uint64_t hostEvents = 0;

    obs::IntervalSampler &sampler = obs_->sampler;
    const sim::Tick interval =
        sampler.columns() ? cfg_.obs.sampleInterval : 0;
    sim::Tick nextSample = interval;

    // Adaptive alternating schedule. The host lane writes GPU state
    // with zero modeled latency (page-table maps, TLB shootdowns, PRT
    // arrivals), so exactness requires strict tick order between the
    // host and every GPU lane: the host runs one tick at a time, and
    // only while it is not ahead of any pending GPU event (host first
    // on ties); GPU lanes run in parallel across host-free stretches,
    // bounded by the host's next event and by the *adaptive* lookahead
    // min_g(next_g + laneWindows_[g]) — any message lane g posts does
    // so at a tick >= next_g and arrives laneWindows_[g] later, i.e.
    // at or beyond that bound, so neither side ever executes a tick
    // the other has passed. The schedule is a pure function of event
    // ticks, independent of the worker count.
    sim::LaneExecutor &exec = sim::LaneExecutor::instance();
    obs::SelfProfiler *hostProf = profiler();

    // A lane's entry is refreshed by its own worker after its window,
    // and by the host loop when a host tick schedules onto the (then
    // parked) lane — detected by the O(1) strong-event count moving.
    auto refreshLane = [&](std::size_t g) {
        LaneState &st = lanes[g];
        st.seen = gpuQs_[g]->strongPending();
        st.next = st.seen ? gpuQs_[g]->nextTick() : sim::kMaxTick;
    };
    for (std::size_t g = 0; g < n; ++g)
        refreshLane(g);

    // The per-window group job, hoisted so the loop below does not
    // rebuild a std::function (and re-copy its captures) per window;
    // `winEnd` carries the current window bound into it. Lanes with
    // nothing runnable before the bound skip their queue entirely —
    // a quiet lane costs one cache-line read per window.
    sim::Tick winEnd = 0;
    const std::function<void(std::size_t)> groupJob =
        [&](std::size_t gi) {
            for (int lane : groups[gi]) {
                const std::size_t g = static_cast<std::size_t>(lane);
                LaneState &st = lanes[g];
                if (st.next >= winEnd)
                    continue;
                st.events += gpuQs_[g]->runWindow(winEnd);
                st.seen = gpuQs_[g]->strongPending();
                st.next =
                    st.seen ? gpuQs_[g]->nextTick() : sim::kMaxTick;
            }
        };

    for (;;) {
        // Termination: no strong events anywhere and no cross-lane
        // message pending (the mailboxes are flushed at each window
        // barrier onto the host queue, where they count as strong
        // events; between windows they stay empty).
        const sim::Tick hostNext = hostEq_.strongPending()
                                       ? hostEq_.nextTick()
                                       : sim::kMaxTick;
        // Fold the per-lane state: the earliest GPU event anywhere and
        // the adaptive window bound. Staggered lanes stretch the
        // bound — a lane parked far in the future contributes its own
        // (large) next + window term instead of clamping everyone to
        // the global minimum window.
        sim::Tick gpuNext = sim::kMaxTick;
        sim::Tick laneBound = sim::kMaxTick;
        for (std::size_t g = 0; g < n; ++g) {
            const sim::Tick next = lanes[g].next;
            if (next == sim::kMaxTick)
                continue;
            gpuNext = std::min(gpuNext, next);
            laneBound = std::min(laneBound, next + laneWindows_[g]);
        }
        if (hostNext == sim::kMaxTick && gpuNext == sim::kMaxTick)
            break;

        // Interval rows ride the deterministic sample grid: a row for
        // tick S is recorded once every event below S has executed.
        if (interval) {
            const sim::Tick next = std::min(hostNext, gpuNext);
            for (; nextSample < next; nextSample += interval)
                sampler.recordRow(nextSample);
        }

        if (hostNext <= gpuNext) {
            // Serial host stretch: exactly one tick, so a same-tick
            // handoff to a GPU lane (remote-resolution replies) can
            // never be overtaken by a later host write. Host events at
            // this tick may touch any state — every GPU lane is parked
            // at or before hostNext.
            hostEvents += hostEq_.runWindow(hostNext + 1);
            for (std::size_t g = 0; g < n; ++g)
                if (gpuQs_[g]->strongPending() != lanes[g].seen)
                    refreshLane(g);
            continue;
        }

        // Parallel GPU window: the range below the bound is host-
        // event-free and too short for any message posted inside it to
        // demand delivery inside it, so each lane sees exactly the
        // state a serial tick-ordered run would see.
        winEnd = std::min(hostNext, laneBound);

        // Sample this window's synchronization cost (barrier wait +
        // drain bookkeeping) at the profiler's 1-in-stride discipline.
        const bool sampleSync = hostProf && hostProf->syncSampleDue();
        std::uint64_t syncNs = 0;

        // Windows with at most one busy lane — the common shape in
        // drain phases and small configs — run inline: same per-lane
        // effects, no handoff or wakeup cost.
        std::size_t busy = 0;
        for (std::size_t g = 0; g < n && busy < 2; ++g)
            if (lanes[g].next < winEnd)
                ++busy;
        if (workers <= 1 || busy <= 1) {
            for (std::size_t gi = 0; gi < groups.size(); ++gi)
                groupJob(gi);
        } else {
            exec.forEach(groups.size(), workers, groupJob,
                         sampleSync ? &syncNs : nullptr);
        }

        // Barrier: replay each lane's attribution reports into the
        // shared engine in lane-index order, fixing the floating-point
        // summation order independently of the worker count, then
        // flush the mailboxes the same way. Empty relays/boxes are
        // skipped — that changes nothing in the replay/merge order.
        std::chrono::steady_clock::time_point drain0;
        if (sampleSync)
            drain0 = std::chrono::steady_clock::now();
        for (obs::AttribRelay &relay : relays_)
            if (!relay.empty())
                relay.drainTo(obs_->attribution);
        drainMail();
        if (sampleSync) {
            syncNs += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - drain0)
                    .count());
            hostProf->chargeSync(syncNs);
        }
    }

    std::uint64_t total = hostEvents;
    hostEq_.discardPending();
    for (std::size_t g = 0; g < n; ++g) {
        total += lanes[g].events;
        gpuQs_[g]->discardPending();
    }
    return total;
}

SimResults
MultiGpuSystem::run()
{
    if (ran_)
        sim::fatal("MultiGpuSystem::run() may only be called once");
    ran_ = true;

    obs_->profiler.configure(cfg_.obs.selfProfile,
                             cfg_.obs.profileStride);
    for (auto &prof : laneProfilers_)
        prof->configure(cfg_.obs.selfProfile, cfg_.obs.profileStride);
#if TRANSFW_OBS
    if (obs_->profiler.enabled()) {
        hostEq_.setDispatchHook(&obs_->profiler);
        for (int g = 0; g < cfg_.numGpus; ++g)
            gpuQs_[static_cast<std::size_t>(g)]->setDispatchHook(
                laneProfiler(g));
    }
#endif

    for (auto &cu : cus_)
        cu->start();
    auto wall0 = std::chrono::steady_clock::now();
    std::uint64_t events = runLanes();
    double wallSeconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - wall0)
            .count();
#if TRANSFW_OBS
    hostEq_.setDispatchHook(nullptr);
    for (auto &q : gpuQs_)
        q->setDispatchHook(nullptr);
#endif

    if (scheduler_.remaining() != 0)
        sim::panic("simulation drained with unscheduled CTAs");
    SimResults res = collect();
    res.eventsExecuted = events;
    res.hostWallSeconds = wallSeconds;
    res.hostEventsPerSec =
        wallSeconds > 0.0 ? static_cast<double>(events) / wallSeconds
                          : 0.0;
    return res;
}

SimResults
MultiGpuSystem::collect()
{
    SimResults r;
    r.app = workload_.name();
    r.configSummary = cfg_.summary();
    r.execTime = hostEq_.now();
    for (auto &q : gpuQs_)
        r.execTime = std::max(r.execTime, q->now());
    for (const LaneCounter &shard : farFaultShards_)
        r.farFaults += shard.value;

    for (auto &cu : cus_) {
        r.instructions += cu->instructions();
        r.memOps += cu->memOps();
    }

    std::uint64_t l1_lookups = 0, l1_hits = 0;
    std::uint64_t l2_lookups = 0, l2_hits = 0;
    double queue_wait_sum = 0;
    std::uint64_t queue_wait_n = 0;

    for (auto &g : gpus_) {
        const gpu::Gpu::Stats &gs = g->stats();
        r.pageAccesses += gs.accesses;
        r.l2TlbMisses += gs.l2Misses;
        r.shortCircuits += gs.shortCircuits;
        r.xlat += g->xlatBreakdown();
        // Distributions merge by sum; divided by the miss count below.
        r.avgXlatLatency += gs.xlatLatency.sum();
        r.xlatLatencyHist.merge(gs.xlatHist);

        l2_lookups += g->l2Tlb().lookups();
        l2_hits += g->l2Tlb().hits();
        for (int cu = 0; cu < cfg_.cusPerGpu; ++cu) {
            l1_lookups += g->l1Tlb(cu).lookups();
            l1_hits += g->l1Tlb(cu).hits();
        }

        const mmu::Gmmu::Stats &ms = g->gmmu().stats();
        r.gmmuWalkMemAccesses += ms.memAccesses;
        r.gmmuRemoteMemAccesses += ms.remoteMemAccesses;
        queue_wait_sum += ms.queueWait.sum();
        queue_wait_n += ms.queueWait.count();

        const pwc::PageWalkCache &pwc = g->gmmu().pwc();
        for (std::size_t b = 0; b < pwc.hitLevels().buckets(); ++b)
            r.gmmuPwcLevels.record(b, pwc.hitLevels().bucket(b));

        if (auto *prt = g->prt()) {
            r.prtLookups += prt->lookups();
            r.prtHits += prt->hits();
            r.prtOverflows += prt->overflowEvictions();
        }
        r.gmmuQueueOverflows += ms.queueOverflows;
    }
    std::uint64_t xlat_count = r.l2TlbMisses;
    r.avgXlatLatency =
        xlat_count ? r.avgXlatLatency / static_cast<double>(xlat_count)
                   : 0.0;
    r.l1HitRate = l1_lookups ? static_cast<double>(l1_hits) / l1_lookups
                             : 0.0;
    r.l2HitRate = l2_lookups ? static_cast<double>(l2_hits) / l2_lookups
                             : 0.0;
    r.gmmuQueueWaitMean =
        queue_wait_n ? queue_wait_sum / static_cast<double>(queue_wait_n)
                     : 0.0;

    if (hostMmu_) {
        // Sum over the IOMMU shards (one iteration, the exact pre-shard
        // values, when hostShards == 1). The per-shard vectors stay
        // empty in that case so K = 1 reports are byte-identical.
        const int shards = hostMmu_->shards();
        r.hostTlbHitRate = hostMmu_->tlbHitRate();
        r.hostRoutedFaults = hostMmu_->routedFaults();
        double host_wait_sum = 0;
        std::uint64_t host_wait_n = 0;
        for (int s = 0; s < shards; ++s) {
            mmu::HostMmu &shard = hostMmu_->shard(s);
            const mmu::HostMmu::Stats &hs = shard.stats();
            r.hostWalks += hs.walks;
            r.hostWalkMemAccesses += hs.memAccesses;
            r.forwards += hs.forwards;
            r.forwardSuccess += hs.forwardSuccess;
            r.forwardFail += hs.forwardFail;
            r.duplicateWalks += hs.duplicateWalks;
            r.removedFromQueue += hs.removedFromQueue;
            r.hostQueueOverflows += hs.queueOverflows;
            host_wait_sum += hs.queueWait.sum();
            host_wait_n += hs.queueWait.count();
            const pwc::PageWalkCache &pwc = shard.pwc();
            for (std::size_t b = 0; b < pwc.hitLevels().buckets(); ++b)
                r.hostPwcLevels.record(b, pwc.hitLevels().bucket(b));
            for (std::size_t b = 0; b < hs.remoteProbeLevels.buckets();
                 ++b)
                r.remoteProbeLevels.record(
                    b, hs.remoteProbeLevels.bucket(b));
            if (shards > 1) {
                r.hostShardWalks.push_back(hs.walks);
                r.hostShardQueueWaitMean.push_back(hs.queueWait.mean());
                r.hostShardMaxQueueDepth.push_back(
                    static_cast<std::uint64_t>(hs.maxQueueDepth));
            }
        }
        // K = 1 must report the shard's own Welford mean bit-for-bit
        // (sum/count reconstruction differs in the last ulp); the
        // cross-shard aggregate only exists when there are shards to
        // aggregate.
        r.hostQueueWaitMean =
            shards == 1
                ? hostMmu_->shard(0).stats().queueWait.mean()
                : (host_wait_n ? host_wait_sum /
                                     static_cast<double>(host_wait_n)
                               : 0.0);
    }
    if (driver_) {
        const uvm::UvmDriver::Stats &ds = driver_->stats();
        r.driverBatches = ds.batches;
        r.driverAvgBatchSize = ds.batchSize.mean();
        r.hostWalks = ds.walks;
        r.forwards = ds.forwards;
        r.forwardSuccess = ds.forwardSuccess;
        r.forwardFail = ds.forwardFail;
        r.hostQueueWaitMean = 0.0;
    }
    if (ft_) {
        r.ftLookups = ft_->lookups();
        r.ftHits = ft_->hits();
        r.ftOverflows = ft_->overflowEvictions();
        r.ftReplicaUpdates = ft_->replicaUpdates();
        r.ftReplicaInvalidations = ft_->replicaInvalidations();
    }

    // Shard skew scalars — derived from the always-on per-shard stats,
    // so they exist (as neutral values) in no-observability builds too.
    if (hostMmu_) {
        r.shardSkewWaitRatio = hostMmu_->shardWaitRatio();
        r.shardSkewLoadShareMax = hostMmu_->shardLoadShareMax();
        r.shardSkewLoadCv = hostMmu_->shardLoadCv();
    }

#if TRANSFW_OBS
    // Fabric telemetry: one row per link in forEachLink's stable order,
    // the worst-fabric-edge scalars the ledger keys summarize, and the
    // routed-traffic hop-distance mix. Utilization is busy wire cycles
    // over the run's final tick so links living on different lanes are
    // comparable.
    {
        double util_sum = 0.0;
        std::size_t fabric_n = 0;
        net_.forEachLink([&](const ic::Link &link, bool is_fabric) {
            SimResults::FabricLinkStats fl;
            fl.name = link.name();
            fl.fabric = is_fabric;
            fl.bytes = link.bytesSent();
            fl.messages = link.messages();
            fl.ctrlMessages = link.ctrlMessages();
            const obs::LogHistogram &h = link.queueWaitHistogram();
            fl.queueWaitMean = h.mean();
            fl.queueWaitP99 = h.count() ? h.quantile(0.99) : 0.0;
            fl.queueWaitMax = h.count() ? h.maximum() : 0.0;
            fl.peakQueueDepth = link.peakQueueDepth();
            fl.utilization =
                r.execTime ? std::min(1.0,
                                      static_cast<double>(
                                          link.busyCycles()) /
                                          static_cast<double>(r.execTime))
                           : 0.0;
            if (is_fabric) {
                ++fabric_n;
                util_sum += fl.utilization;
                if (r.fabricWorstLink.empty() ||
                    fl.queueWaitP99 > r.fabricWorstQueueWaitP99) {
                    r.fabricWorstLink = fl.name;
                    r.fabricWorstQueueWaitP99 = fl.queueWaitP99;
                }
            }
            r.fabricLinks.push_back(std::move(fl));
        });
        r.fabricMeanUtilization =
            fabric_n ? util_sum / static_cast<double>(fabric_n) : 0.0;
        const auto &hd = net_.hopDistances();
        for (std::size_t hops = 1; hops < hd.size(); ++hops) {
            if (!hd[hops].messages)
                continue;
            SimResults::FabricHopDist d;
            d.hops = static_cast<int>(hops);
            d.messages = hd[hops].messages;
            d.bytes = hd[hops].bytes;
            d.waitPerMsg =
                hd[hops].waitSum / static_cast<double>(hd[hops].messages);
            r.fabricHopDist.push_back(d);
        }
    }
    if (ft_) {
        const obs::TopK &hot = ft_->hotGroups();
        for (const obs::TopK::Entry &e : hot.top(8)) {
            SimResults::HotVpnGroup hg;
            hg.group = e.key;
            hg.count = e.count;
            hg.error = e.error;
            hg.share = static_cast<double>(e.count) /
                       static_cast<double>(hot.total());
            hg.shard = ft_->shardOfGroup(e.key);
            r.hotVpnGroups.push_back(hg);
        }
    }
#endif

    const uvm::MigrationEngine::Stats &es = engine_->stats();
    r.migrations = es.migrations;
    r.replications = es.replications;
    r.writeInvalidations = es.writeInvalidations;
    r.remoteMappings = es.remoteMappings;
    r.counterMigrations = es.counterMigrations;
    r.bytesMoved = es.bytesMoved;

    // Merge the per-lane sharing shards in lane order; every combining
    // op (mask OR, count sums) is commutative, so the merged table is
    // a pure function of the simulation.
    sim::FlatMap<mem::Vpn, PageSharing> sharing;
    for (auto &shard : sharingShards_) {
        for (const auto &[vpn, ps] : shard.map) {
            PageSharing &m = sharing[vpn];
            m.gpuMask |= ps.gpuMask;
            m.reads += ps.reads;
            m.writes += ps.writes;
        }
    }
    for (const auto &[vpn, ps] : sharing) {
        int sharers = std::popcount(ps.gpuMask);
        r.sharingAccesses.record(static_cast<std::size_t>(sharers),
                                 ps.reads + ps.writes);
        if (sharers >= 2) {
            r.sharedPageReads += ps.reads;
            r.sharedPageWrites += ps.writes;
        }
    }

    // Latency attribution + watchdog verdicts. Relays are drained at
    // every window barrier, but drain once more for safety before
    // finalize() counts races still open after the lanes parked; the
    // span-nesting sweep runs here because it needs the full trace.
    for (auto &relay : relays_)
        relay.drainTo(obs_->attribution);
    obs_->attribution.finalize();
    if (cfg_.obs.spans)
        obs_->checks.verifySpanNesting(obs_->spans);
    r.attribution = obs_->attribution.table();
    r.obsCheckViolations = obs_->checks.violations();
    r.obsCheckedRequests = obs_->checks.checkedRequests();
    r.droppedSpans = obs_->spans.dropped();
    r.peakEventBacklog = hostEq_.peakPending();
    for (auto &q : gpuQs_)
        r.peakEventBacklog += q->peakPending();

    // Lane self-profiles merge by sum: every bucket second and every
    // dispatch was measured on exactly one lane, so bucket-sum ==
    // total survives the merge by construction.
    obs::HostProfile prof = obs_->profiler.snapshot();
    for (auto &lp : laneProfilers_) {
        obs::HostProfile p = lp->snapshot();
        for (std::size_t b = 0; b < obs::kNumProfBuckets; ++b)
            prof.seconds[b] += p.seconds[b];
        prof.totalSeconds += p.totalSeconds;
        prof.dispatches += p.dispatches;
        prof.sampledDispatches += p.sampledDispatches;
    }
    r.hostProfile = prof;
    return r;
}

} // namespace transfw::sys
