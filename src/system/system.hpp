#ifndef TRANSFW_SYSTEM_SYSTEM_HPP
#define TRANSFW_SYSTEM_SYSTEM_HPP

#include <memory>
#include <vector>

#include "config/config.hpp"
#include "gpu/compute_unit.hpp"
#include "gpu/cta_scheduler.hpp"
#include "gpu/gpu.hpp"
#include "interconnect/network.hpp"
#include "mmu/host_mmu.hpp"
#include "obs/obs.hpp"
#include "sim/flat_map.hpp"
#include "system/results.hpp"
#include "transfw/forwarding_table.hpp"
#include "uvm/migration.hpp"
#include "uvm/uvm_driver.hpp"
#include "workload/workload.hpp"

namespace transfw::sys {

/**
 * The complete simulated machine: N GPUs (CUs, TLBs, GMMUs, local page
 * tables), the interconnect, the centralized UVM page table, and the
 * configured far-fault handler (host MMU or UVM driver), optionally
 * augmented with Trans-FW's PRT/FT. Construct with a config and a
 * workload, call run() once, read the SimResults.
 */
class MultiGpuSystem
{
  public:
    MultiGpuSystem(const cfg::SystemConfig &config,
                   const wl::Workload &workload);

    /** Execute the workload to completion and collect results. */
    SimResults run();

    // --- component access (tests, characterization probes) ----------------
    gpu::Gpu &gpuAt(int gpu) { return *gpus_[static_cast<std::size_t>(gpu)]; }
    mmu::HostMmu *hostMmu() { return hostMmu_.get(); }
    uvm::UvmDriver *uvmDriver() { return driver_.get(); }
    uvm::MigrationEngine &migrationEngine() { return *engine_; }
    core::ForwardingTable *forwardingTable() { return ft_.get(); }
    mem::PageTable &centralPageTable() { return central_; }
    sim::EventQueue &eventq() { return eq_; }
    const cfg::SystemConfig &config() const { return cfg_; }

    /** Observability bundle: spans, metric registry, sampler. */
    obs::Observability &obs() { return *obs_; }
    const obs::Observability &obs() const { return *obs_; }

  private:
    struct PageSharing
    {
        std::uint32_t gpuMask = 0;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
    };

    void placeInitialPages();
    void wireGpu(int gpu);
    void sendFaultToHost(mmu::XlatPtr req);
    void setupObservability();
    SimResults collect();

    /** Attribution engine for event-time charge mirroring. Fetched at
     *  call time because the wiring lambdas are created before obs_. */
    obs::AttributionEngine *attribEngine()
    {
        return obs_ ? &obs_->attribution : nullptr;
    }

    /** Self-profiler, same late-fetch rule as attribEngine(). */
    obs::SelfProfiler *profiler()
    {
        return obs_ ? &obs_->profiler : nullptr;
    }

    cfg::SystemConfig cfg_;
    const wl::Workload &workload_;

    sim::EventQueue eq_;
    sim::Rng rng_;
    mem::PageTable central_;
    mem::FrameAllocator cpuFrames_;
    ic::Network net_;

    std::unique_ptr<core::ForwardingTable> ft_;
    std::vector<std::unique_ptr<gpu::Gpu>> gpus_;
    std::unique_ptr<uvm::MigrationEngine> engine_;
    std::unique_ptr<mmu::HostMmu> hostMmu_;
    std::unique_ptr<uvm::UvmDriver> driver_;
    gpu::CtaScheduler scheduler_;
    std::vector<std::unique_ptr<gpu::ComputeUnit>> cus_;

    /** Updated on every coalesced page access (sharing tracker tap). */
    sim::FlatMap<mem::Vpn, PageSharing> sharing_;
    std::uint64_t farFaults_ = 0;
    bool ran_ = false;

    /**
     * Declared last on purpose: destroyed first, so registry gauges
     * (which hold raw pointers into the components above) can never be
     * evaluated against dead components.
     */
    std::unique_ptr<obs::Observability> obs_;

    static constexpr std::uint64_t kCtrlMsgBytes = 32;
};

} // namespace transfw::sys

#endif // TRANSFW_SYSTEM_SYSTEM_HPP
