#ifndef TRANSFW_SYSTEM_SYSTEM_HPP
#define TRANSFW_SYSTEM_SYSTEM_HPP

#include <memory>
#include <vector>

#include "config/config.hpp"
#include "gpu/compute_unit.hpp"
#include "gpu/cta_scheduler.hpp"
#include "gpu/gpu.hpp"
#include "interconnect/network.hpp"
#include "mmu/host_mmu_cluster.hpp"
#include "obs/obs.hpp"
#include "sim/event_queue.hpp"
#include "sim/flat_map.hpp"
#include "sim/mailbox.hpp"
#include "sim/random.hpp"
#include "system/results.hpp"
#include "transfw/ft_cluster.hpp"
#include "uvm/migration.hpp"
#include "uvm/uvm_driver.hpp"
#include "workload/workload.hpp"

namespace transfw::sys {

/**
 * The complete simulated machine: N GPUs (CUs, TLBs, GMMUs, local page
 * tables), the interconnect, the centralized UVM page table, and the
 * configured far-fault handler (host MMU or UVM driver), optionally
 * augmented with Trans-FW's PRT/FT. Construct with a config and a
 * workload, call run() once, read the SimResults.
 *
 * Event kernel: the machine is decomposed into N+1 event lanes — one
 * per GPU plus one for everything host-side (host MMU / UVM driver,
 * migration engine, central page table, interconnect routing) — run
 * on an adaptive alternating schedule. Host events execute one tick
 * at a time with every GPU lane parked (the host writes GPU-visible
 * state with zero modeled latency, so it must never run ahead of a
 * lane); between host ticks the GPU lanes execute in parallel up to
 * the *adaptive* lookahead bound
 *
 *   min(next host event, min_g(lane g's next event + laneWindow(g)))
 *
 * where laneWindow(g) is the lower-bound latency of the cheapest
 * cross-lane channel lane g can send on (its uplink's control token +
 * propagation). Because the bound follows the dynamic per-lane next-
 * event times instead of one static global minimum, staggered lanes
 * buy long windows, and lanes with nothing runnable before the bound
 * skip the window (and its barrier) entirely. Cross-lane messages
 * batch into per-(source lane, host) mailboxes flushed once per
 * window; the lookahead guarantees they land at ticks no lane has
 * passed. GPUs are block-partitioned onto workers along the
 * interconnect's affinity order (ring neighbours share a worker), one
 * static group per worker. cfg.sim.lanes picks the worker-thread
 * count for the GPU windows; 0 runs the identical schedule serially,
 * and every lane count produces bit-identical SimResults (see
 * DESIGN.md).
 */
class MultiGpuSystem
{
  public:
    MultiGpuSystem(const cfg::SystemConfig &config,
                   const wl::Workload &workload);

    /** Execute the workload to completion and collect results. */
    SimResults run();

    // --- component access (tests, characterization probes) ----------------
    gpu::Gpu &gpuAt(int gpu) { return *gpus_[static_cast<std::size_t>(gpu)]; }
    /** Shard 0 of the host MMU (the whole MMU when hostShards == 1). */
    mmu::HostMmu *hostMmu()
    {
        return hostMmu_ ? &hostMmu_->shard(0) : nullptr;
    }
    mmu::HostMmuCluster *hostMmuCluster() { return hostMmu_.get(); }
    uvm::UvmDriver *uvmDriver() { return driver_.get(); }
    uvm::MigrationEngine &migrationEngine() { return *engine_; }
    /** Shard 0's FT slice (the whole FT when hostShards == 1). */
    core::ForwardingTable *forwardingTable()
    {
        return ft_ ? &ft_->table(0) : nullptr;
    }
    core::FtCluster *ftCluster() { return ft_.get(); }
    ic::Network &network() { return net_; }
    mem::PageTable &centralPageTable() { return central_; }
    /** The host lane's queue (runs in host-exclusive single-tick
     *  stretches between parallel GPU segments). */
    sim::EventQueue &eventq() { return hostEq_; }
    /** GPU @p gpu's lane queue. */
    sim::EventQueue &gpuEventq(int gpu)
    {
        return *gpuQs_[static_cast<std::size_t>(gpu)];
    }
    /** Minimum per-lane lookahead window (ticks): the smallest
     *  laneWindow(g) over all GPUs. Kept as the scalar summary for
     *  ledger/results reporting; the scheduler itself uses the
     *  per-lane values. */
    sim::Tick lookaheadWindow() const { return window_; }
    /** Lane @p gpu's lookahead window: the lower-bound delay of the
     *  cheapest cross-lane message it can originate (uplink control
     *  token + propagation). */
    sim::Tick laneWindow(int gpu) const
    {
        return laneWindows_[static_cast<std::size_t>(gpu)];
    }
    const cfg::SystemConfig &config() const { return cfg_; }

    /** Observability bundle: spans, metric registry, sampler. */
    obs::Observability &obs() { return *obs_; }
    const obs::Observability &obs() const { return *obs_; }

  private:
    struct PageSharing
    {
        std::uint64_t gpuMask = 0;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
    };

    /** A lane-owned counter on its own cache line: parallel windows
     *  bump these with zero coherence traffic between workers. */
    struct alignas(sim::kCacheLine) LaneCounter
    {
        std::uint64_t value = 0;
    };

    /** A lane-owned sharing-tracker shard, cache-line separated for
     *  the same reason as LaneCounter. */
    struct alignas(sim::kCacheLine) SharingShard
    {
        sim::FlatMap<mem::Vpn, PageSharing> map;
    };

    void placeInitialPages();
    void wireGpu(int gpu);
    void wireLanes();
    void sendFaultToHost(mmu::XlatPtr req);
    void setupObservability();
    SimResults collect();

    /** The windowed multi-lane kernel; @return events executed. */
    std::uint64_t runLanes();
    /** Barrier: move every mailbox message onto the host queue in
     *  deterministic (arrival tick, source lane, post order). */
    void drainMail();
    /** Block-partition the GPUs onto @p workers groups along the
     *  interconnect's affinity order (one static group per worker). */
    std::vector<std::vector<int>> buildLaneGroups(unsigned workers) const;
    /** Worker threads for the GPU phase (forced to 1 when a feature
     *  reaches across lanes: Least-TLB sibling probes, the shared span
     *  recorder, or tracing). */
    unsigned laneWorkers() const;

    /** Attribution engine for event-time charge mirroring. Fetched at
     *  call time because the wiring lambdas are created before obs_.
     *  Host-lane sink: GPU lanes report through laneAttrib(). */
    obs::AttributionEngine *attribEngine()
    {
        return obs_ ? &obs_->attribution : nullptr;
    }

    /** GPU lane @p g's attribution sink (barrier-drained relay). */
    obs::AttribSink *laneAttrib(int g)
    {
        return &relays_[static_cast<std::size_t>(g)];
    }

    /** Host-lane self-profiler, same late-fetch rule as attribEngine(). */
    obs::SelfProfiler *profiler()
    {
        return obs_ ? &obs_->profiler : nullptr;
    }

    /** GPU lane @p g's self-profiler. */
    obs::SelfProfiler *laneProfiler(int g)
    {
        return laneProfilers_[static_cast<std::size_t>(g)].get();
    }

    cfg::SystemConfig cfg_;
    const wl::Workload &workload_;

    /** Minimum of laneWindows_ (scalar summary for reporting). */
    sim::Tick window_ = 1;
    /** Per-lane conservative lookahead: no message *originated by*
     *  lane g can arrive anywhere sooner than laneWindows_[g] ticks
     *  after it is sent. Only the uplink bounds it — peer and downlink
     *  traffic is host-lane-driven, so peer latency never clamps a
     *  GPU lane's window. */
    std::vector<sim::Tick> laneWindows_;

    /** Per-GPU event lanes; filled before any component exists. */
    std::vector<std::unique_ptr<sim::EventQueue>> gpuQs_;
    /** The host/IOMMU lane (also the pre-run construction clock). */
    sim::EventQueue hostEq_;

    sim::Rng rng_; ///< host lane
    /** Per-GPU streams, seed-derived; each used only by its own lane. */
    std::vector<std::unique_ptr<sim::Rng>> gpuRngs_;

    mem::PageTable central_;
    mem::FrameAllocator cpuFrames_;
    ic::Network net_;

    std::unique_ptr<core::FtCluster> ft_;
    std::vector<std::unique_ptr<gpu::Gpu>> gpus_;
    std::unique_ptr<uvm::MigrationEngine> engine_;
    std::unique_ptr<mmu::HostMmuCluster> hostMmu_;
    std::unique_ptr<uvm::UvmDriver> driver_;
    gpu::CtaScheduler scheduler_;
    std::vector<std::unique_ptr<gpu::ComputeUnit>> cus_;

    /** GPU→host mailboxes, one per source lane (single writer each;
     *  cache-line aligned so neighbouring lanes' batches never share
     *  a line). Flushed once per window by drainMail(). */
    std::vector<sim::Mailbox> mail_;
    /** Per-GPU-lane attribution buffers, replayed in lane order. */
    std::vector<obs::AttribRelay> relays_;
    /** Per-GPU-lane self-profilers, merged into the host profile. */
    std::vector<std::unique_ptr<obs::SelfProfiler>> laneProfilers_;

    /** Sharing tracker shards, one per GPU lane; merged at collect. */
    std::vector<SharingShard> sharingShards_;
    /** Far-fault counters, one per GPU lane; summed at collect. */
    std::vector<LaneCounter> farFaultShards_;
    bool ran_ = false;

    /**
     * Declared last on purpose: destroyed first, so registry gauges
     * (which hold raw pointers into the components above) can never be
     * evaluated against dead components.
     */
    std::unique_ptr<obs::Observability> obs_;

    static constexpr std::uint64_t kCtrlMsgBytes = 32;
};

} // namespace transfw::sys

#endif // TRANSFW_SYSTEM_SYSTEM_HPP
