#ifndef TRANSFW_TLB_TLB_HPP
#define TRANSFW_TLB_TLB_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "cache/set_assoc.hpp"
#include "mem/address.hpp"
#include "obs/metrics.hpp"
#include "sim/ticks.hpp"
#include "stats/stats.hpp"

namespace transfw::tlb {

/** A cached leaf translation as held by any TLB level. */
struct TlbEntry
{
    mem::Ppn ppn = 0;
    mem::DeviceId owner = mem::kCpuDevice;
    bool writable = true;
    bool remote = false; ///< maps a peer GPU's memory (remote mapping)
};

/** Sizing/latency parameters for one TLB (Table II rows). */
struct TlbConfig
{
    std::size_t entries = 32;
    std::size_t ways = 32;
    sim::Tick lookupLatency = 1;
};

/**
 * A TLB level: L1 (per-CU, fully associative), L2 (per-GPU shared) or
 * the host MMU TLB (GPU-shared), all LRU (Table II). Timing is applied
 * by the requester using lookupLatency(); this class is the functional
 * array plus hit/miss accounting and shootdown support.
 */
class Tlb
{
  public:
    Tlb(std::string name, const TlbConfig &config)
        : name_(std::move(name)), latency_(config.lookupLatency),
          array_(config.entries, config.ways)
    {}

    /** Look up @p vpn. @return pointer to the entry on a hit. */
    const TlbEntry *
    lookup(mem::Vpn vpn)
    {
        ++lookups_;
        const TlbEntry *entry = array_.lookup(vpn);
        if (entry)
            ++hits_;
        return entry;
    }

    /** Recency/stats-neutral lookup (sibling probes, tests). */
    const TlbEntry *probe(mem::Vpn vpn) const { return array_.probe(vpn); }

    /** Install a translation. @return the displaced (vpn, entry), if
     *  a valid line was evicted (for residency bookkeeping). */
    std::optional<std::pair<std::uint64_t, TlbEntry>>
    fill(mem::Vpn vpn, const TlbEntry &entry)
    {
        return array_.insert(vpn, entry);
    }

    /** Shoot down one translation. @return true if present. */
    bool
    invalidate(mem::Vpn vpn)
    {
        bool present = array_.invalidate(vpn);
        shootdowns_ += present ? 1 : 0;
        return present;
    }

    void invalidateAll() { array_.invalidateAll(); }

    sim::Tick lookupLatency() const { return latency_; }
    const std::string &name() const { return name_; }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return lookups_ - hits_; }
    std::uint64_t shootdowns() const { return shootdowns_; }
    double
    hitRate() const
    {
        return lookups_ ? static_cast<double>(hits_) / lookups_ : 0.0;
    }

    /** Register "<prefix>.lookups"/".hits"/".hitRate"/".shootdowns". */
    void
    registerMetrics(obs::MetricRegistry &reg,
                    const std::string &prefix) const
    {
        reg.registerGauge(prefix + ".lookups", [this] {
            return static_cast<double>(lookups_);
        });
        reg.registerGauge(prefix + ".hits", [this] {
            return static_cast<double>(hits_);
        });
        reg.registerGauge(prefix + ".hitRate",
                          [this] { return hitRate(); });
        reg.registerGauge(prefix + ".shootdowns", [this] {
            return static_cast<double>(shootdowns_);
        });
    }

  private:
    std::string name_;
    sim::Tick latency_;
    cache::SetAssoc<TlbEntry> array_;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t shootdowns_ = 0;
};

} // namespace transfw::tlb

#endif // TRANSFW_TLB_TLB_HPP
