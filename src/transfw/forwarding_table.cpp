#include "transfw/forwarding_table.hpp"

namespace transfw::core {

ForwardingTable::ForwardingTable(const cfg::TransFwConfig &config)
    : maskBits_(config.vpnMaskBits),
      filter_({.numBuckets = config.ftBuckets,
               .slotsPerBucket = config.ftSlotsPerBucket,
               .fingerprintBits = config.ftFingerprintBits,
               .maxKicks = 500,
               .seed = 0x4654'0000ULL})
{}

void
ForwardingTable::pageArrived(mem::Vpn vpn, int owner)
{
    std::uint64_t k = key(vpn, owner);
    if (refCount_[k]++ == 0)
        filter_.insert(k);
}

void
ForwardingTable::pageDeparted(mem::Vpn vpn, int owner)
{
    std::uint64_t k = key(vpn, owner);
    auto it = refCount_.find(k);
    if (it == refCount_.end() || it->second == 0)
        return;
    if (--it->second == 0) {
        filter_.erase(k);
        refCount_.erase(it);
    }
}

std::optional<int>
ForwardingTable::findOwner(mem::Vpn vpn, int num_gpus, int exclude_gpu)
{
    ++lookups_;
#if TRANSFW_OBS
    // Skew tracker: lookups at VPN-group granularity — the same unit
    // the shard hash partitions on, so the sketch's heavy hitters are
    // exactly the groups that keep the hot shard hot.
    if (hotGroups_)
        hotGroups_->note(vpn >> maskBits_);
#endif
    int candidates[64];
    int n = 0;
    for (int gpu = 0; gpu < num_gpus; ++gpu) {
        if (gpu == exclude_gpu)
            continue;
        std::uint64_t k = key(vpn, gpu);
        ++probes_;
        if (filter_.contains(k)) {
            candidates[n++] = gpu;
            // Observed false positive: no live reference behind the
            // fingerprint. Observability tap only — the forward still
            // goes out and fails the hardware way.
            if (refCount_.find(k) == refCount_.end())
                ++falsePositives_;
        }
    }
    if (n == 0)
        return std::nullopt;
    ++hits_;
    return candidates[rng_.range(static_cast<std::uint64_t>(n))];
}

} // namespace transfw::core
