#ifndef TRANSFW_TRANSFW_FORWARDING_TABLE_HPP
#define TRANSFW_TRANSFW_FORWARDING_TABLE_HPP

#include <cstdint>
#include <optional>

#include "config/config.hpp"
#include "filter/cuckoo_filter.hpp"
#include "mem/address.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/topk.hpp"
#include "sim/flat_map.hpp"
#include "sim/random.hpp"

namespace transfw::core {

/**
 * Forwarding Table (Section IV-C): a Cuckoo filter in the host MMU
 * keyed by (VPN group, owner GPU id) that answers "which GPU holds the
 * valid copy of this page?". A lookup probes every GPU id in parallel
 * (the paper's FT performs four parallel ID lookups); a false positive
 * forwards the walk to a GPU that cannot resolve it, which the
 * requester treats as a failed remote lookup.
 *
 * As in the PRT, a per-(group, gpu) reference count decides when
 * fingerprints are inserted/deleted so eight pages can share one
 * fingerprint without duplicate copies.
 */
class ForwardingTable
{
  public:
    explicit ForwardingTable(const cfg::TransFwConfig &config);

    /** A page became resident on GPU @p owner. */
    void pageArrived(mem::Vpn vpn, int owner);

    /** A page left GPU @p owner's memory. */
    void pageDeparted(mem::Vpn vpn, int owner);

    /**
     * Find a candidate owner for @p vpn among @p num_gpus GPUs,
     * excluding the requester (forwarding a fault back to the faulting
     * GPU is useless). When several ids match (stale duplicates or
     * split groups), one is chosen at random, as in the paper.
     */
    std::optional<int> findOwner(mem::Vpn vpn, int num_gpus,
                                 int exclude_gpu);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t bits() const { return filter_.bits(); }
    std::uint64_t kicks() const { return filter_.kicks(); }
    std::uint64_t probes() const { return probes_; }
    double loadFactor() const { return filter_.loadFactor(); }
    std::uint64_t overflowEvictions() const
    {
        return filter_.overflowEvictions();
    }
#if TRANSFW_OBS
    /**
     * Tap every findOwner into a frequency sketch at VPN-group
     * granularity. The sketch outlives the table (FtCluster owns
     * both); the skew tracker hangs here because shard MMUs probe
     * their table slice directly, below any cluster-level routing.
     */
    void setHotGroupSketch(obs::TopK *sketch) { hotGroups_ = sketch; }
#endif

    /** Per-GPU-id probes where the filter hit with no live reference. */
    std::uint64_t observedFalsePositives() const { return falsePositives_; }
    double observedFpRate() const
    {
        return probes_ ? static_cast<double>(falsePositives_) /
                             static_cast<double>(probes_)
                       : 0.0;
    }

    /** Register filter health gauges under "<prefix>.". */
    void
    registerMetrics(obs::MetricRegistry &reg,
                    const std::string &prefix) const
    {
        reg.registerGauge(prefix + ".lookups", [this] {
            return static_cast<double>(lookups_);
        });
        reg.registerGauge(prefix + ".hits", [this] {
            return static_cast<double>(hits_);
        });
        reg.registerGauge(prefix + ".loadFactor",
                          [this] { return loadFactor(); });
        reg.registerGauge(prefix + ".occupancy", [this] {
            return static_cast<double>(filter_.size());
        });
        reg.registerGauge(prefix + ".kicks", [this] {
            return static_cast<double>(filter_.kicks());
        });
        reg.registerGauge(prefix + ".observedFpRate",
                          [this] { return observedFpRate(); });
        reg.registerGauge(prefix + ".overflowEvictions", [this] {
            return static_cast<double>(overflowEvictions());
        });
        reg.registerGauge(prefix + ".refMap.loadFactor", [this] {
            return refCount_.loadFactor();
        });
        reg.registerGauge(prefix + ".refMap.tombstones", [this] {
            return static_cast<double>(refCount_.tombstones());
        });
    }

  private:
    std::uint64_t
    key(mem::Vpn vpn, int owner) const
    {
        return ((vpn >> maskBits_) << 6) |
               static_cast<std::uint64_t>(owner & 0x3F);
    }

    unsigned maskBits_;
    filter::CuckooFilter filter_;
    sim::Rng rng_{0x4654'BEEFULL};
    /** Exact per-(group, gpu) residency counts (see class comment). */
    sim::FlatMap<std::uint64_t, std::uint32_t> refCount_;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t probes_ = 0;
    std::uint64_t falsePositives_ = 0;
#if TRANSFW_OBS
    obs::TopK *hotGroups_ = nullptr; ///< cluster-owned lookup sketch
#endif
};

} // namespace transfw::core

#endif // TRANSFW_TRANSFW_FORWARDING_TABLE_HPP
