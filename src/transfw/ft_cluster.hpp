#ifndef TRANSFW_TRANSFW_FT_CLUSTER_HPP
#define TRANSFW_TRANSFW_FT_CLUSTER_HPP

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "config/config.hpp"
#include "mem/address.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp" // TRANSFW_OBS master switch
#include "obs/topk.hpp"
#include "sim/logging.hpp"
#include "transfw/forwarding_table.hpp"

namespace transfw::core {

/**
 * Deterministic VPN-group → shard map shared by the sharded host MMU
 * and the partitioned Forwarding Table: hashing at FT-fingerprint
 * granularity (vpn >> mask_bits) keeps a fingerprint group wholly
 * inside one shard, so a fault routed to its home IOMMU shard always
 * finds the FT slice that could know its owner. splitmix64 finalizer:
 * cheap, well-mixed, stable across platforms.
 */
inline int
shardOfVpnGroup(mem::Vpn vpn, unsigned mask_bits, int shards)
{
    if (shards <= 1)
        return 0;
    std::uint64_t x = vpn >> mask_bits;
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<int>(x % static_cast<std::uint64_t>(shards));
}

/**
 * K Forwarding Tables behind the sharded host MMU (one per IOMMU
 * shard). Two placement modes (cfg.transFw.ftReplicated):
 *
 *  - Partitioned (default): shard s owns the VPN groups hashing to s
 *    and gets ftBuckets/K of the filter capacity. Residency updates
 *    touch exactly one shard and no coherence traffic exists, but a
 *    fault can only consult its home shard's slice — which is also
 *    where the sharded MMU routes it, so the probe is always local.
 *
 *  - Replicated: every shard keeps a full-capacity replica, so faults
 *    may be routed to any shard (the MMU cluster load-balances
 *    round-robin). The price is an explicit coherence protocol: every
 *    pageArrived broadcasts an update and every pageDeparted an
 *    invalidation to the K-1 other replicas, counted in
 *    replicaUpdates()/replicaInvalidations() (the broadcast rides the
 *    host-internal fabric, modeled as bandwidth-free control traffic).
 *
 * With K = 1 every call delegates verbatim to the single table — the
 * paper's host-MMU FT, byte-identical behavior and metric names.
 */
class FtCluster
{
  public:
    explicit FtCluster(const cfg::TransFwConfig &config, int shards = 1)
        : cfg_(config), shards_(std::max(1, shards)),
          replicated_(config.ftReplicated && shards_ > 1)
    {
        cfg::TransFwConfig shard_cfg = config;
        if (!replicated_ && shards_ > 1)
            shard_cfg.ftBuckets =
                std::max<std::size_t>(1, config.ftBuckets /
                                             static_cast<std::size_t>(
                                                 shards_));
        for (int s = 0; s < shards_; ++s)
            tables_.push_back(
                std::make_unique<ForwardingTable>(shard_cfg));
#if TRANSFW_OBS
        // The shard MMUs hold raw per-shard table pointers and probe
        // them directly, so the lookup stream is tapped at the table —
        // every path (cluster route, shard-local probe, UVM driver)
        // feeds the one sketch exactly once.
        for (auto &t : tables_)
            t->setHotGroupSketch(&hotGroups_);
#endif
    }

    int shards() const { return shards_; }
    bool replicated() const { return replicated_; }

    /** Owning shard of @p vpn under partitioning (0 when replicated —
     *  every replica is equivalent). */
    int
    homeShard(mem::Vpn vpn) const
    {
        return replicated_ ? 0
                           : shardOfVpnGroup(vpn, cfg_.vpnMaskBits,
                                             shards_);
    }

    /** A page became resident on GPU @p owner. */
    void
    pageArrived(mem::Vpn vpn, int owner)
    {
        if (replicated_) {
            for (auto &t : tables_)
                t->pageArrived(vpn, owner);
            replicaUpdates_ +=
                static_cast<std::uint64_t>(shards_ - 1);
        } else {
            tables_[static_cast<std::size_t>(homeShard(vpn))]
                ->pageArrived(vpn, owner);
        }
    }

    /** A page left GPU @p owner's memory. */
    void
    pageDeparted(mem::Vpn vpn, int owner)
    {
        if (replicated_) {
            for (auto &t : tables_)
                t->pageDeparted(vpn, owner);
            replicaInvalidations_ +=
                static_cast<std::uint64_t>(shards_ - 1);
        } else {
            tables_[static_cast<std::size_t>(homeShard(vpn))]
                ->pageDeparted(vpn, owner);
        }
    }

    /**
     * Probe for an owner candidate from shard @p shard's vantage: its
     * own replica when replicated, the home slice otherwise (the MMU
     * cluster routes partitioned faults home, so both cases read the
     * prober's local table).
     */
    std::optional<int>
    findOwner(int shard, mem::Vpn vpn, int num_gpus, int exclude_gpu)
    {
        int s = replicated_ ? shard : homeShard(vpn);
        return tables_[static_cast<std::size_t>(s)]->findOwner(
            vpn, num_gpus, exclude_gpu);
    }

    /** Probe from outside any shard (the software UVM-driver path,
     *  which validate() restricts to a single shard). */
    std::optional<int>
    findOwner(mem::Vpn vpn, int num_gpus, int exclude_gpu)
    {
        return findOwner(0, vpn, num_gpus, exclude_gpu);
    }

    /** Shard @p s's table (the sharded MMU probes it directly). */
    ForwardingTable &table(int s)
    {
        return *tables_.at(static_cast<std::size_t>(s));
    }
    const ForwardingTable &table(int s) const
    {
        return *tables_.at(static_cast<std::size_t>(s));
    }

    // --- aggregate stats (collect(), ledger) -------------------------------
    std::uint64_t
    lookups() const
    {
        std::uint64_t n = 0;
        for (const auto &t : tables_)
            n += t->lookups();
        return n;
    }
    std::uint64_t
    hits() const
    {
        std::uint64_t n = 0;
        for (const auto &t : tables_)
            n += t->hits();
        return n;
    }
    std::uint64_t
    overflowEvictions() const
    {
        std::uint64_t n = 0;
        for (const auto &t : tables_)
            n += t->overflowEvictions();
        return n;
    }
    double
    loadFactor() const
    {
        double sum = 0;
        for (const auto &t : tables_)
            sum += t->loadFactor();
        return sum / static_cast<double>(shards_);
    }
    /** Replica-coherence traffic (replicated mode only; 0 otherwise). */
    std::uint64_t replicaUpdates() const { return replicaUpdates_; }
    std::uint64_t replicaInvalidations() const
    {
        return replicaInvalidations_;
    }

#if TRANSFW_OBS
    /** Space-saving sketch over VPN-group lookups (skew tracker). */
    const obs::TopK &hotGroups() const { return hotGroups_; }
    /** Shard a tracked group maps to under the partition hash. */
    int
    shardOfGroup(std::uint64_t group) const
    {
        return shardOfVpnGroup(group << cfg_.vpnMaskBits,
                               cfg_.vpnMaskBits, shards_);
    }
#endif

    /**
     * Register gauges under "<prefix>.". K = 1 delegates to the single
     * table, preserving the exact pre-shard metric names and values;
     * K > 1 registers cluster aggregates under the same names (so the
     * sampler columns keep working) plus per-shard trees and the
     * replica-coherence counters.
     */
    void
    registerMetrics(obs::MetricRegistry &reg,
                    const std::string &prefix) const
    {
#if TRANSFW_OBS
        // Skew-tracker gauges exist at every shard count (K = 1 still
        // answers "how concentrated is the lookup stream").
        reg.registerGauge(prefix + ".hotGroups.tracked", [this] {
            return static_cast<double>(hotGroups_.tracked());
        });
        reg.registerGauge(prefix + ".hotGroups.total", [this] {
            return static_cast<double>(hotGroups_.total());
        });
        reg.registerGauge(prefix + ".hotGroups.top8Share", [this] {
            return hotGroups_.topShare(8);
        });
#endif
        if (shards_ == 1) {
            tables_[0]->registerMetrics(reg, prefix);
            return;
        }
        reg.registerGauge(prefix + ".lookups", [this] {
            return static_cast<double>(lookups());
        });
        reg.registerGauge(prefix + ".hits", [this] {
            return static_cast<double>(hits());
        });
        reg.registerGauge(prefix + ".loadFactor",
                          [this] { return loadFactor(); });
        reg.registerGauge(prefix + ".overflowEvictions", [this] {
            return static_cast<double>(overflowEvictions());
        });
        reg.registerGauge(prefix + ".kicks", [this] {
            double n = 0;
            for (const auto &t : tables_)
                n += static_cast<double>(t->kicks());
            return n;
        });
        reg.registerGauge(prefix + ".observedFpRate", [this] {
            double fp = 0, probes = 0;
            for (const auto &t : tables_) {
                fp += static_cast<double>(t->observedFalsePositives());
                probes += static_cast<double>(t->probes());
            }
            return probes > 0 ? fp / probes : 0.0;
        });
        reg.registerGauge(prefix + ".replicaUpdates", [this] {
            return static_cast<double>(replicaUpdates_);
        });
        reg.registerGauge(prefix + ".replicaInvalidations", [this] {
            return static_cast<double>(replicaInvalidations_);
        });
        for (int s = 0; s < shards_; ++s)
            tables_[static_cast<std::size_t>(s)]->registerMetrics(
                reg, prefix + sim::strfmt(".shard%d", s));
    }

  private:
    cfg::TransFwConfig cfg_;
    int shards_;
    bool replicated_;
    std::vector<std::unique_ptr<ForwardingTable>> tables_;
    std::uint64_t replicaUpdates_ = 0;
    std::uint64_t replicaInvalidations_ = 0;
#if TRANSFW_OBS
    obs::TopK hotGroups_; ///< VPN-group lookup frequency sketch
#endif
};

} // namespace transfw::core

#endif // TRANSFW_TRANSFW_FT_CLUSTER_HPP
