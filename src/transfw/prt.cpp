#include "transfw/prt.hpp"

namespace transfw::core {

PendingRequestTable::PendingRequestTable(const cfg::TransFwConfig &config,
                                         int gpu_id)
    : maskBits_(config.vpnMaskBits),
      filter_({.numBuckets = config.prtBuckets,
               .slotsPerBucket = config.prtSlotsPerBucket,
               .fingerprintBits = config.prtFingerprintBits,
               .maxKicks = 500,
               .seed = 0x5052'5400ULL + static_cast<std::uint64_t>(gpu_id)})
{}

void
PendingRequestTable::pageArrived(mem::Vpn vpn)
{
    std::uint64_t g = group(vpn);
    if (groupCount_[g]++ == 0)
        filter_.insert(g);
}

void
PendingRequestTable::pageDeparted(mem::Vpn vpn)
{
    std::uint64_t g = group(vpn);
    auto it = groupCount_.find(g);
    if (it == groupCount_.end() || it->second == 0)
        return; // page was never tracked (e.g., pre-mapped oracle state)
    if (--it->second == 0) {
        filter_.erase(g);
        groupCount_.erase(it);
    }
}

bool
PendingRequestTable::mayBeLocal(mem::Vpn vpn)
{
    ++lookups_;
    std::uint64_t g = group(vpn);
    bool hit = filter_.contains(g);
    hits_ += hit ? 1 : 0;
    // Observed false positive: the filter says "maybe local" but the
    // exact residency count has no pages in this group. Purely an
    // observability tap — the caller still walks locally and discovers
    // the miss the hardware way.
    if (hit && groupCount_.find(g) == groupCount_.end())
        ++falsePositives_;
    return hit;
}

} // namespace transfw::core
