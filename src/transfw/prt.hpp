#ifndef TRANSFW_TRANSFW_PRT_HPP
#define TRANSFW_TRANSFW_PRT_HPP

#include <cstdint>

#include "config/config.hpp"
#include "filter/cuckoo_filter.hpp"
#include "mem/address.hpp"
#include "obs/metrics.hpp"
#include "sim/flat_map.hpp"

namespace transfw::core {

/**
 * Pending Request Table (Section IV-B): a per-GMMU Cuckoo filter over
 * the virtual pages resident in this GPU's local memory. An L2 TLB
 * miss that misses the PRT is *definitely* not local (no false
 * negatives while the filter has capacity), so the request is
 * short-circuited to the host MMU without a local PT-walk; a PRT hit
 * sends the request down the normal GMMU walk, with rare false
 * positives adding a wasted local walk.
 *
 * The low vpnMaskBits of the VPN are masked so eight pages share one
 * fingerprint (the paper's sizing trick). The filter stores one
 * fingerprint per *page group*; an exact reference count per group
 * (hardware: a small per-group counter alongside the migration
 * machinery, off the critical path) decides when the group fingerprint
 * is inserted or deleted so duplicate fingerprints never accumulate.
 */
class PendingRequestTable
{
  public:
    PendingRequestTable(const cfg::TransFwConfig &config, int gpu_id);

    /** A page became resident in this GPU's memory. */
    void pageArrived(mem::Vpn vpn);

    /** A page left this GPU's memory. */
    void pageDeparted(mem::Vpn vpn);

    /**
     * Membership test on an L2 TLB miss. False negatives are only
     * possible after filter overflow (the caller handles a local page
     * that arrives at the host gracefully).
     */
    bool mayBeLocal(mem::Vpn vpn);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t bits() const { return filter_.bits(); }
    double loadFactor() const { return filter_.loadFactor(); }
    std::uint64_t overflowEvictions() const
    {
        return filter_.overflowEvictions();
    }
    /** Lookups where the filter hit but the group held no pages. */
    std::uint64_t observedFalsePositives() const { return falsePositives_; }
    double observedFpRate() const
    {
        return lookups_ ? static_cast<double>(falsePositives_) /
                              static_cast<double>(lookups_)
                        : 0.0;
    }

    /** Register filter health gauges under "<prefix>.". */
    void
    registerMetrics(obs::MetricRegistry &reg,
                    const std::string &prefix) const
    {
        reg.registerGauge(prefix + ".lookups", [this] {
            return static_cast<double>(lookups_);
        });
        reg.registerGauge(prefix + ".hits", [this] {
            return static_cast<double>(hits_);
        });
        reg.registerGauge(prefix + ".loadFactor",
                          [this] { return loadFactor(); });
        reg.registerGauge(prefix + ".occupancy", [this] {
            return static_cast<double>(filter_.size());
        });
        reg.registerGauge(prefix + ".kicks", [this] {
            return static_cast<double>(filter_.kicks());
        });
        reg.registerGauge(prefix + ".observedFpRate",
                          [this] { return observedFpRate(); });
        reg.registerGauge(prefix + ".overflowEvictions", [this] {
            return static_cast<double>(overflowEvictions());
        });
        reg.registerGauge(prefix + ".groupMap.loadFactor", [this] {
            return groupCount_.loadFactor();
        });
        reg.registerGauge(prefix + ".groupMap.tombstones", [this] {
            return static_cast<double>(groupCount_.tombstones());
        });
    }

  private:
    std::uint64_t group(mem::Vpn vpn) const { return vpn >> maskBits_; }

    unsigned maskBits_;
    filter::CuckooFilter filter_;
    /** Exact per-group residency counts; updated on every page
     *  arrival/departure, so kept flat alongside the filter. */
    sim::FlatMap<std::uint64_t, std::uint32_t> groupCount_;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t falsePositives_ = 0;
};

} // namespace transfw::core

#endif // TRANSFW_TRANSFW_PRT_HPP
