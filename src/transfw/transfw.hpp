#ifndef TRANSFW_TRANSFW_TRANSFW_HPP
#define TRANSFW_TRANSFW_TRANSFW_HPP

/**
 * @file
 * Umbrella header: the public API of the Trans-FW library.
 *
 * Typical use:
 * @code
 *   #include "transfw/transfw.hpp"
 *   using namespace transfw;
 *
 *   cfg::SystemConfig baseline = sys::baselineConfig();
 *   cfg::SystemConfig fw = sys::transFwConfig();
 *   sys::SimResults a = sys::runApp("MT", baseline);
 *   sys::SimResults b = sys::runApp("MT", fw);
 *   double gain = sys::speedup(a, b);
 * @endcode
 */

#include "config/config.hpp"
#include "filter/cuckoo_filter.hpp"
#include "filter/metrohash.hpp"
#include "system/experiment.hpp"
#include "system/results.hpp"
#include "system/sweep.hpp"
#include "system/system.hpp"
#include "transfw/forwarding_table.hpp"
#include "transfw/prt.hpp"
#include "workload/apps.hpp"
#include "workload/ml_models.hpp"
#include "workload/synthetic.hpp"

#endif // TRANSFW_TRANSFW_TRANSFW_HPP
