#include "uvm/migration.hpp"

#include "sim/logging.hpp"
#include "sim/trace.hpp"
#include "transfw/prt.hpp"

namespace transfw::uvm {

#if TRANSFW_OBS
namespace {

/** Edge-tag a link traversal's timing split for the attribution
 *  timeline (node -1 is the host; ids >= numGpus are switch nodes). */
obs::AttribHop
toAttribHop(int from, int to, const ic::HopTiming &t)
{
    obs::AttribHop hop;
    hop.from = static_cast<std::int16_t>(from);
    hop.to = static_cast<std::int16_t>(to);
    hop.wait = static_cast<double>(t.wait);
    hop.ser = static_cast<double>(t.ser);
    hop.prop = static_cast<double>(t.prop);
    return hop;
}

} // namespace
#endif

MigrationEngine::MigrationEngine(sim::EventQueue &eq,
                                 const cfg::SystemConfig &config,
                                 mem::PageTable &central,
                                 std::vector<mmu::GpuIface *> gpus,
                                 ic::Network &net,
                                 core::FtCluster *ft)
    : SimObject(eq, "uvm.migration"), cfg_(config), central_(central),
      gpus_(std::move(gpus)), net_(net), ft_(ft)
{}

void
MigrationEngine::resolve(mmu::XlatPtr req, DoneCb done)
{
    obs::ProfScope prof(profiler_, obs::ProfBucket::Migration);
    auto it = busy_.find(req->vpn);
    if (it != busy_.end()) {
        it->second.push_back(
            Pending{std::move(req), std::move(done), curTick()});
        return;
    }
    busy_.emplace(req->vpn, std::deque<Pending>{});
    doResolve(std::move(req), std::move(done));
}

void
MigrationEngine::doResolve(mmu::XlatPtr req, DoneCb done)
{
    obs::ProfScope prof(profiler_, obs::ProfBucket::Migration);
    mem::PageInfo *info = central_.lookup(req->vpn);
    if (!info)
        sim::panic("fault on a page missing from the central page table");

    // The page may already be usable locally (PRT false negative, or a
    // waiter whose page arrived while it was queued).
    const mem::PageInfo *local =
        gpus_[static_cast<std::size_t>(req->gpu)]->localPageTable().lookup(
            req->vpn);
    if (local && (!req->isWrite || local->writable)) {
        ++stats_.alreadyLocal;
        complete(req->vpn,
                 tlb::TlbEntry{local->ppn, local->owner, local->writable,
                               local->remote},
                 std::move(done));
        return;
    }

    switch (cfg_.migrationPolicy) {
      case cfg::MigrationPolicy::OnTouch:
        migrate(std::move(req), *info, std::move(done));
        return;
      case cfg::MigrationPolicy::ReadReplicate:
        if (req->isWrite)
            writeUpgrade(std::move(req), *info, std::move(done));
        else
            replicate(std::move(req), *info, std::move(done));
        return;
      case cfg::MigrationPolicy::RemoteMap:
        remoteMap(std::move(req), *info, std::move(done));
        return;
    }
    sim::panic("unknown migration policy");
}

void
MigrationEngine::complete(mem::Vpn vpn, const tlb::TlbEntry &entry,
                          DoneCb done)
{
    done(entry);
    releasePage(vpn);
}

void
MigrationEngine::releasePage(mem::Vpn vpn)
{
    auto it = busy_.find(vpn);
    if (it == busy_.end())
        return;
    std::deque<Pending> waiters = std::move(it->second);
    busy_.erase(it);
    if (waiters.empty())
        return;
    // Re-submit waiters against the updated central entry; each may
    // trigger its own move (the ping-pong the paper measures). Time
    // parked behind the in-flight move is migration-serialization cost.
    schedule(0, [this, waiters = std::move(waiters)]() mutable {
        for (auto &pending : waiters) {
            mmu::charge(*pending.req, attrib_,
                        obs::AttribBucket::Migration,
                        static_cast<double>(curTick() - pending.parked),
                        curTick());
            resolve(std::move(pending.req), std::move(pending.done));
        }
    });
}

void
MigrationEngine::unmapFrom(int gpu, mem::Vpn vpn)
{
    mmu::GpuIface &gi = *gpus_[static_cast<std::size_t>(gpu)];
    const mem::PageInfo *pi = gi.localPageTable().lookup(vpn);
    if (!pi)
        return;
    bool was_remote = pi->remote;
    if (!was_remote)
        gi.frames().free(pi->ppn);
    gi.localPageTable().unmap(vpn);
    gi.invalidateTlbs(vpn);
    if (auto *prt = gi.prt())
        prt->pageDeparted(vpn);
    if (ft_ && !was_remote)
        ft_->pageDeparted(vpn, gpu);
}

tlb::TlbEntry
MigrationEngine::mapLocal(int gpu, mem::Vpn vpn, bool writable)
{
    mmu::GpuIface &gi = *gpus_[static_cast<std::size_t>(gpu)];
    mem::Ppn ppn = gi.frames().allocate();
    gi.localPageTable().map(
        vpn, mem::PageInfo{ppn, gpu, std::uint64_t{1} << gpu, writable, false});
    if (auto *prt = gi.prt())
        prt->pageArrived(vpn);
    if (ft_)
        ft_->pageArrived(vpn, gpu);
    return tlb::TlbEntry{ppn, gpu, writable, false};
}

tlb::TlbEntry
MigrationEngine::mapRemote(int gpu, mem::Vpn vpn,
                           const mem::PageInfo &info)
{
    mmu::GpuIface &gi = *gpus_[static_cast<std::size_t>(gpu)];
    gi.localPageTable().map(vpn, mem::PageInfo{info.ppn, info.owner,
                                               info.replicaMask, true,
                                               true});
    // The PRT tracks locally *translatable* pages, which includes
    // remote mappings; without this, every access to a mapped page
    // would keep short-circuiting to the host.
    if (auto *prt = gi.prt())
        prt->pageArrived(vpn);
    return tlb::TlbEntry{info.ppn, info.owner, true, true};
}

void
MigrationEngine::transfer(int from_owner, int to_gpu,
                          sim::EventQueue::Callback cb)
{
    transfer(from_owner, to_gpu, false, std::move(cb));
}

void
MigrationEngine::transfer(int from_owner, int to_gpu,
                          bool latency_overlapped,
                          sim::EventQueue::Callback cb,
                          mmu::XlatPtr traced)
{
    if (cfg_.oracle.zeroMigrationCost) {
        schedule(0, std::move(cb));
        return;
    }
    std::uint64_t bytes = cfg_.geometry().pageBytes();
    stats_.bytesMoved += bytes;
    if (latency_overlapped) {
        // Owner-push (Trans-FW remote hit): the data departed while the
        // success notification crossed to the host, so only the
        // serialization remains on this request's critical path.
        sim::Tick ser = std::max<sim::Tick>(
            1, static_cast<sim::Tick>(static_cast<double>(bytes) /
                                      256.0));
        schedule(ser, std::move(cb));
        return;
    }
    if (from_owner == mem::kCpuDevice) {
#if TRANSFW_OBS
        if (traced && attrib_) {
            ic::HopTiming t;
            net_.fromHost(to_gpu).send(bytes, std::move(cb), &t);
            attrib_->hop(traced->gpu, traced->id,
                         obs::AttribBucket::Migration,
                         toAttribHop(-1, to_gpu, t), /*counted=*/false,
                         curTick());
            return;
        }
#endif
        net_.fromHost(to_gpu).send(bytes, std::move(cb));
    } else {
#if TRANSFW_OBS
        if (traced && attrib_) {
            // The payload's fabric route, edge by edge, onto the
            // request's timeline. Uncounted: the Migration bucket is
            // still charged as the lump `arrival - start` by the
            // caller, and these hops only say where on the fabric the
            // payload spent it (the hook runs on the host lane, so the
            // engine's sink is safe to call directly).
            obs::AttribSink *sink = attrib_;
            mmu::XlatPtr req = traced;
            net_.sendPeerTraced(
                from_owner, to_gpu, bytes,
                [this, sink, req](int from, int to,
                                  const ic::HopTiming &t) {
                    sink->hop(req->gpu, req->id,
                              obs::AttribBucket::Migration,
                              toAttribHop(from, to, t),
                              /*counted=*/false, curTick());
                },
                std::move(cb));
            return;
        }
#endif
        net_.sendPeer(from_owner, to_gpu, bytes, std::move(cb));
    }
}

void
MigrationEngine::migrate(mmu::XlatPtr req, mem::PageInfo &info,
                         DoneCb done)
{
    ++stats_.migrations;
    int dst = req->gpu;
    int src = info.owner;
    TFW_TRACE(eventq(), "migration", "migrate vpn=%llx %d -> %d",
              static_cast<unsigned long long>(req->vpn), src, dst);

    // Invalidate every stale copy before the data moves.
    mmu::charge(*req, attrib_, obs::AttribBucket::Shootdown,
                static_cast<double>(cfg_.shootdownCost), curTick());
    for (int g = 0; g < net_.numGpus(); ++g) {
        if ((info.replicaMask >> g) & 1u)
            unmapFrom(g, req->vpn);
    }
    if (src != mem::kCpuDevice)
        unmapFrom(src, req->vpn);
    if (onOwnerChanged)
        onOwnerChanged(req->vpn);

    // When a remote lookup resolved the fault, the owner GPU already
    // performed the lookup and starts pushing the page immediately; the
    // shootdown overlaps the host notification instead of preceding the
    // transfer. The zero-migration-cost oracle (Fig. 4, third bar)
    // removes the whole data-movement latency, shootdown included.
    sim::Tick serial_shootdown =
        (req->resolvedByRemote || cfg_.oracle.zeroMigrationCost)
            ? 0
            : cfg_.shootdownCost;
    sim::Tick start = curTick() + serial_shootdown;
    schedule(serial_shootdown, [this, req, done = std::move(done), dst,
                                src, start]() mutable {
        transfer(src, dst, req->resolvedByRemote,
                 [this, req, done = std::move(done), dst,
                  start]() mutable {
            mmu::charge(*req, attrib_, obs::AttribBucket::Migration,
                        static_cast<double>(curTick() - start),
                        curTick());
            tlb::TlbEntry entry = mapLocal(dst, req->vpn, true);
            mem::PageInfo *info = central_.lookup(req->vpn);
            info->owner = dst;
            info->ppn = entry.ppn;
            info->replicaMask = std::uint64_t{1} << dst;
            info->writable = true;
            complete(req->vpn, entry, std::move(done));
        }, req);
    });
}

void
MigrationEngine::replicate(mmu::XlatPtr req, mem::PageInfo &info,
                           DoneCb done)
{
    ++stats_.replications;
    int dst = req->gpu;
    int src = info.owner;

    // ESI: the owner's exclusive copy downgrades to shared/read-only.
    if (src != mem::kCpuDevice && info.writable) {
        mmu::GpuIface &owner = *gpus_[static_cast<std::size_t>(src)];
        if (mem::PageInfo *pi = owner.localPageTable().lookup(req->vpn)) {
            pi->writable = false;
            owner.invalidateTlbs(req->vpn);
        }
    }
    info.writable = false;
    info.replicaMask |= std::uint64_t{1} << dst;
    if (onOwnerChanged)
        onOwnerChanged(req->vpn);

    sim::Tick start = curTick();
    transfer(src, dst, /*latency_overlapped=*/false,
             [this, req, done = std::move(done), dst,
              start]() mutable {
        mmu::charge(*req, attrib_, obs::AttribBucket::Migration,
                    static_cast<double>(curTick() - start), curTick());
        tlb::TlbEntry entry = mapLocal(dst, req->vpn, false);
        complete(req->vpn, entry, std::move(done));
    }, req);
}

void
MigrationEngine::writeUpgrade(mmu::XlatPtr req, mem::PageInfo &info,
                              DoneCb done)
{
    ++stats_.writeInvalidations;
    int dst = req->gpu;
    int src = info.owner;

    bool had_replica =
        gpus_[static_cast<std::size_t>(dst)]->localPageTable().lookup(
            req->vpn) != nullptr;

    // Invalidate every other holder (protection-fault handler).
    mmu::charge(*req, attrib_, obs::AttribBucket::Shootdown,
                static_cast<double>(cfg_.shootdownCost), curTick());
    for (int g = 0; g < net_.numGpus(); ++g) {
        if (g != dst && ((info.replicaMask >> g) & 1u))
            unmapFrom(g, req->vpn);
    }
    if (src != mem::kCpuDevice && src != dst)
        unmapFrom(src, req->vpn);
    if (onOwnerChanged)
        onOwnerChanged(req->vpn);

    auto finish = [this, req, done = std::move(done), dst]() mutable {
        tlb::TlbEntry entry;
        mmu::GpuIface &gi = *gpus_[static_cast<std::size_t>(dst)];
        if (mem::PageInfo *pi = gi.localPageTable().lookup(req->vpn)) {
            // Upgrade the existing replica in place.
            pi->writable = true;
            gi.invalidateTlbs(req->vpn);
            entry = tlb::TlbEntry{pi->ppn, dst, true, false};
            if (ft_)
                ft_->pageArrived(req->vpn, dst);
        } else {
            entry = mapLocal(dst, req->vpn, true);
        }
        mem::PageInfo *info = central_.lookup(req->vpn);
        info->owner = dst;
        info->ppn = entry.ppn;
        info->replicaMask = std::uint64_t{1} << dst;
        info->writable = true;
        complete(req->vpn, entry, std::move(done));
    };

    if (had_replica) {
        // Data already local; only the coherence actions are timed.
        schedule(cfg_.shootdownCost, std::move(finish));
    } else {
        sim::Tick start = curTick() + cfg_.shootdownCost;
        schedule(cfg_.shootdownCost,
                 [this, src, dst, start, req,
                  finish = std::move(finish)]() mutable {
                     transfer(src, dst, /*latency_overlapped=*/false,
                              [this, req, start,
                               finish = std::move(finish)]() mutable {
                                  mmu::charge(
                                      *req, attrib_,
                                      obs::AttribBucket::Migration,
                                      static_cast<double>(curTick() -
                                                          start),
                                      curTick());
                                  finish();
                              },
                              req);
                 });
    }
}

void
MigrationEngine::remoteMap(mmu::XlatPtr req, mem::PageInfo &info,
                           DoneCb done)
{
    ++stats_.remoteMappings;
    int dst = req->gpu;
    info.replicaMask |= std::uint64_t{1} << dst;
    mmu::charge(*req, attrib_, obs::AttribBucket::PteInstall,
                static_cast<double>(cfg_.memLatency), curTick());
    schedule(cfg_.memLatency, [this, req, done = std::move(done)]() mutable {
        // Re-look the entry up: central leaves are stable objects, but
        // holding a reference across an event boundary is fragile.
        mem::PageInfo *cur = central_.lookup(req->vpn);
        tlb::TlbEntry entry = mapRemote(req->gpu, req->vpn, *cur);
        complete(req->vpn, entry, std::move(done));
    });
}

void
MigrationEngine::noteRemoteAccess(mem::Vpn vpn, int gpu)
{
    std::uint64_t key = (vpn << 6) | static_cast<std::uint64_t>(gpu);
    if (++remoteAccess_[key] < cfg_.remoteMapMigrateThreshold)
        return;
    remoteAccess_[key] = 0;
    if (busy_.count(vpn))
        return; // a move is already in flight
    counterMigrate(vpn, gpu);
}

void
MigrationEngine::counterMigrate(mem::Vpn vpn, int gpu)
{
    mem::PageInfo *info = central_.lookup(vpn);
    if (!info || info->owner == gpu)
        return;
    ++stats_.counterMigrations;
    busy_.emplace(vpn, std::deque<Pending>{});

    // Tear down every remote mapping and the owner's copy, then move
    // the page to the hot GPU in the background.
    for (int g = 0; g < net_.numGpus(); ++g) {
        if ((info->replicaMask >> g) & 1u)
            unmapFrom(g, vpn);
    }
    if (info->owner != mem::kCpuDevice)
        unmapFrom(info->owner, vpn);
    if (onOwnerChanged)
        onOwnerChanged(vpn);

    int src = info->owner;
    schedule(cfg_.shootdownCost, [this, vpn, gpu, src]() {
        transfer(src, gpu, [this, vpn, gpu]() {
            tlb::TlbEntry entry = mapLocal(gpu, vpn, true);
            mem::PageInfo *info = central_.lookup(vpn);
            info->owner = gpu;
            info->ppn = entry.ppn;
            info->replicaMask = std::uint64_t{1} << gpu;
            info->writable = true;
            releasePage(vpn);
        });
    });
}

} // namespace transfw::uvm
