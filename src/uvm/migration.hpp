#ifndef TRANSFW_UVM_MIGRATION_HPP
#define TRANSFW_UVM_MIGRATION_HPP

#include <deque>
#include <functional>
#include <vector>

#include "config/config.hpp"
#include "interconnect/network.hpp"
#include "mem/page_table.hpp"
#include "mmu/gpu_iface.hpp"
#include "mmu/request.hpp"
#include "obs/metrics.hpp"
#include "obs/self_profiler.hpp"
#include "sim/flat_map.hpp"
#include "sim/sim_object.hpp"
#include "transfw/ft_cluster.hpp"

namespace transfw::uvm {

/**
 * Applies the configured page placement policy once a far fault's
 * translation is known: on-touch migration (default), read replication
 * with ESI coherence (Section V-D), or remote mapping with
 * access-counter promotion (Section V-E). Owns every functional side
 * effect of a page move — local page tables, frame allocators, TLB
 * shootdowns, PRT/FT maintenance, the central page table — plus the
 * timed page transfer over the interconnect.
 *
 * Page moves are serialized per VPN: a resolve (or counter-triggered
 * migration) for a busy page waits until the in-flight move finishes
 * and then re-evaluates against the updated central entry — which is
 * exactly how hot shared pages ping-pong.
 */
class MigrationEngine : public sim::SimObject
{
  public:
    struct Stats
    {
        std::uint64_t migrations = 0;
        std::uint64_t alreadyLocal = 0;
        std::uint64_t replications = 0;
        std::uint64_t writeInvalidations = 0;
        std::uint64_t remoteMappings = 0;
        std::uint64_t counterMigrations = 0;
        std::uint64_t bytesMoved = 0;
    };

    using DoneCb = std::function<void(const tlb::TlbEntry &)>;

    MigrationEngine(sim::EventQueue &eq, const cfg::SystemConfig &config,
                    mem::PageTable &central,
                    std::vector<mmu::GpuIface *> gpus, ic::Network &net,
                    core::FtCluster *ft);

    /**
     * Resolve the placement side of a fault whose central-table entry
     * is current. @p done receives the translation the requesting GPU
     * should install.
     */
    void resolve(mmu::XlatPtr req, DoneCb done);

    /** Remote-mapping access counter tap (from the data-access path). */
    void noteRemoteAccess(mem::Vpn vpn, int gpu);

    /** Fired whenever a page's owner changes (host MMU TLB shootdown). */
    std::function<void(mem::Vpn)> onOwnerChanged;

    const Stats &stats() const { return stats_; }

    /** Observability: mirror latency charges per request (nullable). */
    void attachAttribution(obs::AttribSink *attrib)
    {
        attrib_ = attrib;
    }

    /** Observability: charge host time to profiler buckets (nullable). */
    void attachProfiler(obs::SelfProfiler *profiler)
    {
        profiler_ = profiler;
    }

    /** Register live gauges under "<prefix>." (e.g. "host.migration"). */
    void
    registerMetrics(obs::MetricRegistry &reg,
                    const std::string &prefix) const
    {
        reg.registerGauge(prefix + ".migrations", [this] {
            return static_cast<double>(stats_.migrations);
        });
        reg.registerGauge(prefix + ".alreadyLocal", [this] {
            return static_cast<double>(stats_.alreadyLocal);
        });
        reg.registerGauge(prefix + ".replications", [this] {
            return static_cast<double>(stats_.replications);
        });
        reg.registerGauge(prefix + ".writeInvalidations", [this] {
            return static_cast<double>(stats_.writeInvalidations);
        });
        reg.registerGauge(prefix + ".remoteMappings", [this] {
            return static_cast<double>(stats_.remoteMappings);
        });
        reg.registerGauge(prefix + ".counterMigrations", [this] {
            return static_cast<double>(stats_.counterMigrations);
        });
        reg.registerGauge(prefix + ".bytesMoved", [this] {
            return static_cast<double>(stats_.bytesMoved);
        });
        reg.registerGauge(prefix + ".busyPages", [this] {
            return static_cast<double>(busy_.size());
        });
        reg.registerGauge(prefix + ".busy.loadFactor",
                          [this] { return busy_.loadFactor(); });
        reg.registerGauge(prefix + ".busy.tombstones", [this] {
            return static_cast<double>(busy_.tombstones());
        });
    }

  private:
    struct Pending
    {
        mmu::XlatPtr req;
        DoneCb done;
        sim::Tick parked = 0;
    };

    void doResolve(mmu::XlatPtr req, DoneCb done);
    void complete(mem::Vpn vpn, const tlb::TlbEntry &entry, DoneCb done);
    void releasePage(mem::Vpn vpn);

    void migrate(mmu::XlatPtr req, mem::PageInfo &info, DoneCb done);
    void replicate(mmu::XlatPtr req, mem::PageInfo &info, DoneCb done);
    void writeUpgrade(mmu::XlatPtr req, mem::PageInfo &info, DoneCb done);
    void remoteMap(mmu::XlatPtr req, mem::PageInfo &info, DoneCb done);
    void counterMigrate(mem::Vpn vpn, int gpu);

    /** Remove @p vpn from GPU @p gpu (PTE, frame, TLBs, PRT, FT). */
    void unmapFrom(int gpu, mem::Vpn vpn);

    /** Map @p vpn locally at @p gpu; returns the installed entry. */
    tlb::TlbEntry mapLocal(int gpu, mem::Vpn vpn, bool writable);

    /** Map @p vpn at @p gpu as a remote-mapped PTE onto @p info. */
    tlb::TlbEntry mapRemote(int gpu, mem::Vpn vpn,
                            const mem::PageInfo &info);

    /** Timed page transfer; @p cb fires on arrival. */
    void transfer(int from_owner, int to_gpu,
                  sim::EventQueue::Callback cb);
    /**
     * As above; @p latency_overlapped models owner-push transfers
     * whose propagation overlapped the host notification hop. When
     * @p traced names the request the payload serves, every traversed
     * edge is reported to the attribution timeline as an *uncounted*
     * hop (the Migration bucket keeps its lump-sum charge — the hops
     * localize it on the fabric without double-charging).
     */
    void transfer(int from_owner, int to_gpu, bool latency_overlapped,
                  sim::EventQueue::Callback cb,
                  mmu::XlatPtr traced = {});

    const cfg::SystemConfig &cfg_;
    mem::PageTable &central_;
    std::vector<mmu::GpuIface *> gpus_;
    ic::Network &net_;
    core::FtCluster *ft_;
    Stats stats_;
    obs::AttribSink *attrib_ = nullptr;
    obs::SelfProfiler *profiler_ = nullptr;

    /** Pages with a move in flight → resolves waiting on them.
     *  Checked on every resolve and every remote-access note, so flat. */
    sim::FlatMap<mem::Vpn, std::deque<Pending>> busy_;
    /** Remote-mapping access counters, bumped per remote data access. */
    sim::FlatMap<std::uint64_t, std::uint32_t> remoteAccess_;
};

} // namespace transfw::uvm

#endif // TRANSFW_UVM_MIGRATION_HPP
