#include "uvm/uvm_driver.hpp"

#include "sim/logging.hpp"
#include "sim/trace.hpp"

namespace transfw::uvm {

UvmDriver::UvmDriver(sim::EventQueue &eq, const cfg::SystemConfig &config,
                     mem::PageTable &central, MigrationEngine &engine,
                     core::FtCluster *ft, sim::Rng &rng)
    : SimObject(eq, "uvm_driver"), cfg_(config), central_(central),
      engine_(engine), ft_(ft), rng_(rng),
      pwc_(pwc::makePwc(config.oracle.infinitePwc ? pwc::PwcKind::Infinite
                                                  : config.pwcKind,
                        config.pwcEntries, config.geometry()))
{}

void
UvmDriver::handleFault(mmu::XlatPtr req)
{
    obs::ProfScope prof(profiler_, obs::ProfBucket::HostMmu);
    ++stats_.faults;
    req->tHostArrive = curTick();

    auto it = inflight_.find(req->vpn);
    if (it != inflight_.end()) {
        ++stats_.coalesced;
        it->second.push_back(std::move(req));
        return;
    }
    inflight_.emplace(req->vpn, std::vector<mmu::XlatPtr>{});

    buffer_.push_back(std::move(req));
    if (buffer_.size() >= cfg_.driverBatchSize) {
        sealBatch();
    } else if (!flushScheduled_) {
        flushScheduled_ = true;
        std::uint64_t epoch = flushEpoch_;
        schedule(cfg_.driverBatchWindow, [this, epoch]() {
            if (epoch == flushEpoch_ && !buffer_.empty())
                sealBatch();
        });
    }
}

void
UvmDriver::sealBatch()
{
    ++flushEpoch_;
    flushScheduled_ = false;
    Batch batch;
    batch.faults = std::move(buffer_);
    batch.sealed = curTick();
    buffer_.clear();
    batchQueue_.push_back(std::move(batch));
    processNextBatch();
}

void
UvmDriver::processNextBatch()
{
    if (processing_)
        return;
    // Drain-all-pending: when the driver goes idle with faults already
    // buffered, seal them immediately instead of waiting out the batch
    // window — batch sizes adapt to the arrival rate, as in the real
    // driver's fault-servicing loop.
    if (batchQueue_.empty() && !buffer_.empty()) {
        sealBatch();
        return;
    }
    if (batchQueue_.empty())
        return;
    processing_ = true;
    ++stats_.batches;
    Batch batch = std::move(batchQueue_.front());
    batchQueue_.pop_front();
    TFW_TRACE(eventq(), "driver", "batch %llu: %zu faults",
              static_cast<unsigned long long>(stats_.batches),
              batch.faults.size());
    stats_.batchSize.record(static_cast<double>(batch.faults.size()));
    batchStart_ = curTick();

    // Per-batch software overhead: fetching the fault buffer, sorting
    // and deduplicating the batch, taking the VA-space lock.
    schedule(cfg_.driverBatchFixedCost,
             [this, batch = std::move(batch)]() mutable {
                 for (auto &req : batch.faults)
                     walkQueue_.push_back(std::move(req));
                 dispatchWalks();
             });
}

void
UvmDriver::dispatchWalks()
{
    while (busyThreads_ < cfg_.driverWalkThreads && !walkQueue_.empty()) {
        mmu::XlatPtr req = std::move(walkQueue_.front());
        walkQueue_.pop_front();
        sim::Tick wait = curTick() - req->tHostArrive;
        charge(*req, attrib_, obs::AttribBucket::HostQueue,
               static_cast<double>(wait), curTick());
        if (spans_)
            spans_->record("driver.queue", req->gpu, req->id,
                           req->tHostArrive, curTick(), req->vpn);
        startWalk(std::move(req));
    }
    if (walkQueue_.empty() && processing_) {
        // All of this batch's faults are dispatched; the walks pipeline
        // into the next batch (the driver lock covers the fault-buffer
        // bookkeeping, not the walks), and migrations continue
        // asynchronously via DMA.
        processing_ = false;
        stats_.batchLatency.record(
            static_cast<double>(curTick() - batchStart_));
        if (spans_)
            spans_->record("driver.batch", obs::SpanRecorder::kHostPid,
                           stats_.batches, batchStart_, curTick());
        processNextBatch();
    }
}

void
UvmDriver::startWalk(mmu::XlatPtr req)
{
    ++outstandingWalks_;
    ++busyThreads_;

    if (ft_ && forwardToGpu && cfg_.transFw.enableForwarding &&
        !req->remoteForwarded) {
        // Trans-FW on driver faults: the FT lives in CPU memory; one
        // memory access probes it before committing a software walk.
        charge(*req, attrib_, obs::AttribBucket::FtProbe,
               static_cast<double>(cfg_.memLatency), curTick());
        schedule(cfg_.memLatency, [this, req]() mutable {
            obs::ProfScope prof(profiler_,
                                obs::ProfBucket::Forwarding);
            auto owner =
                ft_->findOwner(req->vpn, cfg_.numGpus, req->gpu);
            if (owner) {
                ++stats_.forwards;
                req->remoteForwarded = true;
                mmu::RemoteLookupPtr rl = mmu::makeRemoteLookup();
                rl->req = req;
                rl->targetGpu = *owner;
                rl->tForwarded = curTick();
#if TRANSFW_OBS
                if (attrib_)
                    attrib_->forwardLaunched(req->gpu, req->id,
                                             curTick());
#endif
                // Handed off: the thread is released and the fault no
                // longer gates this batch — the remote GPU completes it
                // asynchronously via remoteLookupDone().
                --busyThreads_;
                --outstandingWalks_;
                forwardToGpu(std::move(rl));
                dispatchWalks();
                return;
            }
            // FT miss: software walk on this thread.
            softwareWalk(std::move(req));
        });
        return;
    }

    softwareWalk(std::move(req));
}

void
UvmDriver::softwareWalk(mmu::XlatPtr req)
{
    obs::ProfScope prof(profiler_, obs::ProfBucket::HostMmu);
    int hit_level;
    {
        obs::ProfScope pwcProf(profiler_, obs::ProfBucket::TlbPwc);
        hit_level = pwc_->lookup(req->vpn);
    }
    mem::WalkResult walk;
    {
        obs::ProfScope walkProf(profiler_, obs::ProfBucket::PageWalk);
        walk = central_.walk(req->vpn, hit_level);
    }
    sim::Tick latency =
        cfg_.driverPerFaultCost +
        static_cast<sim::Tick>(walk.accesses) * cfg_.memLatency;
    charge(*req, attrib_, obs::AttribBucket::HostWalkMem,
           static_cast<double>(latency), curTick());
    if (spans_)
        spans_->record("driver.walk", req->gpu, req->id, curTick(),
                       curTick() + latency, req->vpn);
    int start_node =
        hit_level ? hit_level - 1 : central_.geometry().levels;
    schedule(latency, [this, req, walk, start_node]() mutable {
        obs::ProfScope prof(profiler_, obs::ProfBucket::HostMmu);
        {
            obs::ProfScope pwcProf(profiler_, obs::ProfBucket::TlbPwc);
            for (int level = walk.deepestFilled; level <= start_node;
                 ++level) {
                if (level >= central_.geometry().lowestCachedLevel())
                    pwc_->fill(req->vpn, level);
            }
        }
        walkDone(std::move(req));
    });
}

void
UvmDriver::walkDone(mmu::XlatPtr req)
{
    ++stats_.walks;
    --busyThreads_;
    --outstandingWalks_;
    req->translationResolved = true;
    engine_.resolve(req, [this, req](const tlb::TlbEntry &entry) {
        req->result = entry;
        resolved(std::move(req));
    });
    dispatchWalks();
}

void
UvmDriver::remoteLookupDone(mmu::RemoteLookupPtr rl)
{
    obs::ProfScope prof(profiler_, obs::ProfBucket::Forwarding);
    mmu::XlatPtr req = rl->req;
    if (spans_)
        spans_->record(rl->success ? "driver.forward"
                                   : "driver.forward.fail",
                       req->gpu, req->id, rl->tForwarded, curTick(),
                       req->vpn);
    if (!rl->success) {
        // FT false positive: fall back to a software walk (the
        // remoteForwarded flag keeps startWalk from re-forwarding).
        ++stats_.forwardFail;
#if TRANSFW_OBS
        if (attrib_)
            attrib_->forwardOutcome(req->gpu, req->id, false, false, 0,
                                    curTick());
#endif
        walkQueue_.push_back(std::move(req));
        dispatchWalks();
        return;
    }
    ++stats_.forwardSuccess;
#if TRANSFW_OBS
    if (attrib_) {
        // No software walk races a driver forward: success wins
        // outright, saving the estimated per-fault handling + walk.
        double est = static_cast<double>(
            cfg_.driverPerFaultCost +
            static_cast<sim::Tick>(cfg_.pageTableLevels) *
                cfg_.memLatency);
        attrib_->forwardOutcome(req->gpu, req->id, true, true, est,
                                curTick());
    }
#endif
    req->translationResolved = true;
    // The owner GPU pushes the page and replies to the requester
    // directly, exactly as on the hardware path.
    req->resolvedByRemote = true;
    engine_.resolve(req, [this, req](const tlb::TlbEntry &entry) {
        req->result = entry;
        resolved(std::move(req));
    });
    dispatchWalks();
}

void
UvmDriver::resolved(mmu::XlatPtr req)
{
    auto it = inflight_.find(req->vpn);
    if (it != inflight_.end()) {
        std::vector<mmu::XlatPtr> waiters = std::move(it->second);
        inflight_.erase(it);
        for (auto &waiter : waiters) {
            schedule(1, [this, waiter]() mutable {
                --stats_.faults; // re-dispatch, not a new fault
                handleFault(std::move(waiter));
            });
        }
    }
    onResolved(std::move(req));
}

void
UvmDriver::registerMetrics(obs::MetricRegistry &reg,
                           const std::string &prefix) const
{
    reg.registerGauge(prefix + ".faults", [this] {
        return static_cast<double>(stats_.faults);
    });
    reg.registerGauge(prefix + ".coalesced", [this] {
        return static_cast<double>(stats_.coalesced);
    });
    reg.registerGauge(prefix + ".batches", [this] {
        return static_cast<double>(stats_.batches);
    });
    reg.registerGauge(prefix + ".walks", [this] {
        return static_cast<double>(stats_.walks);
    });
    reg.registerGauge(prefix + ".forwards", [this] {
        return static_cast<double>(stats_.forwards);
    });
    reg.registerGauge(prefix + ".forwardSuccess", [this] {
        return static_cast<double>(stats_.forwardSuccess);
    });
    reg.registerGauge(prefix + ".forwardFail", [this] {
        return static_cast<double>(stats_.forwardFail);
    });
    reg.registerGauge(prefix + ".batchSizeMean",
                      [this] { return stats_.batchSize.mean(); });
    reg.registerGauge(prefix + ".batchLatencyMean",
                      [this] { return stats_.batchLatency.mean(); });
    reg.registerGauge(prefix + ".bufferedFaults", [this] {
        return static_cast<double>(buffer_.size());
    });
    reg.registerGauge(prefix + ".walkQueueDepth", [this] {
        return static_cast<double>(walkQueue_.size());
    });
    reg.registerGauge(prefix + ".busyThreads", [this] {
        return static_cast<double>(busyThreads_);
    });
    reg.registerGauge(prefix + ".inflight.loadFactor",
                      [this] { return inflight_.loadFactor(); });
    reg.registerGauge(prefix + ".inflight.tombstones", [this] {
        return static_cast<double>(inflight_.tombstones());
    });
    pwc_->registerMetrics(reg, prefix + ".pwc");
}

} // namespace transfw::uvm
