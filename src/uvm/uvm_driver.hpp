#ifndef TRANSFW_UVM_UVM_DRIVER_HPP
#define TRANSFW_UVM_UVM_DRIVER_HPP

#include <deque>
#include <functional>
#include <vector>

#include "config/config.hpp"
#include "mem/page_table.hpp"
#include "mmu/request.hpp"
#include "obs/metrics.hpp"
#include "obs/self_profiler.hpp"
#include "obs/span.hpp"
#include "pwc/pwc.hpp"
#include "sim/flat_map.hpp"
#include "sim/random.hpp"
#include "sim/sim_object.hpp"
#include "transfw/ft_cluster.hpp"
#include "uvm/migration.hpp"

namespace transfw::uvm {

/**
 * Software far-fault handling by the UVM driver (Section II-B): GPU
 * fault buffers alert the driver, which caches faults host-side and
 * services them in batches of 256. Batches are processed one at a
 * time (the driver's global lock — the scalability bottleneck Fig. 2
 * quantifies); within a batch, a pool of driver threads walks the
 * central page table, after which the MigrationEngine moves pages and
 * replies are sent. Section V-F's Trans-FW variant keeps the
 * Forwarding Table in CPU memory: the driver probes it before walking
 * and borrows the owner GPU's PT-walk instead when it hits.
 */
class UvmDriver : public sim::SimObject
{
  public:
    struct Stats
    {
        std::uint64_t faults = 0;
        std::uint64_t coalesced = 0;
        std::uint64_t batches = 0;
        std::uint64_t walks = 0;
        std::uint64_t forwards = 0;
        std::uint64_t forwardSuccess = 0;
        std::uint64_t forwardFail = 0; ///< FT false positives
        stats::Distribution batchSize;
        stats::Distribution batchLatency;
    };

    UvmDriver(sim::EventQueue &eq, const cfg::SystemConfig &config,
              mem::PageTable &central, MigrationEngine &engine,
              core::FtCluster *ft, sim::Rng &rng);

    /** A far fault arrived over the CPU-GPU interconnect. */
    void handleFault(mmu::XlatPtr req);

    /** Remote lookup notification (Trans-FW on driver faults). */
    void remoteLookupDone(mmu::RemoteLookupPtr rl);

    std::function<void(mmu::XlatPtr)> onResolved;
    std::function<void(mmu::RemoteLookupPtr)> forwardToGpu;

    const Stats &stats() const { return stats_; }

    /** Observability: record lifecycle spans into @p spans (nullable). */
    void attachSpans(obs::SpanRecorder *spans) { spans_ = spans; }
    /** Observability: mirror latency charges per request (nullable). */
    void attachAttribution(obs::AttribSink *attrib)
    {
        attrib_ = attrib;
    }
    /** Observability: charge host time to profiler buckets (nullable). */
    void attachProfiler(obs::SelfProfiler *profiler)
    {
        profiler_ = profiler;
    }
    /** Register live gauges under "<prefix>." (e.g. "host.driver"). */
    void registerMetrics(obs::MetricRegistry &reg,
                         const std::string &prefix) const;

  private:
    struct Batch
    {
        std::vector<mmu::XlatPtr> faults;
        sim::Tick sealed = 0;
    };

    void sealBatch();
    void processNextBatch();
    void dispatchWalks();
    void startWalk(mmu::XlatPtr req);
    void softwareWalk(mmu::XlatPtr req);
    void walkDone(mmu::XlatPtr req);
    void resolved(mmu::XlatPtr req);

    const cfg::SystemConfig &cfg_;
    mem::PageTable &central_;
    MigrationEngine &engine_;
    core::FtCluster *ft_;
    sim::Rng &rng_;
    /** The CPU's caches hold hot page-table lines; modeled as a walk
     *  cache for the driver's software walks. */
    std::unique_ptr<pwc::PageWalkCache> pwc_;

    std::vector<mmu::XlatPtr> buffer_; ///< faults awaiting a batch
    bool flushScheduled_ = false;
    std::uint64_t flushEpoch_ = 0;     ///< invalidates stale flush events

    std::deque<Batch> batchQueue_;
    bool processing_ = false;
    sim::Tick batchStart_ = 0;
    std::deque<mmu::XlatPtr> walkQueue_;
    int busyThreads_ = 0;
    int outstandingWalks_ = 0; ///< walks (local or remote) in flight

    /** Per-page coalescing across the whole driver. Touched once per
     *  far fault, so stored flat like the hardware-path MSHRs. */
    sim::FlatMap<mem::Vpn, std::vector<mmu::XlatPtr>> inflight_;

    Stats stats_;
    obs::SpanRecorder *spans_ = nullptr;
    obs::AttribSink *attrib_ = nullptr;
    obs::SelfProfiler *profiler_ = nullptr;
};

} // namespace transfw::uvm

#endif // TRANSFW_UVM_UVM_DRIVER_HPP
