#include "workload/apps.hpp"

#include <cmath>

#include "sim/logging.hpp"

namespace transfw::wl {

namespace {

/**
 * Each builder emulates the published memory-access structure of the
 * real application: the pattern class, the sharing degree of each data
 * structure (Fig. 7), the read/write mix on shared data (Fig. 24), and
 * a compute density that places the app on the compute- vs
 * memory-bound spectrum. The constants are calibrated so the PFPKI
 * ordering of Table III holds on the baseline configuration (see
 * tests/workload/test_calibration.cpp).
 */

SyntheticSpec
base(const char *name, const char *suite, const char *klass)
{
    SyntheticSpec spec;
    spec.name = name;
    spec.suite = suite;
    spec.patternClass = klass;
    spec.numCtas = 1024;
    spec.memOpsPerCta = 100;
    return spec;
}

/** AES-256: partitioned blocks, heavy per-byte compute, no sharing. */
SyntheticSpec
aes()
{
    SyntheticSpec spec = base("AES", "Hetero-Mark", "Partition");
    spec.computePerOp = 300;
    spec.regions = {
        {.name = "plaintext", .pages = 256, .weight = 0.495, .reuse = 25},
        {.name = "ciphertext", .pages = 256, .weight = 0.495,
         .writeFrac = 1.0, .reuse = 25},
        {.name = "keys", .pages = 8, .pattern = Pattern::Random,
         .shareDegree = 64, .weight = 0.01, .reuse = 2},
    };
    return spec;
}

/** FIR: streaming partitioned signal, huge reuse, tiny fault count. */
SyntheticSpec
fir()
{
    SyntheticSpec spec = base("FIR", "Hetero-Mark", "Adjacent");
    spec.computePerOp = 1600;
    spec.regions = {
        {.name = "signal", .pages = 256, .weight = 0.6, .reuse = 60,
         .haloProb = 0.02, .haloPages = 2},
        {.name = "filtered", .pages = 256, .weight = 0.4,
         .writeFrac = 1.0, .reuse = 60},
    };
    return spec;
}

/** KMeans: hot all-shared centroid pages + partitioned points. */
SyntheticSpec
km()
{
    SyntheticSpec spec = base("KM", "Hetero-Mark", "Adjacent");
    spec.computePerOp = 8;
    spec.phases = 6;
    spec.regions = {
        {.name = "centroids", .pages = 96, .pattern = Pattern::Random,
         .shareDegree = 64, .weight = 0.55, .writeFrac = 0.02, .reuse = 1},
        {.name = "points", .pages = 1536, .weight = 0.45, .reuse = 3},
    };
    return spec;
}

/** PageRank: random edge traversal over fully shared graph data. */
SyntheticSpec
pr()
{
    SyntheticSpec spec = base("PR", "Hetero-Mark", "Random");
    spec.computePerOp = 6;
    spec.phases = 4;
    spec.regions = {
        {.name = "edges", .pages = 2048, .pattern = Pattern::Random,
         .shareDegree = 64, .weight = 0.55, .reuse = 16},
        {.name = "ranks", .pages = 512, .pattern = Pattern::Random,
         .shareDegree = 64, .weight = 0.35, .writeFrac = 0.3, .reuse = 16},
        {.name = "outdeg", .pages = 256, .weight = 0.10, .reuse = 4},
    };
    return spec;
}

/** MatMul: partitioned A/C plus the B matrix gathered by everyone. */
SyntheticSpec
mm()
{
    SyntheticSpec spec = base("MM", "AMDAPPSDK", "Scatter-Gather");
    spec.computePerOp = 8;
    spec.regions = {
        {.name = "A", .pages = 768, .weight = 0.3, .reuse = 8},
        {.name = "B", .pages = 768, .shareDegree = 64, .weight = 0.5,
         .reuse = 16, .alignAcrossGpus = true},
        {.name = "C", .pages = 768, .weight = 0.2, .writeFrac = 1.0,
         .reuse = 8},
    };
    return spec;
}

/** Matrix transpose: column writes scatter across every partition. */
SyntheticSpec
mt()
{
    SyntheticSpec spec = base("MT", "AMDAPPSDK", "Scatter-Gather");
    spec.computePerOp = 3;
    spec.regions = {
        {.name = "in", .pages = 1024, .weight = 0.5, .reuse = 8},
        // Element-level column scatter coalesces into page-level
        // sequential runs; sharing comes from every GPU's CTAs sweeping
        // the same output pages from staggered offsets.
        {.name = "out", .pages = 1024, .shareDegree = 64, .weight = 0.5,
         .writeFrac = 1.0, .reuse = 1, .alignAcrossGpus = true,
         .alignSkewPages = 64},
    };
    return spec;
}

/** Simple convolution: input rows re-read by every GPU. */
SyntheticSpec
sc()
{
    SyntheticSpec spec = base("SC", "AMDAPPSDK", "Adjacent");
    spec.computePerOp = 2;
    spec.phases = 2;
    spec.regions = {
        {.name = "input", .pages = 768, .shareDegree = 64,
         .weight = 0.60, .reuse = 18, .alignAcrossGpus = true,
         .alignSkewPages = 16},
        {.name = "output", .pages = 768, .weight = 0.40,
         .writeFrac = 1.0, .reuse = 4},
    };
    return spec;
}

/** Stencil 2D: iterative sweeps whose slices rotate across GPUs. */
SyntheticSpec
st()
{
    SyntheticSpec spec = base("ST", "SHOC", "Adjacent");
    spec.computePerOp = 5;
    spec.phases = 5;
    spec.regions = {
        {.name = "grid_in", .pages = 1280, .weight = 0.5, .reuse = 3,
         .haloProb = 0.08, .haloPages = 2, .rotatePerPhase = true},
        {.name = "grid_out", .pages = 1280, .weight = 0.5,
         .writeFrac = 1.0, .reuse = 3, .rotatePerPhase = true},
    };
    return spec;
}

/** Conv2d (DNNMark): hot shared weights, halo'd activations. */
SyntheticSpec
conv2d()
{
    SyntheticSpec spec = base("Conv2d", "DNNMark", "Adjacent");
    spec.computePerOp = 10;
    spec.regions = {
        {.name = "weights", .pages = 24, .pattern = Pattern::Random,
         .shareDegree = 64, .weight = 0.30, .reuse = 1},
        {.name = "ifmap", .pages = 768, .weight = 0.45, .reuse = 3,
         .haloProb = 0.02, .haloPages = 2},
        {.name = "ofmap", .pages = 768, .shareDegree = 2,
         .weight = 0.25, .writeFrac = 1.0, .reuse = 4, .haloProb = 0.10,
         .haloPages = 64},
    };
    return spec;
}

/** Im2col: strided gather writes into pairwise-shared column buffer. */
SyntheticSpec
im2col()
{
    SyntheticSpec spec = base("Im2col", "DNNMark", "Scatter-Gather");
    spec.computePerOp = 10;
    spec.regions = {
        {.name = "image", .pages = 384, .weight = 0.45, .reuse = 4},
        {.name = "columns", .pages = 768, .shareDegree = 2,
         .weight = 0.55, .writeFrac = 1.0, .reuse = 4, .haloProb = 0.06,
         .haloPages = 64},
    };
    return spec;
}

} // namespace

const std::vector<AppInfo> &
appTable()
{
    static const std::vector<AppInfo> table = {
        {"AES", "AES-256 Encryption", "Hetero-Mark", "Partition", 0.016},
        {"FIR", "Finite Impulse Resp.", "Hetero-Mark", "Adjacent", 0.002},
        {"KM", "KMeans", "Hetero-Mark", "Adjacent", 3.636},
        {"PR", "PageRank", "Hetero-Mark", "Random", 9.244},
        {"MM", "Matrix Multiplication", "AMDAPPSDK", "Scatter-Gather",
         3.217},
        {"MT", "Matrix Transpose", "AMDAPPSDK", "Scatter-Gather", 34.273},
        {"SC", "Simple Convolution", "AMDAPPSDK", "Adjacent", 9.013},
        {"ST", "Stencil 2D", "SHOC", "Adjacent", 17.564},
        {"Conv2d", "Convolution 2D", "DNNMark", "Adjacent", 1.782},
        {"Im2col", "Image to Column", "DNNMark", "Scatter-Gather", 1.198},
    };
    return table;
}

SyntheticSpec
appSpec(const std::string &abbr, double scale)
{
    SyntheticSpec spec;
    if (abbr == "AES")
        spec = aes();
    else if (abbr == "FIR")
        spec = fir();
    else if (abbr == "KM")
        spec = km();
    else if (abbr == "PR")
        spec = pr();
    else if (abbr == "MM")
        spec = mm();
    else if (abbr == "MT")
        spec = mt();
    else if (abbr == "SC")
        spec = sc();
    else if (abbr == "ST")
        spec = st();
    else if (abbr == "Conv2d")
        spec = conv2d();
    else if (abbr == "Im2col")
        spec = im2col();
    else
        sim::fatal("unknown application: " + abbr);

    if (scale != 1.0) {
        spec.memOpsPerCta = std::max(
            spec.phases,
            static_cast<int>(std::lround(spec.memOpsPerCta * scale)));
    }
    return spec;
}

std::unique_ptr<SyntheticWorkload>
makeApp(const std::string &abbr, double scale)
{
    return std::make_unique<SyntheticWorkload>(appSpec(abbr, scale));
}

} // namespace transfw::wl
