#ifndef TRANSFW_WORKLOAD_APPS_HPP
#define TRANSFW_WORKLOAD_APPS_HPP

#include <memory>
#include <string>
#include <vector>

#include "workload/synthetic.hpp"

namespace transfw::wl {

/** Table III row: one of the ten evaluated applications. */
struct AppInfo
{
    std::string abbr;         ///< AES, FIR, KM, PR, MM, MT, SC, ST, ...
    std::string fullName;
    std::string suite;        ///< Hetero-Mark / AMDAPPSDK / SHOC / DNNMark
    std::string patternClass; ///< Partition / Adjacent / Random / Scatter-Gather
    double paperPfpki;        ///< PFPKI reported in Table III
};

/** The ten Table III applications, in paper order. */
const std::vector<AppInfo> &appTable();

/**
 * Build the synthetic model of application @p abbr (see DESIGN.md for
 * the substitution rationale). @p scale multiplies the op count per CTA
 * to trade simulation time for measurement stability.
 */
std::unique_ptr<SyntheticWorkload> makeApp(const std::string &abbr,
                                           double scale = 1.0);

/** The raw spec for @p abbr (exposed for tests and tuning). */
SyntheticSpec appSpec(const std::string &abbr, double scale = 1.0);

} // namespace transfw::wl

#endif // TRANSFW_WORKLOAD_APPS_HPP
