#include "workload/ml_models.hpp"

#include <cmath>
#include <vector>

#include "sim/logging.hpp"

namespace transfw::wl {

namespace {

struct LayerShape
{
    const char *name;
    double params;      ///< weight parameter count
    double activations; ///< output activation element count (batch 1)
};

/** VGG16 convolution + FC layers (Simonyan & Zisserman, 224x224). */
const std::vector<LayerShape> &
vgg16Layers()
{
    static const std::vector<LayerShape> layers = {
        {"conv1_1", 1728, 3211264},    {"conv1_2", 36864, 3211264},
        {"conv2_1", 73728, 1605632},   {"conv2_2", 147456, 1605632},
        {"conv3_1", 294912, 802816},   {"conv3_2", 589824, 802816},
        {"conv3_3", 589824, 802816},   {"conv4_1", 1179648, 401408},
        {"conv4_2", 2359296, 401408},  {"conv4_3", 2359296, 401408},
        {"conv5_1", 2359296, 100352},  {"conv5_2", 2359296, 100352},
        {"conv5_3", 2359296, 100352},  {"fc6", 102760448, 4096},
        {"fc7", 16777216, 4096},       {"fc8", 4096000, 1000},
    };
    return layers;
}

/** ResNet18 convolution layers plus the final FC. */
const std::vector<LayerShape> &
resnet18Layers()
{
    static const std::vector<LayerShape> layers = {
        {"conv1", 9408, 802816},
        {"l1.b1.c1", 36864, 802816},  {"l1.b1.c2", 36864, 802816},
        {"l1.b2.c1", 36864, 802816},  {"l1.b2.c2", 36864, 802816},
        {"l2.b1.c1", 73728, 401408},  {"l2.b1.c2", 147456, 401408},
        {"l2.b2.c1", 147456, 401408}, {"l2.b2.c2", 147456, 401408},
        {"l3.b1.c1", 294912, 200704}, {"l3.b1.c2", 589824, 200704},
        {"l3.b2.c1", 589824, 200704}, {"l3.b2.c2", 589824, 200704},
        {"l4.b1.c1", 1179648, 100352},{"l4.b1.c2", 2359296, 100352},
        {"l4.b2.c1", 2359296, 100352},{"l4.b2.c2", 2359296, 100352},
        {"fc", 512000, 1000},
    };
    return layers;
}

std::uint64_t
pagesFor(double elements, double scale)
{
    double bytes = elements * scale * 4.0; // fp32
    return std::max<std::uint64_t>(1,
        static_cast<std::uint64_t>(std::ceil(bytes / 4096.0)));
}

} // namespace

SyntheticSpec
mlModelSpec(const std::string &model, double param_scale, int iterations)
{
    const std::vector<LayerShape> *layers = nullptr;
    if (model == "VGG16")
        layers = &vgg16Layers();
    else if (model == "ResNet18")
        layers = &resnet18Layers();
    else
        sim::fatal("unknown ML model: " + model);

    const int num_layers = static_cast<int>(layers->size());
    // One iteration = forward (phases 0..L-1) then backward
    // (phases L..2L-1); iterations repeat the whole schedule.
    const int phases_per_iter = 2 * num_layers;

    SyntheticSpec spec;
    spec.name = model;
    spec.suite = "data-parallel training";
    spec.patternClass = "ML";
    spec.numCtas = 1024;
    spec.computePerOp = 12;
    spec.phases = phases_per_iter * iterations;
    spec.memOpsPerCta = 8 * spec.phases;

    for (int l = 0; l < num_layers; ++l) {
        const LayerShape &layer = (*layers)[static_cast<std::size_t>(l)];
        std::vector<int> fwd, bwd, both;
        for (int it = 0; it < iterations; ++it) {
            int fwd_phase = it * phases_per_iter + l;
            int bwd_phase =
                it * phases_per_iter + phases_per_iter - 1 - l;
            fwd.push_back(fwd_phase);
            bwd.push_back(bwd_phase);
            both.push_back(fwd_phase);
            both.push_back(bwd_phase);
        }
        spec.regions.push_back({
            .name = std::string(layer.name) + ".w",
            .pages = pagesFor(layer.params, param_scale),
            .shareDegree = 64,
            .weight = 0.4,
            .writeFrac = 0.0,
            .reuse = 3,
            .activePhases = both,
        });
        spec.regions.push_back({
            .name = std::string(layer.name) + ".grad",
            .pages = pagesFor(layer.params, param_scale),
            .shareDegree = 64,
            .weight = 0.25,
            .writeFrac = 0.8,
            .reuse = 3,
            .activePhases = bwd,
        });
        spec.regions.push_back({
            .name = std::string(layer.name) + ".act",
            .pages = pagesFor(layer.activations, param_scale * 8),
            .weight = 0.35,
            .writeFrac = 0.5,
            .reuse = 4,
            .activePhases = both,
        });
    }
    return spec;
}

std::unique_ptr<SyntheticWorkload>
makeMlModel(const std::string &model, double param_scale, int iterations)
{
    return std::make_unique<SyntheticWorkload>(
        mlModelSpec(model, param_scale, iterations));
}

} // namespace transfw::wl
