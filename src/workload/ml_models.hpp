#ifndef TRANSFW_WORKLOAD_ML_MODELS_HPP
#define TRANSFW_WORKLOAD_ML_MODELS_HPP

#include <memory>
#include <string>

#include "workload/synthetic.hpp"

namespace transfw::wl {

/**
 * Data-parallel training traces for the Section V-J study (Fig. 30).
 * Each model is built from its real layer shapes: every layer
 * contributes an all-shared read-mostly weight region (the broadcast
 * replica traffic), an all-shared written gradient region (allreduce),
 * and a partitioned activation region (each GPU's own micro-batch).
 * Layers execute as phases — forward in order, backward in reverse —
 * and parameter counts are scaled down by @p param_scale so footprints
 * stay simulable (documented in DESIGN.md).
 */
std::unique_ptr<SyntheticWorkload> makeMlModel(const std::string &model,
                                               double param_scale = 1.0 / 64,
                                               int iterations = 2);

/** The spec behind makeMlModel, exposed for tests. */
SyntheticSpec mlModelSpec(const std::string &model,
                          double param_scale = 1.0 / 64,
                          int iterations = 2);

} // namespace transfw::wl

#endif // TRANSFW_WORKLOAD_ML_MODELS_HPP
