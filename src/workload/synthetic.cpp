#include "workload/synthetic.hpp"

#include <algorithm>

#include "sim/logging.hpp"
#include "sim/random.hpp"

namespace transfw::wl {

namespace {

/**
 * Stream generator for one CTA of a SyntheticWorkload. All state is
 * local, so streams are independent of simulation interleaving.
 */
class SyntheticStream : public CtaStream
{
  public:
    SyntheticStream(const SyntheticWorkload &workload, int cta,
                    int num_gpus, std::uint64_t seed)
        : wl_(workload), spec_(workload.spec()), cta_(cta),
          numGpus_(num_gpus),
          rng_(seed ^ (0x9E3779B97F4A7C15ULL * (cta + 1))),
          cursors_(spec_.regions.size(), 0),
          randPos_(spec_.regions.size(), 0),
          randEpoch_(spec_.regions.size(), 0)
    {
        home_ = homeGpu(cta_, spec_.numCtas, numGpus_);
        opsPerPhase_ =
            std::max(1, spec_.memOpsPerCta / std::max(1, spec_.phases));
        enterPhase(0);
    }

    bool
    next(MemOp &op) override
    {
        if (opIndex_ >= spec_.memOpsPerCta)
            return false;
        int phase = std::min(spec_.phases - 1, opIndex_ / opsPerPhase_);
        if (phase != phase_)
            enterPhase(phase);

        std::size_t region = pickRegion();
        const RegionSpec &spec = spec_.regions[region];

        op.computeGap = spec_.computePerOp;
        op.instructions = 1 + spec_.computePerOp;
        op.numPages = 0;

        mem::Vpn first = genPage(region);
        addPage(op, first, rng_.chance(spec.writeFrac));
        for (int extra = 1; extra < spec_.pagesPerOp; ++extra) {
            // Coalesced neighbours: the wavefront's lanes spill onto
            // the next page of the same structure.
            std::uint64_t pos =
                (first - wl_.regionBase(region)) / spec_.vaSpread;
            mem::Vpn vpn = wl_.pageVpn(
                region, (pos + static_cast<std::uint64_t>(extra)) %
                            spec.pages);
            addPage(op, vpn, rng_.chance(spec.writeFrac));
        }

        ++opIndex_;
        return true;
    }

  private:
    static void
    addPage(MemOp &op, mem::Vpn vpn, bool write)
    {
        for (int i = 0; i < op.numPages; ++i) {
            if (op.pages[static_cast<std::size_t>(i)].vpn == vpn) {
                op.pages[static_cast<std::size_t>(i)].write |= write;
                return;
            }
        }
        if (op.numPages < MemOp::kMaxPages)
            op.pages[static_cast<std::size_t>(op.numPages++)] = {vpn, write};
    }

    void
    enterPhase(int phase)
    {
        phase_ = phase;
        activeWeights_.assign(spec_.regions.size(), 0.0);
        double total = 0.0;
        for (std::size_t r = 0; r < spec_.regions.size(); ++r) {
            const auto &region = spec_.regions[r];
            bool active =
                region.activePhases.empty() ||
                std::find(region.activePhases.begin(),
                          region.activePhases.end(),
                          phase) != region.activePhases.end();
            if (active) {
                total += region.weight;
                activeWeights_[r] = total;
            }
        }
        if (total == 0.0)
            sim::fatal("workload phase with no active regions: " +
                       spec_.name);
        activeTotal_ = total;
    }

    std::size_t
    pickRegion()
    {
        double x = rng_.uniform() * activeTotal_;
        for (std::size_t r = 0; r < activeWeights_.size(); ++r) {
            if (activeWeights_[r] > 0.0 && x < activeWeights_[r])
                return r;
        }
        return activeWeights_.size() - 1;
    }

    /** The GPU used for slicing, including per-phase rotation. */
    int
    sliceGpu(const RegionSpec &spec) const
    {
        if (!spec.rotatePerPhase)
            return home_;
        return (home_ + phase_) % numGpus_;
    }

    mem::Vpn
    genPage(std::size_t region)
    {
        const RegionSpec &spec = spec_.regions[region];
        int gpu = sliceGpu(spec);

        int degree = std::clamp(spec.shareDegree, 1, numGpus_);
        int num_groups = (numGpus_ + degree - 1) / degree;
        int group = gpu / degree;

        std::uint64_t slice_len =
            std::max<std::uint64_t>(1, spec.pages / num_groups);
        std::uint64_t slice_start =
            static_cast<std::uint64_t>(group) * spec.pages / num_groups;

        // Halo: occasionally reach into the neighbouring GPU's portion
        // of the region (only meaningful for partitioned regions).
        if (spec.haloProb > 0.0 && rng_.chance(spec.haloProb)) {
            std::uint64_t gpu_end =
                static_cast<std::uint64_t>(gpu + 1) * spec.pages / numGpus_;
            std::uint64_t h = rng_.range(std::max<std::uint32_t>(
                1, spec.haloPages));
            return wl_.pageVpn(region, (gpu_end + h) % spec.pages);
        }

        // This CTA's starting offset within the group slice. Aligned
        // regions give CTA k of every GPU the same offset; otherwise
        // offsets stagger across the whole group. Either way, offsets
        // snap to 8-page blocks so fingerprint-group residency stays
        // coherent as pages migrate.
        std::uint64_t sub_start;
        if (spec.alignAcrossGpus) {
            int gpu_first = static_cast<int>(
                static_cast<long long>(gpu) * spec_.numCtas / numGpus_);
            int gpu_ctas = std::max(
                1, static_cast<int>(static_cast<long long>(gpu + 1) *
                                        spec_.numCtas / numGpus_) -
                       gpu_first);
            sub_start = ((static_cast<std::uint64_t>(cta_ - gpu_first) *
                              slice_len / gpu_ctas +
                          static_cast<std::uint64_t>(gpu) *
                              spec.alignSkewPages) %
                         slice_len) &
                        ~7ULL;
        } else {
            int first_cta = firstCtaOfGroup(group, degree);
            int group_ctas = ctasInGroup(group, degree);
            sub_start = (static_cast<std::uint64_t>(cta_ - first_cta) *
                         slice_len / std::max(1, group_ctas)) &
                        ~7ULL;
        }

        std::uint64_t &cursor = cursors_[region];
        std::uint64_t steps = cursor / std::max<std::uint32_t>(1, spec.reuse);
        ++cursor;

        std::uint64_t pos;
        switch (spec.pattern) {
          case Pattern::Sequential:
            pos = (sub_start + steps) % slice_len;
            break;
          case Pattern::Strided:
            pos = (sub_start + steps * spec.stride) % slice_len;
            break;
          case Pattern::Random:
          default:
            // Random with bursts: stay on one page for `reuse` ops
            // (real irregular kernels still have intra-wavefront
            // temporal locality between page migrations).
            if (randEpoch_[region] != steps + 1) {
                randPos_[region] = rng_.range(slice_len);
                randEpoch_[region] = steps + 1;
            }
            pos = randPos_[region];
            break;
        }
        return wl_.pageVpn(region, slice_start + pos);
    }

    int
    firstCtaOfGroup(int group, int degree) const
    {
        int first_gpu = group * degree;
        // First CTA whose home GPU is first_gpu.
        long long n = static_cast<long long>(first_gpu) * spec_.numCtas;
        int cta = static_cast<int>((n + numGpus_ - 1) / numGpus_);
        return cta;
    }

    int
    ctasInGroup(int group, int degree) const
    {
        int next_first = firstCtaOfGroup(group + 1, degree);
        next_first = std::min(next_first, spec_.numCtas);
        return std::max(1, next_first - firstCtaOfGroup(group, degree));
    }

    const SyntheticWorkload &wl_;
    const SyntheticSpec &spec_;
    int cta_;
    int numGpus_;
    int home_ = 0;
    sim::Rng rng_;
    std::vector<std::uint64_t> cursors_;
    std::vector<std::uint64_t> randPos_;
    std::vector<std::uint64_t> randEpoch_; ///< steps+1 of last redraw

    std::vector<double> activeWeights_;
    double activeTotal_ = 1.0;
    int opIndex_ = 0;
    int opsPerPhase_ = 1;
    int phase_ = -1;
};

} // namespace

SyntheticWorkload::SyntheticWorkload(SyntheticSpec spec, mem::Vpn base_vpn)
    : spec_(std::move(spec)), baseVpn_(base_vpn)
{
    if (spec_.regions.empty())
        sim::fatal("synthetic workload needs at least one region: " +
                   spec_.name);
    if (spec_.vaSpread == 0)
        sim::fatal("vaSpread must be at least 1: " + spec_.name);
    mem::Vpn next = baseVpn_;
    for (const auto &region : spec_.regions) {
        regionBase_.push_back(next);
        // Leave one spread unit of slack between regions so they never
        // interleave within a page-table node.
        next += (region.pages + 1) * spec_.vaSpread;
    }
}

std::unique_ptr<CtaStream>
SyntheticWorkload::makeStream(int cta, int num_gpus,
                              std::uint64_t seed) const
{
    return std::make_unique<SyntheticStream>(*this, cta, num_gpus, seed);
}

void
SyntheticWorkload::forEachPage(
    const std::function<void(mem::Vpn)> &fn) const
{
    for (std::size_t r = 0; r < spec_.regions.size(); ++r)
        for (std::uint64_t i = 0; i < spec_.regions[r].pages; ++i)
            fn(pageVpn(r, i));
}

mem::DeviceId
SyntheticWorkload::initialOwner(mem::Vpn vpn4k, int num_gpus) const
{
    for (std::size_t r = 0; r < spec_.regions.size(); ++r) {
        const RegionSpec &region = spec_.regions[r];
        mem::Vpn base = regionBase_[r];
        if (vpn4k < base ||
            vpn4k >= base + region.pages * spec_.vaSpread)
            continue;
        if ((vpn4k - base) % spec_.vaSpread != 0)
            continue;
        std::uint64_t offset = (vpn4k - base) / spec_.vaSpread;
        int degree = std::clamp(region.shareDegree, 1, num_gpus);
        int num_groups = (num_gpus + degree - 1) / degree;
        // Which group's slice holds this page?
        int group = static_cast<int>(offset * num_groups / region.pages);
        group = std::min(group, num_groups - 1);
        // Interleave the group slice across the group's GPUs in blocks
        // of 8 application pages, so each PRT/FT fingerprint group
        // (8 pages) starts with a single owner.
        int member = static_cast<int>((offset / 8) % degree);
        int gpu = group * degree + member;
        return std::min(gpu, num_gpus - 1);
    }
    return mem::kCpuDevice;
}

} // namespace transfw::wl
