#ifndef TRANSFW_WORKLOAD_SYNTHETIC_HPP
#define TRANSFW_WORKLOAD_SYNTHETIC_HPP

#include <string>
#include <vector>

#include "workload/workload.hpp"

namespace transfw::wl {

/** Per-page access-order pattern within a region slice. */
enum class Pattern
{
    Sequential, ///< walk the slice in order (with per-page reuse)
    Strided,    ///< stride through the slice (scatter-gather)
    Random,     ///< uniform random within the slice
};

/**
 * One logical data structure of a synthetic application. The region's
 * pages are divided among *GPU groups* of @ref shareDegree consecutive
 * GPUs: shareDegree 1 gives fully partitioned data (each GPU its own
 * slice), shareDegree >= numGpus gives data shared by every GPU.
 * @ref haloProb adds boundary touches into the neighbouring GPU's slice
 * (the "adjacent" pattern class), and @ref rotatePerPhase shifts the
 * slice ownership by one GPU each phase (iterative redistribution).
 */
struct RegionSpec
{
    std::string name;
    std::uint64_t pages = 1024;
    Pattern pattern = Pattern::Sequential;
    int shareDegree = 1;
    double weight = 1.0;      ///< probability mass of ops hitting this region
    double writeFrac = 0.0;
    std::uint32_t reuse = 4;  ///< consecutive ops per page before advancing
    std::uint64_t stride = 1; ///< slice stride in pages (Pattern::Strided)
    double haloProb = 0.0;
    std::uint32_t haloPages = 2;
    bool rotatePerPhase = false;
    /**
     * Give CTA k of *every* GPU the same sweep offset (instead of
     * staggering offsets globally), so the GPUs touch the same pages
     * nearly in lockstep — the concurrent write-sharing of a
     * transpose, where block k of each GPU targets the same output
     * band. Maximizes ping-pong on shared regions.
     */
    bool alignAcrossGpus = false;
    /**
     * Per-GPU page offset added to aligned sweeps: GPU g starts
     * g × alignSkewPages into the sequence, so pages hand off between
     * GPUs in a pipeline instead of colliding head-on. Ownership still
     * churns (same fault count) but same-page collision chains shorten.
     */
    std::uint32_t alignSkewPages = 0;
    /** Phases in which this region is accessed (empty = all phases). */
    std::vector<int> activePhases;
};

/** Full description of a synthetic multi-GPU application. */
struct SyntheticSpec
{
    std::string name;
    std::string suite;        ///< benchmark suite of the modeled app
    std::string patternClass; ///< Table III access-pattern class
    int numCtas = 512;
    int memOpsPerCta = 160;
    std::uint32_t computePerOp = 2; ///< compute instructions between ops
    int pagesPerOp = 1;             ///< coalesced distinct pages per op
    int phases = 1;

    /**
     * VA distance (in pages) between consecutive pages of a region.
     * Real applications run GB-scale footprints where one PW-cache L2
     * entry covers only a sliver of the data; spreading the simulated
     * pages across the VA space reproduces that PW-cache pressure
     * without simulating the full footprint (see DESIGN.md).
     */
    std::uint64_t vaSpread = 512;

    std::vector<RegionSpec> regions;

    std::uint64_t
    totalPages() const
    {
        std::uint64_t total = 0;
        for (const auto &r : regions)
            total += r.pages;
        return total;
    }
};

/**
 * Workload driven by a SyntheticSpec. Each CTA owns an independent,
 * deterministically seeded RNG, so streams are reproducible and
 * independent of scheduling order.
 */
class SyntheticWorkload : public Workload
{
  public:
    explicit SyntheticWorkload(SyntheticSpec spec, mem::Vpn base_vpn = 0x100);

    const std::string &name() const override { return spec_.name; }
    int numCtas() const override { return spec_.numCtas; }
    std::uint64_t footprintPages() const override
    {
        return spec_.totalPages();
    }
    mem::Vpn baseVpn() const override { return baseVpn_; }

    std::unique_ptr<CtaStream> makeStream(int cta, int num_gpus,
                                          std::uint64_t seed) const override;

    /**
     * First-touch owner: pages of a partitioned region belong to the
     * GPU owning their slice; pages of a region shared by a group are
     * interleaved across the group's GPUs.
     */
    mem::DeviceId initialOwner(mem::Vpn vpn4k,
                               int num_gpus) const override;

    const SyntheticSpec &spec() const { return spec_; }

    /** First VPN of region @p r. */
    mem::Vpn regionBase(std::size_t r) const { return regionBase_[r]; }

    /** VPN of page @p pos of region @p r (VA-spread layout). */
    mem::Vpn
    pageVpn(std::size_t r, std::uint64_t pos) const
    {
        return regionBase_[r] + pos * spec_.vaSpread;
    }

    void forEachPage(
        const std::function<void(mem::Vpn)> &fn) const override;

  private:
    SyntheticSpec spec_;
    mem::Vpn baseVpn_;
    std::vector<mem::Vpn> regionBase_;
    std::vector<double> cumWeight_; ///< cumulative region-select weights
};

} // namespace transfw::wl

#endif // TRANSFW_WORKLOAD_SYNTHETIC_HPP
