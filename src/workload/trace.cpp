#include "workload/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/logging.hpp"

namespace transfw::wl {

namespace {

/** Replays one CTA's pre-parsed op list. */
class TraceStream : public CtaStream
{
  public:
    explicit TraceStream(const std::vector<MemOp> &ops) : ops_(ops) {}

    bool
    next(MemOp &op) override
    {
        if (index_ >= ops_.size())
            return false;
        op = ops_[index_++];
        return true;
    }

  private:
    const std::vector<MemOp> &ops_;
    std::size_t index_ = 0;
};

} // namespace

TraceWorkload::TraceWorkload(const std::string &path) : name_(path)
{
    std::ifstream in(path);
    if (!in)
        sim::fatal("cannot open trace file: " + path);

    std::string line;
    bool have_header = false;
    std::vector<std::pair<mem::Vpn, int>> touches; // (vpn, first cta)

    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::string_view view(line);
        if (auto hash = view.find('#'); hash != std::string_view::npos)
            view = view.substr(0, hash);
        std::istringstream is{std::string(view)};
        std::string first;
        if (!(is >> first))
            continue; // blank/comment line

        if (!have_header) {
            if (first != "trace-v1" || !(is >> numCtas_) || numCtas_ <= 0)
                sim::fatal(sim::strfmt(
                    "%s:%d: expected 'trace-v1 <numCtas>'", path.c_str(),
                    line_no));
            opsPerCta_.resize(static_cast<std::size_t>(numCtas_));
            have_header = true;
            continue;
        }

        int cta = 0;
        MemOp op;
        try {
            cta = std::stoi(first);
        } catch (...) {
            cta = -1;
        }
        std::uint64_t gap;
        if (cta < 0 || cta >= numCtas_ || !(is >> gap))
            sim::fatal(sim::strfmt("%s:%d: malformed op line",
                                   path.c_str(), line_no));
        op.computeGap = static_cast<std::uint32_t>(gap);
        op.instructions = 1 + op.computeGap;
        std::string access;
        while (is >> access && op.numPages < MemOp::kMaxPages) {
            if (access.size() < 2 ||
                (access[0] != 'r' && access[0] != 'w'))
                sim::fatal(sim::strfmt("%s:%d: bad access '%s'",
                                       path.c_str(), line_no,
                                       access.c_str()));
            mem::Vpn vpn = 0;
            try {
                vpn = std::stoull(access.substr(1), nullptr, 16);
            } catch (...) {
                sim::fatal(sim::strfmt("%s:%d: bad vpn in '%s'",
                                       path.c_str(), line_no,
                                       access.c_str()));
            }
            op.pages[static_cast<std::size_t>(op.numPages++)] = {
                vpn, access[0] == 'w'};
            touches.emplace_back(vpn, cta);
        }
        if (op.numPages == 0)
            sim::fatal(sim::strfmt("%s:%d: op with no accesses",
                                   path.c_str(), line_no));
        opsPerCta_[static_cast<std::size_t>(cta)].push_back(op);
    }
    if (!have_header)
        sim::fatal("empty trace file: " + path);

    // Distinct pages + first toucher, preserving first-touch order.
    std::vector<std::pair<mem::Vpn, int>> first_by_page;
    {
        std::vector<std::pair<mem::Vpn, int>> sorted = touches;
        std::stable_sort(sorted.begin(), sorted.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        for (const auto &t : sorted) {
            if (first_by_page.empty() ||
                first_by_page.back().first != t.first)
                first_by_page.push_back(t);
        }
    }
    for (const auto &[vpn, cta] : first_by_page) {
        pages_.push_back(vpn);
        firstToucher_.push_back(cta);
    }
    baseVpn_ = pages_.empty() ? 0 : pages_.front();
}

std::unique_ptr<CtaStream>
TraceWorkload::makeStream(int cta, int num_gpus, std::uint64_t seed) const
{
    (void)num_gpus;
    (void)seed;
    return std::make_unique<TraceStream>(
        opsPerCta_[static_cast<std::size_t>(cta)]);
}

mem::DeviceId
TraceWorkload::initialOwner(mem::Vpn vpn4k, int num_gpus) const
{
    auto it = std::lower_bound(pages_.begin(), pages_.end(), vpn4k);
    if (it == pages_.end() || *it != vpn4k)
        return mem::kCpuDevice;
    int cta = firstToucher_[static_cast<std::size_t>(
        std::distance(pages_.begin(), it))];
    return homeGpu(cta, numCtas_, num_gpus);
}

void
TraceWorkload::forEachPage(
    const std::function<void(mem::Vpn)> &fn) const
{
    for (mem::Vpn vpn : pages_)
        fn(vpn);
}

std::uint64_t
TraceWorkload::totalOps() const
{
    std::uint64_t total = 0;
    for (const auto &ops : opsPerCta_)
        total += ops.size();
    return total;
}

void
recordTrace(const Workload &workload, int num_gpus, std::uint64_t seed,
            const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        sim::fatal("cannot write trace file: " + path);
    out << "# recorded from workload '" << workload.name() << "'\n";
    out << "trace-v1 " << workload.numCtas() << "\n";
    for (int cta = 0; cta < workload.numCtas(); ++cta) {
        auto stream = workload.makeStream(cta, num_gpus, seed);
        MemOp op;
        while (stream->next(op)) {
            out << cta << ' ' << op.computeGap;
            for (int i = 0; i < op.numPages; ++i) {
                const PageAccess &access =
                    op.pages[static_cast<std::size_t>(i)];
                out << ' ' << (access.write ? 'w' : 'r') << std::hex
                    << access.vpn << std::dec;
            }
            out << '\n';
        }
    }
}

} // namespace transfw::wl
