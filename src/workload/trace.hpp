#ifndef TRANSFW_WORKLOAD_TRACE_HPP
#define TRANSFW_WORKLOAD_TRACE_HPP

#include <string>
#include <vector>

#include "workload/workload.hpp"

namespace transfw::wl {

/**
 * A workload replayed from a trace file, so users can drive the
 * simulator with access streams captured elsewhere (an instrumented
 * application, another simulator, or recordTrace() below).
 *
 * Text format, `#` comments allowed:
 *
 *   trace-v1 <numCtas>
 *   <cta> <computeGap> <r|w><vpn-hex> [<r|w><vpn-hex> ...]
 *
 * One line per coalesced memory op, ops of a CTA in program order
 * (lines of different CTAs may interleave). VPNs are 4 KB-page numbers
 * in hex. The footprint is the set of distinct VPNs; a page's initial
 * owner is the home GPU of the first CTA that touches it.
 */
class TraceWorkload : public Workload
{
  public:
    /** Parse @p path; fatal on malformed input. */
    explicit TraceWorkload(const std::string &path);

    const std::string &name() const override { return name_; }
    int numCtas() const override { return numCtas_; }
    std::uint64_t footprintPages() const override
    {
        return pages_.size();
    }
    mem::Vpn baseVpn() const override { return baseVpn_; }

    std::unique_ptr<CtaStream> makeStream(int cta, int num_gpus,
                                          std::uint64_t seed) const override;

    mem::DeviceId initialOwner(mem::Vpn vpn4k,
                               int num_gpus) const override;

    void forEachPage(
        const std::function<void(mem::Vpn)> &fn) const override;

    /** Total ops across all CTAs (for tests/sanity). */
    std::uint64_t totalOps() const;

  private:
    friend class TraceStream;

    std::string name_;
    int numCtas_ = 0;
    mem::Vpn baseVpn_ = 0;
    std::vector<std::vector<MemOp>> opsPerCta_;
    std::vector<mem::Vpn> pages_;          ///< sorted distinct VPNs
    std::vector<int> firstToucher_;        ///< parallel to pages_
};

/**
 * Record @p workload's streams (for @p num_gpus GPUs, seeded with
 * @p seed) into a trace file readable by TraceWorkload. Useful for
 * freezing a synthetic workload into a portable artifact.
 */
void recordTrace(const Workload &workload, int num_gpus,
                 std::uint64_t seed, const std::string &path);

} // namespace transfw::wl

#endif // TRANSFW_WORKLOAD_TRACE_HPP
