#ifndef TRANSFW_WORKLOAD_WORKLOAD_HPP
#define TRANSFW_WORKLOAD_WORKLOAD_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "mem/address.hpp"

namespace transfw::wl {

/** One coalesced page touch issued by a wavefront. */
struct PageAccess
{
    mem::Vpn vpn = 0;
    bool write = false;
};

/**
 * One wavefront step: some compute cycles followed by a coalesced
 * memory instruction touching up to kMaxPages distinct pages.
 */
struct MemOp
{
    static constexpr int kMaxPages = 4;

    std::uint32_t computeGap = 0;   ///< compute cycles before the access
    std::uint32_t instructions = 1; ///< instructions this step represents
    std::array<PageAccess, kMaxPages> pages{};
    int numPages = 0;
};

/**
 * The per-CTA instruction stream. Streams are cheap generators — ops
 * are produced on demand, never materialized as traces.
 */
class CtaStream
{
  public:
    virtual ~CtaStream() = default;

    /** Produce the next op. @return false when the CTA has finished. */
    virtual bool next(MemOp &op) = 0;
};

/**
 * A multi-GPU application: a set of CTAs over a UVM footprint. The CTA
 * scheduler places CTAs greedily (fill one GPU's CUs, then the next),
 * so a CTA's *home GPU* — used by the generators to slice partitioned
 * data — is its index-proportional position: homeGpu = cta·G/numCtas.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const std::string &name() const = 0;
    virtual int numCtas() const = 0;

    /** Pages of UVM footprint, initially resident on the CPU. */
    virtual std::uint64_t footprintPages() const = 0;

    /** First VPN of the footprint (pages are contiguous from here). */
    virtual mem::Vpn baseVpn() const = 0;

    /**
     * Create the generator for CTA @p cta in a system with
     * @p num_gpus GPUs, seeded deterministically from @p seed.
     */
    virtual std::unique_ptr<CtaStream>
    makeStream(int cta, int num_gpus, std::uint64_t seed) const = 0;

    /**
     * The device expected to touch @p vpn4k (4 KB units) first, used by
     * the system's steady-state pre-placement (so measurements capture
     * sharing-driven migration, not the one-time cold-touch storm the
     * paper's long-running kernels amortize away). Default: the CPU,
     * i.e., cold UVM placement.
     */
    virtual mem::DeviceId
    initialOwner(mem::Vpn vpn4k, int num_gpus) const
    {
        (void)vpn4k;
        (void)num_gpus;
        return mem::kCpuDevice;
    }

    /**
     * Enumerate every page (4 KB VPN) of the footprint. The default
     * assumes a contiguous layout; workloads with sparse VA layouts
     * override this.
     */
    virtual void
    forEachPage(const std::function<void(mem::Vpn)> &fn) const
    {
        for (std::uint64_t i = 0; i < footprintPages(); ++i)
            fn(baseVpn() + i);
    }
};

/** Home GPU of a CTA under greedy placement. */
inline int
homeGpu(int cta, int num_ctas, int num_gpus)
{
    return static_cast<int>(static_cast<long long>(cta) * num_gpus /
                            num_ctas);
}

} // namespace transfw::wl

#endif // TRANSFW_WORKLOAD_WORKLOAD_HPP
