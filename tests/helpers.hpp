#ifndef TRANSFW_TESTS_HELPERS_HPP
#define TRANSFW_TESTS_HELPERS_HPP

#include <memory>
#include <vector>

#include "config/config.hpp"
#include "mmu/gpu_iface.hpp"
#include "mmu/request.hpp"
#include "pwc/utc.hpp"
#include "transfw/prt.hpp"

namespace transfw::test {

/**
 * Minimal GpuIface implementation for driving the UVM machinery
 * (migration engine, host MMU, driver) without a full gpu::Gpu.
 */
class FakeGpu : public mmu::GpuIface
{
  public:
    FakeGpu(const cfg::SystemConfig &config, int id)
        : id_(id), pt_(config.geometry()),
          frames_(config.gpuMemBytes, config.pageShift),
          pwc_(config.pwcEntries, config.geometry())
    {
        if (config.transFw.enabled)
            prt_ = std::make_unique<core::PendingRequestTable>(
                config.transFw, id);
    }

    mem::PageTable &localPageTable() override { return pt_; }
    mem::FrameAllocator &frames() override { return frames_; }
    void invalidateTlbs(mem::Vpn vpn) override
    {
        lastInvalidated = vpn;
        ++invalidations;
    }
    core::PendingRequestTable *prt() override { return prt_.get(); }
    const pwc::PageWalkCache &gmmuPwc() const override { return pwc_; }

    pwc::UnifiedTranslationCache &pwc() { return pwc_; }

    int invalidations = 0;
    mem::Vpn lastInvalidated = 0;

  private:
    int id_;
    mem::PageTable pt_;
    mem::FrameAllocator frames_;
    pwc::UnifiedTranslationCache pwc_;
    std::unique_ptr<core::PendingRequestTable> prt_;
};

/** Build a translation request for tests. */
inline mmu::XlatPtr
makeReq(mem::Vpn vpn, int gpu = 0, bool write = false)
{
    mmu::XlatPtr req = mmu::makeRequest();
    req->vpn = vpn;
    req->gpu = gpu;
    req->isWrite = write;
    return req;
}

} // namespace transfw::test

#endif // TRANSFW_TESTS_HELPERS_HPP
