#include <gtest/gtest.h>

#include "mem/address.hpp"

using namespace transfw::mem;

TEST(PagingGeometry, FiveLevel4K)
{
    PagingGeometry geo{5, kSmallPageShift};
    EXPECT_EQ(geo.leafLevel(), 1);
    EXPECT_EQ(geo.walkAccesses(), 5);
    EXPECT_EQ(geo.lowestCachedLevel(), 2);
    EXPECT_EQ(geo.pageBytes(), 4096u);
}

TEST(PagingGeometry, FourLevel4K)
{
    PagingGeometry geo{4, kSmallPageShift};
    EXPECT_EQ(geo.leafLevel(), 1);
    EXPECT_EQ(geo.walkAccesses(), 4);
    EXPECT_EQ(geo.lowestCachedLevel(), 2);
}

TEST(PagingGeometry, FiveLevel2M)
{
    PagingGeometry geo{5, kLargePageShift};
    EXPECT_EQ(geo.leafLevel(), 2);
    EXPECT_EQ(geo.walkAccesses(), 4);
    EXPECT_EQ(geo.lowestCachedLevel(), 3);
    EXPECT_EQ(geo.pageBytes(), 2u << 20);
}

TEST(PagingGeometry, IndexExtraction)
{
    PagingGeometry geo{5, kSmallPageShift};
    // Build a VPN from explicit 9-bit indices L5..L1.
    Vpn vpn = (Vpn{0x123} << 36) | (Vpn{0x0A8} << 27) | (Vpn{0x11C} << 18) |
              (Vpn{0x009} << 9) | Vpn{0x1B8};
    EXPECT_EQ(geo.index(vpn, 5), 0x123u);
    EXPECT_EQ(geo.index(vpn, 4), 0x0A8u);
    EXPECT_EQ(geo.index(vpn, 3), 0x11Cu);
    EXPECT_EQ(geo.index(vpn, 2), 0x009u);
    EXPECT_EQ(geo.index(vpn, 1), 0x1B8u);
}

TEST(PagingGeometry, PrefixNesting)
{
    PagingGeometry geo{5, kSmallPageShift};
    Vpn a = 0x123456789ULL;
    Vpn b = a + 1; // differs only in the L1 index (unless it carries)
    // The level-2 prefix drops the L1 index.
    EXPECT_EQ(geo.prefix(a, 2), a >> 9);
    // Prefixes must nest: equal level-k prefixes imply equal level-k+1.
    for (int level = 2; level < 5; ++level) {
        if (geo.prefix(a, level) == geo.prefix(b, level)) {
            EXPECT_EQ(geo.prefix(a, level + 1), geo.prefix(b, level + 1));
        }
    }
}

TEST(PagingGeometry, LargePageIndexBasedAtLeaf)
{
    PagingGeometry geo{5, kLargePageShift};
    // A 2 MB VPN's lowest 9 bits are the L2 index.
    Vpn vpn = (Vpn{5} << 9) | Vpn{7};
    EXPECT_EQ(geo.index(vpn, 2), 7u);
    EXPECT_EQ(geo.index(vpn, 3), 5u);
}

TEST(PagingGeometry, VpnOf)
{
    PagingGeometry small{5, kSmallPageShift};
    PagingGeometry large{5, kLargePageShift};
    VirtAddr va = (VirtAddr{3} << 21) + 0x1234;
    EXPECT_EQ(small.vpnOf(va), (va >> 12));
    EXPECT_EQ(large.vpnOf(va), 3u);
}
