#include <gtest/gtest.h>

#include <unordered_set>

#include "transfw/transfw.hpp"

using namespace transfw;

/**
 * Property sweep over all ten Table III applications: invariants every
 * app model must satisfy regardless of its constants.
 */
class AppProperties : public ::testing::TestWithParam<std::string>
{};

TEST_P(AppProperties, SpecIsWellFormed)
{
    wl::SyntheticSpec spec = wl::appSpec(GetParam());
    EXPECT_FALSE(spec.regions.empty());
    EXPECT_GT(spec.numCtas, 0);
    EXPECT_GT(spec.memOpsPerCta, 0);
    EXPECT_GE(spec.phases, 1);
    double weight = 0;
    for (const auto &region : spec.regions) {
        EXPECT_GT(region.pages, 0u);
        EXPECT_GT(region.weight, 0.0);
        EXPECT_GE(region.writeFrac, 0.0);
        EXPECT_LE(region.writeFrac, 1.0);
        EXPECT_GE(region.reuse, 1u);
        weight += region.weight;
    }
    EXPECT_GT(weight, 0.0);
}

TEST_P(AppProperties, StreamsTerminateAndStayInFootprint)
{
    auto workload = wl::makeApp(GetParam(), 0.3);
    std::unordered_set<mem::Vpn> valid;
    workload->forEachPage([&](mem::Vpn vpn) { valid.insert(vpn); });
    for (int cta : {0, workload->numCtas() / 2, workload->numCtas() - 1}) {
        auto stream = workload->makeStream(cta, 4, 11);
        wl::MemOp op;
        int ops = 0;
        while (stream->next(op)) {
            ++ops;
            ASSERT_LE(ops, 10000) << "stream did not terminate";
            for (int i = 0; i < op.numPages; ++i) {
                EXPECT_TRUE(valid.count(
                    op.pages[static_cast<std::size_t>(i)].vpn));
            }
        }
        EXPECT_GT(ops, 0);
    }
}

TEST_P(AppProperties, InitialOwnerCoversFootprint)
{
    auto workload = wl::makeApp(GetParam(), 0.3);
    workload->forEachPage([&](mem::Vpn vpn) {
        mem::DeviceId owner = workload->initialOwner(vpn, 4);
        EXPECT_GE(owner, 0);
        EXPECT_LT(owner, 4);
    });
}

TEST_P(AppProperties, RunsDeterministically)
{
    cfg::SystemConfig config = sys::baselineConfig();
    config.cusPerGpu = 8; // keep the sweep fast
    sys::SimResults a = sys::runApp(GetParam(), config, 0.2);
    sys::SimResults b = sys::runApp(GetParam(), config, 0.2);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.farFaults, b.farFaults);
}

TEST_P(AppProperties, TransFwNeverCatastrophic)
{
    // Trans-FW may be neutral on compute-bound apps but must never
    // slow an application down badly on the default configuration.
    cfg::SystemConfig base = sys::baselineConfig();
    cfg::SystemConfig fw = sys::transFwConfig();
    sys::SimResults a = sys::runApp(GetParam(), base, 0.4);
    sys::SimResults b = sys::runApp(GetParam(), fw, 0.4);
    EXPECT_GT(sys::speedup(a, b), 0.9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppProperties,
                         ::testing::Values("AES", "FIR", "KM", "PR", "MM",
                                           "MT", "SC", "ST", "Conv2d",
                                           "Im2col"));
