#include <gtest/gtest.h>

#include <sstream>

#include "transfw/transfw.hpp"

using namespace transfw;

namespace {

/** Small sharing-heavy workload that exercises faults, forwards and
 *  migrations without taking long to run. */
wl::SyntheticSpec
tinySpec()
{
    wl::SyntheticSpec spec;
    spec.name = "attrib";
    spec.numCtas = 32;
    spec.memOpsPerCta = 24;
    spec.computePerOp = 2;
    spec.regions = {
        {.name = "hot", .pages = 32, .pattern = wl::Pattern::Random,
         .shareDegree = 64, .weight = 0.5, .writeFrac = 0.3, .reuse = 2},
        {.name = "own", .pages = 128, .weight = 0.5, .reuse = 2},
    };
    return spec;
}

} // namespace

// The engine and its race ledger are compiled out under
// -DTRANSFW_OBS=OFF; the compile-out contract itself is tested at the
// bottom of this file.
#if TRANSFW_OBS

// ---------------------------------------------------------------------------
// Unit: reply-race accounting on a hand-driven engine.
// ---------------------------------------------------------------------------

TEST(AttributionEngine, HardwareRaceDuplicateWalkMeasuredSaving)
{
    obs::AttributionEngine eng;
    eng.setEnabled(true);

    eng.begin(0, 1, 0x10, 100);
    eng.charge(0, 1, obs::AttribBucket::Network, 20, 120);
    eng.forwardLaunched(0, 1, 150);
    // Remote reply wins at t=300 (hardware path: est_saved == 0 keeps
    // the race open until the losing walk reports).
    eng.forwardOutcome(0, 1, true, true, 0, 300);

    stats::LatencyBreakdown lat;
    lat.network = 20;
    eng.finish(0, 1, lat, false, 320);

    // The loser crosses the line at t=450: measured saving 450 - 300.
    eng.hostWalkDone(0, 1, true, 450);

    const obs::AttributionTable &t = eng.table();
    EXPECT_EQ(t.requests, 1u);
    EXPECT_EQ(t.forwards, 1u);
    EXPECT_EQ(t.remoteWins, 1u);
    EXPECT_EQ(t.duplicateHostWalks, 1u);
    EXPECT_DOUBLE_EQ(t.forwardSavedCycles, 150.0);
    EXPECT_DOUBLE_EQ(t.forwardSavedEstCycles, 0.0);
    EXPECT_DOUBLE_EQ(t.forwardWastedCycles, 0.0);
    // Race closed and record released (timelines off).
    EXPECT_EQ(eng.liveRequests(), 0u);
}

TEST(AttributionEngine, CancelledWalkBooksEstimatedSaving)
{
    obs::AttributionEngine eng;
    eng.setEnabled(true);

    eng.begin(0, 2, 0x20, 0);
    eng.forwardLaunched(0, 2, 10);
    eng.forwardOutcome(0, 2, true, true, 0, 90);
    stats::LatencyBreakdown lat;
    eng.finish(0, 2, lat, false, 95);
    eng.hostWalkCancelled(0, 2, 500, 100);

    EXPECT_EQ(eng.table().cancelledHostWalks, 1u);
    EXPECT_DOUBLE_EQ(eng.table().forwardSavedEstCycles, 500.0);
    EXPECT_EQ(eng.liveRequests(), 0u);
}

TEST(AttributionEngine, FailedAndLosingForwardsBookWaste)
{
    obs::AttributionEngine eng;
    eng.setEnabled(true);

    // FT false positive: remote service 40 cycles wasted.
    eng.begin(0, 3, 0x30, 0);
    eng.forwardLaunched(0, 3, 100);
    eng.forwardOutcome(0, 3, false, false, 0, 140);
    EXPECT_EQ(eng.table().failedForwards, 1u);
    EXPECT_DOUBLE_EQ(eng.table().forwardWastedCycles, 40.0);

    // Host walk wins: remote service 60 cycles wasted.
    eng.begin(0, 4, 0x40, 0);
    eng.forwardLaunched(0, 4, 200);
    eng.forwardOutcome(0, 4, true, false, 0, 260);
    EXPECT_EQ(eng.table().hostWins, 1u);
    EXPECT_DOUBLE_EQ(eng.table().forwardWastedCycles, 100.0);
}

TEST(AttributionEngine, DriverForwardClosesRaceImmediately)
{
    obs::AttributionEngine eng;
    eng.setEnabled(true);

    eng.begin(1, 5, 0x50, 0);
    eng.forwardLaunched(1, 5, 50);
    // Driver path: est_saved > 0 means no walk races the forward.
    eng.forwardOutcome(1, 5, true, true, 600, 200);
    stats::LatencyBreakdown lat;
    eng.finish(1, 5, lat, false, 210);

    EXPECT_EQ(eng.table().remoteWins, 1u);
    EXPECT_DOUBLE_EQ(eng.table().forwardSavedEstCycles, 600.0);
    EXPECT_EQ(eng.liveRequests(), 0u);
    eng.finalize();
    EXPECT_EQ(eng.table().unresolvedRaces, 0u);
}

TEST(AttributionEngine, LateChargesStayOffTheBucketTable)
{
    obs::AttributionEngine eng;
    eng.setEnabled(true);

    eng.begin(0, 6, 0x60, 0);
    eng.charge(0, 6, obs::AttribBucket::HostWalkMem, 300, 50);
    stats::LatencyBreakdown lat;
    lat.hostMem = 300;
    eng.finish(0, 6, lat, false, 400);
    // Keep the record receivable: open a race so the post-finish charge
    // has somewhere to land (as a real race loser's charges do).
    eng.begin(0, 7, 0x70, 0);
    eng.forwardLaunched(0, 7, 10);
    eng.forwardOutcome(0, 7, true, true, 0, 80);
    stats::LatencyBreakdown lat7;
    eng.finish(0, 7, lat7, false, 90);
    eng.charge(0, 7, obs::AttribBucket::RemoteWalk, 120, 130);

    EXPECT_EQ(eng.table().lateCharges, 1u);
    EXPECT_DOUBLE_EQ(eng.table().lateCycles, 120.0);
    // Bucket totals only reflect pre-finish charges.
    EXPECT_DOUBLE_EQ(eng.table().bucketTotal(), 300.0);
}

TEST(AttributionEngine, TimelinesRecordCausalEvents)
{
    obs::AttributionEngine eng;
    eng.setEnabled(true);
    eng.setKeepTimelines(true);

    eng.begin(2, 9, 0x90, 1000);
    eng.charge(2, 9, obs::AttribBucket::PrtLookup, 1, 1001);
    eng.shortCircuited(2, 9, 600, 1001);
    eng.charge(2, 9, obs::AttribBucket::Network, 30, 1040);
    stats::LatencyBreakdown lat;
    lat.other = 1;
    lat.network = 30;
    eng.finish(2, 9, lat, true, 1100);

    const auto *tl = eng.timeline(2, 9);
    ASSERT_NE(tl, nullptr);
    EXPECT_EQ(tl->vpn, 0x90u);
    EXPECT_EQ(tl->tIssue, 1000u);
    EXPECT_EQ(tl->tFinish, 1100u);
    ASSERT_EQ(tl->events.size(), 4u);
    EXPECT_EQ(tl->events[1].kind, obs::AttribEvent::Kind::ShortCircuit);
    EXPECT_EQ(tl->events.back().kind, obs::AttribEvent::Kind::Finish);
    EXPECT_EQ(eng.slowestRequest(), (std::pair<int, std::uint64_t>{2, 9}));
    EXPECT_EQ(eng.table().shortCircuits, 1u);
    EXPECT_DOUBLE_EQ(eng.table().shortCircuitSavedEstCycles, 600.0);
}

TEST(AttributionEngine, DisabledEngineRecordsNothing)
{
    obs::AttributionEngine eng;
    EXPECT_FALSE(eng.enabled());
    eng.begin(0, 1, 0x10, 0);
    eng.charge(0, 1, obs::AttribBucket::Network, 50, 10);
    stats::LatencyBreakdown lat;
    lat.network = 50;
    eng.finish(0, 1, lat, false, 60);
    eng.finalize();
    EXPECT_EQ(eng.table().requests, 0u);
    EXPECT_DOUBLE_EQ(eng.table().bucketTotal(), 0.0);
    EXPECT_EQ(eng.liveRequests(), 0u);
}

// ---------------------------------------------------------------------------
// Unit: the invariant watchdog itself. Strict builds panic on
// violation, so the negative cases only run in counting mode.
// ---------------------------------------------------------------------------

#if !TRANSFW_OBS_STRICT
TEST(ObsChecks, CatchesBucketSumMismatch)
{
    obs::AttributionEngine eng;
    obs::Checks checks;
    eng.setEnabled(true);
    eng.attachChecks(&checks);

    eng.begin(0, 1, 0x10, 0);
    eng.charge(0, 1, obs::AttribBucket::GmmuQueue, 100, 10);
    stats::LatencyBreakdown lat;
    lat.gmmuQueue = 250; // component bypassed the charge funnel
    eng.finish(0, 1, lat, false, 300);

    EXPECT_EQ(checks.violations(), 1u);
    EXPECT_EQ(checks.checkedRequests(), 1u);
    ASSERT_FALSE(checks.messages().empty());

    checks.clear();
    EXPECT_EQ(checks.violations(), 0u);
}

TEST(ObsChecks, CatchesMisclassifiedCharge)
{
    obs::AttributionEngine eng;
    obs::Checks checks;
    eng.setEnabled(true);
    eng.attachChecks(&checks);

    // Totals balance, but the cycles sit in the wrong bucket family.
    eng.begin(0, 2, 0x20, 0);
    eng.charge(0, 2, obs::AttribBucket::HostWalkMem, 100, 10);
    stats::LatencyBreakdown lat;
    lat.network = 100;
    eng.finish(0, 2, lat, false, 200);

    EXPECT_EQ(checks.violations(), 1u);
}

TEST(ObsChecks, CatchesLocalWalkOnShortCircuit)
{
    obs::AttributionEngine eng;
    obs::Checks checks;
    eng.setEnabled(true);
    eng.attachChecks(&checks);

    eng.begin(0, 3, 0x30, 0);
    eng.charge(0, 3, obs::AttribBucket::GmmuWalkMem, 500, 10);
    stats::LatencyBreakdown lat;
    lat.gmmuMem = 500;
    eng.finish(0, 3, lat, /*short_circuit=*/true, 600);

    EXPECT_EQ(checks.violations(), 1u);
}

TEST(ObsChecks, SampleMaskSkipsUnselectedRequests)
{
    obs::AttributionEngine eng;
    obs::Checks checks;
    eng.setEnabled(true);
    eng.attachChecks(&checks);
    checks.setSampleMask(0x3); // only ids with low bits 00

    for (std::uint64_t id = 0; id < 8; ++id) {
        eng.begin(0, id, id, 0);
        eng.charge(0, id, obs::AttribBucket::Network, 10, 5);
        stats::LatencyBreakdown lat;
        lat.network = 10;
        eng.finish(0, id, lat, false, 20);
    }
    EXPECT_EQ(checks.checkedRequests(), 2u); // ids 0 and 4
    EXPECT_EQ(checks.violations(), 0u);
}
#endif // !TRANSFW_OBS_STRICT

TEST(ObsChecks, SpanNestingPassesAndFails)
{
    obs::SpanRecorder rec;
    rec.setEnabled(true);

    // Lane (0, 1): children nest inside the xlat root.
    rec.record("gmmu.queue", 0, 1, 110, 150, 0x1);
    rec.record("gmmu.walk", 0, 1, 150, 300, 0x1);
    rec.record("xlat", 0, 1, 100, 400, 0x1);
    // Lane (0, 2): a child escapes its root.
    rec.record("gmmu.walk", 0, 2, 500, 900, 0x2);
    rec.record("xlat", 0, 2, 480, 700, 0x2);
    // Lane (0, 3): race-loser overhang is explicitly allowed.
    rec.record("host.walk", 0, 3, 1000, 1500, 0x3);
    rec.record("xlat", 0, 3, 950, 1200, 0x3);

    obs::Checks checks;
#if TRANSFW_OBS_STRICT
    // Strict builds abort on the deliberate violation; only exercise
    // the clean lanes.
    obs::SpanRecorder clean;
    clean.setEnabled(true);
    clean.record("gmmu.walk", 0, 1, 150, 300, 0x1);
    clean.record("xlat", 0, 1, 100, 400, 0x1);
    EXPECT_EQ(checks.verifySpanNesting(clean), 0u);
#else
    EXPECT_EQ(checks.verifySpanNesting(rec), 1u);
    EXPECT_EQ(checks.violations(), 1u);
#endif
}

TEST(ObsChecks, SpanNestingSkipsTruncatedTraces)
{
    obs::SpanRecorder rec;
    rec.setEnabled(true);
    rec.setCapacity(1);
    rec.record("gmmu.walk", 0, 2, 500, 900, 0x2); // would violate...
    rec.record("xlat", 0, 2, 480, 700, 0x2);      // ...but gets dropped

    obs::Checks checks;
    EXPECT_GT(rec.dropped(), 0u);
    EXPECT_EQ(checks.verifySpanNesting(rec), 0u);
}

// ---------------------------------------------------------------------------
// System: attribution is observational — identical simulation either
// way — and the watchdog holds end-to-end.
// ---------------------------------------------------------------------------

TEST(AttributionSystem, TransFwRunBalancesAndResolvesRaces)
{
    wl::SyntheticWorkload workload(tinySpec());
    cfg::SystemConfig config = sys::transFwConfig();
    config.cusPerGpu = 6;

    sys::SimResults r = sys::runWorkload(workload, config);

    EXPECT_EQ(r.obsCheckViolations, 0u);
    EXPECT_GT(r.obsCheckedRequests, 0u);
    EXPECT_EQ(r.obsCheckedRequests, r.attribution.requests);
    EXPECT_EQ(r.attribution.unresolvedRaces, 0u);
    // The ledger agrees with the component counters.
    EXPECT_EQ(r.attribution.forwards, r.forwards);
    EXPECT_EQ(r.attribution.failedForwards, r.forwardFail);
    EXPECT_EQ(r.attribution.remoteWins + r.attribution.hostWins,
              r.forwardSuccess);
    EXPECT_EQ(r.attribution.duplicateHostWalks, r.duplicateWalks);
    EXPECT_EQ(r.attribution.shortCircuits, r.shortCircuits);
    // Buckets refine the coarse breakdown exactly.
    const double tol = 1e-6 * (1.0 + r.xlat.total());
    EXPECT_NEAR(r.attribution.bucketTotal(), r.xlat.total(), tol);
    EXPECT_GE(r.attribution.forwardSavedCycles, 0.0);
    EXPECT_GE(r.attribution.forwardWastedCycles, 0.0);
}

TEST(AttributionSystem, DisablingAttributionChangesNothingSimulated)
{
    wl::SyntheticWorkload workload(tinySpec());
    cfg::SystemConfig on = sys::transFwConfig();
    on.cusPerGpu = 6;
    cfg::SystemConfig off = on;
    off.obs.attribution = false;

    sys::SimResults ron = sys::runWorkload(workload, on);
    sys::SimResults roff = sys::runWorkload(workload, off);

    // Purely observational: simulated timing and accounting identical.
    EXPECT_EQ(ron.execTime, roff.execTime);
    EXPECT_EQ(ron.eventsExecuted, roff.eventsExecuted);
    EXPECT_EQ(ron.farFaults, roff.farFaults);
    EXPECT_DOUBLE_EQ(ron.xlat.total(), roff.xlat.total());
    // And the disabled engine recorded nothing.
    EXPECT_EQ(roff.attribution.requests, 0u);
    EXPECT_EQ(roff.obsCheckedRequests, 0u);
    EXPECT_GT(ron.attribution.requests, 0u);
}

TEST(AttributionSystem, MidRunSinkSwapDuringOpenRequests)
{
    wl::SyntheticWorkload workload(tinySpec());
    cfg::SystemConfig config = sys::transFwConfig();
    config.cusPerGpu = 6;
    config.obs.spans = true;

    sys::MultiGpuSystem system(config, workload);
    obs::SpanRecorder other;
    other.setEnabled(true);
    other.setCapacity(config.obs.maxSpans);

    // Swap the span sink and disable attribution mid-run, while
    // translations are guaranteed to be in flight: spans for one
    // request then straddle two recorders and open attribution records
    // go quiet. Neither may disturb the run or trip the watchdog.
    system.eventq().schedule(2000, [&]() {
        system.gpuAt(0).attachSpans(&other);
        if (system.hostMmu())
            system.hostMmu()->attachSpans(&other);
        system.obs().attribution.setEnabled(false);
    });

    sys::SimResults r = system.run();

    EXPECT_EQ(r.obsCheckViolations, 0u);
    EXPECT_GT(r.execTime, 2000u);
    // Both recorders saw spans from their half of the run.
    EXPECT_FALSE(system.obs().spans.spans().empty());
    EXPECT_FALSE(other.spans().empty());
    // A swapped-out recorder still exports a valid trace.
    std::ostringstream trace;
    other.writeChromeTrace(trace);
    EXPECT_FALSE(trace.str().empty());
}

// ---------------------------------------------------------------------------
// Filter / map gauge satellites.
// ---------------------------------------------------------------------------

TEST(AttributionGauges, SystemRegistersObservabilityGauges)
{
    wl::SyntheticWorkload workload(tinySpec());
    cfg::SystemConfig config = sys::transFwConfig();
    config.cusPerGpu = 6;

    sys::MultiGpuSystem system(config, workload);
    (void)system.run();

    obs::MetricRegistry &reg = system.obs().metrics;
    std::string json = reg.toJson();
    for (const char *key :
         {"obs.droppedSpans", "obs.checks.violations",
          "obs.attrib.liveRequests", "host.ft.kicks",
          "host.ft.observedFpRate", "host.ft.refMap.loadFactor",
          "gpu0.prt.kicks", "gpu0.prt.observedFpRate",
          "gpu0.prt.groupMap.tombstones",
          "host.migration.busy.loadFactor",
          "host.mmu.queueDepth"}) {
        EXPECT_NE(json.find(key), std::string::npos)
            << "missing gauge " << key;
    }
    // Rates and load factors stay inside [0, 1] (the sampler column
    // contract for *hitRate* / *loadFactor* names).
    EXPECT_GE(system.forwardingTable()->observedFpRate(), 0.0);
    EXPECT_LE(system.forwardingTable()->observedFpRate(), 1.0);
}

#else // !TRANSFW_OBS

// Compile-out contract: with observability off, every attribution call
// site compiles to nothing and the engine is inert even when enabled.
TEST(AttributionCompiledOut, EngineIsInert)
{
    obs::AttributionEngine eng;
    eng.setEnabled(true);
    eng.setKeepTimelines(true);
    eng.begin(0, 1, 0x10, 0);
    eng.charge(0, 1, obs::AttribBucket::Network, 50, 10);
    eng.forwardLaunched(0, 1, 20);
    eng.forwardOutcome(0, 1, true, true, 0, 60);
    stats::LatencyBreakdown lat;
    lat.network = 50;
    eng.finish(0, 1, lat, false, 80);
    eng.finalize();

    EXPECT_EQ(eng.table().requests, 0u);
    EXPECT_EQ(eng.table().forwards, 0u);
    EXPECT_DOUBLE_EQ(eng.table().bucketTotal(), 0.0);
    EXPECT_EQ(eng.timeline(0, 1), nullptr);
    EXPECT_EQ(eng.slowestRequest().first, -1);
}

TEST(AttributionCompiledOut, SystemRunStaysConsistent)
{
    wl::SyntheticWorkload workload(tinySpec());
    cfg::SystemConfig config = sys::transFwConfig();
    config.cusPerGpu = 6;

    sys::SimResults r = sys::runWorkload(workload, config);
    EXPECT_GT(r.execTime, 0u);
    EXPECT_EQ(r.attribution.requests, 0u);
    EXPECT_EQ(r.obsCheckViolations, 0u);
    EXPECT_EQ(r.droppedSpans, 0u);
}

#endif // TRANSFW_OBS
