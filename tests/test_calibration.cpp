#include <gtest/gtest.h>

#include "transfw/transfw.hpp"

using namespace transfw;

/**
 * Calibration guardrails: the qualitative claims the reproduction rests
 * on (Table III ordering, Fig. 11 shape) must keep holding as the model
 * evolves. These run the real 4-GPU configuration at reduced scale, so
 * thresholds are deliberately loose.
 */
namespace {

constexpr double kScale = 0.6;

sys::SimResults
run(const std::string &app, bool transfw)
{
    return sys::runApp(app,
                       transfw ? sys::transFwConfig()
                               : sys::baselineConfig(),
                       kScale);
}

} // namespace

TEST(Calibration, PfpkiOrderingMatchesTable3)
{
    double fir = run("FIR", false).pfpki();
    double aes = run("AES", false).pfpki();
    double km = run("KM", false).pfpki();
    double pr = run("PR", false).pfpki();
    double mt = run("MT", false).pfpki();

    // Compute-bound apps sit at the bottom, MT at the top (Table III).
    EXPECT_LT(fir, 0.1);
    EXPECT_LT(aes, 0.5);
    EXPECT_GT(km, aes);
    EXPECT_GT(pr, km);
    EXPECT_GT(mt, pr);
    EXPECT_GT(mt, 10.0);
}

TEST(Calibration, TransFwHelpsHighSharingApps)
{
    for (const char *app : {"PR", "KM", "MT"}) {
        sys::SimResults base = run(app, false);
        sys::SimResults fw = run(app, true);
        EXPECT_GT(sys::speedup(base, fw), 1.1) << app;
    }
}

TEST(Calibration, ComputeBoundAppsInsensitive)
{
    for (const char *app : {"AES", "FIR"}) {
        sys::SimResults base = run(app, false);
        sys::SimResults fw = run(app, true);
        double s = sys::speedup(base, fw);
        EXPECT_GT(s, 0.95) << app;
        EXPECT_LT(s, 1.25) << app;
    }
}

TEST(Calibration, SharingRatioShapesMatchFig7)
{
    // AES: partitioned, almost no shared accesses.
    sys::SimResults aes = run("AES", false);
    double aes_shared = 1.0 - aes.sharingAccesses.fraction(1);
    EXPECT_LT(aes_shared, 0.1);

    // PR: random over shared data -> most accesses to multi-GPU pages.
    sys::SimResults pr = run("PR", false);
    double pr_shared = 1.0 - pr.sharingAccesses.fraction(1);
    EXPECT_GT(pr_shared, 0.5);
}

TEST(Calibration, Fig24WriteIntensity)
{
    // MT writes its shared pages; MM mostly reads them.
    sys::SimResults mt = run("MT", false);
    EXPECT_GT(mt.sharedPageWrites, mt.sharedPageReads / 2);
    sys::SimResults mm = run("MM", false);
    EXPECT_GT(mm.sharedPageReads, mm.sharedPageWrites);
}

TEST(Calibration, RemoteHitRateIsHigh)
{
    // Fig. 8: most faults could be served by the owner GPU's PW-cache.
    sys::SimResults mt = run("MT", false);
    std::uint64_t total = mt.remoteProbeLevels.total();
    ASSERT_GT(total, 0u);
    double hit =
        1.0 - static_cast<double>(mt.remoteProbeLevels.bucket(0)) / total;
    EXPECT_GT(hit, 0.5);
}
