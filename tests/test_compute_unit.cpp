#include <gtest/gtest.h>

#include "gpu/compute_unit.hpp"
#include "gpu/cta_scheduler.hpp"
#include "workload/synthetic.hpp"

using namespace transfw;

namespace {

wl::SyntheticSpec
tinySpec(int ctas, int ops)
{
    wl::SyntheticSpec spec;
    spec.name = "tiny";
    spec.numCtas = ctas;
    spec.memOpsPerCta = ops;
    spec.computePerOp = 5;
    spec.regions = {{.name = "r", .pages = 32, .weight = 1.0,
                     .reuse = 2}};
    return spec;
}

} // namespace

TEST(CtaScheduler, HomeAffineQueues)
{
    wl::SyntheticWorkload workload(tinySpec(16, 4));
    gpu::CtaScheduler sched(workload, 4);
    EXPECT_EQ(sched.remaining(), 16u);
    // GPU 0's queue holds CTAs 0..3 in order.
    for (int i = 0; i < 4; ++i) {
        auto cta = sched.nextCta(0);
        ASSERT_TRUE(cta.has_value());
        EXPECT_EQ(*cta, i);
    }
    EXPECT_FALSE(sched.nextCta(0).has_value());
    // GPU 3's queue holds the last quarter.
    auto cta = sched.nextCta(3);
    ASSERT_TRUE(cta.has_value());
    EXPECT_EQ(*cta, 12);
    EXPECT_EQ(sched.remaining(), 11u);
}

TEST(ComputeUnit, ExecutesAllCtasAndCountsInstructions)
{
    wl::SyntheticWorkload workload(tinySpec(8, 6));
    cfg::SystemConfig config;
    config.numGpus = 1;
    config.cusPerGpu = 2;
    config.wavefrontSlotsPerCu = 2;

    sim::EventQueue eq;
    sim::Rng rng(1);
    gpu::Gpu gpu(eq, config, 0, rng);
    gpu.hooks.sendFault = [](mmu::XlatPtr) { FAIL() << "no faults here"; };
    // Pre-map the footprint locally so every access resolves locally.
    workload.forEachPage([&](mem::Vpn vpn4k) {
        gpu.localPageTable().map(
            vpn4k, mem::PageInfo{gpu.frames().allocate(), 0, 1, true,
                                 false});
    });

    gpu::CtaScheduler sched(workload, 1);
    gpu::ComputeUnit cu0(eq, config, gpu, 0, workload, sched, 7);
    gpu::ComputeUnit cu1(eq, config, gpu, 1, workload, sched, 7);
    cu0.start();
    cu1.start();
    eq.run();

    EXPECT_TRUE(cu0.done());
    EXPECT_TRUE(cu1.done());
    EXPECT_EQ(cu0.memOps() + cu1.memOps(), 8u * 6u);
    EXPECT_EQ(cu0.instructions() + cu1.instructions(), 8u * 6u * 6u);
    EXPECT_EQ(cu0.ctasExecuted() + cu1.ctasExecuted(), 8u);
    EXPECT_EQ(sched.remaining(), 0u);
}

TEST(ComputeUnit, SlotsOverlapLatency)
{
    // With two slots per CU, two CTAs' memory latencies overlap, so a
    // 2-slot CU finishes the same work faster than a 1-slot CU.
    auto run_with_slots = [](int slots) {
        wl::SyntheticWorkload workload(tinySpec(2, 20));
        cfg::SystemConfig config;
        config.numGpus = 1;
        config.cusPerGpu = 1;
        config.wavefrontSlotsPerCu = slots;

        sim::EventQueue eq;
        sim::Rng rng(1);
        gpu::Gpu gpu(eq, config, 0, rng);
        gpu.hooks.sendFault = [](mmu::XlatPtr) {};
        workload.forEachPage([&](mem::Vpn vpn4k) {
            gpu.localPageTable().map(
                vpn4k, mem::PageInfo{gpu.frames().allocate(), 0, 1, true,
                                     false});
        });
        gpu::CtaScheduler sched(workload, 1);
        gpu::ComputeUnit cu(eq, config, gpu, 0, workload, sched, 7);
        cu.start();
        eq.run();
        return eq.now();
    };

    EXPECT_LT(run_with_slots(2), run_with_slots(1));
}
