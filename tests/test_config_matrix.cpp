#include <gtest/gtest.h>

#include "transfw/transfw.hpp"

using namespace transfw;

/**
 * Full configuration matrix: every (migration policy × fault mode ×
 * Trans-FW) combination must run a sharing-heavy workload to
 * completion with consistent accounting. 3 × 2 × 2 = 12 system-level
 * combinations.
 */
class ConfigMatrix
    : public ::testing::TestWithParam<
          std::tuple<cfg::MigrationPolicy, cfg::FaultMode, bool>>
{};

TEST_P(ConfigMatrix, RunsWithConsistentAccounting)
{
    auto [policy, mode, transfw] = GetParam();

    wl::SyntheticSpec spec;
    spec.name = "matrix";
    spec.numCtas = 48;
    spec.memOpsPerCta = 30;
    spec.computePerOp = 2;
    spec.regions = {
        {.name = "hot", .pages = 48, .pattern = wl::Pattern::Random,
         .shareDegree = 64, .weight = 0.5, .writeFrac = 0.4, .reuse = 2},
        {.name = "own", .pages = 192, .weight = 0.5, .reuse = 2},
    };
    wl::SyntheticWorkload workload(spec);

    cfg::SystemConfig config = sys::baselineConfig();
    config.cusPerGpu = 6;
    config.migrationPolicy = policy;
    config.faultMode = mode;
    config.transFw.enabled = transfw;

    sys::SimResults r = sys::runWorkload(workload, config);

    EXPECT_EQ(r.memOps, 48u * 30u);
    EXPECT_GT(r.execTime, 0u);
    EXPECT_GT(r.farFaults, 0u); // the hot region always faults
    EXPECT_EQ(r.forwards, r.forwardSuccess + r.forwardFail);
    if (!transfw) {
        EXPECT_EQ(r.shortCircuits, 0u);
        EXPECT_EQ(r.forwards, 0u);
    }
    if (mode == cfg::FaultMode::UvmDriver) {
        EXPECT_GT(r.driverBatches, 0u);
    }
    switch (policy) {
      case cfg::MigrationPolicy::OnTouch:
        EXPECT_GT(r.migrations, 0u);
        EXPECT_EQ(r.replications, 0u);
        EXPECT_EQ(r.remoteMappings, 0u);
        break;
      case cfg::MigrationPolicy::ReadReplicate:
        EXPECT_GT(r.replications + r.writeInvalidations, 0u);
        break;
      case cfg::MigrationPolicy::RemoteMap:
        EXPECT_GT(r.remoteMappings, 0u);
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ConfigMatrix,
    ::testing::Combine(
        ::testing::Values(cfg::MigrationPolicy::OnTouch,
                          cfg::MigrationPolicy::ReadReplicate,
                          cfg::MigrationPolicy::RemoteMap),
        ::testing::Values(cfg::FaultMode::HostMmu,
                          cfg::FaultMode::UvmDriver),
        ::testing::Bool()));
