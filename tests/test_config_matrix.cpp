#include <gtest/gtest.h>

#include "transfw/transfw.hpp"

using namespace transfw;

/**
 * Full configuration matrix: every (migration policy × fault mode ×
 * Trans-FW) combination must run a sharing-heavy workload to
 * completion with consistent accounting. 3 × 2 × 2 = 12 system-level
 * combinations.
 */
class ConfigMatrix
    : public ::testing::TestWithParam<
          std::tuple<cfg::MigrationPolicy, cfg::FaultMode, bool>>
{};

TEST_P(ConfigMatrix, RunsWithConsistentAccounting)
{
    auto [policy, mode, transfw] = GetParam();

    wl::SyntheticSpec spec;
    spec.name = "matrix";
    spec.numCtas = 48;
    spec.memOpsPerCta = 30;
    spec.computePerOp = 2;
    spec.regions = {
        {.name = "hot", .pages = 48, .pattern = wl::Pattern::Random,
         .shareDegree = 64, .weight = 0.5, .writeFrac = 0.4, .reuse = 2},
        {.name = "own", .pages = 192, .weight = 0.5, .reuse = 2},
    };
    wl::SyntheticWorkload workload(spec);

    cfg::SystemConfig config = sys::baselineConfig();
    config.cusPerGpu = 6;
    config.migrationPolicy = policy;
    config.faultMode = mode;
    config.transFw.enabled = transfw;

    sys::SimResults r = sys::runWorkload(workload, config);

#if TRANSFW_OBS
    // Invariant watchdog: every finished request's attribution buckets
    // must reproduce its LatencyBreakdown, spans must nest, and PRT
    // short circuits must not charge a local walk — across the whole
    // matrix, zero violations.
    EXPECT_EQ(r.obsCheckViolations, 0u);
    EXPECT_EQ(r.obsCheckedRequests, r.attribution.requests);
    EXPECT_GT(r.attribution.requests, 0u);
    // The aggregate table refines r.xlat field-for-field.
    const double tol = 1e-6 * (1.0 + r.xlat.total());
    EXPECT_NEAR(r.attribution.fieldTotal(obs::LatField::GmmuQueue),
                r.xlat.gmmuQueue, tol);
    EXPECT_NEAR(r.attribution.fieldTotal(obs::LatField::GmmuMem),
                r.xlat.gmmuMem, tol);
    EXPECT_NEAR(r.attribution.fieldTotal(obs::LatField::HostQueue),
                r.xlat.hostQueue, tol);
    EXPECT_NEAR(r.attribution.fieldTotal(obs::LatField::HostMem),
                r.xlat.hostMem, tol);
    EXPECT_NEAR(r.attribution.fieldTotal(obs::LatField::Migration),
                r.xlat.migration, tol);
    EXPECT_NEAR(r.attribution.fieldTotal(obs::LatField::Network),
                r.xlat.network, tol);
    EXPECT_NEAR(r.attribution.fieldTotal(obs::LatField::Other),
                r.xlat.other, tol);
    EXPECT_EQ(r.attribution.unresolvedRaces, 0u);
#endif

    EXPECT_EQ(r.memOps, 48u * 30u);
    EXPECT_GT(r.execTime, 0u);
    EXPECT_GT(r.farFaults, 0u); // the hot region always faults
    EXPECT_EQ(r.forwards, r.forwardSuccess + r.forwardFail);
    if (!transfw) {
        EXPECT_EQ(r.shortCircuits, 0u);
        EXPECT_EQ(r.forwards, 0u);
    }
    if (mode == cfg::FaultMode::UvmDriver) {
        EXPECT_GT(r.driverBatches, 0u);
    }
    switch (policy) {
      case cfg::MigrationPolicy::OnTouch:
        EXPECT_GT(r.migrations, 0u);
        EXPECT_EQ(r.replications, 0u);
        EXPECT_EQ(r.remoteMappings, 0u);
        break;
      case cfg::MigrationPolicy::ReadReplicate:
        EXPECT_GT(r.replications + r.writeInvalidations, 0u);
        break;
      case cfg::MigrationPolicy::RemoteMap:
        EXPECT_GT(r.remoteMappings, 0u);
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ConfigMatrix,
    ::testing::Combine(
        ::testing::Values(cfg::MigrationPolicy::OnTouch,
                          cfg::MigrationPolicy::ReadReplicate,
                          cfg::MigrationPolicy::RemoteMap),
        ::testing::Values(cfg::FaultMode::HostMmu,
                          cfg::FaultMode::UvmDriver),
        ::testing::Bool()));
