#include <gtest/gtest.h>

#include <vector>

#include "filter/cuckoo_filter.hpp"

using transfw::filter::CuckooFilter;
using transfw::filter::CuckooParams;

namespace {

CuckooParams
prtParams()
{
    return {.numBuckets = 125, .slotsPerBucket = 4, .fingerprintBits = 13};
}

CuckooParams
ftParams()
{
    return {.numBuckets = 1000, .slotsPerBucket = 2, .fingerprintBits = 11};
}

} // namespace

TEST(CuckooFilter, InsertContains)
{
    CuckooFilter filter(prtParams());
    EXPECT_FALSE(filter.contains(42));
    EXPECT_TRUE(filter.insert(42));
    EXPECT_TRUE(filter.contains(42));
    EXPECT_EQ(filter.size(), 1u);
}

TEST(CuckooFilter, EraseRemovesOneCopy)
{
    CuckooFilter filter(prtParams());
    filter.insert(7);
    filter.insert(7); // duplicate copies are allowed
    EXPECT_TRUE(filter.contains(7));
    EXPECT_TRUE(filter.erase(7));
    EXPECT_TRUE(filter.contains(7)); // one copy left
    EXPECT_TRUE(filter.erase(7));
    EXPECT_FALSE(filter.contains(7));
    EXPECT_FALSE(filter.erase(7));
}

TEST(CuckooFilter, NoFalseNegativesBeforeOverflow)
{
    CuckooFilter filter(prtParams()); // capacity 500
    std::vector<std::uint64_t> keys;
    for (std::uint64_t key = 1000; key < 1400; ++key)
        keys.push_back(key * 7919);
    for (auto key : keys)
        ASSERT_TRUE(filter.insert(key));
    EXPECT_EQ(filter.overflowEvictions(), 0u);
    for (auto key : keys)
        EXPECT_TRUE(filter.contains(key)) << key;
}

TEST(CuckooFilter, FalsePositiveRateNearDesign)
{
    CuckooFilter filter(ftParams()); // 11-bit fp, eps ~ 0.2%
    for (std::uint64_t key = 0; key < 1600; ++key)
        filter.insert(key * 104729);
    std::uint64_t false_positives = 0;
    constexpr std::uint64_t kProbes = 200000;
    for (std::uint64_t probe = 0; probe < kProbes; ++probe) {
        // Probe keys disjoint from the inserted set.
        if (filter.contains(probe * 104729 + 1))
            ++false_positives;
    }
    double rate = static_cast<double>(false_positives) / kProbes;
    EXPECT_LT(rate, 0.01);  // well under 1%
    EXPECT_GT(rate, 0.0001); // but FP do exist at 80% load
}

TEST(CuckooFilter, OverflowEvictionCountsAndKeepsWorking)
{
    CuckooParams params{.numBuckets = 8, .slotsPerBucket = 2,
                        .fingerprintBits = 8, .maxKicks = 50};
    CuckooFilter filter(params); // capacity 16
    int failures = 0;
    for (std::uint64_t key = 0; key < 64; ++key)
        failures += filter.insert(key * 31) ? 0 : 1;
    EXPECT_GT(failures, 0);
    EXPECT_EQ(filter.overflowEvictions(),
              static_cast<std::uint64_t>(failures));
    EXPECT_LE(filter.size(), filter.capacity());
}

TEST(CuckooFilter, KickCounterMonotoneAndInsertOnly)
{
    // A tiny table driven past capacity forces long relocation chains;
    // the kick gauge must grow monotonically and only on insert.
    CuckooParams params{.numBuckets = 8, .slotsPerBucket = 2,
                        .fingerprintBits = 8, .maxKicks = 50};
    CuckooFilter filter(params);
    EXPECT_EQ(filter.kicks(), 0u);
    std::uint64_t prev = 0;
    for (std::uint64_t key = 0; key < 64; ++key) {
        filter.insert(key * 31);
        ASSERT_GE(filter.kicks(), prev);
        prev = filter.kicks();
    }
    EXPECT_GT(filter.kicks(), 0u);
    // Overflow evictions imply at least maxKicks relocations each.
    EXPECT_GE(filter.kicks(),
              filter.overflowEvictions() * params.maxKicks);

    std::uint64_t afterInserts = filter.kicks();
    for (std::uint64_t key = 0; key < 64; ++key) {
        filter.contains(key * 31);
        filter.erase(key * 31);
    }
    EXPECT_EQ(filter.kicks(), afterInserts); // probes/erases never kick
}

TEST(CuckooFilter, LoadFactorAndBits)
{
    CuckooFilter filter(prtParams());
    EXPECT_EQ(filter.capacity(), 500u);
    EXPECT_EQ(filter.bits(), 500u * 13u);
    for (std::uint64_t key = 0; key < 250; ++key)
        filter.insert(key * 3);
    EXPECT_NEAR(filter.loadFactor(), 0.5, 0.01);
}

TEST(CuckooFilter, RejectsBadParams)
{
    CuckooParams params;
    params.fingerprintBits = 17;
    EXPECT_EXIT({ CuckooFilter filter(params); (void)filter; },
                ::testing::ExitedWithCode(1), "fingerprint");
}

/** Parameterized: delete-after-insert round trips across shapes. */
class CuckooShapes : public ::testing::TestWithParam<CuckooParams>
{};

TEST_P(CuckooShapes, InsertEraseRoundTrip)
{
    CuckooFilter filter(GetParam());
    std::size_t n = filter.capacity() / 2;
    for (std::uint64_t key = 0; key < n; ++key)
        ASSERT_TRUE(filter.insert(key * 2654435761ULL));
    for (std::uint64_t key = 0; key < n; ++key)
        EXPECT_TRUE(filter.contains(key * 2654435761ULL));
    for (std::uint64_t key = 0; key < n; ++key)
        EXPECT_TRUE(filter.erase(key * 2654435761ULL));
    EXPECT_EQ(filter.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CuckooShapes,
    ::testing::Values(
        CuckooParams{.numBuckets = 125, .slotsPerBucket = 4,
                     .fingerprintBits = 13},
        CuckooParams{.numBuckets = 1000, .slotsPerBucket = 2,
                     .fingerprintBits = 11},
        CuckooParams{.numBuckets = 63, .slotsPerBucket = 4,
                     .fingerprintBits = 13},
        CuckooParams{.numBuckets = 250, .slotsPerBucket = 2,
                     .fingerprintBits = 11},
        CuckooParams{.numBuckets = 500, .slotsPerBucket = 2,
                     .fingerprintBits = 11}));

namespace {

/**
 * Digest of a fixed insert / probe / erase schedule. The expected
 * values below were captured from the scalar three-hash reference
 * implementation; the packed single-pass probe must reproduce every
 * one of them exactly (identical fingerprints, bucket choices, slot
 * order, kick sequences and overflow evictions).
 */
struct SequenceDigest
{
    std::uint64_t insertFails = 0;
    std::uint64_t overflow = 0;
    std::uint64_t present = 0;
    std::uint64_t fpHits = 0;
    std::uint64_t erased = 0;
    std::uint64_t sizeAfterErase = 0;
    std::uint64_t present2 = 0;
};

SequenceDigest
runSequence(CuckooParams params, std::uint64_t n, std::uint64_t stride)
{
    CuckooFilter f(params);
    SequenceDigest d;
    for (std::uint64_t k = 0; k < n; ++k)
        d.insertFails += f.insert(k * stride) ? 0 : 1;
    d.overflow = f.overflowEvictions();
    for (std::uint64_t k = 0; k < n; ++k)
        d.present += f.contains(k * stride) ? 1 : 0;
    for (std::uint64_t k = 0; k < 4096; ++k)
        d.fpHits += f.contains(k * stride + 1) ? 1 : 0;
    for (std::uint64_t k = 0; k < n; k += 3)
        d.erased += f.erase(k * stride) ? 1 : 0;
    d.sizeAfterErase = f.size();
    for (std::uint64_t k = 0; k < n; ++k)
        d.present2 += f.contains(k * stride) ? 1 : 0;
    return d;
}

void
expectDigest(const SequenceDigest &got, const SequenceDigest &want)
{
    EXPECT_EQ(got.insertFails, want.insertFails);
    EXPECT_EQ(got.overflow, want.overflow);
    EXPECT_EQ(got.present, want.present);
    EXPECT_EQ(got.fpHits, want.fpHits);
    EXPECT_EQ(got.erased, want.erased);
    EXPECT_EQ(got.sizeAfterErase, want.sizeAfterErase);
    EXPECT_EQ(got.present2, want.present2);
}

} // namespace

TEST(CuckooFilterSequence, PrtShapePinned)
{
    // 125x4 @ 13 bits, 520 keys at stride 7919 (past capacity).
    expectDigest(runSequence(prtParams(), 520, 7919),
                 {.insertFails = 31,
                  .overflow = 31,
                  .present = 489,
                  .fpHits = 9,
                  .erased = 165,
                  .sizeAfterErase = 324,
                  .present2 = 324});
}

TEST(CuckooFilterSequence, FtShapePinned)
{
    // 1000x2 @ 11 bits, 2100 keys at stride 104729.
    expectDigest(runSequence(ftParams(), 2100, 104729),
                 {.insertFails = 215,
                  .overflow = 215,
                  .present = 1885,
                  .fpHits = 8,
                  .erased = 631,
                  .sizeAfterErase = 1254,
                  .present2 = 1254});
}

TEST(CuckooFilterSequence, TinyShapePinned)
{
    // 8x2 @ 8 bits with long kick chains: heavy eviction traffic.
    expectDigest(runSequence({.numBuckets = 8,
                              .slotsPerBucket = 2,
                              .fingerprintBits = 8,
                              .maxKicks = 50},
                             64, 31),
                 {.insertFails = 48,
                  .overflow = 48,
                  .present = 16,
                  .fpHits = 63,
                  .erased = 5,
                  .sizeAfterErase = 11,
                  .present2 = 11});
}
