#include <gtest/gtest.h>

#include "helpers.hpp"
#include "interconnect/network.hpp"
#include "mmu/host_mmu.hpp"
#include "transfw/transfw.hpp"
#include "workload/trace.hpp"

using namespace transfw;

/** Race and boundary conditions that the main suites don't isolate. */

TEST(EdgeCases, HostWalkWinsRaceAgainstRemoteLookup)
{
    // A remote success arriving after the host walk already resolved
    // the request must be absorbed without double-resolution.
    cfg::SystemConfig config;
    config.transFw.enabled = true;
    sim::EventQueue eq;
    sim::Rng rng(1);
    mem::PageTable central(config.geometry());
    ic::Network net(eq, config.numGpus, config.hostLink, config.peerLink);
    std::vector<std::unique_ptr<test::FakeGpu>> gpus;
    std::vector<mmu::GpuIface *> ifaces;
    for (int g = 0; g < config.numGpus; ++g) {
        gpus.push_back(std::make_unique<test::FakeGpu>(config, g));
        ifaces.push_back(gpus.back().get());
    }
    core::FtCluster ft(config.transFw);
    uvm::MigrationEngine engine(eq, config, central, ifaces, net, &ft);
    mmu::HostMmu host(eq, config, central, engine, &ft.table(0), ifaces,
                      rng);
    int resolutions = 0;
    host.onResolved = [&](mmu::XlatPtr) { ++resolutions; };
    host.forwardToGpu = [](mmu::RemoteLookupPtr) {};

    mem::Ppn ppn = gpus[1]->frames().allocate();
    gpus[1]->localPageTable().map(
        0x10, mem::PageInfo{ppn, 1, 0b10, true, false});
    central.map(0x10, mem::PageInfo{ppn, 1, 0b10, true, false});

    auto req = test::makeReq(0x10, 0);
    host.handleFault(req);
    eq.run(); // walk completes, request resolves

    // Late remote success: must be a no-op.
    mmu::RemoteLookupPtr rl = mmu::makeRemoteLookup();
    rl->req = req;
    rl->success = true;
    rl->result = tlb::TlbEntry{ppn, 1, true, false};
    host.remoteLookupDone(rl);
    eq.run();
    EXPECT_EQ(resolutions, 1);
    EXPECT_EQ(host.stats().forwardSuccess, 1u);
}

TEST(EdgeCases, SingleGpuSystemHasNoSharing)
{
    wl::SyntheticSpec spec;
    spec.name = "solo";
    spec.numCtas = 16;
    spec.memOpsPerCta = 20;
    spec.regions = {{.name = "r", .pages = 128,
                     .pattern = wl::Pattern::Random, .shareDegree = 64,
                     .weight = 1.0, .writeFrac = 0.5, .reuse = 2}};
    wl::SyntheticWorkload workload(spec);
    cfg::SystemConfig config = sys::baselineConfig();
    config.numGpus = 1;
    config.cusPerGpu = 4;
    sys::SimResults r = sys::runWorkload(workload, config);
    // With one GPU and prewarm, "shared" data is simply local.
    EXPECT_EQ(r.farFaults, 0u);
    EXPECT_EQ(r.migrations, 0u);
    EXPECT_EQ(r.sharingAccesses.fraction(1), 1.0);
}

TEST(EdgeCases, ThirtyTwoGpuSmoke)
{
    wl::SyntheticSpec spec;
    spec.name = "wide";
    spec.numCtas = 128;
    spec.memOpsPerCta = 10;
    spec.regions = {{.name = "hot", .pages = 128,
                     .pattern = wl::Pattern::Random, .shareDegree = 64,
                     .weight = 1.0, .writeFrac = 0.2, .reuse = 2}};
    wl::SyntheticWorkload workload(spec);
    cfg::SystemConfig config = sys::transFwConfig();
    config.numGpus = 32;
    config.cusPerGpu = 2;
    sys::SimResults r = sys::runWorkload(workload, config);
    EXPECT_EQ(r.memOps, 128u * 10u);
    EXPECT_GT(r.farFaults, 0u);
}

TEST(EdgeCases, TraceReplayUnderTransFwAndLargePages)
{
    wl::SyntheticSpec spec;
    spec.name = "combo";
    spec.numCtas = 16;
    spec.memOpsPerCta = 15;
    spec.regions = {{.name = "r", .pages = 64, .weight = 1.0,
                     .writeFrac = 0.3, .reuse = 2}};
    wl::SyntheticWorkload original(spec);
    std::string path = "/tmp/transfw_test_combo.trace";
    wl::recordTrace(original, 4, 1, path);
    wl::TraceWorkload replay(path);

    cfg::SystemConfig config = sys::transFwConfig();
    config.cusPerGpu = 4;
    config.pageShift = mem::kLargePageShift;
    config.transFw.vpnMaskBits = 0;
    sys::SimResults r = sys::runWorkload(replay, config);
    EXPECT_EQ(r.memOps, 16u * 15u);
}

TEST(EdgeCases, ProtectionFaultRetryTerminates)
{
    // Write-after-replicate storms must converge, not livelock: two
    // GPUs alternately writing a replicated page.
    wl::SyntheticSpec spec;
    spec.name = "prot";
    spec.numCtas = 8;
    spec.memOpsPerCta = 30;
    spec.regions = {{.name = "hot", .pages = 4,
                     .pattern = wl::Pattern::Random, .shareDegree = 64,
                     .weight = 1.0, .writeFrac = 0.5, .reuse = 1}};
    wl::SyntheticWorkload workload(spec);
    cfg::SystemConfig config = sys::baselineConfig();
    config.numGpus = 2;
    config.cusPerGpu = 2;
    config.migrationPolicy = cfg::MigrationPolicy::ReadReplicate;
    sys::SimResults r = sys::runWorkload(workload, config);
    EXPECT_EQ(r.memOps, 8u * 30u);
    EXPECT_GT(r.writeInvalidations, 0u);
}

TEST(EdgeCases, ZeroWeightRegionNeverAccessed)
{
    wl::SyntheticSpec spec;
    spec.name = "deadweight";
    spec.numCtas = 8;
    spec.memOpsPerCta = 20;
    spec.regions = {
        {.name = "live", .pages = 32, .weight = 1.0, .reuse = 2},
        {.name = "dead", .pages = 32, .weight = 1e-12, .reuse = 2},
    };
    wl::SyntheticWorkload workload(spec);
    mem::Vpn dead_base = workload.regionBase(1);
    auto stream = workload.makeStream(0, 4, 1);
    wl::MemOp op;
    while (stream->next(op)) {
        for (int i = 0; i < op.numPages; ++i)
            EXPECT_LT(op.pages[static_cast<std::size_t>(i)].vpn,
                      dead_base);
    }
}
