#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "sim/event_queue.hpp"

using namespace transfw;

TEST(EventQueue, RunsInTimeOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ReentrantScheduling)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(1, [&] {
            ++fired;
            eq.schedule(1, [&] { ++fired; });
        });
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 3u);
}

TEST(EventQueue, RunUntilStopsEarly)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    EXPECT_EQ(eq.run(15), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, WeakEventsRunWhileStrongWorkRemains)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(30, [&] { order.push_back(3); });
    eq.scheduleWeak(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TrailingWeakEventsNeitherRunNorAdvanceClock)
{
    sim::EventQueue eq;
    int weakFired = 0;
    eq.schedule(10, [] {});
    eq.scheduleWeak(25, [&] { ++weakFired; });
    eq.run();
    EXPECT_EQ(weakFired, 0);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, WeakOnlyQueueDrainsImmediately)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.scheduleWeak(5, [&] { ++fired; });
    EXPECT_EQ(eq.run(), 0u);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, SelfReschedulingWeakEventEndsWithStrongWork)
{
    // The interval-sampler shape: a weak event that reschedules itself
    // forever must stop exactly when strong work stops.
    sim::EventQueue eq;
    std::vector<sim::Tick> samples;
    std::function<void()> tick = [&] {
        samples.push_back(eq.now());
        eq.scheduleWeak(10, tick);
    };
    eq.scheduleWeak(0, tick);
    eq.schedule(35, [] {});
    eq.run();
    EXPECT_EQ(samples, (std::vector<sim::Tick>{0, 10, 20, 30}));
    EXPECT_EQ(eq.now(), 35u);
    EXPECT_EQ(eq.strongPending(), 0u);
}

TEST(EventQueue, StrongPendingCountsOnlyStrong)
{
    sim::EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    eq.scheduleWeak(3, [] {});
    EXPECT_EQ(eq.pending(), 3u);
    EXPECT_EQ(eq.strongPending(), 2u);
    EXPECT_EQ(eq.weakPending(), 1u);
}

TEST(EventQueue, PendingIsZeroWhenOnlyWeakEventsRemain)
{
    // Weak-only events will never run, so a caller polling pending()
    // to decide whether the simulation is live must see zero.
    sim::EventQueue eq;
    eq.scheduleWeak(5, [] {});
    eq.scheduleWeak(6, [] {});
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.weakPending(), 2u);
    EXPECT_FALSE(eq.empty());
    EXPECT_EQ(eq.run(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.weakPending(), 0u);
}

TEST(EventQueue, RunUntilWithOnlyWeakEventsBeforeBoundary)
{
    // A weak event before the boundary runs (strong work still exists
    // beyond it); the strong event past the boundary stays pending and
    // now() rests at the weak event's tick.
    sim::EventQueue eq;
    std::vector<int> order;
    eq.scheduleWeak(10, [&] { order.push_back(1); });
    eq.schedule(50, [&] { order.push_back(2); });
    EXPECT_EQ(eq.run(20), 1u);
    EXPECT_EQ(order, (std::vector<int>{1}));
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, FarEventsBeyondBucketWindow)
{
    // Delays past the bucket window take the fallback-heap path; the
    // (tick, insertion) order contract must hold across both levels.
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(5000, [&] { order.push_back(3); });
    eq.schedule(2000, [&] { order.push_back(2); });
    eq.schedule(3, [&] { order.push_back(1); });
    eq.schedule(5000, [&] { order.push_back(4); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(eq.now(), 5000u);
}

TEST(EventQueue, FarAndNearEventsAtSameTickKeepFifoOrder)
{
    // Schedule tick 1500 first from afar (heap), then walk time close
    // enough that a second event at 1500 lands in a bucket: the heap
    // entry was inserted first and must fire first.
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(1500, [&] { order.push_back(1); });
    eq.schedule(600, [&] {
        // now = 600: tick 1500 is within the window now.
        eq.scheduleAt(1500, [&] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, LongChainCrossesWindowRepeatedly)
{
    // A self-rescheduling chain whose hops straddle the window exercises
    // bucket wrap-around and heap migration many times.
    sim::EventQueue eq;
    std::uint64_t fired = 0;
    std::function<void()> hop = [&] {
        if (++fired < 500)
            eq.schedule(fired % 3 == 0 ? 1700 : 37, hop);
    };
    eq.schedule(0, hop);
    EXPECT_EQ(eq.run(), 500u);
    EXPECT_EQ(fired, 500u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, MoveOnlyCallback)
{
    // std::function required copyable callables; the event kernel must
    // accept move-only ones (e.g. capturing a unique_ptr).
    sim::EventQueue eq;
    int fired = 0;
    auto payload = std::make_unique<int>(41);
    eq.schedule(1, [&fired, p = std::move(payload)] { fired = *p + 1; });
    eq.run();
    EXPECT_EQ(fired, 42);
}

TEST(EventQueue, RunOneAcrossWindowBoundary)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(2, [&] { order.push_back(1); });
    eq.schedule(4000, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.runOne());
    EXPECT_EQ(eq.now(), 2u);
    EXPECT_TRUE(eq.runOne());
    EXPECT_EQ(eq.now(), 4000u);
    EXPECT_FALSE(eq.runOne());
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}
