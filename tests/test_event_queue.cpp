#include <gtest/gtest.h>

#include "sim/event_queue.hpp"

using namespace transfw;

TEST(EventQueue, RunsInTimeOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ReentrantScheduling)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(1, [&] {
            ++fired;
            eq.schedule(1, [&] { ++fired; });
        });
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 3u);
}

TEST(EventQueue, RunUntilStopsEarly)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    EXPECT_EQ(eq.run(15), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, WeakEventsRunWhileStrongWorkRemains)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(30, [&] { order.push_back(3); });
    eq.scheduleWeak(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TrailingWeakEventsNeitherRunNorAdvanceClock)
{
    sim::EventQueue eq;
    int weakFired = 0;
    eq.schedule(10, [] {});
    eq.scheduleWeak(25, [&] { ++weakFired; });
    eq.run();
    EXPECT_EQ(weakFired, 0);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, WeakOnlyQueueDrainsImmediately)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.scheduleWeak(5, [&] { ++fired; });
    EXPECT_EQ(eq.run(), 0u);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, SelfReschedulingWeakEventEndsWithStrongWork)
{
    // The interval-sampler shape: a weak event that reschedules itself
    // forever must stop exactly when strong work stops.
    sim::EventQueue eq;
    std::vector<sim::Tick> samples;
    std::function<void()> tick = [&] {
        samples.push_back(eq.now());
        eq.scheduleWeak(10, tick);
    };
    eq.scheduleWeak(0, tick);
    eq.schedule(35, [] {});
    eq.run();
    EXPECT_EQ(samples, (std::vector<sim::Tick>{0, 10, 20, 30}));
    EXPECT_EQ(eq.now(), 35u);
    EXPECT_EQ(eq.strongPending(), 0u);
}

TEST(EventQueue, StrongPendingCountsOnlyStrong)
{
    sim::EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    eq.scheduleWeak(3, [] {});
    EXPECT_EQ(eq.pending(), 3u);
    EXPECT_EQ(eq.strongPending(), 2u);
}
