#include <gtest/gtest.h>

#include "sim/event_queue.hpp"

using namespace transfw;

TEST(EventQueue, RunsInTimeOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ReentrantScheduling)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(1, [&] {
            ++fired;
            eq.schedule(1, [&] { ++fired; });
        });
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 3u);
}

TEST(EventQueue, RunUntilStopsEarly)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    EXPECT_EQ(eq.run(15), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}
