/**
 * Fabric & shard observability coverage: per-traversal HopTiming
 * splits, lazy per-link histograms (zero-traffic links stay empty but
 * valid), ragged-row mesh routing including the single-row degenerate
 * grid, the per-route hop-distance aggregates, the traced-route hook,
 * the space-saving top-K sketch behind the hot-VPN-group tracker, and
 * the whole-system guarantee that per-hop attribution balances its
 * buckets (obs.checkViolations == 0) on fabric-heavy pod configs.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "interconnect/network.hpp"
#include "obs/topk.hpp"
#include "transfw/transfw.hpp"

using namespace transfw;

// --- HopTiming splits ---------------------------------------------------

TEST(LinkTiming, DataSplitAccountsEveryCycle)
{
    sim::EventQueue eq;
    ic::Link link(eq, "t.link", ic::LinkConfig{100, 16});
    // 1600 bytes at 16 B/cycle = 100 cycles of serialization.
    ic::HopTiming first, second;
    link.send(1600, [] {}, &first);
    link.send(1600, [] {}, &second);
    EXPECT_EQ(first.wait, 0u);
    EXPECT_EQ(first.ser, 100u);
    EXPECT_EQ(first.prop, 100u);
    EXPECT_EQ(first.arrive, first.total());
    // The second message queues behind the first's serialization.
    EXPECT_EQ(second.wait, 100u);
    EXPECT_EQ(second.ser, 100u);
    EXPECT_EQ(second.prop, 100u);
    EXPECT_EQ(second.arrive, 300u);
    eq.run();
}

TEST(LinkTiming, CtrlSplitNeverQueues)
{
    sim::EventQueue eq;
    ic::Link link(eq, "t.link", ic::LinkConfig{150, 16});
    // Saturate the data channel first; the priority channel must not
    // see any of that occupancy.
    link.send(16000, [] {});
    ic::HopTiming t;
    link.sendCtrl(32, [] {}, &t);
    EXPECT_EQ(t.wait, 0u);
    EXPECT_EQ(t.ser, 2u);
    EXPECT_EQ(t.prop, 150u);
    EXPECT_EQ(t.arrive, 152u);
    eq.run();
}

#if TRANSFW_OBS

TEST(LinkTiming, ZeroTrafficLinkHasEmptyButValidHistogram)
{
    sim::EventQueue eq;
    ic::Link idle(eq, "t.idle", ic::LinkConfig{});
    // No allocation, no counts — but every accessor answers.
    EXPECT_EQ(idle.queueWaitHistogram().count(), 0u);
    EXPECT_EQ(idle.queueWaitMean(), 0.0);
    EXPECT_EQ(idle.peakQueueDepth(), 0u);
    EXPECT_EQ(idle.busyCycles(), 0u);
    EXPECT_EQ(idle.utilization(), 0.0);
    EXPECT_EQ(idle.queueDepth(), 0u);

    // First traffic materializes the histogram.
    ic::Link busy(eq, "t.busy", ic::LinkConfig{100, 16});
    busy.send(1600, [] {});
    busy.send(1600, [] {});
    EXPECT_EQ(busy.queueWaitHistogram().count(), 2u);
    EXPECT_EQ(busy.queueWaitMean(), 50.0); // waits 0 and 100
    EXPECT_EQ(busy.peakQueueDepth(), 2u);
    EXPECT_EQ(busy.busyCycles(), 200u);
    eq.run();
}

TEST(LinkTiming, CtrlTrafficIsCountedButNotHistogrammed)
{
    sim::EventQueue eq;
    ic::Link link(eq, "t.ctrl", ic::LinkConfig{});
    link.sendCtrl(32, [] {});
    link.sendCtrl(32, [] {});
    EXPECT_EQ(link.ctrlMessages(), 2u);
    EXPECT_EQ(link.messages(), 2u);
    // The priority channel never queues, so it never feeds the
    // queue-wait histogram.
    EXPECT_EQ(link.queueWaitHistogram().count(), 0u);
    eq.run();
}

#endif // TRANSFW_OBS

// --- ragged / degenerate mesh routing -----------------------------------

TEST(MeshRouting, RaggedNonSquareMeshRoutes)
{
    // 7 GPUs, 3 columns: rows {0,1,2} {3,4,5} {6}. The last row has a
    // single populated slot, so X-first routing toward column > 0 must
    // detour through the row above.
    sim::EventQueue eq;
    ic::Network net(eq, 7, ic::LinkConfig{}, ic::LinkConfig{},
                    ic::Topology::Mesh2D, 3);
    EXPECT_EQ(net.meshCols(), 3);
    EXPECT_EQ(net.peerHops(6, 3), 1);
    EXPECT_EQ(net.peerHops(6, 0), 2);
    // 6 -> 5: the (2,1)/(2,2) slots don't exist; route climbs to row 1
    // first and still takes the Manhattan distance.
    EXPECT_EQ(net.peerHops(6, 5), 3);
    EXPECT_EQ(net.peerHops(6, 2), 4);
    EXPECT_EQ(net.peerHops(2, 6), 4);
    // Every pair routes and terminates.
    for (int a = 0; a < 7; ++a)
        for (int b = 0; b < 7; ++b)
            if (a != b) {
                EXPECT_GT(net.peerHops(a, b), 0)
                    << a << " -> " << b;
                bool done = false;
                net.sendPeerCtrl(a, b, 32, [&] { done = true; });
                eq.run();
                EXPECT_TRUE(done) << a << " -> " << b;
            }
}

TEST(MeshRouting, SingleRowMeshIsAChain)
{
    // meshCols == numGpus degenerates to a linear chain: hop count is
    // plain index distance and the ends are NOT connected (not a ring).
    sim::EventQueue eq;
    ic::Network net(eq, 5, ic::LinkConfig{}, ic::LinkConfig{},
                    ic::Topology::Mesh2D, 5);
    EXPECT_EQ(net.meshCols(), 5);
    EXPECT_EQ(net.peerHops(0, 4), 4);
    EXPECT_EQ(net.peerHops(4, 0), 4);
    EXPECT_EQ(net.peerHops(1, 3), 2);
    // 2 * 4 directed edges along the chain, nothing else.
    EXPECT_EQ(net.fabricLinkCount(), 8u);
    sim::Tick done = 0;
    net.sendPeerCtrl(0, 4, 32, [&] { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, 4 * (2u + 150u));
}

TEST(MeshRouting, SingleColumnMeshRoutes)
{
    // One column: every hop is vertical.
    sim::EventQueue eq;
    ic::Network net(eq, 4, ic::LinkConfig{}, ic::LinkConfig{},
                    ic::Topology::Mesh2D, 1);
    EXPECT_EQ(net.peerHops(0, 3), 3);
    EXPECT_EQ(net.fabricLinkCount(), 6u);
    bool done = false;
    net.sendPeer(3, 0, 4096, [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
}

#if TRANSFW_OBS

// --- hop-distance aggregates & traced routes ----------------------------

TEST(FabricObs, HopDistanceAggregatesPerRoute)
{
    sim::EventQueue eq;
    ic::Network net(eq, 8, ic::LinkConfig{}, ic::LinkConfig{},
                    ic::Topology::Ring);
    net.sendPeer(0, 1, 256, [] {}); // 1 hop
    net.sendPeer(0, 2, 256, [] {}); // 2 hops
    net.sendPeer(0, 4, 256, [] {}); // 4 hops
    net.sendPeer(2, 6, 512, [] {}); // 4 hops
    eq.run();
    const auto &agg = net.hopDistances();
    ASSERT_GE(agg.size(), 5u);
    EXPECT_EQ(agg[0].messages, 0u); // routes are >= 1 hop
    EXPECT_EQ(agg[1].messages, 1u);
    EXPECT_EQ(agg[1].bytes, 256u);
    EXPECT_EQ(agg[2].messages, 1u);
    EXPECT_EQ(agg[3].messages, 0u);
    EXPECT_EQ(agg[4].messages, 2u);
    EXPECT_EQ(agg[4].bytes, 256u + 512u);
}

TEST(FabricObs, TracedRouteSeesEveryHopInOrder)
{
    sim::EventQueue eq;
    ic::Network net(eq, 8, ic::LinkConfig{150, 256}, ic::LinkConfig{150, 256},
                    ic::Topology::Ring);
    std::vector<std::pair<int, int>> hops;
    sim::Tick wait_sum = 0;
    bool done = false;
    net.sendPeerTraced(
        1, 4, 4096,
        [&](int from, int to, const ic::HopTiming &t) {
            hops.emplace_back(from, to);
            wait_sum += t.wait;
            EXPECT_EQ(t.prop, 150u);
            EXPECT_EQ(t.ser, 16u); // 4096 B at 256 B/cycle
        },
        [&] { done = true; });
    eq.run();
    ASSERT_TRUE(done);
    std::vector<std::pair<int, int>> expected = {{1, 2}, {2, 3}, {3, 4}};
    EXPECT_EQ(hops, expected);
    EXPECT_EQ(wait_sum, 0u); // nothing else on the wire
}

// --- the space-saving sketch --------------------------------------------

TEST(TopKSketch, ExactBelowCapacity)
{
    obs::TopK sketch(4);
    for (int i = 0; i < 5; ++i)
        sketch.note(10);
    for (int i = 0; i < 3; ++i)
        sketch.note(20);
    sketch.note(30);
    EXPECT_EQ(sketch.total(), 9u);
    EXPECT_EQ(sketch.tracked(), 3u);
    auto top = sketch.top();
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].key, 10u);
    EXPECT_EQ(top[0].count, 5u);
    EXPECT_EQ(top[0].error, 0u);
    EXPECT_EQ(top[1].key, 20u);
    EXPECT_EQ(top[2].key, 30u);
    EXPECT_DOUBLE_EQ(sketch.topShare(2), 8.0 / 9.0);
}

TEST(TopKSketch, EvictionInheritsMinimumWithErrorBound)
{
    obs::TopK sketch(2);
    for (int i = 0; i < 10; ++i)
        sketch.note(1);
    for (int i = 0; i < 4; ++i)
        sketch.note(2);
    // Unseen key with a full table: evicts key 2 (the minimum, count
    // 4) and inherits its count as the error bound.
    sketch.note(3);
    EXPECT_EQ(sketch.tracked(), 2u);
    auto top = sketch.top();
    EXPECT_EQ(top[0].key, 1u);
    EXPECT_EQ(top[0].count, 10u);
    EXPECT_EQ(top[1].key, 3u);
    EXPECT_EQ(top[1].count, 5u); // inherited 4, +1 for the hit
    EXPECT_EQ(top[1].error, 4u);
    // Space-saving invariants: estimate >= true count >= estimate - error.
    EXPECT_GE(top[1].count, 1u);
    EXPECT_LE(top[1].count - top[1].error, 1u);
}

TEST(TopKSketch, HeavyHitterSurvivesChurn)
{
    // A key holding >1/capacity of the stream can never be evicted —
    // the guarantee the hot-group tracker relies on.
    obs::TopK sketch(8);
    std::uint64_t hot_true = 0;
    for (std::uint64_t i = 0; i < 4000; ++i) {
        if (i % 3 == 0) {
            sketch.note(0xbeef);
            ++hot_true;
        } else {
            sketch.note(1000 + (i * 7) % 200); // 200-key churn
        }
    }
    auto top = sketch.top(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].key, 0xbeefu);
    EXPECT_GE(top[0].count, hot_true);
    EXPECT_LE(top[0].count - top[0].error, hot_true);
    EXPECT_GT(sketch.topShare(1), 0.30);
}

TEST(TopKSketch, DeterministicTieBreakAndClear)
{
    obs::TopK sketch(4);
    sketch.note(7);
    sketch.note(3);
    sketch.note(9);
    auto top = sketch.top();
    ASSERT_EQ(top.size(), 3u);
    // Equal counts: ascending key order, every run.
    EXPECT_EQ(top[0].key, 3u);
    EXPECT_EQ(top[1].key, 7u);
    EXPECT_EQ(top[2].key, 9u);
    sketch.clear();
    EXPECT_EQ(sketch.total(), 0u);
    EXPECT_EQ(sketch.tracked(), 0u);
    EXPECT_EQ(sketch.topShare(4), 0.0);
}

// --- whole-system: per-hop attribution balances -------------------------

namespace {

cfg::SystemConfig
fabricPod(int gpus, int shards, ic::Topology topo)
{
    cfg::SystemConfig config = sys::transFwConfig();
    config.numGpus = gpus;
    config.cusPerGpu = 4;
    config.peerTopology = topo;
    config.hostShards = shards;
    return config;
}

} // namespace

TEST(FabricObsSystem, PerHopSumsBalanceOnRoutedFabric)
{
    // Multi-hop fabric + shard crossbar: the per-hop watchdog (sum of
    // a request's hop charges == its Network + HostRoute buckets) must
    // hold for every checked request.
    sys::SimResults r = sys::runApp(
        "MT", fabricPod(16, 4, ic::Topology::Ring), 0.05);
    EXPECT_GT(r.obsCheckedRequests, 0u);
    EXPECT_EQ(r.obsCheckViolations, 0u);

    // The fabric report is populated: stable link order, traffic on
    // ring edges, and every per-link histogram is valid.
    EXPECT_FALSE(r.fabricLinks.empty());
    std::uint64_t fabric_msgs = 0;
    for (const auto &fl : r.fabricLinks) {
        if (fl.fabric)
            fabric_msgs += fl.messages;
        if (!fl.messages) {
            EXPECT_EQ(fl.queueWaitMean, 0.0);
            EXPECT_EQ(fl.peakQueueDepth, 0u);
        }
    }
    EXPECT_GT(fabric_msgs, 0u);
    EXPECT_FALSE(r.fabricWorstLink.empty());

    // Multi-hop routes exist on a 16-GPU ring (up to 8 hops).
    bool multi_hop = false;
    for (const auto &hd : r.fabricHopDist)
        multi_hop |= hd.hops > 1 && hd.messages > 0;
    EXPECT_TRUE(multi_hop);

    // The hot-group tracker saw the FT lookup stream.
    EXPECT_FALSE(r.hotVpnGroups.empty());
    for (const auto &hg : r.hotVpnGroups) {
        EXPECT_GE(hg.shard, 0);
        EXPECT_LT(hg.shard, 4);
        EXPECT_GT(hg.count, 0u);
    }
    // Skew scalars are derived from the always-on shard stats.
    EXPECT_GE(r.shardSkewWaitRatio, 1.0);
    EXPECT_GT(r.shardSkewLoadShareMax, 0.0);
    EXPECT_LE(r.shardSkewLoadShareMax, 1.0);
}

TEST(FabricObsSystem, PerHopSumsBalanceAcrossTopologies)
{
    for (ic::Topology topo :
         {ic::Topology::AllToAll, ic::Topology::Mesh2D,
          ic::Topology::Switch}) {
        SCOPED_TRACE(ic::topologyName(topo));
        sys::SimResults r =
            sys::runApp("MT", fabricPod(8, 2, topo), 0.05);
        EXPECT_GT(r.obsCheckedRequests, 0u);
        EXPECT_EQ(r.obsCheckViolations, 0u);
    }
}

TEST(FabricObsSystem, UvmDriverModePerHopStillBalances)
{
    // The software-fault path charges star hops through the driver's
    // batching layer; the invariant must survive it too.
    cfg::SystemConfig config = sys::transFwConfig();
    config.numGpus = 8;
    config.cusPerGpu = 4;
    config.faultMode = cfg::FaultMode::UvmDriver;
    sys::SimResults r = sys::runApp("MT", config, 0.05);
    EXPECT_GT(r.obsCheckedRequests, 0u);
    EXPECT_EQ(r.obsCheckViolations, 0u);
}

#endif // TRANSFW_OBS
