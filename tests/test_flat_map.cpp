#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/flat_map.hpp"
#include "sim/random.hpp"

using transfw::sim::FlatMap;
using transfw::sim::FlatSet;
using transfw::sim::InlineVec;
using transfw::sim::Rng;

TEST(FlatMap, EmptyBehaviour)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find(7), map.end());
    EXPECT_EQ(map.count(7), 0u);
    EXPECT_FALSE(map.contains(7));
    EXPECT_EQ(map.erase(7), 0u);
    EXPECT_EQ(map.begin(), map.end());
}

TEST(FlatMap, BasicInsertFindErase)
{
    FlatMap<std::uint64_t, int> map;
    map[10] = 1;
    map[20] = 2;
    auto [it, inserted] = map.try_emplace(30, 3);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(it->second, 3);
    auto [it2, inserted2] = map.try_emplace(30, 99);
    EXPECT_FALSE(inserted2);
    EXPECT_EQ(it2->second, 3); // try_emplace does not overwrite
    map.insert_or_assign(30, 33);
    EXPECT_EQ(map.find(30)->second, 33);
    EXPECT_EQ(map.size(), 3u);
    EXPECT_EQ(map.erase(20), 1u);
    EXPECT_EQ(map.find(20), map.end());
    EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMap, OperatorBracketDefaultConstructs)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    EXPECT_EQ(map[42], 0u);
    map[42] += 5;
    EXPECT_EQ(map[42], 5u);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, IterationCoversAllLiveEntries)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    for (std::uint64_t k = 0; k < 100; ++k)
        map[k * 977] = k;
    map.erase(0);
    map.erase(50 * 977);
    std::unordered_map<std::uint64_t, std::uint64_t> seen;
    for (const auto &[k, v] : map)
        seen.emplace(k, v);
    EXPECT_EQ(seen.size(), 98u);
    EXPECT_EQ(seen.count(977), 1u);
    EXPECT_EQ(seen.count(50 * 977), 0u);
}

TEST(FlatMap, EraseByIterator)
{
    FlatMap<std::uint64_t, int> map;
    map[1] = 10;
    map[2] = 20;
    auto it = map.find(1);
    ASSERT_NE(it, map.end());
    map.erase(it);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_FALSE(map.contains(1));
    EXPECT_TRUE(map.contains(2));
}

TEST(FlatMap, ReserveAvoidsLossAndClearResets)
{
    FlatMap<std::uint64_t, int> map;
    map.reserve(1000);
    for (std::uint64_t k = 0; k < 1000; ++k)
        map[k] = static_cast<int>(k);
    EXPECT_EQ(map.size(), 1000u);
    for (std::uint64_t k = 0; k < 1000; ++k)
        ASSERT_EQ(map.find(k)->second, static_cast<int>(k));
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(1), map.end());
    map[5] = 50;
    EXPECT_EQ(map.find(5)->second, 50);
}

TEST(FlatMap, TombstoneChurnStaysCorrect)
{
    // Insert/erase cycling through a small keyspace leaves many
    // tombstones; the same-capacity rebuild must keep lookups correct.
    FlatMap<std::uint64_t, std::uint64_t> map;
    for (std::uint64_t round = 0; round < 200; ++round) {
        for (std::uint64_t k = 0; k < 16; ++k)
            map[round * 16 + k] = round;
        for (std::uint64_t k = 0; k < 16; ++k)
            ASSERT_EQ(map.erase(round * 16 + k), 1u);
    }
    EXPECT_TRUE(map.empty());
    map[7] = 7;
    EXPECT_EQ(map.find(7)->second, 7u);
}

TEST(FlatMap, MoveOnlyValues)
{
    FlatMap<std::uint64_t, std::unique_ptr<int>> map;
    for (std::uint64_t k = 0; k < 100; ++k) // forces rehashes
        map[k] = std::make_unique<int>(static_cast<int>(k));
    for (std::uint64_t k = 0; k < 100; ++k) {
        auto it = map.find(k);
        ASSERT_NE(it, map.end());
        ASSERT_NE(it->second, nullptr);
        EXPECT_EQ(*it->second, static_cast<int>(k));
    }
    map.erase(3);
    EXPECT_FALSE(map.contains(3));
}

/**
 * Differential fuzz: a long random op stream applied to FlatMap and
 * std::unordered_map must observe identical contents throughout.
 */
TEST(FlatMap, DifferentialFuzzAgainstUnorderedMap)
{
    Rng rng(0xF1A7F1A7);
    FlatMap<std::uint64_t, std::uint64_t> flat;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;

    for (int op = 0; op < 200000; ++op) {
        // Small keyspace so inserts, hits, misses and erases all occur.
        std::uint64_t key = rng.range(512) * 0x9E3779B97F4A7C15ULL;
        switch (rng.range(6)) {
        case 0:
        case 1: { // operator[] write
            std::uint64_t v = rng.next();
            flat[key] = v;
            ref[key] = v;
            break;
        }
        case 2: { // try_emplace
            std::uint64_t v = rng.next();
            auto [fit, fIns] = flat.try_emplace(key, v);
            auto [rit, rIns] = ref.try_emplace(key, v);
            ASSERT_EQ(fIns, rIns);
            ASSERT_EQ(fit->second, rit->second);
            break;
        }
        case 3: // erase
            ASSERT_EQ(flat.erase(key), ref.erase(key));
            break;
        case 4: { // lookup
            auto fit = flat.find(key);
            auto rit = ref.find(key);
            ASSERT_EQ(fit == flat.end(), rit == ref.end());
            if (rit != ref.end()) {
                ASSERT_EQ(fit->second, rit->second);
            }
            break;
        }
        case 5: { // insert_or_assign
            std::uint64_t v = rng.next();
            auto [fit, fIns] = flat.insert_or_assign(key, v);
            bool rIns = ref.insert_or_assign(key, v).second;
            ASSERT_EQ(fIns, rIns);
            ASSERT_EQ(fit->second, v);
            break;
        }
        }
        ASSERT_EQ(flat.size(), ref.size());
        if (op % 5000 == 0) { // full-content audit, both directions
            for (const auto &[k, v] : ref) {
                auto fit = flat.find(k);
                ASSERT_NE(fit, flat.end()) << k;
                ASSERT_EQ(fit->second, v) << k;
            }
            std::size_t seen = 0;
            for (const auto &[k, v] : flat) {
                auto rit = ref.find(k);
                ASSERT_NE(rit, ref.end()) << k;
                ASSERT_EQ(rit->second, v) << k;
                ++seen;
            }
            ASSERT_EQ(seen, ref.size());
        }
    }
}

TEST(FlatMap, GaugeAccessorsTrackOccupancy)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_EQ(map.capacity(), 0u);
    EXPECT_EQ(map.loadFactor(), 0.0);
    EXPECT_EQ(map.tombstones(), 0u);

    for (std::uint64_t k = 0; k < 64; ++k)
        map[k * 977] = static_cast<int>(k);
    EXPECT_GE(map.capacity(), map.size());
    EXPECT_EQ(map.tombstones(), 0u);
    EXPECT_NEAR(map.loadFactor(),
                static_cast<double>(map.size()) / map.capacity(), 1e-12);
    EXPECT_GT(map.loadFactor(), 0.0);
    EXPECT_LT(map.loadFactor(), 1.0); // growth policy keeps headroom

    // Erase half: slots whose probe chain ends right behind them
    // revert straight to empty, the rest become tombstones — so the
    // gauge counts exactly the dead slots still polluting probe
    // sequences, never more than the erase count.
    for (std::uint64_t k = 0; k < 32; ++k)
        ASSERT_EQ(map.erase(k * 977), 1u);
    EXPECT_EQ(map.size(), 32u);
    EXPECT_LE(map.tombstones(), 32u);
    for (std::uint64_t k = 32; k < 64; ++k)
        EXPECT_EQ(map[k * 977], static_cast<int>(k));
    double halved = map.loadFactor();
    EXPECT_NEAR(halved, static_cast<double>(32) / map.capacity(), 1e-12);

    map.clear();
    EXPECT_EQ(map.loadFactor(), 0.0);
    EXPECT_EQ(map.tombstones(), 0u);
}

TEST(FlatSet, ForwardsGaugeAccessors)
{
    FlatSet<std::uint64_t> set;
    EXPECT_EQ(set.capacity(), 0u);
    for (std::uint64_t k = 0; k < 24; ++k)
        set.insert(k * 31);
    set.erase(0);
    EXPECT_GE(set.capacity(), set.size());
    EXPECT_EQ(set.tombstones(), 1u);
    EXPECT_NEAR(set.loadFactor(),
                static_cast<double>(set.size()) / set.capacity(), 1e-12);
}

TEST(FlatSet, MirrorsUnorderedSet)
{
    Rng rng(0x5E75E7);
    FlatSet<std::uint64_t> flat;
    std::unordered_set<std::uint64_t> ref;
    for (int op = 0; op < 50000; ++op) {
        std::uint64_t key = rng.range(256);
        if (rng.chance(0.6)) {
            ASSERT_EQ(flat.insert(key), ref.insert(key).second);
        } else {
            ASSERT_EQ(flat.erase(key), ref.erase(key));
        }
        ASSERT_EQ(flat.size(), ref.size());
        ASSERT_EQ(flat.contains(key), ref.count(key) != 0);
    }
}

TEST(InlineVec, StaysInlineUpToN)
{
    InlineVec<int, 4> vec;
    for (int i = 0; i < 4; ++i)
        vec.push_back(i);
    EXPECT_EQ(vec.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(vec[i], i);
}

TEST(InlineVec, SpillsToHeapAndKeepsContents)
{
    InlineVec<int, 4> vec;
    for (int i = 0; i < 100; ++i)
        vec.emplace_back(i);
    EXPECT_EQ(vec.size(), 100u);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(vec[i], i);
    vec.clear();
    EXPECT_TRUE(vec.empty());
    vec.push_back(7); // reusable after clear
    EXPECT_EQ(vec[0], 7);
}

TEST(InlineVec, MoveInlineAndHeap)
{
    InlineVec<std::unique_ptr<int>, 2> small;
    small.push_back(std::make_unique<int>(1));
    InlineVec<std::unique_ptr<int>, 2> movedSmall(std::move(small));
    ASSERT_EQ(movedSmall.size(), 1u);
    EXPECT_EQ(*movedSmall[0], 1);
    EXPECT_TRUE(small.empty()); // NOLINT(bugprone-use-after-move)

    InlineVec<std::unique_ptr<int>, 2> big;
    for (int i = 0; i < 10; ++i)
        big.push_back(std::make_unique<int>(i));
    InlineVec<std::unique_ptr<int>, 2> movedBig;
    movedBig = std::move(big);
    ASSERT_EQ(movedBig.size(), 10u);
    for (int i = 0; i < 10; ++i)
        ASSERT_EQ(*movedBig[i], i);
    EXPECT_TRUE(big.empty()); // NOLINT(bugprone-use-after-move)

    // Move-assign over a heap-spilled target releases its block.
    InlineVec<std::unique_ptr<int>, 2> target;
    for (int i = 0; i < 8; ++i)
        target.push_back(std::make_unique<int>(100 + i));
    target = std::move(movedBig);
    ASSERT_EQ(target.size(), 10u);
    EXPECT_EQ(*target[9], 9);
}

TEST(InlineVec, RangeForIteration)
{
    InlineVec<int, 4> vec;
    for (int i = 0; i < 9; ++i)
        vec.push_back(i * 2);
    int expected = 0;
    for (int v : vec) {
        EXPECT_EQ(v, expected);
        expected += 2;
    }
    EXPECT_EQ(expected, 18);
}
