#include <gtest/gtest.h>

#include "transfw/transfw.hpp"

using namespace transfw;

/**
 * Randomized robustness: generate workload specs and configurations
 * from a seeded RNG and require every combination to run to
 * completion with consistent accounting. Catches lifecycle bugs
 * (lost requests, double completions, frame leaks) that targeted
 * tests miss.
 */
namespace {

wl::SyntheticSpec
randomSpec(sim::Rng &rng, int index)
{
    wl::SyntheticSpec spec;
    spec.name = sim::strfmt("fuzz%d", index);
    spec.numCtas = 16 + static_cast<int>(rng.range(48));
    spec.memOpsPerCta = 10 + static_cast<int>(rng.range(40));
    spec.computePerOp = static_cast<std::uint32_t>(rng.range(20));
    spec.phases = 1 + static_cast<int>(rng.range(3));
    spec.pagesPerOp = 1 + static_cast<int>(rng.range(2));
    int regions = 1 + static_cast<int>(rng.range(3));
    for (int r = 0; r < regions; ++r) {
        wl::RegionSpec region;
        region.name = sim::strfmt("r%d", r);
        region.pages = 16 + rng.range(128);
        region.pattern = static_cast<wl::Pattern>(rng.range(3));
        region.shareDegree = 1 + static_cast<int>(rng.range(4));
        region.weight = 0.2 + rng.uniform();
        region.writeFrac = rng.uniform();
        region.reuse = 1 + static_cast<std::uint32_t>(rng.range(8));
        region.stride = 1 + rng.range(16);
        region.haloProb = rng.uniform() * 0.1;
        region.rotatePerPhase = rng.chance(0.3);
        region.alignAcrossGpus = rng.chance(0.3);
        region.alignSkewPages =
            static_cast<std::uint32_t>(rng.range(32));
        spec.regions.push_back(region);
    }
    return spec;
}

cfg::SystemConfig
randomConfig(sim::Rng &rng)
{
    cfg::SystemConfig config = sys::baselineConfig();
    config.numGpus = 1 + static_cast<int>(rng.range(6));
    config.cusPerGpu = 2 + static_cast<int>(rng.range(8));
    config.wavefrontSlotsPerCu = 1 + static_cast<int>(rng.range(4));
    config.gmmuWalkers = 1 + static_cast<int>(rng.range(8));
    config.hostWalkers = 1 + static_cast<int>(rng.range(16));
    config.pageTableLevels = rng.chance(0.5) ? 4 : 5;
    config.transFw.enabled = rng.chance(0.5);
    config.transFw.enableShortCircuit = rng.chance(0.8);
    config.transFw.enableForwarding = rng.chance(0.8);
    config.transFw.forwardThreshold = rng.uniform() * 2.0;
    config.prewarmPlacement = rng.chance(0.8);
    config.faultMode = rng.chance(0.25) ? cfg::FaultMode::UvmDriver
                                        : cfg::FaultMode::HostMmu;
    switch (rng.range(3)) {
      case 0:
        config.migrationPolicy = cfg::MigrationPolicy::OnTouch;
        break;
      case 1:
        config.migrationPolicy = cfg::MigrationPolicy::ReadReplicate;
        break;
      default:
        config.migrationPolicy = cfg::MigrationPolicy::RemoteMap;
        break;
    }
    config.pwcKind = rng.chance(0.3) ? pwc::PwcKind::Stc
                                     : pwc::PwcKind::Utc;
    config.memModel = rng.chance(0.3) ? cfg::MemModel::Hierarchy
                                      : cfg::MemModel::Simple;
    config.peerTopology = rng.chance(0.3) ? ic::Topology::Ring
                                          : ic::Topology::AllToAll;
    config.asap.enabled = rng.chance(0.2);
    config.seed = rng.next();
    return config;
}

} // namespace

TEST(Fuzz, RandomWorkloadsAndConfigsRunToCompletion)
{
    sim::Rng rng(0xF0220ULL);
    for (int trial = 0; trial < 25; ++trial) {
        wl::SyntheticSpec spec = randomSpec(rng, trial);
        wl::SyntheticWorkload workload(spec);
        cfg::SystemConfig config = randomConfig(rng);

        SCOPED_TRACE(sim::strfmt(
            "trial %d: gpus=%d policy=%d mode=%d transfw=%d", trial,
            config.numGpus, static_cast<int>(config.migrationPolicy),
            static_cast<int>(config.faultMode),
            config.transFw.enabled ? 1 : 0));

        sys::SimResults r = sys::runWorkload(workload, config);
        // Accounting invariants.
        EXPECT_EQ(r.memOps,
                  static_cast<std::uint64_t>(spec.numCtas) *
                      static_cast<std::uint64_t>(spec.memOpsPerCta));
        EXPECT_GT(r.execTime, 0u);
        EXPECT_GE(r.pageAccesses, r.memOps);
        EXPECT_EQ(r.forwards, r.forwardSuccess + r.forwardFail);
        EXPECT_LE(r.prtHits, r.prtLookups);
    }
}

TEST(Fuzz, RandomTrialsAreDeterministic)
{
    sim::Rng rng(0xDE7ULL);
    wl::SyntheticSpec spec = randomSpec(rng, 99);
    wl::SyntheticWorkload workload(spec);
    cfg::SystemConfig config = randomConfig(rng);
    sys::SimResults a = sys::runWorkload(workload, config);
    sys::SimResults b = sys::runWorkload(workload, config);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.farFaults, b.farFaults);
    EXPECT_EQ(a.bytesMoved, b.bytesMoved);
}
