#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mmu/gmmu.hpp"

using namespace transfw;

namespace {

struct GmmuHarness
{
    cfg::SystemConfig config;
    sim::EventQueue eq;
    sim::Rng rng{1};
    mem::PageTable pt;
    mmu::Gmmu gmmu;

    std::vector<mmu::XlatPtr> completed;
    std::vector<mmu::XlatPtr> faulted;
    std::vector<mmu::RemoteLookupPtr> remoteDone;

    explicit GmmuHarness(cfg::SystemConfig c = {})
        : config(std::move(c)), pt(config.geometry()),
          gmmu(eq, "gmmu", config, /*gpu_id=*/0, pt, rng)
    {
        gmmu.onComplete = [this](mmu::XlatPtr r) {
            completed.push_back(std::move(r));
        };
        gmmu.onFault = [this](mmu::XlatPtr r) {
            faulted.push_back(std::move(r));
        };
        gmmu.onRemoteDone = [this](mmu::RemoteLookupPtr rl) {
            remoteDone.push_back(std::move(rl));
        };
    }
};

} // namespace

TEST(Gmmu, LocalWalkCompletesWithFullWalkLatency)
{
    GmmuHarness h;
    h.pt.map(0x42, mem::PageInfo{7, 0, 1, true, false});
    h.gmmu.translate(test::makeReq(0x42));
    h.eq.run();
    ASSERT_EQ(h.completed.size(), 1u);
    // Cold PW-cache: five accesses at 100 cycles each.
    EXPECT_EQ(h.eq.now(), 500u);
    EXPECT_EQ(h.completed[0]->result.ppn, 7u);
    EXPECT_DOUBLE_EQ(h.completed[0]->lat.gmmuMem, 500.0);
}

TEST(Gmmu, PwcWarmSecondWalkIsShort)
{
    GmmuHarness h;
    h.pt.map(0x42, mem::PageInfo{7, 0, 1, true, false});
    h.pt.map(0x43, mem::PageInfo{8, 0, 1, true, false});
    h.gmmu.translate(test::makeReq(0x42));
    h.eq.run();
    sim::Tick first = h.eq.now();
    h.gmmu.translate(test::makeReq(0x43)); // same L2 prefix
    h.eq.run();
    EXPECT_EQ(h.eq.now() - first, 100u); // one access: leaf PTE only
}

TEST(Gmmu, UnmappedPageFaultsAfterFixedCost)
{
    GmmuHarness h;
    h.gmmu.translate(test::makeReq(0x42));
    h.eq.run();
    ASSERT_EQ(h.faulted.size(), 1u);
    EXPECT_TRUE(h.faulted[0]->faulted);
    // Early termination: one access (empty root subtree) + fault cost.
    EXPECT_EQ(h.eq.now(), 100u + h.config.faultFixedCost);
    EXPECT_EQ(h.gmmu.stats().localFaults, 1u);
}

TEST(Gmmu, QueueLimitsConcurrentWalkers)
{
    cfg::SystemConfig config;
    config.gmmuWalkers = 2;
    GmmuHarness h(config);
    // Distinct top-level subtrees so no walk benefits from another's
    // PW-cache fills: every walk is a full five-access walk.
    for (mem::Vpn vpn = 0; vpn < 6; ++vpn)
        h.pt.map(vpn << 36, mem::PageInfo{vpn, 0, 1, true, false});
    for (mem::Vpn vpn = 0; vpn < 6; ++vpn)
        h.gmmu.translate(test::makeReq(vpn << 36));
    h.eq.run();
    EXPECT_EQ(h.completed.size(), 6u);
    // 6 cold walks (500 cycles each) over 2 walkers: 3 batches.
    EXPECT_EQ(h.eq.now(), 1500u);
    EXPECT_GT(h.gmmu.stats().queueWait.maximum(), 0.0);
}

TEST(Gmmu, InfiniteWalkersOracleSkipsQueue)
{
    cfg::SystemConfig config;
    config.gmmuWalkers = 1;
    config.oracle.infiniteWalkers = true;
    GmmuHarness h(config);
    for (mem::Vpn vpn = 0; vpn < 8; ++vpn) {
        h.pt.map(vpn << 20, mem::PageInfo{vpn, 0, 1, true, false});
        h.gmmu.translate(test::makeReq(vpn << 20));
    }
    h.eq.run();
    EXPECT_EQ(h.completed.size(), 8u);
    EXPECT_EQ(h.eq.now(), 500u); // all in parallel
    EXPECT_EQ(h.gmmu.stats().queueWait.maximum(), 0.0);
}

TEST(Gmmu, InfinitePwcOracleHasOnlyColdMisses)
{
    cfg::SystemConfig config;
    config.oracle.infinitePwc = true;
    GmmuHarness h(config);
    h.pt.map(0x42, mem::PageInfo{7, 0, 1, true, false});
    h.gmmu.translate(test::makeReq(0x42));
    h.eq.run();
    sim::Tick cold = h.eq.now();
    h.gmmu.translate(test::makeReq(0x42));
    h.eq.run();
    EXPECT_EQ(h.eq.now() - cold, 100u);
}

TEST(Gmmu, WriteToReadOnlyReplicaIsProtectionFault)
{
    GmmuHarness h;
    h.pt.map(0x42, mem::PageInfo{7, 0, 1, /*writable=*/false, false});
    h.gmmu.translate(test::makeReq(0x42, 0, /*write=*/true));
    h.eq.run();
    ASSERT_EQ(h.faulted.size(), 1u);
    EXPECT_TRUE(h.faulted[0]->protectionFault);
}

TEST(Gmmu, ReadOfReadOnlyReplicaSucceeds)
{
    GmmuHarness h;
    h.pt.map(0x42, mem::PageInfo{7, 0, 1, false, false});
    h.gmmu.translate(test::makeReq(0x42, 0, false));
    h.eq.run();
    ASSERT_EQ(h.completed.size(), 1u);
    EXPECT_FALSE(h.completed[0]->result.writable);
}

TEST(Gmmu, RemoteLookupSucceedsOnLocalPage)
{
    GmmuHarness h;
    h.pt.map(0x42, mem::PageInfo{7, 0, 1, true, false});
    mmu::RemoteLookupPtr rl = mmu::makeRemoteLookup();
    rl->req = test::makeReq(0x42, /*gpu=*/1);
    rl->targetGpu = 0;
    h.gmmu.remoteLookup(rl);
    h.eq.run();
    ASSERT_EQ(h.remoteDone.size(), 1u);
    EXPECT_TRUE(h.remoteDone[0]->success);
    EXPECT_EQ(h.remoteDone[0]->result.ppn, 7u);
    EXPECT_EQ(h.gmmu.stats().remoteHits, 1u);
}

TEST(Gmmu, RemoteLookupFailsOnAbsentOrRemotePage)
{
    GmmuHarness h;
    mmu::RemoteLookupPtr rl = mmu::makeRemoteLookup();
    rl->req = test::makeReq(0x42, 1);
    h.gmmu.remoteLookup(rl);
    h.eq.run();
    ASSERT_EQ(h.remoteDone.size(), 1u);
    EXPECT_FALSE(h.remoteDone[0]->success);

    // A remote-mapped PTE cannot serve a remote lookup either.
    h.remoteDone.clear();
    h.pt.map(0x43, mem::PageInfo{9, 2, 0, true, /*remote=*/true});
    mmu::RemoteLookupPtr rl2 = mmu::makeRemoteLookup();
    rl2->req = test::makeReq(0x43, 1);
    h.gmmu.remoteLookup(rl2);
    h.eq.run();
    ASSERT_EQ(h.remoteDone.size(), 1u);
    EXPECT_FALSE(h.remoteDone[0]->success);
}

TEST(Gmmu, RemoteLookupsShareAndFillThePwc)
{
    GmmuHarness h;
    h.pt.map(0x42, mem::PageInfo{7, 0, 1, true, false});
    mmu::RemoteLookupPtr rl = mmu::makeRemoteLookup();
    rl->req = test::makeReq(0x42, 1);
    h.gmmu.remoteLookup(rl);
    h.eq.run();
    // The remote walk warmed the local PW-cache.
    EXPECT_GT(h.gmmu.pwc().probe(0x42), 0);
    EXPECT_GT(h.gmmu.stats().remoteMemAccesses, 0u);
}

TEST(Gmmu, AsapShortensSerialWalk)
{
    cfg::SystemConfig config;
    config.asap.enabled = true;
    config.asap.accuracy = 1.0; // always correct
    GmmuHarness h(config);
    h.pt.map(0x42, mem::PageInfo{7, 0, 1, true, false});
    h.gmmu.translate(test::makeReq(0x42));
    h.eq.run();
    // 5 accesses with the two lowest prefetched: 3 serial.
    EXPECT_EQ(h.eq.now(), 300u);
    EXPECT_EQ(h.gmmu.stats().memAccesses, 5u);
}
