#include <gtest/gtest.h>

#include "gpu/gpu.hpp"

using namespace transfw;

namespace {

/** A Gpu wired to capture outgoing faults instead of a real host. */
struct GpuHarness
{
    cfg::SystemConfig config;
    sim::EventQueue eq;
    sim::Rng rng{1};
    std::unique_ptr<gpu::Gpu> gpu;
    std::vector<mmu::XlatPtr> faults;
    int completions = 0;

    explicit GpuHarness(cfg::SystemConfig c = {})
        : config([&c] {
              c.numGpus = 2;
              c.cusPerGpu = 4;
              return c;
          }())
    {
        gpu = std::make_unique<gpu::Gpu>(eq, config, 0, rng);
        gpu->hooks.sendFault = [this](mmu::XlatPtr req) {
            faults.push_back(std::move(req));
        };
    }

    void
    mapLocal(mem::Vpn vpn4k, bool writable = true)
    {
        gpu->localPageTable().map(
            vpn4k, mem::PageInfo{gpu->frames().allocate(), 0, 1, writable,
                                 false});
    }

    void
    access(int cu, mem::Vpn vpn4k, bool write = false)
    {
        gpu->access(cu, vpn4k, write, [this]() { ++completions; });
    }
};

} // namespace

TEST(GpuUnit, LocalAccessCompletesViaWalk)
{
    GpuHarness h;
    h.mapLocal(0x100);
    h.access(0, 0x100);
    h.eq.run();
    EXPECT_EQ(h.completions, 1);
    EXPECT_TRUE(h.faults.empty());
    EXPECT_EQ(h.gpu->stats().l2Misses, 1u);
}

TEST(GpuUnit, TlbHitsAfterFirstAccess)
{
    GpuHarness h;
    h.mapLocal(0x100);
    h.access(0, 0x100);
    h.eq.run();
    h.access(0, 0x100); // L1 TLB hit now
    h.eq.run();
    EXPECT_EQ(h.completions, 2);
    EXPECT_EQ(h.gpu->stats().l2Misses, 1u);
    EXPECT_GT(h.gpu->l1Tlb(0).hits(), 0u);
}

TEST(GpuUnit, L2ServesOtherCusL1Miss)
{
    GpuHarness h;
    h.mapLocal(0x100);
    h.access(0, 0x100);
    h.eq.run();
    h.access(1, 0x100); // different CU: L1 miss, L2 hit
    h.eq.run();
    EXPECT_EQ(h.completions, 2);
    EXPECT_EQ(h.gpu->stats().l2Misses, 1u);
}

TEST(GpuUnit, MshrCoalescesConcurrentMisses)
{
    GpuHarness h;
    h.mapLocal(0x100);
    // Four CUs miss on the same page in the same window: one walk.
    for (int cu = 0; cu < 4; ++cu)
        h.access(cu, 0x100);
    h.eq.run();
    EXPECT_EQ(h.completions, 4);
    EXPECT_EQ(h.gpu->stats().l2Misses, 1u);
    EXPECT_EQ(h.gpu->gmmu().stats().localWalks, 1u);
}

TEST(GpuUnit, UnmappedPageBecomesFarFault)
{
    GpuHarness h;
    h.access(0, 0x200);
    h.eq.run();
    ASSERT_EQ(h.faults.size(), 1u);
    EXPECT_EQ(h.completions, 0); // still pending resolution
    EXPECT_TRUE(h.faults[0]->faulted);

    // The host-side machinery replies; the GPU finishes the access.
    mmu::XlatPtr req = h.faults[0];
    req->result = tlb::TlbEntry{5, 0, true, false};
    h.gpu->translationReturned(req);
    h.eq.run();
    EXPECT_EQ(h.completions, 1);
}

TEST(GpuUnit, WriteToReadOnlyEntryRefaults)
{
    GpuHarness h;
    h.mapLocal(0x300, /*writable=*/false);
    h.access(0, 0x300, /*write=*/false); // warm the TLBs read-only
    h.eq.run();
    EXPECT_EQ(h.completions, 1);
    h.access(0, 0x300, /*write=*/true); // protection fault path
    h.eq.run();
    ASSERT_EQ(h.faults.size(), 1u);
    EXPECT_TRUE(h.faults[0]->protectionFault);
    EXPECT_TRUE(h.faults[0]->isWrite);
}

TEST(GpuUnit, PrtShortCircuitsNonResidentPages)
{
    cfg::SystemConfig config;
    config.transFw.enabled = true;
    GpuHarness h(config);
    h.mapLocal(0x400 << 9); // resident: PRT knows it
    h.gpu->prt()->pageArrived(0x400 << 9);

    h.access(0, 0x999 << 9); // definitely not resident
    h.eq.run();
    ASSERT_EQ(h.faults.size(), 1u);
    EXPECT_TRUE(h.faults[0]->shortCircuited);
    EXPECT_EQ(h.gpu->stats().shortCircuits, 1u);
    // No local walk was wasted on it.
    EXPECT_EQ(h.gpu->gmmu().stats().localWalks, 0u);
}

TEST(GpuUnit, PrtHitTakesLocalWalk)
{
    cfg::SystemConfig config;
    config.transFw.enabled = true;
    GpuHarness h(config);
    h.mapLocal(0x500 << 9);
    h.gpu->prt()->pageArrived(0x500 << 9);

    h.access(0, 0x500 << 9);
    h.eq.run();
    EXPECT_EQ(h.completions, 1);
    EXPECT_TRUE(h.faults.empty());
    EXPECT_EQ(h.gpu->gmmu().stats().localWalks, 1u);
    EXPECT_EQ(h.gpu->stats().shortCircuits, 0u);
}

TEST(GpuUnit, RemoteEntryUsesRemoteLatencyHook)
{
    GpuHarness h;
    int remote_accesses = 0;
    h.gpu->hooks.remoteAccessLatency =
        [&](mem::Vpn, const tlb::TlbEntry &, int) -> sim::Tick {
        ++remote_accesses;
        return 500;
    };
    h.gpu->localPageTable().map(
        0x600, mem::PageInfo{7, 1, 0, true, /*remote=*/true});
    h.access(0, 0x600);
    h.eq.run();
    EXPECT_EQ(h.completions, 1);
    EXPECT_EQ(remote_accesses, 1);
    EXPECT_EQ(h.gpu->stats().remoteDataAccesses, 1u);
}

TEST(GpuUnit, InvalidateTlbsDropsAllLevels)
{
    GpuHarness h;
    h.mapLocal(0x700);
    h.access(0, 0x700);
    h.access(1, 0x700);
    h.eq.run();
    h.gpu->invalidateTlbs(0x700);
    EXPECT_EQ(h.gpu->l2Tlb().probe(0x700), nullptr);
    EXPECT_EQ(h.gpu->l1Tlb(0).probe(0x700), nullptr);
    EXPECT_EQ(h.gpu->l1Tlb(1).probe(0x700), nullptr);
}

TEST(GpuUnit, SharingTrackerHookFires)
{
    GpuHarness h;
    std::uint64_t tracked = 0;
    h.gpu->hooks.onPageAccess = [&](mem::Vpn, int gpu_id, bool) {
        EXPECT_EQ(gpu_id, 0);
        ++tracked;
    };
    h.mapLocal(0x800);
    h.access(0, 0x800, true);
    h.eq.run();
    EXPECT_EQ(tracked, 1u);
}
